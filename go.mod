module albireo

go 1.22
