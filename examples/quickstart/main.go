// Quickstart: build an Albireo chip, run a small convolution layer
// through the functional analog pipeline, and compare the result with
// the exact digital reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"albireo/internal/core"
	"albireo/internal/nn"
	"albireo/internal/perf"
	"albireo/internal/tensor"
)

func main() {
	// The paper's default design: 9 PLCGs of 3 PLCUs, each 9x5, with
	// conservative (demonstrated) photonic devices.
	cfg := core.DefaultConfig()
	chip := core.NewChip(cfg)
	fmt.Printf("chip: %s\n", cfg)
	fmt.Printf("wavelengths: %d per PLCU, %d total\n",
		cfg.WavelengthsPerPLCU(), cfg.TotalWavelengths())

	// A small convolution layer: 8 input channels, 16x16 activations,
	// four 3x3 kernels with bell-shaped weights.
	input := tensor.RandomVolume(8, 16, 16, 7)
	kernels := tensor.RandomKernels(4, 8, 3, 3, 8)
	conv := tensor.ConvConfig{Stride: 1, Pad: 1}

	// Run it on the photonic chip (8-bit converters, MRR crosstalk,
	// RIN/shot/thermal noise) and on the exact reference.
	analog := chip.Conv(input, kernels, conv, true)
	exact := tensor.ReLU(tensor.Conv(input, kernels, conv))

	var num, den float64
	for i := range exact.Data {
		d := analog.Data[i] - exact.Data[i]
		num += d * d
		den += exact.Data[i] * exact.Data[i]
	}
	fmt.Printf("analog vs exact relative RMS error: %.2f%%\n", 100*math.Sqrt(num/den))

	// The same chip evaluated analytically on a real workload.
	r := perf.Evaluate(cfg, nn.VGG16())
	fmt.Printf("VGG16 inference: %.2f ms, %.1f mJ at %.1f W\n",
		r.Latency*1e3, r.Energy*1e3, r.Power)
}
