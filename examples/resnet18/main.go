// ResNet18 case study: the per-layer analysis of Section IV-A applied
// to the residual network, across all three device estimates, plus the
// photonic-baseline comparison of Figure 8.
//
//	go run ./examples/resnet18
package main

import (
	"fmt"

	"albireo/internal/baseline"
	"albireo/internal/core"
	"albireo/internal/device"
	"albireo/internal/nn"
	"albireo/internal/perf"
)

func main() {
	model := nn.ResNet18()
	fmt.Printf("%s: %.2f GMACs, %.1f M parameters\n\n",
		model.Name, float64(model.TotalMACs())/1e9, float64(model.TotalParams())/1e6)

	// The ten most expensive layers on Albireo-C.
	cfg := core.DefaultConfig()
	layers := perf.EvaluateLayers(cfg, model)
	fmt.Println("busiest layers on Albireo-C:")
	fmt.Println("layer          cycles      latency(us)  MACs(M)")
	shown := 0
	for _, lr := range layers {
		if lr.Cycles < 100000 {
			continue
		}
		fmt.Printf("%-12s  %-10d  %11.1f  %7.1f\n",
			lr.Layer.Name, lr.Cycles, lr.Latency*1e6, float64(lr.MACs)/1e6)
		shown++
		if shown == 10 {
			break
		}
	}

	// Whole-network results for the three estimates.
	fmt.Println("\nestimate   latency(ms)  energy(mJ)  EDP(mJ*ms)  power(W)")
	for _, est := range device.Estimates {
		c := core.DefaultConfig()
		c.Estimate = est
		r := perf.Evaluate(c, model)
		fmt.Printf("Albireo-%s  %11.4f  %10.3f  %10.4f  %8.2f\n",
			est, r.Latency*1e3, r.Energy*1e3, r.EDP*1e6, r.Power)
	}

	// Photonic baselines at the 60 W budget.
	fmt.Println("\nvs photonic baselines (60 W, conservative devices):")
	deap := baseline.NewDEAPCNN().Evaluate(model)
	pixel := baseline.NewPIXEL().Evaluate(model)
	a27 := perf.Evaluate(core.Albireo27(), model)
	fmt.Printf("PIXEL:      %9.3f ms  %9.2f mJ\n", pixel.Latency*1e3, pixel.Energy*1e3)
	fmt.Printf("DEAP-CNN:   %9.3f ms  %9.2f mJ\n", deap.Latency*1e3, deap.Energy*1e3)
	fmt.Printf("Albireo-27: %9.3f ms  %9.2f mJ  (%.0fx faster than PIXEL, %.1fx than DEAP)\n",
		a27.Latency*1e3, a27.Energy*1e3,
		pixel.Latency/a27.Latency, deap.Latency/a27.Latency)
}
