// Fault management walkthrough: detect -> localize -> quarantine ->
// degrade gracefully. Analog photonic accelerators have no
// architectural error detection - computation silently drifts - so the
// repo pairs its failure-injection machinery (internal/core) with a
// BIST engine (internal/health) that localizes defects from probe
// responses, a quarantine scheduler that remaps work around bad PLCUs,
// and an accuracy-guarded backend (internal/inference) that catches
// whatever corruption remains.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"

	"albireo/internal/core"
	"albireo/internal/health"
	"albireo/internal/inference"
	"albireo/internal/tensor"
)

func main() {
	inputs := make([]*tensor.Volume, 8)
	for i := range inputs {
		inputs[i] = tensor.RandomVolume(3, 16, 16, 500+int64(i))
	}
	net := inference.TinyCNN(3, 16, 42)
	exact := inference.Exact{}

	// Baseline: the healthy chip.
	cfg := core.DefaultConfig()
	analog := inference.Analog{Chip: core.NewChip(cfg)}
	top1, corr := inference.Agreement(net, exact, analog, inputs)
	fmt.Printf("healthy chip:    top-1 %.2f, logit corr %.4f\n", top1, corr)

	// Failure: switching rings on PLCU (0,0) drift off resonance as the
	// chip runs - a broken thermal tuning loop. Columns 0..3 of every
	// tap decay from full coupling to dark over ~1000 cycles.
	unit := analog.Chip.Groups()[0].Units()[0]
	for tap := 0; tap < cfg.Nm; tap++ {
		for col := 0; col < cfg.Nd-1; col++ {
			unit.InjectFault(core.Fault{Kind: core.DetunedRing, Tap: tap, Column: col, Value: 1.0, Drift: 1e-3})
		}
	}
	a := tensor.RandomVolume(3, 16, 16, 7)
	w := tensor.RandomKernels(9, 3, 3, 3, 8)
	for unit.Cycles() < 1500 {
		analog.Chip.Conv(a, w, tensor.ConvConfig{Pad: 1}, false)
	}
	top1, corr = inference.Agreement(net, exact, analog, inputs)
	fmt.Printf("after drift:     top-1 %.2f, logit corr %.4f  (silent corruption)\n\n", top1, corr)

	// Detect: a BIST scan probes every PLCU with deterministic vectors
	// and localizes each deviation to an exact coordinate.
	eng := health.New(analog.Chip, health.Options{})
	report := eng.Scan()
	fmt.Printf("BIST scan: %d units probed, %d probe cycles, %d faults localized\n",
		report.UnitsChecked, report.Probes, len(report.Findings))
	for i, f := range report.Findings {
		if i >= 4 {
			fmt.Printf("  ... and %d more on the same unit\n", len(report.Findings)-i)
			break
		}
		fmt.Printf("  %v\n", f)
	}

	// Quarantine: take the bad unit out of service. The scheduler
	// remaps its share of every layer onto the remaining healthy PLCUs.
	quarantined, err := eng.QuarantineFindings(report)
	if err != nil {
		fmt.Println("quarantine incomplete:", err)
	}
	fmt.Printf("quarantined: %v (chip degraded: %v)\n", quarantined, analog.Chip.Degraded())
	top1, corr = inference.Agreement(net, exact, analog, inputs)
	fmt.Printf("after remap:     top-1 %.2f, logit corr %.4f  (fidelity restored)\n\n", top1, corr)

	// Last line of defense: the accuracy-guarded backend. Wreck a unit
	// on a fresh chip and do NOT quarantine it - the guard samples each
	// layer against the digital reference and falls back when the
	// divergence blows the budget, so inference stays correct even with
	// an undetected fault.
	wrecked := inference.NewAnalog(core.DefaultConfig())
	bad := wrecked.Chip.Groups()[0].Units()[0]
	for tap := 0; tap < cfg.Nm; tap++ {
		bad.InjectFault(core.Fault{Kind: core.StuckMZM, Tap: tap, Value: 1})
	}
	guard := inference.Guard(wrecked, exact, 0.5)
	top1, corr = inference.Agreement(net, exact, guard, inputs)
	fmt.Printf("guarded backend over an unquarantined fault:\n")
	fmt.Printf("  top-1 %.2f, corr %.4f; %d of %d sampled layers fell back to digital\n",
		top1, corr, guard.Fallbacks(), guard.Checks())
}
