// Fault-tolerance study: how the Albireo analog fabric degrades as
// hardware defects accumulate. Analog photonic accelerators have no
// architectural error detection - computation silently drifts - so the
// failure-injection machinery of internal/core quantifies the blast
// radius of each defect class.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"math"

	"albireo/internal/core"
	"albireo/internal/inference"
	"albireo/internal/tensor"
)

func main() {
	inputs := make([]*tensor.Volume, 16)
	for i := range inputs {
		inputs[i] = tensor.RandomVolume(3, 16, 16, 500+int64(i))
	}
	net := inference.TinyCNN(3, 16, 42)
	exact := inference.Exact{}

	// Baseline: the healthy chip.
	healthy := inference.NewAnalog(core.DefaultConfig())
	top1, corr := inference.Agreement(net, exact, healthy, inputs)
	fmt.Printf("healthy chip:           top-1 %.2f, logit corr %.4f\n\n", top1, corr)

	// Defect class A: stuck weight modulators in one PLCU.
	fmt.Println("stuck MZMs (PLCG 0, unit 0, stuck at full transmission):")
	for _, n := range []int{1, 3, 9} {
		be := inference.NewAnalog(core.DefaultConfig())
		unit := be.Chip.Groups()[0].Units()[0]
		for tap := 0; tap < n; tap++ {
			unit.InjectFault(core.Fault{Kind: core.StuckMZM, Tap: tap, Value: 1})
		}
		top1, corr := inference.Agreement(net, exact, be, inputs)
		fmt.Printf("  %d stuck: top-1 %.2f, corr %.4f\n", n, top1, corr)
	}

	// Defect class B: dead switching rings spread across a PLCU.
	fmt.Println("\ndead switching rings (PLCG 0, unit 0):")
	for _, n := range []int{1, 9, 45} {
		be := inference.NewAnalog(core.DefaultConfig())
		unit := be.Chip.Groups()[0].Units()[0]
		injected := 0
		for tap := 0; tap < 9 && injected < n; tap++ {
			for col := 0; col < 5 && injected < n; col++ {
				unit.InjectFault(core.Fault{Kind: core.DeadRing, Tap: tap, Column: col})
				injected++
			}
		}
		top1, corr := inference.Agreement(net, exact, be, inputs)
		fmt.Printf("  %2d dead: top-1 %.2f, corr %.4f\n", injected, top1, corr)
	}

	// Defect class C: a thermally drifted ring (partial detune) - the
	// soft failure a tuning-control loop would cause.
	fmt.Println("\ndetuned ring (PLCG 0, unit 0, tap 4, column 0):")
	for _, residual := range []float64{0.9, 0.5, 0.1} {
		be := inference.NewAnalog(core.DefaultConfig())
		be.Chip.Groups()[0].Units()[0].InjectFault(core.Fault{
			Kind: core.DetunedRing, Tap: 4, Column: 0, Value: residual,
		})
		top1, corr := inference.Agreement(net, exact, be, inputs)
		fmt.Printf("  residual coupling %.1f: top-1 %.2f, corr %.4f\n", residual, top1, corr)
	}

	// Redundancy check: remapping kernels away from the damaged PLCG
	// restores fidelity - the architectural fix the fault model
	// motivates. A 9-kernel layer on 9 groups cannot avoid group 0,
	// but the same layer with the faulty group skipped (8 kernels)
	// shows what remapping buys.
	fmt.Println("\nblast radius: a dead ring only affects kernels mapped to its PLCG;")
	fmt.Println("per-kernel max deviations on a uniform test layer:")
	chip := core.NewChip(core.DefaultConfig())
	chip.Groups()[0].Units()[0].InjectFault(core.Fault{Kind: core.DeadRing, Tap: 4, Column: 2})
	a := tensor.RandomVolume(3, 10, 10, 77)
	w := tensor.RandomKernels(9, 3, 3, 3, 78)
	faulty := chip.Conv(a, w, tensor.ConvConfig{Pad: 1}, false)
	ref := core.NewChip(core.DefaultConfig()).Conv(a, w, tensor.ConvConfig{Pad: 1}, false)
	for m := 0; m < 9; m++ {
		var worst float64
		for y := 0; y < faulty.Y; y++ {
			for x := 0; x < faulty.X; x++ {
				if d := math.Abs(faulty.At(m, y, x) - ref.At(m, y, x)); d > worst {
					worst = d
				}
			}
		}
		marker := ""
		if m == 0 {
			marker = "  <- mapped to the faulty PLCG"
		}
		fmt.Printf("  kernel %d: %.4f%s\n", m, worst, marker)
	}
}
