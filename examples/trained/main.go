// Trained-model deployment: train a small CNN with the pure-Go SGD
// stack on a synthetic task, then deploy it to the Albireo analog chip
// and measure the real accuracy cost of 8-bit converters, MRR
// crosstalk, and photodetection noise - the end-to-end version of the
// paper's precision argument (Section II-C).
//
//	go run ./examples/trained
package main

import (
	"fmt"

	"albireo/internal/core"
	"albireo/internal/device"
	"albireo/internal/inference"
	"albireo/internal/train"
)

func main() {
	// Train on 150 synthetic stripe/checker images.
	xs, labels := train.SyntheticDataset(150, 12, 8)
	net := train.NewSmallNet(12, 3, 9)
	h := train.DefaultHyper()
	h.BatchLog = true
	trainAcc := net.Train(xs, labels, h)
	fmt.Printf("\ntraining accuracy: %.1f%%\n", trainAcc*100)

	// Fresh test set.
	testX, testY := train.SyntheticDataset(90, 12, 777)
	fmt.Printf("exact test accuracy: %.1f%%\n\n",
		train.AnalogAccuracy(net, inference.Exact{}, testX, testY)*100)

	// Deploy on the analog chip under increasing impairment realism.
	fmt.Println("analog deployment:")
	deploy := func(name string, cfg core.Config) {
		acc := train.AnalogAccuracy(net, inference.NewAnalog(cfg), testX, testY)
		fmt.Printf("  %-36s %.1f%%\n", name, acc*100)
	}
	ideal := core.DefaultConfig()
	ideal.DisableNoise = true
	ideal.DisableCrosstalk = true
	deploy("ideal devices (8-bit converters only)", ideal)

	xtOnly := core.DefaultConfig()
	xtOnly.DisableNoise = true
	deploy("with MRR crosstalk", xtOnly)

	deploy("full impairments (Albireo-C)", core.DefaultConfig())

	agg := core.DefaultConfig()
	agg.Estimate = device.Aggressive
	deploy("full impairments (Albireo-A, 8 GHz)", agg)

	// Laser power ablation: starved optical power raises the noise
	// floor and costs accuracy.
	fmt.Println("\nlaser power ablation (full impairments):")
	for _, mw := range []float64{2.0, 0.5, 0.1, 0.02} {
		cfg := core.DefaultConfig()
		cfg.LaserPower = mw * 1e-3
		acc := train.AnalogAccuracy(net, inference.NewAnalog(cfg), testX, testY)
		fmt.Printf("  %5.2f mW per laser: %.1f%%\n", mw, acc*100)
	}
}
