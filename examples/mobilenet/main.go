// MobileNet case study: the depthwise-separable convolution mappings
// of Section III-C, demonstrated functionally on a small block and
// analytically on the full network.
//
//	go run ./examples/mobilenet
package main

import (
	"fmt"
	"math"

	"albireo/internal/core"
	"albireo/internal/nn"
	"albireo/internal/perf"
	"albireo/internal/tensor"
)

func rms(got, want *tensor.Volume) float64 {
	var num, den float64
	for i := range want.Data {
		d := got.Data[i] - want.Data[i]
		num += d * d
		den += want.Data[i] * want.Data[i]
	}
	return math.Sqrt(num / den)
}

func main() {
	chip := core.NewChip(core.DefaultConfig())

	// One depthwise-separable block on a small volume: a 3x3 depthwise
	// filter per channel (no cross-channel aggregation), then a 1x1
	// pointwise convolution (each MZM applies one channel of the 1x1
	// kernel - the remapped inputs of Section III-C).
	input := tensor.RandomVolume(16, 12, 12, 21)
	dwKernels := tensor.RandomKernels(16, 1, 3, 3, 22)
	pwKernels := tensor.RandomKernels(32, 16, 1, 1, 23)

	dwAnalog := chip.Conv(input, dwKernels, tensor.ConvConfig{Pad: 1, Depthwise: true}, true)
	dwExact := tensor.ReLU(tensor.Conv(input, dwKernels, tensor.ConvConfig{Pad: 1, Depthwise: true}))
	fmt.Printf("depthwise stage: %v, relative RMS error %.2f%%\n", dwAnalog, 100*rms(dwAnalog, dwExact))

	// Per-stage error: run the pointwise stage on the same input as the
	// reference so the depthwise error does not compound.
	pwAnalog := chip.Pointwise(dwExact, pwKernels, true)
	pwExact := tensor.ReLU(tensor.Conv(dwExact, pwKernels, tensor.ConvConfig{}))
	fmt.Printf("pointwise stage: %v, relative RMS error %.2f%%\n", pwAnalog, 100*rms(pwAnalog, pwExact))

	// End-to-end block error, impairments compounding across stages.
	e2e := chip.Pointwise(dwAnalog, pwKernels, true)
	fmt.Printf("end-to-end block relative RMS error %.2f%%\n", 100*rms(e2e, pwExact))

	// The same block with crosstalk and noise disabled isolates the
	// 8-bit converter floor: the gap is the analog impairment cost.
	// The pointwise mapping drives all 27 taps at once, so crosstalk
	// accumulates over more wavelengths than the receptive-field
	// mapping - exactly the Section II-C trade.
	idealCfg := core.DefaultConfig()
	idealCfg.DisableNoise = true
	idealCfg.DisableCrosstalk = true
	ideal := core.NewChip(idealCfg).Pointwise(dwExact, pwKernels, true)
	fmt.Printf("pointwise stage (ideal devices): %.2f%% - the converter floor\n", 100*rms(ideal, pwExact))

	// Full-network analysis: where do MobileNet's cycles go?
	model := nn.MobileNet()
	cfg := core.DefaultConfig()
	var dwCycles, pwCycles, otherCycles int64
	for _, l := range model.Layers {
		lm := cfg.MapLayer(l)
		switch l.Kind {
		case nn.Depthwise:
			dwCycles += lm.Cycles
		case nn.Pointwise:
			pwCycles += lm.Cycles
		default:
			otherCycles += lm.Cycles
		}
	}
	total := dwCycles + pwCycles + otherCycles
	fmt.Printf("\nMobileNet on Albireo-C: %d cycles total\n", total)
	fmt.Printf("  depthwise layers: %5.1f%% of cycles (%4.1f%% of MACs)\n",
		100*float64(dwCycles)/float64(total), dwMACPct(model))
	fmt.Printf("  pointwise layers: %5.1f%% of cycles\n", 100*float64(pwCycles)/float64(total))
	fmt.Printf("  other layers:     %5.1f%% of cycles\n", 100*float64(otherCycles)/float64(total))

	r := perf.Evaluate(cfg, model)
	fmt.Printf("\ninference: %.4f ms, %.3f mJ, EDP %.5f mJ*ms\n",
		r.Latency*1e3, r.Energy*1e3, r.EDP*1e6)
}

func dwMACPct(m nn.Model) float64 {
	var dw, total int64
	for _, l := range m.Layers {
		if l.Kind == nn.Depthwise {
			dw += l.MACs()
		}
		total += l.MACs()
	}
	return 100 * float64(dw) / float64(total)
}
