// Design-space exploration: the device-level analyses of Section II-C
// that drive the Albireo architecture - how laser power, MRR coupling,
// and wavelength count set the precision of photonic dot products.
//
//	go run ./examples/designspace
package main

import (
	"fmt"

	"albireo/internal/circuit"
	"albireo/internal/noise"
	"albireo/internal/photonics"
	"albireo/internal/units"
)

func main() {
	// 1. The devices themselves: the Table II ring.
	ring := photonics.NewMRR(1550 * units.Nano)
	fmt.Printf("reference MRR: %v\n", ring)
	fmt.Printf("  bandwidth %.1f GHz, Q %.0f, photon lifetime %.1f ps\n\n",
		ring.Bandwidth()/1e9, ring.QualityFactor(), ring.PhotonLifetime()*1e12)

	// 2. Noise-limited precision (Figure 3): sweep laser power at the
	// PLCU's 21 wavelengths over the full 9-PLCG chip distribution path
	// (~26 dB including the broadcast splits), where the shot/thermal
	// to RIN transition is visible.
	np := noise.DefaultParams()
	pd := photonics.NewPhotodiode()
	path := circuit.AlbireoSignalPath(9, 3)
	fmt.Printf("noise-limited precision at 21 wavelengths (%.1f dB chip path):\n", path.TotalDB())
	for _, mw := range []float64{0.25, 0.5, 1, 2, 4, 8, 16} {
		iPer := pd.Responsivity * path.Deliver(mw*1e-3)
		fmt.Printf("  %5.2f mW laser -> %5.2f bits (%s-limited)\n",
			mw, np.PrecisionBits(iPer, 21), np.DominantSource(iPer, 21))
	}

	// 3. Crosstalk-limited precision (Figure 4c): the k^2 trade at the
	// PLCU wavelength count, with the differential (+/-) bonus bit.
	fmt.Println("\ncrosstalk-limited precision at 21 wavelengths:")
	for _, k2 := range []float64{0.01, 0.02, 0.03, 0.05} {
		xa := circuit.NewCrosstalkAnalysis(k2, 21)
		tr := circuit.NewTemporalResponse(k2, 5e9)
		fmt.Printf("  k^2=%.2f -> %.2f bits single-ended, %.2f differential, eye %.3f @ 5 GHz\n",
			k2, xa.PrecisionBits(), xa.DifferentialPrecisionBits(), tr.EyeOpening())
	}

	// 4. Why 21 wavelengths: precision vs channel count at k^2 = 0.03.
	fmt.Println("\nwavelength scaling at k^2 = 0.03 (differential):")
	for _, n := range []int{9, 15, 21, 33, 45, 63} {
		xa := circuit.NewCrosstalkAnalysis(0.03, n)
		fmt.Printf("  %2d channels -> %.2f bits\n", n, xa.DifferentialPrecisionBits())
	}
	fmt.Println("\nthe paper targets >= 7 bits, reached at ~21 channels with")
	fmt.Println("k^2 = 0.03 - hence Nd = 5 receptive fields per PLCU and")
	fmt.Println("Nu = 3 PLCUs inside the 64-wavelength distribution budget.")
}
