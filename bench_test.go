// Package albireo_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). Each benchmark measures the cost of
// regenerating its experiment and reports the headline reproduced
// numbers as custom metrics so `go test -bench=. -benchmem` doubles as
// the reproduction log (EXPERIMENTS.md records paper-vs-measured).
package albireo_test

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"albireo/internal/baseline"
	"albireo/internal/circuit"
	"albireo/internal/control"
	"albireo/internal/core"
	"albireo/internal/device"
	"albireo/internal/experiments"
	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/nn"
	"albireo/internal/obs"
	"albireo/internal/perf"
	"albireo/internal/sim"
	"albireo/internal/tensor"
	"albireo/internal/train"
	"albireo/internal/waveform"
)

// BenchmarkFig3NoisePrecision regenerates Figure 3: noise-limited
// precision versus wavelength count across laser powers. Paper anchor:
// 10 bits at 2 mW with ~20 wavelengths.
func BenchmarkFig3NoisePrecision(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig3(experiments.DefaultFig3Params())
	}
	for _, r := range rows {
		if r.LaserPower == 2e-3 && r.Wavelengths == 20 {
			b.ReportMetric(r.Bits, "bits@2mW/20ch")
		}
	}
}

// BenchmarkFig4aDropSpectrum regenerates Figure 4a: MRR drop-port
// spectra across k^2.
func BenchmarkFig4aDropSpectrum(b *testing.B) {
	k2s := []float64{0.02, 0.03, 0.05, 0.1}
	var rows []experiments.Fig4aRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig4a(k2s, 4e-9, 401)
	}
	_ = rows
	ring := circuit.NewCrosstalkAnalysis(0.03, 21).Ring
	b.ReportMetric(ring.FWHM()*1e9, "FWHM_nm@k2=0.03")
}

// BenchmarkFig4bTemporal regenerates Figure 4b: ring temporal
// response. Paper observation: k^2 = 0.02 has poor temporal response
// relative to 0.03.
func BenchmarkFig4bTemporal(b *testing.B) {
	var rows []experiments.Fig4bRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig4b([]float64{0.02, 0.03, 0.05}, []float64{5e9, 10e9, 20e9, 40e9})
	}
	for _, r := range rows {
		if r.K2 == 0.02 && r.SymbolRate == 5e9 {
			b.ReportMetric(r.RiseTimePS, "rise_ps@k2=0.02")
		}
	}
}

// BenchmarkFig4cCrosstalkPrecision regenerates Figure 4c. Paper
// anchors: ~6 bits at k^2=0.03/20 wavelengths (7 differential), 8 bits
// at small channel counts.
func BenchmarkFig4cCrosstalkPrecision(b *testing.B) {
	var rows []experiments.Fig4cRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig4c([]float64{0.02, 0.03, 0.05}, 40)
	}
	for _, r := range rows {
		if r.K2 == 0.03 && r.Wavelengths == 20 {
			b.ReportMetric(r.DiffBits, "diffbits@k2=0.03/20ch")
		}
	}
}

// BenchmarkFig8Photonic regenerates the Figure 8 comparison (latency,
// energy, EDP for PIXEL, DEAP-CNN, Albireo-9, Albireo-27 on the four
// CNNs at 60 W).
func BenchmarkFig8Photonic(b *testing.B) {
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8()
	}
	for _, r := range rows {
		if r.Model == "VGG16" && r.Design == "Albireo-27" {
			b.ReportMetric(r.Latency*1e3, "alb27_vgg16_ms")
		}
	}
}

// BenchmarkFig9Area regenerates the Figure 9 area breakdown. Paper:
// 124.6 mm^2 total, 72% AWG, 17% star coupler.
func BenchmarkFig9Area(b *testing.B) {
	var rows []experiments.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig9(core.DefaultConfig())
	}
	var total float64
	for _, r := range rows {
		total += r.AreaMM2
	}
	b.ReportMetric(total, "chip_mm2")
}

// BenchmarkTable1Devices regenerates the Table I constants.
func BenchmarkTable1Devices(b *testing.B) {
	var rows []experiments.TableIRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableI()
	}
	b.ReportMetric(rows[0].Conservative*1e3, "mrr_mW_C")
}

// BenchmarkTable2Optics regenerates the Table II parameter report and
// the derived FSR check.
func BenchmarkTable2Optics(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.FormatTableII()
	}
	_ = s
	b.ReportMetric(device.Optics().RingFSR*1e9, "fsr_nm")
}

// BenchmarkTable3Power regenerates the Table III chip power breakdown.
// Paper: 22.7 / 6.19 / 1.64 W for C / M / A.
func BenchmarkTable3Power(b *testing.B) {
	var cols []experiments.TableIIIColumn
	for i := 0; i < b.N; i++ {
		cols = experiments.TableIII(core.DefaultConfig())
	}
	b.ReportMetric(cols[0].Power.Total(), "albireoC_W")
	b.ReportMetric(cols[1].Power.Total(), "albireoM_W")
	b.ReportMetric(cols[2].Power.Total(), "albireoA_W")
}

// BenchmarkTable4Electronic regenerates Table IV. Paper: VGG16 on
// Albireo-C is 2.55 ms / 58.1 mJ.
func BenchmarkTable4Electronic(b *testing.B) {
	var rows []experiments.TableIVRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableIV()
	}
	for _, r := range rows {
		if r.Model == "VGG16" && r.Design == "Albireo-C" {
			b.ReportMetric(r.Latency*1e3, "vgg16_C_ms")
			b.ReportMetric(r.Energy*1e3, "vgg16_C_mJ")
		}
	}
}

// BenchmarkMappingPerModel times the Algorithm 2 scheduler on each
// benchmark network and reports its latency estimate.
func BenchmarkMappingPerModel(b *testing.B) {
	for _, m := range nn.Benchmarks() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var mm core.ModelMapping
			for i := 0; i < b.N; i++ {
				mm = core.DefaultConfig().MapModel(m)
			}
			b.ReportMetric(mm.Latency()*1e3, "latency_ms")
			b.ReportMetric(mm.Utilization()*100, "utilization_pct")
		})
	}
}

// BenchmarkFunctionalConv measures the analog functional simulator on
// one PLCG-scale convolution: the DAC->MZM->MRR->PD->ADC chain with
// crosstalk and noise.
func BenchmarkFunctionalConv(b *testing.B) {
	chip := core.NewChip(core.DefaultConfig())
	a := tensor.RandomVolume(6, 16, 16, 1)
	w := tensor.RandomKernels(4, 6, 3, 3, 2)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = chip.Conv(a, w, cfg, true)
	}
}

// BenchmarkFunctionalConvInstrumented is the pair benchmark to
// BenchmarkFunctionalConv with an obs.Registry and obs.Trace
// attached: same workload, full telemetry. Comparing the two bounds
// the observability overhead (the acceptance bar is <5% when nothing
// is attached - see BenchmarkConvInstrumentationOverhead in
// internal/core - and this pair shows the attached cost).
func BenchmarkFunctionalConvInstrumented(b *testing.B) {
	chip := core.NewChip(core.DefaultConfig())
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	chip.Instrument(reg, tr)
	a := tensor.RandomVolume(6, 16, 16, 1)
	w := tensor.RandomKernels(4, 6, 3, 3, 2)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = chip.Conv(a, w, cfg, true)
	}
}

// BenchmarkFunctionalGEMM measures the analog matrix engine on one
// MLP-head-scale product: the same DAC->MZM->MRR->PD->ADC chain as
// BenchmarkFunctionalConv, driven through the M x K . K x N staging
// path with the signed two-pass decomposition. The first iteration
// compiles B's weight program; the fixed -benchtime in check.sh
// amortizes that compile so the alloc gate sees steady state.
func BenchmarkFunctionalGEMM(b *testing.B) {
	chip := core.NewChip(core.DefaultConfig())
	x := tensor.RandomMatrix(8, 24, 91)
	w := tensor.RandomMatrix(24, 16, 92)
	_ = chip.GEMM(x, w, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = chip.GEMM(x, w, true)
	}
}

// BenchmarkFunctionalAttention measures one attention block
// (QK^T -> digital softmax -> AV) on the analog chip: two chained
// GEMMs with different cached weight programs plus the row softmax.
func BenchmarkFunctionalAttention(b *testing.B) {
	backend := inference.NewAnalog(core.DefaultConfig())
	q := tensor.RandomMatrix(6, 16, 93)
	k := tensor.RandomMatrix(6, 16, 94)
	v := tensor.RandomMatrix(6, 16, 95)
	_ = nn.Attention(backend, q, k, v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nn.Attention(backend, q, k, v)
	}
}

// BenchmarkFunctionalPLCUStep measures a single PLCU cycle, the basic
// analog operation (45 MACs).
func BenchmarkFunctionalPLCUStep(b *testing.B) {
	plcu := core.NewPLCU(core.DefaultConfig())
	field := make([][]float64, 3)
	for i := range field {
		field[i] = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	}
	avals := plcu.ReceptiveFieldAVals(field)
	weights := []float64{0.5, -0.25, 1, 0, 0.75, -1, 0.125, 0.5, -0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = plcu.Currents(weights, avals)
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// BenchmarkAblationNd sweeps the receptive-field parallelism.
func BenchmarkAblationNd(b *testing.B) {
	for _, nd := range []int{1, 3, 5, 7} {
		nd := nd
		b.Run(fmt.Sprintf("Nd=%d", nd), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Nd = nd
			var r perf.Result
			for i := 0; i < b.N; i++ {
				r = perf.Evaluate(cfg, nn.VGG16())
			}
			b.ReportMetric(float64(nd), "Nd")
			b.ReportMetric(r.Latency*1e3, "latency_ms")
			b.ReportMetric(float64(cfg.WavelengthsPerPLCU()), "lambda_per_plcu")
		})
	}
}

// BenchmarkAblationNg compares the 9- and 27-PLCG designs (the
// paper's power-constrained scaling).
func BenchmarkAblationNg(b *testing.B) {
	for _, ng := range []int{9, 27} {
		ng := ng
		b.Run(fmt.Sprintf("Ng=%d", ng), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Ng = ng
			var r perf.Result
			for i := 0; i < b.N; i++ {
				r = perf.Evaluate(cfg, nn.VGG16())
			}
			b.ReportMetric(float64(ng), "Ng")
			b.ReportMetric(r.Latency*1e3, "latency_ms")
			b.ReportMetric(r.Power, "power_W")
		})
	}
}

// BenchmarkAblationFCMapping compares the wide and narrow
// fully-connected mappings (see DESIGN.md).
func BenchmarkAblationFCMapping(b *testing.B) {
	for _, wide := range []bool{true, false} {
		wide := wide
		name := "narrow"
		if wide {
			name = "wide"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.FCWide = wide
			var r perf.Result
			for i := 0; i < b.N; i++ {
				r = perf.Evaluate(cfg, nn.AlexNet())
			}
			b.ReportMetric(r.Latency*1e3, "alexnet_ms")
		})
	}
}

// BenchmarkAblationK2 sweeps the ring coupling coefficient: precision
// versus temporal response (the Section II-C trade).
func BenchmarkAblationK2(b *testing.B) {
	for _, k2 := range []float64{0.02, 0.03, 0.05} {
		k2 := k2
		b.Run(fmt.Sprintf("k2=%g", k2), func(b *testing.B) {
			var xa circuit.CrosstalkAnalysis
			for i := 0; i < b.N; i++ {
				xa = circuit.NewCrosstalkAnalysis(k2, 21)
			}
			b.ReportMetric(k2, "k2")
			b.ReportMetric(xa.DifferentialPrecisionBits(), "diff_bits")
			b.ReportMetric(circuit.NewTemporalResponse(k2, 5e9).EyeOpening(), "eye@5GHz")
		})
	}
}

// BenchmarkAblationDifferential quantifies the "+1 bit" claim for
// balanced positive/negative accumulation.
func BenchmarkAblationDifferential(b *testing.B) {
	var xa circuit.CrosstalkAnalysis
	for i := 0; i < b.N; i++ {
		xa = circuit.NewCrosstalkAnalysis(0.03, 21)
	}
	b.ReportMetric(xa.PrecisionBits(), "single_bits")
	b.ReportMetric(xa.DifferentialPrecisionBits(), "diff_bits")
}

// --- Beyond-the-paper analyses (EXPERIMENTS.md). ---

// BenchmarkDataflowAblation quantifies Section III-B's "no partial sum
// writes" claim: depth-first vs weight-stationary SRAM movement energy.
func BenchmarkDataflowAblation(b *testing.B) {
	var df, ws sim.ModelStats
	for i := 0; i < b.N; i++ {
		df, ws = sim.Compare(core.DefaultConfig(), nn.VGG16())
	}
	b.ReportMetric(df.SRAMEnergy*1e6, "depthfirst_uJ")
	b.ReportMetric(ws.SRAMEnergy*1e6, "weightstationary_uJ")
}

// BenchmarkEnergyRefinement measures the gating + traffic energy
// refinement against the paper's flat accounting.
func BenchmarkEnergyRefinement(b *testing.B) {
	var eb perf.EnergyBreakdown
	for i := 0; i < b.N; i++ {
		eb = perf.EvaluateEnergy(core.DefaultConfig(), nn.VGG16())
	}
	b.ReportMetric(eb.Flat*1e3, "flat_mJ")
	b.ReportMetric(eb.Total()*1e3, "refined_mJ")
}

// BenchmarkLinkBudget runs the channel-resolved 63-wavelength
// distribution analysis.
func BenchmarkLinkBudget(b *testing.B) {
	var bd circuit.Budget
	for i := 0; i < b.N; i++ {
		bd = circuit.NewLink(9, 63, 2e-3).Analyze()
	}
	b.ReportMetric(bd.EndToEndLossDB, "worst_loss_dB")
	b.ReportMetric(bd.SpreadDB, "spread_dB")
}

// BenchmarkFeasibility runs the memory-system fit analysis.
func BenchmarkFeasibility(b *testing.B) {
	var mf sim.ModelFeasibility
	for i := 0; i < b.N; i++ {
		mf = sim.CheckModel(core.DefaultConfig(), nn.VGG16())
	}
	b.ReportMetric(float64(mf.CacheMisfits), "cache_misfits")
	b.ReportMetric(float64(mf.BufferMisfits), "buffer_misfits")
}

// BenchmarkEndToEndInference measures a full tiny-CNN inference
// through the analog pipeline.
func BenchmarkEndToEndInference(b *testing.B) {
	net := inference.TinyCNN(3, 16, 42)
	backend := inference.NewAnalog(core.DefaultConfig())
	input := tensor.RandomVolume(3, 16, 16, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Run(backend, input)
	}
}

// BenchmarkFleetInfer serves tiny-CNN inferences through the fleet
// scheduler at pool sizes 1/2/4: BenchmarkEndToEndInference's workload
// plus the serving path (admission, micro-batching, quarantine-aware
// routing). Startup BIST scans run outside the timer.
func BenchmarkFleetInfer(b *testing.B) {
	for _, pool := range []int{1, 2, 4} {
		pool := pool
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			units := make([]fleet.Unit, pool)
			for i := range units {
				cfg := core.DefaultConfig()
				cfg.Seed = int64(1 + i)
				analog := inference.NewAnalog(cfg)
				units[i] = fleet.Unit{Backend: analog, Chip: analog.Chip}
			}
			sched, err := fleet.New(fleet.Options{MaxBatch: 8, QueueDepth: 64}, units...)
			if err != nil {
				b.Fatal(err)
			}
			if err := sched.Start(); err != nil {
				b.Fatal(err)
			}
			defer sched.Close(context.Background())
			net := inference.TinyCNN(3, 16, 42)
			input := tensor.RandomVolume(3, 16, 16, 9)
			// Warm every chip's weight-program cache before the timer:
			// steady-state serving is the quantity under test, and a
			// cold compile on one worker would otherwise dominate short
			// runs and make larger pools look slower than small ones.
			for i := range units {
				_ = net.Run(units[i].Backend, input)
			}
			// Then run a couple of inferences through the scheduler so
			// the deficit round-robin and each chip's cache-resident
			// state reach the steady pattern the timed run continues -
			// otherwise a 1-iteration smoke charges larger pools a
			// one-time cold-chip penalty smaller pools never pay.
			for i := 0; i < 2; i++ {
				bound := sched.Bind(context.Background())
				_ = net.Run(bound, input)
				if err := bound.Err(); err != nil {
					b.Fatal(err)
				}
			}
			// Setup garbage (pool construction, BIST scans, warm-up)
			// scales with pool size; collect it outside the timer so a
			// 1-iteration smoke is not charged a larger pool's GC debt.
			runtime.GC()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					bound := sched.Bind(context.Background())
					_ = net.Run(bound, input)
					if err := bound.Err(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkISIPenalty runs the time-domain waveform simulator at the
// two design symbol rates (5 GHz C/M, 8 GHz A) plus a stress rate.
func BenchmarkISIPenalty(b *testing.B) {
	for _, rate := range []float64{5e9, 8e9, 20e9} {
		rate := rate
		b.Run(fmt.Sprintf("%.0fGHz", rate/1e9), func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				p = waveform.ISIPenalty(9, rate, 0.03)
			}
			b.ReportMetric(p*100, "isi_pct_fullscale")
		})
	}
}

// BenchmarkTiling plans the off-chip tiling of VGG16's oversized
// layers and reports the DRAM energy.
func BenchmarkTiling(b *testing.B) {
	var mt sim.ModelTiling
	for i := 0; i < b.N; i++ {
		mt = sim.PlanModel(core.DefaultConfig(), nn.VGG16())
	}
	b.ReportMetric(float64(mt.TiledLayers), "tiled_layers")
	b.ReportMetric(mt.DRAMEnergy*1e3, "dram_mJ")
}

// BenchmarkRingLock runs the thermal lock servo through a drifting
// environment and reports residual detune and heater power.
func BenchmarkRingLock(b *testing.B) {
	var rep control.LockReport
	for i := 0; i < b.N; i++ {
		lock := control.NewRingLock(int64(i) + 1)
		rep = lock.Run(600, 2e-9, 2e-12, 20e-12)
	}
	b.ReportMetric(rep.SettledResidual*1e12, "residual_pm")
	b.ReportMetric(rep.MeanHeaterPower*1e3, "heater_mW")
}

// BenchmarkTrainAndDeploy trains the small CNN and deploys it to the
// analog chip, reporting both accuracies - the end-to-end accuracy
// experiment.
func BenchmarkTrainAndDeploy(b *testing.B) {
	var exactAcc, analogAcc float64
	for i := 0; i < b.N; i++ {
		xs, labels := train.SyntheticDataset(120, 12, 8)
		net := train.NewSmallNet(12, 3, 9)
		h := train.DefaultHyper()
		h.Epochs = 8
		net.Train(xs, labels, h)
		testX, testY := train.SyntheticDataset(45, 12, 999)
		exactAcc = train.AnalogAccuracy(net, inference.Exact{}, testX, testY)
		analogAcc = train.AnalogAccuracy(net, inference.NewAnalog(core.DefaultConfig()), testX, testY)
	}
	b.ReportMetric(exactAcc*100, "exact_acc_pct")
	b.ReportMetric(analogAcc*100, "analog_acc_pct")
}

// BenchmarkAblationDriveNonlinearity compares value-domain
// (pre-distorted) versus raw voltage-domain weight quantization on a
// functional convolution - the ablation behind photonics.MZMDrive.
func BenchmarkAblationDriveNonlinearity(b *testing.B) {
	a := tensor.RandomVolume(6, 10, 10, 501)
	w := tensor.RandomKernels(4, 6, 3, 3, 502)
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}
	want := tensor.Conv(a, w, cc)
	rms := func(got *tensor.Volume) float64 {
		var num, den float64
		for i := range want.Data {
			d := got.Data[i] - want.Data[i]
			num += d * d
			den += want.Data[i] * want.Data[i]
		}
		return math.Sqrt(num / den)
	}
	valueCfg := core.DefaultConfig()
	valueCfg.DisableNoise = true
	valueCfg.DisableCrosstalk = true
	voltCfg := valueCfg
	voltCfg.VoltageDomainWeights = true
	var ev, eu float64
	for i := 0; i < b.N; i++ {
		ev = rms(core.NewChip(valueCfg).Conv(a, w, cc, false))
		eu = rms(core.NewChip(voltCfg).Conv(a, w, cc, false))
	}
	b.ReportMetric(ev*100, "value_rms_pct")
	b.ReportMetric(eu*100, "voltage_rms_pct")
}

// BenchmarkAblationBitwidth sweeps the converter resolution against
// trained-model analog accuracy - the end-to-end form of the paper's
// 8-bit argument.
func BenchmarkAblationBitwidth(b *testing.B) {
	var rows []experiments.BitwidthRow
	for i := 0; i < b.N; i++ {
		rows = experiments.BitwidthSweep([]int{4, 6, 8}, 30)
	}
	for _, r := range rows {
		b.ReportMetric(r.AccuracyPct, fmt.Sprintf("acc_pct_%db", r.Bits))
	}
}

// BenchmarkExtendedModels maps the extended zoo (VGG19, MobileNetV2)
// on Albireo-C.
func BenchmarkExtendedModels(b *testing.B) {
	for _, m := range nn.Extended() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var mm core.ModelMapping
			for i := 0; i < b.N; i++ {
				mm = core.DefaultConfig().MapModel(m)
			}
			b.ReportMetric(mm.Latency()*1e3, "latency_ms")
		})
	}
}

// BenchmarkBaselines times the PIXEL and DEAP-CNN analytic models.
func BenchmarkBaselines(b *testing.B) {
	b.Run("PIXEL", func(b *testing.B) {
		px := baseline.NewPIXEL()
		var r baseline.Result
		for i := 0; i < b.N; i++ {
			r = px.Evaluate(nn.VGG16())
		}
		b.ReportMetric(r.Latency*1e3, "vgg16_ms")
	})
	b.Run("DEAP-CNN", func(b *testing.B) {
		dp := baseline.NewDEAPCNN()
		var r baseline.Result
		for i := 0; i < b.N; i++ {
			r = dp.Evaluate(nn.VGG16())
		}
		b.ReportMetric(r.Latency*1e3, "vgg16_ms")
	})
}
