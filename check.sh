#!/usr/bin/env bash
# check.sh - the tier-1 verification gate, with teeth.
#
#   build      the whole module compiles
#   vet        stdlib static analysis
#   race test  the full suite under the race detector (the Conv vs
#              ConvConcurrent bit-identity tests run here)
#   lint       albireo-lint: the type-aware module rules
#              (hotpath-alloc-proof, lock-order,
#              map-iteration-determinism) plus determinism,
#              obs-determinism, unit-safety, float-equality,
#              exit-hygiene, goroutine-hygiene (see README.md); the
#              JSON report lands in lint.out, archived by CI
#   bench      one-iteration smoke over every benchmark (catches bench
#              bit-rot; output lands in bench.out, archived by CI)
#   alloc gate the hot-path benchmarks at a fixed iteration count,
#              parsed into BENCH_core.json (archived by CI) and checked
#              against the committed bench_baseline.json: the build
#              fails if any hot benchmark's allocs/op regresses
#   serve gate open-loop tail-latency sweep (cmd/albireo-loadgen) in
#              virtual time, parsed into BENCH_serve.json (archived by
#              CI) and checked against the committed
#              bench_serve_baseline.json: the build fails if any
#              (pool, rate) point's p99 regresses
#   loadgen selftest
#              the same harness run twice from a fixed seed must emit
#              byte-identical artifacts (the determinism the serve
#              gate stands on)
#   fault demo smoke-run of the detect -> quarantine -> remap
#              walkthrough (examples/faulttolerance)
#   fleet      load-generator sweep through a 2-chip fleet with a
#              detuned worker serving degraded (metrics in fleet.out,
#              archived by CI)
#   health     per-worker BIST scan of the default pool (report lands
#              in health.out, archived by CI)
#   journal    record a seeded sweep into a hash-chained journal, then
#              albireo-replay verifies the chain and re-executes the
#              history bit-for-bit (log in journal.out, archived by CI)
#
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> albireo-lint ./... (JSON report in lint.out)"
go run ./cmd/albireo-lint -json lint.out ./...

echo "==> bench smoke (1 iteration, output in bench.out)"
go test -bench=. -benchtime=1x -run='^$' ./... | tee bench.out

echo "==> hot-path alloc gate (output in BENCH_core.json)"
# Fixed -benchtime keeps allocs/op deterministic: the one-time weight
# program compile amortizes over exactly 50 iterations, so the gate
# compares like against like. ns/op is reported but never gated.
go test -run '^$' -bench '^BenchmarkFunctional' -benchmem -benchtime 50x . |
	go run ./cmd/albireo-bench -json BENCH_core.json -baseline bench_baseline.json

echo "==> serve tail-latency gate (output in BENCH_serve.json)"
# Virtual-time sweep: the artifact is a pure function of the flags and
# seed, so p99 can be gated as strictly as allocs/op.
go run ./cmd/albireo-loadgen -json BENCH_serve.json -baseline bench_serve_baseline.json

echo "==> loadgen determinism selftest"
go run ./cmd/albireo-loadgen -selftest

echo "==> fault-management demo smoke (detect -> quarantine -> remap)"
go run ./examples/faulttolerance

echo "==> fleet serve smoke (degraded 2-chip pool, output in fleet.out)"
go run ./cmd/albireo-serve -addr "" -sweeps 1 -sweep-batch 1 -size 8 -pool 2 -detune "0,0,4,2,0.4" | tee fleet.out

echo "==> sharded fleet smoke (kernel-group fan-out, journaled + replayed, output in shard.out)"
# Every layer fans out across both chips and merges; the replay proves
# the sharded serving history is bit-exact end to end.
rm -rf shardjournal.d
go run ./cmd/albireo-serve -addr "" -sweeps 1 -sweep-batch 1 -size 8 -pool 2 \
	-shard -journal shardjournal.d | tee shard.out
go run ./cmd/albireo-replay -journal shardjournal.d | tee -a shard.out
rm -rf shardjournal.d

echo "==> BIST health report (output in health.out)"
go run ./cmd/albireo-serve -addr "" -sweeps 0 -bist | tee health.out

echo "==> journal record/verify/replay gate (output in journal.out)"
# Record a seeded degraded-pool sweep, then prove the chain verifies
# and the whole serving history replays bit-for-bit on a pool rebuilt
# from nothing but the journal header.
rm -rf journal.d
go run ./cmd/albireo-serve -addr "" -sweeps 1 -sweep-batch 1 -size 8 -pool 2 \
	-detune "0,0,4,2,0.4" -journal journal.d | tee journal.out
go run ./cmd/albireo-replay -journal journal.d -verify | tee -a journal.out
go run ./cmd/albireo-replay -journal journal.d | tee -a journal.out
rm -rf journal.d

echo "check.sh: all gates passed"
