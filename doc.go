// Package albireo is a pure-Go reproduction of "Albireo:
// Energy-Efficient Acceleration of Convolutional Neural Networks via
// Silicon Photonics" (Shiflett, Karanth, Bunescu, Louri - ISCA 2021).
//
// The module rebuilds the paper's entire stack from scratch: analytic
// silicon-photonic device models (internal/photonics), noise and
// crosstalk precision analysis (internal/noise, internal/circuit), the
// Albireo PLCU/PLCG/chip architecture as both a functional analog
// simulator and a cycle-level mapping model (internal/core),
// performance/power/area accounting (internal/perf), photonic and
// electronic baselines (internal/baseline), CNN workloads and exact
// references (internal/nn, internal/tensor), and an experiment harness
// that regenerates every table and figure of the paper's evaluation
// (internal/experiments, bench_test.go).
//
// Start with README.md for the tour, DESIGN.md for the system
// inventory and modeling decisions, and EXPERIMENTS.md for the
// paper-vs-measured record. The runnable entry points are the five
// commands under cmd/ and the six programs under examples/.
package albireo
