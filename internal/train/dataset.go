package train

import (
	"math"
	"math/rand"

	"albireo/internal/tensor"
)

// SyntheticDataset generates a procedural 3-class image set:
// horizontal stripes, vertical stripes, and checkerboards, each with
// random phase, stripe period, and additive noise. The classes are
// linearly inseparable in pixel space but trivially separable for a
// small CNN - exactly what an accelerator accuracy study needs.
//
// Images are single-channel size x size with values in [0, 1]
// (non-negative, as the optical power encoding requires).
func SyntheticDataset(n, size int, seed int64) ([]*tensor.Volume, []int) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.Volume, n)
	labels := make([]int, n)
	for i := range xs {
		class := rng.Intn(3)
		labels[i] = class
		xs[i] = synthImage(class, size, rng)
	}
	return xs, labels
}

// synthImage draws one image of the given class.
func synthImage(class, size int, rng *rand.Rand) *tensor.Volume {
	period := 2 + rng.Intn(3) // 2..4 pixel stripes
	phase := rng.Intn(period * 2)
	noise := 0.15
	v := tensor.NewVolume(1, size, size)
	v.Fill(func(_, y, x int) float64 {
		var on bool
		switch class {
		case 0: // horizontal stripes
			on = ((y+phase)/period)%2 == 0
		case 1: // vertical stripes
			on = ((x+phase)/period)%2 == 0
		default: // checkerboard
			on = (((y+phase)/period)+((x+phase)/period))%2 == 0
		}
		base := 0.15
		if on {
			base = 0.85
		}
		return clamp01(base + rng.NormFloat64()*noise)
	})
	return v
}

func clamp01(x float64) float64 {
	return math.Min(math.Max(x, 0), 1)
}

// ClassNames labels the synthetic classes for reports.
func ClassNames() []string {
	return []string{"h-stripes", "v-stripes", "checker"}
}
