package train

import (
	"math"
	"testing"

	"albireo/internal/core"
	"albireo/internal/inference"
	"albireo/internal/tensor"
)

func TestSoftmaxCrossEntropy(t *testing.T) {
	// Uniform logits: loss is log(C) and gradients sum to zero.
	logits := []float64{0, 0, 0}
	loss, grad := SoftmaxCrossEntropy(logits, 1)
	if math.Abs(loss-math.Log(3)) > 1e-12 {
		t.Errorf("uniform loss = %g, want ln 3", loss)
	}
	var sum float64
	for _, g := range grad {
		sum += g
	}
	if math.Abs(sum) > 1e-12 {
		t.Error("softmax gradient components must sum to zero")
	}
	// Confident correct prediction: near-zero loss.
	loss, _ = SoftmaxCrossEntropy([]float64{10, -10, -10}, 0)
	if loss > 1e-6 {
		t.Errorf("confident correct loss = %g", loss)
	}
	// Numerical stability with huge logits.
	loss, _ = SoftmaxCrossEntropy([]float64{1e4, 0}, 0)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Error("softmax must be stable for large logits")
	}
}

func TestSoftmaxPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad label should panic")
		}
	}()
	SoftmaxCrossEntropy([]float64{1, 2}, 5)
}

func TestConvBackwardNumericalGradient(t *testing.T) {
	// Finite-difference check of the convolution weight gradient.
	a := tensor.RandomVolume(2, 5, 5, 31)
	w := tensor.RandomKernels(2, 2, 3, 3, 32)
	// Loss = sum of outputs (dOut = ones).
	out := tensor.Conv(a, w, tensor.ConvConfig{Pad: 1})
	dOut := tensor.NewVolume(out.Z, out.Y, out.X)
	for i := range dOut.Data {
		dOut.Data[i] = 1
	}
	dW, dA := convBackward(a, w, dOut, 1)

	sumOut := func() float64 {
		o := tensor.Conv(a, w, tensor.ConvConfig{Pad: 1})
		var s float64
		for _, v := range o.Data {
			s += v
		}
		return s
	}
	const eps = 1e-6
	for _, i := range []int{0, 7, 17, len(w.Data) - 1} {
		orig := w.Data[i]
		w.Data[i] = orig + eps
		plus := sumOut()
		w.Data[i] = orig - eps
		minus := sumOut()
		w.Data[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(numeric-dW.Data[i]) > 1e-4 {
			t.Errorf("dW[%d]: numeric %.6f, analytic %.6f", i, numeric, dW.Data[i])
		}
	}
	for _, i := range []int{0, 11, len(a.Data) - 1} {
		orig := a.Data[i]
		a.Data[i] = orig + eps
		plus := sumOut()
		a.Data[i] = orig - eps
		minus := sumOut()
		a.Data[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(numeric-dA.Data[i]) > 1e-4 {
			t.Errorf("dA[%d]: numeric %.6f, analytic %.6f", i, numeric, dA.Data[i])
		}
	}
}

func TestFCBackwardNumericalGradient(t *testing.T) {
	a := tensor.RandomVolume(2, 3, 3, 41)
	w := tensor.RandomKernels(3, 2, 3, 3, 42)
	dLogits := []float64{0.3, -0.7, 0.4}
	dW, dA := fcBackward(a, w, dLogits)

	loss := func() float64 {
		out := tensor.FullyConnected(a, w)
		var s float64
		for i, v := range out {
			s += v * dLogits[i]
		}
		return s
	}
	const eps = 1e-6
	for _, i := range []int{0, 9, len(w.Data) - 1} {
		orig := w.Data[i]
		w.Data[i] = orig + eps
		plus := loss()
		w.Data[i] = orig - eps
		minus := loss()
		w.Data[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(numeric-dW.Data[i]) > 1e-5 {
			t.Errorf("dW[%d]: numeric %.6f, analytic %.6f", i, numeric, dW.Data[i])
		}
	}
	for _, i := range []int{0, len(a.Data) - 1} {
		orig := a.Data[i]
		a.Data[i] = orig + eps
		plus := loss()
		a.Data[i] = orig - eps
		minus := loss()
		a.Data[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(numeric-dA.Data[i]) > 1e-5 {
			t.Errorf("dA[%d]: numeric %.6f, analytic %.6f", i, numeric, dA.Data[i])
		}
	}
}

func TestMaxPoolRoundTrip(t *testing.T) {
	a := tensor.RandomVolume(2, 4, 4, 51)
	out, idx := maxPoolForward(a)
	if out.Y != 2 || out.X != 2 || len(idx) != 8 {
		t.Fatal("pool shapes")
	}
	// Forward matches the tensor reference.
	want := tensor.MaxPool(a, 2, 2)
	for i := range want.Data {
		if out.Data[i] != want.Data[i] {
			t.Fatal("pool forward mismatch")
		}
	}
	// Backward routes each gradient to the recorded winner only.
	dOut := tensor.NewVolume(2, 2, 2)
	for i := range dOut.Data {
		dOut.Data[i] = float64(i + 1)
	}
	dIn := maxPoolBackward(dOut, idx, a)
	var nz int
	for _, v := range dIn.Data {
		if v != 0 {
			nz++
		}
	}
	if nz != 8 {
		t.Errorf("pool backward should touch exactly 8 winners, got %d", nz)
	}
}

func TestSyntheticDatasetProperties(t *testing.T) {
	xs, labels := SyntheticDataset(90, 12, 5)
	if len(xs) != 90 || len(labels) != 90 {
		t.Fatal("dataset size")
	}
	seen := map[int]int{}
	for i, x := range xs {
		seen[labels[i]]++
		for _, v := range x.Data {
			if v < 0 || v > 1 {
				t.Fatal("pixels must stay in [0,1] (optical encoding)")
			}
		}
	}
	for c := 0; c < 3; c++ {
		if seen[c] < 10 {
			t.Errorf("class %d underrepresented: %d", c, seen[c])
		}
	}
	if len(ClassNames()) != 3 {
		t.Error("class names")
	}
	// Deterministic for a seed.
	xs2, _ := SyntheticDataset(90, 12, 5)
	for i := range xs2[0].Data {
		if xs[0].Data[i] != xs2[0].Data[i] {
			t.Fatal("dataset must be deterministic per seed")
		}
	}
}

func TestTrainingConverges(t *testing.T) {
	// The CNN must learn the synthetic task to high accuracy - the
	// substrate check for every analog-accuracy experiment.
	xs, labels := SyntheticDataset(150, 12, 8)
	net := NewSmallNet(12, 3, 9)
	before := net.Accuracy(xs, labels)
	acc := net.Train(xs, labels, DefaultHyper())
	if acc < 0.9 {
		t.Fatalf("training accuracy = %.2f, want >= 0.9 (started at %.2f)", acc, before)
	}
	if acc <= before {
		t.Error("training should improve accuracy")
	}
	// Generalization to fresh samples.
	testX, testY := SyntheticDataset(60, 12, 99)
	if g := net.Accuracy(testX, testY); g < 0.85 {
		t.Errorf("test accuracy = %.2f, want >= 0.85", g)
	}
}

func TestTrainedModelOnAnalogChip(t *testing.T) {
	// The headline experiment: a trained model keeps (nearly) its
	// accuracy when executed on the impaired analog chip.
	xs, labels := SyntheticDataset(150, 12, 8)
	net := NewSmallNet(12, 3, 9)
	net.Train(xs, labels, DefaultHyper())

	testX, testY := SyntheticDataset(60, 12, 123)
	exactAcc := AnalogAccuracy(net, inference.Exact{}, testX, testY)

	analog := inference.NewAnalog(core.DefaultConfig())
	analogAcc := AnalogAccuracy(net, analog, testX, testY)

	if exactAcc < 0.85 {
		t.Fatalf("exact deployment accuracy = %.2f, substrate problem", exactAcc)
	}
	if analogAcc < exactAcc-0.15 {
		t.Errorf("analog accuracy %.2f fell more than 15 points below exact %.2f",
			analogAcc, exactAcc)
	}
}

func TestNewSmallNetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-multiple-of-4 size should panic")
		}
	}()
	NewSmallNet(10, 3, 1)
}

func TestTrainMismatchedPanics(t *testing.T) {
	net := NewSmallNet(12, 3, 1)
	defer func() {
		if recover() == nil {
			t.Error("mismatched dataset should panic")
		}
	}()
	net.Train(make([]*tensor.Volume, 2), []int{0}, DefaultHyper())
}
