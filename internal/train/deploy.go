package train

import (
	"albireo/internal/inference"
	"albireo/internal/tensor"
)

// ToInferenceNetwork converts a trained SmallNet into an
// inference.Network so it can run on any backend - in particular the
// Albireo analog chip. The layer structure maps one-to-one: the
// backends handle quantization and impairments internally.
func (n *SmallNet) ToInferenceNetwork() *inference.Network {
	return &inference.Network{
		Name: "trained-smallnet",
		Ops: []inference.Op{
			inference.ConvOp{Kernels: n.C1, Cfg: tensor.ConvConfig{Pad: 1}, ReLU: true},
			inference.PoolOp{Max: true, Window: 2, Stride: 2},
			inference.ConvOp{Kernels: n.C2, Cfg: tensor.ConvConfig{Pad: 1}, ReLU: true},
			inference.PoolOp{Max: true, Window: 2, Stride: 2},
		},
		Classifier: n.FC,
	}
}

// AnalogAccuracy runs the trained network on a backend over a dataset
// and returns its top-1 accuracy - the deployment metric for the
// analog chip.
func AnalogAccuracy(n *SmallNet, b inference.Backend, xs []*tensor.Volume, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	net := n.ToInferenceNetwork()
	correct := 0
	for i, x := range xs {
		if net.Predict(b, x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}
