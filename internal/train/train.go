// Package train provides a small, dependency-free CNN training stack:
// manual backpropagation for convolution, ReLU, max-pooling, and
// fully-connected layers, softmax cross-entropy, SGD with momentum,
// and a procedural synthetic dataset. It exists so the Albireo analog
// simulator can be evaluated on a *trained* network - the paper's
// premise that reduced-precision analog inference preserves accuracy
// (Section II-C.2) only means something relative to weights that
// actually classify.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"albireo/internal/tensor"
)

// SmallNet is a two-stage CNN: conv(3x3) -> ReLU -> maxpool(2) ->
// conv(3x3) -> ReLU -> maxpool(2) -> FC classifier. Input is a
// single-channel Size x Size image.
type SmallNet struct {
	Size    int
	Classes int
	C1      *tensor.Kernels // 1 -> F1
	C2      *tensor.Kernels // F1 -> F2
	FC      *tensor.Kernels // F2 x (Size/4)^2 -> Classes
	// Momentum buffers, lazily shaped like the parameters.
	vC1, vC2, vFC []float64
}

// Hyper holds training hyperparameters.
type Hyper struct {
	Epochs   int
	LR       float64
	Momentum float64
	// BatchLog enables per-epoch loss output (off in tests).
	BatchLog bool
}

// DefaultHyper returns a configuration that converges on the synthetic
// dataset in a few epochs.
func DefaultHyper() Hyper {
	return Hyper{Epochs: 12, LR: 0.01, Momentum: 0.9}
}

// NewSmallNet builds a randomly initialized network (He-style scaling).
func NewSmallNet(size, classes int, seed int64) *SmallNet {
	if size%4 != 0 {
		panic(fmt.Sprintf("train: size %d must be divisible by 4", size)) //lint:ignore exit-hygiene synthetic dataset size precondition; caller bug
	}
	rng := rand.New(rand.NewSource(seed))
	const f1, f2 = 6, 12
	init := func(k *tensor.Kernels, fanIn int) {
		scale := math.Sqrt(2 / float64(fanIn))
		for i := range k.Data {
			k.Data[i] = rng.NormFloat64() * scale
		}
	}
	n := &SmallNet{
		Size:    size,
		Classes: classes,
		C1:      tensor.NewKernels(f1, 1, 3, 3),
		C2:      tensor.NewKernels(f2, f1, 3, 3),
		FC:      tensor.NewKernels(classes, f2, size/4, size/4),
	}
	init(n.C1, 9)
	init(n.C2, 9*f1)
	init(n.FC, f2*(size/4)*(size/4))
	n.vC1 = make([]float64, len(n.C1.Data))
	n.vC2 = make([]float64, len(n.C2.Data))
	n.vFC = make([]float64, len(n.FC.Data))
	return n
}

// forwardCache keeps the intermediates backprop needs.
type forwardCache struct {
	x        *tensor.Volume
	conv1    *tensor.Volume // pre-ReLU
	act1     *tensor.Volume
	pool1    *tensor.Volume
	pool1Idx []int
	conv2    *tensor.Volume
	act2     *tensor.Volume
	pool2    *tensor.Volume
	pool2Idx []int
	logits   []float64
}

// Forward runs the network and returns logits plus the cache.
func (n *SmallNet) Forward(x *tensor.Volume) ([]float64, *forwardCache) {
	c := &forwardCache{x: x}
	c.conv1 = tensor.Conv(x, n.C1, tensor.ConvConfig{Pad: 1})
	c.act1 = reluForward(c.conv1)
	c.pool1, c.pool1Idx = maxPoolForward(c.act1)
	c.conv2 = tensor.Conv(c.pool1, n.C2, tensor.ConvConfig{Pad: 1})
	c.act2 = reluForward(c.conv2)
	c.pool2, c.pool2Idx = maxPoolForward(c.act2)
	c.logits = tensor.FullyConnected(c.pool2, n.FC)
	return c.logits, c
}

// Predict returns the argmax class for an input.
func (n *SmallNet) Predict(x *tensor.Volume) int {
	logits, _ := n.Forward(x)
	best, idx := math.Inf(-1), -1
	for i, v := range logits {
		if v > best {
			best, idx = v, i
		}
	}
	return idx
}

// reluForward returns max(0, x) without mutating the input.
func reluForward(v *tensor.Volume) *tensor.Volume {
	out := v.Clone()
	tensor.ReLU(out)
	return out
}

// maxPoolForward performs 2x2 stride-2 max pooling and records the
// winning flat index per output element.
func maxPoolForward(a *tensor.Volume) (*tensor.Volume, []int) {
	by, bx := a.Y/2, a.X/2
	out := tensor.NewVolume(a.Z, by, bx)
	idx := make([]int, a.Z*by*bx)
	k := 0
	for z := 0; z < a.Z; z++ {
		for oy := 0; oy < by; oy++ {
			for ox := 0; ox < bx; ox++ {
				best, bestAt := math.Inf(-1), 0
				for ky := 0; ky < 2; ky++ {
					for kx := 0; kx < 2; kx++ {
						y, x := 2*oy+ky, 2*ox+kx
						v := a.At(z, y, x)
						if v > best {
							best = v
							bestAt = (z*a.Y+y)*a.X + x
						}
					}
				}
				out.Set(z, oy, ox, best)
				idx[k] = bestAt
				k++
			}
		}
	}
	return out, idx
}

// maxPoolBackward routes gradients to the recorded winners.
func maxPoolBackward(dOut *tensor.Volume, idx []int, inShape *tensor.Volume) *tensor.Volume {
	dIn := tensor.NewVolume(inShape.Z, inShape.Y, inShape.X)
	for k, at := range idx {
		dIn.Data[at] += dOut.Data[k]
	}
	return dIn
}

// reluBackward zeroes gradients where the pre-activation was negative.
func reluBackward(dOut, pre *tensor.Volume) *tensor.Volume {
	dIn := dOut.Clone()
	for i := range dIn.Data {
		if pre.Data[i] <= 0 {
			dIn.Data[i] = 0
		}
	}
	return dIn
}

// convBackward computes kernel and input gradients for a stride-1
// padded convolution.
func convBackward(a *tensor.Volume, w *tensor.Kernels, dOut *tensor.Volume, pad int) (dW *tensor.Kernels, dA *tensor.Volume) {
	dW = tensor.NewKernels(w.M, w.Z, w.Y, w.X)
	dA = tensor.NewVolume(a.Z, a.Y, a.X)
	for m := 0; m < w.M; m++ {
		for oy := 0; oy < dOut.Y; oy++ {
			for ox := 0; ox < dOut.X; ox++ {
				g := dOut.At(m, oy, ox)
				if g == 0 {
					continue
				}
				for z := 0; z < w.Z; z++ {
					for ky := 0; ky < w.Y; ky++ {
						ay := oy - pad + ky
						if ay < 0 || ay >= a.Y {
							continue
						}
						for kx := 0; kx < w.X; kx++ {
							ax := ox - pad + kx
							if ax < 0 || ax >= a.X {
								continue
							}
							dW.Set(m, z, ky, kx, dW.At(m, z, ky, kx)+g*a.At(z, ay, ax))
							dA.Set(z, ay, ax, dA.At(z, ay, ax)+g*w.At(m, z, ky, kx))
						}
					}
				}
			}
		}
	}
	return dW, dA
}

// fcBackward computes classifier gradients.
func fcBackward(a *tensor.Volume, w *tensor.Kernels, dLogits []float64) (dW *tensor.Kernels, dA *tensor.Volume) {
	dW = tensor.NewKernels(w.M, w.Z, w.Y, w.X)
	dA = tensor.NewVolume(a.Z, a.Y, a.X)
	n := a.Z * a.Y * a.X
	for m := 0; m < w.M; m++ {
		g := dLogits[m]
		if g == 0 {
			continue
		}
		base := m * n
		for i := 0; i < n; i++ {
			dW.Data[base+i] += g * a.Data[i]
			dA.Data[i] += g * w.Data[base+i]
		}
	}
	return dW, dA
}

// SoftmaxCrossEntropy returns the loss and dLogits for a target class.
func SoftmaxCrossEntropy(logits []float64, label int) (float64, []float64) {
	if label < 0 || label >= len(logits) {
		panic(fmt.Sprintf("train: label %d out of range", label)) //lint:ignore exit-hygiene label range invariant; caller bug
	}
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	probs := make([]float64, len(logits))
	for i, v := range logits {
		probs[i] = math.Exp(v - maxv)
		sum += probs[i]
	}
	loss := 0.0
	for i := range probs {
		probs[i] /= sum
		if i == label {
			loss = -math.Log(math.Max(probs[i], 1e-12))
			probs[i] -= 1
		}
	}
	return loss, probs
}

// Step runs one SGD-with-momentum update from a single example and
// returns its loss.
func (n *SmallNet) Step(x *tensor.Volume, label int, h Hyper) float64 {
	logits, c := n.Forward(x)
	loss, dLogits := SoftmaxCrossEntropy(logits, label)

	dFC, dPool2 := fcBackward(c.pool2, n.FC, dLogits)
	dAct2 := maxPoolBackward(dPool2, c.pool2Idx, c.act2)
	dConv2 := reluBackward(dAct2, c.conv2)
	dC2, dPool1 := convBackward(c.pool1, n.C2, dConv2, 1)
	dAct1 := maxPoolBackward(dPool1, c.pool1Idx, c.act1)
	dConv1 := reluBackward(dAct1, c.conv1)
	dC1, _ := convBackward(c.x, n.C1, dConv1, 1)

	sgd := func(p *tensor.Kernels, v []float64, g *tensor.Kernels) {
		for i := range p.Data {
			v[i] = h.Momentum*v[i] - h.LR*g.Data[i]
			p.Data[i] += v[i]
		}
	}
	sgd(n.C1, n.vC1, dC1)
	sgd(n.C2, n.vC2, dC2)
	sgd(n.FC, n.vFC, dFC)
	return loss
}

// Train runs epochs of single-example SGD over the dataset and returns
// the final training accuracy.
func (n *SmallNet) Train(xs []*tensor.Volume, labels []int, h Hyper) float64 {
	if len(xs) != len(labels) {
		panic("train: inputs and labels must align") //lint:ignore exit-hygiene dataset alignment invariant; caller bug
	}
	rng := rand.New(rand.NewSource(1))
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < h.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		for _, i := range order {
			total += n.Step(xs[i], labels[i], h)
		}
		if h.BatchLog {
			fmt.Printf("epoch %d: mean loss %.4f\n", e, total/float64(len(xs)))
		}
	}
	return n.Accuracy(xs, labels)
}

// Accuracy returns the top-1 accuracy over a dataset.
func (n *SmallNet) Accuracy(xs []*tensor.Volume, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if n.Predict(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}
