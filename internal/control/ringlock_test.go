package control

import (
	"math"
	"testing"

	"albireo/internal/photonics"
	"albireo/internal/units"
)

func TestLockHoldsUnderStaticOffset(t *testing.T) {
	// A fabrication offset of 2 nm (well within half an FSR) must be
	// pulled in and held far below the ring FWHM (~166 pm).
	lock := NewRingLock(1)
	rep := lock.Run(400, 2*units.Nano, 0, 0)
	if rep.SettledResidual > 10e-12 {
		t.Errorf("settled residual %.1f pm, want < 10 pm", rep.SettledResidual*1e12)
	}
	if rep.Saturated {
		t.Error("2 nm offset should not saturate a 20 mW heater")
	}
	// The steady heater power matches the tuner's requirement.
	want := photonics.NewThermalTuner().PowerForShift(2 * units.Nano)
	if math.Abs(rep.MeanHeaterPower-want)/want > 0.25 {
		t.Errorf("mean heater %.2f mW, want ~%.2f mW", rep.MeanHeaterPower*1e3, want*1e3)
	}
}

func TestLockTracksDriftAndDisturbance(t *testing.T) {
	// A slow ramp (thermal warm-up) plus a sinusoidal disturbance:
	// residual stays well inside the channel's precision budget. The
	// Figure 4c crosstalk analysis assumed rings sit exactly on their
	// channels; this shows the servo justifies that.
	lock := NewRingLock(2)
	rep := lock.Run(600, 1*units.Nano, 2e-12 /* 2 pm/step ramp */, 20e-12 /* 20 pm sine */)
	fwhm := photonics.NewMRR(1550 * units.Nano).FWHM()
	if rep.WorstResidual > fwhm/10 {
		t.Errorf("worst residual %.1f pm exceeds FWHM/10 = %.1f pm",
			rep.WorstResidual*1e12, fwhm/10*1e12)
	}
}

func TestLockSaturatesGracefully(t *testing.T) {
	// An offset beyond the heater range saturates: the report flags it
	// and the residual stays large - the condition that becomes a
	// DetunedRing fault in the architecture model.
	lock := NewRingLock(3)
	rep := lock.Run(300, 12*units.Nano, 0, 0) // needs 24 mW > 20 mW ceiling
	if !rep.Saturated {
		t.Error("12 nm offset must saturate the 20 mW heater")
	}
	if rep.SettledResidual < 1e-9 {
		t.Error("saturated servo cannot reach the setpoint")
	}
}

func TestLockHeaterNonNegative(t *testing.T) {
	// Negative offsets (ring fabricated red of the channel) cannot be
	// corrected by heating alone: power clamps at zero.
	lock := NewRingLock(4)
	lock.Run(100, -1*units.Nano, 0, 0)
	if lock.HeaterPower() != 0 {
		t.Errorf("heater power %.3g should clamp at zero for red offsets", lock.HeaterPower())
	}
}

func TestLockPowerScalesWithOffset(t *testing.T) {
	// Mean heater power is proportional to the fabrication offset -
	// the statistical basis of the AverageLockPower budget.
	r1 := NewRingLock(5).Run(400, 1*units.Nano, 0, 0)
	r4 := NewRingLock(6).Run(400, 4*units.Nano, 0, 0)
	ratio := r4.MeanHeaterPower / r1.MeanHeaterPower
	if math.Abs(ratio-4) > 0.5 {
		t.Errorf("heater power ratio %.2f, want ~4", ratio)
	}
}

func TestLockReportDegenerate(t *testing.T) {
	if (LockReport{}) != NewRingLock(7).Run(0, 0, 0, 0) {
		t.Error("zero-step run should return an empty report")
	}
	rep := NewRingLock(8).Run(100, 1e-9, 0, 0)
	if rep.String() == "" {
		t.Error("String")
	}
}
