// Package control models the resonance-locking control loop every
// Albireo MRR needs in deployment: silicon's thermo-optic coefficient
// drifts a ring's resonance with ambient temperature (~62 pm/K at
// 1550 nm), and an uncontrolled drift of one FWHM (~166 pm, under 3 K)
// would silently destroy the computation. A per-ring PI servo steers
// the micro-heater to hold the ring on its channel - this is where the
// Table I MRR tuning power goes, and its failure mode is exactly the
// DetunedRing fault of internal/core.
package control

import (
	"fmt"
	"math"
	"math/rand"

	"albireo/internal/photonics"
	"albireo/internal/units"
)

// RingLock is a PI controller steering one ring's heater.
type RingLock struct {
	// Tuner converts heater power to resonance shift.
	Tuner photonics.ThermalTuner
	// Kp, Ki are the proportional and integral gains (units: watts of
	// heater power per meter of detune).
	Kp, Ki float64
	// SensorSigma is the detune-measurement noise (meters), e.g. from
	// a dithered monitor photodiode.
	SensorSigma float64

	heater   float64 // current heater power, watts
	integral float64 // integral of detune error, meter-steps
	rng      *rand.Rand
}

// NewRingLock returns a servo with gains that settle in a few steps
// for the Table II ring.
func NewRingLock(seed int64) *RingLock {
	t := photonics.NewThermalTuner()
	// A 1 pm error should command on the order of its corrective
	// power: 1 pm / (0.5 nm/mW) = 2 uW. Kp of ~1 W/nm gives that with
	// margin; Ki a tenth of Kp per step.
	return &RingLock{
		Tuner:       t,
		Kp:          2 * units.Mega, // W per meter of detune (= 2 uW/pm)
		Ki:          4e5,
		SensorSigma: 2 * units.Pico, // 2 pm measurement noise
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// HeaterPower returns the current heater drive in watts.
func (r *RingLock) HeaterPower() float64 { return r.heater }

// Step closes the loop once: ambientShift is the open-loop resonance
// error (meters) the environment imposes this step; the servo measures
// the residual detune (with sensor noise), updates the heater, and
// returns the true residual detune after actuation.
func (r *RingLock) Step(ambientShift float64) float64 {
	// The heater red-shifts the resonance; with the ring fabricated
	// blue of its channel, heater power cancels positive ambient
	// error. Residual = ambient - heater-induced shift.
	heaterShift := r.heater / units.Milli * r.Tuner.EfficiencyNMPerMW * units.Nano
	residual := ambientShift - heaterShift
	measured := residual + r.rng.NormFloat64()*r.SensorSigma

	r.integral += measured
	r.heater += r.Kp*measured + r.Ki*r.integral
	if r.heater < 0 {
		r.heater = 0
	}
	if r.heater > r.Tuner.MaxPower {
		r.heater = r.Tuner.MaxPower
	}
	return residual
}

// LockReport summarizes a closed-loop run.
type LockReport struct {
	// SettledResidual is the RMS residual detune (meters) over the
	// final quarter of the run.
	SettledResidual float64
	// WorstResidual is the largest |detune| after the settling period.
	WorstResidual float64
	// MeanHeaterPower is the average heater drive (watts) - the power
	// the Table I MRR row must cover.
	MeanHeaterPower float64
	// Saturated reports whether the heater hit its ceiling.
	Saturated bool
}

// Run simulates steps of a drifting environment: a fabrication offset
// plus a slow thermal ramp plus sinusoidal disturbance, all expressed
// as open-loop resonance error in meters.
func (r *RingLock) Run(steps int, fabOffset, rampPerStep, sineAmp float64) LockReport {
	if steps <= 0 {
		return LockReport{}
	}
	var rep LockReport
	settleStart := steps * 3 / 4
	var sum2 float64
	var n int
	var heaterSum float64
	for i := 0; i < steps; i++ {
		ambient := fabOffset + rampPerStep*float64(i) +
			sineAmp*math.Sin(2*math.Pi*float64(i)/40)
		res := r.Step(ambient)
		heaterSum += r.heater
		if r.heater >= r.Tuner.MaxPower {
			rep.Saturated = true
		}
		if i >= settleStart {
			sum2 += res * res
			n++
			if a := math.Abs(res); a > rep.WorstResidual {
				rep.WorstResidual = a
			}
		}
	}
	rep.SettledResidual = math.Sqrt(sum2 / float64(n))
	rep.MeanHeaterPower = heaterSum / float64(steps)
	return rep
}

// String implements fmt.Stringer.
func (rep LockReport) String() string {
	return fmt.Sprintf("lock{rms %.2f pm, worst %.2f pm, heater %.2f mW, sat=%v}",
		rep.SettledResidual*units.Tera, rep.WorstResidual*units.Tera,
		rep.MeanHeaterPower*units.Kilo, rep.Saturated)
}
