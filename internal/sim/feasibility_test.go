package sim

import (
	"testing"

	"albireo/internal/core"
	"albireo/internal/nn"
)

func TestVGGConvKernelsFitCache(t *testing.T) {
	// VGG16's largest conv kernel is 3x3x512 = 4608 bytes: comfortably
	// inside the 16 kB kernel cache, as the paper's sizing implies.
	mf := CheckModel(core.DefaultConfig(), nn.VGG16())
	for _, f := range mf.Layers {
		if f.Layer.Kind != nn.Conv {
			continue
		}
		if !f.KernelCacheFits {
			t.Errorf("%s: conv kernel (%d B) should fit the 16 kB cache", f.Layer.Name, f.KernelBytes)
		}
	}
}

func TestFCKernelsExceedCache(t *testing.T) {
	// VGG16 fc1 kernels cover the 25088-element input: they must
	// stream (cache misfit).
	mf := CheckModel(core.DefaultConfig(), nn.VGG16())
	var fc1 *Feasibility
	for i := range mf.Layers {
		if mf.Layers[i].Layer.Name == "fc1" {
			fc1 = &mf.Layers[i]
		}
	}
	if fc1 == nil {
		t.Fatal("missing fc1")
	}
	if fc1.KernelCacheFits {
		t.Errorf("fc1 kernel (%d B) cannot fit a 16 kB cache", fc1.KernelBytes)
	}
	if mf.CacheMisfits == 0 {
		t.Error("VGG16 should report FC cache misfits")
	}
}

func TestEarlyLayersExceedGlobalBuffer(t *testing.T) {
	// 224x224x64 activations are 3.2 MB: far beyond the 256 kB global
	// buffer, so early VGG layers tile through off-chip memory.
	mf := CheckModel(core.DefaultConfig(), nn.VGG16())
	if mf.BufferMisfits == 0 {
		t.Error("VGG16 early layers should exceed the 256 kB buffer")
	}
	// Late layers (14x14x512 = 100 kB) fit.
	for _, f := range mf.Layers {
		if f.Layer.Name == "conv5_1" && !f.GlobalBufferFits {
			t.Error("conv5_1 activations should fit the global buffer")
		}
	}
}

func TestBandwidthWithinLimits(t *testing.T) {
	// Receptive-field convolutions and FC layers stream within the
	// banked SRAM bandwidth at the modulation rate. The paper's
	// pointwise mapping (Section III-C) is the exception: it wants
	// Nu*Nm*Nd fresh operands per PLCG per cycle, which exceeds both
	// the buffer banks and the 64-wavelength distribution budget - a
	// limitation this checker surfaces (see EXPERIMENTS.md).
	for _, m := range nn.Benchmarks() {
		mf := CheckModel(core.DefaultConfig(), m)
		for _, f := range mf.Layers {
			if f.Layer.Kind == nn.Pointwise {
				if f.InputBandwidthOK {
					t.Errorf("%s/%s: the pointwise mapping should flag input-bandwidth pressure",
						m.Name, f.Layer.Name)
				}
				continue
			}
			if !f.InputBandwidthOK {
				t.Errorf("%s/%s: input stream %.1f GB/s exceeds the buffer",
					m.Name, f.Layer.Name, f.InputBandwidth/1e9)
			}
			if !f.WeightBandwidthOK {
				t.Errorf("%s/%s: weight stream %.1f GB/s exceeds the cache",
					m.Name, f.Layer.Name, f.WeightBandwidth/1e9)
			}
		}
	}
}

func TestPoolingIsAlwaysFeasible(t *testing.T) {
	f := CheckLayer(core.DefaultConfig(), nn.Layer{
		Kind: nn.MaxPoolKind, InZ: 64, InY: 28, InX: 28, OutZ: 64, KY: 2, KX: 2, Stride: 2,
	})
	if !f.KernelCacheFits || !f.InputBandwidthOK || !f.GlobalBufferFits {
		t.Error("pooling layers are trivially feasible")
	}
}

func TestGroupedKernelBytes(t *testing.T) {
	// AlexNet conv2 (grouped): kernel depth is 48, not 96.
	f := CheckLayer(core.DefaultConfig(), nn.Layer{
		Kind: nn.Conv, InZ: 96, InY: 27, InX: 27, OutZ: 256, KY: 5, KX: 5, Stride: 1, Pad: 2, Groups: 2,
	})
	if f.KernelBytes != 25*48 {
		t.Errorf("grouped kernel bytes = %d, want %d", f.KernelBytes, 25*48)
	}
}

func TestFeasibilityString(t *testing.T) {
	if CheckModel(core.DefaultConfig(), nn.MobileNet()).String() == "" {
		t.Error("String")
	}
}
