// Package sim is a cycle-resolved dataflow simulator for the Albireo
// chip. It walks the Algorithm 2 loop nest schedule step by step,
// counting cycles and SRAM traffic, and quantifies the claim of paper
// Section III-B: the PLCG's depth-first aggregation "creates no
// partial sum writes back to memory", which matters because "data
// movement can consume magnitudes more energy than computation".
//
// Two dataflows are modeled:
//
//   - DepthFirst (the paper's): for each output tile, all channel
//     groups are aggregated in the PLCG register before write-back.
//     Weights retarget every cycle (which the 5 GS/s DACs are specced
//     for); no partial-sum traffic exists.
//   - WeightStationary (the ablation): weights are held for a full
//     sweep of output tiles, so each tile's partial sum must round-trip
//     through the global buffer between channel groups.
//
// The simulator's cycle count is validated against the analytic
// mapping model (core.Config.MapLayer) in the tests: with the paper's
// schedule they agree exactly.
package sim

import (
	"fmt"

	"albireo/internal/core"
	"albireo/internal/nn"
	"albireo/internal/obs"
	"albireo/internal/units"
)

// Dataflow selects the loop order.
type Dataflow int

const (
	// DepthFirst is the paper's schedule: channel groups inner,
	// partials aggregated in the PLCG register.
	DepthFirst Dataflow = iota
	// WeightStationary holds weights across output tiles and spills
	// partial sums to the global buffer.
	WeightStationary
)

// String names the dataflow.
func (d Dataflow) String() string {
	switch d {
	case DepthFirst:
		return "depth-first"
	case WeightStationary:
		return "weight-stationary"
	default:
		return "unknown"
	}
}

// Params configures a simulation.
type Params struct {
	Config   core.Config
	Dataflow Dataflow
	// ActivationBytes and WeightBytes are operand widths (1 each for
	// the 8-bit pipeline); PsumBytes is the partial-sum width held
	// between channel groups (wider than an operand).
	ActivationBytes, WeightBytes, PsumBytes int
	// Obs and Trace, when non-nil, receive cycle-denominated telemetry:
	// schedule cycles, SRAM traffic through metered arrays,
	// kernel-cache hit/miss counts, and per-layer dataflow spans. Both
	// default to nil (no overhead beyond plain arithmetic).
	Obs   *obs.Registry
	Trace *obs.Trace
}

// DefaultParams returns the paper's configuration: 8-bit operands,
// 24-bit partial sums, depth-first dataflow.
func DefaultParams() Params {
	return Params{
		Config:          core.DefaultConfig(),
		Dataflow:        DepthFirst,
		ActivationBytes: 1,
		WeightBytes:     1,
		PsumBytes:       3,
	}
}

// LayerStats is the simulation result for one layer.
type LayerStats struct {
	Layer nn.Layer
	// Cycles is the schedule length.
	Cycles int64
	// InputBytes counts global-buffer activation reads (one broadcast
	// stream feeds all PLCGs).
	InputBytes int64
	// WeightBytes counts kernel-cache reads across all PLCGs.
	WeightBytes int64
	// PsumReadBytes and PsumWriteBytes count partial-sum round-trips
	// through the global buffer (zero for DepthFirst).
	PsumReadBytes, PsumWriteBytes int64
	// OutputBytes counts finished-activation writes.
	OutputBytes int64
	// SRAMEnergy is the data-movement energy in joules.
	SRAMEnergy float64
}

// TotalTraffic returns all SRAM bytes moved.
func (s LayerStats) TotalTraffic() int64 {
	return s.InputBytes + s.WeightBytes + s.PsumReadBytes + s.PsumWriteBytes + s.OutputBytes
}

// SimulateLayer walks one layer's schedule. Pooling layers return
// zeroed stats (they ride the digital path).
func SimulateLayer(p Params, l nn.Layer) LayerStats {
	return simulateLayer(p, l, nil)
}

// simulateLayer is SimulateLayer with an optional parent span so that
// SimulateModel can nest per-layer spans under one model span.
func simulateLayer(p Params, l nn.Layer, parent *obs.Span) LayerStats {
	st := LayerStats{Layer: l}
	if !l.HasMACs() {
		return st
	}
	cfg := p.Config
	m := cfg.MapLayer(l)

	// Active PLCGs this layer: kernel passes spread OutZ over Ng; the
	// last pass may not fill every group.
	groupsActive := int64(cfg.Ng)
	if int64(l.OutZ) < groupsActive {
		groupsActive = int64(l.OutZ)
	}

	// Per-cycle operand footprints.
	inputPerCycle := int64(cfg.Nu) * int64(cfg.WavelengthsPerPLCU()) * int64(p.ActivationBytes)
	if l.Kind == nn.FC || l.Kind == nn.Pointwise {
		// These mappings stream Nu*Nm fresh elements per cycle per
		// slot (no receptive-field overlap).
		inputPerCycle = int64(cfg.Nu) * int64(cfg.Nm) * int64(p.ActivationBytes)
		if l.Kind == nn.Pointwise {
			inputPerCycle *= int64(cfg.Nd)
		}
	}
	weightsPerCycle := int64(cfg.Nu) * int64(cfg.Nm) * int64(p.WeightBytes) * groupsActive

	st.Cycles = m.Cycles

	// Output writes: one byte per produced activation.
	outputs := int64(l.OutZ) * int64(l.OutY()) * int64(l.OutX())
	if l.Kind == nn.FC {
		outputs = int64(l.OutZ)
	}
	st.OutputBytes = outputs * int64(p.ActivationBytes)

	// Input stream: one broadcast serves every PLCG, re-streamed for
	// each kernel pass and tap chunk.
	st.InputBytes = m.KernelPasses * m.ColumnTiles * m.ChannelGroups * m.TapChunks * inputPerCycle

	switch p.Dataflow {
	case DepthFirst:
		// Weights retarget every cycle from the kernel caches.
		st.WeightBytes = m.Cycles * weightsPerCycle
		// No partial-sum traffic: aggregation lives in the PLCG
		// register until the activation completes (Section III-B).
	case WeightStationary:
		// Weights fetched once per (pass, group, chunk); held across
		// the tile sweep.
		st.WeightBytes = m.KernelPasses * m.ChannelGroups * m.TapChunks * weightsPerCycle
		// Every tile's Nd partials round-trip between channel groups:
		// written after each group, read back before the next.
		steps := m.ChannelGroups*m.TapChunks - 1
		if steps < 0 {
			steps = 0
		}
		perTile := int64(cfg.Nd) * int64(p.PsumBytes) * groupsActive
		st.PsumWriteBytes = m.KernelPasses * m.ColumnTiles * steps * perTile
		st.PsumReadBytes = st.PsumWriteBytes
	}

	st.SRAMEnergy = p.account(st)
	p.observeLayer(parent, st)
	p.replayKernelCache(m)
	return st
}

// ModelStats aggregates a whole network.
type ModelStats struct {
	Model  string
	Layers []LayerStats
	// Totals.
	Cycles     int64
	Traffic    int64
	SRAMEnergy float64
}

// SimulateModel runs every compute layer.
func SimulateModel(p Params, m nn.Model) ModelStats {
	ms := ModelStats{Model: m.Name}
	root := p.Trace.StartSpan("sim/"+m.Name, obs.String("dataflow", p.Dataflow.String()))
	for _, l := range m.Layers {
		if !l.HasMACs() {
			continue
		}
		st := simulateLayer(p, l, root)
		ms.Layers = append(ms.Layers, st)
		ms.Cycles += st.Cycles
		ms.Traffic += st.TotalTraffic()
		ms.SRAMEnergy += st.SRAMEnergy
	}
	root.EndAt(ms.Cycles, obs.Int("cycles", ms.Cycles))
	return ms
}

// String implements fmt.Stringer.
func (ms ModelStats) String() string {
	return fmt.Sprintf("%s: %d cycles, %.1f MB SRAM traffic, %.3f mJ data movement",
		ms.Model, ms.Cycles, float64(ms.Traffic)/units.Mega, ms.SRAMEnergy*units.Kilo)
}

// Compare runs both dataflows on a model and returns (depth-first,
// weight-stationary) stats - the Section III-B ablation.
func Compare(cfg core.Config, m nn.Model) (df, ws ModelStats) {
	p := DefaultParams()
	p.Config = cfg
	df = SimulateModel(p, m)
	p.Dataflow = WeightStationary
	ws = SimulateModel(p, m)
	return df, ws
}
