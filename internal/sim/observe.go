package sim

import (
	"albireo/internal/core"
	"albireo/internal/memory"
	"albireo/internal/obs"
)

// Metric names emitted by the dataflow simulator. Everything is
// denominated in modulation cycles and bytes - the simulator never
// reads a wall clock, so identical inputs always produce identical
// telemetry.
const (
	// MetricSimCycles counts scheduled modulation cycles.
	MetricSimCycles = "albireo_sim_cycles_total"
	// MetricSimLayers counts simulated layers by kind.
	MetricSimLayers = "albireo_sim_layers_total"
)

// kernelCacheLineBytes is the line size of the kernel-cache tag
// simulator: 8 words of the 4-byte kernel-cache access width.
const kernelCacheLineBytes = 32

// account routes the layer's traffic through metered SRAM arrays,
// returning the same data-movement energy the unmetered model prices.
// With no registry attached the meters are inert and this is pure
// arithmetic.
func (p Params) account(st LayerStats) float64 {
	gb := memory.GlobalBuffer().Meter(p.Obs, "global-buffer")
	kc := memory.KernelCache().Meter(p.Obs, "kernel-cache")
	return gb.Read(int(st.InputBytes)) +
		kc.Read(int(st.WeightBytes)) +
		gb.Read(int(st.PsumReadBytes)) +
		gb.Write(int(st.PsumWriteBytes)) +
		gb.Write(int(st.OutputBytes))
}

// observeLayer emits the layer's dataflow events onto the attached
// trace, cycle-stamped at the point in the schedule where the traffic
// completes, and bumps the simulator counters.
func (p Params) observeLayer(parent *obs.Span, st LayerStats) {
	if p.Obs != nil {
		p.Obs.Counter(MetricSimCycles).Add(st.Cycles)
		p.Obs.Counter(MetricSimLayers, obs.L("kind", st.Layer.Kind.String())).Inc()
	}
	if p.Trace == nil {
		return
	}
	attrs := []obs.Attr{
		obs.String("kind", st.Layer.Kind.String()),
		obs.String("dataflow", p.Dataflow.String()),
	}
	var sp *obs.Span
	if parent != nil {
		sp = parent.StartSpan("sim/"+st.Layer.Name, attrs...)
	} else {
		sp = p.Trace.StartSpan("sim/"+st.Layer.Name, attrs...)
	}
	sp.EventAt(0, obs.DataMove, "input-stream", obs.Int("bytes", st.InputBytes))
	sp.EventAt(0, obs.DataMove, "weight-fetch", obs.Int("bytes", st.WeightBytes))
	if st.PsumWriteBytes > 0 || st.PsumReadBytes > 0 {
		sp.EventAt(st.Cycles, obs.DataMove, "psum-spill",
			obs.Int("write_bytes", st.PsumWriteBytes),
			obs.Int("read_bytes", st.PsumReadBytes))
	}
	sp.EventAt(st.Cycles, obs.DataMove, "output-write", obs.Int("bytes", st.OutputBytes))
	sp.EndAt(st.Cycles, obs.Int("cycles", st.Cycles))
}

// replayKernelCache measures kernel-cache locality for one layer by
// replaying a representative PLCG's weight-fetch address stream
// through a direct-mapped tag simulator. The schedule repeats the
// same sweep of (channel group, tap chunk) weight blocks once per
// column tile (DepthFirst) or once per pass (WeightStationary);
// because repetitions are identical, the replay simulates the first
// two sweeps of the first two kernel passes and extrapolates the rest
// via Cache.Account, keeping cost O(sweep) instead of O(cycles).
func (p Params) replayKernelCache(mp core.LayerMapping) {
	if p.Obs == nil || mp.Cycles == 0 {
		return
	}
	cache := memory.NewCache(memory.KernelCache(), kernelCacheLineBytes, p.Obs, "kernel-cache")
	blockBytes := p.Config.Nu * p.Config.Nm * p.WeightBytes
	sweepBytes := mp.ChannelGroups * mp.TapChunks * int64(blockBytes)

	sweep := func(base int64) (hits, misses int64) {
		h0, m0 := cache.Hits(), cache.Misses()
		for cg := int64(0); cg < mp.ChannelGroups; cg++ {
			for tc := int64(0); tc < mp.TapChunks; tc++ {
				addr := base + (cg*mp.TapChunks+tc)*int64(blockBytes)
				cache.AccessRange(addr, blockBytes)
			}
		}
		return cache.Hits() - h0, cache.Misses() - m0
	}

	sweepsPerPass := int64(1)
	if p.Dataflow == DepthFirst {
		sweepsPerPass = mp.ColumnTiles
	}
	replayPass := func(pi int64) {
		base := pi * sweepBytes
		sweep(base)
		if sweepsPerPass >= 2 {
			h, m := sweep(base)
			if extra := sweepsPerPass - 2; extra > 0 {
				cache.Account(h*extra, m*extra)
			}
		}
	}

	replayPass(0)
	if mp.KernelPasses >= 2 {
		h0, m0 := cache.Hits(), cache.Misses()
		replayPass(1)
		hp, mp2 := cache.Hits()-h0, cache.Misses()-m0
		if extra := mp.KernelPasses - 2; extra > 0 {
			cache.Account(hp*extra, mp2*extra)
		}
	}
}
