package sim

import (
	"testing"

	"albireo/internal/core"
	"albireo/internal/nn"
)

func TestSmallLayerNeedsNoTiling(t *testing.T) {
	l := nn.Layer{Kind: nn.Conv, InZ: 512, InY: 14, InX: 14, OutZ: 512, KY: 3, KX: 3, Stride: 1, Pad: 1}
	p := PlanTiling(core.DefaultConfig(), l)
	if !p.Fits() {
		t.Error("100 kB activations fit the 256 kB buffer: no tiling")
	}
	if p.DRAMEnergy != 0 {
		t.Error("resident layers cost no DRAM energy")
	}
}

func TestVGGEarlyLayerTiles(t *testing.T) {
	// conv1_2: 224x224x64 input = 3.2 MB. Must tile into row bands.
	l := nn.Layer{Kind: nn.Conv, InZ: 64, InY: 224, InX: 224, OutZ: 64, KY: 3, KX: 3, Stride: 1, Pad: 1}
	p := PlanTiling(core.DefaultConfig(), l)
	if p.Fits() {
		t.Fatal("3.2 MB input must tile")
	}
	if p.Tiles < 20 {
		t.Errorf("expected many row bands, got %d", p.Tiles)
	}
	// Halo of KY - stride = 2 rows per boundary.
	if p.HaloRows != 2 {
		t.Errorf("halo rows = %d, want 2", p.HaloRows)
	}
	// DRAM reads exceed the raw input by the halo re-reads only
	// (bounded by ~tiles * halo * rowbytes).
	raw := int64(64 * 224 * 224)
	if p.DRAMReadBytes <= raw {
		t.Error("tiled reads must include halo overhead")
	}
	// 9-row bands over 224 rows re-read 2 halo rows ~31 times: ~28%.
	overhead := float64(p.DRAMReadBytes-raw) / float64(raw)
	if overhead > 0.35 {
		t.Errorf("halo overhead %.1f%% implausibly large", overhead*100)
	}
	if p.DRAMWriteBytes != int64(64*224*224) {
		t.Errorf("output writes = %d", p.DRAMWriteBytes)
	}
}

func TestStridedTilingHasNoHalo(t *testing.T) {
	// A stride-2 3x3 kernel overlaps by 1 row; stride-4 11x11 overlaps
	// by 7. Check the halo arithmetic.
	l := nn.Layer{Kind: nn.Conv, InZ: 64, InY: 224, InX: 224, OutZ: 64, KY: 3, KX: 3, Stride: 2, Pad: 1}
	if p := PlanTiling(core.DefaultConfig(), l); p.HaloRows != 1 {
		t.Errorf("stride-2 3x3 halo = %d, want 1", p.HaloRows)
	}
	l2 := nn.Layer{Kind: nn.Conv, InZ: 3, InY: 896, InX: 896, OutZ: 8, KY: 2, KX: 2, Stride: 2}
	if p := PlanTiling(core.DefaultConfig(), l2); p.HaloRows != 0 {
		t.Errorf("stride-2 2x2 halo = %d, want 0", p.HaloRows)
	}
}

func TestFCNeverTiles(t *testing.T) {
	l := nn.Layer{Kind: nn.FC, InZ: 25088, InY: 1, InX: 1, OutZ: 4096, KY: 1, KX: 1}
	if !PlanTiling(core.DefaultConfig(), l).Fits() {
		t.Error("FC layers do not tile")
	}
}

func TestModelTilingVGG(t *testing.T) {
	mt := PlanModel(core.DefaultConfig(), nn.VGG16())
	// The first four conv stages (224 and 112 inputs at 64/128
	// channels) exceed the buffer.
	if mt.TiledLayers < 4 {
		t.Errorf("VGG16 tiled layers = %d, want >= 4", mt.TiledLayers)
	}
	if mt.DRAMEnergy <= 0 {
		t.Fatal("VGG16 must pay off-chip energy")
	}
	// Off-chip energy is a visible but not dominant fraction of the
	// paper-style compute energy (~64 mJ on Albireo-C): order 0.1-2 mJ.
	if mt.DRAMEnergy > 10e-3 || mt.DRAMEnergy < 0.05e-3 {
		t.Errorf("DRAM energy %.3g J outside the plausible window", mt.DRAMEnergy)
	}
	if mt.String() == "" {
		t.Error("String")
	}
}

func TestModelTilingAlexNetResident(t *testing.T) {
	// AlexNet activations fit the buffer everywhere (stride-4 stem):
	// no tiled layers, but pooling-free DRAM writes may still be zero
	// under this model.
	mt := PlanModel(core.DefaultConfig(), nn.AlexNet())
	if mt.TiledLayers != 0 {
		t.Errorf("AlexNet tiled layers = %d, want 0", mt.TiledLayers)
	}
	if mt.DRAMEnergy != 0 {
		t.Error("resident model should cost no DRAM energy in this model")
	}
}
