package sim

import (
	"testing"

	"albireo/internal/core"
	"albireo/internal/nn"
)

func TestCyclesMatchAnalyticMapping(t *testing.T) {
	// The schedule walker and the analytic mapping model must agree
	// exactly on cycle counts for every benchmark layer.
	p := DefaultParams()
	for _, m := range nn.Benchmarks() {
		mapping := p.Config.MapModel(m)
		stats := SimulateModel(p, m)
		if stats.Cycles != mapping.TotalCycles {
			t.Errorf("%s: sim %d cycles, mapping %d", m.Name, stats.Cycles, mapping.TotalCycles)
		}
	}
}

func TestDepthFirstHasNoPsumTraffic(t *testing.T) {
	// Section III-B: "This creates no partial sum writes back to
	// memory".
	p := DefaultParams()
	for _, m := range nn.Benchmarks() {
		for _, st := range SimulateModel(p, m).Layers {
			if st.PsumReadBytes != 0 || st.PsumWriteBytes != 0 {
				t.Fatalf("%s/%s: depth-first dataflow should carry no psum traffic",
					m.Name, st.Layer.Name)
			}
		}
	}
}

func TestWeightStationaryPsumCost(t *testing.T) {
	// The ablation: weight-stationary spills partials for every
	// multi-group layer and must move more total bytes on deep nets.
	df, ws := Compare(core.DefaultConfig(), nn.VGG16())
	if ws.Cycles != df.Cycles {
		t.Error("dataflow choice should not change compute cycles")
	}
	var psum int64
	for _, st := range ws.Layers {
		psum += st.PsumReadBytes + st.PsumWriteBytes
	}
	if psum == 0 {
		t.Fatal("weight-stationary should generate psum traffic on VGG16")
	}
	if ws.SRAMEnergy <= df.SRAMEnergy {
		t.Errorf("weight-stationary should cost more data-movement energy: %.3g vs %.3g",
			ws.SRAMEnergy, df.SRAMEnergy)
	}
}

func TestWeightStationarySavesWeightTraffic(t *testing.T) {
	// The flip side: holding weights across the tile sweep reads the
	// kernel caches far less often.
	df, ws := Compare(core.DefaultConfig(), nn.VGG16())
	var dfW, wsW int64
	for _, st := range df.Layers {
		dfW += st.WeightBytes
	}
	for _, st := range ws.Layers {
		wsW += st.WeightBytes
	}
	if wsW >= dfW {
		t.Errorf("weight-stationary should read fewer weight bytes: %d vs %d", wsW, dfW)
	}
}

func TestSingleGroupLayerHasNoPsumEvenWS(t *testing.T) {
	// A layer with one channel group and one tap chunk finishes in a
	// single pass: nothing to spill even under weight-stationary.
	p := DefaultParams()
	p.Dataflow = WeightStationary
	l := nn.Layer{Kind: nn.Conv, InZ: 3, InY: 8, InX: 8, OutZ: 4, KY: 3, KX: 3, Stride: 1, Pad: 1}
	st := SimulateLayer(p, l)
	if st.PsumWriteBytes != 0 {
		t.Error("single-group layer should not spill partials")
	}
}

func TestPoolingLayersAreFree(t *testing.T) {
	p := DefaultParams()
	st := SimulateLayer(p, nn.Layer{Kind: nn.MaxPoolKind, InZ: 64, InY: 28, InX: 28, OutZ: 64, KY: 2, KX: 2, Stride: 2})
	if st.Cycles != 0 || st.TotalTraffic() != 0 {
		t.Error("pooling should cost neither cycles nor photonic-path traffic")
	}
}

func TestOutputBytesMatchActivations(t *testing.T) {
	p := DefaultParams()
	l := nn.Layer{Kind: nn.Conv, InZ: 16, InY: 14, InX: 14, OutZ: 32, KY: 3, KX: 3, Stride: 1, Pad: 1}
	st := SimulateLayer(p, l)
	if st.OutputBytes != 32*14*14 {
		t.Errorf("output bytes = %d, want %d", st.OutputBytes, 32*14*14)
	}
	fc := nn.Layer{Kind: nn.FC, InZ: 512, InY: 1, InX: 1, OutZ: 1000, KY: 1, KX: 1}
	if got := SimulateLayer(p, fc).OutputBytes; got != 1000 {
		t.Errorf("FC output bytes = %d, want 1000", got)
	}
}

func TestModelStatsAggregation(t *testing.T) {
	p := DefaultParams()
	ms := SimulateModel(p, nn.MobileNet())
	var cyc, traffic int64
	for _, st := range ms.Layers {
		cyc += st.Cycles
		traffic += st.TotalTraffic()
	}
	if cyc != ms.Cycles || traffic != ms.Traffic {
		t.Error("model totals must equal layer sums")
	}
	if ms.String() == "" {
		t.Error("String")
	}
	if DepthFirst.String() != "depth-first" || WeightStationary.String() != "weight-stationary" ||
		Dataflow(9).String() != "unknown" {
		t.Error("dataflow names")
	}
}

func TestDataMovementDominanceClaim(t *testing.T) {
	// Horowitz (cited as [25]): data movement can consume magnitudes
	// more energy than computation. Check that the weight-stationary
	// psum energy alone exceeds the depth-first total on a deep net -
	// the quantitative form of the paper's motivation.
	df, ws := Compare(core.DefaultConfig(), nn.VGG16())
	psumEnergy := ws.SRAMEnergy - df.SRAMEnergy // lower bound on psum cost
	if psumEnergy < df.SRAMEnergy*0.2 {
		t.Errorf("psum spill energy (%.3g J) should be a significant fraction of baseline traffic (%.3g J)",
			psumEnergy, df.SRAMEnergy)
	}
}
