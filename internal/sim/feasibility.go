package sim

import (
	"fmt"

	"albireo/internal/core"
	"albireo/internal/memory"
	"albireo/internal/nn"
)

// Feasibility checks whether a layer's working set and streaming rates
// fit Albireo's memory subsystems: the 16 kB per-PLCG kernel cache and
// the global buffer's bandwidth at the modulation rate. The paper
// sizes these subsystems (Section IV-A) but does not publish the fit
// analysis; this is the deployment-reality check a user of the
// architecture needs.
type Feasibility struct {
	Layer nn.Layer
	// KernelBytes is the largest single-kernel working set a PLCG must
	// hold (one kernel per PLCG at a time).
	KernelBytes int64
	// KernelCacheFits reports whether it fits the 16 kB cache.
	KernelCacheFits bool
	// InputBandwidth is the sustained global-buffer read rate in
	// bytes/second the broadcast stream requires.
	InputBandwidth float64
	// WeightBandwidth is the per-PLCG kernel-cache read rate.
	WeightBandwidth float64
	// InputBandwidthOK / WeightBandwidthOK compare against the SRAM
	// models' word-rate limits.
	InputBandwidthOK, WeightBandwidthOK bool
	// ActivationBytes is the layer's input volume footprint, checked
	// against the 256 kB global buffer (spilling to off-chip DRAM
	// otherwise).
	ActivationBytes  int64
	GlobalBufferFits bool
}

// CheckLayer runs the feasibility analysis for one layer.
func CheckLayer(cfg core.Config, l nn.Layer) Feasibility {
	f := Feasibility{Layer: l}
	if !l.HasMACs() {
		f.KernelCacheFits = true
		f.InputBandwidthOK = true
		f.WeightBandwidthOK = true
		f.GlobalBufferFits = true
		return f
	}
	rate := cfg.ModulationRate()
	gb := memory.GlobalBuffer()
	kc := memory.KernelCache()

	// One kernel's weights (8-bit) per PLCG.
	switch l.Kind {
	case nn.Depthwise:
		f.KernelBytes = int64(l.KY) * int64(l.KX) * int64(cfg.Nu)
	case nn.FC:
		f.KernelBytes = int64(l.InZ) * int64(l.InY) * int64(l.InX)
	default:
		depth := int64(l.InZ)
		if l.Groups > 1 {
			depth /= int64(l.Groups)
		}
		f.KernelBytes = int64(l.KY) * int64(l.KX) * depth
	}
	f.KernelCacheFits = f.KernelBytes <= int64(kc.CapacityBytes)

	// Streaming rates: the per-cycle operand footprints of the
	// dataflow simulator at the modulation rate.
	p := DefaultParams()
	p.Config = cfg
	st := SimulateLayer(p, l)
	if st.Cycles > 0 {
		cycleTime := 1 / rate
		f.InputBandwidth = float64(st.InputBytes) / (float64(st.Cycles) * cycleTime)
		f.WeightBandwidth = float64(st.WeightBytes) / float64(cfg.Ng) / (float64(st.Cycles) * cycleTime)
	}
	// A wide SRAM port sustains word-width bytes per cycle at the
	// converter clock.
	f.InputBandwidthOK = f.InputBandwidth <= gb.Bandwidth(rate)*8 // 8 banks
	f.WeightBandwidthOK = f.WeightBandwidth <= kc.Bandwidth(rate)*8

	f.ActivationBytes = int64(l.InZ) * int64(l.InY) * int64(l.InX)
	f.GlobalBufferFits = f.ActivationBytes <= int64(gb.CapacityBytes)
	return f
}

// ModelFeasibility aggregates the per-layer checks.
type ModelFeasibility struct {
	Model  string
	Layers []Feasibility
	// CacheMisfits counts layers whose kernel exceeds the cache (they
	// stream weights from the global buffer instead).
	CacheMisfits int
	// BufferMisfits counts layers whose activations exceed the global
	// buffer (they tile through off-chip memory).
	BufferMisfits int
}

// CheckModel runs the analysis over a network's compute layers.
func CheckModel(cfg core.Config, m nn.Model) ModelFeasibility {
	mf := ModelFeasibility{Model: m.Name}
	for _, l := range m.Layers {
		if !l.HasMACs() {
			continue
		}
		f := CheckLayer(cfg, l)
		mf.Layers = append(mf.Layers, f)
		if !f.KernelCacheFits {
			mf.CacheMisfits++
		}
		if !f.GlobalBufferFits {
			mf.BufferMisfits++
		}
	}
	return mf
}

// String implements fmt.Stringer.
func (mf ModelFeasibility) String() string {
	return fmt.Sprintf("%s: %d layers, %d kernel-cache misfits, %d buffer misfits",
		mf.Model, len(mf.Layers), mf.CacheMisfits, mf.BufferMisfits)
}
