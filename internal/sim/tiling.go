package sim

import (
	"fmt"

	"albireo/internal/core"
	"albireo/internal/memory"
	"albireo/internal/nn"
	"albireo/internal/units"
)

// DRAMEnergyPerByte is the off-chip access energy (LPDDR-class,
// ~20 pJ/bit incl. PHY -> 20 pJ/byte is a conservative round number
// at the byte granularity used here; the point is the two orders of
// magnitude over on-chip SRAM).
const DRAMEnergyPerByte = 20 * units.Pico

// TilingPlan describes how a layer whose activations exceed the global
// buffer is split into row bands that fit on chip, and what the
// off-chip traffic costs. The feasibility checker flags these layers;
// this planner prices the fix.
type TilingPlan struct {
	Layer nn.Layer
	// Tiles is the number of row bands (1 = fits entirely).
	Tiles int
	// TileRows is the output rows produced per band.
	TileRows int
	// HaloRows is the input-row overlap re-read at each band boundary
	// (KY - stride, at least 0).
	HaloRows int
	// DRAMReadBytes and DRAMWriteBytes are the off-chip traffic for
	// the layer (inputs + halo re-reads; outputs).
	DRAMReadBytes, DRAMWriteBytes int64
	// DRAMEnergy prices the traffic.
	DRAMEnergy float64
}

// Fits reports whether the layer needed no tiling.
func (p TilingPlan) Fits() bool { return p.Tiles <= 1 && p.DRAMReadBytes == 0 }

// PlanTiling computes the row-band tiling of one layer against the
// global buffer (double-buffered: half the capacity holds the live
// input band). Layers that fit keep everything on chip and incur no
// DRAM traffic; FC layers never tile (their activations are small).
func PlanTiling(cfg core.Config, l nn.Layer) TilingPlan {
	p := TilingPlan{Layer: l, Tiles: 1, TileRows: l.OutY()}
	if !l.HasMACs() || l.Kind == nn.FC {
		return p
	}
	buffer := int64(memory.GlobalBuffer().CapacityBytes)
	inputBytes := int64(l.InZ) * int64(l.InY) * int64(l.InX)
	if inputBytes <= buffer {
		return p
	}

	// Half the buffer holds the live band (the other half streams the
	// next band in).
	usable := buffer / 2
	rowBytes := int64(l.InZ) * int64(l.InX)
	stride := l.Stride
	if stride <= 0 {
		stride = 1
	}
	halo := l.KY - stride
	if halo < 0 {
		halo = 0
	}
	// Input rows per band: fit (tileInRows + halo) * rowBytes.
	tileInRows := int(usable/rowBytes) - halo
	if tileInRows < stride {
		tileInRows = stride // degenerate: one output row per band
	}
	tileOutRows := tileInRows / stride
	if tileOutRows < 1 {
		tileOutRows = 1
	}
	outY := l.OutY()
	tiles := (outY + tileOutRows - 1) / tileOutRows

	p.Tiles = tiles
	p.TileRows = tileOutRows
	p.HaloRows = halo
	// Every input byte is read once, plus the halo rows re-read at
	// each interior boundary.
	p.DRAMReadBytes = inputBytes + int64(tiles-1)*int64(halo)*rowBytes
	p.DRAMWriteBytes = int64(l.OutZ) * int64(outY) * int64(l.OutX())
	p.DRAMEnergy = float64(p.DRAMReadBytes+p.DRAMWriteBytes) * DRAMEnergyPerByte
	return p
}

// ModelTiling aggregates the off-chip plan over a network.
type ModelTiling struct {
	Model       string
	Plans       []TilingPlan
	TiledLayers int
	DRAMBytes   int64
	DRAMEnergy  float64
}

// PlanModel tiles every compute layer of a network.
func PlanModel(cfg core.Config, m nn.Model) ModelTiling {
	mt := ModelTiling{Model: m.Name}
	for _, l := range m.Layers {
		if !l.HasMACs() {
			continue
		}
		p := PlanTiling(cfg, l)
		mt.Plans = append(mt.Plans, p)
		if !p.Fits() {
			mt.TiledLayers++
		}
		mt.DRAMBytes += p.DRAMReadBytes + p.DRAMWriteBytes
		mt.DRAMEnergy += p.DRAMEnergy
	}
	return mt
}

// String implements fmt.Stringer.
func (mt ModelTiling) String() string {
	return fmt.Sprintf("%s: %d tiled layers, %.1f MB DRAM, %.3f mJ off-chip",
		mt.Model, mt.TiledLayers, float64(mt.DRAMBytes)/units.Mega, mt.DRAMEnergy*units.Kilo)
}
