package sim

import (
	"math"
	"testing"

	"albireo/internal/memory"
	"albireo/internal/nn"
	"albireo/internal/obs"
)

func tinyModel() nn.Model {
	return nn.Model{
		Name: "tiny",
		Layers: []nn.Layer{
			{Name: "conv1", Kind: nn.Conv, InZ: 3, InY: 16, InX: 16, OutZ: 8, KY: 3, KX: 3, Stride: 1, Pad: 1},
			{Name: "pool1", Kind: nn.MaxPoolKind, InZ: 8, InY: 16, InX: 16, OutZ: 8, KY: 2, KX: 2, Stride: 2},
			{Name: "conv2", Kind: nn.Conv, InZ: 8, InY: 8, InX: 8, OutZ: 16, KY: 3, KX: 3, Stride: 1, Pad: 1},
			{Name: "fc", Kind: nn.FC, InZ: 16 * 8 * 8, InY: 1, InX: 1, OutZ: 10, KY: 1, KX: 1},
		},
	}
}

func TestSimTelemetryMatchesStats(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	p.Obs = obs.NewRegistry()
	p.Trace = obs.NewTrace()
	ms := SimulateModel(p, tinyModel())

	s := p.Obs.Snapshot()
	if got := s.SumCounters(MetricSimCycles); got != ms.Cycles {
		t.Errorf("cycle counter = %d, stats say %d", got, ms.Cycles)
	}
	if got := s.SumCounters(MetricSimLayers); got != int64(len(ms.Layers)) {
		t.Errorf("layer counter = %d, want %d", got, len(ms.Layers))
	}

	var wantGBRead, wantKCRead, wantGBWrite int64
	var wantEnergy float64
	for _, st := range ms.Layers {
		wantGBRead += st.InputBytes + st.PsumReadBytes
		wantKCRead += st.WeightBytes
		wantGBWrite += st.PsumWriteBytes + st.OutputBytes
		wantEnergy += st.SRAMEnergy
	}
	gbRead := s.Counters[memory.MetricSRAMReadBytes+`{array="global-buffer"}`]
	kcRead := s.Counters[memory.MetricSRAMReadBytes+`{array="kernel-cache"}`]
	gbWrite := s.Counters[memory.MetricSRAMWriteBytes+`{array="global-buffer"}`]
	if gbRead != wantGBRead || kcRead != wantKCRead || gbWrite != wantGBWrite {
		t.Errorf("SRAM byte counters (gbR %d kcR %d gbW %d) disagree with stats (%d %d %d)",
			gbRead, kcRead, gbWrite, wantGBRead, wantKCRead, wantGBWrite)
	}
	var gotEnergy float64
	for id, v := range s.Gauges {
		_ = id
		gotEnergy += v
	}
	if math.Abs(gotEnergy-wantEnergy) > 1e-12*math.Abs(wantEnergy) {
		t.Errorf("energy gauges sum %g, stats %g", gotEnergy, wantEnergy)
	}

	// One model span + one span per compute layer; DataMove events for
	// the traffic streams.
	kinds := p.Trace.CountByKind()
	wantSpans := int64(1 + len(ms.Layers))
	if kinds["span-start"] != wantSpans || kinds["span-end"] != wantSpans {
		t.Errorf("span counts %v, want %d start/end", kinds, wantSpans)
	}
	if kinds["data-move"] < int64(2*len(ms.Layers)) {
		t.Errorf("expected >=2 data-move events per layer: %v", kinds)
	}
}

func TestSimTelemetryDeterministic(t *testing.T) {
	t.Parallel()
	run := func() obs.Snapshot {
		p := DefaultParams()
		p.Obs = obs.NewRegistry()
		SimulateModel(p, tinyModel())
		return p.Obs.Snapshot()
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatalf("identical simulations must record identical telemetry:\n%v\nvs\n%v",
			a.Counters, b.Counters)
	}
}

func TestSimTelemetryDoesNotChangeStats(t *testing.T) {
	t.Parallel()
	bare := DefaultParams()
	ins := DefaultParams()
	ins.Obs = obs.NewRegistry()
	ins.Trace = obs.NewTrace()
	for _, m := range []nn.Model{tinyModel(), nn.MobileNet()} {
		a := SimulateModel(bare, m)
		b := SimulateModel(ins, m)
		if a.Cycles != b.Cycles || a.Traffic != b.Traffic || a.SRAMEnergy != b.SRAMEnergy {
			t.Fatalf("%s: instrumentation changed results: %+v vs %+v", m.Name, a, b)
		}
	}
}

func TestKernelCacheLocality(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	p.Obs = obs.NewRegistry()
	SimulateModel(p, tinyModel())
	s := p.Obs.Snapshot()
	hits := s.SumCounters(memory.MetricCacheHits)
	misses := s.SumCounters(memory.MetricCacheMisses)
	if misses == 0 {
		t.Fatal("cold kernel caches must record misses")
	}
	// Depth-first re-reads the same weights every column tile, so the
	// replay must find substantial reuse.
	if hits <= misses {
		t.Fatalf("depth-first weight reuse should dominate: %d hits vs %d misses", hits, misses)
	}

	// Weight-stationary sweeps each weight block once per pass: far
	// less reuse.
	ws := DefaultParams()
	ws.Dataflow = WeightStationary
	ws.Obs = obs.NewRegistry()
	SimulateModel(ws, tinyModel())
	wsHits := ws.Obs.Snapshot().SumCounters(memory.MetricCacheHits)
	if wsHits >= hits {
		t.Fatalf("weight-stationary should hit less than depth-first: %d vs %d", wsHits, hits)
	}
}
