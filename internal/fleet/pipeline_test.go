package fleet_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"albireo/internal/core"
	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// quietUnit builds a noiseless pool member: with the stochastic
// instruments off, chip outputs depend only on the programmed weights
// and inputs, so stage placement cannot change bits.
func quietUnit(seed int64) fleet.Unit {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.DisableNoise = true
	a := inference.NewAnalog(cfg)
	return fleet.Unit{Backend: a, Chip: a.Chip}
}

// startPipelinePool builds and starts a wall-time scheduler over the
// given units.
func startPipelinePool(t *testing.T, units []fleet.Unit) *fleet.Scheduler {
	t.Helper()
	s, err := fleet.New(fleet.Options{MaxBatch: 8, QueueDepth: 32}, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(obs.NewRegistry(), nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Close(context.Background()) })
	return s
}

// TestPipelineMatchesSequential checks the pipeline's correctness
// contract: with noiseless chips, streaming a conv-pool-pointwise-fc
// stack through three different workers produces bit-identical output
// to running the same layers back to back on one backend.
func TestPipelineMatchesSequential(t *testing.T) {
	t.Parallel()
	w1 := tensor.RandomKernels(8, 3, 3, 3, 101)
	w2 := tensor.RandomKernels(12, 8, 1, 1, 102)
	wfc := tensor.RandomKernels(10, 12, 5, 5, 103)
	in := tensor.RandomVolume(3, 10, 10, 104)
	cfg3 := tensor.ConvConfig{Stride: 1, Pad: 1}
	stages := []fleet.Stage{
		{Kind: fleet.StageConv, W: w1, Cfg: cfg3, ReLU: true},
		{Kind: fleet.StageDigital, Fn: func(v fleet.Value) (fleet.Value, error) {
			return fleet.Value{Vol: tensor.MaxPool(v.Vol, 2, 2)}, nil
		}},
		{Kind: fleet.StageConv, W: w2, ReLU: true},
		{Kind: fleet.StageFC, W: wfc},
	}

	s := startPipelinePool(t, []fleet.Unit{quietUnit(81), quietUnit(82), quietUnit(83)})
	p, err := s.NewPipeline(stages)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	// Three analog stages over three workers: round-robin homes.
	if homes := p.Homes(); homes[0] != 0 || homes[1] != -1 || homes[2] != 1 || homes[3] != 2 {
		t.Fatalf("homes = %v, want [0 -1 1 2]", homes)
	}
	got, err := p.Infer(context.Background(), fleet.Value{Vol: in})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}

	b := inference.Analog{Chip: quietUnit(99).Chip}
	ref := b.FullyConnected(b.Conv(tensor.MaxPool(b.Conv(in, w1, cfg3, true), 2, 2), w2, tensor.ConvConfig{}, true), wfc, false)
	requireBitsEqual(t, [][]float64{got.Vec}, [][]float64{ref})
}

// TestPipelineConcurrentInfers overlaps a stream of inferences across
// the pool - the throughput case pipelining exists for - and checks
// every in-flight inference still produces the reference bits.
func TestPipelineConcurrentInfers(t *testing.T) {
	t.Parallel()
	w1 := tensor.RandomKernels(8, 3, 3, 3, 111)
	wfc := tensor.RandomKernels(10, 8, 8, 8, 112)
	in := tensor.RandomVolume(3, 8, 8, 113)
	cfg3 := tensor.ConvConfig{Stride: 1, Pad: 1}
	stages := []fleet.Stage{
		{Kind: fleet.StageConv, W: w1, Cfg: cfg3, ReLU: true},
		{Kind: fleet.StageFC, W: wfc},
	}
	s := startPipelinePool(t, []fleet.Unit{quietUnit(84), quietUnit(85)})
	p, err := s.NewPipeline(stages)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	b := inference.Analog{Chip: quietUnit(99).Chip}
	ref := b.FullyConnected(b.Conv(in, w1, cfg3, true), wfc, false)

	const streams = 8
	outs := make([][]float64, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := p.Infer(context.Background(), fleet.Value{Vol: in})
			if err == nil {
				outs[i] = v.Vec
			}
		}(i)
	}
	wg.Wait()
	for i, out := range outs {
		if out == nil {
			t.Fatalf("stream %d failed", i)
		}
		requireBitsEqual(t, [][]float64{out}, [][]float64{ref})
	}
}

// TestPipelineDeterministicWithNoise checks reproducibility on noisy
// chips: two identically built fleets running the same two-inference
// stream produce identical bits, inference by inference - placement
// is deterministic, and each chip's noise stream advances identically.
func TestPipelineDeterministicWithNoise(t *testing.T) {
	t.Parallel()
	w1 := tensor.RandomKernels(8, 3, 3, 3, 121)
	wfc := tensor.RandomKernels(10, 8, 8, 8, 122)
	in1 := tensor.RandomVolume(3, 8, 8, 123)
	in2 := tensor.RandomVolume(3, 8, 8, 124)
	cfg3 := tensor.ConvConfig{Stride: 1, Pad: 1}
	stages := []fleet.Stage{
		{Kind: fleet.StageConv, W: w1, Cfg: cfg3, ReLU: true},
		{Kind: fleet.StageFC, W: wfc},
	}
	run := func() [][]float64 {
		s := startPipelinePool(t, []fleet.Unit{analogUnit(86), analogUnit(87)})
		p, err := s.NewPipeline(stages)
		if err != nil {
			t.Fatalf("NewPipeline: %v", err)
		}
		var outs [][]float64
		for _, in := range []*tensor.Volume{in1, in2} {
			v, err := p.Infer(context.Background(), fleet.Value{Vol: in})
			if err != nil {
				t.Fatalf("Infer: %v", err)
			}
			outs = append(outs, v.Vec)
		}
		return outs
	}
	requireBitsEqual(t, run(), run())
}

// TestPipelineGEMMStages streams an MLP expressed as GEMM layers -
// each stage's right operand stays resident in its home worker's
// weight-program cache across the stream.
func TestPipelineGEMMStages(t *testing.T) {
	t.Parallel()
	x := tensor.RandomMatrix(4, 12, 131)
	l1 := tensor.RandomMatrix(12, 16, 132)
	l2 := tensor.RandomMatrix(16, 10, 133)
	stages := []fleet.Stage{
		{Kind: fleet.StageGEMM, B: l1, ReLU: true},
		{Kind: fleet.StageGEMM, B: l2},
	}
	s := startPipelinePool(t, []fleet.Unit{quietUnit(88), quietUnit(89)})
	p, err := s.NewPipeline(stages)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	got, err := p.Infer(context.Background(), fleet.Value{Mat: x})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	b := inference.Analog{Chip: quietUnit(99).Chip}
	ref := b.GEMM(b.GEMM(x, l1, true), l2, false)
	requireBitsEqual(t, [][]float64{got.Mat.Data}, [][]float64{ref.Data})
}

// TestPipelineFromNetwork stages the zoo's TinyCNN and checks the
// pipelined run reproduces the whole-network reference bits; residual
// topologies are rejected (their branches re-join, which a linear
// pipeline cannot express).
func TestPipelineFromNetwork(t *testing.T) {
	t.Parallel()
	n := inference.TinyCNN(3, 12, 141)
	in := tensor.RandomVolume(3, 12, 12, 142)
	s := startPipelinePool(t, []fleet.Unit{quietUnit(91), quietUnit(92), quietUnit(93)})
	p, err := s.PipelineFromNetwork(n)
	if err != nil {
		t.Fatalf("PipelineFromNetwork: %v", err)
	}
	got, err := p.Infer(context.Background(), fleet.Value{Vol: in})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	b := inference.Analog{Chip: quietUnit(99).Chip}
	requireBitsEqual(t, [][]float64{got.Vec}, [][]float64{n.Run(b, in)})

	if _, err := s.PipelineFromNetwork(inference.TinyResNet(3, 12, 143)); err == nil {
		t.Fatal("residual network staged; want error")
	}
}

// TestPipelineVirtualTimeRejected: stage chaining is wall-clock
// execution; a virtual-time scheduler must refuse to build one.
func TestPipelineVirtualTimeRejected(t *testing.T) {
	t.Parallel()
	s, err := fleet.New(fleet.Options{MaxBatch: 4, QueueDepth: 8, VirtualTime: true},
		quietUnit(94), quietUnit(95))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(obs.NewRegistry(), nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Close(context.Background())
	if _, err := s.NewPipeline([]fleet.Stage{{Kind: fleet.StageFC, W: tensor.RandomKernels(2, 1, 1, 1, 1)}}); !errors.Is(err, fleet.ErrPipelineVirtual) {
		t.Fatalf("err = %v, want ErrPipelineVirtual", err)
	}
}
