package fleet

import (
	"albireo/internal/obs"
)

// Per-stage latency metric names. Every value is denominated in ticks
// of the scheduler's injected linger clock - the same logical time the
// micro-batcher runs on - so the decomposition is deterministic for a
// deterministic request trace and reconciles exactly:
//
//	e2e = linger + queue_wait + execute + delivery
//
// per request, and therefore histogram-sum by histogram-sum (the
// invariant TestLatencyStagesReconcile enforces with zero tolerance).
const (
	// MetricLatencyE2E is end-to-end latency: admission to delivery.
	MetricLatencyE2E = "albireo_fleet_latency_e2e_ticks"
	// MetricLatencyLinger is time spent in a pending batch waiting to
	// coalesce with compatible requests and be routed.
	MetricLatencyLinger = "albireo_fleet_latency_linger_ticks"
	// MetricLatencyQueueWait is time spent dispatched but behind
	// earlier batches on the chosen worker.
	MetricLatencyQueueWait = "albireo_fleet_latency_queue_wait_ticks"
	// MetricLatencyExecute is the service time of the request's batch.
	MetricLatencyExecute = "albireo_fleet_latency_execute_ticks"
	// MetricLatencyDelivery is time from execution end to result
	// delivery (0 unless the delivering tick lags the completion).
	MetricLatencyDelivery = "albireo_fleet_latency_delivery_ticks"
)

// StageTicks is one request's latency decomposition: the tick stamps
// of its lifecycle transitions. All stamps share the scheduler's
// logical tick clock.
type StageTicks struct {
	// Arrive is the tick at which the request was admitted.
	Arrive int64 `json:"arrive"`
	// Dispatch is the tick at which its batch was routed to a worker.
	Dispatch int64 `json:"dispatch"`
	// ExecStart is the tick at which the worker began serving it.
	ExecStart int64 `json:"exec_start"`
	// ExecEnd is the tick at which service completed.
	ExecEnd int64 `json:"exec_end"`
	// Deliver is the tick at which the result was delivered.
	Deliver int64 `json:"deliver"`
}

// Linger is the coalescing wait: admission to dispatch.
func (s StageTicks) Linger() int64 { return s.Dispatch - s.Arrive }

// QueueWait is the worker-backlog wait: dispatch to execution start.
func (s StageTicks) QueueWait() int64 { return s.ExecStart - s.Dispatch }

// Execute is the service time: execution start to end.
func (s StageTicks) Execute() int64 { return s.ExecEnd - s.ExecStart }

// Delivery is the completion-delivery lag: execution end to delivery.
func (s StageTicks) Delivery() int64 { return s.Deliver - s.ExecEnd }

// EndToEnd is the full admission-to-delivery latency.
func (s StageTicks) EndToEnd() int64 { return s.Deliver - s.Arrive }

// ServiceModel prices a dispatched micro-batch in linger ticks for
// the virtual-time ledger. It mirrors the paper's batching
// amortization argument: a batch pays the MZM weight-programming cost
// once (ProgramTicks) plus a weight-stationary steady-state cost per
// input (RequestTicks), so bigger compatible batches serve cheaper
// per request - which is exactly the throughput-latency trade the
// load harness exists to expose.
type ServiceModel struct {
	// ProgramTicks is charged once per dispatched batch (default 2).
	ProgramTicks int64
	// RequestTicks is charged per request in the batch (default 1).
	RequestTicks int64
}

// withDefaults fills unset fields.
func (m ServiceModel) withDefaults() ServiceModel {
	if m.ProgramTicks <= 0 {
		m.ProgramTicks = 2
	}
	if m.RequestTicks <= 0 {
		m.RequestTicks = 1
	}
	return m
}

// BatchTicks prices one batch of n requests; never less than 1 tick,
// so a virtual service interval always advances time.
func (m ServiceModel) BatchTicks(n int) int64 {
	d := m.ProgramTicks + int64(n)*m.RequestTicks
	if d < 1 {
		d = 1
	}
	return d
}

// ShardTicks prices one batch of n kernel-group sub-requests owning
// count of of residue classes: weight programming is still paid once
// (each chip programs its own window), but the steady-state cost
// scales with the owned fraction of the kernels - the virtual-time
// face of the sharded speedup. Never less than 1 tick.
func (m ServiceModel) ShardTicks(n, count, of int) int64 {
	if of <= 0 {
		return m.BatchTicks(n)
	}
	work := int64(n) * m.RequestTicks * int64(count)
	d := m.ProgramTicks + (work+int64(of)-1)/int64(of)
	if d < 1 {
		d = 1
	}
	return d
}

// ledgerEntry is one booked batch on the virtual-time completion
// ledger, keyed for deterministic pop order by (execEnd, seq).
type ledgerEntry struct {
	execEnd int64
	seq     int64
	reqs    []*request
}

// ledgerLess orders ledger entries: earliest completion first, ties
// broken by booking order.
func ledgerLess(a, b *ledgerEntry) bool {
	if a.execEnd != b.execEnd {
		return a.execEnd < b.execEnd
	}
	return a.seq < b.seq
}

// ledgerPushLocked adds an entry to the completion min-heap.
func (s *Scheduler) ledgerPushLocked(e *ledgerEntry) {
	s.ledger = append(s.ledger, e)
	i := len(s.ledger) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ledgerLess(s.ledger[i], s.ledger[parent]) {
			break
		}
		s.ledger[i], s.ledger[parent] = s.ledger[parent], s.ledger[i]
		i = parent
	}
}

// ledgerPopLocked removes and returns the earliest completion.
func (s *Scheduler) ledgerPopLocked() *ledgerEntry {
	top := s.ledger[0]
	last := len(s.ledger) - 1
	s.ledger[0] = s.ledger[last]
	s.ledger[last] = nil
	s.ledger = s.ledger[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s.ledger) && ledgerLess(s.ledger[l], s.ledger[min]) {
			min = l
		}
		if r < len(s.ledger) && ledgerLess(s.ledger[r], s.ledger[min]) {
			min = r
		}
		if min == i {
			return top
		}
		s.ledger[i], s.ledger[min] = s.ledger[min], s.ledger[i]
		i = min
	}
}

// bookLocked books a routed batch's virtual service interval: the
// batch starts when its worker frees up, runs for the service-model
// price, and is entered on the completion ledger, which Tick settles.
// Called with the scheduler mutex held, from the single deterministic
// dispatch path, so identical request traces book identical ledgers.
func (s *Scheduler) bookLocked(w *worker, reqs []*request) {
	now := s.ticks.Load()
	start := now
	if w.vBusyUntil > start {
		start = w.vBusyUntil
	}
	price := s.opt.ServiceModel.BatchTicks(len(reqs))
	if first := reqs[0]; first.sp != nil {
		// A shard sub-batch is uniform (the batch key carries the
		// window), so the first request prices the whole batch.
		price = s.opt.ServiceModel.ShardTicks(len(reqs), first.shard.Count, first.shard.Of)
	}
	end := start + price
	w.vBusyUntil = end
	for _, req := range reqs {
		req.st.ExecStart = start
		req.st.ExecEnd = end
	}
	s.ledgerPushLocked(&ledgerEntry{execEnd: end, seq: s.ledgerSeq, reqs: reqs})
	s.ledgerSeq++
}

// settleLedgerLocked delivers every booked batch whose virtual
// completion is due at now (all of them when force, for Close): the
// stage stamps finalize, the latency histograms record, and the
// admission-queue slots release. Slot release here - not at real
// result delivery - is what keeps shedding decisions a pure function
// of the request trace in virtual-time mode.
func (s *Scheduler) settleLedgerLocked(now int64, force bool) {
	for len(s.ledger) > 0 {
		top := s.ledger[0]
		if !force && top.execEnd > now {
			return
		}
		s.ledgerPopLocked()
		deliver := now
		if deliver < top.execEnd {
			deliver = top.execEnd
		}
		for _, req := range top.reqs {
			if req.sp != nil {
				s.settleShardLocked(req, deliver)
				continue
			}
			req.st.Deliver = deliver
			req.final.Store(true)
			s.recordStages(req.st)
			s.releaseSlot()
		}
		if s.trace != nil {
			first := top.reqs[0].st
			s.span.Event(obs.RequestCompleted, opName(top.reqs[0]),
				obs.Int("size", int64(len(top.reqs))),
				obs.Int("linger", first.Linger()),
				obs.Int("queue_wait", first.QueueWait()),
				obs.Int("execute", first.Execute()),
				obs.Int("deliver_tick", deliver),
				obs.Int("journal_seq", top.reqs[0].jseq))
		}
	}
}

// settleShardLocked settles one booked kernel-group sub-request: its
// own stamps finalize, and when it is the last of its parent's subs
// to settle, the parent aggregates (earliest sub start to last sub
// end), records on the histograms - parent only, so the stage
// reconciliation invariant counts each admitted request once - and
// releases the admission slot. The ledger settles under the scheduler
// mutex in deterministic (execEnd, seq) order, so the aggregate is a
// pure function of the request trace.
func (s *Scheduler) settleShardLocked(req *request, deliver int64) {
	req.st.Deliver = deliver
	req.final.Store(true)
	sp := req.sp
	sp.mu.Lock()
	if req.st.ExecStart < sp.vMinStart {
		sp.vMinStart = req.st.ExecStart
	}
	if req.st.ExecEnd > sp.vMaxEnd {
		sp.vMaxEnd = req.st.ExecEnd
	}
	sp.vremaining--
	last := sp.vremaining == 0 && !sp.failed
	minStart, maxEnd := sp.vMinStart, sp.vMaxEnd
	sp.mu.Unlock()
	if !last {
		return
	}
	p := sp.req
	p.st.ExecStart = minStart
	p.st.ExecEnd = maxEnd
	p.st.Deliver = deliver
	p.final.Store(true)
	s.recordStages(p.st)
	s.releaseSlot()
}

// recordStages observes one request's decomposition. All instruments
// are nil-safe, so an uninstrumented scheduler pays five nil checks.
func (s *Scheduler) recordStages(st StageTicks) {
	s.latLinger.Observe(float64(st.Linger()))
	s.latWait.Observe(float64(st.QueueWait()))
	s.latExec.Observe(float64(st.Execute()))
	s.latDeliver.Observe(float64(st.Delivery()))
	s.latE2E.Observe(float64(st.EndToEnd()))
}

// Stages returns the request's tick-denominated stage stamps. ok is
// false until the stamps are final: after the result delivery in
// wall-time mode, or after the settling tick (drain InFlight to zero,
// or Close) in virtual-time mode. Admission failures and canceled
// requests never finalize.
func (f *Future) Stages() (StageTicks, bool) {
	if f.err != nil || f.req == nil || !f.req.final.Load() {
		return StageTicks{}, false
	}
	return f.req.st, true
}

// InFlight returns the number of admitted requests whose admission
// slot has not yet released: real in-flight work in wall-time mode,
// virtually unserved work in virtual-time mode. A load driver ticks
// until this reaches zero to drain the tail deterministically.
func (s *Scheduler) InFlight() int64 { return s.queued.Load() }
