package fleet_test

import (
	"context"
	"math"
	"testing"

	"albireo/internal/fleet"
	"albireo/internal/health"
	"albireo/internal/inference"
	"albireo/internal/journal"
	"albireo/internal/nn"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// TestFleetGEMMMatchesLocalChip: a GEMM served through the fleet must
// produce exactly the bits a lone chip with the same seed produces.
func TestFleetGEMMMatchesLocalChip(t *testing.T) {
	t.Parallel()
	s, err := fleet.New(fleet.Options{MaxBatch: 4, QueueDepth: 8}, analogUnit(61))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	a := tensor.RandomMatrix(6, 14, 62)
	b := tensor.RandomMatrix(14, 5, 63)
	got, err := s.GEMM(ctx, a, b, true)
	if err != nil {
		t.Fatalf("GEMM: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The scheduler's startup BIST scan advances the chip's noise
	// stream before any request; the lone comparison chip needs the
	// identical scan to stay bit-aligned.
	lone := analogUnit(61)
	fleet.StartupScan([]fleet.Unit{lone}, health.Options{})
	want := lone.Backend.GEMM(a, b, true)
	if got.R != want.R || got.C != want.C {
		t.Fatalf("shape %dx%d, want %dx%d", got.R, got.C, want.R, want.C)
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("fleet GEMM output[%d] = %v, local chip = %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestFleetGEMMCoalesces: two GEMMs against the same B matrix share a
// batch (the weight program is the amortizable state); a GEMM against
// different B does not.
func TestFleetGEMMCoalesces(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	s, err := fleet.New(fleet.Options{MaxBatch: 2, MaxLinger: 5, QueueDepth: 16}, analogUnit(64))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(reg, nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	a := tensor.RandomMatrix(4, 10, 65)
	wa := tensor.RandomMatrix(10, 6, 66)
	wb := tensor.RandomMatrix(10, 6, 67)

	f1 := s.GEMMAsync(ctx, a, wa, false)
	f2 := s.GEMMAsync(ctx, a, wa, false)
	f3 := s.GEMMAsync(ctx, a, wb, false)
	for i, f := range []*fleet.Future{f1, f2} {
		if _, err := f.Matrix(); err != nil {
			t.Fatalf("gemm %d: %v", i+1, err)
		}
	}
	if got := reg.Snapshot().SumCounters(fleet.MetricBatches); got != 1 {
		t.Fatalf("batches after same-B pair = %d, want 1", got)
	}
	for i := 0; i < 5; i++ {
		s.Tick()
	}
	if _, err := f3.Matrix(); err != nil {
		t.Fatalf("gemm 3: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	h := reg.Snapshot().Histograms[fleet.MetricBatchSize]
	if h.Count != 2 || math.Float64bits(h.Sum) != math.Float64bits(3) {
		t.Fatalf("batch-size histogram count=%d sum=%g, want count=2 sum=3", h.Count, h.Sum)
	}
}

// TestFleetGEMMOpTagValidation: only GEMM-family tags are admitted.
func TestFleetGEMMOpTagValidation(t *testing.T) {
	t.Parallel()
	s, err := fleet.New(fleet.Options{QueueDepth: 4}, analogUnit(68))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	a := tensor.RandomMatrix(2, 3, 69)
	b := tensor.RandomMatrix(3, 2, 70)
	if _, err := s.GEMMAsyncOp(ctx, journal.OpConv, a, b, false).Matrix(); err == nil {
		t.Fatal("GEMMAsyncOp accepted a volume op tag")
	}
	if _, err := s.GEMMAsyncOp(ctx, journal.OpLSTM, a, b, false).Matrix(); err != nil {
		t.Fatalf("GEMMAsyncOp(OpLSTM): %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestJournalReplayGEMMWorkloads: serve an MLP head and an attention
// block through a journaled fleet, then rebuild the pool from the
// header and verify every delivered GEMM hash bit-for-bit - the
// bit-exact replay contract extended to the GEMM family.
func TestJournalReplayGEMMWorkloads(t *testing.T) {
	t.Parallel()
	spec := fleet.PoolSpec{Pool: 2, Seed: 71, Budget: 100}
	hdr := journal.Header{Pool: 2, Seed: 71, Size: 8, Budget: spec.Budget}
	dir, a, _ := startJournal(t, hdr)

	units, _, err := fleet.BuildUnits(spec, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatalf("BuildUnits: %v", err)
	}
	s, err := fleet.New(fleet.Options{MaxBatch: 4, QueueDepth: 32, Journal: a}, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	be := s.Bind(ctx)

	m := nn.NewMLP("head", []int{12, 16, 4}, 72)
	x := tensor.RandomMatrix(3, 12, 73)
	m.Forward(be, x)
	q := tensor.RandomMatrix(4, 8, 74)
	k := tensor.RandomMatrix(4, 8, 75)
	v := tensor.RandomMatrix(4, 8, 76)
	nn.Attention(be, q, k, v)
	if err := be.Err(); err != nil {
		t.Fatalf("bound backend degraded: %v", err)
	}

	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	a.Drain()

	snap, err := journal.Read(dir)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	rebuilt, _, err := fleet.BuildUnits(spec, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatalf("BuildUnits (replay): %v", err)
	}
	fleet.StartupScan(rebuilt, health.Options{})
	res, err := journal.Replay(snap, &fleet.JournalExecutor{Units: rebuilt})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Verified == 0 || res.Verified != res.Delivers || res.Admits != res.Delivers {
		t.Fatalf("replay result = %+v, want every GEMM delivered and verified", res)
	}
}

// TestBoundBackendGEMMFallback: after Close, a bound backend's GEMM
// falls back to the exact reference and records the error.
func TestBoundBackendGEMMFallback(t *testing.T) {
	t.Parallel()
	s, err := fleet.New(fleet.Options{QueueDepth: 4}, analogUnit(77))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	be := s.Bind(ctx)
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	a := tensor.RandomMatrix(3, 5, 78)
	b := tensor.RandomMatrix(5, 2, 79)
	got := be.GEMM(a, b, false)
	want := inference.Exact{}.GEMM(a, b, false)
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("fallback GEMM output[%d] = %v, exact = %v", i, got.Data[i], want.Data[i])
		}
	}
	if be.Err() == nil {
		t.Fatal("bound backend did not record the submission failure")
	}
}
