package fleet_test

import (
	"context"
	"fmt"
	"testing"

	"albireo/internal/core"
	"albireo/internal/fleet"
	"albireo/internal/health"
	"albireo/internal/journal"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// cloneUnits builds a clone pool: every worker's chip shares the same
// seed and the same prep, which is the regime where the sharded union
// is bit-identical to a single chip (each chip's PLCGs see exactly
// the kernel sequence - and noise draws - of the reference chip's
// corresponding groups).
func cloneUnits(n int, seed int64, prep func(*core.Chip)) []fleet.Unit {
	units := make([]fleet.Unit, n)
	for i := range units {
		units[i] = analogUnit(seed)
		if prep != nil {
			prep(units[i].Chip)
		}
	}
	return units
}

// shardOpt is the sharded-serving configuration: no lingering, shard
// fan-out on.
func shardOpt() fleet.Options {
	return fleet.Options{MaxBatch: 8, QueueDepth: 32, Shard: true}
}

// runShardTrace drives a fixed four-op trace - a 13-kernel 3x3 conv,
// an 11-kernel pointwise conv, a 10-neuron classifier, and an
// 11x13x10 GEMM, each waited on before the next - and returns the
// outputs plus the registry snapshot.
func runShardTrace(t *testing.T, units []fleet.Unit, opt fleet.Options) ([][]float64, obs.Snapshot) {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := fleet.New(opt, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(reg, obs.NewTrace())
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in := tensor.RandomVolume(6, 10, 10, 931)
	w1 := tensor.RandomKernels(13, 6, 3, 3, 932) // 13 kernels: uneven residues mod 9
	w2 := tensor.RandomKernels(11, 13, 1, 1, 933)
	wfc := tensor.RandomKernels(10, 11, 10, 10, 934)
	ma := tensor.RandomMatrix(11, 13, 935)
	mb := tensor.RandomMatrix(13, 10, 936)

	v1, err := s.Conv(ctx, in, w1, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
	if err != nil {
		t.Fatalf("conv: %v", err)
	}
	u1, err := s.Conv(ctx, v1, w2, tensor.ConvConfig{}, true)
	if err != nil {
		t.Fatalf("pointwise: %v", err)
	}
	l1, err := s.FullyConnected(ctx, u1, wfc, false)
	if err != nil {
		t.Fatalf("fc: %v", err)
	}
	m1, err := s.GEMM(ctx, ma, mb, false)
	if err != nil {
		t.Fatalf("gemm: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return [][]float64{v1.Data, u1.Data, l1, m1.Data}, reg.Snapshot()
}

// TestFleetShardedMatchesSinglePool is the tentpole invariant at the
// fleet layer: a sharded clone pool serves every shardable op kind
// with outputs bit-identical to a single chip, across healthy,
// faulted (quarantined-and-kept), and pre-quarantined pools.
func TestFleetShardedMatchesSinglePool(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name         string
		prep         func(*testing.T, *core.Chip)
		keepDegraded bool
	}{
		{name: "healthy"},
		{
			// Faults the startup BIST localizes; KeepDegraded keeps every
			// clone serving with the faulty units quarantined.
			name: "faulty",
			prep: func(t *testing.T, c *core.Chip) {
				t.Helper()
				for _, f := range []struct {
					g, u int
					f    core.Fault
				}{
					{0, 0, core.Fault{Kind: core.StuckMZM, Tap: 1, Value: 0.6}},
					{3, 2, core.Fault{Kind: core.DetunedRing, Tap: 5, Column: 2, Value: 0.9, Drift: 1e-4}},
					{7, 1, core.Fault{Kind: core.DeadRing, Tap: 2, Column: 0}},
				} {
					if err := c.InjectFault(f.g, f.u, f.f); err != nil {
						t.Fatalf("InjectFault(%d,%d): %v", f.g, f.u, err)
					}
				}
			},
			keepDegraded: true,
		},
		{
			// Group 4 loses all its units: the active-group count (and so
			// the shard modulus) drops to 8 on every clone.
			name: "quarantined",
			prep: func(t *testing.T, c *core.Chip) {
				t.Helper()
				for _, q := range [][2]int{{4, 0}, {4, 1}, {4, 2}, {1, 2}} {
					if err := c.Quarantine(q[0], q[1]); err != nil {
						t.Fatalf("Quarantine(%d,%d): %v", q[0], q[1], err)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var prep func(*core.Chip)
			if tc.prep != nil {
				prep = func(c *core.Chip) { tc.prep(t, c) }
			}
			opt := shardOpt()
			opt.KeepDegraded = tc.keepDegraded
			sharded, snap := runShardTrace(t, cloneUnits(4, 61, prep), opt)
			single, ssnap := runShardTrace(t, cloneUnits(1, 61, prep), opt)
			requireBitsEqual(t, sharded, single)
			if got := snap.Counters[fleet.MetricShardFanouts]; got != 4 {
				t.Fatalf("shard fanouts = %d, want 4 (one per op)", got)
			}
			if got := snap.Counters[fleet.MetricShardSubs]; got != 16 {
				t.Fatalf("shard subs = %d, want 16 (4 ops x 4 workers)", got)
			}
			if got := ssnap.Counters[fleet.MetricShardFanouts]; got != 0 {
				t.Fatalf("pool-1 fanned out %d requests, want whole-request path", got)
			}
		})
	}
}

// TestFleetShardedDrainedMatchesSmallerPool is the degradation half:
// a sharded pool whose faulty worker is drained by the startup scan
// falls back - deterministically and bit-identically - to the sharded
// placement of the surviving clones, which in turn still matches the
// single-chip reference.
func TestFleetShardedDrainedMatchesSmallerPool(t *testing.T) {
	t.Parallel()
	units := cloneUnits(4, 62, nil)
	detune(t, units[2], 2, 1)
	drained, snap := runShardTrace(t, units, shardOpt())
	smaller, _ := runShardTrace(t, cloneUnits(3, 62, nil), shardOpt())
	single, _ := runShardTrace(t, cloneUnits(1, 62, nil), shardOpt())
	requireBitsEqual(t, drained, smaller)
	requireBitsEqual(t, drained, single)
	if got := snap.Counters[fleet.MetricDrains]; got != 1 {
		t.Fatalf("drains = %d, want 1", got)
	}
	if got := snap.Counters[fleet.MetricShardFanouts]; got != 4 {
		t.Fatalf("shard fanouts = %d, want 4", got)
	}
}

// TestFleetShardedDegradedPlacement checks quarantine-aware
// placement: a degraded-but-serving worker receives fewer kernel
// groups in proportion to its surviving PLCUs - never zero - and the
// journal's shard records pin the exact windows.
func TestFleetShardedDegradedPlacement(t *testing.T) {
	t.Parallel()
	dir, a, _ := startJournal(t, journal.Header{Pool: 3, Seed: 63})
	units := cloneUnits(3, 63, nil)
	// Degrade worker 1 to weight 9 (two of three units quarantined in
	// every group) without losing any group: placement over weights
	// {27, 9, 27} across 9 positions apportions {4, 1, 4}.
	for g := 0; g < 9; g++ {
		for u := 0; u < 2; u++ {
			if err := units[1].Chip.Quarantine(g, u); err != nil {
				t.Fatalf("Quarantine(%d,%d): %v", g, u, err)
			}
		}
	}
	opt := shardOpt()
	opt.Journal = a
	s, err := fleet.New(opt, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(obs.NewRegistry(), nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in := tensor.RandomVolume(6, 10, 10, 941)
	w := tensor.RandomKernels(13, 6, 3, 3, 942)
	if _, err := s.Conv(ctx, in, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true); err != nil {
		t.Fatalf("conv: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	a.Drain()
	if err := a.Close(); err != nil {
		t.Fatalf("journal Close: %v", err)
	}

	snap, err := journal.Read(dir)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	counts := map[int64]int64{}
	for _, rec := range snap.Records {
		if rec.Kind != journal.KindShard {
			continue
		}
		sr, err := journal.DecodeShard(rec.Payload)
		if err != nil {
			t.Fatalf("shard payload: %v", err)
		}
		if sr.Of != 9 {
			t.Fatalf("shard modulus = %d, want 9", sr.Of)
		}
		counts[sr.Worker] = sr.Count
	}
	want := map[int64]int64{0: 4, 1: 1, 2: 4}
	if len(counts) != len(want) {
		t.Fatalf("shard records for %d workers, want %d (%v)", len(counts), len(want), counts)
	}
	for wk, n := range want {
		if counts[wk] != n {
			t.Fatalf("worker %d owns %d kernel groups, want %d (%v)", wk, counts[wk], n, counts)
		}
	}
}

// TestFleetShardedVirtualTimeLatency pins the latency win in the
// deterministic clock: with the same service model, a pool-4 sharded
// single inference completes in fewer virtual ticks than pool-1
// (program once, steady-state divided by the owned fraction), and the
// whole decomposition is reproducible tick for tick.
func TestFleetShardedVirtualTimeLatency(t *testing.T) {
	t.Parallel()
	run := func(pool int) (fleet.StageTicks, []fleet.StageTicks, bool) {
		units := cloneUnits(pool, 64, nil)
		s, err := fleet.New(fleet.Options{
			MaxBatch: 8, QueueDepth: 16, Shard: true,
			VirtualTime:  true,
			ServiceModel: fleet.ServiceModel{ProgramTicks: 2, RequestTicks: 18},
		}, units...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		s.Instrument(obs.NewRegistry(), nil)
		if err := s.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		ctx := context.Background()
		in := tensor.RandomVolume(6, 10, 10, 951)
		w := tensor.RandomKernels(18, 6, 3, 3, 952)
		fut := s.ConvAsync(ctx, in, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
		if _, err := fut.Volume(); err != nil {
			t.Fatalf("conv: %v", err)
		}
		for s.InFlight() > 0 {
			s.Tick()
		}
		st, ok := fut.Stages()
		if !ok {
			t.Fatal("stages not final after drain")
		}
		shards, sok := fut.ShardStages()
		if err := s.Close(ctx); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return st, shards, sok
	}

	st1, _, sok1 := run(1)
	if sok1 {
		t.Fatal("pool-1 request reported shard stages")
	}
	// Pool 1: ProgramTicks + RequestTicks = 20.
	if got := st1.EndToEnd(); got != 20 {
		t.Fatalf("pool-1 e2e = %d ticks, want 20", got)
	}
	st4, ss4, sok4 := run(4)
	if !sok4 || len(ss4) != 4 {
		t.Fatalf("pool-4 shard stages = %v (ok=%v), want 4 windows", ss4, sok4)
	}
	// Pool 4 windows over 9 groups are {3,2,2,2}: the slowest sub pays
	// 2 + ceil(18*3/9) = 8 ticks, and the merge barrier ends there.
	if got := st4.EndToEnd(); got != 8 {
		t.Fatalf("pool-4 e2e = %d ticks, want 8", got)
	}
	if st4.EndToEnd() >= st1.EndToEnd() {
		t.Fatalf("sharded e2e %d !< single-chip e2e %d", st4.EndToEnd(), st1.EndToEnd())
	}
	// Determinism: the same trace books the same ledger.
	st4b, ss4b, _ := run(4)
	if st4b != st4 {
		t.Fatalf("pool-4 stages changed across identical runs: %+v vs %+v", st4b, st4)
	}
	for i := range ss4 {
		if ss4b[i] != ss4[i] {
			t.Fatalf("shard %d stages changed across identical runs: %+v vs %+v", i, ss4b[i], ss4[i])
		}
	}
}

// TestFleetShardedJournalReplay closes the loop on the shard journal
// protocol: a sharded run's journal replays bit-for-bit against a
// rebuilt clone pool (KindShard records re-execute each window at its
// recorded per-worker position; the Worker -1 deliver verifies the
// merged hash), and a perturbed rebuild is caught as a divergence at
// the merge.
func TestFleetShardedJournalReplay(t *testing.T) {
	t.Parallel()
	dir, a, _ := startJournal(t, journal.Header{Pool: 2, Seed: 65})
	units := cloneUnits(2, 65, nil)
	opt := shardOpt()
	opt.Journal = a
	s, err := fleet.New(opt, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(obs.NewRegistry(), nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in := tensor.RandomVolume(6, 10, 10, 961)
	w1 := tensor.RandomKernels(13, 6, 3, 3, 962)
	wfc := tensor.RandomKernels(10, 13, 10, 10, 963)
	ma := tensor.RandomMatrix(7, 11, 964)
	mb := tensor.RandomMatrix(11, 9, 965)
	v1, err := s.Conv(ctx, in, w1, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
	if err != nil {
		t.Fatalf("conv: %v", err)
	}
	if _, err := s.FullyConnected(ctx, v1, wfc, false); err != nil {
		t.Fatalf("fc: %v", err)
	}
	if _, err := s.GEMM(ctx, ma, mb, false); err != nil {
		t.Fatalf("gemm: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	a.Drain()
	if err := a.Close(); err != nil {
		t.Fatalf("journal Close: %v", err)
	}

	snap, err := journal.Read(dir)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	var merged int
	for _, rec := range snap.Records {
		if rec.Kind != journal.KindDeliver {
			continue
		}
		d, err := journal.DecodeDeliver(rec.Payload)
		if err != nil {
			t.Fatalf("deliver payload: %v", err)
		}
		if d.Worker == -1 {
			merged++
		}
	}
	if merged != 3 {
		t.Fatalf("merged delivers = %d, want 3", merged)
	}

	rebuilt := cloneUnits(2, 65, nil)
	fleet.StartupScan(rebuilt, health.Options{})
	res, err := journal.Replay(snap, &fleet.JournalExecutor{Units: rebuilt})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Admits != 3 || res.Delivers != 3 || res.Verified != 3 {
		t.Fatalf("replay result = %+v, want 3 admits/delivers/verified", res)
	}
	if res.ShardSubs != 6 {
		t.Fatalf("replayed shard subs = %d, want 6 (3 ops x 2 workers)", res.ShardSubs)
	}

	// Perturb worker 1 after the startup scan - inside its window:
	// worker 1 owns residues [5,9), so its kernels run on groups 5-8,
	// and a fault in group 6 must diverge the merged hash.
	perturbed := cloneUnits(2, 65, nil)
	fleet.StartupScan(perturbed, health.Options{})
	f := core.Fault{Kind: core.DetunedRing, Tap: 4, Column: 2, Value: 0.3}
	if err := perturbed[1].Chip.InjectFault(6, 1, f); err != nil {
		t.Fatalf("InjectFault: %v", err)
	}
	_, err = journal.Replay(snap, &fleet.JournalExecutor{Units: perturbed})
	d, ok := journal.AsDivergence(err)
	if !ok {
		t.Fatalf("perturbed replay: err = %v, want *Divergence", err)
	}
	if d.Worker != -1 {
		t.Fatalf("divergence at worker %d, want -1 (the merged deliver)", d.Worker)
	}
}

// BenchmarkShardedConv measures a single 36-kernel convolution
// inference: pool-1 serves it whole; pool-4 shards it into
// kernel-group windows, so each chip simulates a quarter of the PLCG
// steps and the critical path drops accordingly. Wall ns/op shows the
// win on multi-core hosts (chips execute on separate goroutines); the
// virt-ticks/op metric is the deterministic service-model latency of
// the same inference (20 for pool-1, 8 for pool-4 under the default
// 18-tick steady state), machine-independent by construction.
func BenchmarkShardedConv(b *testing.B) {
	in := tensor.RandomVolume(6, 16, 16, 971)
	w := tensor.RandomKernels(36, 6, 3, 3, 972)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}
	for _, pool := range []int{1, 4} {
		b.Run(fmt.Sprintf("pool-%d", pool), func(b *testing.B) {
			ticks := virtTicks(b, pool, in, w, cfg)
			s, err := fleet.New(shardOpt(), cloneUnits(pool, 66, nil)...)
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			s.Instrument(obs.NewRegistry(), nil)
			if err := s.Start(); err != nil {
				b.Fatalf("Start: %v", err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Conv(ctx, in, w, cfg, true); err != nil {
					b.Fatalf("conv: %v", err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ticks), "virt-ticks/op")
			if err := s.Close(ctx); err != nil {
				b.Fatalf("Close: %v", err)
			}
		})
	}
}

// virtTicks runs one inference under the virtual clock and returns
// its end-to-end latency in ticks.
func virtTicks(b *testing.B, pool int, in *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig) int64 {
	b.Helper()
	s, err := fleet.New(fleet.Options{
		MaxBatch: 8, QueueDepth: 16, Shard: true,
		VirtualTime:  true,
		ServiceModel: fleet.ServiceModel{ProgramTicks: 2, RequestTicks: 18},
	}, cloneUnits(pool, 66, nil)...)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	s.Instrument(obs.NewRegistry(), nil)
	if err := s.Start(); err != nil {
		b.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	fut := s.ConvAsync(ctx, in, w, cfg, true)
	if _, err := fut.Volume(); err != nil {
		b.Fatalf("conv: %v", err)
	}
	for s.InFlight() > 0 {
		s.Tick()
	}
	st, ok := fut.Stages()
	if !ok {
		b.Fatal("stages not final")
	}
	if err := s.Close(ctx); err != nil {
		b.Fatalf("Close: %v", err)
	}
	return st.EndToEnd()
}
