package fleet_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"albireo/internal/core"
	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// analogUnit builds one pool member: an analog backend on a chip
// seeded distinctly per worker.
func analogUnit(seed int64) fleet.Unit {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	a := inference.NewAnalog(cfg)
	return fleet.Unit{Backend: a, Chip: a.Chip}
}

// detune injects a detuned-ring fault that a BIST scan localizes.
func detune(t *testing.T, u fleet.Unit, group, unit int) {
	t.Helper()
	f := core.Fault{Kind: core.DetunedRing, Tap: 4, Column: 2, Value: 0.3}
	if err := u.Chip.InjectFault(group, unit, f); err != nil {
		t.Fatalf("InjectFault: %v", err)
	}
}

// defaultOpt is the scripted-trace configuration: small batches, a
// two-tick linger, and a queue deep enough for the trace.
func defaultOpt() fleet.Options {
	return fleet.Options{MaxBatch: 8, MaxLinger: 2, QueueDepth: 16}
}

// runTrace drives a fixed request trace - two coalescible 3x3 convs,
// two pointwise convs, two classifier calls, with explicit ticks -
// through a pool built from seeds, and returns every output plus the
// final registry snapshot. prep may inject faults before Start;
// inspect may examine the started scheduler.
func runTrace(t *testing.T, seeds []int64, prep func([]fleet.Unit), inspect func(*fleet.Scheduler), opt fleet.Options) ([][]float64, obs.Snapshot) {
	t.Helper()
	units := make([]fleet.Unit, len(seeds))
	for i, s := range seeds {
		units[i] = analogUnit(s)
	}
	if prep != nil {
		prep(units)
	}
	reg := obs.NewRegistry()
	s, err := fleet.New(opt, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(reg, obs.NewTrace())
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if inspect != nil {
		inspect(s)
	}

	ctx := context.Background()
	in1 := tensor.RandomVolume(3, 10, 10, 7)
	in2 := tensor.RandomVolume(3, 10, 10, 8)
	w1 := tensor.RandomKernels(4, 3, 3, 3, 70)
	w2 := tensor.RandomKernels(5, 4, 1, 1, 71)
	wfc := tensor.RandomKernels(6, 5, 10, 10, 72)
	cfg3 := tensor.ConvConfig{Stride: 1, Pad: 1}

	f1 := s.ConvAsync(ctx, in1, w1, cfg3, true)
	f2 := s.ConvAsync(ctx, in2, w1, cfg3, true)
	s.Tick()
	s.Tick()
	v1, err := f1.Volume()
	if err != nil {
		t.Fatalf("conv 1: %v", err)
	}
	v2, err := f2.Volume()
	if err != nil {
		t.Fatalf("conv 2: %v", err)
	}

	p1 := s.ConvAsync(ctx, v1, w2, tensor.ConvConfig{}, true)
	p2 := s.ConvAsync(ctx, v2, w2, tensor.ConvConfig{}, true)
	s.Tick()
	s.Tick()
	u1, err := p1.Volume()
	if err != nil {
		t.Fatalf("pointwise 1: %v", err)
	}
	u2, err := p2.Volume()
	if err != nil {
		t.Fatalf("pointwise 2: %v", err)
	}

	g1 := s.FullyConnectedAsync(ctx, u1, wfc, false)
	g2 := s.FullyConnectedAsync(ctx, u2, wfc, false)
	s.Tick()
	s.Tick()
	l1, err := g1.Logits()
	if err != nil {
		t.Fatalf("fc 1: %v", err)
	}
	l2, err := g2.Logits()
	if err != nil {
		t.Fatalf("fc 2: %v", err)
	}

	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return [][]float64{v1.Data, v2.Data, u1.Data, u2.Data, l1, l2}, reg.Snapshot()
}

// requireBitsEqual fails unless every output pair is bit-identical.
func requireBitsEqual(t *testing.T, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("output counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("output %d sizes differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				t.Fatalf("output %d[%d] differs: %g vs %g", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// eventually polls cond until it holds or the deadline passes. Wall
// time is confined to test pacing; every asserted quantity is
// event-denominated.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetDeterministicTrace is the deterministic-throughput
// invariant: the same request trace against the same pool yields
// bit-identical results and bit-identical registry snapshots.
func TestFleetDeterministicTrace(t *testing.T) {
	t.Parallel()
	r1, s1 := runTrace(t, []int64{11, 12, 13}, nil, nil, defaultOpt())
	r2, s2 := runTrace(t, []int64{11, 12, 13}, nil, nil, defaultOpt())
	requireBitsEqual(t, r1, r2)
	if !s1.Equal(s2) {
		t.Fatal("registry snapshots differ across identical runs")
	}
}

// TestFleetDrainedMatchesSmallerPool is the quarantine half of the
// invariant: a pool whose middle worker carries a detuned ring (found
// and drained by the startup BIST scan) serves the same trace with
// results bit-identical to a healthy pool of the surviving chips.
func TestFleetDrainedMatchesSmallerPool(t *testing.T) {
	t.Parallel()
	faulty, sf := runTrace(t, []int64{11, 12, 13},
		func(units []fleet.Unit) { detune(t, units[1], 2, 1) },
		func(s *fleet.Scheduler) {
			info := s.Info()
			if info[1].InService {
				t.Fatal("faulty worker 1 still in service after startup scan")
			}
			if !info[0].InService || !info[2].InService {
				t.Fatal("healthy workers drained")
			}
			if !s.Degraded() {
				t.Fatal("fleet not reported degraded")
			}
		},
		defaultOpt())
	healthy, _ := runTrace(t, []int64{11, 13}, nil, nil, defaultOpt())
	requireBitsEqual(t, faulty, healthy)
	if got := sf.Counters[fleet.MetricDrains]; got != 1 {
		t.Fatalf("drains counter = %d, want 1", got)
	}
}

// TestFleetBatchCoalescing checks the micro-batcher: compatible
// requests coalesce up to MaxBatch, incompatible ones do not, and
// partial batches wait out MaxLinger ticks.
func TestFleetBatchCoalescing(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	s, err := fleet.New(fleet.Options{MaxBatch: 2, MaxLinger: 5, QueueDepth: 16}, analogUnit(21))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(reg, nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in := tensor.RandomVolume(3, 9, 9, 5)
	wa := tensor.RandomKernels(4, 3, 3, 3, 50)
	wb := tensor.RandomKernels(4, 3, 3, 3, 51)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}

	// Two compatible requests: fills MaxBatch, dispatches immediately.
	f1 := s.ConvAsync(ctx, in, wa, cfg, false)
	f2 := s.ConvAsync(ctx, in, wa, cfg, false)
	// A third on different weights: incompatible, lingers.
	f3 := s.ConvAsync(ctx, in, wb, cfg, false)
	if _, err := f1.Volume(); err != nil {
		t.Fatalf("conv 1: %v", err)
	}
	if _, err := f2.Volume(); err != nil {
		t.Fatalf("conv 2: %v", err)
	}
	if got := reg.Snapshot().SumCounters(fleet.MetricBatches); got != 1 {
		t.Fatalf("batches after full batch = %d, want 1 (lingering batch dispatched early?)", got)
	}
	for i := 0; i < 5; i++ {
		s.Tick()
	}
	if _, err := f3.Volume(); err != nil {
		t.Fatalf("conv 3: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	h := reg.Snapshot().Histograms[fleet.MetricBatchSize]
	if h.Count != 2 || math.Float64bits(h.Sum) != math.Float64bits(3) {
		t.Fatalf("batch-size histogram count=%d sum=%g, want count=2 sum=3", h.Count, h.Sum)
	}
}

// TestFleetOverloadSheds checks bounded admission: submissions past
// QueueDepth fail fast with ErrOverloaded and count as shed.
func TestFleetOverloadSheds(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	s, err := fleet.New(fleet.Options{MaxBatch: 8, MaxLinger: 10, QueueDepth: 2}, analogUnit(22))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(reg, nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in := tensor.RandomVolume(3, 9, 9, 5)
	w := tensor.RandomKernels(4, 3, 3, 3, 50)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}

	f1 := s.ConvAsync(ctx, in, w, cfg, false)
	f2 := s.ConvAsync(ctx, in, w, cfg, false)
	f3 := s.ConvAsync(ctx, in, w, cfg, false)
	if _, err := f3.Volume(); !errors.Is(err, fleet.ErrOverloaded) {
		t.Fatalf("third submission: err = %v, want ErrOverloaded", err)
	}
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	if _, err := f1.Volume(); err != nil {
		t.Fatalf("conv 1: %v", err)
	}
	if _, err := f2.Volume(); err != nil {
		t.Fatalf("conv 2: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[fleet.MetricShed]; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if got := snap.Counters[fleet.MetricAdmitted]; got != 2 {
		t.Fatalf("admitted counter = %d, want 2", got)
	}
	if got := snap.Gauges[fleet.MetricQueueDepth]; got != 0 {
		t.Fatalf("queue depth after drain = %g, want 0", got)
	}
}

// TestFleetCancellation checks per-request deadlines: a request whose
// context ends while queued is delivered its context error, not run.
func TestFleetCancellation(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	s, err := fleet.New(fleet.Options{MaxBatch: 8, MaxLinger: 3, QueueDepth: 8}, analogUnit(23))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(reg, nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	in := tensor.RandomVolume(3, 9, 9, 5)
	w := tensor.RandomKernels(4, 3, 3, 3, 50)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}

	ctx, cancel := context.WithCancel(context.Background())
	f := s.ConvAsync(ctx, in, w, cfg, false)
	cancel()
	for i := 0; i < 3; i++ {
		s.Tick()
	}
	if _, err := f.Volume(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request: err = %v, want context.Canceled", err)
	}
	eventually(t, 2*time.Second, func() bool {
		return reg.Snapshot().Counters[fleet.MetricCanceled] == 1
	}, "canceled counter never reached 1")

	// A pre-canceled context fails at submission without queueing.
	f2 := s.ConvAsync(ctx, in, w, cfg, false)
	if _, err := f2.Volume(); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled submission: err = %v, want context.Canceled", err)
	}
	if got := reg.Snapshot().Counters[fleet.MetricAdmitted]; got != 1 {
		t.Fatalf("admitted counter = %d, want 1", got)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestFleetShutdownDrains checks Close: pending batches dispatch and
// complete, later submissions fail with ErrClosed, and the worker
// goroutines exit (counted before and after).
func TestFleetShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := fleet.New(fleet.Options{MaxBatch: 8, MaxLinger: 100, QueueDepth: 8},
		analogUnit(24), analogUnit(25))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(obs.NewRegistry(), obs.NewTrace())
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in := tensor.RandomVolume(3, 9, 9, 5)
	w := tensor.RandomKernels(4, 3, 3, 3, 50)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}

	// Left pending by the long linger; Close must flush and run them.
	futs := []*fleet.Future{
		s.ConvAsync(ctx, in, w, cfg, false),
		s.ConvAsync(ctx, in, w, cfg, false),
		s.ConvAsync(ctx, in, w, cfg, false),
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, f := range futs {
		if _, err := f.Volume(); err != nil {
			t.Fatalf("pending conv %d after Close: %v", i, err)
		}
	}
	if _, err := s.ConvAsync(ctx, in, w, cfg, false).Volume(); !errors.Is(err, fleet.ErrClosed) {
		t.Fatalf("submission after Close: err = %v, want ErrClosed", err)
	}
	eventually(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	}, "worker goroutines leaked after Close")
}

// TestFleetReprobeRestores checks return-to-service: a worker drained
// at startup is re-probed every ReprobeEvery ticks and rejoins the
// pool once its fault clears.
func TestFleetReprobeRestores(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	units := []fleet.Unit{analogUnit(26), analogUnit(27)}
	detune(t, units[1], 2, 1)
	s, err := fleet.New(fleet.Options{MaxBatch: 8, MaxLinger: 0, QueueDepth: 8, ReprobeEvery: 2}, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(reg, obs.NewTrace())
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if s.Info()[1].InService {
		t.Fatal("faulty worker in service after startup scan")
	}

	// Repair the hardware (the detuned ring re-locks), then tick past
	// the re-probe period and wait for the worker to rejoin.
	units[1].Chip.Groups()[2].Units()[1].ClearFaults()
	s.Tick()
	s.Tick()
	eventually(t, 10*time.Second, func() bool {
		s.Tick()
		return s.Info()[1].InService
	}, "repaired worker never returned to service")
	if got := reg.Snapshot().Counters[fleet.MetricRestores]; got != 1 {
		t.Fatalf("restores counter = %d, want 1", got)
	}
	if s.Degraded() {
		t.Fatal("fleet still degraded after restore")
	}

	ctx := context.Background()
	in := tensor.RandomVolume(3, 9, 9, 5)
	w := tensor.RandomKernels(4, 3, 3, 3, 50)
	if _, err := s.Conv(ctx, in, w, tensor.ConvConfig{Stride: 1, Pad: 1}, false); err != nil {
		t.Fatalf("conv after restore: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestFleetKeepDegraded checks the weighted alternative to draining:
// with KeepDegraded, a faulty worker keeps serving on its surviving
// units at reduced routing weight.
func TestFleetKeepDegraded(t *testing.T) {
	t.Parallel()
	units := []fleet.Unit{analogUnit(28)}
	detune(t, units[0], 2, 1)
	s, err := fleet.New(fleet.Options{MaxBatch: 8, MaxLinger: 0, QueueDepth: 8, KeepDegraded: true}, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(obs.NewRegistry(), nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	info := s.Info()[0]
	if !info.InService {
		t.Fatal("degraded worker drained despite KeepDegraded")
	}
	if !info.Degraded {
		t.Fatal("worker chip not degraded")
	}
	full := int64(core.DefaultConfig().Ng * core.DefaultConfig().Nu)
	if info.Weight >= full {
		t.Fatalf("weight = %d, want < %d after quarantine", info.Weight, full)
	}
	ctx := context.Background()
	in := tensor.RandomVolume(3, 9, 9, 5)
	w := tensor.RandomKernels(4, 3, 3, 3, 50)
	out, err := s.Conv(ctx, in, w, tensor.ConvConfig{Stride: 1, Pad: 1}, false)
	if err != nil {
		t.Fatalf("conv: %v", err)
	}
	for i, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("output[%d] = %g not finite", i, v)
		}
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestFleetStartFailsAllFaulty checks that Start refuses to serve when
// the startup scans drain every worker.
func TestFleetStartFailsAllFaulty(t *testing.T) {
	t.Parallel()
	units := []fleet.Unit{analogUnit(29)}
	detune(t, units[0], 2, 1)
	s, err := fleet.New(fleet.Options{}, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("Start succeeded with every worker faulty")
	}
}

// TestFleetNewValidates checks constructor validation.
func TestFleetNewValidates(t *testing.T) {
	t.Parallel()
	if _, err := fleet.New(fleet.Options{}); err == nil {
		t.Fatal("New accepted an empty pool")
	}
	if _, err := fleet.New(fleet.Options{}, fleet.Unit{}); err == nil {
		t.Fatal("New accepted a unit with no backend")
	}
}

// TestFleetPoolScaling pins the scaling property the serving story
// rests on: adding a second chip must not make the fleet slower. The
// regression it guards against was real - cold per-worker weight
// compiles inside the measurement window plus a per-request completion
// lock made pool2 lose to pool1 outright. On a single-core host the
// pools can only tie, so the assertion allows a grace margin; what it
// forbids is pool2 losing decisively.
func TestFleetPoolScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive pool-scaling check; skipped under -short")
	}
	net := inference.TinyCNN(3, 8, 42)
	input := tensor.RandomVolume(3, 8, 8, 9)
	const (
		streams   = 4 // concurrent submitters
		perStream = 5 // inferences per submitter per trial
		trials    = 3 // best-of, to shed scheduler noise
	)
	measure := func(pool int) time.Duration {
		units := make([]fleet.Unit, pool)
		for i := range units {
			units[i] = analogUnit(int64(1 + i))
		}
		s, err := fleet.New(fleet.Options{MaxBatch: 8, QueueDepth: 64}, units...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := s.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		defer s.Close(context.Background())
		// Warm every chip's weight-program cache so the timed trials
		// measure steady-state serving, as production does.
		for i := range units {
			_ = net.Run(units[i].Backend, input)
		}
		best := time.Duration(math.MaxInt64)
		for trial := 0; trial < trials; trial++ {
			start := time.Now()
			var wg sync.WaitGroup
			for st := 0; st < streams; st++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < perStream; k++ {
						bound := s.Bind(context.Background())
						_ = net.Run(bound, input)
						if err := bound.Err(); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	t1 := measure(1)
	t2 := measure(2)
	if float64(t2) > float64(t1)*1.25 {
		t.Fatalf("pool2 decisively slower than pool1: pool1=%v pool2=%v (limit 1.25x)", t1, t2)
	}
	t.Logf("pool1=%v pool2=%v", t1, t2)
}
