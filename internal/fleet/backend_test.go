package fleet_test

import (
	"context"
	"errors"
	"testing"

	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/inference/backendtest"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// newFleetBackend builds a started two-worker pool bound to a
// background context, closed at test cleanup. MaxLinger 0 dispatches
// each request on submission, so a single blocking caller never waits
// on ticks.
func newFleetBackend(t *testing.T) inference.Backend {
	t.Helper()
	s, err := fleet.New(fleet.Options{MaxLinger: 0, QueueDepth: 8},
		analogUnit(31), analogUnit(32))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(obs.NewRegistry(), nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(context.Background()); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s.Bind(context.Background())
}

// TestFleetBackendConformance runs the shared inference.Backend
// conformance suite against the fleet-bound backend - the same table
// Exact, Analog, Observed, and Guarded pass.
func TestFleetBackendConformance(t *testing.T) {
	backendtest.Run(t, newFleetBackend)
}

// TestBoundBackendFallback checks the Backend adapter's degraded path:
// when a submission fails (scheduler closed), the bound backend
// computes the layer on the exact reference, keeps serving
// shape-correct tensors, and surfaces the sticky error via Err.
func TestBoundBackendFallback(t *testing.T) {
	t.Parallel()
	s, err := fleet.New(fleet.Options{MaxLinger: 0, QueueDepth: 8}, analogUnit(33))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	b := s.Bind(context.Background())
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	in := tensor.RandomVolume(3, 9, 9, 5)
	w := tensor.RandomKernels(4, 3, 3, 3, 50)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}
	out := b.Conv(in, w, cfg, false)
	ref := inference.Exact{}.Conv(in, w, cfg, false)
	if out.Z != ref.Z || out.Y != ref.Y || out.X != ref.X {
		t.Fatalf("fallback shape %dx%dx%d, want %dx%dx%d", out.Z, out.Y, out.X, ref.Z, ref.Y, ref.X)
	}
	if !errors.Is(b.Err(), fleet.ErrClosed) {
		t.Fatalf("Err() = %v, want ErrClosed", b.Err())
	}
}
