package fleet_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"albireo/internal/fleet"
	"albireo/internal/health"
	"albireo/internal/journal"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// startJournal creates a fresh journal under a temp dir and returns
// the running async front plus the raw writer (so tests can simulate
// crashes by abandoning it un-Closed).
func startJournal(t *testing.T, hdr journal.Header) (string, *journal.Async, *journal.Writer) {
	t.Helper()
	dir := t.TempDir()
	w, err := journal.Create(dir, hdr, journal.Options{NoSync: true})
	if err != nil {
		t.Fatalf("journal.Create: %v", err)
	}
	a := journal.NewAsync(w, 0)
	a.Start()
	return dir, a, w
}

// TestJournalReplayBitExact is the end-to-end determinism check: serve
// a seeded sweep with journaling on, crash without closing the writer,
// read the journal back, rebuild a pool from nothing but the header,
// and verify every delivered output hash bit-for-bit. Then prove the
// detector is not vacuous: one extra detuned ring in the rebuilt pool
// must be caught with a first divergent sequence number.
func TestJournalReplayBitExact(t *testing.T) {
	t.Parallel()
	// Budget is generous so the guard never falls back to the digital
	// path: delivered bits are pure analog output, so any chip-state
	// difference between recorded and rebuilt pools must surface.
	spec := fleet.PoolSpec{Pool: 2, Seed: 7, Budget: 100, Detune: "0,0,4,2,0.4", KeepDegraded: true}
	hdr := journal.Header{
		Pool: int64(spec.Pool), Seed: spec.Seed, Size: 8,
		Budget: spec.Budget, KeepDegraded: spec.KeepDegraded, Detune: spec.Detune,
	}
	dir, a, _ := startJournal(t, hdr)

	units, _, err := fleet.BuildUnits(spec, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatalf("BuildUnits: %v", err)
	}
	s, err := fleet.New(fleet.Options{
		MaxBatch: 4, QueueDepth: 32,
		KeepDegraded: spec.KeepDegraded,
		Journal:      a,
	}, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	be := s.Bind(ctx)
	if err := fleet.Sweeps(ctx, obs.NewRegistry(), nil, be, 2, 2, int(hdr.Size), 7); err != nil {
		t.Fatalf("Sweeps: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	a.Drain()
	if a.Degraded() {
		t.Fatal("journal degraded during the sweep")
	}
	// Crash: the writer is abandoned without Close. Every appended
	// frame is complete, so recovery must find no torn tail.

	snap, err := journal.Read(dir)
	if err != nil {
		t.Fatalf("Read after crash: %v", err)
	}
	if snap.TornBytes != 0 {
		t.Fatalf("torn bytes = %d after frame-complete crash", snap.TornBytes)
	}
	if snap.Header != hdr {
		t.Fatalf("recovered header = %+v", snap.Header)
	}

	// Rebuild from the header alone and replay.
	rebuilt, _, err := fleet.BuildUnits(spec, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatalf("BuildUnits (replay): %v", err)
	}
	fleet.StartupScan(rebuilt, health.Options{})
	res, err := journal.Replay(snap, &fleet.JournalExecutor{Units: rebuilt})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Verified == 0 || res.Verified != res.Delivers || res.Admits != res.Delivers {
		t.Fatalf("replay result = %+v, want every admitted request delivered and verified", res)
	}

	// Divergence detection: one extra detuned ring on worker 0.
	diverged := spec
	diverged.Detune += ";0,1,3,1,0.3"
	units3, _, err := fleet.BuildUnits(diverged, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatalf("BuildUnits (diverged): %v", err)
	}
	fleet.StartupScan(units3, health.Options{})
	res, err = journal.Replay(snap, &fleet.JournalExecutor{Units: units3})
	d, ok := journal.AsDivergence(err)
	if !ok {
		t.Fatalf("replay on a perturbed pool: err = %v, want *Divergence", err)
	}
	if d.Worker != 0 {
		t.Fatalf("divergence on worker %d, want 0 (the perturbed chip)", d.Worker)
	}
	if d.Seq == 0 || d.Seq > snap.LastSeq {
		t.Fatalf("divergent seq %d outside journal range (1..%d)", d.Seq, snap.LastSeq)
	}
	if res.Verified >= res.Delivers {
		t.Fatalf("replay verified %d/%d delivers yet claimed divergence", res.Verified, res.Delivers)
	}
}

// TestJournalRecordsTransitions checks the quarantine lifecycle lands
// in the journal: a startup drain (probe=false, with the finding
// count) and a re-probe-driven return to service (probe=true).
func TestJournalRecordsTransitions(t *testing.T) {
	t.Parallel()
	dir, a, _ := startJournal(t, journal.Header{Pool: 2, Seed: 26})
	units := []fleet.Unit{analogUnit(26), analogUnit(27)}
	detune(t, units[1], 2, 1)
	s, err := fleet.New(fleet.Options{MaxBatch: 8, QueueDepth: 8, ReprobeEvery: 2, Journal: a}, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	units[1].Chip.Groups()[2].Units()[1].ClearFaults()
	eventually(t, 10*time.Second, func() bool {
		s.Tick()
		return s.Info()[1].InService
	}, "repaired worker never returned to service")
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	a.Drain()
	if err := a.Close(); err != nil {
		t.Fatalf("journal Close: %v", err)
	}

	snap, err := journal.Read(dir)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	var drains, restores []journal.Transition
	for _, rec := range snap.Records {
		switch rec.Kind {
		case journal.KindDrain:
			tr, err := journal.DecodeTransition(rec.Payload)
			if err != nil {
				t.Fatalf("drain payload: %v", err)
			}
			drains = append(drains, tr)
		case journal.KindRestore:
			tr, err := journal.DecodeTransition(rec.Payload)
			if err != nil {
				t.Fatalf("restore payload: %v", err)
			}
			restores = append(restores, tr)
		}
	}
	if len(drains) == 0 {
		t.Fatal("startup drain not journaled")
	}
	first := drains[0]
	if first.Worker != 1 || first.Probe || first.Findings == 0 {
		t.Fatalf("startup drain = %+v, want worker 1, probe=false, findings>0", first)
	}
	if len(restores) != 1 {
		t.Fatalf("restores journaled = %d, want 1", len(restores))
	}
	if restores[0].Worker != 1 || !restores[0].Probe {
		t.Fatalf("restore = %+v, want worker 1 via re-probe", restores[0])
	}
}

// TestJournalShedAndSeqs checks admission-order seq assignment and
// that a shed is journaled with the queue depth that forced it - and
// assigned no admit seq.
func TestJournalShedAndSeqs(t *testing.T) {
	t.Parallel()
	dir, a, _ := startJournal(t, journal.Header{Pool: 1, Seed: 40})
	// A long linger with no ticks parks admitted requests, so the
	// two-deep queue fills and the third submission sheds.
	s, err := fleet.New(fleet.Options{MaxBatch: 1, MaxLinger: 1000, QueueDepth: 2, Journal: a}, analogUnit(40))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in := tensor.RandomVolume(3, 9, 9, 5)
	w := tensor.RandomKernels(4, 3, 3, 3, 50)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}
	f1 := s.ConvAsync(ctx, in, w, cfg, false)
	f2 := s.ConvAsync(ctx, in, w, cfg, false)
	shed := s.ConvAsync(ctx, in, w, cfg, false)
	if _, err := shed.Volume(); !errors.Is(err, fleet.ErrOverloaded) {
		t.Fatalf("third submission: err = %v, want ErrOverloaded", err)
	}
	if got := shed.JournalSeq(); got != -1 {
		t.Fatalf("shed JournalSeq = %d, want -1", got)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := f1.JournalSeq(); got != 1 {
		t.Fatalf("first admit JournalSeq = %d, want 1", got)
	}
	if got := f2.JournalSeq(); got != 2 {
		t.Fatalf("second admit JournalSeq = %d, want 2", got)
	}
	a.Drain()
	if err := a.Close(); err != nil {
		t.Fatalf("journal Close: %v", err)
	}

	snap, err := journal.Read(dir)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	var sheds []journal.Shed
	for _, rec := range snap.Records {
		if rec.Kind == journal.KindShed {
			sh, err := journal.DecodeShed(rec.Payload)
			if err != nil {
				t.Fatalf("shed payload: %v", err)
			}
			sheds = append(sheds, sh)
		}
	}
	if len(sheds) != 1 {
		t.Fatalf("sheds journaled = %d, want 1", len(sheds))
	}
	if sheds[0].Op != journal.OpConv || sheds[0].Queued != 2 {
		t.Fatalf("shed record = %+v, want conv at queue depth 2", sheds[0])
	}
}
