package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"albireo/internal/core"
	"albireo/internal/health"
	"albireo/internal/inference"
	"albireo/internal/journal"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// PoolSpec is the construction-relevant description of a serving pool:
// exactly the fields the journal header records, so albireo-serve and
// albireo-replay build bit-identical pools from the same values.
type PoolSpec struct {
	// Pool is the worker count; worker i's chip uses Seed+i.
	Pool int
	// Seed is the base weight/input seed.
	Seed int64
	// Budget is the accuracy-guard relative divergence budget.
	Budget float64
	// Detune is the worker-0 fault-injection spec ("" for none),
	// in the -detune flag syntax.
	Detune string
	// KeepDegraded mirrors the fleet routing policy flag (it does not
	// change unit construction, but replay needs it to interpret the
	// recorded drain decisions).
	KeepDegraded bool
}

// BuildUnits constructs the pool: worker i is an observed,
// accuracy-guarded analog backend over a chip seeded Seed+i, with the
// Detune faults injected into worker 0 before any scan. The returned
// Guarded handles let callers wire per-worker fallback hooks (the
// journal's KindFallback records). Chip activity counters share reg
// and sum fleet-wide; reg and trace may be nil.
func BuildUnits(spec PoolSpec, reg *obs.Registry, trace *obs.Trace) ([]Unit, []*inference.Guarded, error) {
	if spec.Pool < 1 {
		return nil, nil, fmt.Errorf("fleet: pool must be >= 1, got %d", spec.Pool)
	}
	units := make([]Unit, spec.Pool)
	guards := make([]*inference.Guarded, spec.Pool)
	for i := range units {
		cfg := core.DefaultConfig()
		cfg.Seed = spec.Seed + int64(i)
		analog := inference.NewAnalog(cfg)
		analog.Chip.Instrument(reg, trace)
		if i == 0 {
			if err := InjectFaultSpecs(analog.Chip, cfg, spec.Detune); err != nil {
				return nil, nil, err
			}
		}
		guarded := inference.Guard(analog, inference.Exact{}, spec.Budget).Instrument(reg, trace)
		guards[i] = guarded
		units[i] = Unit{
			Backend: inference.Observe(guarded, reg, trace),
			Chip:    analog.Chip,
		}
	}
	return units, guards, nil
}

// InjectFaultSpecs parses and injects a -detune fault list. Each spec
// is "group,unit,tap,column,residual[,driftPerCycle]", semicolon-
// separated; the empty string injects nothing.
func InjectFaultSpecs(chip *core.Chip, cfg core.Config, specs string) error {
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ",")
		if len(parts) != 5 && len(parts) != 6 {
			return fmt.Errorf("detune spec %q: want group,unit,tap,column,residual[,drift]", spec)
		}
		ints := make([]int, 4)
		for i := range ints {
			v, err := strconv.Atoi(strings.TrimSpace(parts[i]))
			if err != nil {
				return fmt.Errorf("detune spec %q: %v", spec, err)
			}
			ints[i] = v
		}
		residual, err := strconv.ParseFloat(strings.TrimSpace(parts[4]), 64)
		if err != nil {
			return fmt.Errorf("detune spec %q: %v", spec, err)
		}
		var driftRate float64
		if len(parts) == 6 {
			if driftRate, err = strconv.ParseFloat(strings.TrimSpace(parts[5]), 64); err != nil {
				return fmt.Errorf("detune spec %q: %v", spec, err)
			}
		}
		// Validate here so unphysical flags surface as flag errors, not
		// as the core package's invariant panics.
		if ints[2] < 0 || ints[2] >= cfg.Nm {
			return fmt.Errorf("detune spec %q: tap outside [0,%d)", spec, cfg.Nm)
		}
		if ints[3] < 0 || ints[3] >= cfg.Nd {
			return fmt.Errorf("detune spec %q: column outside [0,%d)", spec, cfg.Nd)
		}
		if residual < 0 || residual > 1 {
			return fmt.Errorf("detune spec %q: residual outside [0,1]", spec)
		}
		if driftRate < 0 {
			return fmt.Errorf("detune spec %q: drift must be >= 0", spec)
		}
		f := core.Fault{Kind: core.DetunedRing, Tap: ints[2], Column: ints[3], Value: residual, Drift: driftRate}
		if err := chip.InjectFault(ints[0], ints[1], f); err != nil {
			return fmt.Errorf("detune spec %q: %v", spec, err)
		}
	}
	return nil
}

// StartupScan reproduces the chip-state side effects of
// Scheduler.Start's BIST pass without building a scheduler: every
// chip-backed unit is scanned and its findings quarantined, exactly as
// applyReportLocked does at startup (quarantine is applied regardless
// of the routing verdict). albireo-replay runs it before re-executing
// journaled work so the rebuilt chips carry the same cycle, drift, and
// quarantine state the recorded pool started serving with.
func StartupScan(units []Unit, opt health.Options) {
	for _, u := range units {
		if u.Chip == nil {
			continue
		}
		eng := health.New(u.Chip, opt)
		if rep := eng.Scan(); !rep.Healthy() {
			eng.QuarantineFindings(rep)
		}
	}
}

// ProbeUnit reproduces one runtime re-probe cycle (runProbe's chip
// side effects) on a unit: clear quarantine so the scan sees every
// PLCU, scan, and re-quarantine whatever is still faulty. Replay
// invokes it for each journaled probe-driven drain/restore transition.
func ProbeUnit(u Unit, opt health.Options) {
	if u.Chip == nil {
		return
	}
	u.Chip.ClearQuarantine()
	eng := health.New(u.Chip, opt)
	if rep := eng.Scan(); !rep.Healthy() {
		eng.QuarantineFindings(rep)
	}
}

// JournalExecutor adapts a rebuilt pool to journal.Replay: deliver
// records execute directly on the recorded worker's backend (routing
// already happened in the recorded run; the journal pins it) and
// probe-driven transitions re-run a BIST cycle on the worker's chip.
type JournalExecutor struct {
	// Units is the rebuilt pool (BuildUnits output, after StartupScan).
	Units []Unit
	// Health tunes the replayed re-probe scans; the zero value matches
	// a scheduler built with zero Options.Health.
	Health health.Options
	// merges holds the in-progress merge buffers of sharded requests,
	// keyed by admit sequence (lazily initialized).
	merges map[uint64]*shardMerge
}

// shardMerge is the replay-side merge buffer of one sharded request:
// the full-size output that per-worker shard executions fill in
// disjoint slices, exactly as the live scheduler's merge stage does.
type shardMerge struct {
	op  journal.Op
	vol *tensor.Volume
	vec []float64
	mat *tensor.Matrix
}

// Execute implements journal.Executor.
func (p *JournalExecutor) Execute(worker int, req *journal.Request) ([32]byte, error) {
	if worker < 0 || worker >= len(p.Units) {
		return [32]byte{}, fmt.Errorf("fleet: worker %d outside rebuilt pool of %d", worker, len(p.Units))
	}
	b := p.Units[worker].Backend
	switch req.Op {
	case journal.OpConv:
		return journal.HashVolume(b.Conv(req.A, req.W, req.Cfg, req.ReLU)), nil
	case journal.OpFC:
		return journal.HashVector(b.FullyConnected(req.A, req.W, req.ReLU)), nil
	case journal.OpGEMM, journal.OpLSTM, journal.OpAttention:
		return journal.HashMatrix(b.GEMM(req.MA, req.MB, req.ReLU)), nil
	default:
		return [32]byte{}, fmt.Errorf("fleet: unknown journaled op %d", req.Op)
	}
}

// ExecuteShard implements journal.Executor: it re-executes one
// kernel-group window on the recorded worker's chip, filling the owned
// slice of the request's merge buffer. Like the live sharded path it
// drives the chip directly - sub-requests bypass the guard and observe
// wrappers - so the replayed noise streams line up with the recording.
func (p *JournalExecutor) ExecuteShard(worker int, admit uint64, req *journal.Request, pos, count, of int) error {
	if worker < 0 || worker >= len(p.Units) {
		return fmt.Errorf("fleet: worker %d outside rebuilt pool of %d", worker, len(p.Units))
	}
	chip := p.Units[worker].Chip
	if chip == nil {
		return fmt.Errorf("fleet: worker %d has no chip; shard records need chip-backed pools", worker)
	}
	if p.merges == nil {
		p.merges = make(map[uint64]*shardMerge)
	}
	ms, ok := p.merges[admit]
	if !ok {
		ms = &shardMerge{op: req.Op}
		switch req.Op {
		case journal.OpConv:
			stride := req.Cfg.Stride
			if stride == 0 {
				stride = 1
			}
			by := tensor.ConvOutputDim(req.A.Y, req.W.Y, req.Cfg.Pad, stride)
			bx := tensor.ConvOutputDim(req.A.X, req.W.X, req.Cfg.Pad, stride)
			ms.vol = tensor.NewVolume(req.W.M, by, bx)
		case journal.OpFC:
			ms.vec = make([]float64, req.W.M)
		case journal.OpGEMM, journal.OpLSTM, journal.OpAttention:
			ms.mat = tensor.NewMatrix(req.MA.R, req.MB.C)
		default:
			return fmt.Errorf("fleet: unknown journaled op %d", req.Op)
		}
		p.merges[admit] = ms
	}
	spec := core.ShardSpec{Pos: pos, Count: count, Of: of}
	switch req.Op {
	case journal.OpConv:
		chip.ConvShard(req.A, req.W, req.Cfg, req.ReLU, spec, ms.vol)
	case journal.OpFC:
		chip.FullyConnectedShard(req.A, req.W, req.ReLU, spec, ms.vec)
	case journal.OpGEMM, journal.OpLSTM, journal.OpAttention:
		chip.GEMMShard(req.MA, req.MB, req.ReLU, spec, ms.mat)
	}
	return nil
}

// FinishShard implements journal.Executor: it hashes and releases a
// sharded request's merge buffer.
func (p *JournalExecutor) FinishShard(admit uint64) ([32]byte, error) {
	ms, ok := p.merges[admit]
	if !ok {
		return [32]byte{}, fmt.Errorf("fleet: merged deliver for admit %d without shard records", admit)
	}
	delete(p.merges, admit)
	switch {
	case ms.vol != nil:
		return journal.HashVolume(ms.vol), nil
	case ms.vec != nil:
		return journal.HashVector(ms.vec), nil
	default:
		return journal.HashMatrix(ms.mat), nil
	}
}

// Probe implements journal.Executor.
func (p *JournalExecutor) Probe(worker int) error {
	if worker < 0 || worker >= len(p.Units) {
		return fmt.Errorf("fleet: worker %d outside rebuilt pool of %d", worker, len(p.Units))
	}
	ProbeUnit(p.Units[worker], p.Health)
	return nil
}
