package fleet

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"albireo/internal/inference"
	"albireo/internal/tensor"
)

// Bind adapts the scheduler to the inference.Backend interface so a
// whole inference.Network can run through the fleet unchanged. The
// Backend signatures have no error returns, so a bound backend records
// the first submission failure (sticky, readable via Err) and computes
// the affected layer on the exact digital reference locally - callers
// always get shape-correct tensors, and can distinguish a clean run
// from a degraded one afterwards.
func (s *Scheduler) Bind(ctx context.Context) *BoundBackend {
	b := &BoundBackend{s: s, ctx: ctx}
	b.jseq.Store(-1)
	return b
}

// BoundBackend is a Scheduler bound to one submission context. Safe
// for concurrent use; each network run should use its own bound
// backend so Err attribution stays per-run.
type BoundBackend struct {
	s   *Scheduler
	ctx context.Context

	// jseq tracks the journal sequence number of the most recently
	// admitted layer op (-1 before any journaled admission): with one
	// bound backend per served request, it is the request's journal
	// correlation id.
	jseq atomic.Int64

	mu       sync.Mutex
	err      error
	fallback inference.Exact
}

// JournalSeq returns the journal sequence number of the most recent
// layer op admitted through this bound backend, or -1 when journaling
// is off (or nothing was admitted yet).
func (b *BoundBackend) JournalSeq() int64 { return b.jseq.Load() }

// noteSeq records a journaled admission.
func (b *BoundBackend) noteSeq(fut *Future) {
	if seq := fut.JournalSeq(); seq >= 0 {
		b.jseq.Store(seq)
	}
}

// Name implements inference.Backend.
func (b *BoundBackend) Name() string { return "fleet(" + b.s.name() + ")" }

// Conv submits the layer to the fleet and waits; on submission failure
// it falls back to the local exact reference.
func (b *BoundBackend) Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	fut := b.s.ConvAsync(b.ctx, a, w, cfg, relu)
	b.noteSeq(fut)
	out, err := fut.Volume()
	if err != nil {
		b.record(err)
		return b.fallback.Conv(a, w, cfg, relu)
	}
	return out
}

// FullyConnected submits the classifier layer to the fleet and waits;
// on submission failure it falls back to the local exact reference.
func (b *BoundBackend) FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64 {
	fut := b.s.FullyConnectedAsync(b.ctx, a, w, relu)
	b.noteSeq(fut)
	out, err := fut.Logits()
	if err != nil {
		b.record(err)
		return b.fallback.FullyConnected(a, w, relu)
	}
	return out
}

// GEMM submits the matrix product to the fleet and waits; on
// submission failure it falls back to the local exact reference.
func (b *BoundBackend) GEMM(a, w *tensor.Matrix, relu bool) *tensor.Matrix {
	fut := b.s.GEMMAsync(b.ctx, a, w, relu)
	b.noteSeq(fut)
	out, err := fut.Matrix()
	if err != nil {
		b.record(err)
		return b.fallback.GEMM(a, w, relu)
	}
	return out
}

// record keeps the first failure.
func (b *BoundBackend) record(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

// Err returns the first submission failure this bound backend hit, or
// nil if every layer ran on the fleet.
func (b *BoundBackend) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// name summarizes the pool for Backend naming. The worker snapshot is
// taken under the lock but Name() runs outside it: a backend is free
// to take its own locks (or, wrapped, come back through this
// scheduler), so calling it with s.mu held invites lock-order cycles.
func (s *Scheduler) name() string {
	s.mu.Lock()
	n := len(s.workers)
	first := s.workers[0].backend
	s.mu.Unlock()
	if n == 1 {
		return first.Name()
	}
	return first.Name() + " x" + strconv.Itoa(n)
}
