package fleet

import (
	"context"

	"albireo/internal/inference"
	"albireo/internal/nn"
	"albireo/internal/obs"
	"albireo/internal/sim"
	"albireo/internal/tensor"
)

// Sweep is the reusable load generator albireo-serve runs at startup
// (and what its historical self-sweep mode did inline): one seeded
// batch of the tiny CNN through the given backend - exercising
// device-activity counters, layer spans, and guard checks - followed
// by a dataflow simulation of MobileNet for cycle, SRAM-traffic, and
// kernel-cache-locality counters. Cancellation is honored between
// iterations: a sweep never leaves a layer half-recorded.
func Sweep(ctx context.Context, reg *obs.Registry, trace *obs.Trace, be inference.Backend, batch, size int, seed int64) error {
	net := inference.TinyCNN(3, size, seed)
	for i := 0; i < batch; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		in := tensor.RandomVolume(3, size, size, seed*1000+int64(i))
		net.Run(be, in)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p := sim.DefaultParams()
	p.Obs = reg
	p.Trace = trace
	sim.SimulateModel(p, nn.MobileNet())
	return nil
}

// Sweeps runs n consecutive sweeps with per-sweep seeds seed..seed+n-1,
// stopping early (with the context error) on cancellation.
func Sweeps(ctx context.Context, reg *obs.Registry, trace *obs.Trace, be inference.Backend, n, batch, size int, seed int64) error {
	for i := 0; i < n; i++ {
		if err := Sweep(ctx, reg, trace, be, batch, size, seed+int64(i)); err != nil {
			return err
		}
	}
	return nil
}
