package fleet_test

import (
	"context"
	"errors"
	"testing"

	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// TestSweepRecordsTelemetry checks the extracted load generator: one
// sweep populates both the inference-side and the dataflow-simulation
// counters.
func TestSweepRecordsTelemetry(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	if err := fleet.Sweep(context.Background(), reg, trace, inference.Exact{}, 1, 8, 3); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 {
		t.Fatal("sweep recorded no counters")
	}
	if trace.Len() == 0 {
		t.Fatal("sweep recorded no trace events")
	}
}

// TestSweepHonorsCancellation checks that a canceled context stops the
// sweep between iterations with the context error.
func TestSweepHonorsCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := fleet.Sweep(ctx, obs.NewRegistry(), nil, inference.Exact{}, 4, 8, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep on canceled ctx: err = %v, want context.Canceled", err)
	}
	if err := fleet.Sweeps(ctx, obs.NewRegistry(), nil, inference.Exact{}, 3, 1, 8, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweeps on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// cancelAfterBackend wraps a backend and fires cancel on the Nth
// layer call, so tests can pull the plug mid-sweep rather than before
// it. Sweeps drive the backend from one goroutine, so plain counters
// suffice.
type cancelAfterBackend struct {
	inner  inference.Backend
	after  int // fire cancel on this call number (0: never)
	calls  int
	cancel context.CancelFunc
}

func (b *cancelAfterBackend) hit() {
	b.calls++
	if b.after > 0 && b.calls == b.after {
		b.cancel()
	}
}

func (b *cancelAfterBackend) Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	b.hit()
	return b.inner.Conv(a, w, cfg, relu)
}

func (b *cancelAfterBackend) FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64 {
	b.hit()
	return b.inner.FullyConnected(a, w, relu)
}

func (b *cancelAfterBackend) GEMM(x, w *tensor.Matrix, relu bool) *tensor.Matrix {
	b.hit()
	return b.inner.GEMM(x, w, relu)
}

func (b *cancelAfterBackend) Name() string { return b.inner.Name() }

// TestSweepCanceledMidBatch cancels from inside a layer call during
// the first batch iteration: the sweep must stop at the next
// between-iteration check with the context error, before the dataflow
// simulation runs, but after the iteration in progress finishes (a
// sweep never leaves a layer half-recorded).
func TestSweepCanceledMidBatch(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	be := &cancelAfterBackend{inner: inference.Exact{}, after: 1, cancel: cancel}
	reg := obs.NewRegistry()
	err := fleet.Sweep(ctx, reg, nil, be, 4, 8, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep canceled mid-batch: err = %v, want context.Canceled", err)
	}
	if be.calls == 0 {
		t.Fatal("cancellation fired before any layer ran")
	}
	if len(reg.Snapshot().Counters) != 0 {
		t.Fatal("dataflow simulation ran despite mid-batch cancellation")
	}
}

// TestSweepsCanceledMidSequence cancels during the second sweep of a
// three-sweep sequence: Sweeps must return the context error having
// recorded exactly one sweep's telemetry - the registry matches a
// single completed sweep bit for bit.
func TestSweepsCanceledMidSequence(t *testing.T) {
	t.Parallel()
	// Measure one full sweep: its layer-call count and its registry.
	probe := &cancelAfterBackend{inner: inference.Exact{}}
	baseline := obs.NewRegistry()
	if err := fleet.Sweep(context.Background(), baseline, nil, probe, 1, 8, 3); err != nil {
		t.Fatalf("baseline Sweep: %v", err)
	}
	perSweep := probe.calls
	if perSweep == 0 {
		t.Fatal("baseline sweep drove no layer calls")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	be := &cancelAfterBackend{inner: inference.Exact{}, after: perSweep + 1, cancel: cancel}
	reg := obs.NewRegistry()
	err := fleet.Sweeps(ctx, reg, nil, be, 3, 1, 8, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweeps canceled mid-sequence: err = %v, want context.Canceled", err)
	}
	// Cancel lands inside sweep 2's first iteration; that iteration
	// finishes (layers are never cut mid-run) and then the sweep stops,
	// so at most one batch iteration of sweep 2 ran.
	if be.calls <= perSweep || be.calls > 2*perSweep {
		t.Fatalf("calls = %d, want in (%d, %d]: cancel must land inside sweep 2",
			be.calls, perSweep, 2*perSweep)
	}
	// The dataflow simulation takes no seed, so one completed sweep's
	// registry is identical to the baseline's.
	if !reg.Snapshot().Equal(baseline.Snapshot()) {
		t.Fatal("registry after mid-sequence cancel must match exactly one completed sweep")
	}
}
