package fleet_test

import (
	"context"
	"errors"
	"testing"

	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/obs"
)

// TestSweepRecordsTelemetry checks the extracted load generator: one
// sweep populates both the inference-side and the dataflow-simulation
// counters.
func TestSweepRecordsTelemetry(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	if err := fleet.Sweep(context.Background(), reg, trace, inference.Exact{}, 1, 8, 3); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 {
		t.Fatal("sweep recorded no counters")
	}
	if trace.Len() == 0 {
		t.Fatal("sweep recorded no trace events")
	}
}

// TestSweepHonorsCancellation checks that a canceled context stops the
// sweep between iterations with the context error.
func TestSweepHonorsCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := fleet.Sweep(ctx, obs.NewRegistry(), nil, inference.Exact{}, 4, 8, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep on canceled ctx: err = %v, want context.Canceled", err)
	}
	if err := fleet.Sweeps(ctx, obs.NewRegistry(), nil, inference.Exact{}, 3, 1, 8, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweeps on canceled ctx: err = %v, want context.Canceled", err)
	}
}
