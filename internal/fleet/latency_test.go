package fleet_test

import (
	"context"
	"errors"
	"testing"

	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// exactUnit builds a chipless pool member on the digital reference
// backend: fast, deterministic, never probed.
func exactUnit() fleet.Unit { return fleet.Unit{Backend: inference.Exact{}} }

// smallConv returns a tiny conv input/weight pair for latency tests,
// seeded so coalescing behavior is scripted, not incidental.
func smallConv(seed int64) (*tensor.Volume, *tensor.Kernels, tensor.ConvConfig) {
	in := tensor.RandomVolume(1, 4, 4, seed)
	w := tensor.RandomKernels(1, 1, 3, 3, 9)
	return in, w, tensor.ConvConfig{Stride: 1, Pad: 1}
}

// driveVirtual runs a scripted open-loop trace against a virtual-time
// scheduler: perTick[i] requests are submitted before tick i, then the
// scheduler ticks until every admitted slot releases. It returns the
// issued futures (admission failures included) and the drained
// scheduler still open for inspection.
func driveVirtual(t *testing.T, s *fleet.Scheduler, perTick []int) []*fleet.Future {
	t.Helper()
	var futures []*fleet.Future
	ctx := context.Background()
	in, w, cfg := smallConv(3)
	for _, n := range perTick {
		for i := 0; i < n; i++ {
			futures = append(futures, s.ConvAsync(ctx, in, w, cfg, true))
		}
		s.Tick()
	}
	for i := 0; s.InFlight() > 0; i++ {
		if i > 10000 {
			t.Fatalf("drain did not converge: %d still in flight", s.InFlight())
		}
		s.Tick()
	}
	return futures
}

// TestLatencyStagesReconcile is the decomposition invariant: in
// virtual-time mode every request's end-to-end latency equals
// linger + queue wait + execute + delivery exactly - per request via
// Stages, and histogram-sum by histogram-sum with zero tolerance.
func TestLatencyStagesReconcile(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	s, err := fleet.New(fleet.Options{
		MaxBatch:    4,
		MaxLinger:   2,
		QueueDepth:  32,
		VirtualTime: true,
	}, exactUnit(), exactUnit())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(reg, nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// A burst past the batching point, a quiet stretch, a second burst:
	// exercises coalesced batches, lingered partials, and queue wait.
	futures := driveVirtual(t, s, []int{5, 3, 0, 0, 7, 1, 0, 0, 0, 0})

	finalized := 0
	for i, f := range futures {
		if _, err := f.Volume(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		st, ok := f.Stages()
		if !ok {
			t.Fatalf("future %d: stages not final after drain", i)
		}
		sum := st.Linger() + st.QueueWait() + st.Execute() + st.Delivery()
		if st.EndToEnd() != sum {
			t.Fatalf("future %d: e2e %d != stage sum %d (%+v)", i, st.EndToEnd(), sum, st)
		}
		if st.Linger() < 0 || st.QueueWait() < 0 || st.Execute() <= 0 || st.Delivery() < 0 {
			t.Fatalf("future %d: negative or empty stage in %+v", i, st)
		}
		finalized++
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap := reg.Snapshot()
	e2e := snap.Histograms[fleet.MetricLatencyE2E]
	parts := []obs.HistogramSnapshot{
		snap.Histograms[fleet.MetricLatencyLinger],
		snap.Histograms[fleet.MetricLatencyQueueWait],
		snap.Histograms[fleet.MetricLatencyExecute],
		snap.Histograms[fleet.MetricLatencyDelivery],
	}
	if e2e.Count != int64(finalized) {
		t.Fatalf("e2e count = %d, want %d", e2e.Count, finalized)
	}
	var partSum float64
	for i, p := range parts {
		if p.Count != e2e.Count {
			t.Fatalf("stage %d count = %d, want %d", i, p.Count, e2e.Count)
		}
		partSum += p.Sum
	}
	// Integer tick values are exact in float64, so the reconciliation
	// tolerance is zero.
	if e2e.Sum != partSum {
		t.Fatalf("e2e sum %g != stage sums %g", e2e.Sum, partSum)
	}
	if e2e.Sum <= 0 {
		t.Fatal("latency histograms recorded nothing")
	}
}

// TestVirtualTimeDeterministic re-runs the same scripted trace and
// requires bit-identical registry snapshots - the property the
// load-harness baseline gate stands on.
func TestVirtualTimeDeterministic(t *testing.T) {
	t.Parallel()
	run := func() obs.Snapshot {
		reg := obs.NewRegistry()
		s, err := fleet.New(fleet.Options{
			MaxBatch:    4,
			MaxLinger:   1,
			QueueDepth:  8,
			VirtualTime: true,
		}, exactUnit(), exactUnit())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		s.Instrument(reg, nil)
		if err := s.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		futures := driveVirtual(t, s, []int{6, 6, 6, 0, 2, 0, 0})
		for _, f := range futures {
			_, _ = f.Volume() // sheds expected past QueueDepth
		}
		if err := s.Close(context.Background()); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return reg.Snapshot()
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatalf("virtual-time snapshots differ:\n%v\nvs\n%v", a, b)
	}
	if a.Counters[fleet.MetricShed] == 0 {
		t.Fatal("trace was meant to push past the shedding point")
	}
}

// TestShedCountersReconcile floods a tiny admission queue and checks
// the counter algebra: issued = admitted + shed, and every admitted
// request is accounted for as completed or canceled, leaving depth 0.
func TestShedCountersReconcile(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	s, err := fleet.New(fleet.Options{
		MaxBatch:    2,
		MaxLinger:   0,
		QueueDepth:  4,
		VirtualTime: true,
	}, exactUnit())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(reg, nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in, w, cfg := smallConv(5)
	const issued = 10
	var futures []*fleet.Future
	sheds := 0
	for i := 0; i < issued; i++ {
		futures = append(futures, s.ConvAsync(ctx, in, w, cfg, false))
	}
	for _, f := range futures {
		if _, err := f.Volume(); errors.Is(err, fleet.ErrOverloaded) {
			sheds++
		}
	}
	for i := 0; s.InFlight() > 0; i++ {
		if i > 1000 {
			t.Fatalf("drain did not converge: %d in flight", s.InFlight())
		}
		s.Tick()
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap := reg.Snapshot()
	admitted := snap.Counters[fleet.MetricAdmitted]
	shed := snap.Counters[fleet.MetricShed]
	completed := snap.SumCounters(fleet.MetricCompleted)
	canceled := snap.Counters[fleet.MetricCanceled]
	if admitted+shed != issued {
		t.Fatalf("admitted %d + shed %d != issued %d", admitted, shed, issued)
	}
	if int64(sheds) != shed {
		t.Fatalf("ErrOverloaded futures %d != shed counter %d", sheds, shed)
	}
	if shed == 0 {
		t.Fatal("flood was meant to shed")
	}
	if completed+canceled != admitted {
		t.Fatalf("completed %d + canceled %d != admitted %d", completed, canceled, admitted)
	}
	if depth := snap.Gauges[fleet.MetricQueueDepth]; depth != 0 {
		t.Fatalf("queue depth after drain = %g, want 0", depth)
	}
}

// TestStagesWallMode checks the decomposition in wall-time mode: the
// stamps finalize at delivery and still sum exactly, with execution
// collapsed onto the delivering tick.
func TestStagesWallMode(t *testing.T) {
	t.Parallel()
	s, err := fleet.New(fleet.Options{MaxLinger: 0, QueueDepth: 8}, exactUnit())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in, w, cfg := smallConv(7)
	f := s.ConvAsync(ctx, in, w, cfg, true)
	if _, err := f.Volume(); err != nil {
		t.Fatalf("Volume: %v", err)
	}
	st, ok := f.Stages()
	if !ok {
		t.Fatal("stages not final after delivery")
	}
	sum := st.Linger() + st.QueueWait() + st.Execute() + st.Delivery()
	if st.EndToEnd() != sum {
		t.Fatalf("e2e %d != stage sum %d (%+v)", st.EndToEnd(), sum, st)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestStagesNotFinalOnAdmissionFailure checks that shed and
// pre-canceled submissions never report stage stamps.
func TestStagesNotFinalOnAdmissionFailure(t *testing.T) {
	t.Parallel()
	s, err := fleet.New(fleet.Options{QueueDepth: 8}, exactUnit())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	in, w, cfg := smallConv(11)
	f := s.ConvAsync(canceled, in, w, cfg, false)
	if _, ok := f.Stages(); ok {
		t.Fatal("stages must not finalize for a pre-canceled submission")
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
