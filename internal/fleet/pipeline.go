package fleet

import (
	"context"
	"errors"
	"fmt"

	"albireo/internal/inference"
	"albireo/internal/journal"
	"albireo/internal/tensor"
)

// ErrPipelineVirtual rejects pipelines on a virtual-time scheduler:
// stage chaining is wall-clock execution, and mixing it with the
// ledger would book stages the ledger never observes.
var ErrPipelineVirtual = errors.New("fleet: pipelines require a wall-time scheduler")

// Value is a pipeline stage payload: exactly one of Vol, Vec, or Mat
// is set, matching what the previous stage produced.
type Value struct {
	Vol *tensor.Volume
	Vec []float64
	Mat *tensor.Matrix
}

// StageKind types one pipeline stage.
type StageKind int

const (
	// StageConv is an analog convolution layer (dense, grouped,
	// depthwise, or pointwise - whatever the worker backend maps).
	StageConv StageKind = iota
	// StageFC is an analog fully-connected layer producing logits.
	StageFC
	// StageGEMM is an analog GEMM against a fixed right operand.
	StageGEMM
	// StageDigital is a host-side transform (pooling, reshaping)
	// executed inline between analog stages.
	StageDigital
)

// Stage describes one layer of a cross-layer pipeline.
type Stage struct {
	// Kind selects the stage form.
	Kind StageKind
	// W holds the conv kernels (StageConv) or FC weights (StageFC).
	W *tensor.Kernels
	// Cfg is the convolution geometry (StageConv only).
	Cfg tensor.ConvConfig
	// ReLU applies the activation on analog stages.
	ReLU bool
	// B is the programmed right operand (StageGEMM only). Keeping it
	// fixed per stage is what makes the worker's weight-program cache
	// hit on every inference.
	B *tensor.Matrix
	// Fn is the host transform (StageDigital only).
	Fn func(Value) (Value, error)
}

// Pipeline streams consecutive network layers through different
// workers: each analog stage is pinned to a home worker at build
// time, so while inference k occupies the stage-1 chip, inference k+1
// runs stage 0 on a different chip - cross-layer pipelining in the
// multi-chip fleet. Every stage keeps its weights resident in its
// home worker's weight-program cache, paying the programming cost
// once across the whole stream instead of once per layer crossing.
//
// A Pipeline is safe for concurrent Infer calls; overlap across
// in-flight inferences is where the throughput win comes from.
// Pinning is a routing hint, not a correctness requirement: if a home
// worker drains, its stage falls back to the general routing policy
// and the stream continues on the surviving pool.
type Pipeline struct {
	s      *Scheduler
	stages []Stage
	aff    []int
}

// NewPipeline builds a pipeline over the scheduler's in-service pool,
// assigning analog stages to workers round-robin in stage order.
func (s *Scheduler) NewPipeline(stages []Stage) (*Pipeline, error) {
	if s.opt.VirtualTime {
		return nil, ErrPipelineVirtual
	}
	if len(stages) == 0 {
		return nil, errors.New("fleet: empty pipeline")
	}
	for i, st := range stages {
		switch st.Kind {
		case StageConv, StageFC:
			if st.W == nil {
				return nil, fmt.Errorf("fleet: pipeline stage %d: missing weights", i)
			}
		case StageGEMM:
			if st.B == nil {
				return nil, fmt.Errorf("fleet: pipeline stage %d: missing GEMM operand", i)
			}
		case StageDigital:
			if st.Fn == nil {
				return nil, fmt.Errorf("fleet: pipeline stage %d: missing digital fn", i)
			}
		default:
			return nil, fmt.Errorf("fleet: pipeline stage %d: unknown kind %d", i, st.Kind)
		}
	}
	s.mu.Lock()
	var ids []int
	for _, w := range s.workers {
		if w.inService && w.weight > 0 {
			ids = append(ids, w.id)
		}
	}
	s.mu.Unlock()
	if len(ids) == 0 {
		return nil, errors.New("fleet: no worker in service")
	}
	aff := make([]int, len(stages))
	k := 0
	for i, st := range stages {
		if st.Kind == StageDigital {
			aff[i] = -1
			continue
		}
		aff[i] = ids[k%len(ids)]
		k++
	}
	return &Pipeline{s: s, stages: stages, aff: aff}, nil
}

// Homes returns each stage's home worker id (-1 for digital stages).
func (p *Pipeline) Homes() []int {
	out := make([]int, len(p.aff))
	copy(out, p.aff)
	return out
}

// Infer runs one input through the pipeline, stage by stage. Each
// analog stage submits a pinned request to its home worker and waits
// for it before entering the next stage, so a single inference is
// sequential; concurrent Infer calls overlap stage-wise across the
// pool.
func (p *Pipeline) Infer(ctx context.Context, in Value) (Value, error) {
	v := in
	for i, st := range p.stages {
		var err error
		switch st.Kind {
		case StageDigital:
			if v, err = st.Fn(v); err != nil {
				return Value{}, fmt.Errorf("fleet: pipeline stage %d: %w", i, err)
			}
		case StageConv:
			if v.Vol == nil {
				return Value{}, fmt.Errorf("fleet: pipeline stage %d: conv needs a volume input", i)
			}
			fut := p.s.submit(ctx, &request{
				a: v.Vol, w: st.W, cfg: st.Cfg, relu: st.ReLU,
				ctx: ctx, pinned: true, aff: p.aff[i],
			})
			vol, err := fut.Volume()
			if err != nil {
				return Value{}, fmt.Errorf("fleet: pipeline stage %d: %w", i, err)
			}
			v = Value{Vol: vol}
		case StageFC:
			if v.Vol == nil {
				return Value{}, fmt.Errorf("fleet: pipeline stage %d: fc needs a volume input", i)
			}
			fut := p.s.submit(ctx, &request{
				fc: true, a: v.Vol, w: st.W, relu: st.ReLU,
				ctx: ctx, pinned: true, aff: p.aff[i],
			})
			vec, err := fut.Logits()
			if err != nil {
				return Value{}, fmt.Errorf("fleet: pipeline stage %d: %w", i, err)
			}
			v = Value{Vec: vec}
		case StageGEMM:
			if v.Mat == nil {
				return Value{}, fmt.Errorf("fleet: pipeline stage %d: gemm needs a matrix input", i)
			}
			fut := p.s.submit(ctx, &request{
				tag: journal.OpGEMM, ma: v.Mat, mb: st.B, relu: st.ReLU,
				ctx: ctx, pinned: true, aff: p.aff[i],
			})
			mat, err := fut.Matrix()
			if err != nil {
				return Value{}, fmt.Errorf("fleet: pipeline stage %d: %w", i, err)
			}
			v = Value{Mat: mat}
		}
	}
	return v, nil
}

// PipelineFromNetwork stages an inference network: conv layers become
// analog stages, pooling becomes digital stages, and the classifier
// (when present) a final FC stage. Residual blocks do not stage -
// their branches re-join, which a linear pipeline cannot express -
// and return an error; run those networks whole.
func (s *Scheduler) PipelineFromNetwork(n *inference.Network) (*Pipeline, error) {
	stages := make([]Stage, 0, len(n.Ops)+1)
	for i, op := range n.Ops {
		switch o := op.(type) {
		case inference.ConvOp:
			stages = append(stages, Stage{Kind: StageConv, W: o.Kernels, Cfg: o.Cfg, ReLU: o.ReLU})
		case inference.PoolOp:
			stages = append(stages, Stage{Kind: StageDigital, Fn: func(v Value) (Value, error) {
				if v.Vol == nil {
					return Value{}, errors.New("pool needs a volume input")
				}
				if o.Max {
					return Value{Vol: tensor.MaxPool(v.Vol, o.Window, o.Stride)}, nil
				}
				return Value{Vol: tensor.AvgPool(v.Vol, o.Window, o.Stride)}, nil
			}})
		default:
			return nil, fmt.Errorf("fleet: network op %d (%T) cannot stage in a linear pipeline", i, op)
		}
	}
	if n.Classifier != nil {
		stages = append(stages, Stage{Kind: StageFC, W: n.Classifier})
	}
	return s.NewPipeline(stages)
}
