package fleet

import (
	"context"
	"math"
	"sync"

	"albireo/internal/core"
	"albireo/internal/journal"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// ShardBackend is the kernel-group execution interface a chipless
// backend can implement to join shard fan-outs. Each call executes
// only the kernels (or output columns) the shard window owns and
// writes them into the caller-allocated full-size output; windows of
// one request are disjoint, so concurrent shard calls against the
// same output never race.
type ShardBackend interface {
	ConvShard(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool, shard core.ShardSpec, out *tensor.Volume)
	FullyConnectedShard(a *tensor.Volume, w *tensor.Kernels, relu bool, shard core.ShardSpec, out []float64)
	GEMMShard(a, b *tensor.Matrix, relu bool, shard core.ShardSpec, out *tensor.Matrix)
}

// shardParent is the merge state of one sharded request: the
// pre-allocated full-size output its sub-requests fill in disjoint
// slices, and the barrier bookkeeping that decides which sub is last.
// The output buffers are written lock-free (windows are disjoint);
// the mutex orders the countdown, so the last sub's read of the
// merged output happens after every other sub's writes.
type shardParent struct {
	req  *request
	subs []*request

	vol *tensor.Volume
	vec []float64
	mat *tensor.Matrix

	mu        sync.Mutex
	remaining int   // subs not yet executed (wall-side barrier)
	minStart  int64 // min wall-mode ExecStart across executed subs
	// Virtual-time mode settles sub-requests on the ledger, not at
	// execution, so it keeps its own countdown and stamp bounds.
	vremaining int
	vMinStart  int64
	vMaxEnd    int64
	failed     bool // parent already delivered an error (Close)
}

// result assembles the merged output.
func (sp *shardParent) result() result {
	switch {
	case sp.vol != nil:
		return result{vol: sp.vol}
	case sp.vec != nil:
		return result{vec: sp.vec}
	default:
		return result{mat: sp.mat}
	}
}

// subDone records one executed sub and reports whether it was the
// last (and the min execution-start stamp, for the parent's wall-mode
// decomposition).
func (sp *shardParent) subDone(start int64) (last bool, minStart int64) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if start < sp.minStart {
		sp.minStart = start
	}
	sp.remaining--
	return sp.remaining == 0 && !sp.failed, sp.minStart
}

// shardEligibleLocked returns the fan-out placement set - the
// in-service, positively weighted, shard-capable workers - when the
// request can shard, or nil. Depthwise and grouped convolutions keep
// the whole-request path: their kernel-to-channel coupling does not
// split at the output-kernel boundary.
func (s *Scheduler) shardEligibleLocked(req *request) []*worker {
	if !req.tag.GEMMFamily() && !req.fc {
		if req.cfg.Depthwise || (req.cfg.Groups != 0 && req.cfg.Groups != 1) {
			return nil
		}
	}
	var parts []*worker
	for _, w := range s.workers {
		if w.inService && w.weight > 0 && w.shardCapable {
			parts = append(parts, w)
		}
	}
	if len(parts) < 2 {
		return nil
	}
	return parts
}

// tryShardLocked fans one admitted request out into kernel-group
// sub-requests: the output kernels split into residue-class windows
// at the active-group boundary, placement apportions windows to the
// routing weights (a degraded worker gets fewer kernel groups, never
// zero; a drained worker gets none by exclusion), and each sub enters
// the pending machinery pinned to its worker. Returns (future, true)
// when the fan-out was taken; (nil, false) falls through to the
// whole-request path. Called with the scheduler mutex held, after
// admission: the parent keeps the single admission slot.
func (s *Scheduler) tryShardLocked(req *request) (*Future, bool) {
	parts := s.shardEligibleLocked(req)
	if parts == nil {
		return nil, false
	}
	var of int64
	weights := make([]int64, len(parts))
	for i, w := range parts {
		weights[i] = w.weight
		if w.shardGroups > of {
			of = w.shardGroups
		}
	}
	if of < 1 {
		return nil, false
	}
	windows := core.PartitionShards(int(of), weights)
	// Fewer residue classes than workers can leave zero-count windows;
	// a fan-out needs at least two real subs to beat the whole path.
	placed := parts[:0]
	wins := windows[:0]
	for i, w := range parts {
		if windows[i].Count > 0 {
			placed = append(placed, w)
			wins = append(wins, windows[i])
		}
	}
	if len(placed) < 2 {
		return nil, false
	}
	sp := &shardParent{req: req, minStart: math.MaxInt64, vMinStart: math.MaxInt64}
	sp.allocMerge(req)
	// The parent carries sp too (ShardStages, Close-time failure); it
	// is never enqueued or ledger-booked itself, so the sub-only paths
	// that test req.sp never see it.
	req.sp = sp
	// The fan-out decision is the parent's dispatch point: it never
	// lingers, its subs do.
	req.st.Dispatch = req.st.Arrive
	for i, w := range placed {
		win := wins[i]
		sub := &request{
			fc: req.fc, a: req.a, w: req.w, cfg: req.cfg, relu: req.relu,
			tag: req.tag, ma: req.ma, mb: req.mb,
			// Background context: a sub never skips execution on the
			// caller's cancellation (see runOne) and never waits.
			ctx:   context.Background(),
			jseq:  -1,
			shard: win,
			sp:    sp,
		}
		sub.st.Arrive = req.st.Arrive
		sp.subs = append(sp.subs, sub)
		key := batchKey{fc: req.fc, w: req.w, cfg: req.cfg, relu: req.relu,
			tag: req.tag, mb: req.mb, shard: win, aff: w.id}
		pb := s.byKey[key]
		if pb == nil {
			pb = &pendingBatch{key: key}
			s.byKey[key] = pb
			s.pending = append(s.pending, pb)
		}
		pb.reqs = append(pb.reqs, sub)
	}
	sp.remaining = len(sp.subs)
	sp.vremaining = len(sp.subs)
	s.shardFanouts.Inc()
	if s.trace != nil {
		s.span.Event(obs.RequestSharded, opName(req),
			obs.Int("subs", int64(len(sp.subs))),
			obs.Int("of", of),
			obs.Int("journal_seq", req.jseq))
	}
	s.flushLocked(false)
	return &Future{req: req}, true
}

// allocMerge pre-allocates the full-size merged output.
func (sp *shardParent) allocMerge(req *request) {
	switch {
	case req.tag.GEMMFamily():
		sp.mat = tensor.NewMatrix(req.ma.R, req.mb.C)
	case req.fc:
		sp.vec = make([]float64, req.w.M)
	default:
		stride := req.cfg.Stride
		if stride == 0 {
			stride = 1
		}
		by := tensor.ConvOutputDim(req.a.Y, req.w.Y, req.cfg.Pad, stride)
		bx := tensor.ConvOutputDim(req.a.X, req.w.X, req.cfg.Pad, stride)
		sp.vol = tensor.NewVolume(req.w.M, by, bx)
	}
}

// runShard executes one kernel-group sub-request on its worker and,
// when it completes the merge, delivers the parent. The KindShard
// record is emitted here on the worker goroutine - not at dispatch -
// so the journal order of one worker's records (shards and delivers
// alike) is that worker's execution order, the property replay needs
// to reproduce per-chip noise and drift state.
func (s *Scheduler) runShard(w *worker, req *request) int {
	sp := req.sp
	pjseq := sp.req.jseq
	if j := s.opt.Journal; j != nil && pjseq >= 0 {
		j.Record(journal.KindShard, journal.EncodeShard(journal.ShardRec{
			Admit:  uint64(pjseq),
			Worker: int64(w.id),
			Pos:    int64(req.shard.Pos),
			Count:  int64(req.shard.Count),
			Of:     int64(req.shard.Of),
		}))
	}
	start := s.ticks.Load()
	if !s.opt.VirtualTime {
		req.st.ExecStart = start
	}
	w.execShard(req, sp)
	w.requests.Inc()
	s.shardSubs.Inc()
	if !s.opt.VirtualTime {
		end := s.ticks.Load()
		req.st.ExecEnd = end
		req.st.Deliver = end
		req.final.Store(true)
	}
	last, minStart := sp.subDone(start)
	if !last {
		return 1
	}
	s.completed.Inc()
	res := sp.result()
	// The merged deliver pins the union's output bits under worker -1:
	// no single worker produced them, and replay recomputes the hash
	// from its own merge buffer.
	if j := s.opt.Journal; j != nil && pjseq >= 0 {
		j.Record(journal.KindDeliver, journal.EncodeDeliver(journal.Deliver{
			Admit:  uint64(pjseq),
			Worker: -1,
			Hash:   resultHash(sp.req, res),
		}))
	}
	if !s.opt.VirtualTime {
		end := s.ticks.Load()
		p := sp.req
		p.st.ExecStart = minStart
		p.st.ExecEnd = end
		p.st.Deliver = end
		p.final.Store(true)
		s.recordStages(p.st)
		if s.trace != nil && s.opt.Journal != nil {
			s.span.Event(obs.RequestCompleted, opName(p),
				obs.Int("worker", -1),
				obs.Int("journal_seq", p.jseq))
		}
	}
	s.deliver(sp.req, res)
	if !s.opt.VirtualTime {
		s.releaseSlot()
	}
	return 1
}

// execShard runs one shard window, preferring the chip (the replayed
// path) over a ShardBackend.
func (w *worker) execShard(req *request, sp *shardParent) {
	if w.chip != nil {
		switch {
		case req.tag.GEMMFamily():
			w.chip.GEMMShard(req.ma, req.mb, req.relu, req.shard, sp.mat)
		case req.fc:
			w.chip.FullyConnectedShard(req.a, req.w, req.relu, req.shard, sp.vec)
		default:
			w.chip.ConvShard(req.a, req.w, req.cfg, req.relu, req.shard, sp.vol)
		}
		return
	}
	switch {
	case req.tag.GEMMFamily():
		w.sb.GEMMShard(req.ma, req.mb, req.relu, req.shard, sp.mat)
	case req.fc:
		w.sb.FullyConnectedShard(req.a, req.w, req.relu, req.shard, sp.vec)
	default:
		w.sb.ConvShard(req.a, req.w, req.cfg, req.relu, req.shard, sp.vol)
	}
}

// failShard fails a sharded request's parent exactly once: delivery
// and the slot release happen here, and any subs still executing find
// failed set and never deliver.
func (s *Scheduler) failShard(sp *shardParent, err error) {
	sp.mu.Lock()
	if sp.failed {
		sp.mu.Unlock()
		return
	}
	sp.failed = true
	sp.mu.Unlock()
	s.deliver(sp.req, result{err: err})
	s.releaseSlot()
}

// ShardStages returns the per-shard stage decompositions of a sharded
// request, in placement order (ascending worker id at fan-out time).
// ok is false for unsharded requests or before the merged result
// finalizes; the parent's own Stages aggregate the merge (ExecStart
// is the earliest sub start, ExecEnd the last sub end).
func (f *Future) ShardStages() ([]StageTicks, bool) {
	if f.err != nil || f.req == nil || f.req.sp == nil || !f.req.final.Load() {
		return nil, false
	}
	sp := f.req.sp
	out := make([]StageTicks, 0, len(sp.subs))
	for _, sub := range sp.subs {
		if !sub.final.Load() {
			return nil, false
		}
		out = append(out, sub.st)
	}
	return out, true
}
