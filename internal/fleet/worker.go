package fleet

import (
	"strconv"

	"albireo/internal/core"
	"albireo/internal/health"
	"albireo/internal/inference"
	"albireo/internal/journal"
	"albireo/internal/obs"
)

// workItem is one unit of work on a worker queue: a batch of requests
// to execute, a single directly dispatched request (the no-linger fast
// path, which skips the batch slice), or a BIST re-probe.
type workItem struct {
	batch  []*request
	single *request
	probe  bool
}

// worker is one pool member plus its routing state. Routing state
// (inService, weight, assigned, probePending) is guarded by the
// scheduler mutex; the goroutine owns backend execution.
type worker struct {
	id      int
	backend inference.Backend
	chip    *core.Chip
	eng     *health.Engine
	queue   chan workItem

	// sb is the backend's shard interface when it implements one;
	// shardCapable marks the worker eligible for kernel-group
	// sub-requests (chip-backed, or sb non-nil). Chip-backed workers
	// execute shards on the chip directly - bypassing the guard and
	// observe wrappers - so replay can reproduce the same noise stream
	// by driving the rebuilt chip the same way.
	sb           ShardBackend
	shardCapable bool

	inService    bool
	weight       int64 // healthy PLCU count (1 for chipless workers)
	assigned     int64 // batches routed here, for deficit round-robin
	vBusyUntil   int64 // virtual-time tick the worker is booked until
	shardGroups  int64 // cached chip.ActiveGroups() (Ng for chipless)
	probePending bool
	degraded     bool // cached chip.Degraded(); the chip itself is
	// only touched by its owning goroutine
	report health.Report

	batches    *obs.Counter
	requests   *obs.Counter
	inServiceG *obs.Gauge
	weightG    *obs.Gauge
}

// instrument resolves the worker's per-id instruments.
func (w *worker) instrument(reg *obs.Registry, trace *obs.Trace) {
	label := obs.L("worker", strconv.Itoa(w.id))
	w.batches = reg.Counter(MetricBatches, label)
	w.requests = reg.Counter(MetricRequests, label)
	w.inServiceG = reg.Gauge(MetricWorkerInService, label)
	w.weightG = reg.Gauge(MetricWorkerWeight, label)
	if w.eng != nil {
		w.eng.Instrument(reg, trace)
	}
}

// syncGauges publishes the worker's routing state.
func (w *worker) syncGauges() {
	v := 0.0
	if w.inService {
		v = 1
	}
	w.inServiceG.Set(v)
	w.weightG.Set(float64(w.weight))
}

// healthyUnits counts the PLCUs still in service on the worker's chip.
func (w *worker) healthyUnits() int64 {
	if w.chip == nil {
		return 1
	}
	cfg := w.chip.Config()
	return int64(cfg.Ng*cfg.Nu - len(w.chip.Quarantined()))
}

// run executes one request on the worker's backend.
func (w *worker) run(req *request) result {
	if req.tag.GEMMFamily() {
		return result{mat: w.backend.GEMM(req.ma, req.mb, req.relu)}
	}
	if req.fc {
		return result{vec: w.backend.FullyConnected(req.a, req.w, req.relu)}
	}
	return result{vol: w.backend.Conv(req.a, req.w, req.cfg, req.relu)}
}

// serveWorker is the worker goroutine: it drains the queue until Close
// closes it, executing batches and probes in dispatch order.
func (s *Scheduler) serveWorker(w *worker) {
	defer s.wg.Done()
	for item := range w.queue {
		switch {
		case item.probe:
			s.runProbe(w)
		case item.single != nil:
			s.runSingle(w, item.single)
		default:
			s.runBatch(w, item.batch)
		}
	}
}

// runBatch executes a dispatched batch request by request. Requests
// whose context ended while queued are skipped and delivered their
// context error; the rest run back to back on the backend - the
// amortization the batchKey compatibility rule exists to enable.
func (s *Scheduler) runBatch(w *worker, batch []*request) {
	if s.trace == nil {
		for _, req := range batch {
			s.runOne(w, req)
		}
		return
	}
	sp := s.span.StartSpan("fleet/execute",
		obs.Int("worker", int64(w.id)),
		obs.Int("size", int64(len(batch))))
	executed := 0
	for _, req := range batch {
		executed += s.runOne(w, req)
	}
	sp.End(obs.Int("executed", int64(executed)))
}

// runSingle executes a directly dispatched request. The instrumented
// path wraps it in a one-element batch so execute spans keep a single
// shape; uninstrumented, the wrapper slice is skipped too.
func (s *Scheduler) runSingle(w *worker, req *request) {
	if s.trace == nil {
		s.runOne(w, req)
		return
	}
	s.runBatch(w, []*request{req})
}

// runOne executes one request and delivers its result, entirely
// lock-free: the counters are atomic and in wall-time mode the worker
// releases the queue slot without the scheduler mutex, so workers
// never serialize on completing work. In VirtualTime mode the stage
// stamps and the slot release belong to the ledger, so the worker only
// executes and delivers. Returns 1 if the backend ran the request, 0
// if it was skipped as canceled.
func (s *Scheduler) runOne(w *worker, req *request) int {
	// Kernel-group sub-requests take the shard path: no cancellation
	// check (a partially executed merge would leave the chips' noise
	// state trace-dependent on wall timing; the parent's Future handles
	// the caller's context) and no per-sub delivery.
	if req.sp != nil {
		return s.runShard(w, req)
	}
	if err := req.ctx.Err(); err != nil {
		s.canceled.Inc()
		if j := s.opt.Journal; j != nil && req.jseq >= 0 {
			j.Record(journal.KindCancel, journal.EncodeCancel(journal.Cancel{Admit: uint64(req.jseq)}))
		}
		s.deliver(req, result{err: err})
		if !s.opt.VirtualTime {
			s.releaseSlot()
		}
		return 0
	}
	if !s.opt.VirtualTime {
		req.st.ExecStart = s.ticks.Load()
	}
	res := w.run(req)
	w.requests.Inc()
	s.completed.Inc()
	// The deliver record pins which worker produced which output bits:
	// hashing the output is the only journal work on the execution
	// path, and it happens only when this request was journaled.
	if j := s.opt.Journal; j != nil && req.jseq >= 0 {
		j.Record(journal.KindDeliver, journal.EncodeDeliver(journal.Deliver{
			Admit:  uint64(req.jseq),
			Worker: int64(w.id),
			Hash:   resultHash(req, res),
		}))
	}
	if !s.opt.VirtualTime {
		end := s.ticks.Load()
		req.st.ExecEnd = end
		req.st.Deliver = end
		req.final.Store(true)
		s.recordStages(req.st)
		if s.trace != nil && s.opt.Journal != nil {
			s.span.Event(obs.RequestCompleted, opName(req),
				obs.Int("worker", int64(w.id)),
				obs.Int("journal_seq", req.jseq))
		}
	}
	s.deliver(req, res)
	if !s.opt.VirtualTime {
		s.releaseSlot()
	}
	return 1
}

// resultHash digests a delivered result's canonical output encoding.
func resultHash(req *request, res result) [32]byte {
	if req.tag.GEMMFamily() {
		return journal.HashMatrix(res.mat)
	}
	if req.fc {
		return journal.HashVector(res.vec)
	}
	return journal.HashVolume(res.vol)
}

// runProbe re-scans a drained worker's chip and applies the verdict.
// Quarantine is cleared first so the scan sees every unit: a fault
// that has decayed away (thermal drift settling) is re-admitted, a
// persistent one is re-quarantined by applyReportLocked.
func (s *Scheduler) runProbe(w *worker) {
	w.chip.ClearQuarantine()
	rep := w.eng.Scan()
	s.mu.Lock()
	w.probePending = false
	s.applyReportLocked(w, rep, true)
	// A restored worker may unblock batches stranded with no route.
	s.flushLocked(false)
	s.mu.Unlock()
}

// applyReportLocked turns a BIST report into a routing decision:
// healthy workers serve at full weight; faulty units are quarantined
// on the chip, and the worker is drained unless KeepDegraded keeps it
// serving at reduced weight. Transitions emit drain/restore events
// and journal records; probe distinguishes a runtime re-probe scan
// (which replay must re-execute to reproduce chip state) from the
// startup scan (which replay performs unconditionally).
func (s *Scheduler) applyReportLocked(w *worker, rep health.Report, probe bool) {
	w.report = rep
	wasInService := w.inService
	inService := true
	if !rep.Healthy() {
		if _, err := w.eng.QuarantineFindings(rep); err != nil || !s.opt.KeepDegraded {
			inService = false
		}
	}
	w.weight = w.healthyUnits()
	if w.weight <= 0 {
		inService = false
	}
	w.inService = inService
	w.degraded = w.chip != nil && w.chip.Degraded()
	if w.chip != nil {
		// Safe chip access: Start scans before the goroutines launch and
		// runProbe runs on the owning goroutine (same rule as Degraded).
		w.shardGroups = int64(w.chip.ActiveGroups())
	}
	switch {
	case wasInService && !inService:
		s.drains.Inc()
		s.journalTransition(journal.KindDrain, w, len(rep.Findings), probe)
		s.span.Event(obs.WorkerDrained, "worker "+strconv.Itoa(w.id),
			obs.Int("worker", int64(w.id)),
			obs.Int("findings", int64(len(rep.Findings))))
	case !wasInService && inService && s.started:
		s.restores.Inc()
		s.journalTransition(journal.KindRestore, w, 0, probe)
		s.span.Event(obs.WorkerRestored, "worker "+strconv.Itoa(w.id),
			obs.Int("worker", int64(w.id)))
		// Rejoin at the pool's current backlog level so the fresh
		// worker is not flooded with every subsequent batch.
		w.assigned = s.maxAssignedLocked()
	}
	w.syncGauges()
}

// journalTransition records one drain/restore on the journal.
func (s *Scheduler) journalTransition(kind journal.Kind, w *worker, findings int, probe bool) {
	if j := s.opt.Journal; j != nil {
		j.Record(kind, journal.EncodeTransition(journal.Transition{
			Worker:   int64(w.id),
			Findings: int64(findings),
			Probe:    probe,
		}))
	}
}

// maxAssignedLocked returns the largest assigned count among
// in-service workers (0 when none).
func (s *Scheduler) maxAssignedLocked() int64 {
	var max int64
	for _, w := range s.workers {
		if w.inService && w.assigned > max {
			max = w.assigned
		}
	}
	return max
}

// WorkerInfo is one worker's externally visible state.
type WorkerInfo struct {
	// Worker is the pool index.
	Worker int `json:"worker"`
	// InService reports routing eligibility.
	InService bool `json:"in_service"`
	// Weight is the routing weight (healthy PLCU count).
	Weight int64 `json:"weight"`
	// Degraded mirrors the chip's quarantine state (false for
	// chipless workers).
	Degraded bool `json:"degraded"`
	// Report is the last BIST report (zero if never probed).
	Report health.Report `json:"report"`
}

// Info snapshots per-worker state for serving endpoints.
func (s *Scheduler) Info() []WorkerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerInfo, len(s.workers))
	for i, w := range s.workers {
		out[i] = WorkerInfo{
			Worker:    w.id,
			InService: w.inService,
			Weight:    w.weight,
			Degraded:  w.degraded,
			Report:    w.report,
		}
	}
	return out
}

// Degraded reports whether any worker is drained or serving on a
// degraded chip.
func (s *Scheduler) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.workers {
		if !w.inService || w.degraded {
			return true
		}
	}
	return false
}
