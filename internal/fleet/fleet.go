// Package fleet is the multi-chip serving subsystem: it owns a pool
// of analog chips (each wrapped in an inference.Backend) and schedules
// inference work onto them. The paper's throughput story is a
// utilization argument - Table 7's comparison against DEAP-CNN and
// HolyLight hinges on keeping many photonic units busy at once - and
// this package makes that utilization a first-class, measurable
// quantity: compatible layer requests coalesce into micro-batches that
// amortize MZM weight programming, a bounded admission queue sheds
// load explicitly instead of collapsing, and routing consumes BIST
// health reports so a faulty chip is drained from the pool while the
// rest keep serving.
//
// Determinism contract. The scheduler never reads a wall clock: the
// micro-batcher's linger is denominated in ticks of an injected
// logical clock (Tick is called by the cmd boundary on a wall timer in
// production and directly by tests), and routing is a deterministic
// weighted round-robin over the in-service workers. Given the same
// request trace (the same sequence of Submit and Tick calls), the
// fleet produces bit-identical results and bit-identical registry
// snapshots across runs; and because a drained worker is never driven,
// results are bit-identical to a healthy pool built from the surviving
// workers only. Cancellation (ctx deadlines) is the one wall-driven
// escape hatch and is excluded from the invariant.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"albireo/internal/core"
	"albireo/internal/health"
	"albireo/internal/inference"
	"albireo/internal/journal"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// Metric names emitted by the fleet scheduler.
const (
	// MetricQueueDepth gauges admitted-but-unfinished requests.
	MetricQueueDepth = "albireo_fleet_queue_depth"
	// MetricBatchSize is the histogram of dispatched batch sizes.
	MetricBatchSize = "albireo_fleet_batch_size"
	// MetricAdmitted counts requests accepted into the queue.
	MetricAdmitted = "albireo_fleet_admitted_total"
	// MetricShed counts requests refused with ErrOverloaded.
	MetricShed = "albireo_fleet_shed_total"
	// MetricCompleted counts requests executed to completion.
	MetricCompleted = "albireo_fleet_completed_total"
	// MetricCanceled counts requests dropped by their context before a
	// worker executed them.
	MetricCanceled = "albireo_fleet_canceled_total"
	// MetricBatches counts batches dispatched per worker (label worker).
	MetricBatches = "albireo_fleet_batches_total"
	// MetricRequests counts requests executed per worker (label worker).
	MetricRequests = "albireo_fleet_requests_total"
	// MetricTicks counts linger-clock ticks.
	MetricTicks = "albireo_fleet_ticks_total"
	// MetricDrains counts workers taken out of service by a probe.
	MetricDrains = "albireo_fleet_worker_drains_total"
	// MetricRestores counts drained workers returned to service.
	MetricRestores = "albireo_fleet_worker_restores_total"
	// MetricReprobes counts re-probe scans scheduled on drained workers.
	MetricReprobes = "albireo_fleet_reprobes_total"
	// MetricWorkerInService gauges routing eligibility per worker
	// (label worker; 1 in service, 0 drained).
	MetricWorkerInService = "albireo_fleet_worker_in_service"
	// MetricWorkerWeight gauges routing weight per worker (label
	// worker; healthy PLCU count for chip-backed workers).
	MetricWorkerWeight = "albireo_fleet_worker_weight"
	// MetricShardFanouts counts requests fanned out into kernel-group
	// sub-requests across the pool.
	MetricShardFanouts = "albireo_fleet_shard_fanouts_total"
	// MetricShardSubs counts kernel-group sub-requests executed.
	MetricShardSubs = "albireo_fleet_shard_subs_total"
)

// Typed admission errors. Submissions also fail with the caller's
// context error when the deadline expires first.
var (
	// ErrOverloaded is returned when the admission queue is full: the
	// fleet sheds the request instead of queueing unboundedly.
	ErrOverloaded = errors.New("fleet: overloaded, admission queue full")
	// ErrClosed is returned for submissions after Close (or before
	// Start).
	ErrClosed = errors.New("fleet: scheduler closed")
)

// BatchSizeBuckets is the bucket ladder for the batch-size histogram.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Options tunes the scheduler. The zero value of each field falls back
// to the stated default.
type Options struct {
	// MaxBatch caps a micro-batch: a pending batch that reaches this
	// size is dispatched immediately (default 8).
	MaxBatch int
	// MaxLinger is how many Tick calls a partial batch may wait for
	// more compatible requests before being dispatched anyway. 0 means
	// no lingering: every request dispatches on submission.
	MaxLinger int
	// QueueDepth bounds admitted-but-unfinished requests; submissions
	// past it are shed with ErrOverloaded (default 64).
	QueueDepth int
	// ReprobeEvery re-scans drained workers every this many ticks so a
	// recovered chip returns to service automatically. 0 disables
	// re-probing.
	ReprobeEvery int
	// KeepDegraded keeps a worker whose BIST scan found faults in
	// service - its faulty units quarantined and its routing weight
	// reduced to the surviving PLCU count - instead of draining it.
	// The default (false) drains the whole worker on any finding.
	KeepDegraded bool
	// Health tunes the BIST probes used for startup scans and
	// re-probes (zero value: health.DefaultOptions).
	Health health.Options
	// Shard fans eligible requests (dense convolutions, fully-connected
	// layers, and GEMM-family products) out across the in-service pool
	// as kernel-group sub-requests: each worker programs and executes
	// only its residue-class window of the output kernels, and the
	// scheduler merges the disjoint slices into one output. Sharding
	// engages only when at least two shard-capable workers (chip-backed,
	// or a backend implementing ShardBackend) are in service; otherwise
	// requests take the whole-request path unchanged.
	Shard bool
	// VirtualTime prices execution with ServiceModel in linger ticks
	// instead of observing wall progress: dispatched batches are
	// booked on a completion ledger that Tick settles, and admission
	// slots release at virtual - not real - completion. Every latency
	// stamp and every shedding decision then depends only on the
	// request trace, which is what lets the open-loop load harness
	// (internal/load) emit byte-identical reports from a seed. Real
	// backends still execute and deliver real results.
	VirtualTime bool
	// ServiceModel prices batches in VirtualTime mode (zero value:
	// ProgramTicks 2, RequestTicks 1). Ignored otherwise.
	ServiceModel ServiceModel
	// Journal, when non-nil, records every admission, shed, delivery,
	// cancellation, and worker drain/restore transition onto the
	// hash-chained request journal. All hooks are asynchronous and
	// non-blocking (Async never waits on I/O), so journaling stays off
	// the inference hot path; with Journal nil the scheduler pays one
	// nil check per hook site.
	Journal *journal.Async
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxLinger < 0 {
		o.MaxLinger = 0
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.VirtualTime {
		o.ServiceModel = o.ServiceModel.withDefaults()
	}
	return o
}

// Unit is one pool member: the backend that executes layer ops and,
// optionally, the chip behind it for BIST probing. A Unit with a nil
// Chip is never probed and stays in service at weight 1.
type Unit struct {
	Backend inference.Backend
	Chip    *core.Chip
}

// request is one admitted layer op waiting for a worker.
type request struct {
	fc   bool
	a    *tensor.Volume
	w    *tensor.Kernels
	cfg  tensor.ConvConfig
	relu bool
	// GEMM-family fields: tag is the journal op (OpGEMM, OpLSTM, or
	// OpAttention - zero for volume ops) and ma/mb are the matrix
	// operands.
	tag    journal.Op
	ma, mb *tensor.Matrix
	ctx    context.Context
	done   chan result // buffered 1: delivery never blocks a worker

	// jseq is the request's journal sequence number: its KindAdmit
	// record's position in the chain, or -1 when journaling is off (or
	// the journal refused the record). Assigned under the scheduler
	// mutex at admission, read by the owning worker and by Future
	// accessors after delivery.
	jseq int64

	// shard is the kernel-group window a sub-request owns (zero for
	// whole requests) and sp links it to its parent's merge state. A
	// request with non-nil sp never delivers on its own done channel:
	// the last finishing sub delivers the merged result to sp.req.
	shard core.ShardSpec
	sp    *shardParent

	// pinned marks a cross-layer pipeline stage request: aff is the
	// worker it is bound to (the stage's home), and it never shard
	// fans-out (a pinned request must run whole on its worker so
	// consecutive layers stream through different chips). Unpinned
	// requests have aff normalized to -1 at admission.
	pinned bool
	aff    int

	// st is the latency decomposition; final flips (with release
	// semantics, after the last stamp) when st stops changing, so
	// Future.Stages can read it race-free from any goroutine.
	st    StageTicks
	final atomic.Bool
}

// result is the outcome delivered back to the submitter.
type result struct {
	vol *tensor.Volume
	vec []float64
	mat *tensor.Matrix
	err error
}

// batchKey identifies coalescible requests: the same weight tensor,
// geometry, and activation - exactly the work whose MZM programming a
// worker can amortize by running the inputs back to back. GEMM-family
// requests coalesce on the same B matrix (the programmed operand): the
// chip's weight-program cache is keyed on it, so back-to-back GEMMs
// against one B skip recompilation exactly like a conv batch skips MZM
// reprogramming.
type batchKey struct {
	fc   bool
	w    *tensor.Kernels
	cfg  tensor.ConvConfig
	relu bool
	tag  journal.Op
	mb   *tensor.Matrix
	// shard and aff separate kernel-group sub-requests from whole
	// requests: subs coalesce only with subs owning the same window and
	// pinned to the same worker (aff is the placement worker id; -1 for
	// whole requests, which route by deficit round-robin).
	shard core.ShardSpec
	aff   int
}

// pendingBatch accumulates compatible requests until it fills or its
// linger expires.
type pendingBatch struct {
	key  batchKey
	reqs []*request
	age  int // ticks spent waiting
}

// Scheduler owns the worker pool, the micro-batcher, and the admission
// queue. Build with New, optionally Instrument, then Start.
type Scheduler struct {
	opt Options

	mu      sync.Mutex
	workers []*worker
	pending []*pendingBatch
	byKey   map[batchKey]*pendingBatch
	// queued counts admitted-but-unfinished requests. It is atomic so
	// workers can release queue slots on completion without taking the
	// scheduler mutex - on a busy pool the per-request completion lock
	// was the serialization point that kept added chips from adding
	// throughput. Admission still checks it under mu, so the depth
	// bound and the queue-capacity invariant are unchanged.
	queued atomic.Int64
	// ticks is written under mu (Tick) but read atomically by worker
	// goroutines stamping wall-mode execution stages.
	ticks   atomic.Int64
	started bool
	closed  bool
	wg      sync.WaitGroup

	// ledger is the virtual-time completion min-heap (VirtualTime
	// mode only), guarded by mu; ledgerSeq breaks completion ties in
	// booking order.
	ledger    []*ledgerEntry
	ledgerSeq int64

	reg   *obs.Registry
	trace *obs.Trace
	span  *obs.Span

	depth        *obs.Gauge
	batchSize    *obs.Histogram
	admitted     *obs.Counter
	shed         *obs.Counter
	completed    *obs.Counter
	canceled     *obs.Counter
	ticksC       *obs.Counter
	drains       *obs.Counter
	restores     *obs.Counter
	reprobes     *obs.Counter
	latE2E       *obs.Histogram
	latLinger    *obs.Histogram
	latWait      *obs.Histogram
	latExec      *obs.Histogram
	latDeliver   *obs.Histogram
	shardFanouts *obs.Counter
	shardSubs    *obs.Counter
}

// New builds a scheduler over the given pool members. At least one
// unit with a non-nil Backend is required.
func New(opt Options, units ...Unit) (*Scheduler, error) {
	if len(units) == 0 {
		return nil, errors.New("fleet: need at least one unit")
	}
	s := &Scheduler{
		opt:   opt.withDefaults(),
		byKey: make(map[batchKey]*pendingBatch),
	}
	for i, u := range units {
		if u.Backend == nil {
			return nil, fmt.Errorf("fleet: unit %d has no backend", i)
		}
		w := &worker{
			id:      i,
			backend: u.Backend,
			chip:    u.Chip,
			// Capacity bounds worst-case occupancy: every admitted
			// request in its own batch plus one outstanding probe, so a
			// dispatch under the scheduler lock never blocks.
			queue: make(chan workItem, s.opt.QueueDepth+1),
			// Chipless workers shard at the architectural group count;
			// chip-backed workers refresh this from the chip's active
			// group count at every scan (applyReportLocked).
			shardGroups: int64(core.DefaultConfig().Ng),
		}
		if u.Chip != nil {
			w.eng = health.New(u.Chip, s.opt.Health)
			w.shardCapable = true
		}
		if sb, ok := u.Backend.(ShardBackend); ok {
			w.sb = sb
			w.shardCapable = true
		}
		s.workers = append(s.workers, w)
	}
	return s, nil
}

// Instrument attaches an observability registry and/or trace (either
// may be nil) and returns the scheduler for chaining. Call before
// Start so the startup BIST scans are counted.
func (s *Scheduler) Instrument(reg *obs.Registry, trace *obs.Trace) *Scheduler {
	s.reg = reg
	s.trace = trace
	s.depth = reg.Gauge(MetricQueueDepth)
	s.batchSize = reg.Histogram(MetricBatchSize, BatchSizeBuckets)
	s.admitted = reg.Counter(MetricAdmitted)
	s.shed = reg.Counter(MetricShed)
	s.completed = reg.Counter(MetricCompleted)
	s.canceled = reg.Counter(MetricCanceled)
	s.ticksC = reg.Counter(MetricTicks)
	s.drains = reg.Counter(MetricDrains)
	s.restores = reg.Counter(MetricRestores)
	s.reprobes = reg.Counter(MetricReprobes)
	s.latE2E = reg.Histogram(MetricLatencyE2E, obs.LatencyBuckets)
	s.latLinger = reg.Histogram(MetricLatencyLinger, obs.LatencyBuckets)
	s.latWait = reg.Histogram(MetricLatencyQueueWait, obs.LatencyBuckets)
	s.latExec = reg.Histogram(MetricLatencyExecute, obs.LatencyBuckets)
	s.latDeliver = reg.Histogram(MetricLatencyDelivery, obs.LatencyBuckets)
	s.shardFanouts = reg.Counter(MetricShardFanouts)
	s.shardSubs = reg.Counter(MetricShardSubs)
	for _, w := range s.workers {
		w.instrument(reg, trace)
	}
	return s
}

// Start runs a BIST scan over every chip-backed worker, applies the
// drain/weight policy to the findings, and launches the worker
// goroutines. It fails if the scans leave no worker in service.
func (s *Scheduler) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return ErrClosed
	}
	s.span = s.trace.StartSpan("fleet/serve", obs.Int("pool", int64(len(s.workers))))
	for _, w := range s.workers {
		// Presumed in service until the scan says otherwise, so a
		// startup drain registers as a drain transition.
		w.inService = true
		if w.eng == nil {
			w.weight = 1
			w.syncGauges()
			continue
		}
		s.applyReportLocked(w, w.eng.Scan(), false)
	}
	if len(s.inServiceLocked()) == 0 {
		s.span.End(obs.String("error", "no in-service workers"))
		return errors.New("fleet: startup BIST left no worker in service")
	}
	s.started = true
	for _, w := range s.workers {
		s.wg.Add(1)
		go s.serveWorker(w)
	}
	return nil
}

// Tick advances the linger clock by one tick: pending batches age,
// those that reach MaxLinger dispatch, and in VirtualTime mode booked
// batches whose virtual completion is due settle off the ledger. Every
// ReprobeEvery ticks, drained workers are scheduled for a BIST
// re-probe. In production a wall timer at the cmd boundary calls Tick;
// tests call it directly, which is what keeps batching deterministic.
func (s *Scheduler) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started || s.closed {
		return
	}
	now := s.ticks.Add(1)
	s.ticksC.Inc()
	for _, pb := range s.pending {
		pb.age++
	}
	s.settleLedgerLocked(now, false)
	s.flushLocked(false)
	if s.opt.ReprobeEvery > 0 && now%int64(s.opt.ReprobeEvery) == 0 {
		for _, w := range s.workers {
			if !w.inService && w.eng != nil && !w.probePending {
				w.probePending = true
				s.reprobes.Inc()
				w.queue <- workItem{probe: true}
			}
		}
	}
}

// Ticks returns the logical time in ticks.
func (s *Scheduler) Ticks() int64 {
	return s.ticks.Load()
}

// Conv submits a convolution and waits for its result.
func (s *Scheduler) Conv(ctx context.Context, a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) (*tensor.Volume, error) {
	return s.ConvAsync(ctx, a, w, cfg, relu).Volume()
}

// FullyConnected submits a classifier layer and waits for its result.
func (s *Scheduler) FullyConnected(ctx context.Context, a *tensor.Volume, w *tensor.Kernels, relu bool) ([]float64, error) {
	return s.FullyConnectedAsync(ctx, a, w, relu).Logits()
}

// ConvAsync submits a convolution without waiting. Submission order is
// batch order: calls from one goroutine coalesce deterministically.
func (s *Scheduler) ConvAsync(ctx context.Context, a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *Future {
	return s.submit(ctx, &request{a: a, w: w, cfg: cfg, relu: relu, ctx: ctx})
}

// FullyConnectedAsync submits a classifier layer without waiting.
func (s *Scheduler) FullyConnectedAsync(ctx context.Context, a *tensor.Volume, w *tensor.Kernels, relu bool) *Future {
	return s.submit(ctx, &request{fc: true, a: a, w: w, relu: relu, ctx: ctx})
}

// GEMM submits a dense matrix product and waits for its result.
func (s *Scheduler) GEMM(ctx context.Context, a, b *tensor.Matrix, relu bool) (*tensor.Matrix, error) {
	return s.GEMMAsync(ctx, a, b, relu).Matrix()
}

// GEMMAsync submits a dense matrix product without waiting.
func (s *Scheduler) GEMMAsync(ctx context.Context, a, b *tensor.Matrix, relu bool) *Future {
	return s.GEMMAsyncOp(ctx, journal.OpGEMM, a, b, relu)
}

// GEMMAsyncOp submits a matrix product carrying a workload op tag
// (OpGEMM, OpLSTM, or OpAttention) so the journal and the trace record
// which workload issued it. Non-GEMM-family tags fail admission.
func (s *Scheduler) GEMMAsyncOp(ctx context.Context, op journal.Op, a, b *tensor.Matrix, relu bool) *Future {
	if !op.GEMMFamily() {
		return &Future{err: fmt.Errorf("fleet: op %v is not a GEMM-family op", op)}
	}
	return s.submit(ctx, &request{tag: op, ma: a, mb: b, relu: relu, ctx: ctx})
}

// submit runs admission control and batching for one request.
func (s *Scheduler) submit(ctx context.Context, req *request) *Future {
	if err := ctx.Err(); err != nil {
		return &Future{err: err}
	}
	req.jseq = -1
	if !req.pinned {
		req.aff = -1
	}
	// The journal payload (which scales with tensor size) is encoded
	// outside the scheduler lock; only the bounded-channel enqueue
	// happens under it, so admission order and journal order agree
	// without serializing admissions on the encoder.
	var jpayload []byte
	if j := s.opt.Journal; j != nil && !j.Degraded() {
		jr := &journal.Request{Op: opKind(req), ReLU: req.relu}
		if req.tag.GEMMFamily() {
			jr.MA, jr.MB = req.ma, req.mb
		} else {
			jr.Cfg, jr.A, jr.W = req.cfg, req.a, req.w
		}
		jpayload = journal.EncodeRequest(jr)
	}
	req.done = make(chan result, 1)
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return &Future{err: ErrClosed}
	}
	if s.queued.Load() >= int64(s.opt.QueueDepth) {
		s.shed.Inc()
		if j := s.opt.Journal; j != nil {
			j.Record(journal.KindShed, journal.EncodeShed(journal.Shed{
				Op: opKind(req), Queued: s.queued.Load(),
			}))
		}
		if s.trace != nil {
			s.span.Event(obs.RequestShed, opName(req), obs.Int("queued", s.queued.Load()))
		}
		s.mu.Unlock()
		return &Future{err: ErrOverloaded}
	}
	s.queued.Add(1)
	s.depth.Add(1)
	s.admitted.Inc()
	if jpayload != nil {
		req.jseq = s.opt.Journal.Admit(jpayload)
	}
	req.st.Arrive = s.ticks.Load()
	// Shard fan-out: an eligible request splits into kernel-group
	// sub-requests across the in-service pool instead of dispatching
	// whole. The parent keeps its single admission slot; the subs ride
	// the normal pending/dispatch machinery below.
	if s.opt.Shard && !req.pinned {
		if fut, ok := s.tryShardLocked(req); ok {
			s.mu.Unlock()
			return fut
		}
	}
	// No-linger fast path: with nothing pending (nothing could be
	// stranded waiting for a route, so FIFO order is safe) the request
	// is its own batch - route it directly and skip the coalescing
	// map, the pendingBatch, and the one-element batch slice.
	if s.opt.MaxLinger == 0 && len(s.pending) == 0 {
		if best := s.routeAffLocked(req.aff); best != nil {
			best.assigned++
			s.batchSize.Observe(1)
			best.batches.Inc()
			req.st.Dispatch = req.st.Arrive
			if s.opt.VirtualTime {
				s.bookLocked(best, []*request{req})
			}
			if s.trace != nil {
				s.span.Event(obs.BatchDispatched, opName(req),
					obs.Int("worker", int64(best.id)),
					obs.Int("size", 1),
					obs.Int("age_ticks", 0))
			}
			best.queue <- workItem{single: req}
			s.mu.Unlock()
			return &Future{req: req}
		}
	}
	key := batchKey{fc: req.fc, w: req.w, cfg: req.cfg, relu: req.relu, tag: req.tag, mb: req.mb, aff: req.aff}
	pb := s.byKey[key]
	if pb == nil {
		pb = &pendingBatch{key: key}
		s.byKey[key] = pb
		s.pending = append(s.pending, pb)
	}
	pb.reqs = append(pb.reqs, req)
	s.flushLocked(false)
	s.mu.Unlock()
	return &Future{req: req}
}

// flushLocked dispatches every pending batch that is due - full, past
// its linger, lingering disabled, or force (shutdown) - to a worker
// chosen by the routing policy. Batches stay pending when no worker is
// in service; they are retried on the next tick or restore.
func (s *Scheduler) flushLocked(force bool) {
	kept := s.pending[:0]
	for _, pb := range s.pending {
		due := force || s.opt.MaxLinger == 0 ||
			len(pb.reqs) >= s.opt.MaxBatch || pb.age >= s.opt.MaxLinger
		if !due || !s.dispatchLocked(pb) {
			kept = append(kept, pb)
			continue
		}
		delete(s.byKey, pb.key)
	}
	s.pending = kept
}

// dispatchLocked routes one batch to the in-service worker with the
// smallest weighted backlog (deficit round-robin: the worker
// minimizing assigned/weight, ties to the lowest id). Integer
// cross-multiplication keeps the comparison exact and deterministic.
// Shard sub-batches honor their placement affinity first and fall
// back to the least-loaded shard-capable worker when the pinned one
// has left service.
func (s *Scheduler) dispatchLocked(pb *pendingBatch) bool {
	best := s.routeLocked(pb)
	if best == nil {
		return false
	}
	best.assigned++
	s.batchSize.Observe(float64(len(pb.reqs)))
	best.batches.Inc()
	now := s.ticks.Load()
	for _, req := range pb.reqs {
		req.st.Dispatch = now
	}
	if s.opt.VirtualTime {
		s.bookLocked(best, pb.reqs)
	}
	if s.trace != nil {
		s.span.Event(obs.BatchDispatched, opName(pb.reqs[0]),
			obs.Int("worker", int64(best.id)),
			obs.Int("size", int64(len(pb.reqs))),
			obs.Int("age_ticks", int64(pb.age)))
	}
	best.queue <- workItem{batch: pb.reqs}
	return true
}

// routeLocked picks the worker for one pending batch: affinity for
// shard sub-batches and pinned pipeline stages, deficit round-robin
// for whole requests. When the pinned worker has left service, shard
// subs fall back to the least-loaded shard-capable worker; pipeline
// stages to the general routing policy.
func (s *Scheduler) routeLocked(pb *pendingBatch) *worker {
	if pb.key.aff < 0 {
		return s.pickWorkerLocked()
	}
	if w := s.workers[pb.key.aff]; w.inService && w.weight > 0 {
		return w
	}
	if pb.key.shard.Of > 0 {
		return s.pickShardWorkerLocked()
	}
	return s.pickWorkerLocked()
}

// routeAffLocked routes one unbatched request: its pinned worker when
// in service, the routing policy otherwise (and always for aff -1).
func (s *Scheduler) routeAffLocked(aff int) *worker {
	if aff >= 0 {
		if w := s.workers[aff]; w.inService && w.weight > 0 {
			return w
		}
	}
	return s.pickWorkerLocked()
}

// pickWorkerLocked returns the in-service worker with the smallest
// weighted backlog, or nil when none is eligible.
func (s *Scheduler) pickWorkerLocked() *worker {
	var best *worker
	for _, w := range s.workers {
		if !w.inService || w.weight <= 0 {
			continue
		}
		if best == nil || w.assigned*best.weight < best.assigned*w.weight {
			best = w
		}
	}
	return best
}

// pickShardWorkerLocked is pickWorkerLocked restricted to
// shard-capable workers: the fallback route for a sub-request whose
// placement worker drained after fan-out.
func (s *Scheduler) pickShardWorkerLocked() *worker {
	var best *worker
	for _, w := range s.workers {
		if !w.inService || w.weight <= 0 || !w.shardCapable {
			continue
		}
		if best == nil || w.assigned*best.weight < best.assigned*w.weight {
			best = w
		}
	}
	return best
}

// inServiceLocked lists workers eligible for routing.
func (s *Scheduler) inServiceLocked() []*worker {
	var out []*worker
	for _, w := range s.workers {
		if w.inService {
			out = append(out, w)
		}
	}
	return out
}

// Close stops admission, dispatches every pending batch, and waits for
// the workers to drain - bounded by ctx. Requests that cannot be
// dispatched (no worker left in service) fail with ErrClosed. A nil
// error means every worker exited.
func (s *Scheduler) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.started {
		s.flushLocked(true)
	}
	// Whatever could not dispatch fails now rather than hanging. A
	// stranded shard sub fails its whole parent (once): the merge can
	// never complete, so the parent's slot releases here instead.
	for _, pb := range s.pending {
		for _, req := range pb.reqs {
			if req.sp != nil {
				s.failShard(req.sp, ErrClosed)
				continue
			}
			s.deliver(req, result{err: ErrClosed})
			s.releaseSlot()
		}
		delete(s.byKey, pb.key)
	}
	s.pending = nil
	// Booked-but-unsettled virtual completions settle now so every
	// admitted slot releases and every dispatched request finalizes.
	s.settleLedgerLocked(s.ticks.Load(), true)
	for _, w := range s.workers {
		close(w.queue)
	}
	s.span.End(obs.Int("ticks", s.ticks.Load()))
	started := s.started
	s.mu.Unlock()
	if !started {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// deliver hands a result to the submitter. It takes no lock: the done
// channel is buffered, so delivery never blocks a worker.
func (s *Scheduler) deliver(req *request, res result) {
	req.done <- res
}

// releaseSlot frees one admission-queue slot. In wall-time mode the
// worker calls it right after delivering a result; in VirtualTime mode
// the ledger calls it at virtual completion, so occupancy - and hence
// shedding - tracks the priced service time, not wall progress. It
// takes no lock: the counter and the gauge are atomic, and the gauge
// moves by increments (not absolute stores) so concurrent completions
// cannot strand a stale depth reading.
func (s *Scheduler) releaseSlot() {
	s.queued.Add(-1)
	s.depth.Add(-1)
}

// opName labels a request for trace events.
func opName(req *request) string {
	return opKind(req).String()
}

// opKind maps a request to its journal op kind.
func opKind(req *request) journal.Op {
	if req.tag.GEMMFamily() {
		return req.tag
	}
	if req.fc {
		return journal.OpFC
	}
	return journal.OpConv
}

// Future is a pending submission. Exactly one of Volume or Logits
// matches the submitted op kind.
type Future struct {
	req *request
	err error // admission failure; set instead of req
}

// wait blocks until the result arrives or the request's context ends.
func (f *Future) wait() result {
	if f.err != nil {
		return result{err: f.err}
	}
	select {
	case res := <-f.req.done:
		return res
	case <-f.req.ctx.Done():
		return result{err: f.req.ctx.Err()}
	}
}

// Volume waits for a convolution result.
func (f *Future) Volume() (*tensor.Volume, error) {
	res := f.wait()
	return res.vol, res.err
}

// Logits waits for a fully-connected result.
func (f *Future) Logits() ([]float64, error) {
	res := f.wait()
	return res.vec, res.err
}

// Matrix waits for a GEMM-family result.
func (f *Future) Matrix() (*tensor.Matrix, error) {
	res := f.wait()
	return res.mat, res.err
}

// JournalSeq returns the request's journal sequence number - its
// KindAdmit record's position in the hash chain, the correlation id
// stamped on X-Albireo-Seq responses - or -1 when journaling is off,
// the journal refused the record, or admission failed. Valid as soon
// as the Future is returned: the sequence is assigned synchronously at
// admission even though the append is asynchronous.
func (f *Future) JournalSeq() int64 {
	if f.err != nil || f.req == nil {
		return -1
	}
	return f.req.jseq
}
