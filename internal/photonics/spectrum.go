package photonics

import (
	"albireo/internal/units"
	"fmt"
	"math"
)

// Spectrum is a sampled optical response: transfer (linear power
// fraction) versus wavelength. It supports the numeric measurements
// (peak finding, FWHM, extinction) used to cross-check the analytic
// device formulas and to export Figure 4a-style data.
type Spectrum struct {
	Wavelengths []float64
	Transfer    []float64
}

// SampleSpectrum evaluates fn over [lo, hi] at n points (n >= 2).
func SampleSpectrum(fn func(lambda float64) float64, lo, hi float64, n int) Spectrum {
	if n < 2 {
		panic("photonics: spectrum needs at least 2 samples") //lint:ignore exit-hygiene sample-count precondition; caller bug
	}
	s := Spectrum{
		Wavelengths: make([]float64, n),
		Transfer:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		l := lo + (hi-lo)*float64(i)/float64(n-1)
		s.Wavelengths[i] = l
		s.Transfer[i] = fn(l)
	}
	return s
}

// DropSpectrum samples an MRR's drop-port response across a span
// centered on its resonance.
func DropSpectrum(m MRR, span float64, n int) Spectrum {
	c := m.ResonantWavelength
	return SampleSpectrum(m.DropTransfer, c-span/2, c+span/2, n)
}

// Peak returns the maximum transfer and its wavelength.
func (s Spectrum) Peak() (lambda, transfer float64) {
	best := math.Inf(-1)
	var at float64
	for i, t := range s.Transfer {
		if t > best {
			best, at = t, s.Wavelengths[i]
		}
	}
	return at, best
}

// MeasureFWHM returns the numerically measured full width at half
// maximum around the global peak, using linear interpolation at the
// half-power crossings. It returns 0 if the response never falls to
// half maximum inside the sampled span.
func (s Spectrum) MeasureFWHM() float64 {
	_, peak := s.Peak()
	if peak <= 0 {
		return 0
	}
	half := peak / 2
	// Find the peak index.
	pi := 0
	for i, t := range s.Transfer {
		if t == peak {
			pi = i
			break
		}
	}
	cross := func(i, j int) float64 {
		// Interpolate the wavelength where transfer crosses half
		// between samples i and j.
		t0, t1 := s.Transfer[i], s.Transfer[j]
		if t1 == t0 {
			return s.Wavelengths[i]
		}
		f := (half - t0) / (t1 - t0)
		return s.Wavelengths[i] + f*(s.Wavelengths[j]-s.Wavelengths[i])
	}
	var left, right float64
	found := false
	for i := pi; i > 0; i-- {
		if s.Transfer[i-1] < half && s.Transfer[i] >= half {
			left = cross(i-1, i)
			found = true
			break
		}
	}
	if !found {
		return 0
	}
	found = false
	for i := pi; i < len(s.Transfer)-1; i++ {
		if s.Transfer[i] >= half && s.Transfer[i+1] < half {
			right = cross(i, i+1)
			found = true
			break
		}
	}
	if !found {
		return 0
	}
	return right - left
}

// ExtinctionDB returns the ratio of peak to minimum transfer in dB.
func (s Spectrum) ExtinctionDB() float64 {
	_, peak := s.Peak()
	minv := math.Inf(1)
	for _, t := range s.Transfer {
		if t < minv {
			minv = t
		}
	}
	if minv <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(peak/minv)
}

// At returns the transfer at the sample nearest to lambda.
func (s Spectrum) At(lambda float64) float64 {
	bestD := math.Inf(1)
	var v float64
	for i, l := range s.Wavelengths {
		if d := math.Abs(l - lambda); d < bestD {
			bestD, v = d, s.Transfer[i]
		}
	}
	return v
}

// String implements fmt.Stringer.
func (s Spectrum) String() string {
	if len(s.Wavelengths) == 0 {
		return "spectrum{empty}"
	}
	return fmt.Sprintf("spectrum{%d pts, %.2f-%.2f nm}",
		len(s.Wavelengths), s.Wavelengths[0]*units.Giga, s.Wavelengths[len(s.Wavelengths)-1]*units.Giga)
}
