package photonics

import (
	"math"
	"testing"

	"albireo/internal/units"
)

func TestNumericFWHMMatchesAnalytic(t *testing.T) {
	// The numerically measured FWHM of the sampled drop response must
	// match Eq. 9 - the cross-check between the spectrum machinery and
	// the analytic model.
	for _, k2 := range []float64{0.02, 0.03, 0.05} {
		m := NewMRRWithK2(c1550, k2)
		s := DropSpectrum(m, 4*m.FWHM(), 4001)
		got := s.MeasureFWHM()
		want := m.FWHM()
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("k2=%.2f: numeric FWHM %.4g, analytic %.4g", k2, got, want)
		}
	}
}

func TestSpectrumPeakAtResonance(t *testing.T) {
	m := NewMRR(c1550)
	s := DropSpectrum(m, 2*units.Nano, 2001)
	at, peak := s.Peak()
	if math.Abs(at-c1550) > 2e-12 {
		t.Errorf("peak at %.4f nm, want 1550", at*1e9)
	}
	if math.Abs(peak-m.DropTransfer(c1550)) > 1e-12 {
		t.Error("peak value should match the analytic transfer")
	}
}

func TestSpectrumExtinction(t *testing.T) {
	m := NewMRR(c1550)
	s := DropSpectrum(m, 8*units.Nano, 4001)
	// Drop-port extinction over +-4 nm is tens of dB.
	ext := s.ExtinctionDB()
	if ext < 20 || ext > 60 {
		t.Errorf("extinction %.1f dB outside plausible window", ext)
	}
}

func TestSpectrumAt(t *testing.T) {
	s := SampleSpectrum(func(l float64) float64 { return l }, 0, 10, 11)
	if s.At(3.2) != 3 {
		t.Errorf("nearest sample to 3.2 should be 3, got %g", s.At(3.2))
	}
	if s.At(100) != 10 {
		t.Error("beyond-range queries clamp to the nearest edge")
	}
}

func TestSpectrumDegenerate(t *testing.T) {
	// FWHM undefined when the response never falls to half max.
	flat := SampleSpectrum(func(float64) float64 { return 1 }, 0, 1, 11)
	if flat.MeasureFWHM() != 0 {
		t.Error("flat spectrum has no FWHM")
	}
	zero := SampleSpectrum(func(float64) float64 { return 0 }, 0, 1, 11)
	if zero.MeasureFWHM() != 0 {
		t.Error("zero spectrum has no FWHM")
	}
	if (Spectrum{}).String() != "spectrum{empty}" {
		t.Error("empty spectrum display")
	}
	if flat.String() == "" {
		t.Error("String")
	}
	defer func() {
		if recover() == nil {
			t.Error("1-point spectrum should panic")
		}
	}()
	SampleSpectrum(func(float64) float64 { return 0 }, 0, 1, 1)
}

func TestHalfWidthSymmetry(t *testing.T) {
	// The Lorentzian drop response is symmetric: the two half-power
	// crossings sit equidistant from the resonance.
	m := NewMRR(c1550)
	s := DropSpectrum(m, 4*m.FWHM(), 8001)
	_, peak := s.Peak()
	half := peak / 2
	var left, right float64
	for i := 1; i < len(s.Transfer); i++ {
		if s.Transfer[i-1] < half && s.Transfer[i] >= half {
			left = s.Wavelengths[i]
		}
		if s.Transfer[i-1] >= half && s.Transfer[i] < half {
			right = s.Wavelengths[i]
		}
	}
	dl := c1550 - left
	dr := right - c1550
	if math.Abs(dl-dr)/dl > 0.02 {
		t.Errorf("half-power crossings asymmetric: %.4g vs %.4g", dl, dr)
	}
}
