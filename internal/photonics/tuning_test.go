package photonics

import (
	"math"
	"testing"
	"testing/quick"

	"albireo/internal/units"
)

func TestPowerForShiftLinearity(t *testing.T) {
	tu := NewThermalTuner()
	// 0.5 nm at 0.5 nm/mW is 1 mW.
	if got := tu.PowerForShift(0.5 * units.Nano); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("0.5 nm shift = %g W, want 1 mW", got)
	}
	// Sign-insensitive.
	if tu.PowerForShift(-1*units.Nano) != tu.PowerForShift(1*units.Nano) {
		t.Error("shift power should use the magnitude")
	}
}

func TestAverageLockPowerMatchesTableIScale(t *testing.T) {
	// Locking a Table II ring (16.1 nm FSR) with a mid-range heater
	// costs FSR/2 / 0.5 nm/mW = ~16 mW worst-mean; efficient heaters
	// (1 nm/mW) bring the average to ~8 mW, the same order as the
	// Table I conservative MRR power (3.1 mW, which also includes an
	// optimized modulator from the cited 45 nm SOI work).
	tu := NewThermalTuner()
	avg := tu.AverageLockPower(16.1 * units.Nano)
	if avg < 5e-3 || avg > 30e-3 {
		t.Errorf("average lock power = %g W outside the mW order", avg)
	}
	good := ThermalTuner{EfficiencyNMPerMW: 2, MaxPower: 20e-3}
	if good.AverageLockPower(16.1*units.Nano) > 5e-3 {
		t.Error("a 2 nm/mW heater should lock for a few mW")
	}
}

func TestCanReach(t *testing.T) {
	tu := NewThermalTuner()
	if !tu.CanReach(8 * units.Nano) {
		t.Error("half-FSR shift should be reachable (16 mW < 20 mW)")
	}
	if tu.CanReach(16 * units.Nano) {
		t.Error("full-FSR shift should exceed the 20 mW ceiling")
	}
}

func TestThermoOpticShift(t *testing.T) {
	// 1 K on a 1550 nm ring with ng = 4.68: ~62 pm... actually
	// lambda * 1.86e-4 / 4.68 = 61.6 pm/K.
	got := ThermoOpticShift(1550*units.Nano, 4.68, 1)
	want := 1550e-9 * 1.86e-4 / 4.68
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("1 K shift = %g, want %g", got, want)
	}
	// Linear in dT.
	if math.Abs(ThermoOpticShift(1550*units.Nano, 4.68, 10)-10*got) > 1e-18 {
		t.Error("thermo-optic shift should be linear in temperature")
	}
}

func TestRingModulatorLevels(t *testing.T) {
	m := NewRingModulator(c1550)
	// Full level: no detuning, full drop transfer.
	if d := m.DetuneForLevel(1); math.Abs(d) > 1e-15 {
		t.Errorf("level 1 should need no detuning, got %g", d)
	}
	// Half level: detune by FWHM/2.
	if d := m.DetuneForLevel(0.5); math.Abs(d-m.Ring.FWHM()/2) > 1e-15 {
		t.Errorf("level 0.5 should detune by FWHM/2")
	}
	// The realized output tracks the requested level across the range.
	peak := m.Output(1e-3, 1)
	f := func(raw float64) bool {
		level := clamp(math.Abs(math.Mod(raw, 1)), 0.05, 1)
		got := m.Output(1e-3, level) / peak
		return math.Abs(got-level) < 0.02
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingModulatorMonotone(t *testing.T) {
	m := NewRingModulator(c1550)
	prev := -1.0
	for level := 0.05; level <= 1.0; level += 0.05 {
		out := m.Output(1e-3, level)
		if out <= prev {
			t.Fatalf("modulator output must be monotone in level at %.2f", level)
		}
		prev = out
	}
}

func TestExtinctionRatio(t *testing.T) {
	m := NewRingModulator(c1550)
	// Detuning by half an FWHM gives 3 dB extinction.
	er := m.ExtinctionRatioDB(m.Ring.FWHM() / 2)
	if math.Abs(er-3.0103) > 0.01 {
		t.Errorf("FWHM/2 extinction = %.3f dB, want ~3", er)
	}
	// More detuning, more extinction.
	if m.ExtinctionRatioDB(m.Ring.FWHM()) <= er {
		t.Error("extinction should grow with detuning")
	}
	if m.String() == "" {
		t.Error("String")
	}
}
