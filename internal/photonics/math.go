package photonics

import "math"

// Small local aliases keep the physics formulas readable without
// repeating the math package qualifier in every expression.
const pi = math.Pi

func sqrt(x float64) float64 { return math.Sqrt(x) }
func cos(x float64) float64  { return math.Cos(x) }
func acos(x float64) float64 { return math.Acos(x) }
func abs(x float64) float64  { return math.Abs(x) }

// clamp limits x to the closed interval [lo, hi].
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
