package photonics

import (
	"fmt"

	"albireo/internal/units"
)

// MZM models the Mach-Zehnder modulator used for optical
// multiplication (paper Section II-B.1, Figure 2a).
//
// The upper arm applies a differential phase shift dphi in [0, pi]
// through the plasma dispersion effect; destructive interference at the
// output Y-branch scales the optical power:
//
//	Pout = Pin/2 + (Pin/2)*cos(dphi)        (paper Eq. 2)
//
// dphi = 0 multiplies by 1, dphi = pi multiplies by 0. An MZM is
// wavelength independent for balanced arms, so one MZM multiplies every
// WDM channel on its input waveguide by the same weight - the physical
// basis of parameter sharing in the PLCU.
type MZM struct {
	// InsertionLossDB is the device insertion loss (Table II: 1.2 dB).
	InsertionLossDB float64
}

// NewMZM returns an MZM with the Table II insertion loss.
func NewMZM() MZM {
	return MZM{InsertionLossDB: 1.2}
}

// Transfer returns the ideal (lossless) power transfer for a
// differential phase shift dphi in radians, following Eq. 2. Values
// outside [0, pi] are clamped, matching the physical drive range.
func (m MZM) Transfer(dphi float64) float64 {
	dphi = clamp(dphi, 0, pi)
	return 0.5 + 0.5*cos(dphi)
}

// PhaseForWeight returns the differential phase shift that implements a
// multiplication by weight w in [0, 1]: dphi = arccos(2w - 1).
func (m MZM) PhaseForWeight(w float64) float64 {
	w = clamp(w, 0, 1)
	return acos(2*w - 1)
}

// Multiply attenuates the input power by weight w in [0, 1], including
// the device insertion loss. This is the multiply the architecture
// performs: weights are normalized into [0, 1] (signs are handled by
// the MRR switching fabric and balanced photodetection, Eq. 4).
func (m MZM) Multiply(pin, w float64) float64 {
	return pin * m.Transfer(m.PhaseForWeight(w)) * units.LossDBToTransmission(m.InsertionLossDB)
}

// MultiplyWDM multiplies every channel power in pins by the same weight
// w, writing results into a new slice. This models the MZM's
// wavelength-independent operation across a WDM bundle (Figure 2b).
func (m MZM) MultiplyWDM(pins []float64, w float64) []float64 {
	out := make([]float64, len(pins))
	loss := units.LossDBToTransmission(m.InsertionLossDB)
	tf := m.Transfer(m.PhaseForWeight(w)) * loss
	for i, p := range pins {
		out[i] = p * tf
	}
	return out
}

// String implements fmt.Stringer.
func (m MZM) String() string {
	return fmt.Sprintf("mzm{IL=%.1f dB}", m.InsertionLossDB)
}
