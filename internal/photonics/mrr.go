package photonics

import (
	"fmt"

	"albireo/internal/units"
)

// MRR models a double-bus (add-drop) microring resonator, the
// wavelength-selective filter Albireo uses for optical accumulation
// (paper Section II-B.2, Figure 2c) and for the PLCU switching fabric.
//
// The model follows the transfer-matrix treatment of Bogaerts et al.
// 2012 (the paper's reference [6]):
//
//	FSR     = lambda^2 / (ng * L)                                (Eq. 7)
//	Finesse = FSR / FWHM                                         (Eq. 8)
//	FWHM    = (1 - t1*t2*a) * lambda^2 / (pi*ng*L*sqrt(t1*t2*a)) (Eq. 9)
//
// with L the ring circumference, a the single-pass field amplitude
// transmission (a^2 = e^{-alpha*L}), and t1, t2 the field transmission
// coefficients of the two coupling regions (k^2 + t^2 = 1 for lossless
// couplers). The paper uses symmetric coupling k1 = k2, which yields
// critical coupling for a ~ 1.
type MRR struct {
	// Radius is the ring radius in meters (Table II: 5 um).
	Radius float64
	// K2 is the power cross-coupling coefficient k^2 of each coupler
	// (Table II default: 0.03). Symmetric: both couplers use K2.
	K2 float64
	// Guide is the ring waveguide (bent loss applies).
	Guide Waveguide
	// ResonantWavelength is the tuned resonance in meters.
	ResonantWavelength float64
	// Detuned indicates the ring has been tuned off-resonance ("turned
	// off" in the paper's words) so signals pass to the Thru port.
	Detuned bool
}

// NewMRR returns a ring with the Table II parameters (5 um radius,
// k^2 = 0.03, bent waveguide loss) resonant at the given wavelength.
func NewMRR(resonance float64) MRR {
	return MRR{
		Radius:             5 * units.Micro,
		K2:                 0.03,
		Guide:              BentWaveguide(),
		ResonantWavelength: resonance,
	}
}

// NewMRRWithK2 returns a Table II ring with a custom power
// cross-coupling coefficient, for the k^2 design-space exploration of
// Figure 4.
func NewMRRWithK2(resonance, k2 float64) MRR {
	m := NewMRR(resonance)
	m.K2 = k2
	return m
}

// Circumference returns the ring round-trip length L = 2*pi*r.
func (m MRR) Circumference() float64 {
	return 2 * pi * m.Radius
}

// fieldParams returns (t, a): the coupler field transmission
// coefficient and the single-pass amplitude transmission of the ring.
func (m MRR) fieldParams() (t, a float64) {
	t = sqrt(1 - clamp(m.K2, 0, 1))
	a = m.Guide.AmplitudeTransmission(m.Circumference())
	return t, a
}

// FSR returns the free spectral range in meters of wavelength (Eq. 7).
func (m MRR) FSR() float64 {
	lambda := m.ResonantWavelength
	return lambda * lambda / (m.Guide.NGroup * m.Circumference())
}

// FWHM returns the full width at half maximum of the drop-port
// resonance in meters of wavelength (Eq. 9), for symmetric coupling.
func (m MRR) FWHM() float64 {
	t, a := m.fieldParams()
	tta := t * t * a
	lambda := m.ResonantWavelength
	return (1 - tta) * lambda * lambda / (pi * m.Guide.NGroup * m.Circumference() * sqrt(tta))
}

// Finesse returns FSR/FWHM (Eq. 8).
func (m MRR) Finesse() float64 {
	return m.FSR() / m.FWHM()
}

// roundTripPhase returns the detuning phase phi accumulated in one
// round trip at wavelength lambda, measured from resonance. Near
// resonance the dispersion is governed by the group index:
// phi = 2*pi * ng * L * (lambda_res - lambda) / lambda_res^2.
func (m MRR) roundTripPhase(lambda float64) float64 {
	res := m.ResonantWavelength
	if m.Detuned {
		// Tuning "off" shifts the resonance by half an FSR, the
		// farthest possible detuning for every in-band channel.
		res += m.FSR() / 2
	}
	return 2 * pi * m.Guide.NGroup * m.Circumference() * (res - lambda) / (res * res)
}

// DropTransfer returns the power transfer from the In port to the Drop
// port at wavelength lambda:
//
//	Td = (k1^2 * k2^2 * a) / (1 - 2*t1*t2*a*cos(phi) + (t1*t2*a)^2)
//
// evaluated with symmetric coupling. At resonance this approaches 1 for
// a critically coupled low-loss ring.
func (m MRR) DropTransfer(lambda float64) float64 {
	t, a := m.fieldParams()
	k2 := 1 - t*t
	phi := m.roundTripPhase(lambda)
	tta := t * t * a
	den := 1 - 2*tta*cos(phi) + tta*tta
	return k2 * k2 * a / den
}

// ThruTransfer returns the power transfer from the In port to the Thru
// port at wavelength lambda:
//
//	Tt = (t2^2*a^2 - 2*t1*t2*a*cos(phi) + t1^2) / (1 - 2*t1*t2*a*cos(phi) + (t1*t2*a)^2)
func (m MRR) ThruTransfer(lambda float64) float64 {
	t, a := m.fieldParams()
	phi := m.roundTripPhase(lambda)
	tta := t * t * a
	den := 1 - 2*tta*cos(phi) + tta*tta
	num := t*t*a*a - 2*tta*cos(phi) + t*t
	return num / den
}

// Bandwidth returns the optical 3 dB bandwidth of the resonance in
// hertz: df = c * FWHM / lambda^2. This sets the ring's temporal
// response and hence the maximum modulation rate it can pass
// (Figure 4b).
func (m MRR) Bandwidth() float64 {
	lambda := m.ResonantWavelength
	return units.LightSpeed * m.FWHM() / (lambda * lambda)
}

// PhotonLifetime returns the cavity energy decay time constant
// tau = 1/(2*pi*df_FWHM) * 2 = 1/(pi*df), the first-order time constant
// of the drop-port power envelope.
func (m MRR) PhotonLifetime() float64 {
	return 1 / (pi * m.Bandwidth())
}

// QualityFactor returns the loaded quality factor Q = lambda/FWHM.
func (m MRR) QualityFactor() float64 {
	return m.ResonantWavelength / m.FWHM()
}

// String implements fmt.Stringer.
func (m MRR) String() string {
	return fmt.Sprintf("mrr{r=%.1f um k2=%.3f res=%.2f nm fsr=%.2f nm fwhm=%.3f nm}",
		m.Radius/units.Micro, m.K2, m.ResonantWavelength/units.Nano,
		m.FSR()/units.Nano, m.FWHM()/units.Nano)
}
