package photonics

import (
	"fmt"

	"albireo/internal/units"
)

// MZMDrive models the electro-optic drive of the weight MZM: the
// paper's conservative device is the forward-biased PIN Mach-Zehnder
// of Akiyama et al. (reference [1]) with V-pi*L = 0.29 V*cm. The DAC
// output voltage sets the differential phase, which sets the weight
// via Eq. 2 - this closes the loop between the digital weight code and
// the optical transfer.
type MZMDrive struct {
	// VPiL is the voltage-length product for a pi phase shift, in
	// volt-meters (0.29 V*cm).
	VPiL float64
	// ArmLength is the phase-shifter length in meters (300 um, the
	// Table II MZM footprint's long axis).
	ArmLength float64
	// MaxVoltage is the driver swing ceiling.
	MaxVoltage float64
}

// NewMZMDrive returns the reference [1] device geometry.
func NewMZMDrive() MZMDrive {
	return MZMDrive{
		VPiL:       0.29e-2, // 0.29 V*cm in V*m
		ArmLength:  300 * units.Micro,
		MaxVoltage: 12,
	}
}

// VPi returns the voltage for a pi differential phase shift at this
// arm length.
func (d MZMDrive) VPi() float64 {
	return d.VPiL / d.ArmLength
}

// PhaseForVoltage returns the differential phase (radians, clamped to
// [0, pi]) for a drive voltage.
func (d MZMDrive) PhaseForVoltage(v float64) float64 {
	return clamp(v/d.VPi(), 0, 1) * pi
}

// VoltageForWeight returns the drive voltage that programs weight w in
// [0, 1] through Eq. 2: dphi = arccos(2w - 1), v = dphi/pi * Vpi.
func (d MZMDrive) VoltageForWeight(w float64) float64 {
	m := MZM{}
	return m.PhaseForWeight(w) / pi * d.VPi()
}

// WeightForVoltage inverts the chain: voltage -> phase -> transfer.
func (d MZMDrive) WeightForVoltage(v float64) float64 {
	m := MZM{}
	return m.Transfer(d.PhaseForVoltage(v))
}

// Reachable reports whether the full weight range [0, 1] fits inside
// the driver swing: the zero weight needs the full Vpi.
func (d MZMDrive) Reachable() bool {
	return d.VPi() <= d.MaxVoltage
}

// CodeTransferCurve returns the optical transfer realized by each DAC
// code of a b-bit driver spanning [0, Vpi] linearly - the end-to-end
// code-to-weight map including the arccos nonlinearity. A linear
// voltage DAC yields a raised-cosine weight grid, which is why the
// weight quantizer in internal/quant models the value grid directly
// (the controller pre-distorts codes).
func (d MZMDrive) CodeTransferCurve(bits int) []float64 {
	n := 1 << uint(bits)
	out := make([]float64, n)
	vpi := d.VPi()
	for i := range out {
		v := vpi * float64(i) / float64(n-1)
		out[i] = d.WeightForVoltage(v)
	}
	return out
}

// String implements fmt.Stringer.
func (d MZMDrive) String() string {
	return fmt.Sprintf("mzmdrive{VpiL=%.2f V*cm, L=%.0f um, Vpi=%.2f V}",
		d.VPiL*100, d.ArmLength*units.Mega, d.VPi())
}
