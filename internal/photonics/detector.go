package photonics

import (
	"fmt"

	"albireo/internal/units"
)

// Laser models one off-chip continuous-wave laser source. Albireo uses
// one laser per WDM wavelength; each is characterized by its output
// power and relative intensity noise (RIN).
type Laser struct {
	// Wavelength is the emission wavelength in meters.
	Wavelength float64
	// Power is the CW output power in watts.
	Power float64
	// RINdBcHz is the relative intensity noise power spectral density
	// in dBc/Hz (Table II: -140).
	RINdBcHz float64
}

// NewLaser returns a laser with the Table II RIN at the given
// wavelength and power.
func NewLaser(wavelength, power float64) Laser {
	return Laser{Wavelength: wavelength, Power: power, RINdBcHz: -140}
}

// RINLinear returns the RIN PSD as a linear fraction^2 per hertz.
func (l Laser) RINLinear() float64 {
	return units.DBToLinear(l.RINdBcHz)
}

// Photodiode models the PIN photodetector that converts accumulated
// optical power into current (paper Section II-B: I is directly
// proportional to the incident optical power across all wavelengths).
type Photodiode struct {
	// Responsivity is in amperes per watt (Table II: 1.1 A/W).
	Responsivity float64
	// DarkCurrent is the reverse-bias leakage (Table II: 25 pA @ 1 V).
	DarkCurrent float64
}

// NewPhotodiode returns the Table II PIN photodiode.
func NewPhotodiode() Photodiode {
	return Photodiode{Responsivity: 1.1, DarkCurrent: 25 * units.Pico}
}

// Current returns the photocurrent for the given total incident
// optical power, including dark current.
func (p Photodiode) Current(power float64) float64 {
	if power < 0 {
		power = 0
	}
	return p.Responsivity*power + p.DarkCurrent
}

// BalancedPD is the balanced photodiode pair of Eq. 4: PD0 detects the
// positively-weighted accumulation waveguide, PD1 the negative one, and
// the output is the current difference
//
//	Iout = R0 * sum(P+) - R1 * sum(P-).
//
// R0 = R1 for all designs in the paper.
type BalancedPD struct {
	Positive Photodiode
	Negative Photodiode
}

// NewBalancedPD returns a matched pair of Table II photodiodes.
func NewBalancedPD() BalancedPD {
	return BalancedPD{Positive: NewPhotodiode(), Negative: NewPhotodiode()}
}

// Current returns the differential output current for the given total
// powers on the positive and negative accumulation waveguides. The
// matched dark currents cancel in the difference.
func (b BalancedPD) Current(pPos, pNeg float64) float64 {
	return b.Positive.Current(pPos) - b.Negative.Current(pNeg)
}

// TIA models the transimpedance amplifier converting the balanced PD
// current into a voltage for the ADC (Section III-B). Its feedback
// resistance sets both the gain and the Johnson-Nyquist noise floor
// (Eq. 6).
type TIA struct {
	// FeedbackOhms is Rf in ohms.
	FeedbackOhms float64
	// Temperature is T in kelvin (Section II-C: 300 K).
	Temperature float64
}

// NewTIA returns a TIA with a 10 kOhm feedback resistance at 300 K, a
// representative value for multi-GHz silicon photonic receivers.
func NewTIA() TIA {
	return TIA{FeedbackOhms: 10 * units.Kilo, Temperature: 300}
}

// Voltage returns the output voltage for an input current.
func (t TIA) Voltage(current float64) float64 {
	return current * t.FeedbackOhms
}

// String implements fmt.Stringer.
func (t TIA) String() string {
	return fmt.Sprintf("tia{Rf=%.0f ohm T=%.0f K}", t.FeedbackOhms, t.Temperature)
}
