package photonics

import (
	"math"
	"testing"
	"testing/quick"

	"albireo/internal/units"
)

func TestMZMTransferEndpoints(t *testing.T) {
	m := NewMZM()
	// Eq. 2: dphi = 0 multiplies by 1, dphi = pi multiplies by 0.
	if got := m.Transfer(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Transfer(0) = %g, want 1", got)
	}
	if got := m.Transfer(math.Pi); math.Abs(got) > 1e-12 {
		t.Errorf("Transfer(pi) = %g, want 0", got)
	}
	// Quadrature point multiplies by one half.
	if got := m.Transfer(math.Pi / 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Transfer(pi/2) = %g, want 0.5", got)
	}
}

func TestMZMTransferClamped(t *testing.T) {
	m := NewMZM()
	if m.Transfer(-1) != m.Transfer(0) {
		t.Error("negative phase should clamp to 0")
	}
	if m.Transfer(10) != m.Transfer(math.Pi) {
		t.Error("phase beyond pi should clamp to pi")
	}
}

func TestMZMPhaseForWeightRoundTrip(t *testing.T) {
	m := NewMZM()
	f := func(w float64) bool {
		w = math.Abs(math.Mod(w, 1))
		got := m.Transfer(m.PhaseForWeight(w))
		return math.Abs(got-w) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMZMMultiplyIncludesInsertionLoss(t *testing.T) {
	m := NewMZM()
	il := units.LossDBToTransmission(1.2)
	got := m.Multiply(1e-3, 1.0)
	want := 1e-3 * il
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("Multiply(1mW, 1) = %g, want %g (IL only)", got, want)
	}
	if m.Multiply(1e-3, 0) > 1e-15 {
		t.Error("Multiply by 0 should extinguish the signal")
	}
}

func TestMZMMultiplyMonotone(t *testing.T) {
	m := NewMZM()
	prev := -1.0
	for w := 0.0; w <= 1.0; w += 0.05 {
		got := m.Multiply(1, w)
		if got < prev {
			t.Errorf("Multiply should be monotone in weight: w=%.2f", w)
		}
		prev = got
	}
}

func TestMZMMultiplyWDM(t *testing.T) {
	// One MZM multiplies every wavelength by the same weight
	// (Figure 2b) - the parameter-sharing primitive.
	m := NewMZM()
	in := []float64{1e-3, 2e-3, 0, 5e-4}
	out := m.MultiplyWDM(in, 0.5)
	if len(out) != len(in) {
		t.Fatal("WDM output length mismatch")
	}
	scale := out[0] / in[0]
	for i := range in {
		if in[i] == 0 {
			if out[i] != 0 {
				t.Error("zero channel should stay zero")
			}
			continue
		}
		if math.Abs(out[i]/in[i]-scale) > 1e-12 {
			t.Error("all channels must see the identical weight")
		}
	}
}

func TestYBranchSplit(t *testing.T) {
	y := NewYBranch()
	a, b := y.Split(1e-3)
	if a != b {
		t.Error("Y-branch arms should be balanced")
	}
	want := 0.5e-3 * units.LossDBToTransmission(0.3)
	if math.Abs(a-want) > 1e-15 {
		t.Errorf("split power %g, want %g", a, want)
	}
}

func TestBroadcastTree(t *testing.T) {
	y := NewYBranch()
	// One output: passthrough.
	if y.BroadcastTree(1, 1) != 1 {
		t.Error("n=1 should be lossless passthrough")
	}
	// Degenerate inputs.
	if y.BroadcastTree(1, 0) != 0 {
		t.Error("n=0 should deliver nothing")
	}
	// 9-way broadcast (Ng = 9): 4 levels of splitting, 16-way power
	// division, 4x excess loss.
	got := y.BroadcastTree(1, 9)
	want := 1.0 / 16 * units.LossDBToTransmission(4*0.3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("9-way broadcast per-output power = %g, want %g", got, want)
	}
	// 2-way equals a single split.
	a, _ := y.Split(1)
	if math.Abs(y.BroadcastTree(1, 2)-a) > 1e-15 {
		t.Error("2-way tree should equal one Y-branch")
	}
}

func TestStarCouplerMulticast(t *testing.T) {
	s := NewStarCoupler(7, 3)
	in := []float64{1, 2, 3, 4, 5, 6, 7}
	out := s.Multicast(in)
	if len(out) != 3 {
		t.Fatal("should have Out rows")
	}
	per := units.LossDBToTransmission(1.3) / 3
	for o := range out {
		for i := range in {
			want := in[i] * per
			if math.Abs(out[o][i]-want) > 1e-12 {
				t.Errorf("out[%d][%d] = %g, want %g", o, i, out[o][i], want)
			}
		}
	}
}

func TestStarCouplerDegenerate(t *testing.T) {
	s := StarCoupler{In: 4, Out: 0, ExcessLossDB: 1.3}
	if s.PerOutputPower(1) != 0 {
		t.Error("zero-output coupler delivers nothing")
	}
}

func TestAWGDemux(t *testing.T) {
	a := NewAWG()
	in := []float64{1e-3, 0, 1e-3}
	out := a.Demux(in)
	il := units.LossDBToTransmission(2.0)
	xt := units.DBToLinear(-34)
	// Middle channel carries only neighbor leakage.
	wantMid := (1e-3 + 1e-3) * il * xt
	if math.Abs(out[1]-wantMid) > 1e-15 {
		t.Errorf("mid channel = %g, want leakage %g", out[1], wantMid)
	}
	// Edge channel: own power plus one neighbor's leakage (zero here).
	if math.Abs(out[0]-1e-3*il) > 1e-12 {
		t.Errorf("edge channel = %g, want %g", out[0], 1e-3*il)
	}
}

func TestWaveguidePropagation(t *testing.T) {
	w := StraightWaveguide()
	// 1 cm of 1.5 dB/cm waveguide.
	got := w.Propagate(1e-3, 0.01)
	want := 1e-3 * units.LossDBToTransmission(1.5)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("1 cm propagation = %g, want %g", got, want)
	}
	if BentWaveguide().LossDBPerM <= w.LossDBPerM {
		t.Error("bent waveguide must be lossier than straight")
	}
}

func TestWaveguideAmplitudeVsPower(t *testing.T) {
	w := BentWaveguide()
	l := 31.4e-6 // one ring circumference
	a := w.AmplitudeTransmission(l)
	if math.Abs(a*a-w.Transmission(l)) > 1e-12 {
		t.Error("a^2 must equal the power transmission")
	}
}
