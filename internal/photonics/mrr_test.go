package photonics

import (
	"math"
	"testing"
	"testing/quick"

	"albireo/internal/units"
)

const c1550 = 1550e-9

func TestMRRFSRMatchesTableII(t *testing.T) {
	// Eq. 7 with the Table II ring (5 um radius, ng = 4.68) should land
	// near the quoted 16.1 nm FSR.
	m := NewMRR(c1550)
	fsr := m.FSR()
	if math.Abs(fsr-16.1*units.Nano) > 0.5*units.Nano {
		t.Errorf("FSR = %.3f nm, want ~16.1 nm", fsr/units.Nano)
	}
}

func TestMRRFWHMOrdering(t *testing.T) {
	// Lower k^2 narrows the resonance (Section II-C, Figure 4a).
	prev := math.Inf(1)
	for _, k2 := range []float64{0.10, 0.05, 0.03, 0.02} {
		m := NewMRRWithK2(c1550, k2)
		w := m.FWHM()
		if w >= prev {
			t.Errorf("FWHM should shrink with k^2: k2=%.2f gives %.4f nm >= previous %.4f nm",
				k2, w/units.Nano, prev/units.Nano)
		}
		prev = w
	}
}

func TestMRRFWHMValue(t *testing.T) {
	// Hand-computed Eq. 9 for k^2 = 0.03: ~0.166 nm (see DESIGN.md).
	m := NewMRR(c1550)
	w := m.FWHM()
	if math.Abs(w-0.166*units.Nano) > 0.02*units.Nano {
		t.Errorf("FWHM = %.4f nm, want ~0.166 nm", w/units.Nano)
	}
}

func TestMRRFinesse(t *testing.T) {
	m := NewMRR(c1550)
	f := m.Finesse()
	want := m.FSR() / m.FWHM()
	if math.Abs(f-want) > 1e-9 {
		t.Errorf("finesse inconsistent with FSR/FWHM")
	}
	// For k^2 = 0.03 the finesse is high (order 100).
	if f < 50 || f > 200 {
		t.Errorf("finesse %.1f outside plausible range for k2=0.03", f)
	}
}

func TestMRRFinesseIndependentOfRadius(t *testing.T) {
	// Section II-C: finesse is constant regardless of L in an ideal
	// (lossless) MRR; it is set by the coupling alone.
	lossless := Waveguide{NEff: 2.33, NGroup: 4.68, LossDBPerM: 0}
	small := NewMRR(c1550)
	small.Radius = 3 * units.Micro
	small.Guide = lossless
	big := NewMRR(c1550)
	big.Radius = 10 * units.Micro
	big.Guide = lossless
	rel := math.Abs(small.Finesse()-big.Finesse()) / big.Finesse()
	if rel > 1e-9 {
		t.Errorf("ideal-ring finesse should be radius independent, differs by %.2g%%", rel*100)
	}
	// With loss, longer rings lose finesse, but only slightly at
	// 3.8 dB/cm over tens of microns.
	lossy := NewMRR(c1550)
	lossy.Radius = 10 * units.Micro
	rel = math.Abs(lossy.Finesse()-NewMRR(c1550).Finesse()) / NewMRR(c1550).Finesse()
	if rel > 0.15 {
		t.Errorf("lossy finesse drift %.1f%% larger than expected", rel*100)
	}
}

func TestMRRDropAtResonance(t *testing.T) {
	// A symmetric low-loss ring is near critical coupling: the drop
	// transfer at resonance approaches 1.
	m := NewMRR(c1550)
	d := m.DropTransfer(c1550)
	if d < 0.9 || d > 1.0 {
		t.Errorf("drop transfer at resonance = %.4f, want ~1", d)
	}
	// Thru port is correspondingly extinguished at resonance.
	th := m.ThruTransfer(c1550)
	if th > 0.05 {
		t.Errorf("thru transfer at resonance = %.4f, want ~0", th)
	}
}

func TestMRRDropHalfMaxAtFWHM(t *testing.T) {
	// The drop response should fall to half its peak at +-FWHM/2. This
	// checks the spectrum formula against the analytic FWHM of Eq. 9.
	m := NewMRR(c1550)
	peak := m.DropTransfer(c1550)
	half := m.DropTransfer(c1550 + m.FWHM()/2)
	if math.Abs(half-peak/2) > 0.03*peak {
		t.Errorf("drop at FWHM/2 = %.4f, want half of peak %.4f", half, peak)
	}
}

func TestMRRPeriodicInFSR(t *testing.T) {
	// Resonances repeat at the FSR (Section II-C).
	m := NewMRR(c1550)
	d0 := m.DropTransfer(c1550)
	d1 := m.DropTransfer(c1550 - m.FSR())
	if math.Abs(d0-d1) > 0.05*d0 {
		t.Errorf("drop transfer not FSR-periodic: %.4f vs %.4f", d0, d1)
	}
}

func TestMRRDetuned(t *testing.T) {
	// A detuned ("turned off") ring passes its former resonance to the
	// Thru port nearly unimpeded.
	m := NewMRR(c1550)
	m.Detuned = true
	if d := m.DropTransfer(c1550); d > 0.01 {
		t.Errorf("detuned ring still drops %.4f of the signal", d)
	}
	if th := m.ThruTransfer(c1550); th < 0.9 {
		t.Errorf("detuned ring thru transfer = %.4f, want ~1", th)
	}
}

func TestMRREnergyConservation(t *testing.T) {
	// Drop + Thru <= 1 everywhere (passive device), and the deficit is
	// bounded by the ring loss.
	m := NewMRR(c1550)
	f := func(off float64) bool {
		lambda := c1550 + math.Mod(off, 8e-9)
		sum := m.DropTransfer(lambda) + m.ThruTransfer(lambda)
		return sum <= 1.0+1e-9 && sum > 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMRRBandwidthAndLifetime(t *testing.T) {
	m := NewMRR(c1550)
	bw := m.Bandwidth()
	// FWHM 0.166 nm at 1550 nm is ~20.7 GHz.
	if math.Abs(bw-20.7e9) > 2e9 {
		t.Errorf("bandwidth = %.1f GHz, want ~20.7 GHz", bw/1e9)
	}
	tau := m.PhotonLifetime()
	if math.Abs(tau*pi*bw-1) > 1e-9 {
		t.Error("photon lifetime inconsistent with bandwidth")
	}
	// k^2 = 0.02 ring is slower (narrower): the basis of Figure 4b.
	slow := NewMRRWithK2(c1550, 0.02)
	if slow.Bandwidth() >= bw {
		t.Error("k2=0.02 ring should have lower bandwidth than k2=0.03")
	}
}

func TestMRRQualityFactor(t *testing.T) {
	m := NewMRR(c1550)
	q := m.QualityFactor()
	if math.Abs(q-c1550/m.FWHM()) > 1e-6 {
		t.Error("Q inconsistent with lambda/FWHM")
	}
	if q < 5000 || q > 20000 {
		t.Errorf("Q = %.0f outside plausible range for this ring", q)
	}
}

func TestMRRString(t *testing.T) {
	s := NewMRR(c1550).String()
	if s == "" {
		t.Error("String should describe the ring")
	}
}
