// Package photonics implements analytic models of the silicon photonic
// devices that make up the Albireo accelerator: waveguides, Y-branches,
// Mach-Zehnder modulators (MZM), double-bus microring resonators (MRR),
// star couplers, arrayed waveguide gratings (AWG), lasers, PIN
// photodiodes, transimpedance amplifiers, and data converters.
//
// These models substitute for the paper's use of the commercial
// Lumerical INTERCONNECT simulator. They implement the standard
// transfer-matrix / coupled-mode formulas (Bogaerts et al. 2012, cited
// by the paper) that INTERCONNECT itself evaluates, so the scalar
// characteristics the paper consumes - insertion loss, drop-port
// spectra, FSR/FWHM/finesse, temporal rolloff, crosstalk - are
// reproduced directly.
//
// Conventions: optical power in watts, wavelengths in meters, losses in
// dB (positive numbers). Signals are non-negative power amplitudes; the
// architecture encodes operands in power, not field phase (Section II-B).
package photonics

import (
	"fmt"

	"albireo/internal/units"
)

// Waveguide models a silicon strip waveguide with propagation loss.
type Waveguide struct {
	// NEff is the effective refractive index.
	NEff float64
	// NGroup is the group refractive index.
	NGroup float64
	// LossDBPerM is the propagation loss in dB per meter.
	LossDBPerM float64
}

// StraightWaveguide returns the Table II straight waveguide
// (500x220 nm, 1.5 dB/cm).
func StraightWaveguide() Waveguide {
	return Waveguide{NEff: 2.33, NGroup: 4.68, LossDBPerM: 150}
}

// BentWaveguide returns the Table II bent waveguide (3.8 dB/cm).
func BentWaveguide() Waveguide {
	return Waveguide{NEff: 2.33, NGroup: 4.68, LossDBPerM: 380}
}

// Transmission returns the power transmission fraction over the given
// length in meters.
func (w Waveguide) Transmission(length float64) float64 {
	return units.LossDBToTransmission(w.LossDBPerM * length)
}

// Propagate attenuates an optical power over the given length.
func (w Waveguide) Propagate(power, length float64) float64 {
	return power * w.Transmission(length)
}

// PhaseLength returns the optical phase accumulated over length at
// wavelength lambda: phi = 2*pi*neff*L/lambda (radians).
func (w Waveguide) PhaseLength(length, lambda float64) float64 {
	return 2 * pi * w.NEff * length / lambda
}

// AmplitudeTransmission returns the single-pass field amplitude factor
// a over length, where a^2 is the power transmission (a^2 = e^{-alpha L}
// in the paper's notation under Eq. 9).
func (w Waveguide) AmplitudeTransmission(length float64) float64 {
	return sqrt(w.Transmission(length))
}

// String implements fmt.Stringer for debugging output.
func (w Waveguide) String() string {
	return fmt.Sprintf("waveguide{neff=%.2f ng=%.2f loss=%.1f dB/cm}", w.NEff, w.NGroup, w.LossDBPerM/100)
}
