package photonics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhotodiodeCurrent(t *testing.T) {
	pd := NewPhotodiode()
	// 1 mW at 1.1 A/W gives 1.1 mA plus negligible dark current.
	got := pd.Current(1e-3)
	if math.Abs(got-1.1e-3) > 1e-9 {
		t.Errorf("Current(1mW) = %g, want ~1.1 mA", got)
	}
	// Dark current alone for zero light.
	if got := pd.Current(0); math.Abs(got-25e-12) > 1e-18 {
		t.Errorf("dark current = %g, want 25 pA", got)
	}
	// Negative power is clamped (physically impossible input).
	if pd.Current(-1) != pd.Current(0) {
		t.Error("negative power should clamp to zero")
	}
}

func TestBalancedPDSubtraction(t *testing.T) {
	b := NewBalancedPD()
	// Eq. 4: equal powers cancel exactly (matched responsivities and
	// dark currents).
	if got := b.Current(1e-3, 1e-3); math.Abs(got) > 1e-15 {
		t.Errorf("balanced inputs should cancel, got %g", got)
	}
	// Positive-dominant input yields positive current and vice versa.
	if b.Current(2e-3, 1e-3) <= 0 {
		t.Error("P+ > P- should give positive current")
	}
	if b.Current(1e-3, 2e-3) >= 0 {
		t.Error("P- > P+ should give negative current")
	}
}

func TestBalancedPDLinearity(t *testing.T) {
	b := NewBalancedPD()
	f := func(p, n float64) bool {
		p, n = math.Abs(math.Mod(p, 1e-2)), math.Abs(math.Mod(n, 1e-2))
		want := 1.1 * (p - n)
		return math.Abs(b.Current(p, n)-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTIAVoltage(t *testing.T) {
	tia := NewTIA()
	if got := tia.Voltage(1e-4); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("100 uA through 10 kOhm should be 1 V, got %g", got)
	}
	if tia.Temperature != 300 {
		t.Error("default temperature should be the paper's 300 K")
	}
}

func TestLaserRIN(t *testing.T) {
	l := NewLaser(c1550, 2e-3)
	// -140 dBc/Hz is 1e-14 /Hz linear.
	if math.Abs(l.RINLinear()-1e-14) > 1e-20 {
		t.Errorf("RIN linear = %g, want 1e-14", l.RINLinear())
	}
	if l.Power != 2e-3 || l.Wavelength != c1550 {
		t.Error("laser constructor should carry power and wavelength")
	}
}

func TestDACQuantize(t *testing.T) {
	d := NewDAC(5e9)
	if d.Levels() != 256 {
		t.Fatal("8-bit DAC should have 256 levels")
	}
	// Endpoints are exact.
	if d.Quantize(0) != 0 || d.Quantize(1) != 1 {
		t.Error("endpoints should be representable")
	}
	// Out-of-range clips.
	if d.Quantize(-0.5) != 0 || d.Quantize(1.5) != 1 {
		t.Error("out-of-range inputs should clip")
	}
	// Quantization error is bounded by half an LSB.
	lsb := 1.0 / 255
	f := func(x float64) bool {
		x = math.Abs(math.Mod(x, 1))
		return math.Abs(d.Quantize(x)-x) <= lsb/2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDACCode(t *testing.T) {
	d := NewDAC(5e9)
	if d.Code(0) != 0 || d.Code(1) != 255 {
		t.Error("codes should span 0..255")
	}
	if d.Code(0.5) != 128 && d.Code(0.5) != 127 {
		t.Errorf("mid-scale code = %d, want 127 or 128", d.Code(0.5))
	}
}

func TestADCQuantize(t *testing.T) {
	a := NewADC(5e9)
	fs := 2.0
	// Zero is exact; rails clip.
	if a.Quantize(0, fs) != 0 {
		t.Error("zero should be representable")
	}
	if a.Quantize(5, fs) != fs || a.Quantize(-5, fs) != -fs {
		t.Error("inputs beyond full scale should clip to the rails")
	}
	// Quantization error bounded by half an LSB.
	half := a.LSB(fs) / 2
	f := func(x float64) bool {
		x = math.Mod(x, fs)
		return math.Abs(a.Quantize(x, fs)-x) <= half+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Degenerate full scale.
	if a.Quantize(1, 0) != 0 {
		t.Error("non-positive full scale should return 0")
	}
}

func TestADCSymmetry(t *testing.T) {
	a := NewADC(5e9)
	f := func(x float64) bool {
		x = math.Mod(x, 1)
		return math.Abs(a.Quantize(x, 1)+a.Quantize(-x, 1)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConverterStrings(t *testing.T) {
	if NewADC(5e9).String() == "" || NewDAC(5e9).String() == "" {
		t.Error("converters should describe themselves")
	}
}
