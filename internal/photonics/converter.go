package photonics

import (
	"albireo/internal/units"
	"fmt"
	"math"
)

// DAC models the 8-bit digital-to-analog converter that drives the
// modulators (Section IV-A: 8-bit, 5 GS/s conservative/moderate,
// 8 GS/s aggressive). The converter quantizes a normalized value in
// [0, 1] onto its output grid.
type DAC struct {
	// Bits is the converter resolution.
	Bits int
	// SampleRate is in samples per second; it bounds the photonic
	// modulation rate.
	SampleRate float64
}

// NewDAC returns the paper's 8-bit converter at the given rate.
func NewDAC(rate float64) DAC { return DAC{Bits: 8, SampleRate: rate} }

// Levels returns the number of output levels, 2^Bits.
func (d DAC) Levels() int { return 1 << uint(d.Bits) }

// Quantize maps x in [0, 1] to the nearest representable level and
// returns the reconstructed analog value. Out-of-range inputs clip.
func (d DAC) Quantize(x float64) float64 {
	n := float64(d.Levels() - 1)
	q := math.Round(clamp(x, 0, 1) * n)
	return q / n
}

// Code returns the integer code for x in [0, 1], clipping out-of-range
// inputs.
func (d DAC) Code(x float64) int {
	n := float64(d.Levels() - 1)
	return int(math.Round(clamp(x, 0, 1) * n))
}

// ADC models the analog-to-digital converter in each PLCG aggregation
// unit. It digitizes a value within [-FullScale, +FullScale]
// (differential input from the balanced PD/TIA chain) to Bits of
// resolution.
type ADC struct {
	// Bits is the converter resolution (8 in the paper).
	Bits int
	// SampleRate is in samples per second.
	SampleRate float64
}

// NewADC returns the paper's 8-bit converter at the given rate.
func NewADC(rate float64) ADC { return ADC{Bits: 8, SampleRate: rate} }

// Levels returns the number of codes, 2^Bits.
func (a ADC) Levels() int { return 1 << uint(a.Bits) }

// Quantize digitizes x against the symmetric full scale fs and returns
// the reconstructed value. Inputs beyond +-fs clip to the rails.
func (a ADC) Quantize(x, fs float64) float64 {
	if fs <= 0 {
		return 0
	}
	half := float64(a.Levels()/2 - 1)
	q := math.Round(clamp(x/fs, -1, 1) * half)
	return q / half * fs
}

// LSB returns the quantization step for full scale fs.
func (a ADC) LSB(fs float64) float64 {
	return fs / float64(a.Levels()/2-1)
}

// String implements fmt.Stringer.
func (a ADC) String() string {
	return fmt.Sprintf("adc{%d bit @ %.0f GS/s}", a.Bits, a.SampleRate/units.Giga)
}

// String implements fmt.Stringer.
func (d DAC) String() string {
	return fmt.Sprintf("dac{%d bit @ %.0f GS/s}", d.Bits, d.SampleRate/units.Giga)
}
