package photonics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVPiFromDeviceGeometry(t *testing.T) {
	// 0.29 V*cm over a 300 um arm: Vpi = 9.67 V.
	d := NewMZMDrive()
	if math.Abs(d.VPi()-9.666666666666666) > 1e-9 {
		t.Errorf("Vpi = %.3f V, want 9.67 V", d.VPi())
	}
	if !d.Reachable() {
		t.Error("the reference device must reach the full weight range within 12 V")
	}
	// A short arm needs more voltage than the driver has.
	short := d
	short.ArmLength = 100e-6
	if short.Reachable() {
		t.Error("a 100 um arm (Vpi = 29 V) should not be reachable")
	}
}

func TestVoltagePhaseWeightChain(t *testing.T) {
	d := NewMZMDrive()
	// Zero volts: no phase shift, weight 1. Vpi: pi shift, weight 0.
	if w := d.WeightForVoltage(0); math.Abs(w-1) > 1e-12 {
		t.Errorf("0 V weight = %g, want 1", w)
	}
	if w := d.WeightForVoltage(d.VPi()); math.Abs(w) > 1e-12 {
		t.Errorf("Vpi weight = %g, want 0", w)
	}
	// Half Vpi is the quadrature point: weight 0.5.
	if w := d.WeightForVoltage(d.VPi() / 2); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("Vpi/2 weight = %g, want 0.5", w)
	}
	// Voltages beyond Vpi clamp.
	if d.WeightForVoltage(100) != 0 {
		t.Error("over-drive should clamp at full extinction")
	}
}

func TestVoltageForWeightRoundTrip(t *testing.T) {
	d := NewMZMDrive()
	f := func(raw float64) bool {
		w := math.Abs(math.Mod(raw, 1))
		v := d.VoltageForWeight(w)
		return v >= 0 && v <= d.VPi()+1e-9 &&
			math.Abs(d.WeightForVoltage(v)-w) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeTransferCurve(t *testing.T) {
	d := NewMZMDrive()
	curve := d.CodeTransferCurve(8)
	if len(curve) != 256 {
		t.Fatal("8-bit curve length")
	}
	// Monotone decreasing from 1 to 0 (more voltage, more
	// extinction).
	if math.Abs(curve[0]-1) > 1e-12 || math.Abs(curve[255]) > 1e-12 {
		t.Error("curve endpoints")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Fatal("code transfer curve must be monotone")
		}
	}
	// The raised-cosine nonlinearity: the midpoint code lands at 0.5
	// weight, but quarter-scale codes do not land at 0.75/0.25 (they
	// follow cos^2) - this is why controllers pre-distort.
	if math.Abs(curve[128]-0.5) > 0.01 {
		t.Errorf("mid-code weight = %.3f, want ~0.5", curve[128])
	}
	quarter := curve[64]
	if math.Abs(quarter-0.75) < 0.01 {
		t.Error("a linear-voltage DAC should NOT give a linear weight grid")
	}
	if d.String() == "" {
		t.Error("String")
	}
}
