package photonics

import (
	"fmt"

	"albireo/internal/units"
)

// ThermalTuner models the micro-heater that trims an MRR's resonance
// onto its WDM channel and "turns rings off" by detuning (paper
// Section II-B.2: rings are switched by shifting lambda_res through
// the plasma dispersion or thermo-optic effect). Tuning power is the
// dominant share of the Table I per-MRR power.
type ThermalTuner struct {
	// EfficiencyNMPerMW is the resonance shift per milliwatt of heater
	// power. Doped silicon heaters demonstrate 0.25-1 nm/mW; the
	// default 0.5 nm/mW is mid-range.
	EfficiencyNMPerMW float64
	// MaxPower is the heater power ceiling in watts.
	MaxPower float64
}

// NewThermalTuner returns a mid-range silicon heater.
func NewThermalTuner() ThermalTuner {
	return ThermalTuner{EfficiencyNMPerMW: 0.5, MaxPower: 20 * units.Milli}
}

// PowerForShift returns the heater power in watts to shift the
// resonance by dLambda (meters; sign ignored - heaters only red-shift,
// so fabs is the budget either way after fabrication binning).
func (t ThermalTuner) PowerForShift(dLambda float64) float64 {
	if dLambda < 0 {
		dLambda = -dLambda
	}
	return dLambda / units.Nano / t.EfficiencyNMPerMW * units.Milli
}

// CanReach reports whether the heater can cover the shift.
func (t ThermalTuner) CanReach(dLambda float64) bool {
	return t.PowerForShift(dLambda) <= t.MaxPower
}

// AverageLockPower returns the expected tuning power for a ring whose
// fabricated resonance is uniformly distributed over one FSR: heaters
// shift in one direction only, so the mean shift is FSR/2.
func (t ThermalTuner) AverageLockPower(fsr float64) float64 {
	return t.PowerForShift(fsr / 2)
}

// ThermoOpticShift returns the resonance shift for a temperature
// change dT in kelvin: dLambda = lambda * (dn/dT) * dT / ng, with the
// silicon thermo-optic coefficient dn/dT = 1.86e-4 /K.
func ThermoOpticShift(lambda, ng, dT float64) float64 {
	const dnDT = 1.86e-4
	return lambda * dnDT * dT / ng
}

// RingModulator is the signal-generation MRR of the Albireo input bank
// (Section III-C: "modulated by a bank of MRRs to generate the input
// signals"). It encodes a value by partially detuning the ring, which
// attenuates the carrier coupled to the drop port.
type RingModulator struct {
	Ring  MRR
	Tuner ThermalTuner
}

// NewRingModulator returns a modulator on the Table II ring at the
// given carrier wavelength.
func NewRingModulator(carrier float64) RingModulator {
	return RingModulator{Ring: NewMRR(carrier), Tuner: NewThermalTuner()}
}

// DetuneForLevel returns the resonance offset (meters) that produces
// the requested normalized output level in (0, 1], by inverting the
// Lorentzian drop response: T(d)/T(0) = 1 / (1 + (2d/FWHM)^2).
func (m RingModulator) DetuneForLevel(level float64) float64 {
	level = clamp(level, 1e-6, 1) //lint:ignore unit-safety dimensionless drop-level floor, not a physical quantity
	fwhm := m.Ring.FWHM()
	return fwhm / 2 * sqrt(1/level-1)
}

// Output returns the modulated carrier power for a normalized level,
// by evaluating the ring at the corresponding detuning.
func (m RingModulator) Output(carrierPower, level float64) float64 {
	ring := m.Ring
	ring.ResonantWavelength += m.DetuneForLevel(level)
	return carrierPower * ring.DropTransfer(m.Ring.ResonantWavelength)
}

// ExtinctionRatioDB returns the on/off contrast achievable with a
// detuning of nFWHM half-widths: ER = 1 + (2d/FWHM)^2 in linear terms.
func (m RingModulator) ExtinctionRatioDB(detune float64) float64 {
	fwhm := m.Ring.FWHM()
	x := 2 * detune / fwhm
	return units.LinearToDB(1 + x*x)
}

// String implements fmt.Stringer.
func (m RingModulator) String() string {
	return fmt.Sprintf("ringmod{%v}", m.Ring)
}
