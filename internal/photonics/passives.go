package photonics

import (
	"fmt"

	"albireo/internal/units"
)

// YBranch models the 1x2 power splitter used to broadcast input
// signals to the PLCGs (paper Section III-C: "signals are easily split
// using a series of Y-branches"). Splitting divides power equally in
// addition to the excess insertion loss.
type YBranch struct {
	// ExcessLossDB is the insertion loss beyond the ideal 3 dB split
	// (Table II: 0.3 dB).
	ExcessLossDB float64
}

// NewYBranch returns the Table II Y-branch.
func NewYBranch() YBranch { return YBranch{ExcessLossDB: 0.3} }

// Split returns the power on each of the two output arms.
func (y YBranch) Split(pin float64) (a, b float64) {
	out := pin / 2 * units.LossDBToTransmission(y.ExcessLossDB)
	return out, out
}

// BroadcastTree models a tree of Y-branches fanning one input out to n
// outputs. It returns the per-output power. The tree depth is
// ceil(log2(n)); each level costs the 3 dB split plus excess loss.
func (y YBranch) BroadcastTree(pin float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	if n == 1 {
		return pin
	}
	depth := 0
	for c := 1; c < n; c *= 2 {
		depth++
	}
	per := pin / float64(uint(1)<<uint(depth))
	return per * units.LossDBToTransmission(float64(depth)*y.ExcessLossDB)
}

// StarCoupler models the free-propagation-region multicast device of
// Section III-C: it takes In demultiplexed single-wavelength inputs and
// physically broadcasts each of them to all Out output ports, where the
// PLCU consumes them in a multicast pattern.
type StarCoupler struct {
	// In is the number of input waveguides (Nd + Wx - 1 = 7 in the
	// default PLCU).
	In int
	// Out is the number of output waveguides (Wx = 3).
	Out int
	// ExcessLossDB is the insertion loss (Table II: 1.3 dB).
	ExcessLossDB float64
}

// NewStarCoupler returns a Table II star coupler of the given radix.
func NewStarCoupler(in, out int) StarCoupler {
	return StarCoupler{In: in, Out: out, ExcessLossDB: 1.3}
}

// PerOutputPower returns the power each output port receives from one
// input carrying pin: the input is split across all Out ports and
// suffers the excess loss.
func (s StarCoupler) PerOutputPower(pin float64) float64 {
	if s.Out <= 0 {
		return 0
	}
	return pin / float64(s.Out) * units.LossDBToTransmission(s.ExcessLossDB)
}

// Multicast distributes each input channel to every output port. The
// result is indexed [output][input] and contains the per-port power of
// each wavelength after the split. All inputs carry distinct
// wavelengths, so powers never interfere.
func (s StarCoupler) Multicast(pins []float64) [][]float64 {
	out := make([][]float64, s.Out)
	for o := range out {
		row := make([]float64, len(pins))
		for i, p := range pins {
			row[i] = s.PerOutputPower(p)
		}
		out[o] = row
	}
	return out
}

// AWG models the arrayed waveguide grating that demultiplexes the 64
// distribution wavelengths delivered to each PLCG into separate
// waveguides (Section III-C). AWGs are passive and consume no power.
type AWG struct {
	// Channels is the demux channel count (Table II: 64).
	Channels int
	// InsertionLossDB is the per-channel loss (Table II: 2.0 dB).
	InsertionLossDB float64
	// CrosstalkDB is the adjacent-channel crosstalk (Table II: -34 dB).
	CrosstalkDB float64
	// FSR is the grating free spectral range (Table II: 70 nm).
	FSR float64
}

// NewAWG returns the Table II AWG.
func NewAWG() AWG {
	return AWG{
		Channels:        64,
		InsertionLossDB: 2.0,
		CrosstalkDB:     -34,
		FSR:             70 * units.Nano,
	}
}

// Demux separates a WDM bundle into per-channel outputs. Each output
// carries its own channel attenuated by the insertion loss plus leakage
// from the two adjacent channels at the crosstalk level. The output
// slice has the same length as the input.
func (a AWG) Demux(pins []float64) []float64 {
	il := units.LossDBToTransmission(a.InsertionLossDB)
	xt := units.DBToLinear(a.CrosstalkDB)
	out := make([]float64, len(pins))
	for i, p := range pins {
		v := p * il
		if i > 0 {
			v += pins[i-1] * il * xt
		}
		if i+1 < len(pins) {
			v += pins[i+1] * il * xt
		}
		out[i] = v
	}
	return out
}

// String implements fmt.Stringer.
func (a AWG) String() string {
	return fmt.Sprintf("awg{ch=%d IL=%.1f dB xt=%.0f dB}", a.Channels, a.InsertionLossDB, a.CrosstalkDB)
}
