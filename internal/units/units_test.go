package units

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestDBToLinear(t *testing.T) {
	cases := []struct{ db, want float64 }{
		{0, 1},
		{10, 10},
		{-10, 0.1},
		{3, 1.9952623149688795},
		{-3, 0.5011872336272722},
	}
	for _, c := range cases {
		approx(t, DBToLinear(c.db), c.want, 1e-12, "DBToLinear")
	}
}

func TestLinearToDB(t *testing.T) {
	approx(t, LinearToDB(1), 0, 1e-12, "LinearToDB(1)")
	approx(t, LinearToDB(100), 20, 1e-12, "LinearToDB(100)")
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -Inf")
	}
	if !math.IsInf(LinearToDB(-1), -1) {
		t.Error("LinearToDB(-1) should be -Inf")
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 100) // keep in a sane range
		back := LinearToDB(DBToLinear(db))
		return math.Abs(back-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLossDBToTransmission(t *testing.T) {
	// Table II: MZM insertion loss is 1.2 dB -> ~75.9% transmission.
	approx(t, LossDBToTransmission(1.2), 0.7585775750291836, 1e-12, "1.2 dB loss")
	// Zero loss transmits everything.
	approx(t, LossDBToTransmission(0), 1, 1e-12, "0 dB loss")
	// 3 dB is half power.
	approx(t, LossDBToTransmission(3.0102999566398), 0.5, 1e-9, "3 dB loss")
}

func TestDBmConversions(t *testing.T) {
	approx(t, DBmToWatts(0), 1e-3, 1e-15, "0 dBm = 1 mW")
	approx(t, DBmToWatts(30), 1, 1e-9, "30 dBm = 1 W")
	approx(t, WattsToDBm(1e-3), 0, 1e-9, "1 mW = 0 dBm")
	approx(t, WattsToDBm(2e-3), 3.0102999566398, 1e-9, "2 mW ~ 3 dBm")
	if !math.IsInf(WattsToDBm(0), -1) {
		t.Error("WattsToDBm(0) should be -Inf")
	}
}

func TestWavelengthFrequency(t *testing.T) {
	// 1550 nm is ~193.4 THz, the C-band anchor used throughout the paper.
	f := WavelengthToFrequency(1550 * Nano)
	approx(t, f/Tera, 193.41448903225807, 1e-6, "1550 nm frequency")
	l := FrequencyToWavelength(f)
	approx(t, l/Nano, 1550, 1e-9, "round trip wavelength")
}

func TestWavelengthSpacingToFrequency(t *testing.T) {
	// 0.8 nm at 1550 nm is ~99.84 GHz (standard WDM grid fact).
	df := WavelengthSpacingToFrequency(0.8*Nano, 1550*Nano)
	approx(t, df/Giga, 99.827, 0.01, "0.8 nm spacing")
}

func TestLog2(t *testing.T) {
	approx(t, Log2(450), 8.813781191217037, 1e-12, "log2(450), the paper's example")
	approx(t, Log2(1024), 10, 1e-12, "log2(1024)")
	if !math.IsInf(Log2(0), -1) {
		t.Error("Log2(0) should be -Inf")
	}
}

func TestConstants(t *testing.T) {
	// Exact SI defined values.
	if ElementaryCharge != 1.602176634e-19 {
		t.Error("ElementaryCharge mismatch with SI definition")
	}
	if Boltzmann != 1.380649e-23 {
		t.Error("Boltzmann mismatch with SI definition")
	}
	if LightSpeed != 2.99792458e8 {
		t.Error("LightSpeed mismatch with SI definition")
	}
}
