// Package units provides physical constants and unit conversions used
// throughout the Albireo photonic simulator.
//
// All quantities in the simulator are carried in SI base units (watts,
// amperes, meters, seconds, hertz) unless a name says otherwise. This
// package centralizes the constants from the paper's noise equations
// (Eqs. 5-6) and the dB/linear conversions that photonic loss budgets
// are quoted in.
package units

import "math"

// Physical constants (SI).
const (
	// ElementaryCharge is q_e in coulombs (paper Eq. 5).
	ElementaryCharge = 1.602176634e-19
	// Boltzmann is k_B in joules per kelvin (paper Eq. 6).
	Boltzmann = 1.380649e-23
	// LightSpeed is c in meters per second.
	LightSpeed = 2.99792458e8
)

// Common SI prefixes as multipliers, for readable parameter literals.
const (
	Tera  = 1e12
	Giga  = 1e9
	Mega  = 1e6
	Kilo  = 1e3
	Milli = 1e-3
	Micro = 1e-6
	Nano  = 1e-9
	Pico  = 1e-12
	Femto = 1e-15
	Atto  = 1e-18
)

// DBToLinear converts a decibel power ratio to a linear power ratio.
// Positive dB is gain; negative dB is loss.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear power ratio to decibels.
// Ratios <= 0 return -Inf, matching the mathematical limit.
func LinearToDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// LossDBToTransmission converts an insertion loss quoted in dB (a
// positive number, e.g. 1.2 dB for an MZM) into the transmitted power
// fraction in (0, 1].
func LossDBToTransmission(lossDB float64) float64 {
	return DBToLinear(-lossDB)
}

// DBmToWatts converts optical power in dBm to watts.
func DBmToWatts(dbm float64) float64 {
	return 1e-3 * math.Pow(10, dbm/10)
}

// WattsToDBm converts optical power in watts to dBm.
// Non-positive powers return -Inf.
func WattsToDBm(w float64) float64 {
	if w <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(w/1e-3)
}

// WavelengthToFrequency converts a vacuum wavelength in meters to an
// optical frequency in hertz.
func WavelengthToFrequency(lambda float64) float64 {
	return LightSpeed / lambda
}

// FrequencyToWavelength converts an optical frequency in hertz to a
// vacuum wavelength in meters.
func FrequencyToWavelength(f float64) float64 {
	return LightSpeed / f
}

// WavelengthSpacingToFrequency converts a small wavelength spacing
// dLambda around center wavelength lambda into the equivalent frequency
// spacing |df| = c * dLambda / lambda^2. This is the first-order
// dispersion-free conversion used for WDM channel grids.
func WavelengthSpacingToFrequency(dLambda, lambda float64) float64 {
	return LightSpeed * dLambda / (lambda * lambda)
}

// Log2 returns log base 2 of x. It is the "bits of precision" helper:
// the paper reports log2 of the number of separable optical power
// amplitudes (Section II-C). x <= 0 returns -Inf.
func Log2(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log2(x)
}
