package baseline

// Electronic accelerator comparison points. The paper takes these
// latency/energy numbers directly from the accelerators' publications
// (Table IV): Eyeriss (65 nm), ENVISION (28 nm), UNPU (65 nm). The
// published results cover AlexNet and VGG16.

// ElectronicResult is one reported row of Table IV.
type ElectronicResult struct {
	Accelerator string
	Technology  string
	Model       string
	Latency     float64 // seconds
	Energy      float64 // joules
	EDP         float64 // joule-seconds
	// GOPSPerMM2 and GOPSPerWattPerMM2 are the reported area
	// efficiencies.
	GOPSPerMM2        float64
	GOPSPerWattPerMM2 float64
}

// Reported returns the Table IV electronic rows.
func Reported() []ElectronicResult {
	return []ElectronicResult{
		{"Eyeriss", "65nm", "AlexNet", 25.9e-3, 7.19e-3, 186.1e-6, 1.75, 6.29},
		{"ENVISION", "28nm", "AlexNet", 21.3e-3, 0.94e-3, 20.0e-6, 18.2, 411.9},
		{"UNPU", "65nm", "AlexNet", 2.89e-3, 0.84e-3, 2.42e-6, 15.7, 53.9},
		{"Eyeriss", "65nm", "VGG16", 1252e-3, 295.4e-3, 370e-3, 0.77, 3.3},
		{"ENVISION", "28nm", "VGG16", 598.8e-3, 15.6e-3, 9341e-6, 13.8, 531.3},
		{"UNPU", "65nm", "VGG16", 54.6e-3, 16.2e-3, 886.9e-6, 17.7, 59.1},
	}
}

// ReportedFor returns the reported rows for one model.
func ReportedFor(model string) []ElectronicResult {
	var out []ElectronicResult
	for _, r := range Reported() {
		if r.Model == model {
			out = append(out, r)
		}
	}
	return out
}
