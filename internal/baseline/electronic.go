package baseline

// Electronic accelerator comparison points. The paper takes these
// latency/energy numbers directly from the accelerators' publications
// (Table IV): Eyeriss (65 nm), ENVISION (28 nm), UNPU (65 nm). The
// published results cover AlexNet and VGG16.

import "albireo/internal/units"

// ElectronicResult is one reported row of Table IV.
type ElectronicResult struct {
	Accelerator string
	Technology  string
	Model       string
	Latency     float64 // seconds
	Energy      float64 // joules
	EDP         float64 // joule-seconds
	// GOPSPerMM2 and GOPSPerWattPerMM2 are the reported area
	// efficiencies.
	GOPSPerMM2        float64
	GOPSPerWattPerMM2 float64
}

// Reported returns the Table IV electronic rows.
func Reported() []ElectronicResult {
	return []ElectronicResult{
		{"Eyeriss", "65nm", "AlexNet", 25.9 * units.Milli, 7.19 * units.Milli, 186.1 * units.Micro, 1.75, 6.29},
		{"ENVISION", "28nm", "AlexNet", 21.3 * units.Milli, 0.94 * units.Milli, 20.0 * units.Micro, 18.2, 411.9},
		{"UNPU", "65nm", "AlexNet", 2.89 * units.Milli, 0.84 * units.Milli, 2.42 * units.Micro, 15.7, 53.9},
		{"Eyeriss", "65nm", "VGG16", 1252 * units.Milli, 295.4 * units.Milli, 370 * units.Milli, 0.77, 3.3},
		{"ENVISION", "28nm", "VGG16", 598.8 * units.Milli, 15.6 * units.Milli, 9341 * units.Micro, 13.8, 531.3},
		{"UNPU", "65nm", "VGG16", 54.6 * units.Milli, 16.2 * units.Milli, 886.9 * units.Micro, 17.7, 59.1},
	}
}

// ReportedFor returns the reported rows for one model.
func ReportedFor(model string) []ElectronicResult {
	var out []ElectronicResult
	for _, r := range Reported() {
		if r.Model == model {
			out = append(out, r)
		}
	}
	return out
}
