package baseline

import (
	"math"
	"testing"

	"albireo/internal/core"
	"albireo/internal/nn"
	"albireo/internal/perf"
)

func TestDEAPPowerNear60W(t *testing.T) {
	d := NewDEAPCNN()
	// 2034 DACs at 26 mW dominate: ~59.5 W total, the Section IV-A
	// 60 W scaling point.
	p := d.Power()
	if p < 57 || p > 61 {
		t.Errorf("DEAP-CNN power = %.1f W, want ~59.5", p)
	}
}

func TestPIXELScaling(t *testing.T) {
	p := NewPIXEL()
	// One OMAC draws ~8 W (128 converter lanes at 10 GS/s); 7 fit the
	// budget.
	up := p.UnitPower()
	if up < 7 || up > 9 {
		t.Errorf("PIXEL unit power = %.2f W, want ~8", up)
	}
	if u := p.Units(); u < 6 || u > 8 {
		t.Errorf("PIXEL units = %d, want ~7", u)
	}
	if p.Power() > p.PowerBudget {
		t.Error("scaled PIXEL must stay within the budget")
	}
}

func TestFig8LatencyRatios(t *testing.T) {
	// Section IV-B reports (average over the four CNNs):
	//   Albireo-9 vs PIXEL:     ~79.5x  | vs DEAP-CNN: ~1.7x
	//   Albireo-27 vs PIXEL:    ~225x   | vs DEAP-CNN: ~4.8x
	deap := NewDEAPCNN()
	pixel := NewPIXEL()
	var rPix9, rDeap9, rPix27, rDeap27 float64
	n := 0.0
	for _, m := range nn.Benchmarks() {
		a9 := perf.Evaluate(core.DefaultConfig(), m)
		a27 := perf.Evaluate(core.Albireo27(), m)
		dp := deap.Evaluate(m)
		px := pixel.Evaluate(m)
		rPix9 += px.Latency / a9.Latency
		rDeap9 += dp.Latency / a9.Latency
		rPix27 += px.Latency / a27.Latency
		rDeap27 += dp.Latency / a27.Latency
		n++
	}
	rPix9 /= n
	rDeap9 /= n
	rPix27 /= n
	rDeap27 /= n
	if rPix9 < 40 || rPix9 > 160 {
		t.Errorf("Albireo-9 vs PIXEL latency ratio = %.1f, want ~79.5", rPix9)
	}
	// Per-model ratios are ~1.7 for AlexNet/VGG16/ResNet18; MobileNet's
	// depthwise layers push the mean up (see EXPERIMENTS.md).
	if rDeap9 < 1.2 || rDeap9 > 3.6 {
		t.Errorf("Albireo-9 vs DEAP latency ratio = %.2f, want ~1.7-2.8", rDeap9)
	}
	if rPix27 < 120 || rPix27 > 450 {
		t.Errorf("Albireo-27 vs PIXEL latency ratio = %.1f, want ~225", rPix27)
	}
	if rDeap27 < 3.5 || rDeap27 > 11 {
		t.Errorf("Albireo-27 vs DEAP latency ratio = %.2f, want ~4.8-8", rDeap27)
	}
}

func TestFig8EDPRatios(t *testing.T) {
	// Albireo-27 reduces EDP by ~50,957x vs PIXEL and ~23.9x vs DEAP.
	deap := NewDEAPCNN()
	pixel := NewPIXEL()
	var edpPix, edpDeap float64
	n := 0.0
	for _, m := range nn.Benchmarks() {
		a27 := perf.Evaluate(core.Albireo27(), m)
		edpPix += pixel.Evaluate(m).EDP / a27.EDP
		edpDeap += deap.Evaluate(m).EDP / a27.EDP
		n++
	}
	edpPix /= n
	edpDeap /= n
	if edpPix < 15e3 || edpPix > 150e3 {
		t.Errorf("EDP ratio vs PIXEL = %.0f, want ~50957", edpPix)
	}
	if edpDeap < 15 || edpDeap > 150 {
		t.Errorf("EDP ratio vs DEAP = %.1f, want ~24-100", edpDeap)
	}
}

func TestWDMEfficiency(t *testing.T) {
	// Albireo has ~30.9x better WDM efficiency than DEAP-CNN and
	// ~1680x better than PIXEL (Section IV-B).
	deap := NewDEAPCNN().Evaluate(nn.VGG16())
	pixel := NewPIXEL().Evaluate(nn.VGG16())
	a27 := perf.Evaluate(core.Albireo27(), nn.VGG16())
	albWDM := a27.Energy / 63 // 63 distribution wavelengths
	if r := deap.WDMEfficiency() / albWDM; r < 10 || r > 90 {
		t.Errorf("WDM efficiency ratio vs DEAP = %.1f, want ~30.9", r)
	}
	if r := pixel.WDMEfficiency() / albWDM; r < 500 || r > 5000 {
		t.Errorf("WDM efficiency ratio vs PIXEL = %.0f, want ~1680", r)
	}
	var zero Result
	if !math.IsInf(zero.WDMEfficiency(), 1) {
		t.Error("zero wavelengths should give infinite energy/wavelength")
	}
}

func TestDEAPLayerCycles(t *testing.T) {
	d := NewDEAPCNN()
	// A 3x3x64 conv layer with 56x56x256 output: one pass.
	l := nn.Layer{Kind: nn.Conv, InZ: 64, InY: 56, InX: 56, OutZ: 256, KY: 3, KX: 3, Stride: 1, Pad: 1}
	if got := d.LayerCycles(l); got != 56*56*256 {
		t.Errorf("one-pass conv cycles = %d, want %d", got, 56*56*256)
	}
	// 256 channels exceed the 113 limit: 3 passes.
	l.InZ = 256
	if got := d.LayerCycles(l); got != 56*56*256*3 {
		t.Errorf("deep conv cycles = %d, want 3 passes", got)
	}
	// Pooling costs nothing.
	if d.LayerCycles(nn.Layer{Kind: nn.MaxPoolKind, InZ: 4, InY: 8, InX: 8, OutZ: 4, KY: 2, KX: 2, Stride: 2}) != 0 {
		t.Error("pooling should cost no DEAP cycles")
	}
	// FC: 1017 elements per cycle.
	fc := nn.Layer{Kind: nn.FC, InZ: 4096, InY: 1, InX: 1, OutZ: 1000, KY: 1, KX: 1}
	if got := d.LayerCycles(fc); got != 1000*5 { // ceil(4096/1017)=5
		t.Errorf("FC cycles = %d, want 5000", got)
	}
}

func TestElectronicReported(t *testing.T) {
	rows := Reported()
	if len(rows) != 6 {
		t.Fatalf("expected 6 reported rows, got %d", len(rows))
	}
	// Spot-check against Table IV.
	alex := ReportedFor("AlexNet")
	if len(alex) != 3 {
		t.Fatal("3 electronic baselines for AlexNet")
	}
	for _, r := range alex {
		if r.Accelerator == "UNPU" {
			if math.Abs(r.Latency-2.89e-3) > 1e-9 || math.Abs(r.Energy-0.84e-3) > 1e-9 {
				t.Error("UNPU AlexNet row mismatch with Table IV")
			}
		}
		// EDP consistency within rounding of the published numbers.
		if r.EDP <= 0 || math.Abs(r.EDP-r.Latency*r.Energy)/r.EDP > 0.05 {
			t.Errorf("%s/%s: EDP inconsistent with latency*energy", r.Accelerator, r.Model)
		}
	}
	if len(ReportedFor("ResNet18")) != 0 {
		t.Error("no published electronic rows for ResNet18")
	}
}

func TestTableIVSpeedups(t *testing.T) {
	// "Albireo-C improves latency by 110x on average" vs the three
	// electronic accelerators (AlexNet + VGG16 rows).
	var ratio float64
	n := 0.0
	for _, model := range []string{"AlexNet", "VGG16"} {
		m, _ := nn.ByName(model)
		alb := perf.Evaluate(core.DefaultConfig(), m)
		for _, r := range ReportedFor(model) {
			ratio += r.Latency / alb.Latency
			n++
		}
	}
	avg := ratio / n
	if avg < 60 || avg > 200 {
		t.Errorf("average electronic latency speedup = %.0f, want ~110", avg)
	}
}

func TestBaselineStrings(t *testing.T) {
	if NewDEAPCNN().Evaluate(nn.AlexNet()).String() == "" {
		t.Error("result String")
	}
}
