package baseline

import (
	"testing"

	"albireo/internal/core"
	"albireo/internal/nn"
	"albireo/internal/perf"
)

func TestExcludedDesignsAreImpractical(t *testing.T) {
	// Section V: the paper forgoes HolyLight and DNNARA because a
	// 60 W budget with realistic devices "renders them impractical for
	// competitive CNN inference". Our rough models - which are
	// *favorable* to both (100% tile utilization, no dataflow
	// overheads) - already place them behind Albireo-27 at the same
	// budget: HolyLight by >2x latency and >5x EDP, DNNARA by >20x
	// latency. Their real designs only do worse.
	alb := perf.Evaluate(core.Albireo27(), nn.VGG16())
	holy := NewHolyLight().Evaluate(nn.VGG16())
	rns := NewDNNARA().Evaluate(nn.VGG16())
	if holy.Latency < 2*alb.Latency {
		t.Errorf("HolyLight at 60 W (%.2f ms) should trail Albireo-27 (%.2f ms) by >2x",
			holy.Latency*1e3, alb.Latency*1e3)
	}
	if holy.EDP < 4*alb.EDP {
		t.Errorf("HolyLight EDP should trail Albireo-27 by >4x")
	}
	if rns.Latency < 20*alb.Latency {
		t.Errorf("DNNARA at 60 W (%.2f ms) should trail Albireo-27 (%.2f ms) by >20x",
			rns.Latency*1e3, alb.Latency*1e3)
	}
}

func TestHolyLightBudget(t *testing.T) {
	h := NewHolyLight()
	if h.TilePower() <= 0 {
		t.Fatal("tile power must be positive")
	}
	if h.Tiles() < 1 {
		t.Fatal("at least one tile")
	}
	if float64(h.Tiles())*h.TilePower() > h.PowerBudget+h.TilePower() {
		t.Error("tile count should respect the budget")
	}
	// The claim's mechanism: per-bit converter replication makes a
	// tile expensive - on the order of 10 W, so few tiles fit.
	if h.TilePower() < 3 || h.TilePower() > 20 {
		t.Errorf("tile power %.1f W outside expected window", h.TilePower())
	}
}

func TestDNNARABudget(t *testing.T) {
	d := NewDNNARA()
	// One-hot RNS rails cost ~0.3 W per single-MAC unit: ~200 units at
	// 60 W, i.e. ~1 TMAC/s - an order below DEAP and two-plus below
	// Albireo-27's effective rate.
	if d.UnitPower() < 0.1 || d.UnitPower() > 1 {
		t.Errorf("unit power %.2f W outside expected window", d.UnitPower())
	}
	if d.Units() < 50 || d.Units() > 600 {
		t.Errorf("unit count %d outside expected window", d.Units())
	}
	deap := NewDEAPCNN().Evaluate(nn.VGG16())
	rns := NewDNNARA().Evaluate(nn.VGG16())
	if rns.Latency < deap.Latency {
		t.Error("DNNARA should trail even DEAP-CNN at the same budget")
	}
}
