// Package baseline implements the comparison points of the paper's
// evaluation: the photonic accelerators PIXEL and DEAP-CNN, rebuilt as
// analytic throughput/power models from their published device
// inventories and scaled to the 60 W budget with the same conservative
// device parameters as Albireo (Section IV-A), and the electronic
// accelerators Eyeriss, ENVISION, and UNPU, whose latency and energy
// the paper takes directly from their publications (Table IV).
package baseline

import (
	"fmt"
	"math"

	"albireo/internal/device"
	"albireo/internal/nn"
	"albireo/internal/units"
)

// Result mirrors perf.Result for baseline accelerators.
type Result struct {
	Model   string
	Design  string
	Latency float64 // seconds
	Energy  float64 // joules
	EDP     float64 // joule-seconds
	Power   float64 // watts
	// Wavelengths is the WDM channel count the design actively uses
	// for computation, the denominator of the paper's WDM-efficiency
	// metric.
	Wavelengths int
}

// WDMEfficiency returns energy per wavelength used (J/wavelength),
// lower is better - the paper's combination metric for how well an
// architecture exploits WDM.
func (r Result) WDMEfficiency() float64 {
	if r.Wavelengths <= 0 {
		return math.Inf(1)
	}
	return r.Energy / float64(r.Wavelengths)
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s on %s: %.3f ms, %.2f mJ", r.Model, r.Design, r.Latency*units.Kilo, r.Energy*units.Kilo)
}

// DEAPCNN models the DEAP-CNN accelerator (Bangari et al., the paper's
// reference [5]): MRR weight banks compute one receptive-field dot
// product per cycle over up to 9 kernel taps x 113 channels, with
// voltage addition across filter channels. At the 60 W budget with
// conservative devices, the published inventory (2034 DACs, 113 TIAs)
// amounts to a single such unit at 5 GHz - DACs alone draw ~53 W.
type DEAPCNN struct {
	// MaxChannels is the filter-channel capacity of a weight bank
	// (113). The paper optimistically assumes deeper kernels can be
	// folded over multiple passes.
	MaxChannels int
	// TapsPerBank is the kernel footprint a bank holds (3x3 = 9).
	TapsPerBank int
	// ClockHz is the modulation rate (5 GHz).
	ClockHz float64
	// KernelWavelengths is the WDM channel count of one weight bank,
	// used for the WDM-efficiency metric.
	KernelWavelengths int
}

// NewDEAPCNN returns the paper's 60 W DEAP-CNN configuration.
func NewDEAPCNN() DEAPCNN {
	return DEAPCNN{
		MaxChannels:       113,
		TapsPerBank:       9,
		ClockHz:           5 * units.Giga,
		KernelWavelengths: 9,
	}
}

// Power returns the configuration's power draw with conservative
// devices: 2034 DACs, 2034 MRRs (weights + input modulators), 113
// TIAs, one ADC.
func (d DEAPCNN) Power() float64 {
	p := device.Powers(device.Conservative)
	nDAC := 2 * d.TapsPerBank * d.MaxChannels // 2034
	nMRR := nDAC
	return float64(nDAC)*p.DAC + float64(nMRR)*p.MRR + float64(d.MaxChannels)*p.TIA + p.ADC
}

// BankCapacity returns the weight capacity of one bank:
// TapsPerBank * MaxChannels (1017).
func (d DEAPCNN) BankCapacity() int64 {
	return int64(d.TapsPerBank) * int64(d.MaxChannels)
}

// LayerCycles returns the cycles DEAP-CNN needs for one layer: one
// output activation per cycle per pass, with extra passes when a
// kernel exceeds the bank's weight capacity. Following the paper's
// "optimistic assumption in favor of DEAP-CNN" (Section IV-A), the
// bank folds arbitrary kernel shapes up to its 1017-weight capacity,
// and depthwise layers use the per-channel photodiode lanes to filter
// MaxChannels channels in parallel.
func (d DEAPCNN) LayerCycles(l nn.Layer) int64 {
	switch l.Kind {
	case nn.Conv, nn.Pointwise:
		outputs := int64(l.OutY()) * int64(l.OutX()) * int64(l.OutZ)
		depth := int64(l.InZ)
		if l.Groups > 1 {
			depth /= int64(l.Groups)
		}
		weights := int64(l.KY) * int64(l.KX) * depth
		return outputs * ceilDiv(weights, d.BankCapacity())
	case nn.Depthwise:
		pixels := int64(l.OutY()) * int64(l.OutX())
		return pixels * ceilDiv(int64(l.InZ), int64(d.MaxChannels))
	case nn.FC:
		n := int64(l.InZ) * int64(l.InY) * int64(l.InX)
		return int64(l.OutZ) * ceilDiv(n, d.BankCapacity())
	default:
		return 0
	}
}

// Evaluate runs a network through the DEAP-CNN model.
func (d DEAPCNN) Evaluate(m nn.Model) Result {
	var cycles int64
	for _, l := range m.Layers {
		cycles += d.LayerCycles(l)
	}
	lat := float64(cycles) / d.ClockHz
	pw := d.Power()
	return Result{
		Model:       m.Name,
		Design:      "DEAP-CNN (60 W)",
		Latency:     lat,
		Energy:      pw * lat,
		EDP:         pw * lat * lat,
		Power:       pw,
		Wavelengths: d.KernelWavelengths,
	}
}

// PIXEL models the PIXEL accelerator (Shiflett et al., the paper's
// reference [52]) in its 8-bit "OO" optical MAC configuration at
// 10 GHz: MRRs compute bitwise partial products and cascaded MZMs
// accumulate them, so each OMAC completes one 8-bit MAC per cycle but
// needs per-bit-lane converters (128 DACs at 10 GS/s, 64 product MRRs,
// 63 accumulation MZMs, 8 output lanes). The unit count is scaled to
// the 60 W budget.
type PIXEL struct {
	// ClockHz is the OMAC rate (10 GHz, Section IV-A).
	ClockHz float64
	// Bits is the operand precision (8).
	Bits int
	// PowerBudget caps the scaled design (60 W).
	PowerBudget float64
}

// NewPIXEL returns the paper's 60 W PIXEL configuration.
func NewPIXEL() PIXEL {
	return PIXEL{ClockHz: 10 * units.Giga, Bits: 8, PowerBudget: 60}
}

// UnitPower returns one OMAC's draw with conservative devices. DAC and
// ADC power scales linearly with sample rate, so the 10 GS/s lanes
// cost twice the Table I 5 GS/s figures.
func (p PIXEL) UnitPower() float64 {
	c := device.Powers(device.Conservative)
	rate := p.ClockHz / c.SampleRate      // 2x
	nLanes := p.Bits * p.Bits             // 64 bit-product lanes
	return float64(2*nLanes)*c.DAC*rate + // weight + input DACs
		float64(nLanes)*c.MRR +
		float64(nLanes-1)*c.MZM +
		float64(p.Bits)*c.ADC*rate +
		float64(p.Bits)*c.TIA
}

// Units returns how many OMACs fit the budget.
func (p PIXEL) Units() int {
	u := int(p.PowerBudget / p.UnitPower())
	if u < 1 {
		u = 1
	}
	return u
}

// Power returns the scaled design's power.
func (p PIXEL) Power() float64 {
	return float64(p.Units()) * p.UnitPower()
}

// Evaluate runs a network through the PIXEL model: total MACs spread
// over Units() OMACs at one MAC per cycle.
func (p PIXEL) Evaluate(m nn.Model) Result {
	macs := m.TotalMACs()
	cycles := ceilDiv(macs, int64(p.Units()))
	lat := float64(cycles) / p.ClockHz
	pw := p.Power()
	return Result{
		Model:       m.Name,
		Design:      "PIXEL (60 W)",
		Latency:     lat,
		Energy:      pw * lat,
		EDP:         pw * lat * lat,
		Power:       pw,
		Wavelengths: p.Bits,
	}
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}
