package baseline

import (
	"albireo/internal/device"
	"albireo/internal/nn"
	"albireo/internal/units"
)

// The paper (Section V) forgoes comparison with HolyLight and DNNARA
// "because holding them to a 60 W power budget using realistic
// photonic device parameters renders them impractical for competitive
// CNN inference". These rough models substantiate that claim with the
// same Table I device pricing used for PIXEL and DEAP-CNN. The
// inventories are deliberately coarse (the architectures are complex);
// the conclusion only needs an order of magnitude.

// HolyLight models the microdisk-based matrix-vector design
// (Liu et al., DATE 2019): per lane, bit-parallel microdisk arrays
// with per-bit converters. Priced with Table I conservative devices, a
// single 16x16 8-bit tile's converter population dominates.
type HolyLight struct {
	// TileDim is the matrix-vector tile dimension.
	TileDim int
	// Bits is the operand precision.
	Bits int
	// ClockHz is the optical clock.
	ClockHz float64
	// PowerBudget caps the scaled design.
	PowerBudget float64
}

// NewHolyLight returns the 60 W configuration.
func NewHolyLight() HolyLight {
	return HolyLight{TileDim: 16, Bits: 8, ClockHz: 5 * units.Giga, PowerBudget: 60}
}

// TilePower prices one tile: TileDim input DACs per bit-plane,
// TileDim^2 microdisks (priced as MRRs), TileDim ADCs, TileDim TIAs.
// Bit-parallel operation replicates the disk array per bit.
func (h HolyLight) TilePower() float64 {
	p := device.Powers(device.Conservative)
	disks := float64(h.TileDim*h.TileDim*h.Bits) * p.MRR
	dacs := float64(h.TileDim*h.Bits) * p.DAC
	adcs := float64(h.TileDim) * p.ADC
	tias := float64(h.TileDim) * p.TIA
	return disks + dacs + adcs + tias
}

// Tiles returns how many tiles fit the budget (at least 1 - the claim
// is about what that one tile can do).
func (h HolyLight) Tiles() int {
	n := int(h.PowerBudget / h.TilePower())
	if n < 1 {
		n = 1
	}
	return n
}

// Throughput returns MACs per second at the budget: each tile computes
// TileDim^2 MACs per cycle.
func (h HolyLight) Throughput() float64 {
	return float64(h.Tiles()) * float64(h.TileDim*h.TileDim) * h.ClockHz
}

// Evaluate maps a network by raw MAC count.
func (h HolyLight) Evaluate(m nn.Model) Result {
	lat := float64(m.TotalMACs()) / h.Throughput()
	pw := float64(h.Tiles()) * h.TilePower()
	return Result{
		Model:   m.Name,
		Design:  "HolyLight (60 W, rough)",
		Latency: lat,
		Energy:  pw * lat,
		EDP:     pw * lat * lat,
		Power:   pw,
	}
}

// DNNARA models the residue-number-system design (Peng et al., ICPP
// 2020): one-hot RNS encoding routes each operand through 2x2 optical
// switch meshes. A moduli set covering 8-bit dynamic range (e.g.
// {5, 7, 8, 9} -> 2520 states) needs one-hot rails per modulus, each
// rail with its own modulator and detector, plus converters per
// residue channel - the device count per MAC is far beyond a weighted
// WDM design.
type DNNARA struct {
	// Moduli is the RNS moduli set.
	Moduli []int
	// ClockHz is the mesh clock.
	ClockHz float64
	// PowerBudget caps the scaled design.
	PowerBudget float64
}

// NewDNNARA returns the 60 W configuration with the {5,7,8,9} moduli.
func NewDNNARA() DNNARA {
	return DNNARA{Moduli: []int{5, 7, 8, 9}, ClockHz: 5 * units.Giga, PowerBudget: 60}
}

// UnitPower prices one RNS MAC unit: per modulus m, a one-hot rail of
// m modulator MRRs and m detector lanes (TIA), one DAC per operand per
// modulus, and one ADC per modulus for the residue readout.
func (d DNNARA) UnitPower() float64 {
	p := device.Powers(device.Conservative)
	var total float64
	for _, m := range d.Moduli {
		total += float64(m)*p.MRR + float64(m)*p.TIA + 2*p.DAC + p.ADC
	}
	return total
}

// Units returns the budgeted unit count.
func (d DNNARA) Units() int {
	n := int(d.PowerBudget / d.UnitPower())
	if n < 1 {
		n = 1
	}
	return n
}

// Throughput returns MACs per second: one MAC per unit per cycle.
func (d DNNARA) Throughput() float64 {
	return float64(d.Units()) * d.ClockHz
}

// Evaluate maps a network by raw MAC count.
func (d DNNARA) Evaluate(m nn.Model) Result {
	lat := float64(m.TotalMACs()) / d.Throughput()
	pw := float64(d.Units()) * d.UnitPower()
	return Result{
		Model:   m.Name,
		Design:  "DNNARA (60 W, rough)",
		Latency: lat,
		Energy:  pw * lat,
		EDP:     pw * lat * lat,
		Power:   pw,
	}
}
