package lint

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

var (
	fixtureOnce sync.Once
	fixtureMod  *Module
	fixtureErr  error
)

// fixtureModule loads the self-contained module under testdata/mod
// once and shares it across the module-rule tests. The nested go.mod
// keeps the fixture invisible to the repo's own build and lint walk
// while giving the loader a real multi-package module to type-check.
func fixtureModule(t *testing.T) *Module {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureMod, fixtureErr = LoadModule(filepath.Join("testdata", "mod"))
	})
	if fixtureErr != nil {
		t.Fatalf("load fixture module: %v", fixtureErr)
	}
	return fixtureMod
}

// moduleFindings renders one rule set's findings over the fixture
// module as "path:line: [rule] message" strings.
func moduleFindings(t *testing.T, rules []*Rule) []string {
	t.Helper()
	var got []string
	for _, fd := range CheckModule(fixtureModule(t), rules) {
		got = append(got, fmt.Sprintf("%s:%d: [%s] %s", fd.Pos.Filename, fd.Pos.Line, fd.Rule, fd.Message))
	}
	return got
}

func TestLoadModuleFixture(t *testing.T) {
	m := fixtureModule(t)
	if m.Path != "fixturemod" {
		t.Errorf("module path = %q, want fixturemod", m.Path)
	}
	wantPkgs := []string{"internal/cg", "internal/det", "internal/fleet", "internal/hot"}
	if len(m.Packages) != len(wantPkgs) {
		t.Fatalf("got %d packages, want %d", len(m.Packages), len(wantPkgs))
	}
	for i, p := range m.Packages {
		if p.Dir != wantPkgs[i] {
			t.Errorf("package %d dir = %q, want %q", i, p.Dir, wantPkgs[i])
		}
		if p.Types == nil || p.Info == nil {
			t.Errorf("package %s missing type-check results", p.Dir)
		}
		for _, err := range p.TypeErrors {
			t.Errorf("package %s type error: %v", p.Dir, err)
		}
		if p.ImportPath != "fixturemod/"+p.Dir {
			t.Errorf("package %s import path = %q", p.Dir, p.ImportPath)
		}
	}
	f := m.FileAt("internal/hot/hot.go")
	if f == nil {
		t.Fatal("FileAt(internal/hot/hot.go) = nil")
	}
	if f.Info == nil || f.Pkg == nil {
		t.Error("loaded file missing Info/Pkg back-references")
	}
}

// TestLoadRepositoryTypeClean pins the loader to the real module: the
// albireo tree must type-check with zero errors, or every type-aware
// rule silently degrades to its syntactic fallback.
func TestLoadRepositoryTypeClean(t *testing.T) {
	t.Parallel()
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load repo module: %v", err)
	}
	if m.Path != "albireo" {
		t.Errorf("module path = %q, want albireo", m.Path)
	}
	for _, p := range m.Packages {
		for _, terr := range p.TypeErrors {
			t.Errorf("package %s: %v", p.Dir, terr)
		}
	}
}

// TestTypeAwareShadowing runs the determinism rule over the fixture
// module: det.localShadow calls Float64 on a local value named rand,
// which only type resolution can tell apart from the math/rand
// package. Zero findings means the resolution is exact.
func TestTypeAwareShadowing(t *testing.T) {
	got := moduleFindings(t, []*Rule{Determinism()})
	if len(got) != 0 {
		t.Errorf("want no determinism findings in fixture module, got %q", got)
	}
}
