package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrderPackages are the module subtrees whose mutex discipline is
// machine-checked: the fleet scheduler (the lock graph multi-node
// scale-out will multiply) and the core chip model.
var lockOrderPackages = []string{"internal/fleet", "internal/core"}

// maxLockPaths bounds the per-function path enumeration; functions
// with more branch combinations are skipped (conservative: no
// findings) rather than risking exponential blowup.
const maxLockPaths = 512

// LockOrder checks mutex discipline in the fleet and core packages:
//
//   - lock-inversion: mutex class A is acquired while B is held on one
//     code path and B while A on another (classic deadlock cycle),
//     including acquisitions made by callees while a lock is held
//   - self-deadlock: a function (or a callee reachable from it)
//     acquires a mutex class already held on the path
//   - lock-without-unlock: a path reaches return (or the end of the
//     function) with a mutex still held and no defer-unlock armed
//   - double-unlock: a path unlocks a mutex it already released
//
// Mutex identity is type-aware: a selector like s.mu resolves to the
// (named type, field) class, so s.mu in different methods is the same
// lock class while two instances of different types are not.
// Functions whose branch structure exceeds the path budget are
// skipped. Helpers that only unlock (callback under a caller-held
// lock) are not flagged: an unlock of a mutex the function never
// locked is assumed caller-held.
func LockOrder() *Rule {
	rule := &Rule{
		Name:     "lock-order",
		Doc:      "type-aware mutex discipline for internal/fleet and internal/core: no lock-order inversions, no self-deadlock through the call graph, every Lock paired with Unlock or defer Unlock on every path, no double unlock",
		Severity: Error,
	}
	rule.ModuleCheck = func(m *Module, r *ModuleReporter) {
		g := BuildCallGraph(m)
		an := &lockAnalysis{g: g, r: r, acquiresMemo: map[*types.Func]map[string]bool{}}
		var nodes []*FuncNode
		for _, node := range g.Nodes() {
			if node.File.IsTest || !inLockScope(node.File) {
				continue
			}
			nodes = append(nodes, node)
		}
		for _, node := range nodes {
			an.checkFunc(node)
		}
		an.reportInversions()
	}
	return rule
}

func inLockScope(f *File) bool {
	for _, pkg := range lockOrderPackages {
		if f.InPackage(pkg) {
			return true
		}
	}
	return false
}

// lockClass names a mutex for cross-function identity: for a field
// selector, "pkg.Type.field"; for a plain identifier, a
// function-local name that never matches across functions.
func lockClass(info *types.Info, x ast.Expr) string {
	x = unparen(x)
	switch v := x.(type) {
	case *ast.SelectorExpr:
		if info != nil {
			if sel, ok := info.Selections[v]; ok {
				recv := sel.Recv()
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
				}
				if named, ok := recv.(*types.Named); ok {
					return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + v.Sel.Name
				}
			}
		}
		return exprString(v)
	case *ast.Ident:
		return "local:" + v.Name
	}
	return exprString(x)
}

// exprString renders a short, stable spelling of an expression.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.CallExpr:
		return exprString(v.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	}
	return "expr"
}

// mutexOp classifies a statement-level call as a Lock or Unlock on a
// sync.Mutex/RWMutex-typed receiver. Returns the lock class, whether
// it locks (vs unlocks), and ok.
func mutexOp(f *File, call *ast.CallExpr) (class string, isLock bool, ok bool) {
	sel, selOk := unparen(call.Fun).(*ast.SelectorExpr)
	if !selOk {
		return "", false, false
	}
	var locks bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return "", false, false
	}
	if !isMutexExpr(f.Info, sel.X) {
		return "", false, false
	}
	return lockClass(f.Info, sel.X), locks, true
}

// isMutexExpr reports whether e's type is sync.Mutex or sync.RWMutex
// (directly or through a pointer/embedded alias). Without type info
// it falls back to the receiver being named "mu"-ish.
func isMutexExpr(info *types.Info, e ast.Expr) bool {
	if info != nil {
		if tv, ok := info.Types[unparen(e)]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
					(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
					return true
				}
			}
			return false
		}
	}
	name := exprString(e)
	return strings.HasSuffix(strings.ToLower(name), "mu")
}

// acquireSite is one Lock call while another class was held.
type acquireSite struct {
	held, acquired string
	file           *File
	pos            token.Pos
	fn             string
}

type lockAnalysis struct {
	g *lockGraphish
	r *ModuleReporter
	// orders records held->acquired edges for inversion detection.
	orders []acquireSite
	// acquiresMemo caches the transitive lock classes a function may
	// acquire.
	acquiresMemo map[*types.Func]map[string]bool
}

// lockGraphish aliases CallGraph (kept separate for clarity of what
// the analysis needs).
type lockGraphish = CallGraph

// pathState is the per-path simulation state.
type pathState struct {
	// held maps class -> Lock position (acquisition order preserved
	// in heldOrder).
	held      map[string]token.Pos
	heldOrder []string
	// deferred counts armed defer-unlocks per class.
	deferred map[string]int
	// released marks classes this path locked and then unlocked (for
	// double-unlock detection).
	released map[string]bool
	ended    bool
}

func (s *pathState) clone() *pathState {
	c := &pathState{
		held:      make(map[string]token.Pos, len(s.held)),
		heldOrder: append([]string{}, s.heldOrder...),
		deferred:  make(map[string]int, len(s.deferred)),
		released:  make(map[string]bool, len(s.released)),
	}
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	for k := range s.released {
		c.released[k] = true
	}
	return c
}

// checkFunc simulates every path through one function.
func (an *lockAnalysis) checkFunc(node *FuncNode) {
	paths := []*pathState{{
		held:     map[string]token.Pos{},
		deferred: map[string]int{},
		released: map[string]bool{},
	}}
	paths = an.walkStmts(node, node.Decl.Body.List, paths)
	for _, p := range paths {
		if !p.ended {
			an.checkExit(node, p)
		}
	}
}

// checkExit reports locks still held at a path's end without an armed
// defer-unlock.
func (an *lockAnalysis) checkExit(node *FuncNode, p *pathState) {
	for _, class := range p.heldOrder {
		pos, stillHeld := p.held[class]
		if !stillHeld {
			continue
		}
		if p.deferred[class] > 0 {
			continue
		}
		an.r.Reportf(node.File, pos, "%s locked here is not released on every path (missing Unlock or defer Unlock)", displayClass(class))
	}
}

// displayClass strips the local: prefix for messages.
func displayClass(class string) string {
	return strings.TrimPrefix(class, "local:")
}

// walkStmts threads every path state through a statement list,
// branching at control flow. The returned states are the live paths
// after the list (ended paths are checked and retained with
// ended=true so callers stop extending them).
func (an *lockAnalysis) walkStmts(node *FuncNode, stmts []ast.Stmt, paths []*pathState) []*pathState {
	for _, stmt := range stmts {
		if len(paths) > maxLockPaths {
			return paths[:0] // budget exceeded: give up on this function
		}
		var next []*pathState
		for _, p := range paths {
			if p.ended {
				next = append(next, p)
				continue
			}
			next = append(next, an.walkStmt(node, stmt, p)...)
		}
		paths = next
	}
	return paths
}

// walkStmt advances one path through one statement, possibly
// splitting it.
func (an *lockAnalysis) walkStmt(node *FuncNode, stmt ast.Stmt, p *pathState) []*pathState {
	switch v := stmt.(type) {
	case *ast.ExprStmt:
		an.applyExpr(node, v.X, p)
		return []*pathState{p}
	case *ast.DeferStmt:
		if class, isLock, ok := mutexOp(node.File, v.Call); ok && !isLock {
			p.deferred[class]++
		} else {
			an.applyCallEdges(node, v.Call, p)
		}
		return []*pathState{p}
	case *ast.GoStmt:
		// The goroutine body runs on its own stack with no locks
		// held; its declaration-level discipline is checked when its
		// enclosing declaration is (literals are part of this decl and
		// conservatively skipped here).
		return []*pathState{p}
	case *ast.ReturnStmt:
		for _, res := range v.Results {
			an.applyExpr(node, res, p)
		}
		an.checkExit(node, p)
		p.ended = true
		return []*pathState{p}
	case *ast.BranchStmt:
		// break/continue/goto: end the path conservatively (no
		// held-lock claim at a branch).
		p.ended = true
		return []*pathState{p}
	case *ast.BlockStmt:
		return an.walkStmts(node, v.List, []*pathState{p})
	case *ast.IfStmt:
		if v.Init != nil {
			an.walkStmt(node, v.Init, p)
		}
		an.applyExpr(node, v.Cond, p)
		thenPath := p.clone()
		thenPaths := an.walkStmts(node, v.Body.List, []*pathState{thenPath})
		var elsePaths []*pathState
		if v.Else != nil {
			elsePaths = an.walkStmt(node, v.Else, p)
		} else {
			elsePaths = []*pathState{p}
		}
		return append(thenPaths, elsePaths...)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return an.walkBranchy(node, stmt, p)
	case *ast.ForStmt:
		// Analyze the body once (0-or-1 iteration abstraction).
		if v.Init != nil {
			an.walkStmt(node, v.Init, p)
		}
		if v.Cond != nil {
			an.applyExpr(node, v.Cond, p)
		}
		skip := p.clone()
		bodyPaths := an.walkStmts(node, v.Body.List, []*pathState{p})
		// A path that ended inside the loop via break is conservative;
		// merge body-survivors with the skip path.
		return append(bodyPaths, skip)
	case *ast.RangeStmt:
		skip := p.clone()
		bodyPaths := an.walkStmts(node, v.Body.List, []*pathState{p})
		return append(bodyPaths, skip)
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			an.applyExpr(node, rhs, p)
		}
		return []*pathState{p}
	case *ast.LabeledStmt:
		return an.walkStmt(node, v.Stmt, p)
	default:
		return []*pathState{p}
	}
}

// walkBranchy handles switch/type-switch/select: each case body is an
// alternative path, plus fall-through-none for switches without a
// default.
func (an *lockAnalysis) walkBranchy(node *FuncNode, stmt ast.Stmt, p *pathState) []*pathState {
	var bodies [][]ast.Stmt
	hasDefault := false
	collect := func(body *ast.BlockStmt) {
		for _, cc := range body.List {
			switch c := cc.(type) {
			case *ast.CaseClause:
				bodies = append(bodies, c.Body)
				if c.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				bodies = append(bodies, c.Body)
				if c.Comm == nil {
					hasDefault = true
				}
			}
		}
	}
	switch v := stmt.(type) {
	case *ast.SwitchStmt:
		if v.Init != nil {
			an.walkStmt(node, v.Init, p)
		}
		collect(v.Body)
	case *ast.TypeSwitchStmt:
		collect(v.Body)
	case *ast.SelectStmt:
		collect(v.Body)
		hasDefault = true // select blocks until a case runs
	}
	var out []*pathState
	for _, body := range bodies {
		out = append(out, an.walkStmts(node, body, []*pathState{p.clone()})...)
	}
	if !hasDefault || len(bodies) == 0 {
		out = append(out, p)
	}
	return out
}

// applyExpr scans an expression for mutex operations and call edges
// (in evaluation order as far as the AST preserves it).
func (an *lockAnalysis) applyExpr(node *FuncNode, e ast.Expr, p *pathState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literal bodies run later, not on this path
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, isLock, ok := mutexOp(node.File, call); ok {
			if isLock {
				an.lock(node, call, class, p)
			} else {
				an.unlock(node, call, class, p)
			}
			return false
		}
		an.applyCallEdges(node, call, p)
		return true
	})
}

// lock applies a Lock call to the path.
func (an *lockAnalysis) lock(node *FuncNode, call *ast.CallExpr, class string, p *pathState) {
	if _, already := p.held[class]; already {
		an.r.Reportf(node.File, call.Pos(), "%s is already held on this path: locking it again self-deadlocks", displayClass(class))
		return
	}
	for _, heldClass := range p.heldOrder {
		if _, still := p.held[heldClass]; still {
			an.orders = append(an.orders, acquireSite{
				held: heldClass, acquired: class,
				file: node.File, pos: call.Pos(), fn: node.Obj.Name(),
			})
		}
	}
	p.held[class] = call.Pos()
	p.heldOrder = append(p.heldOrder, class)
	delete(p.released, class)
}

// unlock applies an Unlock call to the path.
func (an *lockAnalysis) unlock(node *FuncNode, call *ast.CallExpr, class string, p *pathState) {
	if _, ok := p.held[class]; ok {
		delete(p.held, class)
		p.released[class] = true
		return
	}
	if p.released[class] {
		an.r.Reportf(node.File, call.Pos(), "%s is unlocked twice on this path", displayClass(class))
		return
	}
	// Never locked here: assume a caller-held contract (the *Locked
	// helper convention) and say nothing.
}

// applyCallEdges propagates lock acquisition through calls made while
// holding a mutex: callee acquisitions order after every held class,
// and re-acquiring a held class is a self-deadlock.
func (an *lockAnalysis) applyCallEdges(node *FuncNode, call *ast.CallExpr, p *pathState) {
	if len(p.held) == 0 {
		return
	}
	callees := an.calleesAt(node, call)
	for _, callee := range callees {
		acq := an.transitiveAcquires(callee, map[*types.Func]bool{})
		for class := range acq {
			if _, held := p.held[class]; held {
				an.r.Reportf(node.File, call.Pos(), "call to %s acquires %s while it is already held: self-deadlock", callee.Name(), displayClass(class))
				continue
			}
			for _, heldClass := range p.heldOrder {
				if _, still := p.held[heldClass]; still {
					an.orders = append(an.orders, acquireSite{
						held: heldClass, acquired: class,
						file: node.File, pos: call.Pos(),
						fn: node.Obj.Name() + " -> " + callee.Name(),
					})
				}
			}
		}
	}
}

// calleesAt finds the resolved callees of one call site in the node's
// edge list.
func (an *lockAnalysis) calleesAt(node *FuncNode, call *ast.CallExpr) []*types.Func {
	for _, e := range node.Edges {
		if e.Site == call {
			return e.Callees
		}
	}
	return nil
}

// transitiveAcquires returns the lock classes a function may acquire,
// directly or through callees (memoized; cycles cut by the visiting
// set). Only cross-function (field-resolved) classes propagate -
// local mutexes cannot collide with a caller's.
func (an *lockAnalysis) transitiveAcquires(fn *types.Func, visiting map[*types.Func]bool) map[string]bool {
	if memo, ok := an.acquiresMemo[fn]; ok {
		return memo
	}
	if visiting[fn] {
		return nil
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	node := an.g.Node(fn)
	if node == nil {
		return nil
	}
	out := map[string]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, isLock, ok := mutexOp(node.File, call); ok && isLock && !strings.HasPrefix(class, "local:") {
			out[class] = true
		}
		return true
	})
	for _, e := range node.Edges {
		for _, callee := range e.Callees {
			for class := range an.transitiveAcquires(callee, visiting) {
				out[class] = true
			}
		}
	}
	an.acquiresMemo[fn] = out
	return out
}

// reportInversions finds A-before-B vs B-before-A pairs in the
// recorded acquisition orders and reports each inverted site pair
// once.
func (an *lockAnalysis) reportInversions() {
	type key struct{ a, b string }
	byPair := map[key][]acquireSite{}
	for _, s := range an.orders {
		byPair[key{s.held, s.acquired}] = append(byPair[key{s.held, s.acquired}], s)
	}
	reported := map[key]bool{}
	var keys []key
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		rev := key{k.b, k.a}
		if k.a == k.b || reported[k] || reported[rev] {
			continue
		}
		revSites, ok := byPair[rev]
		if !ok {
			continue
		}
		reported[k] = true
		site := byPair[k][0]
		other := revSites[0]
		otherPos := other.file.Fset.Position(other.pos)
		an.r.Reportf(site.file, site.pos,
			"lock-order inversion: %s acquired while %s is held (in %s), but the reverse order occurs in %s at %s:%d",
			displayClass(k.b), displayClass(k.a), site.fn,
			other.fn, other.file.RelPath, otherPos.Line)
	}
}
