package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked module package: the parsed non-test
// files plus the go/types objects resolved for them. Test files are
// parsed but not type-checked (they ride along on Module.Files so the
// per-file rules still see them).
type Package struct {
	// Dir is the module-relative directory, e.g. "internal/core".
	Dir string
	// ImportPath is the full import path, e.g. "albireo/internal/core".
	ImportPath string
	// Files are the non-test files, type-checked together.
	Files []*File
	// Types is the checked package object (possibly incomplete when
	// TypeErrors is non-empty; the checker is run in lenient mode).
	Types *types.Package
	// Info holds the identifier resolutions for Files.
	Info *types.Info
	// TypeErrors collects what the lenient type-check could not
	// resolve. Rules degrade to syntactic behavior on affected nodes.
	TypeErrors []error
}

// Module is a fully loaded module: every package type-checked with
// the standard library importer, plus the parsed-only test files.
// It is the input to module-level rules (call-graph analyses).
type Module struct {
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// Path is the module path declared in go.mod ("" when unknown).
	Path string
	Fset *token.FileSet
	// Packages are the type-checked packages, sorted by Dir.
	Packages []*Package
	// Files is every parsed file - package files and test files -
	// sorted by RelPath.
	Files []*File
}

// FileAt returns the loaded file with the given module-relative path,
// or nil.
func (m *Module) FileAt(rel string) *File {
	for _, f := range m.Files {
		if f.RelPath == rel {
			return f
		}
	}
	return nil
}

// modulePath extracts the module path from a go.mod file's contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				return unq
			}
			return rest
		}
	}
	return ""
}

// rawPackage is a package directory mid-load: parsed, not yet
// type-checked.
type rawPackage struct {
	dir        string // module-relative
	importPath string
	files      []*File
	imports    []string // module-internal import paths
	checked    bool
	inProgress bool
	pkg        *Package
}

// LoadModule parses and type-checks every package under root, which
// must be (or live inside) a module root. Type-checking is lenient:
// errors are recorded per package, never fatal, so analyzers see as
// much resolved type information as the source allows. Only the
// standard library importer is used; the loader adds no dependencies.
func LoadModule(root string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modRoot := moduleRoot(absRoot)
	mod := &Module{Root: modRoot, Fset: token.NewFileSet()}
	if gomod, err := os.ReadFile(filepath.Join(modRoot, "go.mod")); err == nil {
		mod.Path = modulePath(gomod)
	}

	// Pass 1: parse every .go file, grouped by directory.
	byDir := map[string]*rawPackage{}
	walkErr := filepath.WalkDir(modRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != modRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		rel, err := filepath.Rel(modRoot, p)
		if err != nil {
			rel = p
		}
		f, err := ParseFile(mod.Fset, p, rel)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		mod.Files = append(mod.Files, f)
		if f.IsTest {
			return nil // parsed for per-file rules, never type-checked
		}
		dir := f.Dir()
		rp := byDir[dir]
		if rp == nil {
			importPath := mod.Path
			if dir != "." {
				if importPath != "" {
					importPath += "/" + dir
				} else {
					importPath = dir
				}
			}
			rp = &rawPackage{dir: dir, importPath: importPath}
			byDir[dir] = rp
		}
		rp.files = append(rp.files, f)
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	sort.Slice(mod.Files, func(i, j int) bool { return mod.Files[i].RelPath < mod.Files[j].RelPath })

	// Pass 2: record module-internal imports for topological checking.
	byImportPath := map[string]*rawPackage{}
	for _, rp := range byDir {
		byImportPath[rp.importPath] = rp
		seen := map[string]bool{}
		for _, f := range rp.files {
			for _, ip := range f.Imports {
				if mod.Path != "" && (ip == mod.Path || strings.HasPrefix(ip, mod.Path+"/")) && !seen[ip] {
					seen[ip] = true
					rp.imports = append(rp.imports, ip)
				}
			}
		}
		sort.Strings(rp.imports)
	}

	// Pass 3: type-check in dependency order.
	checker := &moduleChecker{
		mod:   mod,
		raw:   byImportPath,
		std:   importer.Default(),
		types: map[string]*types.Package{},
	}
	var dirs []string
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		checker.check(byDir[dir])
	}
	for _, dir := range dirs {
		mod.Packages = append(mod.Packages, byDir[dir].pkg)
	}
	return mod, nil
}

// moduleChecker type-checks raw packages, resolving module-internal
// imports from its own results and everything else through the
// standard library's compiled-export importer (with a from-source
// fallback for toolchains without export data installed).
type moduleChecker struct {
	mod   *Module
	raw   map[string]*rawPackage
	std   types.Importer
	src   types.Importer
	types map[string]*types.Package
}

// Import implements types.Importer over the two-tier resolution.
func (c *moduleChecker) Import(importPath string) (*types.Package, error) {
	if p := c.types[importPath]; p != nil {
		return p, nil
	}
	if rp := c.raw[importPath]; rp != nil {
		c.check(rp)
		if p := c.types[importPath]; p != nil {
			return p, nil
		}
		return nil, fmt.Errorf("lint: module package %s failed to check", importPath)
	}
	p, err := c.std.Import(importPath)
	if err == nil {
		return p, nil
	}
	if c.src == nil {
		c.src = importer.ForCompiler(c.mod.Fset, "source", nil)
	}
	return c.src.Import(importPath)
}

// check type-checks one raw package (idempotent; import cycles are
// broken by recording the package as in progress and letting the
// checker report the unresolved import).
func (c *moduleChecker) check(rp *rawPackage) {
	if rp.checked || rp.inProgress {
		return
	}
	rp.inProgress = true
	defer func() { rp.inProgress = false; rp.checked = true }()

	pkg := &Package{Dir: rp.dir, ImportPath: rp.importPath, Files: rp.files}
	rp.pkg = pkg

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:    c,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	asts := make([]*ast.File, len(rp.files))
	for i, f := range rp.files {
		asts[i] = f.AST
	}
	tpkg, _ := conf.Check(rp.importPath, c.mod.Fset, asts, info) // lenient: errors recorded, not fatal
	pkg.Types = tpkg
	pkg.Info = info
	c.types[rp.importPath] = tpkg
	for _, f := range rp.files {
		f.Info = info
		f.Pkg = pkg
	}
}
