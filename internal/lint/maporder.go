package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIterationOrder flags `for range` over a map value in the
// deterministic internal/ packages when the loop body feeds an
// order-sensitive sink - emits output, appends to a slice declared
// outside the loop, records telemetry, or sends on a channel -
// without the result being sorted afterwards. Map iteration order is
// randomized per run, so any of these turns bit-identical inputs into
// run-dependent output, breaking the Conv/ConvConcurrent equality and
// golden-file invariants.
//
// Order-insensitive bodies are clean: accumulating into scalars,
// writing into another map, or mutating the ranged map's values. An
// append is also clean when the destination slice is sorted (sort.* or
// slices.Sort*) after the loop in the same block - the collect-then-
// sort idiom obs.WritePrometheus uses.
func MapIterationOrder() *Rule {
	return &Rule{
		Name:     "map-iteration-determinism",
		Doc:      "range over a map feeding output, appends, telemetry, or channel sends is run-order-dependent; collect keys and sort first (append-then-sort after the loop is clean)",
		Severity: Error,
		Applies: func(f *File) bool {
			return f.InPackage("internal") && !f.InPackage("internal/lint") && !f.IsTest
		},
		Check: func(f *File, r *Reporter) {
			if f.Info == nil {
				return // needs type resolution to know what is a map
			}
			// Walk with a parent stack so each range statement can see
			// the statements that follow it in its enclosing block.
			var stack []ast.Node
			ast.Inspect(f.AST, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if rs, ok := n.(*ast.RangeStmt); ok && rangesOverMap(f.Info, rs) {
					checkMapRange(f, rs, stack, r)
				}
				stack = append(stack, n)
				return true
			})
		},
	}
}

// rangesOverMap reports whether the range statement iterates a map.
func rangesOverMap(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange scans one map-range body for order-sensitive sinks.
func checkMapRange(f *File, rs *ast.RangeStmt, stack []ast.Node, r *Reporter) {
	after := stmtsAfter(rs, stack)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // runs later, not per iteration
		case *ast.RangeStmt:
			if v != rs && rangesOverMap(f.Info, v) {
				return false // inner map range reported on its own
			}
		case *ast.SendStmt:
			r.Reportf(v.Pos(), "channel send inside a map range publishes values in randomized order; collect into a slice, sort, then send")
			return true
		case *ast.AssignStmt:
			checkAppendSink(f, v, after, r)
			return true
		case *ast.CallExpr:
			checkCallSink(f, v, r)
			return true
		}
		return true
	})
}

// stmtsAfter returns the statements that lexically follow stmt in its
// innermost enclosing block (where a post-loop sort would live).
func stmtsAfter(stmt ast.Stmt, stack []ast.Node) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch v := stack[i].(type) {
		case *ast.BlockStmt:
			list = v.List
		case *ast.CaseClause:
			list = v.Body
		case *ast.CommClause:
			list = v.Body
		default:
			continue
		}
		for j, s := range list {
			if s == stmt {
				return list[j+1:]
			}
		}
	}
	return nil
}

// checkAppendSink flags `dst = append(dst, ...)` inside a map range
// when dst outlives the loop and is not sorted afterwards.
func checkAppendSink(f *File, as *ast.AssignStmt, after []ast.Stmt, r *Reporter) {
	for _, rhs := range as.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || !f.isBuiltin(id) {
			continue
		}
		if len(call.Args) == 0 {
			continue
		}
		dst := exprString(unparen(call.Args[0]))
		if sortedAfter(f, dst, after) {
			continue
		}
		r.Reportf(call.Pos(), "append inside a map range builds %s in randomized order; sort it after the loop (sort.Slice/slices.Sort) or iterate sorted keys", dst)
	}
}

// sortedAfter reports whether any statement after the loop calls a
// sort.* or slices.Sort* function mentioning dst.
func sortedAfter(f *File, dst string, after []ast.Stmt) bool {
	for _, s := range after {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			isSortPkg := (pkg.Name == f.ImportName("sort") && f.ImportName("sort") != "") ||
				(pkg.Name == f.ImportName("slices") && f.ImportName("slices") != "" && strings.HasPrefix(sel.Sel.Name, "Sort"))
			if !isSortPkg {
				return true
			}
			for _, arg := range call.Args {
				if mentionsExpr(arg, dst) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsExpr reports whether the expression tree contains a
// sub-expression spelling dst.
func mentionsExpr(e ast.Expr, dst string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && exprString(sub) == dst {
			found = true
			return false
		}
		return true
	})
	return found
}

// outputFuncs are the fmt functions that write to a stream (Sprint*
// returns a value and is judged by where that value flows, not here).
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// checkCallSink flags calls inside a map range that emit output or
// record telemetry.
func checkCallSink(f *File, call *ast.CallExpr, r *Reporter) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// fmt.Print*/Fprint*: direct output per iteration.
	if pkg, ok := unparen(sel.X).(*ast.Ident); ok {
		if fmtName := f.ImportName("fmt"); fmtName != "" && pkg.Name == fmtName && !f.shadowed(pkg) && outputFuncs[sel.Sel.Name] {
			r.Reportf(call.Pos(), "fmt.%s inside a map range emits lines in randomized order; collect, sort, then print", sel.Sel.Name)
			return
		}
	}
	// Telemetry: any call that resolves into internal/obs (package
	// functions or methods on obs types) records events in map order.
	if f.Info == nil {
		return
	}
	if fn, ok := f.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), "internal/obs") && f.Pkg != nil &&
		!strings.HasSuffix(f.Pkg.ImportPath, "internal/obs") {
		r.Reportf(call.Pos(), "telemetry call %s.%s inside a map range records events in randomized order; iterate sorted keys", exprString(sel.X), sel.Sel.Name)
	}
}
