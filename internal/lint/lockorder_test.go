package lint

import "testing"

// TestLockOrderGolden covers the four defect classes on the fixture
// Pool: the Drain/Admit acquisition-order inversion (reported once,
// at the later site, naming the earlier one), a Lock that an error
// return leaks, a double unlock, and a self-deadlock through a
// locking callee. Clean (defer-paired and branch-covered unlocks),
// the caller-held *Locked helper, and the suppressed handoff must all
// stay silent.
func TestLockOrderGolden(t *testing.T) {
	got := moduleFindings(t, []*Rule{LockOrder()})
	assertFindings(t, got, []string{
		"internal/fleet/locks.go:31: [lock-order] lock-order inversion: fleet.Pool.mu acquired while fleet.Pool.admit is held (in Admit), but the reverse order occurs in Drain at internal/fleet/locks.go:21",
		"internal/fleet/locks.go:38: [lock-order] fleet.Pool.mu locked here is not released on every path (missing Unlock or defer Unlock)",
		"internal/fleet/locks.go:52: [lock-order] fleet.Pool.mu is unlocked twice on this path",
		"internal/fleet/locks.go:59: [lock-order] call to bump acquires fleet.Pool.mu while it is already held: self-deadlock",
	})
}

// TestLockOrderScope pins the rule to internal/fleet and
// internal/core: the same mutex misuse in another package must not
// report (package det and hot hold no locks, and the rule's Applies
// is driven by inLockScope, exercised here structurally).
func TestLockOrderScope(t *testing.T) {
	t.Parallel()
	cases := []struct {
		rel  string
		want bool
	}{
		{"internal/fleet/locks.go", true},
		{"internal/fleet/sub/deep.go", true},
		{"internal/core/chip.go", true},
		{"internal/obs/obs.go", false},
		{"cmd/albireo-serve/main.go", false},
	}
	for _, c := range cases {
		f := &File{RelPath: c.rel}
		if got := inLockScope(f); got != c.want {
			t.Errorf("inLockScope(%s) = %v, want %v", c.rel, got, c.want)
		}
	}
}
