// Fixture for the float-equality rule: exact ==/!= on floats is a
// tolerance bug outside tests.
package fixture

import "math"

func compare(a, b float64, n int) bool {
	if a == 1.0 {
		return true
	}
	if math.Sqrt(a) != b {
		return false
	}
	if n == 1 { // allowed: integer comparison
		return true
	}
	if math.IsNaN(a) == true { // allowed: math predicate returns bool
		return false
	}
	//lint:ignore float-equality fixtures demonstrate suppression
	if b != 0.5 {
		return false
	}
	return float64(n) == a
}
