// Fixture for the hot-path-alloc rule: make() inside a function whose
// doc comment carries a //hot: line allocates per modulation cycle.
package fixture

// accumulate is the innermost loop.
//
//hot: per-cycle; must not allocate.
func accumulate(dst []float64) []float64 {
	tmp := make([]float64, len(dst))
	for i := range tmp {
		tmp[i] = dst[i] * 2
	}
	return tmp
}

//hot: per-cycle entry point.
func entry(vals []float64) map[int]float64 {
	//lint:ignore hot-path-alloc fixtures demonstrate suppression
	out := make(map[int]float64, len(vals))
	for i, v := range vals {
		out[i] = v
	}
	return out
}

// cold is unmarked: construction-time allocation is fine.
func cold(n int) []float64 {
	return make([]float64, n)
}
