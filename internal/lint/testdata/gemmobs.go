// Fixture pinning the obs-determinism rule's coverage of the GEMM
// engine's instrumentation: the matrix path emits the same span and
// divergence telemetry as the conv path, and a wall-clock stamp in
// either would break the bit-identical-registry contract that the
// fleet replay gate depends on. GEMM spans are cycle-denominated;
// wall time belongs to an injected obs.Clock at the cmd boundary.
package fixture

import "time"

func stampGEMMSpan(started time.Time) float64 {
	elapsed := time.Since(started).Seconds()
	_ = time.Now()
	return elapsed + cyclesForTile(9) // allowed: cycle-denominated
}

func cyclesForTile(ng int) float64 { return float64(ng * 45) }
