// Fixture for the determinism rule: the only legal randomness in
// simulation packages is an injected, seeded *rand.Rand, and wall
// clocks never leak into results.
package fixture

import (
	"math/rand"
	"time"
)

func draws(rng *rand.Rand) float64 {
	a := rand.Float64()
	b := rng.Float64() // allowed: injected stream
	rand.Seed(42)
	when := time.Now()
	//lint:ignore determinism fixtures demonstrate suppression
	c := rand.Intn(5)
	//lint:ignore determinism
	d := rand.Intn(9) // directive above has no reason: still reported
	_ = when
	return a + b + float64(c) + float64(d)
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // allowed: constructing a stream
}

func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start) // allowed: timestamps passed in as parameters
}
