// Fixture pinning the obs-determinism rule's coverage of
// internal/fleet: scheduler telemetry (queue depth, batch sizes,
// drain/restore events) must be tick/event-denominated so identical
// request traces produce bit-identical registry snapshots. Batch
// linger counts injected Tick calls, never wall time.
package fixture

import "time"

func lingerWithWallClock(enqueued time.Time) bool {
	if time.Since(enqueued) > time.Millisecond {
		return true
	}
	_ = time.Now()
	return countTicks(1) // allowed: tick-denominated
}

func countTicks(n int64) bool { return n > 0 }
