// Fixture for the goroutine-hygiene heuristic: a go statement with no
// WaitGroup or channel anywhere in the enclosing function is probably
// fire-and-forget work nobody joins.
package fixture

import "sync"

func leak() {
	go work()
}

func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // allowed: WaitGroup evidence in scope
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func channelJoined() {
	done := make(chan struct{})
	go func() { // allowed: channel evidence in scope
		close(done)
	}()
	<-done
}

func acknowledged() {
	//lint:ignore goroutine-hygiene fixture documents a fire-and-forget goroutine
	go work()
}

func work() {}
