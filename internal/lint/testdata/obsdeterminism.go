// Fixture for the obs-determinism rule: instrumentation inside
// internal/ must stamp telemetry with simulation cycles, never wall
// time; wall clocks are injected at the cmd boundary via obs.Clock.
package fixture

import "time"

type clock interface{ Now() time.Time }

func instrument(c clock, cycle int64) {
	start := time.Now()
	_ = time.Since(start)
	//lint:ignore obs-determinism fixtures demonstrate suppression
	_ = time.Now()
	_ = c.Now()     // allowed: injected clock
	recordAt(cycle) // allowed: cycle-denominated
}

func recordAt(cycle int64) { _ = cycle }

func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start) // allowed: timestamps passed in as parameters
}
