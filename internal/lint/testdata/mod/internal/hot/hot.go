// Package hot is the golden fixture for the hotpath-alloc-proof
// module rule: a //hot:-marked root whose call graph reaches
// allocating constructs directly, through an interface method, and
// through a function value.
package hot

import "fmt"

// Summer is implemented by two module types; the interface call in
// step fans out to both.
type Summer interface {
	Sum(xs []float64) float64
}

// CleanSummer accumulates without allocating.
type CleanSummer struct{ total float64 }

// Sum adds in place.
func (c *CleanSummer) Sum(xs []float64) float64 {
	for _, x := range xs {
		c.total += x
	}
	return c.total
}

// DirtySummer allocates a scratch slice per call.
type DirtySummer struct{}

// Sum copies before adding.
func (DirtySummer) Sum(xs []float64) float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	var t float64
	for _, x := range tmp {
		t += x
	}
	return t
}

//hot: per-cycle fixture root
func Step(s Summer, xs []float64, f func(float64) float64) float64 {
	v := s.Sum(xs)
	v = f(v)
	return v + direct(xs)
}

// direct is statically reachable from Step and allocates in several
// distinct ways the scanner must each report.
func direct(xs []float64) float64 {
	out := make([]float64, 0, len(xs))
	out = append(out, xs...)
	label := "n=" + itoa(len(xs))
	fmt.Println(label)
	g := func(x float64) float64 { return x * 2 }
	if len(xs) == 0 {
		panic(fmt.Sprintf("hot: empty input %d", len(xs))) //lint:ignore exit-hygiene fixture invariant; caller bug
	}
	//lint:ignore hotpath-alloc-proof fixture: sanctioned scratch growth, reason stated
	keep := append([]float64(nil), out...)
	return g(keep[0])
}

// Square is address-taken in New and signature-matches the f
// parameter of Step, so the indirect call fans out to it.
func Square(x float64) float64 {
	box := []float64{x}
	return box[0] * box[0]
}

// New wires the fixture together (cold path; its own literals are
// not reachable from the //hot: root and must not be reported).
func New() (Summer, func(float64) float64) {
	return &CleanSummer{}, Square
}

// itoa is an alloc-free formatter (lookup of interned strings) so the
// concat in direct is the fixture's only string-concat finding even
// though itoa is itself reachable from the hot root.
func itoa(v int) string {
	names := [...]string{"0", "1", "2", "3"}
	if v >= 0 && v < len(names) {
		return names[v]
	}
	return "many"
}
