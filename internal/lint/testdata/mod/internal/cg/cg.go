// Package cg is the golden fixture for the call-graph builder:
// direct calls, interface fan-out across two implementations, and
// indirection through a stored function value.
package cg

// Runner has two module implementations; Drive's dynamic call must
// fan out to both.
type Runner interface {
	Run(n int) int
}

// Fast is one implementation.
type Fast struct{}

// Run doubles.
func (Fast) Run(n int) int { return n * 2 }

// Slow is the other implementation (pointer receiver, so the method
// set check must consider *Slow).
type Slow struct{ bias int }

// Run adds the bias.
func (s *Slow) Run(n int) int { return n + s.bias }

// Drive calls through the interface and then directly.
func Drive(r Runner, n int) int {
	return r.Run(n) + helper(n)
}

// helper is the static callee.
func helper(n int) int { return n + 1 }

// twice is address-taken in Pick, so Indirect's call through the
// function value fans out to it.
func twice(n int) int { return n * 2 }

// thrice is never address-taken; the func-value fan-out must exclude
// it even though the signature matches.
func thrice(n int) int { return n * 3 }

// Pick stores a function value.
func Pick() func(int) int { return twice }

// Indirect calls through a function-typed parameter.
func Indirect(f func(int) int, n int) int { return f(n) }

// use keeps thrice alive for the compiler without taking its address
// in value position... it calls it directly, which is not an
// address-taking use.
func use(n int) int { return thrice(n) }
