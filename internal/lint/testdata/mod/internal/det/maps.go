// Package det is the golden fixture for map-iteration-determinism:
// map ranges feeding output, unsorted appends, and channel sends are
// findings; the collect-then-sort idiom, scalar accumulation, and
// map-to-map writes stay silent. It also exercises the type-aware
// shadowing resolution: a local value named rand is not the package.
package det

import (
	"fmt"
	"math/rand"
	"sort"
)

// Emit prints one line per entry straight out of map order.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Collect appends keys without sorting them.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Publish sends values in map order.
func Publish(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}

// CollectSorted is the blessed idiom: append, then sort after the
// loop.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum accumulates a scalar: order-insensitive, no finding.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes into another map: order-insensitive, no finding.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Debug keeps one deliberately unsorted dump behind a suppression.
func Debug(m map[string]int) {
	for k := range m {
		//lint:ignore map-iteration-determinism fixture: debug dump, order explicitly does not matter
		fmt.Println(k)
	}
}

// localShadow draws from a struct named rand, not the global source;
// the type-aware shadowing check must stay silent here.
func localShadow(r *rand.Rand) float64 {
	rand := fakeSource{seed: r.Int63()}
	return rand.Float64()
}

type fakeSource struct{ seed int64 }

// Float64 is deterministic: derived from the injected seed only.
func (f fakeSource) Float64() float64 {
	return float64(f.seed%1000) / 1000
}
