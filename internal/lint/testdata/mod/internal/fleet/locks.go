// Package fleet is the golden fixture for the lock-order module rule:
// one inversion pair, one missing-unlock branch, one double unlock,
// one self-deadlock through a callee, a suppressed site, and the
// clean idioms (defer unlock, caller-held *Locked helpers) that must
// stay silent.
package fleet

import "sync"

// Pool owns two mutexes whose acquisition order the fixture inverts.
type Pool struct {
	mu    sync.Mutex
	admit sync.Mutex
	n     int
}

// Drain takes mu then admit: the forward order.
func (p *Pool) Drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.admit.Lock()
	p.n--
	p.admit.Unlock()
}

// Admit takes admit then mu: the inverted order the rule must pair
// with Drain's.
func (p *Pool) Admit() {
	p.admit.Lock()
	defer p.admit.Unlock()
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// LeakOnError locks and forgets the unlock on the error branch.
func (p *Pool) LeakOnError(fail bool) error {
	p.mu.Lock()
	if fail {
		return errFixture
	}
	p.n++
	p.mu.Unlock()
	return nil
}

// DoubleRelease unlocks twice on the fall-through path.
func (p *Pool) DoubleRelease() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
	p.mu.Unlock()
}

// Reenter calls a locking helper while already holding the lock.
func (p *Pool) Reenter() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bump()
}

// bump takes the pool lock itself; calling it from under mu
// self-deadlocks.
func (p *Pool) bump() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// HandoffLocked mutates under a caller-held lock: the unlock-only /
// no-op pattern must not be reported.
func (p *Pool) HandoffLocked() {
	p.n++
}

// Clean shows the blessed shapes: defer-paired lock and a branchy
// unlock that covers every path.
func (p *Pool) Clean(fast bool) int {
	p.mu.Lock()
	if fast {
		n := p.n
		p.mu.Unlock()
		return n
	}
	n := p.n * 2
	p.mu.Unlock()
	return n
}

// Suppressed leaks by design and says why.
func (p *Pool) Suppressed() {
	//lint:ignore lock-order fixture: handoff protocol releases in HandoffUnlock
	p.mu.Lock()
	p.n++
}

// HandoffUnlock completes Suppressed's handoff.
func (p *Pool) HandoffUnlock() {
	p.n--
	p.mu.Unlock()
}

var errFixture = errSentinel{}

type errSentinel struct{}

func (errSentinel) Error() string { return "fixture" }
