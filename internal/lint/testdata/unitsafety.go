// Fixture for the unit-safety rule: SI scale factors and physical
// constants must come from internal/units, and dB-named values never
// meet linear-named values in arithmetic without a conversion.
package fixture

const boltzmann = 1.380649e-23

const channelSpacing = 1e-9

func budget(lossDB, powerWatts, otherDB float64) float64 {
	bad := lossDB * powerWatts
	rate := 12.5e9 + powerWatts
	//lint:ignore unit-safety dimensionless fixture floor
	floor := 1e-6
	diff := lossDB - otherDB // allowed: both operands live in dB
	gain := 0.25 * powerWatts
	return bad + rate + floor + diff + gain
}
