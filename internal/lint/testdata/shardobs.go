// Fixture pinning the obs-determinism rule's coverage of the shard
// fan-out instrumentation: fan-out/sub counters, per-window shard
// stage stamps, and the merge-barrier settle all feed the registry
// snapshot the golden bit-identity tests compare, so a wall-clock
// read anywhere in the shard path would make identical sharded
// traces diverge. Merge latency counts virtual ticks booked by the
// service model, never elapsed wall time.
package fixture

import "time"

func settleMergeBarrier(fanned time.Time, windows int) int64 {
	if time.Since(fanned) > time.Millisecond {
		return 0
	}
	_ = time.Now()
	return shardTicksFor(windows) // allowed: tick-denominated
}

func shardTicksFor(windows int) int64 { return int64(2 + 18/windows) }
