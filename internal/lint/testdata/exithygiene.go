// Fixture for the exit-hygiene rule: library code returns errors; it
// never exits the process.
package fixture

import (
	"errors"
	"log"
	"os"
)

func shutdown(code int) error {
	if code > 2 {
		os.Exit(code)
	}
	if code > 1 {
		log.Fatalf("code %d", code)
	}
	if code > 0 {
		panic("unreachable")
	}
	return errors.New("returned, not exited") // allowed
}

func checked(ok bool) {
	if !ok {
		panic("invariant") //lint:ignore exit-hygiene trailing suppression on an invariant check
	}
}
