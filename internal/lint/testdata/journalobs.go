// Fixture pinning the obs-determinism rule's coverage of
// internal/journal: a record's chain hash covers its payload, so any
// wall-clock stamp would make identical request histories hash to
// different chains. Journal telemetry counts appends, drops, and
// sequence numbers - never durations.
package fixture

import "time"

func stampRecord() int64 {
	appendedAt := time.Now()
	_ = time.Since(appendedAt)
	return countAppends(1) // allowed: event-denominated
}

func countAppends(n int64) int64 { return n }
