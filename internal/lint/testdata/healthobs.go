// Fixture pinning the obs-determinism rule's coverage of
// internal/health: BIST telemetry must be probe/cycle-denominated so
// identical scans of identical chips produce bit-identical reports and
// counters. A wall clock anywhere in the scan path would break that.
package fixture

import "time"

func scanWithWallClock(probes int64) {
	start := time.Now()
	_ = time.Since(start)
	recordProbes(probes) // allowed: probe-count-denominated
}

func recordProbes(n int64) { _ = n }
