package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Default returns the full albireo rule set.
func Default() []*Rule {
	return []*Rule{
		Determinism(),
		ObsDeterminism(),
		UnitSafety(),
		FloatEquality(),
		ExitHygiene(),
		GoroutineHygiene(),
		HotPathAllocProof(),
		LockOrder(),
		MapIterationOrder(),
	}
}

// shadowed reports whether an identifier used in package-selector
// position actually resolves to a local declaration (a variable named
// like the package) rather than the import. With type information the
// answer is exact: the identifier either Uses a *types.PkgName or it
// does not. Without it (standalone-parsed file) the old go/ast object
// heuristic is the fallback.
func (f *File) shadowed(id *ast.Ident) bool {
	if f.Info != nil {
		if obj, ok := f.Info.Uses[id]; ok {
			_, isPkg := obj.(*types.PkgName)
			return !isPkg
		}
		// Unresolved identifier in a checked file: not a package name.
		return true
	}
	return id.Obj != nil && id.Obj.Kind != ast.Pkg
}

// isBuiltin reports whether the identifier resolves to a Go builtin
// (make, append, panic, close, ...) rather than a shadowing local
// declaration. Exact under type information; syntactic Obj check as
// the standalone-parse fallback.
func (f *File) isBuiltin(id *ast.Ident) bool {
	if f.Info != nil {
		if obj, ok := f.Info.Uses[id]; ok {
			_, isBuiltin := obj.(*types.Builtin)
			return isBuiltin
		}
		// panic() and friends resolve through Uses; an absent entry in
		// a checked file means a declaration or an unresolved name.
		return false
	}
	return id.Obj == nil
}

// simulationFile reports whether the file is part of the simulator
// library proper (everything under internal/ except the lint tooling
// itself).
func simulationFile(f *File) bool {
	return f.InPackage("internal") && !f.InPackage("internal/lint") && !f.IsTest
}

// physicsPackages are the packages whose numbers carry physical
// dimensions, and which therefore must spell SI scale factors through
// internal/units. internal/units itself defines the constants and is
// exempt.
var physicsPackages = []string{
	"internal/photonics",
	"internal/noise",
	"internal/circuit",
	"internal/device",
	"internal/waveform",
	"internal/memory",
	"internal/perf",
	"internal/baseline",
	"internal/sim",
	"internal/control",
	"internal/core",
	"internal/experiments",
}

// forbiddenRandFuncs are the package-level math/rand (and v2)
// functions that draw from the shared global source. Constructors
// (New, NewSource, NewZipf, NewPCG, NewChaCha8) stay allowed: they are
// exactly how a deterministic injected stream is built.
var forbiddenRandFuncs = map[string]bool{
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// Determinism forbids the global math/rand functions and time.Now in
// simulation packages. Every stochastic quantity must flow from an
// injected, seeded *rand.Rand (the noise.Params.Sample pattern) so
// that Conv and ConvConcurrent stay bit-identical and every run is
// reproducible from its seed.
func Determinism() *Rule {
	return &Rule{
		Name:     "determinism",
		Doc:      "forbid global math/rand functions and time.Now() in internal/ simulation packages; inject a seeded *rand.Rand instead",
		Severity: Error,
		Applies:  simulationFile,
		Check: func(f *File, r *Reporter) {
			randName := f.ImportName("math/rand")
			randV2Name := f.ImportName("math/rand/v2")
			timeName := f.ImportName("time")
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok || f.shadowed(pkg) {
					return true
				}
				switch {
				case (pkg.Name == randName && randName != "") || (pkg.Name == randV2Name && randV2Name != ""):
					if sel.Sel.Name == "Seed" {
						r.Reportf(call.Pos(), "rand.Seed mutates the global source; build a private stream with rand.New(rand.NewSource(seed)) instead")
					} else if forbiddenRandFuncs[sel.Sel.Name] {
						r.Reportf(call.Pos(), "global rand.%s call breaks reproducibility; draw from an injected seeded *rand.Rand (see noise.Params.Sample)", sel.Sel.Name)
					}
				case pkg.Name == timeName && timeName != "" && sel.Sel.Name == "Now":
					r.Reportf(call.Pos(), "time.Now() in simulation code makes runs irreproducible; thread timestamps in as parameters")
				}
				return true
			})
		},
	}
}

// ObsDeterminism enforces the observability determinism contract:
// telemetry recorded by internal/ packages must be denominated in
// simulation cycles and event counts, never wall time, so that
// identical inputs always record bit-identical metrics (the
// Conv/ConvConcurrent snapshot-equality invariant). Wall time enters
// the system only at the cmd boundary through an injected obs.Clock;
// internal/obs itself hosts that boundary (WallClock) and is exempt.
// Unlike the determinism rule, this also flags time.Since - a wall
// clock read disguised as a duration - because "how long did this
// take" is exactly the measurement an instrumentation site is tempted
// to record.
func ObsDeterminism() *Rule {
	return &Rule{
		Name:     "obs-determinism",
		Doc:      "internal/ instrumentation must be cycle/event-denominated: no time.Now() or time.Since(); stamp events with simulation cycles, and inject obs.Clock at the cmd boundary for wall time",
		Severity: Error,
		Applies: func(f *File) bool {
			return f.InPackage("internal") && !f.InPackage("internal/obs") &&
				!f.InPackage("internal/lint") && !f.IsTest
		},
		Check: func(f *File, r *Reporter) {
			timeName := f.ImportName("time")
			if timeName == "" {
				return
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok || f.shadowed(pkg) || pkg.Name != timeName {
					return true
				}
				switch sel.Sel.Name {
				case "Now":
					r.Reportf(call.Pos(), "time.Now() at an instrumentation site; record simulation cycles or event counts, and take wall time only from an injected obs.Clock at the cmd boundary")
				case "Since":
					r.Reportf(call.Pos(), "time.Since() reads the wall clock; telemetry must be cycle-denominated (use obs.Span.EndAt with a cycle stamp, or an injected obs.Clock at the cmd boundary)")
				}
				return true
			})
		},
	}
}

// siPrefixNames maps a power-of-ten exponent to the internal/units
// constant that spells it.
var siPrefixNames = map[int]string{
	12: "Tera", 9: "Giga", 6: "Mega", 3: "Kilo",
	-3: "Milli", -6: "Micro", -9: "Nano", -12: "Pico",
	-15: "Femto", -18: "Atto",
}

// knownConstants maps literal spellings of physical constants to the
// internal/units name that must be used instead.
var knownConstants = map[string]string{
	"1.380649e-23":    "Boltzmann",
	"1.38e-23":        "Boltzmann",
	"1.602176634e-19": "ElementaryCharge",
	"1.6e-19":         "ElementaryCharge",
	"2.99792458e8":    "LightSpeed",
	"3e8":             "LightSpeed",
}

// siSuggestion inspects a float literal's source text and, if it is a
// bare SI scale factor (1e-9, 5e9, 12.5e6, ...) or a known physical
// constant, returns the units-package replacement to suggest.
func siSuggestion(lit string) (string, bool) {
	l := strings.ToLower(strings.ReplaceAll(lit, "_", ""))
	if strings.HasPrefix(l, "0x") {
		return "", false
	}
	if name, ok := knownConstants[l]; ok {
		return "units." + name, true
	}
	i := strings.IndexByte(l, 'e')
	if i < 0 {
		return "", false
	}
	mantissa, expStr := l[:i], l[i+1:]
	expStr = strings.TrimPrefix(expStr, "+")
	var exp int
	if _, err := fmt.Sscanf(expStr, "%d", &exp); err != nil {
		return "", false
	}
	name, ok := siPrefixNames[exp]
	if !ok {
		return "", false
	}
	if mantissa == "1" || mantissa == "1.0" {
		return "units." + name, true
	}
	return mantissa + " * units." + name, true
}

// dbNamed reports whether an identifier's name says the value is in
// decibels (LossDB, SpreadDB, RINdBcHz, powerDBm, ...).
func dbNamed(name string) bool {
	for _, suffix := range []string{"DB", "Db", "dB", "DBm", "dBm", "Dbm"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return strings.Contains(name, "dBc") || strings.Contains(name, "DBc") ||
		strings.Contains(name, "dBm") || strings.Contains(name, "DBm")
}

// linearNamed reports whether an identifier's name says the value is a
// linear-domain quantity (watts, transmission fraction, power ratio).
func linearNamed(name string) bool {
	l := strings.ToLower(name)
	for _, marker := range []string{"watt", "linear", "transmission", "ratio", "photocurrent"} {
		if strings.Contains(l, marker) {
			return true
		}
	}
	return false
}

// exprName extracts the identifier name an operand is known by: the
// ident itself or the field of a selector. "" when the operand has no
// simple name.
func exprName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.ParenExpr:
		return exprName(v.X)
	}
	return ""
}

// UnitSafety flags bare SI-prefix literals and physical constants in
// physics packages (use units.Nano, units.Boltzmann, ...) and
// arithmetic that mixes dB-named identifiers with linear-named ones
// without an explicit conversion.
func UnitSafety() *Rule {
	return &Rule{
		Name:     "unit-safety",
		Doc:      "physics packages must spell SI scale factors and physical constants via internal/units, and must not mix dB-named and linear-named values in arithmetic",
		Severity: Error,
		Applies: func(f *File) bool {
			if f.IsTest {
				return false
			}
			for _, pkg := range physicsPackages {
				if f.InPackage(pkg) {
					return true
				}
			}
			return false
		},
		Check: func(f *File, r *Reporter) {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.BasicLit:
					if v.Kind != token.FLOAT {
						return true
					}
					if sug, ok := siSuggestion(v.Value); ok {
						r.Reportf(v.Pos(), "bare SI literal %s: use %s", v.Value, sug)
					}
				case *ast.BinaryExpr:
					switch v.Op {
					case token.ADD, token.SUB, token.MUL, token.QUO:
					default:
						return true
					}
					xn, yn := exprName(v.X), exprName(v.Y)
					if (dbNamed(xn) && linearNamed(yn)) || (dbNamed(yn) && linearNamed(xn)) {
						r.Reportf(v.Pos(), "arithmetic mixes dB-named %q with linear-named %q; convert with units.DBToLinear/units.LinearToDB first", xn, yn)
					}
				}
				return true
			})
		},
	}
}

// nonFloatMathFuncs are math-package functions that return a bool or
// an integer, not a float, and so are fine to compare with == / !=.
// Float64bits/Float32bits comparisons are in fact the sanctioned way
// to test bit-identity.
var nonFloatMathFuncs = map[string]bool{
	"IsNaN": true, "IsInf": true, "Signbit": true,
	"Float64bits": true, "Float32bits": true, "Ilogb": true,
}

// floatExpr is the syntactic heuristic for "this expression is a
// float": a float literal, a float conversion, a math-package call, or
// any arithmetic over one of those. Identifiers are opaque without
// type information, so comparisons between two plainly-named float
// variables are not caught - the rule targets the common literal and
// math.* forms.
func floatExpr(f *File, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.FLOAT
	case *ast.ParenExpr:
		return floatExpr(f, v.X)
	case *ast.UnaryExpr:
		return floatExpr(f, v.X)
	case *ast.BinaryExpr:
		switch v.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return floatExpr(f, v.X) || floatExpr(f, v.Y)
		}
		return false
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && (id.Name == "float64" || id.Name == "float32") {
			return true
		}
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "math" && !f.shadowed(pkg) && !nonFloatMathFuncs[sel.Sel.Name] {
				return true
			}
		}
	}
	return false
}

// FloatEquality flags == and != between floating-point expressions
// outside test files: exact comparison of analog quantities is almost
// always a tolerance bug.
func FloatEquality() *Rule {
	return &Rule{
		Name:     "float-equality",
		Doc:      "flag ==/!= on floating-point expressions outside _test.go; compare with a tolerance instead",
		Severity: Error,
		Applies:  func(f *File) bool { return !f.IsTest },
		Check: func(f *File, r *Reporter) {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if floatExpr(f, be.X) || floatExpr(f, be.Y) {
					r.Reportf(be.Pos(), "floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps) or compare integer representations", be.Op)
				}
				return true
			})
		},
	}
}

// fatalLogFuncs are the log-package functions that terminate the
// process.
var fatalLogFuncs = map[string]bool{
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// ExitHygiene forbids process-terminating calls (os.Exit, log.Fatal*,
// panic) in internal/ library packages. Only cmd/ binaries own the
// exit; libraries return errors. Invariant checks on programmer error
// may stay as panics behind a //lint:ignore with a stated reason.
func ExitHygiene() *Rule {
	return &Rule{
		Name:     "exit-hygiene",
		Doc:      "internal/ libraries must not call os.Exit, log.Fatal*, log.Panic*, or panic; return errors (suppress with a reason for true invariants)",
		Severity: Error,
		Applies:  func(f *File) bool { return f.InPackage("internal") && !f.IsTest },
		Check: func(f *File, r *Reporter) {
			osName := f.ImportName("os")
			logName := f.ImportName("log")
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if fun.Name == "panic" && f.isBuiltin(fun) {
						r.Reportf(call.Pos(), "panic in library code; return an error to the caller")
					}
				case *ast.SelectorExpr:
					pkg, ok := fun.X.(*ast.Ident)
					if !ok || f.shadowed(pkg) {
						return true
					}
					if pkg.Name == osName && osName != "" && fun.Sel.Name == "Exit" {
						r.Reportf(call.Pos(), "os.Exit in library code; only cmd/ mains may exit the process")
					}
					if pkg.Name == logName && logName != "" && fatalLogFuncs[fun.Sel.Name] {
						r.Reportf(call.Pos(), "log.%s terminates the process from library code; return an error instead", fun.Sel.Name)
					}
				}
				return true
			})
		},
	}
}

// concurrencyEvidence reports whether a function body shows any sign
// of joining or communicating with the goroutines it launches:
// WaitGroup calls, channel types or operations, select statements, or
// close calls.
func concurrencyEvidence(f *File, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SelectorExpr:
			switch v.Sel.Name {
			case "Add", "Done", "Wait":
				found = true
			}
		case *ast.ChanType, *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel is a join; over a slice it is
			// harmless noise for this heuristic.
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "close" && f.isBuiltin(id) {
				found = true
			}
		}
		return !found
	})
	return found
}

// GoroutineHygiene is the warn-level heuristic for fire-and-forget
// goroutines: a go statement whose enclosing function shows no
// WaitGroup or channel synchronization is probably leaking work the
// caller cannot observe - and, in this simulator, racing the
// deterministic noise streams.
func GoroutineHygiene() *Rule {
	return &Rule{
		Name:     "goroutine-hygiene",
		Doc:      "warn on go statements with no WaitGroup/channel synchronization anywhere in the enclosing function (heuristic)",
		Severity: Warn,
		Applies:  func(f *File) bool { return !f.IsTest },
		Check: func(f *File, r *Reporter) {
			var stack []ast.Node
			ast.Inspect(f.AST, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if g, ok := n.(*ast.GoStmt); ok {
					if body := enclosingFuncBody(stack); body != nil && !concurrencyEvidence(f, body) {
						r.Reportf(g.Pos(), "go statement with no WaitGroup or channel synchronization in the enclosing function; join the goroutine or document why not")
					}
				}
				stack = append(stack, n)
				return true
			})
		},
	}
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal on the node stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.FuncDecl:
			return v.Body
		case *ast.FuncLit:
			return v.Body
		}
	}
	return nil
}

// hotMarked reports whether a doc comment contains a //hot: line. A
// function so marked declares itself per-cycle code under the
// zero-allocation contract; the hotpath-alloc-proof module rule
// (hotalloc.go) uses the marks as call-graph roots.
func hotMarked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//hot:") {
			return true
		}
	}
	return false
}
