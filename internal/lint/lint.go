// Package lint implements albireo's repo-specific static analyzer.
//
// The simulator's headline guarantees - bit-identical results between
// Conv and ConvConcurrent, SI units on every physical quantity, and
// noise draws that come only from injected *rand.Rand streams - are
// invariants nothing in the compiler enforces. This package builds a
// small analyzer framework on the standard library's go/parser,
// go/ast, and go/token (no external dependencies; go.mod stays empty)
// and ships the repo-specific rules that keep those invariants honest.
//
// Each rule may be suppressed at a single site with a directive
// comment carrying a mandatory reason:
//
//	//lint:ignore <rule> <reason>
//
// The directive applies to findings on its own line (trailing
// comment) or on the line immediately below (standalone comment). A
// directive without a reason is ignored, so suppressions stay
// self-documenting.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Severity classifies a rule's findings. Error findings fail the
// build; Warn findings are advisory (heuristic rules).
type Severity int

const (
	// Warn marks heuristic findings that are printed but do not fail
	// the run unless strict mode is requested.
	Warn Severity = iota
	// Error marks findings that must be fixed or suppressed.
	Error
)

// String returns "warn" or "error".
func (s Severity) String() string {
	if s == Warn {
		return "warn"
	}
	return "error"
}

// Finding is one rule violation at one source position.
type Finding struct {
	Pos      token.Position
	Rule     string
	Severity Severity
	Message  string
}

// String renders the finding in the canonical file:line:col form the
// CLI prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// File is the per-file context handed to each rule: the parsed AST plus
// the module-relative path rules use to scope themselves.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	// RelPath is the slash-separated path relative to the module
	// root, e.g. "internal/noise/noise.go". Rules scope on it.
	RelPath string
	// IsTest reports whether the file name ends in _test.go.
	IsTest bool
	// Imports maps the local name of each import to its path, e.g.
	// "rand" -> "math/rand".
	Imports map[string]string
}

// Dir returns the module-relative directory of the file.
func (f *File) Dir() string { return path.Dir(f.RelPath) }

// InPackage reports whether the file lives in pkg or below it, where
// pkg is a module-relative directory like "internal/core".
func (f *File) InPackage(pkg string) bool {
	return f.Dir() == pkg || strings.HasPrefix(f.Dir(), pkg+"/")
}

// ImportName returns the local identifier under which importPath is
// imported in this file, or "" if it is not imported.
func (f *File) ImportName(importPath string) string {
	for name, p := range f.Imports {
		if p == importPath {
			return name
		}
	}
	return ""
}

// Rule is one analyzer: a name findings are reported (and suppressed)
// under, a severity, a scope predicate, and the check itself.
type Rule struct {
	Name     string
	Doc      string
	Severity Severity
	// Applies reports whether the rule should run on the file at all.
	Applies func(*File) bool
	// Check inspects the file and reports findings.
	Check func(*File, *Reporter)
}

// Reporter collects findings for one (file, rule) pair.
type Reporter struct {
	file     *File
	rule     *Rule
	findings *[]Finding
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.file.Fset.Position(pos)
	p.Filename = r.file.RelPath
	*r.findings = append(*r.findings, Finding{
		Pos:      p,
		Rule:     r.rule.Name,
		Severity: r.rule.Severity,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ParseFile parses the Go source at diskPath and builds the File
// context, with relPath recorded as the module-relative path.
func ParseFile(fset *token.FileSet, diskPath, relPath string) (*File, error) {
	astF, err := parser.ParseFile(fset, diskPath, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return NewFile(fset, astF, relPath), nil
}

// NewFile builds the File context for an already-parsed AST.
func NewFile(fset *token.FileSet, astF *ast.File, relPath string) *File {
	imports := make(map[string]string, len(astF.Imports))
	for _, spec := range astF.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		name := path.Base(p)
		if spec.Name != nil {
			name = spec.Name.Name
		}
		imports[name] = p
	}
	return &File{
		Fset:    fset,
		AST:     astF,
		RelPath: filepath.ToSlash(relPath),
		IsTest:  strings.HasSuffix(relPath, "_test.go"),
		Imports: imports,
	}
}

// CheckFile runs every applicable rule on one parsed file and returns
// the surviving findings after //lint:ignore suppression, sorted by
// position.
func CheckFile(f *File, rules []*Rule) []Finding {
	var findings []Finding
	for _, rule := range rules {
		if rule.Applies != nil && !rule.Applies(f) {
			continue
		}
		rule.Check(f, &Reporter{file: f, rule: rule, findings: &findings})
	}
	findings = applySuppressions(f, findings)
	sortFindings(findings)
	return findings
}

// ignoreDirectivePrefix introduces a suppression comment.
const ignoreDirectivePrefix = "lint:ignore"

// applySuppressions drops findings covered by a well-formed
// //lint:ignore directive on the same line or the line above.
func applySuppressions(f *File, findings []Finding) []Finding {
	// suppressed maps rule name -> set of covered lines.
	suppressed := make(map[string]map[int]bool)
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, ignoreDirectivePrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, ignoreDirectivePrefix))
			if len(fields) < 2 {
				// Directive without a reason: not honored.
				continue
			}
			rule := fields[0]
			line := f.Fset.Position(c.Pos()).Line
			if suppressed[rule] == nil {
				suppressed[rule] = make(map[int]bool)
			}
			suppressed[rule][line] = true
			suppressed[rule][line+1] = true
		}
	}
	if len(suppressed) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, fd := range findings {
		if suppressed[fd.Rule][fd.Pos.Line] {
			continue
		}
		kept = append(kept, fd)
	}
	return kept
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Run lints every .go file under root (skipping testdata, vendor, and
// dot-directories) with the given rules. Paths in the returned
// findings are relative to the enclosing module root, located by
// walking up from root to the nearest go.mod; if none is found, root
// itself anchors the relative paths.
func Run(root string, rules []*Rule) ([]Finding, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modRoot := moduleRoot(absRoot)
	fset := token.NewFileSet()
	var findings []Finding
	walkErr := filepath.WalkDir(absRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != absRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		rel, err := filepath.Rel(modRoot, p)
		if err != nil {
			rel = p
		}
		f, err := ParseFile(fset, p, rel)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		findings = append(findings, CheckFile(f, rules)...)
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	sortFindings(findings)
	return findings, nil
}

// moduleRoot walks up from dir to the nearest directory containing
// go.mod. It falls back to dir when no go.mod is found.
func moduleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
