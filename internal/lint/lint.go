// Package lint implements albireo's repo-specific static analyzer.
//
// The simulator's headline guarantees - bit-identical results between
// Conv and ConvConcurrent, SI units on every physical quantity, and
// noise draws that come only from injected *rand.Rand streams - are
// invariants nothing in the compiler enforces. This package builds a
// type-aware analyzer framework on the standard library's go/parser,
// go/types, and go/importer (no external dependencies; go.mod stays
// empty) and ships the repo-specific rules that keep those invariants
// honest. LoadModule type-checks the whole module; per-file rules get
// resolved identifiers, and module rules (hotpath-alloc-proof,
// lock-order, map-iteration-determinism) get a static call graph over
// the module (see callgraph.go).
//
// Each rule may be suppressed at a single site with a directive
// comment carrying a mandatory reason:
//
//	//lint:ignore <rule> <reason>
//
// The directive applies to findings on its own line (trailing
// comment) or on the line immediately below (standalone comment). A
// directive without a reason is ignored, so suppressions stay
// self-documenting.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Severity classifies a rule's findings. Error findings fail the
// build; Warn findings are advisory (heuristic rules).
type Severity int

const (
	// Warn marks heuristic findings that are printed but do not fail
	// the run unless strict mode is requested.
	Warn Severity = iota
	// Error marks findings that must be fixed or suppressed.
	Error
)

// String returns "warn" or "error".
func (s Severity) String() string {
	if s == Warn {
		return "warn"
	}
	return "error"
}

// Finding is one rule violation at one source position.
type Finding struct {
	Pos      token.Position
	Rule     string
	Severity Severity
	Message  string
}

// String renders the finding in the canonical file:line:col form the
// CLI prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// File is the per-file context handed to each rule: the parsed AST plus
// the module-relative path rules use to scope themselves. Files loaded
// through LoadModule additionally carry go/types resolution (Info,
// Pkg); files parsed standalone leave them nil and rules fall back to
// syntactic heuristics.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	// RelPath is the slash-separated path relative to the module
	// root, e.g. "internal/noise/noise.go". Rules scope on it.
	RelPath string
	// IsTest reports whether the file name ends in _test.go.
	IsTest bool
	// Imports maps the local name of each import to its path, e.g.
	// "rand" -> "math/rand".
	Imports map[string]string
	// Info is the package's type-checker resolution (nil when the file
	// was parsed without loading its module).
	Info *types.Info
	// Pkg is the enclosing loaded package (nil without a module load).
	Pkg *Package
}

// Dir returns the module-relative directory of the file.
func (f *File) Dir() string { return path.Dir(f.RelPath) }

// InPackage reports whether the file lives in pkg or below it, where
// pkg is a module-relative directory like "internal/core".
func (f *File) InPackage(pkg string) bool {
	return f.Dir() == pkg || strings.HasPrefix(f.Dir(), pkg+"/")
}

// ImportName returns the local identifier under which importPath is
// imported in this file, or "" if it is not imported.
func (f *File) ImportName(importPath string) string {
	for name, p := range f.Imports {
		if p == importPath {
			return name
		}
	}
	return ""
}

// Rule is one analyzer: a name findings are reported (and suppressed)
// under, a severity, a scope predicate, and the check itself. A rule
// is either per-file (Check set) or module-wide (ModuleCheck set);
// module rules see the type-checked Module and run once per load.
type Rule struct {
	Name     string
	Doc      string
	Severity Severity
	// Applies reports whether the rule should run on the file at all.
	Applies func(*File) bool
	// Check inspects the file and reports findings (per-file rules).
	Check func(*File, *Reporter)
	// ModuleCheck inspects the whole loaded module (module rules:
	// call-graph and cross-function analyses).
	ModuleCheck func(*Module, *ModuleReporter)
}

// Reporter collects findings for one (file, rule) pair.
type Reporter struct {
	file     *File
	rule     *Rule
	findings *[]Finding
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.file.Fset.Position(pos)
	p.Filename = r.file.RelPath
	*r.findings = append(*r.findings, Finding{
		Pos:      p,
		Rule:     r.rule.Name,
		Severity: r.rule.Severity,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ParseFile parses the Go source at diskPath and builds the File
// context, with relPath recorded as the module-relative path.
func ParseFile(fset *token.FileSet, diskPath, relPath string) (*File, error) {
	astF, err := parser.ParseFile(fset, diskPath, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return NewFile(fset, astF, relPath), nil
}

// NewFile builds the File context for an already-parsed AST.
func NewFile(fset *token.FileSet, astF *ast.File, relPath string) *File {
	imports := make(map[string]string, len(astF.Imports))
	for _, spec := range astF.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		name := path.Base(p)
		if spec.Name != nil {
			name = spec.Name.Name
		}
		imports[name] = p
	}
	return &File{
		Fset:    fset,
		AST:     astF,
		RelPath: filepath.ToSlash(relPath),
		IsTest:  strings.HasSuffix(relPath, "_test.go"),
		Imports: imports,
	}
}

// ModuleReporter collects findings for one module rule. Positions are
// resolved against the module's FileSet and reported under the file's
// module-relative path.
type ModuleReporter struct {
	mod      *Module
	rule     *Rule
	findings *[]Finding
}

// Reportf records a finding at pos inside file f.
func (r *ModuleReporter) Reportf(f *File, pos token.Pos, format string, args ...any) {
	p := f.Fset.Position(pos)
	p.Filename = f.RelPath
	*r.findings = append(*r.findings, Finding{
		Pos:      p,
		Rule:     r.rule.Name,
		Severity: r.rule.Severity,
		Message:  fmt.Sprintf(format, args...),
	})
}

// CheckFile runs every applicable per-file rule on one parsed file and
// returns the surviving findings after //lint:ignore suppression,
// sorted by position. Module rules (ModuleCheck) are skipped; run them
// through CheckModule.
func CheckFile(f *File, rules []*Rule) []Finding {
	var findings []Finding
	for _, rule := range rules {
		if rule.Check == nil {
			continue
		}
		if rule.Applies != nil && !rule.Applies(f) {
			continue
		}
		rule.Check(f, &Reporter{file: f, rule: rule, findings: &findings})
	}
	findings = filterSuppressed(findings, suppressionsOf(f))
	sortFindings(findings)
	return findings
}

// CheckModule runs per-file rules over every file of the module and
// module rules over the module itself, applies //lint:ignore
// suppression, and returns the surviving findings sorted by position.
func CheckModule(m *Module, rules []*Rule) []Finding {
	var findings []Finding
	for _, f := range m.Files {
		for _, rule := range rules {
			if rule.Check == nil {
				continue
			}
			if rule.Applies != nil && !rule.Applies(f) {
				continue
			}
			rule.Check(f, &Reporter{file: f, rule: rule, findings: &findings})
		}
	}
	for _, rule := range rules {
		if rule.ModuleCheck == nil {
			continue
		}
		rule.ModuleCheck(m, &ModuleReporter{mod: m, rule: rule, findings: &findings})
	}
	sup := suppressions{}
	for _, f := range m.Files {
		sup.merge(f.RelPath, suppressionsOf(f))
	}
	findings = filterSuppressedByFile(findings, sup)
	sortFindings(findings)
	return findings
}

// ignoreDirectivePrefix introduces a suppression comment.
const ignoreDirectivePrefix = "lint:ignore"

// fileSuppressions maps rule name -> set of covered lines in one file.
type fileSuppressions map[string]map[int]bool

// suppressions maps module-relative file path -> that file's
// directive coverage.
type suppressions map[string]fileSuppressions

func (s suppressions) merge(rel string, fs fileSuppressions) {
	if len(fs) > 0 {
		s[rel] = fs
	}
}

// suppressionsOf collects the lines covered by well-formed
// //lint:ignore directives in f (the directive's own line and the
// line below).
func suppressionsOf(f *File) fileSuppressions {
	suppressed := fileSuppressions{}
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, ignoreDirectivePrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, ignoreDirectivePrefix))
			if len(fields) < 2 {
				// Directive without a reason: not honored.
				continue
			}
			rule := fields[0]
			line := f.Fset.Position(c.Pos()).Line
			if suppressed[rule] == nil {
				suppressed[rule] = make(map[int]bool)
			}
			suppressed[rule][line] = true
			suppressed[rule][line+1] = true
		}
	}
	return suppressed
}

// filterSuppressed drops findings covered by one file's directives.
func filterSuppressed(findings []Finding, sup fileSuppressions) []Finding {
	if len(sup) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, fd := range findings {
		if sup[fd.Rule][fd.Pos.Line] {
			continue
		}
		kept = append(kept, fd)
	}
	return kept
}

// filterSuppressedByFile drops findings covered by the directives of
// the file each finding lands in.
func filterSuppressedByFile(findings []Finding, sup suppressions) []Finding {
	if len(sup) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, fd := range findings {
		if sup[fd.Pos.Filename][fd.Rule][fd.Pos.Line] {
			continue
		}
		kept = append(kept, fd)
	}
	return kept
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Run lints every .go file under root (skipping testdata, vendor, and
// dot-directories) with the given rules. The enclosing module -
// located by walking up from root to the nearest go.mod - is loaded
// and type-checked once, per-file and module rules both run over it,
// and the findings are filtered to the subtree under root. Paths in
// the returned findings are relative to the module root; if no go.mod
// is found, root itself anchors the relative paths.
func Run(root string, rules []*Rule) ([]Finding, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := LoadModule(absRoot)
	if err != nil {
		return nil, err
	}
	findings := CheckModule(mod, rules)
	// Scope to the requested subtree (module rules see the whole
	// module; reports outside root are dropped, matching the CLI's
	// pattern semantics).
	if rel, err := filepath.Rel(mod.Root, absRoot); err == nil && rel != "." {
		prefix := filepath.ToSlash(rel) + "/"
		kept := findings[:0]
		for _, fd := range findings {
			if strings.HasPrefix(fd.Pos.Filename, prefix) {
				kept = append(kept, fd)
			}
		}
		findings = kept
	}
	return findings, nil
}

// moduleRoot walks up from dir to the nearest directory containing
// go.mod. It falls back to dir when no go.mod is found.
func moduleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
