package lint

import "testing"

// TestHotPathAllocProofGolden walks the fixture module from its one
// //hot: root (hot.Step) and checks the full interprocedural finding
// set: allocation in an interface implementation (DirtySummer.Sum),
// in a static callee (direct), and in an address-taken function
// reached through a func-value call (Square). The append behind a
// reasoned //lint:ignore and the alloc-free itoa/CleanSummer paths
// must stay silent, as must New's cold-path literals.
func TestHotPathAllocProofGolden(t *testing.T) {
	got := moduleFindings(t, []*Rule{HotPathAllocProof()})
	assertFindings(t, got, []string{
		"internal/hot/hot.go:31: [hotpath-alloc-proof] make() allocates in Sum, reachable from //hot: path Step -> Sum",
		"internal/hot/hot.go:50: [hotpath-alloc-proof] make() allocates in direct, reachable from //hot: path Step -> direct",
		"internal/hot/hot.go:51: [hotpath-alloc-proof] append() may grow past capacity and allocate in direct, reachable from //hot: path Step -> direct",
		"internal/hot/hot.go:52: [hotpath-alloc-proof] string concatenation allocates in direct, reachable from //hot: path Step -> direct",
		"internal/hot/hot.go:53: [hotpath-alloc-proof] variadic call packs arguments into a new slice in direct, reachable from //hot: path Step -> direct",
		"internal/hot/hot.go:53: [hotpath-alloc-proof] call to fmt.Println allocates, reachable from //hot: path Step -> direct",
		"internal/hot/hot.go:53: [hotpath-alloc-proof] interface boxing of concrete argument allocates in direct, reachable from //hot: path Step -> direct",
		"internal/hot/hot.go:54: [hotpath-alloc-proof] closure literal allocates in direct, reachable from //hot: path Step -> direct",
		"internal/hot/hot.go:66: [hotpath-alloc-proof] slice literal allocates in Square, reachable from //hot: path Step -> Square",
	})
}

// TestHotPathAllocProofPanicExempt pins the panic carve-out: direct's
// invariant panic formats its message with fmt.Sprintf, and no
// finding lands on that line (56) - a panicking path has left the
// steady state.
func TestHotPathAllocProofPanicExempt(t *testing.T) {
	for _, fd := range CheckModule(fixtureModule(t), []*Rule{HotPathAllocProof()}) {
		if fd.Pos.Filename == "internal/hot/hot.go" && fd.Pos.Line == 56 {
			t.Errorf("finding inside panic arguments: %s", fd)
		}
	}
}

// TestHotPathAllocProofSeverity pins the promotion from the old
// advisory heuristic to a build-failing proof.
func TestHotPathAllocProofSeverity(t *testing.T) {
	t.Parallel()
	if sev := HotPathAllocProof().Severity; sev != Error {
		t.Fatalf("hotpath-alloc-proof severity = %v, want Error", sev)
	}
}
