package lint

import "testing"

// TestMapIterationGolden covers the three sink classes over a ranged
// map - printing, appending without a sort, and channel sends - and
// the silent cases: append-then-sort (CollectSorted), scalar
// accumulation (Sum), map-to-map writes (Invert), and a suppressed
// debug dump with a stated reason.
func TestMapIterationGolden(t *testing.T) {
	got := moduleFindings(t, []*Rule{MapIterationOrder()})
	assertFindings(t, got, []string{
		"internal/det/maps.go:17: [map-iteration-determinism] fmt.Printf inside a map range emits lines in randomized order; collect, sort, then print",
		"internal/det/maps.go:25: [map-iteration-determinism] append inside a map range builds keys in randomized order; sort it after the loop (sort.Slice/slices.Sort) or iterate sorted keys",
		"internal/det/maps.go:33: [map-iteration-determinism] channel send inside a map range publishes values in randomized order; collect into a slice, sort, then send",
	})
}

// TestMapIterationNeedsTypes pins the graceful degradation: on a file
// parsed without its module (no go/types resolution) the rule stays
// silent rather than guessing what is a map.
func TestMapIterationNeedsTypes(t *testing.T) {
	t.Parallel()
	got := fixture(t, "determinism.go", "internal/noise/fixture.go", []*Rule{MapIterationOrder()})
	if len(got) != 0 {
		t.Errorf("want no findings without type info, got %q", got)
	}
}
