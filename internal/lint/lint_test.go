package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"testing"
)

// fixture lints one testdata file under a pretend module-relative
// path and returns "line: [rule] message" strings.
func fixture(t *testing.T, name, relPath string, rules []*Rule) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := ParseFile(fset, filepath.Join("testdata", name), relPath)
	if err != nil {
		t.Fatalf("parse fixture %s: %v", name, err)
	}
	var got []string
	for _, fd := range CheckFile(f, rules) {
		got = append(got, fmt.Sprintf("%d: [%s] %s", fd.Pos.Line, fd.Rule, fd.Message))
	}
	return got
}

func assertFindings(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d\ngot:  %q\nwant: %q", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	t.Parallel()
	got := fixture(t, "determinism.go", "internal/noise/fixture.go", []*Rule{Determinism()})
	assertFindings(t, got, []string{
		"12: [determinism] global rand.Float64 call breaks reproducibility; draw from an injected seeded *rand.Rand (see noise.Params.Sample)",
		"14: [determinism] rand.Seed mutates the global source; build a private stream with rand.New(rand.NewSource(seed)) instead",
		"15: [determinism] time.Now() in simulation code makes runs irreproducible; thread timestamps in as parameters",
		// Line 17 is suppressed; line 19's directive has no reason and
		// is therefore not honored.
		"19: [determinism] global rand.Intn call breaks reproducibility; draw from an injected seeded *rand.Rand (see noise.Params.Sample)",
	})
}

func TestDeterminismOutOfScope(t *testing.T) {
	t.Parallel()
	// cmd/ binaries and test files may use wall clocks and global rand.
	for _, rel := range []string{"cmd/albireo-sim/main.go", "internal/noise/fixture_test.go", "internal/lint/fixture.go"} {
		if got := fixture(t, "determinism.go", rel, []*Rule{Determinism()}); len(got) != 0 {
			t.Errorf("relpath %s: want no findings, got %q", rel, got)
		}
	}
}

func TestObsDeterminismGolden(t *testing.T) {
	t.Parallel()
	got := fixture(t, "obsdeterminism.go", "internal/sim/fixture.go", []*Rule{ObsDeterminism()})
	assertFindings(t, got, []string{
		"11: [obs-determinism] time.Now() at an instrumentation site; record simulation cycles or event counts, and take wall time only from an injected obs.Clock at the cmd boundary",
		"12: [obs-determinism] time.Since() reads the wall clock; telemetry must be cycle-denominated (use obs.Span.EndAt with a cycle stamp, or an injected obs.Clock at the cmd boundary)",
		// Line 14 is suppressed with a reason; the injected-clock call
		// and the cycle-denominated record are clean.
	})
}

func TestObsDeterminismOutOfScope(t *testing.T) {
	t.Parallel()
	// cmd/ owns the wall clock, internal/obs hosts the sanctioned
	// Clock boundary, and tests are exempt.
	for _, rel := range []string{
		"cmd/albireo-serve/main.go",
		"internal/obs/clock.go",
		"internal/sim/fixture_test.go",
		"internal/lint/fixture.go",
	} {
		if got := fixture(t, "obsdeterminism.go", rel, []*Rule{ObsDeterminism()}); len(got) != 0 {
			t.Errorf("relpath %s: want no findings, got %q", rel, got)
		}
	}
}

func TestObsDeterminismCoversHealth(t *testing.T) {
	t.Parallel()
	// internal/health is inside the rule's scope: BIST reports and
	// counters must be probe/cycle-denominated, never wall-clocked.
	got := fixture(t, "healthobs.go", "internal/health/fixture.go", []*Rule{ObsDeterminism()})
	assertFindings(t, got, []string{
		"10: [obs-determinism] time.Now() at an instrumentation site; record simulation cycles or event counts, and take wall time only from an injected obs.Clock at the cmd boundary",
		"11: [obs-determinism] time.Since() reads the wall clock; telemetry must be cycle-denominated (use obs.Span.EndAt with a cycle stamp, or an injected obs.Clock at the cmd boundary)",
	})
}

func TestObsDeterminismCoversFleet(t *testing.T) {
	t.Parallel()
	// internal/fleet is inside the rule's scope: batch linger and
	// re-probe cadence count injected Scheduler.Tick calls; the wall
	// ticker realizing those ticks lives in cmd/albireo-serve.
	got := fixture(t, "fleetobs.go", "internal/fleet/fixture.go", []*Rule{ObsDeterminism()})
	assertFindings(t, got, []string{
		"11: [obs-determinism] time.Since() reads the wall clock; telemetry must be cycle-denominated (use obs.Span.EndAt with a cycle stamp, or an injected obs.Clock at the cmd boundary)",
		"14: [obs-determinism] time.Now() at an instrumentation site; record simulation cycles or event counts, and take wall time only from an injected obs.Clock at the cmd boundary",
	})
}

func TestObsDeterminismCoversJournal(t *testing.T) {
	t.Parallel()
	// internal/journal is inside the rule's scope: the chain hash
	// covers every payload byte, so a wall-clock stamp anywhere in a
	// record would make identical histories hash to different chains.
	got := fixture(t, "journalobs.go", "internal/journal/fixture.go", []*Rule{ObsDeterminism()})
	assertFindings(t, got, []string{
		"11: [obs-determinism] time.Now() at an instrumentation site; record simulation cycles or event counts, and take wall time only from an injected obs.Clock at the cmd boundary",
		"12: [obs-determinism] time.Since() reads the wall clock; telemetry must be cycle-denominated (use obs.Span.EndAt with a cycle stamp, or an injected obs.Clock at the cmd boundary)",
	})
}

func TestObsDeterminismCoversGEMM(t *testing.T) {
	t.Parallel()
	// The GEMM engine instruments through the same chip-level spans
	// and counters as the conv path (internal/core is inside the
	// rule's scope): tile telemetry counts PLCU cycles, and the
	// replay gate hashes results whose spans must not embed wall time.
	got := fixture(t, "gemmobs.go", "internal/core/fixture.go", []*Rule{ObsDeterminism()})
	assertFindings(t, got, []string{
		"12: [obs-determinism] time.Since() reads the wall clock; telemetry must be cycle-denominated (use obs.Span.EndAt with a cycle stamp, or an injected obs.Clock at the cmd boundary)",
		"13: [obs-determinism] time.Now() at an instrumentation site; record simulation cycles or event counts, and take wall time only from an injected obs.Clock at the cmd boundary",
	})
}

func TestObsDeterminismCoversShard(t *testing.T) {
	t.Parallel()
	// The kernel-group fan-out instruments through the same registry
	// as whole-request serving (internal/fleet is inside the rule's
	// scope): fan-out counters and per-window stage stamps are
	// virtual-tick-denominated, and the golden bit-identity tests
	// compare the snapshots they feed.
	got := fixture(t, "shardobs.go", "internal/fleet/fixture.go", []*Rule{ObsDeterminism()})
	assertFindings(t, got, []string{
		"13: [obs-determinism] time.Since() reads the wall clock; telemetry must be cycle-denominated (use obs.Span.EndAt with a cycle stamp, or an injected obs.Clock at the cmd boundary)",
		"16: [obs-determinism] time.Now() at an instrumentation site; record simulation cycles or event counts, and take wall time only from an injected obs.Clock at the cmd boundary",
	})
}

func TestUnitSafetyGolden(t *testing.T) {
	t.Parallel()
	got := fixture(t, "unitsafety.go", "internal/photonics/fixture.go", []*Rule{UnitSafety()})
	assertFindings(t, got, []string{
		"6: [unit-safety] bare SI literal 1.380649e-23: use units.Boltzmann",
		"8: [unit-safety] bare SI literal 1e-9: use units.Nano",
		`11: [unit-safety] arithmetic mixes dB-named "lossDB" with linear-named "powerWatts"; convert with units.DBToLinear/units.LinearToDB first`,
		"12: [unit-safety] bare SI literal 12.5e9: use 12.5 * units.Giga",
		// Line 14's 1e-6 is suppressed with a reason.
	})
}

func TestUnitSafetyOutOfScope(t *testing.T) {
	t.Parallel()
	// internal/units defines the constants; tensor is not a physics
	// package; tests are exempt.
	for _, rel := range []string{"internal/units/units.go", "internal/tensor/fixture.go", "internal/photonics/fixture_test.go"} {
		if got := fixture(t, "unitsafety.go", rel, []*Rule{UnitSafety()}); len(got) != 0 {
			t.Errorf("relpath %s: want no findings, got %q", rel, got)
		}
	}
}

func TestFloatEqualityGolden(t *testing.T) {
	t.Parallel()
	got := fixture(t, "floateq.go", "internal/core/fixture.go", []*Rule{FloatEquality()})
	assertFindings(t, got, []string{
		"8: [float-equality] floating-point == comparison; use a tolerance (math.Abs(a-b) <= eps) or compare integer representations",
		"11: [float-equality] floating-point != comparison; use a tolerance (math.Abs(a-b) <= eps) or compare integer representations",
		// Line 14 compares ints, line 17 compares bools, line 21 is
		// suppressed.
		"24: [float-equality] floating-point == comparison; use a tolerance (math.Abs(a-b) <= eps) or compare integer representations",
	})
}

func TestFloatEqualityExemptInTests(t *testing.T) {
	t.Parallel()
	if got := fixture(t, "floateq.go", "internal/core/fixture_test.go", []*Rule{FloatEquality()}); len(got) != 0 {
		t.Errorf("want no findings in _test.go, got %q", got)
	}
}

func TestExitHygieneGolden(t *testing.T) {
	t.Parallel()
	got := fixture(t, "exithygiene.go", "internal/core/fixture.go", []*Rule{ExitHygiene()})
	assertFindings(t, got, []string{
		"13: [exit-hygiene] os.Exit in library code; only cmd/ mains may exit the process",
		"16: [exit-hygiene] log.Fatalf terminates the process from library code; return an error instead",
		"19: [exit-hygiene] panic in library code; return an error to the caller",
		// Line 26's panic carries a trailing suppression.
	})
}

func TestExitHygieneAllowedInCmd(t *testing.T) {
	t.Parallel()
	if got := fixture(t, "exithygiene.go", "cmd/albireo-sim/main.go", []*Rule{ExitHygiene()}); len(got) != 0 {
		t.Errorf("want no findings under cmd/, got %q", got)
	}
}

func TestGoroutineHygieneGolden(t *testing.T) {
	t.Parallel()
	got := fixture(t, "goroutine.go", "internal/core/fixture.go", []*Rule{GoroutineHygiene()})
	assertFindings(t, got, []string{
		"9: [goroutine-hygiene] go statement with no WaitGroup or channel synchronization in the enclosing function; join the goroutine or document why not",
		// joined() and channelJoined() show evidence; line 32 is
		// suppressed.
	})
}

func TestGoroutineHygieneIsWarnLevel(t *testing.T) {
	t.Parallel()
	fset := token.NewFileSet()
	f, err := ParseFile(fset, filepath.Join("testdata", "goroutine.go"), "internal/core/fixture.go")
	if err != nil {
		t.Fatal(err)
	}
	findings := CheckFile(f, []*Rule{GoroutineHygiene()})
	if len(findings) == 0 {
		t.Fatal("want at least one finding")
	}
	for _, fd := range findings {
		if fd.Severity != Warn {
			t.Errorf("finding %v: severity %v, want Warn", fd, fd.Severity)
		}
	}
}

func TestSISuggestion(t *testing.T) {
	t.Parallel()
	cases := []struct {
		lit  string
		want string
		ok   bool
	}{
		{"1e9", "units.Giga", true},
		{"1e-9", "units.Nano", true},
		{"1.0e6", "units.Mega", true},
		{"1e+12", "units.Tera", true},
		{"5e9", "5 * units.Giga", true},
		{"12.5e-3", "12.5 * units.Milli", true},
		{"1.380649e-23", "units.Boltzmann", true},
		{"1.602176634e-19", "units.ElementaryCharge", true},
		{"2.99792458e8", "units.LightSpeed", true},
		{"1e4", "", false},   // not an SI prefix step
		{"1e-21", "", false}, // beyond the named prefixes
		{"0.25", "", false},  // no exponent
		{"1e100", "", false},
	}
	for _, c := range cases {
		got, ok := siSuggestion(c.lit)
		if ok != c.ok || got != c.want {
			t.Errorf("siSuggestion(%q) = %q, %v; want %q, %v", c.lit, got, ok, c.want, c.ok)
		}
	}
}

func TestDefaultRuleNamesUnique(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for _, r := range Default() {
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Doc == "" {
			t.Errorf("rule %q has no doc", r.Name)
		}
	}
}

// TestRepositoryClean is the contract test: the albireo tree itself
// must stay free of error-severity findings. A regression here means
// a change reintroduced global randomness, bare SI literals, float
// equality, or a library exit without either fixing it or justifying
// a suppression.
func TestRepositoryClean(t *testing.T) {
	t.Parallel()
	findings, err := Run(filepath.Join("..", ".."), Default())
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	for _, fd := range findings {
		if fd.Severity == Error {
			t.Errorf("%s", fd)
		}
	}
}

// The hot-path allocation proof is a module rule; its golden tests
// load the self-contained fixture module under testdata/mod and live
// in hotalloc_test.go (with lockorder_test.go and maporder_test.go
// for the other module rules, and callgraph_test.go for the graph).
