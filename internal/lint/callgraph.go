package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EdgeKind classifies how a call site resolves to its callees.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a known function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a dynamic method call; Callees conservatively
	// fans out to every module method that implements the interface.
	EdgeInterface
	// EdgeFuncValue is a call through a function value; Callees
	// conservatively fans out to every address-taken module function
	// with a matching signature.
	EdgeFuncValue
	// EdgeExternal is a call into a package outside the module (no
	// body to analyze; policy decides what it means).
	EdgeExternal
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeFuncValue:
		return "func-value"
	default:
		return "external"
	}
}

// Edge is one call site inside a module function.
type Edge struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// File holds the site.
	File *File
	// Kind classifies the resolution.
	Kind EdgeKind
	// Callees are the module functions this site may invoke (empty
	// for external calls and for dynamic calls with no in-module
	// candidate).
	Callees []*types.Func
	// External is the callee object for EdgeExternal (its package
	// path drives allow/deny policy). Nil otherwise.
	External *types.Func
}

// FuncNode is one module function in the call graph: its object, its
// declaration, and the file holding it.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	File *File
	// Edges are the function's call sites in source order.
	Edges []Edge
}

// CallGraph is a static, conservative call graph over a loaded
// module: exact edges for direct calls, class-hierarchy fan-out for
// interface method calls, and signature-based fan-out over
// address-taken functions for calls through function values. It
// over-approximates - every call that can happen has an edge - which
// is the right direction for proofs of absence (alloc-freedom).
type CallGraph struct {
	mod   *Module
	nodes map[*types.Func]*FuncNode
	// methodsByName indexes module methods for interface fan-out.
	methodsByName map[string][]*types.Func
	// addrTaken marks module functions referenced as values (possible
	// targets of an indirect call).
	addrTaken map[*types.Func]bool
}

// BuildCallGraph indexes every function declaration in the module and
// resolves the call sites in each body (function literals inside a
// declaration are attributed to that declaration).
func BuildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		mod:           m,
		nodes:         map[*types.Func]*FuncNode{},
		methodsByName: map[string][]*types.Func{},
		addrTaken:     map[*types.Func]bool{},
	}
	// Pass 1: index declarations and address-taken functions.
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[obj] = &FuncNode{Obj: obj, Decl: fd, File: f}
				if fd.Recv != nil {
					g.methodsByName[fd.Name.Name] = append(g.methodsByName[fd.Name.Name], obj)
				}
			}
			g.markAddressTaken(f)
		}
	}
	// Pass 2: resolve call sites.
	for _, node := range g.nodes {
		g.resolveEdges(node)
	}
	return g
}

// Node returns the graph node for a function object, or nil when the
// function has no body in the module.
func (g *CallGraph) Node(obj *types.Func) *FuncNode { return g.nodes[obj] }

// Nodes returns every module function in deterministic order (by
// position).
func (g *CallGraph) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// markAddressTaken records functions referenced outside call position:
// candidates for indirect calls through function values.
func (g *CallGraph) markAddressTaken(f *File) {
	if f.Info == nil {
		return
	}
	// callFuns collects the expression in function position of each
	// call, so plain calls do not count as address-taking uses.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(f.AST, func(n ast.Node) bool {
		var id *ast.Ident
		switch v := n.(type) {
		case *ast.Ident:
			id = v
		case *ast.SelectorExpr:
			// Visiting children will reach v.Sel; skip double counting.
			return true
		}
		if id == nil {
			return true
		}
		obj, ok := f.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if callFuns[ast.Expr(id)] {
			return true
		}
		// Selector method values (x.M used as a value) also arrive
		// here through the Sel identifier.
		g.addrTaken[obj] = true
		return true
	})
	// Second sweep for selector expressions used as values.
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || callFuns[ast.Expr(sel)] {
			return true
		}
		if obj, ok := f.Info.Uses[sel.Sel].(*types.Func); ok {
			g.addrTaken[obj] = true
		}
		return true
	})
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// resolveEdges walks one declaration body and resolves every call.
func (g *CallGraph) resolveEdges(node *FuncNode) {
	info := node.File.Info
	if info == nil {
		return
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if edge, ok := g.resolveCall(node.File, call); ok {
			node.Edges = append(node.Edges, edge)
		}
		return true
	})
	sort.SliceStable(node.Edges, func(i, j int) bool { return node.Edges[i].Site.Pos() < node.Edges[j].Site.Pos() })
}

// resolveCall classifies one call expression. Conversions and builtin
// calls return ok=false: they are not graph edges (the alloc scanner
// handles builtins directly).
func (g *CallGraph) resolveCall(f *File, call *ast.CallExpr) (Edge, bool) {
	info := f.Info
	fun := unparen(call.Fun)

	// Type conversions are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return Edge{}, false
	}

	switch v := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[v].(type) {
		case *types.Builtin:
			return Edge{}, false
		case *types.Func:
			return g.staticEdge(f, call, obj), true
		case *types.Var, *types.Nil:
			return g.funcValueEdge(f, call), true
		case nil:
			// Unresolved (type error); treat as an indirect call so
			// proofs stay conservative.
			return g.funcValueEdge(f, call), true
		}
		return Edge{}, false
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok && sel.Kind() == types.MethodVal {
			callee, ok := sel.Obj().(*types.Func)
			if !ok {
				return g.funcValueEdge(f, call), true
			}
			if types.IsInterface(sel.Recv()) {
				return g.interfaceEdge(f, call, sel.Recv(), callee), true
			}
			return g.staticEdge(f, call, callee), true
		}
		switch obj := info.Uses[v.Sel].(type) {
		case *types.Func:
			// Package-qualified function or method expression.
			return g.staticEdge(f, call, obj), true
		case *types.Var:
			// Struct field of function type, or package-level func var.
			return g.funcValueEdge(f, call), true
		case nil:
			return g.funcValueEdge(f, call), true
		}
		return Edge{}, false
	default:
		// Call of a function literal or an arbitrary expression.
		if lit, ok := fun.(*ast.FuncLit); ok {
			_ = lit // body is scanned inline by analyzers; no edge
			return Edge{}, false
		}
		return g.funcValueEdge(f, call), true
	}
}

// staticEdge builds the edge for a direct call.
func (g *CallGraph) staticEdge(f *File, call *ast.CallExpr, callee *types.Func) Edge {
	if g.nodes[callee] != nil {
		return Edge{Site: call, File: f, Kind: EdgeStatic, Callees: []*types.Func{callee}}
	}
	return Edge{Site: call, File: f, Kind: EdgeExternal, External: callee}
}

// interfaceEdge fans an interface method call out to every module
// method with the same name whose receiver type implements the
// interface (class-hierarchy analysis).
func (g *CallGraph) interfaceEdge(f *File, call *ast.CallExpr, recv types.Type, callee *types.Func) Edge {
	iface, _ := recv.Underlying().(*types.Interface)
	edge := Edge{Site: call, File: f, Kind: EdgeInterface}
	if iface == nil {
		return edge
	}
	name := callee.Name()
	for _, m := range g.methodsByName[name] {
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, iface) {
			edge.Callees = append(edge.Callees, m)
			continue
		}
		// Value-receiver sets are a subset of pointer-receiver sets:
		// check the pointer type too.
		if _, isPtr := rt.Underlying().(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(rt), iface) {
				edge.Callees = append(edge.Callees, m)
			}
		}
	}
	sortFuncs(edge.Callees)
	return edge
}

// funcValueEdge fans a call through a function value out to every
// address-taken module function whose signature matches the call
// site's type (rapid-type-analysis style).
func (g *CallGraph) funcValueEdge(f *File, call *ast.CallExpr) Edge {
	edge := Edge{Site: call, File: f, Kind: EdgeFuncValue}
	tv, ok := f.Info.Types[unparen(call.Fun)]
	if !ok {
		return edge
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return edge
	}
	for fn := range g.addrTaken {
		if g.nodes[fn] == nil {
			continue
		}
		fnSig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if types.Identical(stripRecv(fnSig), stripRecv(sig)) {
			edge.Callees = append(edge.Callees, fn)
		}
	}
	sortFuncs(edge.Callees)
	return edge
}

// stripRecv normalizes a signature for value-compatibility comparison
// (a method value's signature has no receiver).
func stripRecv(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

func sortFuncs(fns []*types.Func) {
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
}

// Reachable walks the graph from the given roots and returns every
// module function reachable through any edge kind, keyed to a sample
// call path (the chain of functions from a root, for diagnostics).
// Roots themselves are included with a path of just their own name.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func][]string {
	paths := map[*types.Func][]string{}
	var queue []*types.Func
	for _, r := range roots {
		if g.nodes[r] == nil || paths[r] != nil {
			continue
		}
		paths[r] = []string{r.Name()}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := g.nodes[cur]
		if node == nil {
			continue
		}
		for _, e := range node.Edges {
			for _, callee := range e.Callees {
				if paths[callee] != nil || g.nodes[callee] == nil {
					continue
				}
				paths[callee] = append(append([]string{}, paths[cur]...), callee.Name())
				queue = append(queue, callee)
			}
		}
	}
	return paths
}

// posOf is a small helper for analyzers reporting at a node.
func posOf(n ast.Node) token.Pos { return n.Pos() }
