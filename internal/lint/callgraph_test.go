package lint

import (
	"go/types"
	"strings"
	"sync"
	"testing"
)

var (
	graphOnce sync.Once
	graph     *CallGraph
)

// fixtureGraph builds the call graph over the fixture module once.
func fixtureGraph(t *testing.T) *CallGraph {
	t.Helper()
	m := fixtureModule(t)
	graphOnce.Do(func() { graph = BuildCallGraph(m) })
	return graph
}

// nodeByName finds the unique graph node whose function has the given
// name within the given package dir.
func nodeByName(t *testing.T, g *CallGraph, dir, name string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range g.Nodes() {
		if n.Obj.Name() == name && n.File.InPackage(dir) {
			if found != nil {
				t.Fatalf("ambiguous node %s in %s", name, dir)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node %s in %s", name, dir)
	}
	return found
}

// calleeNames renders an edge's fan-out as sorted full names.
func calleeNames(e Edge) []string {
	var out []string
	for _, c := range e.Callees {
		out = append(out, c.FullName())
	}
	return out
}

func TestCallGraphStaticEdge(t *testing.T) {
	g := fixtureGraph(t)
	drive := nodeByName(t, g, "internal/cg", "Drive")
	var static []string
	for _, e := range drive.Edges {
		if e.Kind == EdgeStatic {
			static = append(static, calleeNames(e)...)
		}
	}
	if len(static) != 1 || !strings.HasSuffix(static[0], "cg.helper") {
		t.Errorf("Drive static callees = %q, want exactly cg.helper", static)
	}
}

func TestCallGraphInterfaceFanOut(t *testing.T) {
	g := fixtureGraph(t)
	drive := nodeByName(t, g, "internal/cg", "Drive")
	var iface *Edge
	for i := range drive.Edges {
		if drive.Edges[i].Kind == EdgeInterface {
			if iface != nil {
				t.Fatal("Drive has more than one interface edge")
			}
			iface = &drive.Edges[i]
		}
	}
	if iface == nil {
		t.Fatal("Drive has no interface edge for r.Run")
	}
	got := calleeNames(*iface)
	// CHA fan-out: both the value-receiver Fast.Run and the
	// pointer-receiver (*Slow).Run implement Runner.
	joined := strings.Join(got, " ")
	if len(got) != 2 ||
		!strings.Contains(joined, "Fast") || !strings.Contains(joined, "Slow") {
		t.Errorf("interface fan-out = %q, want Fast.Run and (*Slow).Run", got)
	}
}

func TestCallGraphFuncValueFanOut(t *testing.T) {
	g := fixtureGraph(t)
	ind := nodeByName(t, g, "internal/cg", "Indirect")
	var fv *Edge
	for i := range ind.Edges {
		if ind.Edges[i].Kind == EdgeFuncValue {
			fv = &ind.Edges[i]
		}
	}
	if fv == nil {
		t.Fatal("Indirect has no func-value edge")
	}
	got := calleeNames(*fv)
	// twice is address-taken in Pick and signature-matches; thrice
	// matches the signature but is never taken as a value, so RTA-lite
	// excludes it.
	if len(got) != 1 || !strings.HasSuffix(got[0], "cg.twice") {
		t.Errorf("func-value fan-out = %q, want exactly cg.twice", got)
	}
}

func TestCallGraphReachable(t *testing.T) {
	g := fixtureGraph(t)
	drive := nodeByName(t, g, "internal/cg", "Drive")
	paths := g.Reachable([]*types.Func{drive.Obj})
	want := map[string]string{
		"Drive":  "Drive",
		"helper": "Drive -> helper",
		"Run":    "", // two Run methods, both reachable; checked below
	}
	var runs int
	for fn, path := range paths {
		joined := strings.Join(path, " -> ")
		switch fn.Name() {
		case "Drive", "helper":
			if joined != want[fn.Name()] {
				t.Errorf("path to %s = %q, want %q", fn.Name(), joined, want[fn.Name()])
			}
		case "Run":
			runs++
			if joined != "Drive -> Run" {
				t.Errorf("path to %s = %q, want Drive -> Run", fn.FullName(), joined)
			}
		default:
			t.Errorf("unexpected reachable function %s via %q", fn.FullName(), joined)
		}
	}
	if runs != 2 {
		t.Errorf("reached %d Run methods, want 2", runs)
	}
}
