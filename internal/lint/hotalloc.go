package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// allocDenyPackages are standard-library packages whose exported
// functions allocate as a matter of course (formatting, string
// building, error construction, reflection). A call from hot code
// into one of these fails the proof at the call site. Packages not
// listed here (math, math/rand, sync/atomic, ...) are assumed
// alloc-free; the dynamic AllocsPerRun gate in internal/core backs
// that assumption at runtime.
var allocDenyPackages = map[string]bool{
	"bytes":         true,
	"encoding/json": true,
	"errors":        true,
	"fmt":           true,
	"log":           true,
	"os":            true,
	"reflect":       true,
	"strconv":       true,
	"strings":       true,
}

// HotPathAllocProof is the interprocedural zero-allocation proof for
// //hot:-marked functions. From each hot root it walks the module
// call graph (conservative fan-out for interface and function-value
// calls) and reports every reachable construct the compiler lowers to
// a heap allocation:
//
//   - make, new, append
//   - slice and map composite literals, &T{...}
//   - non-constant string concatenation
//   - []byte(string) / string([]byte) / []rune conversions
//   - interface boxing of a concrete argument at a call site
//   - closure (func literal) creation
//   - variadic argument packing (call without ...)
//   - calls into allocating stdlib packages (fmt, strings, ...)
//   - dynamic calls the graph cannot bound to module functions
//
// Constructs inside the arguments of a panic() call are exempt: a
// panicking path has left the steady state, and the repo's invariant
// panics format their message with fmt.Sprintf at the crash site.
// Findings are reported at the allocating construct with the call
// path from a sample hot root, so a //lint:ignore there covers every
// root that reaches it.
func HotPathAllocProof() *Rule {
	rule := &Rule{
		Name:     "hotpath-alloc-proof",
		Doc:      "prove //hot:-marked functions transitively allocation-free over the module call graph; any reachable make/new/append, composite literal, string concat, boxing, closure, variadic packing, or fmt-class stdlib call is an error",
		Severity: Error,
	}
	rule.ModuleCheck = func(m *Module, r *ModuleReporter) {
		g := BuildCallGraph(m)
		var roots []*types.Func
		rootless := map[*types.Func]bool{}
		for _, node := range g.Nodes() {
			if node.File.IsTest {
				continue
			}
			if hotMarked(node.Decl.Doc) {
				roots = append(roots, node.Obj)
			} else {
				rootless[node.Obj] = true
			}
		}
		if len(roots) == 0 {
			return
		}
		paths := g.Reachable(roots)
		// Deterministic order: visit reachable functions by position.
		var reached []*FuncNode
		for fn := range paths {
			if node := g.Node(fn); node != nil {
				reached = append(reached, node)
			}
		}
		sort.Slice(reached, func(i, j int) bool { return reached[i].Decl.Pos() < reached[j].Decl.Pos() })
		for _, node := range reached {
			via := strings.Join(paths[node.Obj], " -> ")
			scanAllocs(node, via, r)
			reportCallPolicy(node, via, r)
		}
	}
	return rule
}

// reportCallPolicy flags the call edges of one reachable function that
// fail the proof: calls into allocating stdlib packages and dynamic
// calls with no bounded module target.
func reportCallPolicy(node *FuncNode, via string, r *ModuleReporter) {
	exempt := panicArgRanges(node.Decl.Body, node.File)
	for _, e := range node.Edges {
		if exempt.covers(e.Site.Pos()) {
			continue
		}
		switch e.Kind {
		case EdgeExternal:
			pkg := e.External.Pkg()
			if pkg != nil && allocDenyPackages[pkg.Path()] {
				r.Reportf(node.File, e.Site.Pos(), "call to %s.%s allocates, reachable from //hot: path %s",
					pkg.Name(), e.External.Name(), via)
			}
		case EdgeInterface:
			if len(e.Callees) == 0 {
				r.Reportf(node.File, e.Site.Pos(), "dynamic interface call has no in-module implementation to prove alloc-free, reachable from //hot: path %s", via)
			}
		case EdgeFuncValue:
			if len(e.Callees) == 0 {
				r.Reportf(node.File, e.Site.Pos(), "indirect call cannot be bounded to module functions, so the alloc proof fails, reachable from //hot: path %s", via)
			}
		}
	}
}

// posRanges is a set of source ranges (panic arguments) exempt from
// the proof.
type posRanges []posRange

type posRange struct{ lo, hi token.Pos }

func (rs posRanges) covers(p token.Pos) bool {
	for _, r := range rs {
		if r.lo <= p && p <= r.hi {
			return true
		}
	}
	return false
}

// panicArgRanges collects the source ranges of arguments to builtin
// panic calls in body.
func panicArgRanges(body *ast.BlockStmt, f *File) posRanges {
	var out posRanges
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" || !f.isBuiltin(id) {
			return true
		}
		for _, arg := range call.Args {
			out = append(out, posRange{arg.Pos(), arg.End()})
		}
		return true
	})
	return out
}

// scanAllocs reports every allocating construct in one function body.
func scanAllocs(node *FuncNode, via string, r *ModuleReporter) {
	f := node.File
	info := f.Info
	exempt := panicArgRanges(node.Decl.Body, f)
	report := func(pos token.Pos, what string) {
		if exempt.covers(pos) {
			return
		}
		r.Reportf(f, pos, "%s in %s, reachable from //hot: path %s", what, node.Obj.Name(), via)
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			scanCallAllocs(v, f, info, report)
		case *ast.FuncLit:
			report(v.Pos(), "closure literal allocates")
			// Keep walking: the literal's body belongs to this
			// declaration and runs on the hot path when invoked.
		case *ast.CompositeLit:
			scanCompositeAlloc(v, info, report)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := unparen(v.X).(*ast.CompositeLit); ok {
					report(v.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && info != nil {
				if tv, ok := info.Types[v]; ok && tv.Value == nil && isStringType(tv.Type) {
					report(v.Pos(), "string concatenation allocates")
				}
			}
		}
		return true
	})
}

// scanCallAllocs handles the call-shaped constructs: builtins,
// conversions, boxing, and variadic packing.
func scanCallAllocs(call *ast.CallExpr, f *File, info *types.Info, report func(token.Pos, string)) {
	fun := unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok && f.isBuiltin(id) {
		switch id.Name {
		case "make":
			report(call.Pos(), "make() allocates")
		case "new":
			report(call.Pos(), "new() allocates")
		case "append":
			report(call.Pos(), "append() may grow past capacity and allocate")
		}
		return
	}
	if info == nil {
		return
	}
	// Conversions that copy: string <-> []byte/[]rune.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if convAllocates(tv.Type, call, info) {
			report(call.Pos(), "string/byte-slice conversion allocates")
		}
		return
	}
	sig := callSignature(call, info)
	if sig == nil {
		return
	}
	// Variadic packing: a call that packs >=1 argument into a fresh
	// slice (f(a, b...) spreads and does not pack).
	fixed := sig.Params().Len() - 1
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) > fixed {
		report(call.Pos(), "variadic call packs arguments into a new slice")
	}
	// Interface boxing: a concrete, non-constant argument passed to an
	// interface parameter.
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= fixed {
			if call.Ellipsis.IsValid() {
				continue
			}
			slice, ok := sig.Params().At(fixed).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			param = slice.Elem()
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || types.IsInterface(atv.Type) || atv.IsNil() {
			continue
		}
		if pointerShaped(atv.Type) {
			// Pointers, channels, maps, and funcs store directly in
			// the interface word: no allocation.
			continue
		}
		report(arg.Pos(), "interface boxing of concrete argument allocates")
	}
}

// callSignature resolves the signature of a call's function
// expression.
func callSignature(call *ast.CallExpr, info *types.Info) *types.Signature {
	tv, ok := info.Types[unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// convAllocates reports whether a conversion to target copies its
// operand to the heap: string([]byte), []byte(string), []rune(string),
// string([]rune).
func convAllocates(target types.Type, call *ast.CallExpr, info *types.Info) bool {
	if len(call.Args) != 1 {
		return false
	}
	atv, ok := info.Types[call.Args[0]]
	if !ok || atv.Type == nil {
		return false
	}
	// Constant-folded conversions don't allocate.
	if atv.Value != nil && isStringType(target) {
		return false
	}
	src := atv.Type
	switch {
	case isStringType(target) && isByteOrRuneSlice(src):
		return true
	case isByteOrRuneSlice(target) && isStringType(src):
		return true
	}
	return false
}

// pointerShaped reports whether values of t fit the interface data
// word without boxing.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// scanCompositeAlloc flags composite literals whose kind always
// allocates: slices and maps. Value struct literals live on the
// stack (escape through & or boxing is caught separately).
func scanCompositeAlloc(lit *ast.CompositeLit, info *types.Info, report func(token.Pos, string)) {
	if info == nil {
		return
	}
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		report(lit.Pos(), "slice literal allocates")
	case *types.Map:
		report(lit.Pos(), "map literal allocates")
	}
}
