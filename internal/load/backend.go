package load

import (
	"albireo/internal/core"
	"albireo/internal/tensor"
)

// NullBackend is a shape-correct no-compute backend: Conv and
// FullyConnected return zeroed outputs of the right geometry. The
// load harness measures queueing, batching, and virtual service time,
// none of which depend on arithmetic - a null backend keeps wall-clock
// cost out of the measurement loop without changing a single latency
// stamp.
type NullBackend struct{}

// Conv returns a zeroed output volume of the convolution's shape.
func (NullBackend) Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	stride := cfg.Stride
	if stride <= 0 {
		stride = 1
	}
	outY := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	outX := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	return tensor.NewVolume(w.M, outY, outX)
}

// FullyConnected returns zeroed logits, one per output unit.
func (NullBackend) FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64 {
	return make([]float64, w.M)
}

// GEMM returns a zeroed product matrix of the right shape.
func (NullBackend) GEMM(a, b *tensor.Matrix, relu bool) *tensor.Matrix {
	return tensor.NewMatrix(a.R, b.C)
}

// Name identifies the backend.
func (NullBackend) Name() string { return "null" }

// ConvShard implements fleet.ShardBackend: the pre-zeroed merge
// buffer already is the window's output, so a chipless worker joins
// shard fan-outs at zero compute - the sharded sweep measures
// placement and the shard service model, nothing else.
func (NullBackend) ConvShard(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool, shard core.ShardSpec, out *tensor.Volume) {
}

// FullyConnectedShard implements fleet.ShardBackend (no-op).
func (NullBackend) FullyConnectedShard(a *tensor.Volume, w *tensor.Kernels, relu bool, shard core.ShardSpec, out []float64) {
}

// GEMMShard implements fleet.ShardBackend (no-op).
func (NullBackend) GEMMShard(a, b *tensor.Matrix, relu bool, shard core.ShardSpec, out *tensor.Matrix) {
}
