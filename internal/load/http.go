package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"albireo/internal/obs"
)

// HTTPConfig describes one open-loop run against a live albireo-serve
// /v1/infer endpoint. Unlike the fleet driver this measures the real
// wire path in wall time - JSON codec, HTTP stack, handler - through
// an injected obs.Clock (the module's one sanctioned wall-time
// source), so it explores a deployment rather than gating CI.
type HTTPConfig struct {
	// URL is the infer endpoint, e.g. http://127.0.0.1:8080/v1/infer.
	URL string
	// Rate is the offered load in requests per second (Poisson mean).
	Rate float64
	// Duration is the arrival window.
	Duration time.Duration
	// Seed seeds the arrival process.
	Seed int64
	// InZ and InSize must match the served model's input shape
	// (defaults 3 and 8, the albireo-serve defaults).
	InZ, InSize int
	// Clock supplies wall time; required.
	Clock obs.Clock
	// Client issues the requests (default: a fresh http.Client).
	Client *http.Client
	// MaxRetries bounds per-request retries of transient transport
	// errors - dials refused or connections reset while a server
	// restarts - with capped exponential backoff. 0 uses
	// DefaultMaxRetries; negative disables retrying. Application
	// responses (including 503 sheds) are never retried: the server
	// answered.
	MaxRetries int
	// RetryBase is the first backoff interval (default
	// DefaultRetryBase); attempt k waits RetryBase<<k, capped at
	// RetryCap.
	RetryBase time.Duration
	// RetryCap caps the backoff interval (default DefaultRetryCap).
	RetryCap time.Duration
	// Sleep pauses between retry attempts (default time.Sleep).
	// Injected so tests drive the backoff deterministically without
	// waiting it out.
	Sleep func(time.Duration)
}

// Retry-policy defaults.
const (
	// DefaultMaxRetries is the per-request transient-error retry bound.
	DefaultMaxRetries = 3
	// DefaultRetryBase is the first backoff interval.
	DefaultRetryBase = 10 * time.Millisecond
	// DefaultRetryCap bounds the exponential backoff.
	DefaultRetryCap = 200 * time.Millisecond
)

// HTTPResult aggregates one HTTP run.
type HTTPResult struct {
	// Issued counts arrivals actually dispatched; Scheduled counts the
	// arrivals the Poisson process planned (they differ only when the
	// context ends the run early).
	Scheduled, Issued int64
	// Completed, Shed (HTTP 503), and Errors partition the responses.
	Completed, Shed, Errors int64
	// Retries counts transient transport errors absorbed by the retry
	// policy (not included in Errors; a request that exhausts its
	// retries still counts once in Errors).
	Retries int64
	// LatencyMicros summarizes completed-request latency in
	// microseconds, measured from each request's scheduled arrival
	// time - not its send time - so a stalled server cannot hide
	// queueing delay behind displaced sends (coordinated omission).
	LatencyMicros StageStats
}

// RunHTTP drives an open-loop Poisson arrival schedule against the
// endpoint: arrivals are precomputed from the seed, each request is
// issued in its own goroutine at its scheduled time regardless of how
// many are still outstanding, and latency is charged from the
// schedule. Ends early (with the context error) on cancellation.
func RunHTTP(ctx context.Context, cfg HTTPConfig) (HTTPResult, error) {
	if cfg.URL == "" || cfg.Rate <= 0 || cfg.Duration <= 0 {
		return HTTPResult{}, fmt.Errorf("load: need url, positive rate and duration")
	}
	if cfg.Clock == nil {
		return HTTPResult{}, errors.New("load: HTTPConfig.Clock is required")
	}
	if cfg.InZ <= 0 {
		cfg.InZ = 3
	}
	if cfg.InSize <= 0 {
		cfg.InSize = 8
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	retryBase := cfg.RetryBase
	if retryBase <= 0 {
		retryBase = DefaultRetryBase
	}
	retryCap := cfg.RetryCap
	if retryCap <= 0 {
		retryCap = DefaultRetryCap
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}

	body, err := json.Marshal(map[string]any{
		"z": cfg.InZ, "y": cfg.InSize, "x": cfg.InSize,
		"data": make([]float64, cfg.InZ*cfg.InSize*cfg.InSize),
	})
	if err != nil {
		return HTTPResult{}, err
	}

	// The whole schedule exists before the first request: open loop.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var offsets []time.Duration
	for t := rng.ExpFloat64() / cfg.Rate; ; t += rng.ExpFloat64() / cfg.Rate {
		off := time.Duration(t * float64(time.Second))
		if off >= cfg.Duration {
			break
		}
		offsets = append(offsets, off)
	}

	res := HTTPResult{Scheduled: int64(len(offsets))}
	var retries atomic.Int64
	type outcome struct {
		status int
		err    error
		lat    time.Duration
	}
	outcomes := make([]outcome, len(offsets))
	var wg sync.WaitGroup
	start := cfg.Clock.Now()
	for i, off := range offsets {
		if err := ctx.Err(); err != nil {
			break
		}
		sched := start.Add(off)
		if d := sched.Sub(cfg.Clock.Now()); d > 0 {
			time.Sleep(d)
		}
		res.Issued++
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			// Transient transport errors (dial refused, connection reset
			// mid-restart) retry with capped exponential backoff instead
			// of polluting the error count; the schedule-anchored latency
			// then naturally charges the backoff to the request. A
			// response - any response - is final: application-level
			// shedding is signal, not noise.
			for attempt := 0; ; attempt++ {
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL, bytes.NewReader(body))
				if err != nil {
					outcomes[i] = outcome{err: err}
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					outcomes[i] = outcome{status: resp.StatusCode, lat: cfg.Clock.Now().Sub(sched)}
					return
				}
				if attempt >= maxRetries || !isTransient(err) || ctx.Err() != nil {
					outcomes[i] = outcome{err: err}
					return
				}
				retries.Add(1)
				d := retryBase << attempt
				if d > retryCap {
					d = retryCap
				}
				sleep(d)
			}
		}(i, sched)
	}
	wg.Wait()
	res.Retries = retries.Load()

	var lats []int64
	for _, o := range outcomes[:res.Issued] {
		switch {
		case o.err != nil:
			res.Errors++
		case o.status == http.StatusOK:
			res.Completed++
			lats = append(lats, o.lat.Microseconds())
		case o.status == http.StatusServiceUnavailable:
			res.Shed++
		default:
			res.Errors++
		}
	}
	res.LatencyMicros = TickStats(lats)
	return res, ctx.Err()
}

// isTransient classifies transport errors worth retrying: the server
// was not there yet or hung up mid-exchange - refused dials, resets,
// broken pipes, and truncated responses, the signatures of a restart
// - but never a context cancellation (the caller gave up; a retry
// would outlive the run).
func isTransient(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	// net/http's errServerClosedIdle (the transport saw the peer close
	// the connection before the response) is unexported and unwraps to
	// nothing, so the message is the only handle on it.
	return strings.Contains(err.Error(), "server closed idle connection")
}
