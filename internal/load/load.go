// Package load is the tail-latency measurement substrate: an
// open-loop load generator for the fleet scheduler and the
// albireo-serve HTTP path. Open-loop means arrivals are scheduled by
// an external (Poisson) process that does not slow down when the
// system does - the methodology that avoids coordinated omission,
// where a closed-loop client waiting on slow responses stops issuing
// exactly the requests that would have observed the queueing it
// caused. Latency is measured from each request's scheduled arrival,
// so a stalled server owes latency for every arrival it displaced.
//
// The fleet driver runs the scheduler in virtual-time mode: service
// is priced in linger ticks by fleet.ServiceModel and every latency
// stamp and shedding decision is a pure function of (seed, rate,
// ticks, pool), which is what lets cmd/albireo-loadgen emit
// byte-identical BENCH_serve.json reports and CI gate p99 against a
// committed baseline. The HTTP driver (RunHTTP) measures the real
// wire path in wall time through an injected obs.Clock and is for
// exploration, not gating.
package load

import (
	"context"
	"errors"
	"fmt"

	"albireo/internal/fleet"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// Config describes one open-loop measurement point against the fleet.
type Config struct {
	// Rate is the offered load in requests per tick (Poisson mean).
	Rate float64
	// Ticks is the arrival window length; arrivals stop after it and
	// the driver ticks on until the queue drains.
	Ticks int
	// Seed seeds the arrival process and the workload tensors.
	Seed int64
	// MaxDrainTicks bounds the post-window drain (default 100000);
	// exceeding it is an error, not a hang.
	MaxDrainTicks int
	// InZ and InSize shape the input volume (default 3 and 8).
	InZ, InSize int
	// KernelM and KernelSpatial shape the conv weights (default 4 and
	// 3): KernelM output channels, KernelSpatial x KernelSpatial taps.
	KernelM, KernelSpatial int
	// Mix is how many distinct weight banks requests rotate through
	// (default 2). Distinct banks cannot coalesce, so Mix > 1 keeps
	// the micro-batcher honest instead of feeding it one giant key.
	Mix int
	// Shard turns on kernel-group fan-out: each conv splits across the
	// pool at the residue-class boundary and merges, so a point
	// measures single-inference scale-out latency instead of
	// whole-request throughput.
	Shard bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxDrainTicks <= 0 {
		c.MaxDrainTicks = 100000
	}
	if c.InZ <= 0 {
		c.InZ = 3
	}
	if c.InSize <= 0 {
		c.InSize = 8
	}
	if c.KernelM <= 0 {
		c.KernelM = 4
	}
	if c.KernelSpatial <= 0 {
		c.KernelSpatial = 3
	}
	if c.Mix <= 0 {
		c.Mix = 2
	}
	return c
}

// Result is the raw outcome of one measurement point.
type Result struct {
	// Issued counts every submission attempt; Issued = Admitted + Shed.
	Issued int64
	// Admitted, Completed, and Shed mirror the fleet counters.
	Admitted, Completed, Shed int64
	// WindowTicks is the arrival window; TotalTicks includes drain.
	WindowTicks int
	TotalTicks  int64
	// Stages holds the latency decomposition of every completed
	// request in submission order.
	Stages []fleet.StageTicks
	// Snapshot is the scheduler's final registry state, for
	// reconciling the per-request view against the histograms.
	Snapshot obs.Snapshot
}

// RunPoint measures one (rate, pool) point: it builds a virtual-time
// scheduler over units, drives the scripted Poisson arrival trace
// through it, drains, and returns every latency decomposition. The
// VirtualTime option is forced on - this harness exists to produce
// seed-reproducible numbers - and the scheduler is private to the
// point, so consecutive points never share queue state.
func RunPoint(cfg Config, opt fleet.Options, units ...fleet.Unit) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Rate <= 0 || cfg.Ticks <= 0 {
		return Result{}, fmt.Errorf("load: need positive rate and ticks, got %g and %d", cfg.Rate, cfg.Ticks)
	}
	opt.VirtualTime = true
	if cfg.Shard {
		opt.Shard = true
	}
	reg := obs.NewRegistry()
	s, err := fleet.New(opt, units...)
	if err != nil {
		return Result{}, err
	}
	s.Instrument(reg, nil)
	if err := s.Start(); err != nil {
		return Result{}, err
	}

	in := tensor.RandomVolume(cfg.InZ, cfg.InSize, cfg.InSize, cfg.Seed)
	weights := make([]*tensor.Kernels, cfg.Mix)
	for i := range weights {
		weights[i] = tensor.RandomKernels(cfg.KernelM, cfg.InZ,
			cfg.KernelSpatial, cfg.KernelSpatial, cfg.Seed*100+int64(i))
	}
	conv := tensor.ConvConfig{Stride: 1, Pad: 1}

	ctx := context.Background()
	arrivals := Arrivals(cfg.Rate, cfg.Ticks, cfg.Seed)
	res := Result{WindowTicks: cfg.Ticks}
	var futures []*fleet.Future
	for _, n := range arrivals {
		for i := 0; i < n; i++ {
			futures = append(futures, s.ConvAsync(ctx, in, weights[res.Issued%int64(cfg.Mix)], conv, true))
			res.Issued++
		}
		s.Tick()
	}
	for drained := 0; s.InFlight() > 0; drained++ {
		if drained >= cfg.MaxDrainTicks {
			return Result{}, fmt.Errorf("load: drain exceeded %d ticks with %d in flight", cfg.MaxDrainTicks, s.InFlight())
		}
		s.Tick()
	}

	for i, f := range futures {
		if _, err := f.Volume(); err != nil {
			if errors.Is(err, fleet.ErrOverloaded) {
				res.Shed++
				continue
			}
			return Result{}, fmt.Errorf("load: request %d: %w", i, err)
		}
		st, ok := f.Stages()
		if !ok {
			return Result{}, fmt.Errorf("load: request %d delivered but stages not final", i)
		}
		res.Completed++
		res.Stages = append(res.Stages, st)
	}
	res.Admitted = res.Issued - res.Shed
	res.TotalTicks = s.Ticks()
	if err := s.Close(ctx); err != nil {
		return Result{}, err
	}
	res.Snapshot = reg.Snapshot()
	return res, nil
}

// NullUnits builds n chipless pool members on NullBackend - the
// workload for latency measurements where only queueing matters.
func NullUnits(n int) []fleet.Unit {
	units := make([]fleet.Unit, n)
	for i := range units {
		units[i] = fleet.Unit{Backend: NullBackend{}}
	}
	return units
}
