package load

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReportSchema versions the BENCH_serve.json wire shape.
const ReportSchema = "albireo-bench-serve/v1"

// StageStats summarizes one latency stage's distribution in ticks.
// Quantiles are exact nearest-rank order statistics over the
// per-request samples (not histogram interpolations), so the report
// is reproducible to the bit from a seed.
type StageStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// TickStats computes exact order statistics over tick samples.
func TickStats(samples []int64) StageStats {
	if len(samples) == 0 {
		return StageStats{}
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	n := len(sorted)
	rank := func(q float64) float64 {
		// Nearest-rank: the smallest sample with at least q of the
		// distribution at or below it.
		i := int(q*float64(n)+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return float64(sorted[i])
	}
	return StageStats{
		Mean: float64(sum) / float64(n),
		P50:  rank(0.50),
		P90:  rank(0.90),
		P99:  rank(0.99),
		P999: rank(0.999),
		Max:  float64(sorted[n-1]),
	}
}

// Point is one measured (pool, offered rate) cell of the
// throughput-latency surface.
type Point struct {
	Pool        int     `json:"pool"`
	OfferedRate float64 `json:"offered_rate"`
	// Shard marks a kernel-group scale-out point: requests fan out
	// across the pool and merge instead of dispatching whole, so E2E
	// here is single-inference latency, not batched throughput.
	Shard      bool  `json:"shard,omitempty"`
	Ticks      int   `json:"ticks"`
	TotalTicks int64 `json:"total_ticks"`
	Issued     int64 `json:"issued"`
	Admitted   int64 `json:"admitted"`
	Completed  int64 `json:"completed"`
	Shed       int64 `json:"shed"`
	// AchievedRate is completed work per tick over the whole run
	// (drain included), so past saturation it converges on pool
	// capacity instead of echoing the offered rate.
	AchievedRate float64 `json:"achieved_rate"`
	ShedFraction float64 `json:"shed_fraction"`

	E2E       StageStats `json:"e2e"`
	Linger    StageStats `json:"linger"`
	QueueWait StageStats `json:"queue_wait"`
	Execute   StageStats `json:"execute"`
	Delivery  StageStats `json:"delivery"`
}

// BuildPoint reduces one measurement's raw result to a report point.
func BuildPoint(pool int, rate float64, res Result) Point {
	n := len(res.Stages)
	e2e := make([]int64, n)
	linger := make([]int64, n)
	wait := make([]int64, n)
	exec := make([]int64, n)
	deliver := make([]int64, n)
	for i, st := range res.Stages {
		e2e[i] = st.EndToEnd()
		linger[i] = st.Linger()
		wait[i] = st.QueueWait()
		exec[i] = st.Execute()
		deliver[i] = st.Delivery()
	}
	p := Point{
		Pool:        pool,
		OfferedRate: rate,
		Ticks:       res.WindowTicks,
		TotalTicks:  res.TotalTicks,
		Issued:      res.Issued,
		Admitted:    res.Admitted,
		Completed:   res.Completed,
		Shed:        res.Shed,
		E2E:         TickStats(e2e),
		Linger:      TickStats(linger),
		QueueWait:   TickStats(wait),
		Execute:     TickStats(exec),
		Delivery:    TickStats(deliver),
	}
	if res.TotalTicks > 0 {
		p.AchievedRate = float64(res.Completed) / float64(res.TotalTicks)
	}
	if res.Issued > 0 {
		p.ShedFraction = float64(res.Shed) / float64(res.Issued)
	}
	return p
}

// Report is the BENCH_serve.json document: the measurement sweep plus
// everything needed to reproduce it.
type Report struct {
	Schema       string `json:"schema"`
	Seed         int64  `json:"seed"`
	QueueDepth   int    `json:"queue_depth"`
	MaxBatch     int    `json:"max_batch"`
	MaxLinger    int    `json:"max_linger"`
	ProgramTicks int64  `json:"program_ticks"`
	RequestTicks int64  `json:"request_ticks"`
	// ShardRequestTicks is the steady-state price used by the sharded
	// scale-out points (0 when the sweep ran none): a single inference
	// heavy enough that splitting its kernel groups pays.
	ShardRequestTicks int64   `json:"shard_request_ticks,omitempty"`
	Points            []Point `json:"points"`
}

// pointKey identifies a point across report and baseline. Sharded
// points key separately: the same (pool, rate) cell measures a
// different serving mode.
func pointKey(p Point) string {
	if p.Shard {
		return fmt.Sprintf("pool=%d rate=%g shard", p.Pool, p.OfferedRate)
	}
	return fmt.Sprintf("pool=%d rate=%g", p.Pool, p.OfferedRate)
}

// Gate compares measured p99 end-to-end latency against a committed
// baseline, mirroring the allocs/op gate: every baseline point must be
// measured, and each may exceed its baseline p99 by at most slack
// (fractional) plus 1 tick absolute - headroom for a deliberate
// service-model tweak of a single tick, while still failing on a real
// queueing regression (which moves p99 by many ticks, not one).
func Gate(out io.Writer, rep, base Report, slack float64) error {
	measured := make(map[string]Point, len(rep.Points))
	for _, p := range rep.Points {
		measured[pointKey(p)] = p
	}
	var failures []string
	for _, b := range base.Points {
		key := pointKey(b)
		m, ok := measured[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", key))
			continue
		}
		limit := b.E2E.P99*(1+slack) + 1
		if m.E2E.P99 > limit {
			failures = append(failures, fmt.Sprintf("%s: p99 %.0f ticks exceeds baseline %.0f (limit %.1f)",
				key, m.E2E.P99, b.E2E.P99, limit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("p99 latency regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(out, "serve gate: %d points within p99 baseline\n", len(base.Points))
	return nil
}
