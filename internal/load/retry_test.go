package load_test

import (
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"albireo/internal/load"
	"albireo/internal/obs"
)

// flakyListener drops (accepts then immediately closes) the first
// Flaky connections - the client sees the reset/EOF signature of a
// server mid-restart - and hands every later one to the HTTP server.
type flakyListener struct {
	net.Listener
	remaining atomic.Int64
}

func (l *flakyListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.remaining.Add(-1) >= 0 {
			c.Close()
			continue
		}
		return c, nil
	}
}

// TestRunHTTPRetriesTransient checks the retry policy end to end: a
// listener that kills the first few connections must cost retries (and
// injected backoff sleeps), never errors.
func TestRunHTTPRetriesTransient(t *testing.T) {
	t.Parallel()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	l := &flakyListener{Listener: inner}
	l.remaining.Store(3)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"logits":[1]}`))
	})}
	go srv.Serve(l)
	defer srv.Close()

	var mu sync.Mutex
	var slept []time.Duration
	res, err := load.RunHTTP(context.Background(), load.HTTPConfig{
		URL:      "http://" + inner.Addr().String(),
		Rate:     300,
		Duration: 60 * time.Millisecond,
		Seed:     9,
		Clock:    obs.WallClock{},
		// Connection reuse would let one good conn serve every request,
		// hiding the flaky phase from later arrivals; a fresh dial per
		// request keeps the fault injection honest.
		Client: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("RunHTTP: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d with retries available, want 0", res.Errors)
	}
	if res.Completed != res.Issued {
		t.Fatalf("completed %d of %d issued", res.Completed, res.Issued)
	}
	if res.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1 (listener dropped 3 connections)", res.Retries)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(len(slept)) != res.Retries {
		t.Fatalf("backoff sleeps = %d, want one per retry (%d)", len(slept), res.Retries)
	}
	for _, d := range slept {
		if d < load.DefaultRetryBase || d > load.DefaultRetryCap {
			t.Fatalf("backoff %v outside [%v, %v]", d, load.DefaultRetryBase, load.DefaultRetryCap)
		}
	}
}

// TestRunHTTPRetryDisabled checks the opt-out: with MaxRetries < 0 the
// dropped connections surface as errors and Sleep is never called.
func TestRunHTTPRetryDisabled(t *testing.T) {
	t.Parallel()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	l := &flakyListener{Listener: inner}
	l.remaining.Store(2)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"logits":[1]}`))
	})}
	go srv.Serve(l)
	defer srv.Close()

	res, err := load.RunHTTP(context.Background(), load.HTTPConfig{
		URL:        "http://" + inner.Addr().String(),
		Rate:       300,
		Duration:   60 * time.Millisecond,
		Seed:       9,
		Clock:      obs.WallClock{},
		MaxRetries: -1,
		Client:     &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		Sleep: func(time.Duration) {
			t.Error("Sleep called with retries disabled")
		},
	})
	if err != nil {
		t.Fatalf("RunHTTP: %v", err)
	}
	if res.Retries != 0 {
		t.Fatalf("retries = %d with retrying disabled", res.Retries)
	}
	if res.Errors == 0 {
		t.Fatal("dropped connections did not surface as errors with retries disabled")
	}
}
