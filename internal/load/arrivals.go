package load

import "math/rand"

// Arrivals scripts an open-loop Poisson arrival process: it returns
// how many requests arrive in each of the given ticks at the offered
// rate (mean requests per tick). Inter-arrival gaps are drawn from a
// private seeded exponential stream, so the schedule is a pure
// function of (rate, ticks, seed) - the load it describes exists
// before the system under test runs, which is what "open loop" means:
// a slow scheduler cannot push its own arrivals into the future.
func Arrivals(rate float64, ticks int, seed int64) []int {
	counts := make([]int, ticks)
	if rate <= 0 || ticks <= 0 {
		return counts
	}
	rng := rand.New(rand.NewSource(seed))
	t := rng.ExpFloat64() / rate
	for t < float64(ticks) {
		counts[int(t)]++
		t += rng.ExpFloat64() / rate
	}
	return counts
}
