package load_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"albireo/internal/fleet"
	"albireo/internal/load"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

func TestArrivalsDeterministic(t *testing.T) {
	t.Parallel()
	a := load.Arrivals(0.8, 500, 42)
	b := load.Arrivals(0.8, 500, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must script the same arrivals")
	}
	c := load.Arrivals(0.8, 500, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should script different arrivals")
	}
	total := 0
	for _, n := range a {
		total += n
	}
	// Poisson(0.8 * 500) = 400 expected; 5 sigma is 100.
	if total < 300 || total > 500 {
		t.Fatalf("arrival count %d far from offered 400", total)
	}
	if got := load.Arrivals(0, 10, 1); len(got) != 10 {
		t.Fatalf("zero rate must still script %d empty ticks, got %d", 10, len(got))
	}
}

func TestNullBackendShapes(t *testing.T) {
	t.Parallel()
	be := load.NullBackend{}
	in := tensor.RandomVolume(3, 8, 8, 1)
	w := tensor.RandomKernels(4, 3, 3, 3, 2)
	out := be.Conv(in, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
	if out.Z != 4 || out.Y != 8 || out.X != 8 {
		t.Fatalf("conv output %dx%dx%d, want 4x8x8", out.Z, out.Y, out.X)
	}
	// Zero-value config: stride defaults to 1 like the real backends.
	pw := tensor.RandomKernels(5, 3, 1, 1, 3)
	out = be.Conv(in, pw, tensor.ConvConfig{}, false)
	if out.Z != 5 || out.Y != 8 || out.X != 8 {
		t.Fatalf("pointwise output %dx%dx%d, want 5x8x8", out.Z, out.Y, out.X)
	}
	wfc := tensor.RandomKernels(6, 4, 8, 8, 4)
	if got := len(be.FullyConnected(out, wfc, false)); got != 6 {
		t.Fatalf("fc logits = %d, want 6", got)
	}
	if be.Name() != "null" {
		t.Fatalf("name = %q", be.Name())
	}
}

// TestRunPointReconciles drives one saturating point and checks the
// request-level view against the fleet's own counters: nothing is
// lost, nothing is double-counted, and every completed request
// carries an exactly reconciling decomposition.
func TestRunPointReconciles(t *testing.T) {
	t.Parallel()
	cfg := load.Config{Rate: 1.5, Ticks: 100, Seed: 7}
	opt := fleet.Options{MaxBatch: 4, MaxLinger: 2, QueueDepth: 16}
	res, err := load.RunPoint(cfg, opt, load.NullUnits(2)...)
	if err != nil {
		t.Fatalf("RunPoint: %v", err)
	}
	if res.Issued == 0 || res.Completed == 0 {
		t.Fatal("point measured nothing")
	}
	if res.Admitted+res.Shed != res.Issued {
		t.Fatalf("admitted %d + shed %d != issued %d", res.Admitted, res.Shed, res.Issued)
	}
	if res.Shed == 0 {
		t.Fatal("rate 1.5/tick against 2 null workers was meant to shed")
	}
	if int64(len(res.Stages)) != res.Completed {
		t.Fatalf("stages %d != completed %d", len(res.Stages), res.Completed)
	}
	for i, st := range res.Stages {
		if st.EndToEnd() != st.Linger()+st.QueueWait()+st.Execute()+st.Delivery() {
			t.Fatalf("request %d decomposition does not reconcile: %+v", i, st)
		}
	}
	snap := res.Snapshot
	if got := snap.Counters[fleet.MetricAdmitted]; got != res.Admitted {
		t.Fatalf("admitted counter %d != result %d", got, res.Admitted)
	}
	if got := snap.Counters[fleet.MetricShed]; got != res.Shed {
		t.Fatalf("shed counter %d != result %d", got, res.Shed)
	}
	if got := snap.SumCounters(fleet.MetricCompleted); got != res.Completed {
		t.Fatalf("completed counter %d != result %d", got, res.Completed)
	}
	if got := snap.Histograms[fleet.MetricLatencyE2E].Count; got != res.Completed {
		t.Fatalf("e2e histogram count %d != completed %d", got, res.Completed)
	}
}

// TestRunPointDeterministic is the property the baseline gate stands
// on: identical (seed, rate, ticks, pool) yields identical results,
// stamps, and registry snapshots.
func TestRunPointDeterministic(t *testing.T) {
	t.Parallel()
	cfg := load.Config{Rate: 0.9, Ticks: 80, Seed: 11}
	opt := fleet.Options{MaxBatch: 4, MaxLinger: 1, QueueDepth: 8}
	a, err := load.RunPoint(cfg, opt, load.NullUnits(2)...)
	if err != nil {
		t.Fatalf("RunPoint a: %v", err)
	}
	b, err := load.RunPoint(cfg, opt, load.NullUnits(2)...)
	if err != nil {
		t.Fatalf("RunPoint b: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the full result bit for bit")
	}
}

func TestTickStats(t *testing.T) {
	t.Parallel()
	if got := load.TickStats(nil); got != (load.StageStats{}) {
		t.Fatalf("empty stats = %+v, want zero", got)
	}
	// 10 samples, unsorted on purpose.
	s := load.TickStats([]int64{9, 1, 2, 3, 4, 5, 6, 7, 8, 10})
	want := load.StageStats{Mean: 5.5, P50: 5, P90: 9, P99: 10, P999: 10, Max: 10}
	if s != want {
		t.Fatalf("stats = %+v, want %+v", s, want)
	}
	one := load.TickStats([]int64{42})
	if one.P50 != 42 || one.P999 != 42 || one.Mean != 42 || one.Max != 42 {
		t.Fatalf("single-sample stats = %+v", one)
	}
}

func TestBuildPointAndGate(t *testing.T) {
	t.Parallel()
	res := load.Result{
		Issued: 10, Admitted: 8, Completed: 8, Shed: 2,
		WindowTicks: 10, TotalTicks: 20,
		Stages: []fleet.StageTicks{
			{Arrive: 0, Dispatch: 1, ExecStart: 1, ExecEnd: 4, Deliver: 4},
			{Arrive: 2, Dispatch: 2, ExecStart: 4, ExecEnd: 7, Deliver: 7},
		},
	}
	p := load.BuildPoint(2, 1.0, res)
	if p.ShedFraction != 0.2 {
		t.Fatalf("shed fraction = %g, want 0.2", p.ShedFraction)
	}
	if p.AchievedRate != 0.4 {
		t.Fatalf("achieved rate = %g, want 0.4", p.AchievedRate)
	}
	if p.E2E.Max != 5 || p.Execute.Max != 3 {
		t.Fatalf("stats wrong: e2e %+v execute %+v", p.E2E, p.Execute)
	}

	base := load.Report{Schema: load.ReportSchema, Points: []load.Point{p}}
	var out bytes.Buffer
	if err := load.Gate(&out, base, base, 0.1); err != nil {
		t.Fatalf("gate at baseline: %v", err)
	}
	if !strings.Contains(out.String(), "within p99 baseline") {
		t.Fatalf("gate output %q", out.String())
	}

	worse := p
	worse.E2E.P99 = p.E2E.P99*2 + 10
	rep := load.Report{Schema: load.ReportSchema, Points: []load.Point{worse}}
	if err := load.Gate(&out, rep, base, 0.1); err == nil {
		t.Fatal("gate must fail on a p99 regression")
	}

	if err := load.Gate(&out, load.Report{}, base, 0.1); err == nil {
		t.Fatal("gate must fail when a baseline point is unmeasured")
	}
}

// TestRunHTTP exercises the wall-clock driver against a stub endpoint
// that sheds every fourth request.
func TestRunHTTP(t *testing.T) {
	t.Parallel()
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1)%4 == 0 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"logits":[1]}`))
	}))
	defer srv.Close()

	res, err := load.RunHTTP(context.Background(), load.HTTPConfig{
		URL:      srv.URL,
		Rate:     400,
		Duration: 100 * time.Millisecond,
		Seed:     5,
		Clock:    obs.WallClock{},
	})
	if err != nil {
		t.Fatalf("RunHTTP: %v", err)
	}
	if res.Scheduled == 0 || res.Issued != res.Scheduled {
		t.Fatalf("scheduled %d issued %d", res.Scheduled, res.Issued)
	}
	if res.Completed+res.Shed+res.Errors != res.Issued {
		t.Fatalf("outcomes %d+%d+%d do not partition issued %d",
			res.Completed, res.Shed, res.Errors, res.Issued)
	}
	if res.Completed == 0 || res.Shed == 0 {
		t.Fatalf("expected both completions and sheds, got %d and %d", res.Completed, res.Shed)
	}
	if res.LatencyMicros.Max <= 0 {
		t.Fatalf("latency stats empty: %+v", res.LatencyMicros)
	}

	if _, err := load.RunHTTP(context.Background(), load.HTTPConfig{}); err == nil {
		t.Fatal("empty config must be rejected")
	}
	if _, err := load.RunHTTP(context.Background(), load.HTTPConfig{
		URL: srv.URL, Rate: 1, Duration: time.Second,
	}); err == nil {
		t.Fatal("missing clock must be rejected")
	}
}
