package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major 2-D tensor: element (r, c) lives at
// Data[r*C+c]. It is the activation/weight substrate of the GEMM
// workloads (MLP heads, LSTM cells, attention blocks) the photonic
// fabric serves beyond convolution; the exact reference for the
// analog GEMM path is MatMul below.
type Matrix struct {
	R, C int
	Data []float64 // len R*C, column fastest
}

// NewMatrix allocates a zeroed R x C matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("tensor: non-positive matrix shape %dx%d", r, c)) //lint:ignore exit-hygiene matrix shape invariant; caller bug
	}
	return &Matrix{R: r, C: c, Data: make([]float64, r*c)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.C+c] }

// Set writes element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.C+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	v := 0.0
	for _, x := range m.Data {
		if a := math.Abs(x); a > v {
			v = a
		}
	}
	return v
}

// String implements fmt.Stringer.
func (m *Matrix) String() string { return fmt.Sprintf("matrix{%dx%d}", m.R, m.C) }

// MatMul computes the exact product a(M x K) * b(K x N) in float64 -
// the digital reference the analog GEMM path is validated against.
func MatMul(a, b *Matrix) *Matrix {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: matmul inner dims %d != %d", a.C, b.R)) //lint:ignore exit-hygiene matmul shape invariant; caller bug
	}
	out := NewMatrix(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.Data[i*a.C : (i+1)*a.C]
		orow := out.Data[i*out.C : (i+1)*out.C]
		for k, av := range arow {
			brow := b.Data[k*b.C : (k+1)*b.C]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns a new matrix with rows and columns swapped.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.C, m.R)
	for r := 0; r < m.R; r++ {
		for c := 0; c < m.C; c++ {
			out.Data[c*m.R+r] = m.Data[r*m.C+c]
		}
	}
	return out
}

// AddBias adds bias[c] to every element of column c, in place, and
// returns the matrix. This is the digital aggregation-unit bias add of
// the GEMM workloads.
func (m *Matrix) AddBias(bias []float64) *Matrix {
	if len(bias) != m.C {
		panic(fmt.Sprintf("tensor: bias length %d != columns %d", len(bias), m.C)) //lint:ignore exit-hygiene bias shape invariant; caller bug
	}
	for r := 0; r < m.R; r++ {
		row := m.Data[r*m.C : (r+1)*m.C]
		for c := range row {
			row[c] += bias[c]
		}
	}
	return m
}

// ReLUMat applies max(0, x) in place and returns the matrix.
func ReLUMat(m *Matrix) *Matrix {
	for i, x := range m.Data {
		if x < 0 {
			m.Data[i] = 0
		}
	}
	return m
}

// SoftmaxRows applies a numerically-stable softmax to each row in
// place and returns the matrix (the digital softmax between the QK^T
// and AV GEMMs of an attention block).
func SoftmaxRows(m *Matrix) *Matrix {
	for r := 0; r < m.R; r++ {
		row := m.Data[r*m.C : (r+1)*m.C]
		max := math.Inf(-1)
		for _, x := range row {
			if x > max {
				max = x
			}
		}
		var sum float64
		for c, x := range row {
			e := math.Exp(x - max)
			row[c] = e
			sum += e
		}
		for c := range row {
			row[c] /= sum
		}
	}
	return m
}

// SigmoidMat applies 1/(1+e^-x) in place and returns the matrix.
func SigmoidMat(m *Matrix) *Matrix {
	for i, x := range m.Data {
		m.Data[i] = 1 / (1 + math.Exp(-x))
	}
	return m
}

// TanhMat applies tanh in place and returns the matrix.
func TanhMat(m *Matrix) *Matrix {
	for i, x := range m.Data {
		m.Data[i] = math.Tanh(x)
	}
	return m
}

// Scale multiplies every element by s in place and returns the matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMat returns a + b elementwise. Shapes must match.
func AddMat(a, b *Matrix) *Matrix {
	if a.R != b.R || a.C != b.C {
		panic("tensor: AddMat shape mismatch") //lint:ignore exit-hygiene elementwise shape invariant; caller bug
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// MulMat returns a * b elementwise (Hadamard product, the LSTM gate
// combine). Shapes must match.
func MulMat(a, b *Matrix) *Matrix {
	if a.R != b.R || a.C != b.C {
		panic("tensor: MulMat shape mismatch") //lint:ignore exit-hygiene elementwise shape invariant; caller bug
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] *= b.Data[i]
	}
	return out
}

// RandomMatrix returns a matrix with uniform values in [-1, 1) -
// signed, unlike RandomVolume, because GEMM activations (hidden
// states, attention scores) are not optical-power-encoded until the
// chip splits them into positive and negative passes. Deterministic
// for a given seed.
func RandomMatrix(r, c int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomNonNegMatrix returns a matrix with uniform values in [0, 1),
// mimicking post-ReLU GEMM activations.
func RandomNonNegMatrix(r, c int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}
