package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConvOutputDim(t *testing.T) {
	// Eq. 1 examples:
	// 224-input, 3x3 kernel, pad 1, stride 1 -> 224 (VGG layers).
	if got := ConvOutputDim(224, 3, 1, 1); got != 224 {
		t.Errorf("VGG conv dim = %d, want 224", got)
	}
	// AlexNet conv1: 227 input, 11x11, pad 0, stride 4 -> 55.
	if got := ConvOutputDim(227, 11, 0, 4); got != 55 {
		t.Errorf("AlexNet conv1 dim = %d, want 55", got)
	}
	// 7x7 stride 2 pad 3 on 224 -> 112 (ResNet stem).
	if got := ConvOutputDim(224, 7, 3, 2); got != 112 {
		t.Errorf("ResNet stem dim = %d, want 112", got)
	}
	// Window larger than padded input -> 0.
	if got := ConvOutputDim(2, 5, 0, 1); got != 0 {
		t.Errorf("degenerate dim = %d, want 0", got)
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// A 1x1 identity kernel reproduces the input channel.
	a := RandomVolume(1, 4, 4, 1)
	w := NewKernels(1, 1, 1, 1)
	w.Set(0, 0, 0, 0, 1)
	out := Conv(a, w, ConvConfig{})
	for i := range a.Data {
		if math.Abs(out.Data[i]-a.Data[i]) > 1e-12 {
			t.Fatal("identity conv should reproduce input")
		}
	}
}

func TestConvHandComputed(t *testing.T) {
	// 1 channel, 3x3 input, 2x2 kernel, stride 1, no pad.
	a := NewVolume(1, 3, 3)
	a.Fill(func(z, y, x int) float64 { return float64(y*3 + x + 1) }) // 1..9
	w := NewKernels(1, 1, 2, 2)
	w.Fill(func(m, z, y, x int) float64 { return 1 }) // box filter
	out := Conv(a, w, ConvConfig{})
	if out.Y != 2 || out.X != 2 {
		t.Fatalf("output shape %dx%d, want 2x2", out.Y, out.X)
	}
	want := [][]float64{{12, 16}, {24, 28}} // sums of 2x2 blocks
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if math.Abs(out.At(0, y, x)-want[y][x]) > 1e-12 {
				t.Errorf("out[%d][%d] = %g, want %g", y, x, out.At(0, y, x), want[y][x])
			}
		}
	}
}

func TestConvPadding(t *testing.T) {
	// Same-padding 3x3 box filter over a single-pixel impulse sums to
	// 1 at every position covered by the kernel.
	a := NewVolume(1, 5, 5)
	a.Set(0, 2, 2, 1)
	w := NewKernels(1, 1, 3, 3)
	w.Fill(func(m, z, y, x int) float64 { return 1 })
	out := Conv(a, w, ConvConfig{Pad: 1})
	if out.Y != 5 || out.X != 5 {
		t.Fatalf("same padding should preserve shape, got %dx%d", out.Y, out.X)
	}
	var total float64
	for _, v := range out.Data {
		total += v
	}
	if math.Abs(total-9) > 1e-12 {
		t.Errorf("impulse response sum = %g, want 9", total)
	}
}

func TestConvStride(t *testing.T) {
	a := RandomVolume(2, 8, 8, 2)
	w := RandomKernels(3, 2, 3, 3, 3)
	out := Conv(a, w, ConvConfig{Stride: 2, Pad: 1})
	if out.Z != 3 || out.Y != 4 || out.X != 4 {
		t.Fatalf("strided output shape %dx%dx%d, want 3x4x4", out.Z, out.Y, out.X)
	}
	// Spot-check one strided position against a direct sum.
	var want float64
	for z := 0; z < 2; z++ {
		for ky := 0; ky < 3; ky++ {
			for kx := 0; kx < 3; kx++ {
				want += a.AtPadded(z, 2*2-1+ky, 2*1-1+kx) * w.At(1, z, ky, kx)
			}
		}
	}
	if math.Abs(out.At(1, 2, 1)-want) > 1e-12 {
		t.Error("strided convolution value mismatch")
	}
}

func TestConvGroups(t *testing.T) {
	// Grouped conv with 2 groups: output m only sees its half of the
	// input channels.
	a := RandomVolume(4, 4, 4, 4)
	w := RandomKernels(2, 2, 1, 1, 5)
	out := Conv(a, w, ConvConfig{Groups: 2})
	// Output 0 uses input channels 0-1, output 1 uses 2-3.
	var want0 float64
	for z := 0; z < 2; z++ {
		want0 += a.At(z, 1, 1) * w.At(0, z, 0, 0)
	}
	if math.Abs(out.At(0, 1, 1)-want0) > 1e-12 {
		t.Error("group 0 mismatch")
	}
	var want1 float64
	for z := 0; z < 2; z++ {
		want1 += a.At(2+z, 1, 1) * w.At(1, z, 0, 0)
	}
	if math.Abs(out.At(1, 1, 1)-want1) > 1e-12 {
		t.Error("group 1 mismatch")
	}
}

func TestConvDepthwise(t *testing.T) {
	a := RandomVolume(3, 6, 6, 6)
	w := RandomKernels(3, 1, 3, 3, 7)
	out := Conv(a, w, ConvConfig{Pad: 1, Depthwise: true})
	if out.Z != 3 || out.Y != 6 || out.X != 6 {
		t.Fatal("depthwise output shape")
	}
	// Channel independence: zeroing other channels must not change
	// channel 1's output.
	masked := a.Clone()
	for z := 0; z < 3; z++ {
		if z == 1 {
			continue
		}
		for y := 0; y < 6; y++ {
			for x := 0; x < 6; x++ {
				masked.Set(z, y, x, 0)
			}
		}
	}
	out2 := Conv(masked, w, ConvConfig{Pad: 1, Depthwise: true})
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			if math.Abs(out.At(1, y, x)-out2.At(1, y, x)) > 1e-12 {
				t.Fatal("depthwise channels must be independent")
			}
		}
	}
}

func TestConvLinearity(t *testing.T) {
	// Property: conv(a1 + a2) = conv(a1) + conv(a2).
	f := func(seed int64) bool {
		a1 := RandomVolume(2, 5, 5, seed)
		a2 := RandomVolume(2, 5, 5, seed+1)
		w := RandomKernels(2, 2, 3, 3, seed+2)
		sum := a1.Clone()
		for i := range sum.Data {
			sum.Data[i] += a2.Data[i]
		}
		c1 := Conv(a1, w, ConvConfig{Pad: 1})
		c2 := Conv(a2, w, ConvConfig{Pad: 1})
		cs := Conv(sum, w, ConvConfig{Pad: 1})
		for i := range cs.Data {
			if math.Abs(cs.Data[i]-(c1.Data[i]+c2.Data[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFullyConnected(t *testing.T) {
	a := RandomVolume(2, 3, 3, 11)
	w := RandomKernels(4, 2, 3, 3, 12)
	out := FullyConnected(a, w)
	if len(out) != 4 {
		t.Fatal("FC output length")
	}
	// FC is equivalent to a conv whose kernel covers the whole input.
	conv := Conv(a, w, ConvConfig{})
	if conv.Y != 1 || conv.X != 1 {
		t.Fatal("full-size kernel conv should be 1x1")
	}
	for m := 0; m < 4; m++ {
		if math.Abs(out[m]-conv.At(m, 0, 0)) > 1e-12 {
			t.Error("FC must equal whole-input convolution (Section III-C)")
		}
	}
}

func TestReLU(t *testing.T) {
	v := NewVolume(1, 1, 4)
	copy(v.Data, []float64{-1, 0, 2, -0.5})
	ReLU(v)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if v.Data[i] != want[i] {
			t.Errorf("ReLU[%d] = %g, want %g", i, v.Data[i], want[i])
		}
	}
	vec := ReLUVec([]float64{-3, 3})
	if vec[0] != 0 || vec[1] != 3 {
		t.Error("ReLUVec mismatch")
	}
}

func TestMaxPool(t *testing.T) {
	a := NewVolume(1, 4, 4)
	a.Fill(func(z, y, x int) float64 { return float64(y*4 + x) })
	out := MaxPool(a, 2, 2)
	if out.Y != 2 || out.X != 2 {
		t.Fatal("pool shape")
	}
	want := [][]float64{{5, 7}, {13, 15}}
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if out.At(0, y, x) != want[y][x] {
				t.Errorf("maxpool[%d][%d] = %g, want %g", y, x, out.At(0, y, x), want[y][x])
			}
		}
	}
}

func TestAvgPool(t *testing.T) {
	a := NewVolume(1, 2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	out := AvgPool(a, 2, 2)
	if out.At(0, 0, 0) != 2.5 {
		t.Errorf("avgpool = %g, want 2.5", out.At(0, 0, 0))
	}
}

func TestAdd(t *testing.T) {
	a := RandomVolume(2, 2, 2, 20)
	b := RandomVolume(2, 2, 2, 21)
	out := Add(a, b)
	for i := range out.Data {
		if math.Abs(out.Data[i]-(a.Data[i]+b.Data[i])) > 1e-12 {
			t.Fatal("Add mismatch")
		}
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	a := NewVolume(3, 4, 4)
	expectPanic("bad groups", func() {
		Conv(a, NewKernels(2, 3, 3, 3), ConvConfig{Groups: 2})
	})
	expectPanic("bad kernel depth", func() {
		Conv(a, NewKernels(2, 2, 3, 3), ConvConfig{})
	})
	expectPanic("bad depthwise", func() {
		Conv(a, NewKernels(2, 1, 3, 3), ConvConfig{Depthwise: true})
	})
	expectPanic("bad FC shape", func() {
		FullyConnected(a, NewKernels(1, 1, 1, 1))
	})
	expectPanic("Add mismatch", func() {
		Add(a, NewVolume(1, 1, 1))
	})
	expectPanic("zero stride output dim", func() {
		ConvOutputDim(4, 2, 0, 0)
	})
	expectPanic("negative volume", func() {
		NewVolume(-1, 2, 2)
	})
	expectPanic("negative kernels", func() {
		NewKernels(1, -1, 2, 2)
	})
}

func TestVolumeHelpers(t *testing.T) {
	v := NewVolume(1, 2, 2)
	v.Set(0, 1, 1, -3)
	if v.MaxAbs() != 3 {
		t.Error("MaxAbs")
	}
	if v.AtPadded(0, -1, 0) != 0 || v.AtPadded(0, 0, 5) != 0 {
		t.Error("padding should read as zero")
	}
	z, y, x := v.Shape()
	if z != 1 || y != 2 || x != 2 {
		t.Error("Shape")
	}
	c := v.Clone()
	c.Set(0, 0, 0, 9)
	if v.At(0, 0, 0) == 9 {
		t.Error("Clone must be deep")
	}
	k := RandomKernels(1, 1, 2, 2, 9)
	if k.MaxAbs() <= 0 || k.MaxAbs() > 1 {
		t.Error("random kernels should be clipped to [-1,1]")
	}
	if v.String() == "" {
		t.Error("String")
	}
}
