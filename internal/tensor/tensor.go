// Package tensor provides the minimal dense-tensor substrate the
// Albireo simulator computes on: 3-D input volumes A[z][y][x], 4-D
// kernel banks W[m][z][y][x], and the exact reference implementations
// of convolution (paper Algorithm 1), fully-connected layers, pooling,
// and activation functions. The functional photonic simulator in
// internal/core is validated against these references.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Volume is a 3-D tensor indexed [z][y][x] - the paper's input/output
// volume layout with depth (channels) first.
type Volume struct {
	Z, Y, X int
	Data    []float64 // len Z*Y*X, x fastest
}

// NewVolume allocates a zeroed volume of the given shape.
func NewVolume(z, y, x int) *Volume {
	if z < 0 || y < 0 || x < 0 {
		panic(fmt.Sprintf("tensor: negative volume shape %dx%dx%d", z, y, x)) //lint:ignore exit-hygiene negative volume shape invariant; caller bug
	}
	return &Volume{Z: z, Y: y, X: x, Data: make([]float64, z*y*x)}
}

// At returns element (z, y, x).
func (v *Volume) At(z, y, x int) float64 {
	return v.Data[(z*v.Y+y)*v.X+x]
}

// Set writes element (z, y, x).
func (v *Volume) Set(z, y, x int, val float64) {
	v.Data[(z*v.Y+y)*v.X+x] = val
}

// AtPadded returns element (z, y, x) treating out-of-bounds y/x as the
// zero padding of the convolution input.
func (v *Volume) AtPadded(z, y, x int) float64 {
	if y < 0 || y >= v.Y || x < 0 || x >= v.X {
		return 0
	}
	return v.At(z, y, x)
}

// Clone returns a deep copy.
func (v *Volume) Clone() *Volume {
	out := NewVolume(v.Z, v.Y, v.X)
	copy(out.Data, v.Data)
	return out
}

// Fill sets every element using f(z, y, x).
func (v *Volume) Fill(f func(z, y, x int) float64) {
	for z := 0; z < v.Z; z++ {
		for y := 0; y < v.Y; y++ {
			for x := 0; x < v.X; x++ {
				v.Set(z, y, x, f(z, y, x))
			}
		}
	}
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (v *Volume) MaxAbs() float64 {
	m := 0.0
	for _, x := range v.Data {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Shape returns (Z, Y, X).
func (v *Volume) Shape() (int, int, int) { return v.Z, v.Y, v.X }

// String implements fmt.Stringer.
func (v *Volume) String() string {
	return fmt.Sprintf("volume{%dx%dx%d}", v.Z, v.Y, v.X)
}

// Kernels is a bank of M convolution kernels, each Z channels of YxX
// weights: W[m][z][y][x].
type Kernels struct {
	M, Z, Y, X int
	Data       []float64
}

// NewKernels allocates a zeroed kernel bank.
func NewKernels(m, z, y, x int) *Kernels {
	if m < 0 || z < 0 || y < 0 || x < 0 {
		panic(fmt.Sprintf("tensor: negative kernel shape %dx%dx%dx%d", m, z, y, x)) //lint:ignore exit-hygiene negative kernel shape invariant; caller bug
	}
	return &Kernels{M: m, Z: z, Y: y, X: x, Data: make([]float64, m*z*y*x)}
}

// At returns weight (m, z, y, x).
func (k *Kernels) At(m, z, y, x int) float64 {
	return k.Data[((m*k.Z+z)*k.Y+y)*k.X+x]
}

// Set writes weight (m, z, y, x).
func (k *Kernels) Set(m, z, y, x int, val float64) {
	k.Data[((m*k.Z+z)*k.Y+y)*k.X+x] = val
}

// Fill sets every weight using f(m, z, y, x).
func (k *Kernels) Fill(f func(m, z, y, x int) float64) {
	for m := 0; m < k.M; m++ {
		for z := 0; z < k.Z; z++ {
			for y := 0; y < k.Y; y++ {
				for x := 0; x < k.X; x++ {
					k.Set(m, z, y, x, f(m, z, y, x))
				}
			}
		}
	}
}

// MaxAbs returns the largest absolute weight (0 for empty).
func (k *Kernels) MaxAbs() float64 {
	m := 0.0
	for _, x := range k.Data {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// RandomVolume returns a volume with uniform values in [0, 1),
// mimicking post-ReLU activations. Deterministic for a given seed.
func RandomVolume(z, y, x int, seed int64) *Volume {
	rng := rand.New(rand.NewSource(seed))
	v := NewVolume(z, y, x)
	for i := range v.Data {
		v.Data[i] = rng.Float64()
	}
	return v
}

// RandomKernels returns kernels with approximately normal weights
// (stddev 0.3, clipped to [-1, 1]), the bell-shaped distribution the
// paper cites for trained CNN layers (Section II-C.2).
func RandomKernels(m, z, y, x int, seed int64) *Kernels {
	rng := rand.New(rand.NewSource(seed))
	k := NewKernels(m, z, y, x)
	for i := range k.Data {
		w := rng.NormFloat64() * 0.3
		if w > 1 {
			w = 1
		}
		if w < -1 {
			w = -1
		}
		k.Data[i] = w
	}
	return k
}
