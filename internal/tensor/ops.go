package tensor

import (
	"fmt"
	"math"
)

// ConvOutputDim computes one spatial output dimension of a convolution
// (paper Eq. 1): B = (A - W + 2P)/S + 1. The paper typesets the
// division with a ceiling, but kernel placements must stay inside the
// padded input, so the standard floor semantics is used here; the two
// agree on every layer of the evaluated CNNs, where the division is
// exact.
func ConvOutputDim(a, w, p, s int) int {
	if s <= 0 {
		panic("tensor: stride must be positive") //lint:ignore exit-hygiene stride precondition; caller bug
	}
	num := a - w + 2*p
	if num < 0 {
		return 0
	}
	return num/s + 1
}

// ConvConfig describes a convolution layer's geometry.
type ConvConfig struct {
	// Stride and Pad apply symmetrically in x and y.
	Stride, Pad int
	// Groups partitions input and output channels (grouped
	// convolution, as in AlexNet's split layers). 1 means dense.
	Groups int
	// Depthwise marks a depthwise convolution (MobileNet): each input
	// channel is filtered independently; kernels have Z = 1 and
	// M equals the input channel count.
	Depthwise bool
}

// normalize fills defaulted fields.
func (c ConvConfig) normalize() ConvConfig {
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.Groups == 0 {
		c.Groups = 1
	}
	return c
}

// Conv computes the exact convolution of Algorithm 1 (extended with
// padding, stride, groups and depthwise support). It returns the
// output volume of shape [M][By][Bx] where By/Bx follow Eq. 1. No
// activation is applied; compose with ReLU explicitly.
func Conv(a *Volume, w *Kernels, cfg ConvConfig) *Volume {
	cfg = cfg.normalize()
	if cfg.Depthwise {
		return convDepthwise(a, w, cfg)
	}
	if a.Z%cfg.Groups != 0 || w.M%cfg.Groups != 0 {
		panic(fmt.Sprintf("tensor: groups %d do not divide channels %d/%d", cfg.Groups, a.Z, w.M)) //lint:ignore exit-hygiene group divisibility invariant; caller bug
	}
	if w.Z != a.Z/cfg.Groups {
		panic(fmt.Sprintf("tensor: kernel depth %d != input channels per group %d", w.Z, a.Z/cfg.Groups)) //lint:ignore exit-hygiene kernel depth invariant; caller bug
	}
	by := ConvOutputDim(a.Y, w.Y, cfg.Pad, cfg.Stride)
	bx := ConvOutputDim(a.X, w.X, cfg.Pad, cfg.Stride)
	out := NewVolume(w.M, by, bx)
	mPerGroup := w.M / cfg.Groups
	zPerGroup := a.Z / cfg.Groups
	for m := 0; m < w.M; m++ {
		g := m / mPerGroup
		zBase := g * zPerGroup
		for oy := 0; oy < by; oy++ {
			for ox := 0; ox < bx; ox++ {
				var sum float64
				ay0 := oy*cfg.Stride - cfg.Pad
				ax0 := ox*cfg.Stride - cfg.Pad
				for z := 0; z < w.Z; z++ {
					for ky := 0; ky < w.Y; ky++ {
						for kx := 0; kx < w.X; kx++ {
							sum += a.AtPadded(zBase+z, ay0+ky, ax0+kx) * w.At(m, z, ky, kx)
						}
					}
				}
				out.Set(m, oy, ox, sum)
			}
		}
	}
	return out
}

// convDepthwise applies one single-channel kernel per input channel.
func convDepthwise(a *Volume, w *Kernels, cfg ConvConfig) *Volume {
	if w.M != a.Z || w.Z != 1 {
		panic(fmt.Sprintf("tensor: depthwise wants M=%d kernels of depth 1, got M=%d Z=%d", a.Z, w.M, w.Z)) //lint:ignore exit-hygiene depthwise shape invariant; caller bug
	}
	by := ConvOutputDim(a.Y, w.Y, cfg.Pad, cfg.Stride)
	bx := ConvOutputDim(a.X, w.X, cfg.Pad, cfg.Stride)
	out := NewVolume(a.Z, by, bx)
	for z := 0; z < a.Z; z++ {
		for oy := 0; oy < by; oy++ {
			for ox := 0; ox < bx; ox++ {
				var sum float64
				ay0 := oy*cfg.Stride - cfg.Pad
				ax0 := ox*cfg.Stride - cfg.Pad
				for ky := 0; ky < w.Y; ky++ {
					for kx := 0; kx < w.X; kx++ {
						sum += a.AtPadded(z, ay0+ky, ax0+kx) * w.At(z, 0, ky, kx)
					}
				}
				out.Set(z, oy, ox, sum)
			}
		}
	}
	return out
}

// FullyConnected computes out[m] = sum over the whole input volume of
// a * w[m], the FC mapping of Section III-C ("a kernel that has a
// receptive field that is the size of the entire input volume"). The
// kernel bank must match the input shape exactly.
func FullyConnected(a *Volume, w *Kernels) []float64 {
	if w.Z != a.Z || w.Y != a.Y || w.X != a.X {
		panic(fmt.Sprintf("tensor: FC kernel shape %dx%dx%d != input %dx%dx%d", //lint:ignore exit-hygiene FC kernel shape invariant; caller bug
			w.Z, w.Y, w.X, a.Z, a.Y, a.X))
	}
	out := make([]float64, w.M)
	n := a.Z * a.Y * a.X
	for m := 0; m < w.M; m++ {
		base := m * n
		var sum float64
		for i := 0; i < n; i++ {
			sum += a.Data[i] * w.Data[base+i]
		}
		out[m] = sum
	}
	return out
}

// ReLU applies max(0, x) in place and returns the volume.
func ReLU(v *Volume) *Volume {
	for i, x := range v.Data {
		if x < 0 {
			v.Data[i] = 0
		}
	}
	return v
}

// ReLUVec applies max(0, x) to a vector in place and returns it.
func ReLUVec(v []float64) []float64 {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
	return v
}

// MaxPool performs max pooling with the given window and stride.
func MaxPool(a *Volume, window, stride int) *Volume {
	by := ConvOutputDim(a.Y, window, 0, stride)
	bx := ConvOutputDim(a.X, window, 0, stride)
	out := NewVolume(a.Z, by, bx)
	for z := 0; z < a.Z; z++ {
		for oy := 0; oy < by; oy++ {
			for ox := 0; ox < bx; ox++ {
				m := math.Inf(-1)
				for ky := 0; ky < window; ky++ {
					for kx := 0; kx < window; kx++ {
						y, x := oy*stride+ky, ox*stride+kx
						if y < a.Y && x < a.X {
							if v := a.At(z, y, x); v > m {
								m = v
							}
						}
					}
				}
				out.Set(z, oy, ox, m)
			}
		}
	}
	return out
}

// AvgPool performs average pooling with the given window and stride.
func AvgPool(a *Volume, window, stride int) *Volume {
	by := ConvOutputDim(a.Y, window, 0, stride)
	bx := ConvOutputDim(a.X, window, 0, stride)
	out := NewVolume(a.Z, by, bx)
	for z := 0; z < a.Z; z++ {
		for oy := 0; oy < by; oy++ {
			for ox := 0; ox < bx; ox++ {
				var sum float64
				var cnt int
				for ky := 0; ky < window; ky++ {
					for kx := 0; kx < window; kx++ {
						y, x := oy*stride+ky, ox*stride+kx
						if y < a.Y && x < a.X {
							sum += a.At(z, y, x)
							cnt++
						}
					}
				}
				out.Set(z, oy, ox, sum/float64(cnt))
			}
		}
	}
	return out
}

// Add returns a + b elementwise (residual connections). Shapes must
// match.
func Add(a, b *Volume) *Volume {
	if a.Z != b.Z || a.Y != b.Y || a.X != b.X {
		panic("tensor: Add shape mismatch") //lint:ignore exit-hygiene elementwise shape invariant; caller bug
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}
