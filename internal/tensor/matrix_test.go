package tensor

import (
	"math"
	"testing"
)

func TestMatMulSmall(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if got.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, got.Data[i], w)
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	a := RandomMatrix(5, 7, 1)
	b := RandomMatrix(7, 4, 2)
	got := MatMul(a, b)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			var want float64
			for k := 0; k < a.C; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(got.At(i, j)-want) > 1e-12 {
				t.Fatalf("MatMul(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	m := RandomMatrix(3, 5, 3)
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatalf("double transpose changed element %d", i)
		}
	}
	if got := m.Transpose().At(4, 2); got != m.At(2, 4) {
		t.Fatalf("transpose element mismatch: %v != %v", got, m.At(2, 4))
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := RandomMatrix(4, 6, 4)
	SoftmaxRows(m)
	for r := 0; r < m.R; r++ {
		var sum float64
		for c := 0; c < m.C; c++ {
			v := m.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %v", r, sum)
		}
	}
}

func TestAddBiasAndElementwise(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, -2, 3, -4})
	m.AddBias([]float64{10, 20})
	want := []float64{11, 18, 13, 16}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddBias[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
	h := MulMat(m, m)
	if h.At(1, 1) != 16*16 {
		t.Fatalf("MulMat = %v, want 256", h.At(1, 1))
	}
	s := AddMat(m, m)
	if s.At(0, 0) != 22 {
		t.Fatalf("AddMat = %v, want 22", s.At(0, 0))
	}
	r := NewMatrix(1, 3)
	copy(r.Data, []float64{-1, 0, 2})
	ReLUMat(r)
	if r.Data[0] != 0 || r.Data[2] != 2 {
		t.Fatalf("ReLUMat = %v", r.Data)
	}
}

func TestSigmoidTanh(t *testing.T) {
	m := NewMatrix(1, 2)
	copy(m.Data, []float64{0, 1000})
	SigmoidMat(m)
	if m.Data[0] != 0.5 || m.Data[1] != 1 {
		t.Fatalf("SigmoidMat = %v", m.Data)
	}
	n := NewMatrix(1, 2)
	copy(n.Data, []float64{0, 2})
	TanhMat(n)
	if n.Data[0] != 0 || n.Data[1] != math.Tanh(2) {
		t.Fatalf("TanhMat = %v", n.Data)
	}
}

func TestRandomMatrixDeterministic(t *testing.T) {
	a := RandomMatrix(3, 3, 42)
	b := RandomMatrix(3, 3, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("RandomMatrix not deterministic at %d", i)
		}
	}
	hasNeg := false
	for _, v := range a.Data {
		if v < 0 {
			hasNeg = true
		}
	}
	if !hasNeg {
		t.Fatal("RandomMatrix produced no negative values")
	}
	nn := RandomNonNegMatrix(3, 3, 42)
	for _, v := range nn.Data {
		if v < 0 {
			t.Fatalf("RandomNonNegMatrix produced %v", v)
		}
	}
}
