// Package obs is the simulator's observability layer: a registry of
// counters, gauges, and histograms plus a typed span trace, built on
// the standard library only.
//
// The paper's whole evaluation is an accounting argument - Table III
// prices device activity, Figure 8 compares latency/energy/EDP, and
// Section III-B's "no partial sum writes back to memory" is a claim
// about SRAM traffic. This package lets the simulator *observe* that
// activity while it computes real layers (MZM reprogramming events,
// MRR switch events, balanced-PD reads, ADC conversions, SRAM bytes)
// instead of only deriving it from closed-form counts, so the energy
// model can be validated against what the modeled chip actually did.
//
// Contract:
//
//   - Deterministic: simulation-side instruments are cycle- or
//     event-denominated. Nothing in this package reads the wall clock
//     except WallClock, the injected Clock implementation that lives
//     only at the cmd boundary. Two runs with the same seed produce
//     bit-identical snapshots; Conv and ConvConcurrent produce
//     bit-identical counter totals because counter addition commutes.
//   - Nil-safe and off by default: every method on a nil *Registry,
//     nil *Trace, nil *Span, nil *Counter, nil *Gauge, and nil
//     *Histogram is a no-op, so instrumented hot paths cost one nil
//     check when observation is not attached.
//   - Race-safe: counters and gauges are atomics, histograms and the
//     trace are mutex-protected, so ConvConcurrent's goroutines may
//     record freely.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" dimension of a metric (the Prometheus
// label model). Metrics with the same name but different labels are
// distinct instruments that share one # TYPE block on exposition.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter or n <= 0
// (counters are monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float instrument that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates onto the gauge value (CAS loop). No-op on nil.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bucketed distribution instrument with fixed upper
// bounds (ascending), an implicit +Inf bucket, and a running sum.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  int64
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshotLocked copies the histogram state; callers hold no lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// DefaultBuckets is the bucket ladder used when a histogram is
// registered with no explicit bounds: a decade ladder suited to
// dimensionless ratios (divergence, utilization).
var DefaultBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.5, 1}

// LatencyBuckets is the bucket ladder for tick-denominated latency
// histograms (the fleet's per-stage and end-to-end decomposition).
// The near-geometric spacing keeps relative error under ~25% per
// bucket across four decades, fine enough that a p999 estimate from
// Quantile lands in the right bucket instead of saturating at +Inf
// for any tail a bounded admission queue can produce.
var LatencyBuckets = []float64{
	1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96,
	128, 160, 192, 256, 320, 384, 512, 640, 768, 1024, 1280, 1536,
	2048, 2560, 3072, 4096, 5120, 6144, 8192, 10240, 12288, 16384,
}

// entry is one registered instrument with its identity split into the
// metric name and its labels (both needed for exposition).
type entry struct {
	name   string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named instruments. Lookup is get-or-create: asking
// for the same (name, labels) twice returns the same instrument, so
// callers may resolve instruments eagerly and cache the pointers out
// of hot paths.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry // keyed by canonical id
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// sanitizeName coerces a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]* by replacing invalid runes with '_'.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the text exposition
// format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// metricID renders the canonical identity of an instrument:
// name{k1="v1",k2="v2"} with label keys sorted.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", sanitizeName(l.Key), escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the entry for (name, labels), creating it with mk on
// first use.
func (r *Registry) lookup(name string, labels []Label, mk func(*entry)) *entry {
	name = sanitizeName(name)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		e = &entry{name: name, labels: append([]Label(nil), labels...)}
		mk(e)
		r.entries[id] = e
	}
	return e
}

// Counter returns the counter registered under (name, labels),
// creating it on first use. Nil registries return a nil (no-op)
// counter. A name already registered as another kind returns nil.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the histogram registered under (name, labels)
// with the given ascending upper bounds (DefaultBuckets when empty).
// Bounds are fixed by the first registration.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	return r.lookup(name, labels, func(e *entry) {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		e.h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
	}).h
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra
	// trailing element for the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Quantile estimates the q-quantile of the recorded distribution by
// linear interpolation inside the bucket containing the target rank -
// the same estimate Prometheus's histogram_quantile computes server
// side, so the exposed values and a scraper's own math agree. The
// first bucket interpolates from a lower edge of 0 (latencies and
// counts are non-negative); ranks that land in the +Inf bucket clamp
// to the highest finite bound, since no upper edge exists to
// interpolate toward. q outside [0,1] is clamped. An empty histogram
// reports 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Bounds) == 0 || len(h.Counts) != len(h.Bounds)+1 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, bound := range h.Bounds {
		c := float64(h.Counts[i])
		if c > 0 && cum+c >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			if rank <= cum {
				return lower
			}
			return lower + (bound-lower)*(rank-cum)/c
		}
		cum += c
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a frozen, comparable view of a registry, keyed by
// canonical metric id.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. Nil registries return an empty (but
// non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, e := range r.entries {
		switch {
		case e.c != nil:
			s.Counters[id] = e.c.Value()
		case e.g != nil:
			s.Gauges[id] = e.g.Value()
		case e.h != nil:
			s.Histograms[id] = e.h.snapshot()
		}
	}
	return s
}

// Delta returns the change from prev to s: counters and histogram
// counts subtract (ids missing from prev count from zero); gauges
// keep their current value (they are levels, not totals).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for id, v := range s.Counters {
		d.Counters[id] = v - prev.Counters[id]
	}
	for id, v := range s.Gauges {
		d.Gauges[id] = v
	}
	for id, h := range s.Histograms {
		p, ok := prev.Histograms[id]
		dh := HistogramSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
		if ok && len(p.Counts) == len(h.Counts) {
			for i := range dh.Counts {
				dh.Counts[i] -= p.Counts[i]
			}
			dh.Sum -= p.Sum
			dh.Count -= p.Count
		}
		d.Histograms[id] = dh
	}
	return d
}

// Equal reports whether two snapshots are bit-identical. Floats
// compare by their IEEE-754 bit patterns, which is the right notion
// for a determinism invariant (and keeps the float-equality lint
// honest).
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s.Counters) != len(o.Counters) || len(s.Gauges) != len(o.Gauges) ||
		len(s.Histograms) != len(o.Histograms) {
		return false
	}
	for id, v := range s.Counters {
		ov, ok := o.Counters[id]
		if !ok || v != ov {
			return false
		}
	}
	for id, v := range s.Gauges {
		ov, ok := o.Gauges[id]
		if !ok || math.Float64bits(v) != math.Float64bits(ov) {
			return false
		}
	}
	for id, h := range s.Histograms {
		oh, ok := o.Histograms[id]
		if !ok || !h.equal(oh) {
			return false
		}
	}
	return true
}

func (h HistogramSnapshot) equal(o HistogramSnapshot) bool {
	if h.Count != o.Count || math.Float64bits(h.Sum) != math.Float64bits(o.Sum) ||
		len(h.Bounds) != len(o.Bounds) || len(h.Counts) != len(o.Counts) {
		return false
	}
	for i := range h.Bounds {
		if math.Float64bits(h.Bounds[i]) != math.Float64bits(o.Bounds[i]) {
			return false
		}
	}
	for i := range h.Counts {
		if h.Counts[i] != o.Counts[i] {
			return false
		}
	}
	return true
}

// SumCounters sums every counter in the snapshot whose metric name is
// name, across all label sets - the "total over all PLCGs" helper.
func (s Snapshot) SumCounters(name string) int64 {
	var total int64
	prefix := name + "{"
	for id, v := range s.Counters {
		if id == name || strings.HasPrefix(id, prefix) {
			total += v
		}
	}
	return total
}

// promSample pairs one rendered sample's canonical id with its entry.
type promSample struct {
	id string
	e  *entry
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): a # TYPE line per metric name
// followed by its samples, sorted by name then label id so the output
// is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	byName := make(map[string][]promSample)
	var names []string
	for id, e := range r.entries {
		if _, ok := byName[e.name]; !ok {
			names = append(names, e.name)
		}
		//lint:ignore map-iteration-determinism per-name buckets are sorted by id before rendering, neutralizing map order
		byName[e.name] = append(byName[e.name], promSample{id: id, e: e})
	}
	r.mu.Unlock()

	sort.Strings(names)
	for _, name := range names {
		samples := byName[name]
		sort.Slice(samples, func(i, j int) bool { return samples[i].id < samples[j].id })
		kind := "counter"
		switch {
		case samples[0].e.g != nil:
			kind = "gauge"
		case samples[0].e.h != nil:
			kind = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind); err != nil {
			return err
		}
		for _, sm := range samples {
			var err error
			switch {
			case sm.e.c != nil:
				_, err = fmt.Fprintf(w, "%s %d\n", sm.id, sm.e.c.Value())
			case sm.e.g != nil:
				_, err = fmt.Fprintf(w, "%s %s\n", sm.id, formatFloat(sm.e.g.Value()))
			case sm.e.h != nil:
				err = writePrometheusHistogram(w, sm.e)
			}
			if err != nil {
				return err
			}
		}
		// Histogram families carry a derived companion family of
		// precomputed quantile gauges: _bucket/_sum/_count stay exactly
		// the standard histogram exposition (scrapers aggregate those
		// across instances), while <name>_quantile{q="..."} gives a
		// human or a quantile-SLO gate the tail without re-deriving it.
		if samples[0].e.h != nil {
			if err := writeQuantileFamily(w, name, samples); err != nil {
				return err
			}
		}
	}
	return nil
}

// ExpositionQuantiles are the quantiles rendered for every histogram
// as its derived _quantile gauge family.
var ExpositionQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// writeQuantileFamily renders the derived quantile gauges for one
// histogram family: one sample per (label set, quantile).
func writeQuantileFamily(w io.Writer, name string, samples []promSample) error {
	qname := name + "_quantile"
	if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", qname); err != nil {
		return err
	}
	for _, sm := range samples {
		snap := sm.e.h.snapshot()
		for _, q := range ExpositionQuantiles {
			labels := append(append([]Label(nil), sm.e.labels...), Label{Key: "q", Value: formatFloat(q)})
			if _, err := fmt.Fprintf(w, "%s %s\n", metricID(qname, labels), formatFloat(snap.Quantile(q))); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePrometheusHistogram renders one histogram as cumulative
// _bucket samples plus _sum and _count.
func writePrometheusHistogram(w io.Writer, e *entry) error {
	snap := e.h.snapshot()
	var cum int64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		labels := append(append([]Label(nil), e.labels...), Label{Key: "le", Value: formatFloat(bound)})
		if _, err := fmt.Fprintf(w, "%s %d\n", metricID(e.name+"_bucket", labels), cum); err != nil {
			return err
		}
	}
	cum += snap.Counts[len(snap.Counts)-1]
	infLabels := append(append([]Label(nil), e.labels...), Label{Key: "le", Value: "+Inf"})
	if _, err := fmt.Fprintf(w, "%s %d\n", metricID(e.name+"_bucket", infLabels), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", metricID(e.name+"_sum", e.labels), formatFloat(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", metricID(e.name+"_count", e.labels), snap.Count)
	return err
}

// formatFloat renders a float for the text format: shortest
// round-trip representation, with the special values Prometheus
// expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.ToLower(fmt.Sprintf("%g", v))
}
