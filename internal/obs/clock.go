package obs

import (
	"sync"
	"time"
)

// Clock abstracts wall time so that it only ever enters the system as
// an injected dependency at the cmd boundary. Simulation packages
// must never construct a WallClock: their telemetry is denominated in
// modulation cycles and event counts (the determinism contract the
// albireo-lint obs-determinism rule enforces). Servers and CLIs
// inject WallClock; tests inject ManualClock.
type Clock interface {
	Now() time.Time
}

// WallClock reads the real wall clock. It is the single sanctioned
// wall-time source in the module.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time {
	//lint:ignore determinism the injected Clock boundary is the one sanctioned wall-time source; simulation code receives a Clock, never calls this
	return time.Now()
}

// ManualClock is a deterministic Clock for tests: it returns a fixed
// instant until advanced.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a ManualClock starting at t.
func NewManualClock(t time.Time) *ManualClock {
	return &ManualClock{t: t}
}

// Now implements Clock.
func (m *ManualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Advance moves the clock forward by d.
func (m *ManualClock) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = m.t.Add(d)
}
