package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("albireo_events_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // monotone: negative adds ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("albireo_events_total"); again != c {
		t.Fatal("re-registration must return the same instrument")
	}
}

func TestLabeledInstrumentsAreDistinct(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a := r.Counter("adc_total", L("plcg", "0"))
	b := r.Counter("adc_total", L("plcg", "1"))
	if a == b {
		t.Fatal("different labels must yield different instruments")
	}
	a.Add(2)
	b.Add(3)
	s := r.Snapshot()
	if s.Counters[`adc_total{plcg="0"}`] != 2 || s.Counters[`adc_total{plcg="1"}`] != 3 {
		t.Fatalf("snapshot ids wrong: %v", s.Counters)
	}
	if got := s.SumCounters("adc_total"); got != 5 {
		t.Fatalf("SumCounters = %d, want 5", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a := r.Counter("x_total", L("b", "2"), L("a", "1"))
	b := r.Counter("x_total", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order must not change instrument identity")
	}
}

func TestNilSafety(t *testing.T) {
	t.Parallel()
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	c.Inc()
	c.Add(10)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must be inert")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}

	var tr *Trace
	sp := tr.StartSpan("root")
	sp.Event(Mark, "m")
	sp.StartSpan("child").End()
	sp.End()
	if tr.Len() != 0 {
		t.Fatal("nil trace must be inert")
	}
}

func TestGaugeAddAndSet(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	g := r.Gauge("energy_joules")
	g.Set(1.5)
	g.Add(0.25)
	if got := g.Value(); got != 1.75 {
		t.Fatalf("gauge = %g, want 1.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// Buckets: <=1 gets 0.5 and 1; <=10 gets 5; <=100 gets 50; +Inf gets 500.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 556.5 {
		t.Fatalf("count/sum = %d/%g", s.Count, s.Sum)
	}
}

func TestSnapshotDeltaAndEqual(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("steps_total")
	c.Add(3)
	before := r.Snapshot()
	c.Add(4)
	r.Gauge("level").Set(2)
	after := r.Snapshot()

	d := after.Delta(before)
	if d.Counters["steps_total"] != 4 {
		t.Fatalf("delta counter = %d, want 4", d.Counters["steps_total"])
	}
	if d.Gauges["level"] != 2 {
		t.Fatalf("delta gauge = %g, want 2 (gauges carry their level)", d.Gauges["level"])
	}
	if before.Equal(after) {
		t.Fatal("snapshots with different counts must not be Equal")
	}
	if !after.Equal(r.Snapshot()) {
		t.Fatal("unchanged registry must snapshot Equal")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("c_total", L("plcg", "0")).Add(7)
	r.Gauge("g").Set(1.25)
	r.Histogram("h", []float64{1}).Observe(0.5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r.Snapshot()) {
		t.Fatalf("JSON round trip changed the snapshot: %s", raw)
	}
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

func TestWritePrometheusFormat(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("adc_total", L("plcg", "0")).Add(11)
	r.Counter("adc_total", L("plcg", "1")).Add(13)
	r.Gauge("power_watts").Set(22.7)
	h := r.Histogram("div", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	types := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	if types != 3 {
		t.Errorf("want 3 # TYPE lines, got %d:\n%s", types, out)
	}
	for _, want := range []string{
		`adc_total{plcg="0"} 11`,
		`adc_total{plcg="1"} 13`,
		"# TYPE div histogram",
		`div_bucket{le="+Inf"} 2`,
		"div_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("exposition output must be deterministic")
	}
}

func TestNameSanitization(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("bad name-1").Inc()
	s := r.Snapshot()
	if _, ok := s.Counters["bad_name_1"]; !ok {
		t.Fatalf("name not sanitized: %v", s.Counters)
	}
}

func TestConcurrentCounters(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("racy_total")
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("racy_total").Value(); got != 8000 {
		t.Fatalf("concurrent count = %d, want 8000", got)
	}
}

func TestKindMismatchReturnsInertInstrument(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("x")
	g := r.Gauge("x") // already a counter: returns nil (inert) gauge
	g.Set(5)
	if g.Value() != 0 {
		t.Fatal("kind-mismatched lookup must be inert")
	}
}
