package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("albireo_events_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // monotone: negative adds ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("albireo_events_total"); again != c {
		t.Fatal("re-registration must return the same instrument")
	}
}

func TestLabeledInstrumentsAreDistinct(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a := r.Counter("adc_total", L("plcg", "0"))
	b := r.Counter("adc_total", L("plcg", "1"))
	if a == b {
		t.Fatal("different labels must yield different instruments")
	}
	a.Add(2)
	b.Add(3)
	s := r.Snapshot()
	if s.Counters[`adc_total{plcg="0"}`] != 2 || s.Counters[`adc_total{plcg="1"}`] != 3 {
		t.Fatalf("snapshot ids wrong: %v", s.Counters)
	}
	if got := s.SumCounters("adc_total"); got != 5 {
		t.Fatalf("SumCounters = %d, want 5", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a := r.Counter("x_total", L("b", "2"), L("a", "1"))
	b := r.Counter("x_total", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order must not change instrument identity")
	}
}

func TestNilSafety(t *testing.T) {
	t.Parallel()
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	c.Inc()
	c.Add(10)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must be inert")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}

	var tr *Trace
	sp := tr.StartSpan("root")
	sp.Event(Mark, "m")
	sp.StartSpan("child").End()
	sp.End()
	if tr.Len() != 0 {
		t.Fatal("nil trace must be inert")
	}
}

func TestGaugeAddAndSet(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	g := r.Gauge("energy_joules")
	g.Set(1.5)
	g.Add(0.25)
	if got := g.Value(); got != 1.75 {
		t.Fatalf("gauge = %g, want 1.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// Buckets: <=1 gets 0.5 and 1; <=10 gets 5; <=100 gets 50; +Inf gets 500.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 556.5 {
		t.Fatalf("count/sum = %d/%g", s.Count, s.Sum)
	}
}

func TestSnapshotDeltaAndEqual(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("steps_total")
	c.Add(3)
	before := r.Snapshot()
	c.Add(4)
	r.Gauge("level").Set(2)
	after := r.Snapshot()

	d := after.Delta(before)
	if d.Counters["steps_total"] != 4 {
		t.Fatalf("delta counter = %d, want 4", d.Counters["steps_total"])
	}
	if d.Gauges["level"] != 2 {
		t.Fatalf("delta gauge = %g, want 2 (gauges carry their level)", d.Gauges["level"])
	}
	if before.Equal(after) {
		t.Fatal("snapshots with different counts must not be Equal")
	}
	if !after.Equal(r.Snapshot()) {
		t.Fatal("unchanged registry must snapshot Equal")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("c_total", L("plcg", "0")).Add(7)
	r.Gauge("g").Set(1.25)
	r.Histogram("h", []float64{1}).Observe(0.5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r.Snapshot()) {
		t.Fatalf("JSON round trip changed the snapshot: %s", raw)
	}
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

func TestWritePrometheusFormat(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("adc_total", L("plcg", "0")).Add(11)
	r.Counter("adc_total", L("plcg", "1")).Add(13)
	r.Gauge("power_watts").Set(22.7)
	h := r.Histogram("div", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	types := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	if types != 4 {
		t.Errorf("want 4 # TYPE lines (incl. the derived quantile family), got %d:\n%s", types, out)
	}
	for _, want := range []string{
		`adc_total{plcg="0"} 11`,
		`adc_total{plcg="1"} 13`,
		"# TYPE div histogram",
		`div_bucket{le="+Inf"} 2`,
		"div_count 2",
		"# TYPE div_quantile gauge",
		`div_quantile{q="0.5"} 0.01`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("exposition output must be deterministic")
	}
}

func TestNameSanitization(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("bad name-1").Inc()
	s := r.Snapshot()
	if _, ok := s.Counters["bad_name_1"]; !ok {
		t.Fatalf("name not sanitized: %v", s.Counters)
	}
}

func TestConcurrentCounters(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("racy_total")
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("racy_total").Value(); got != 8000 {
		t.Fatalf("concurrent count = %d, want 8000", got)
	}
}

func TestKindMismatchReturnsInertInstrument(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("x")
	g := r.Gauge("x") // already a counter: returns nil (inert) gauge
	g.Set(5)
	if g.Value() != 0 {
		t.Fatal("kind-mismatched lookup must be inert")
	}
}

// TestHistogramQuantile pins the bucket-interpolated quantile
// estimate against hand-computed values.
func TestHistogramQuantile(t *testing.T) {
	t.Parallel()
	var empty HistogramSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}

	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// Counts: le1=2, le2=1, le4=2, le8=4, +Inf=1; total 10.
	cases := []struct {
		q, want float64
	}{
		{0, 0},    // rank 0: lower edge of the first occupied bucket
		{0.2, 1},  // rank 2 exactly fills the first bucket
		{0.3, 2},  // rank 3 fills through the le2 bucket
		{0.5, 4},  // rank 5 fills through the le4 bucket
		{0.7, 6},  // rank 7: 2 into the 4-wide le8 bucket of count 4
		{0.9, 8},  // rank 9 fills through le8
		{0.99, 8}, // +Inf bucket clamps to the last finite bound
		{1, 8},    // likewise at the extreme
		{-1, 0},   // clamped below
		{2, 8},    // clamped above
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

// TestExpositionGolden pins the exact text exposition - TYPE lines,
// sample order, histogram _bucket/_sum/_count, and the derived
// quantile family - so any drift in the wire format is a conscious
// choice.
func TestExpositionGolden(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("req_total", L("worker", "0")).Add(3)
	r.Gauge("depth").Set(1.5)
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{1, 2, 3, 5} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE depth gauge
depth 1.5
# TYPE lat histogram
lat_bucket{le="1"} 1
lat_bucket{le="2"} 2
lat_bucket{le="4"} 3
lat_bucket{le="+Inf"} 4
lat_sum 11
lat_count 4
# TYPE lat_quantile gauge
lat_quantile{q="0.5"} 2
lat_quantile{q="0.9"} 4
lat_quantile{q="0.99"} 4
lat_quantile{q="0.999"} 4
# TYPE req_total counter
req_total{worker="0"} 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
