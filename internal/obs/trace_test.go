package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	t.Parallel()
	tr := NewTrace()
	root := tr.StartSpan("layer", String("backend", "exact"))
	child := root.StartSpan("tile")
	child.EventAt(42, TileScheduled, "kernel3", Int("plcg", 1))
	child.EndAt(45)
	root.End()

	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("want 5 events, got %d", len(ev))
	}
	if ev[0].Kind != SpanStart || ev[0].Name != "layer" || ev[0].Parent != 0 {
		t.Fatalf("root start wrong: %+v", ev[0])
	}
	if ev[1].Kind != SpanStart || ev[1].Parent != ev[0].Span {
		t.Fatalf("child must carry parent span id: %+v", ev[1])
	}
	if ev[2].Cycle != 42 || ev[2].Kind != TileScheduled {
		t.Fatalf("event cycle stamp wrong: %+v", ev[2])
	}
	if ev[3].Kind != SpanEnd || ev[3].Cycle != 45 {
		t.Fatalf("child end wrong: %+v", ev[3])
	}
	for i, e := range ev {
		if e.Seq != int64(i) {
			t.Fatalf("seq %d at index %d", e.Seq, i)
		}
	}
}

func TestTraceJSON(t *testing.T) {
	t.Parallel()
	tr := NewTrace()
	sp := tr.StartSpan("conv", String("shape", "6x10x10"))
	sp.Event(DataMove, "input-stream", Int("bytes", 1024))
	sp.End()

	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []struct {
			Kind  string `json:"kind"`
			Name  string `json:"name"`
			Attrs []Attr `json:"attrs"`
		} `json:"events"`
		Dropped int64 `json:"dropped"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, raw)
	}
	if len(doc.Events) != 3 || doc.Events[1].Kind != "data-move" || doc.Events[1].Name != "input-stream" {
		t.Fatalf("unexpected trace: %s", raw)
	}
}

func TestEmptyTraceJSONIsValid(t *testing.T) {
	t.Parallel()
	var tr *Trace
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("nil trace JSON invalid: %v", err)
	}
	if _, ok := doc["events"]; !ok {
		t.Fatalf("nil trace JSON missing events array: %s", raw)
	}
}

func TestTraceCapDrops(t *testing.T) {
	t.Parallel()
	tr := NewTraceCap(3)
	sp := tr.StartSpan("s")
	for i := 0; i < 10; i++ {
		sp.Event(Mark, "m")
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want cap 3", tr.Len())
	}
	if tr.Dropped() != 8 {
		t.Fatalf("dropped = %d, want 8", tr.Dropped())
	}
}

func TestCountByKindAndReset(t *testing.T) {
	t.Parallel()
	tr := NewTrace()
	sp := tr.StartSpan("s")
	sp.Event(TileScheduled, "a")
	sp.Event(TileScheduled, "b")
	sp.Event(FaultInjected, "f")
	sp.End()
	counts := tr.CountByKind()
	if counts["tile-scheduled"] != 2 || counts["fault-injected"] != 1 || counts["span-start"] != 1 {
		t.Fatalf("counts wrong: %v", counts)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("reset must clear the trace")
	}
}

func TestEventKindStrings(t *testing.T) {
	t.Parallel()
	kinds := []EventKind{SpanStart, SpanEnd, TileScheduled, DataMove, FaultInjected, Mark,
		RequestShed, BatchDispatched, WorkerDrained, WorkerRestored, EventKind(99)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}

func TestManualClock(t *testing.T) {
	t.Parallel()
	start := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	c := NewManualClock(start)
	if !c.Now().Equal(start) {
		t.Fatal("manual clock must start where constructed")
	}
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("advance = %v", got)
	}
}

func TestWallClockMovesForward(t *testing.T) {
	t.Parallel()
	var c Clock = WallClock{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatal("wall clock went backwards")
	}
}

func TestItoa(t *testing.T) {
	t.Parallel()
	cases := map[int64]string{0: "0", 7: "7", -13: "-13", 1234567890: "1234567890"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
