package obs

import (
	"encoding/json"
	"sync"
)

// EventKind types the span events the simulator emits.
type EventKind int

const (
	// SpanStart opens a span (a layer, a sweep, a simulated schedule).
	SpanStart EventKind = iota
	// SpanEnd closes a span.
	SpanEnd
	// TileScheduled marks one unit of work placed on a hardware block
	// (a kernel assigned to a PLCG, an output tile issued).
	TileScheduled
	// DataMove marks bytes moved through a memory system.
	DataMove
	// FaultInjected marks a hardware defect being injected.
	FaultInjected
	// FaultDetected marks a BIST probe localizing a defect.
	FaultDetected
	// UnitQuarantined marks a PLCU being taken out of service.
	UnitQuarantined
	// BackendFallback marks a layer rerouted to the digital reference
	// because its divergence exceeded the accuracy budget.
	BackendFallback
	// RequestShed marks an inference request refused at admission
	// because the fleet queue was full.
	RequestShed
	// BatchDispatched marks a coalesced request batch handed to a
	// fleet worker.
	BatchDispatched
	// WorkerDrained marks a fleet worker taken out of the routing set
	// after a failed health probe.
	WorkerDrained
	// WorkerRestored marks a drained fleet worker returned to service
	// after a clean re-probe.
	WorkerRestored
	// RequestCompleted marks a request batch reaching its completion
	// point, stamped with its latency decomposition.
	RequestCompleted
	// JournalDegraded marks the request journal ceasing to be a
	// faithful trace (a record was dropped under backpressure or an
	// append failed).
	JournalDegraded
	// RequestSharded marks a fleet request fanned out into kernel-group
	// sub-requests across the in-service pool.
	RequestSharded
	// Mark is a free-form point event.
	Mark
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case SpanStart:
		return "span-start"
	case SpanEnd:
		return "span-end"
	case TileScheduled:
		return "tile-scheduled"
	case DataMove:
		return "data-move"
	case FaultInjected:
		return "fault-injected"
	case FaultDetected:
		return "fault-detected"
	case UnitQuarantined:
		return "unit-quarantined"
	case BackendFallback:
		return "backend-fallback"
	case RequestShed:
		return "request-shed"
	case BatchDispatched:
		return "batch-dispatched"
	case WorkerDrained:
		return "worker-drained"
	case WorkerRestored:
		return "worker-restored"
	case RequestCompleted:
		return "request-completed"
	case JournalDegraded:
		return "journal-degraded"
	case RequestSharded:
		return "request-sharded"
	case Mark:
		return "mark"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the kind by name so traces are self-describing.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Attr is one key/value annotation on an event. A slice (not a map)
// keeps JSON output deterministic.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: itoa(v)} }

// itoa formats an int64 without pulling strconv into every call site.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [21]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	//lint:ignore hotpath-alloc-proof attrs are built only on trace-attached paths; the string must outlive the stack buffer
	return string(buf[i:])
}

// Event is one trace record. Seq is the deterministic arrival order
// (single-writer emission yields a reproducible sequence; concurrent
// emission yields reproducible per-kind counts). Cycle is the
// simulation-time stamp in modulation cycles; it is 0 unless the
// emitter stamps it - the trace never consults a wall clock.
type Event struct {
	Seq    int64     `json:"seq"`
	Cycle  int64     `json:"cycle,omitempty"`
	Kind   EventKind `json:"kind"`
	Name   string    `json:"name"`
	Span   int64     `json:"span"`
	Parent int64     `json:"parent,omitempty"`
	Attrs  []Attr    `json:"attrs,omitempty"`
}

// DefaultTraceCap bounds a trace's event buffer; past it, events are
// counted in Dropped instead of stored, so a long-running sweep
// cannot grow without bound.
const DefaultTraceCap = 1 << 16

// Trace is an append-only buffer of span events. The zero value is
// not useful; use NewTrace. All methods are safe for concurrent use
// and are no-ops on a nil trace.
type Trace struct {
	mu       sync.Mutex
	seq      int64
	nextSpan int64
	events   []Event
	cap      int
	dropped  int64
}

// NewTrace returns an empty trace with the default event cap.
func NewTrace() *Trace { return NewTraceCap(DefaultTraceCap) }

// NewTraceCap returns an empty trace holding at most capEvents
// events (0 or negative means the default).
func NewTraceCap(capEvents int) *Trace {
	if capEvents <= 0 {
		capEvents = DefaultTraceCap
	}
	return &Trace{cap: capEvents}
}

// Span is a handle onto an open span. Methods on a nil span no-op,
// so call sites need no nil checks when tracing is detached.
type Span struct {
	t      *Trace
	id     int64
	parent int64
}

// record appends one event under the lock.
func (t *Trace) record(cycle int64, kind EventKind, name string, span, parent int64, attrs []Attr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.cap {
		t.dropped++
		t.seq++
		return
	}
	//lint:ignore hotpath-alloc-proof capped event buffer: growth is amortized and only happens while a trace is attached
	t.events = append(t.events, Event{
		Seq:    t.seq,
		Cycle:  cycle,
		Kind:   kind,
		Name:   name,
		Span:   span,
		Parent: parent,
		Attrs:  attrs,
	})
	t.seq++
}

// StartSpan opens a root span. Nil traces return a nil span.
func (t *Trace) StartSpan(name string, attrs ...Attr) *Span {
	return t.startSpan(0, name, attrs)
}

func (t *Trace) startSpan(parent int64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextSpan++
	id := t.nextSpan
	t.mu.Unlock()
	t.record(0, SpanStart, name, id, parent, attrs)
	return &Span{t: t, id: id, parent: parent}
}

// StartSpan opens a child span.
func (s *Span) StartSpan(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(s.id, name, attrs)
}

// Event records a point event inside the span with no cycle stamp.
func (s *Span) Event(kind EventKind, name string, attrs ...Attr) {
	s.EventAt(0, kind, name, attrs...)
}

// EventAt records a point event stamped with a simulation cycle.
func (s *Span) EventAt(cycle int64, kind EventKind, name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.record(cycle, kind, name, s.id, s.parent, attrs)
}

// End closes the span.
func (s *Span) End(attrs ...Attr) { s.EndAt(0, attrs...) }

// EndAt closes the span stamped with a simulation cycle.
func (s *Span) EndAt(cycle int64, attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.record(cycle, SpanEnd, "", s.id, s.parent, attrs)
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events fell past the cap.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Reset drops all buffered events and restarts the sequence.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = t.events[:0]
	t.seq = 0
	t.nextSpan = 0
	t.dropped = 0
}

// CountByKind tallies events per kind name - the order-insensitive
// view two schedules of the same work must agree on (the Conv vs
// ConvConcurrent trace invariant).
func (t *Trace) CountByKind() map[string]int64 {
	out := make(map[string]int64)
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.events {
		out[e.Kind.String()]++
	}
	return out
}

// traceJSON is the wire shape of a trace export.
type traceJSON struct {
	Events  []Event `json:"events"`
	Dropped int64   `json:"dropped"`
}

// JSON renders the trace as a JSON document. Nil traces render as an
// empty (valid) trace.
func (t *Trace) JSON() ([]byte, error) {
	doc := traceJSON{Events: []Event{}}
	if t != nil {
		t.mu.Lock()
		doc.Events = append(doc.Events, t.events...)
		doc.Dropped = t.dropped
		t.mu.Unlock()
	}
	return json.MarshalIndent(doc, "", " ")
}
