package waveform

import (
	"math"
	"testing"
)

func constantStreams(nm, nsym int, level float64) [][]float64 {
	streams := make([][]float64, nm)
	for i := range streams {
		s := make([]float64, nsym)
		for k := range s {
			s[k] = level
		}
		streams[i] = s
	}
	return streams
}

func TestSettlesToStaticDot(t *testing.T) {
	// A constant drive settles to the exact static dot product.
	weights := []float64{0.2, 0.5, 0.8, 1.0, 0.1, 0.6, 0.3, 0.9, 0.4}
	sim := New(9, 5e9, 0.03, weights)
	streams := constantStreams(9, 24, 0.7)
	out := sim.Run(streams)
	want := sim.StaticDot(streams, 0)
	got := out[len(out)-1]
	if math.Abs(got-want) > 0.01*want {
		t.Errorf("settled output %.4f, want %.4f", got, want)
	}
}

func TestNegativeWeightsClampToMagnitude(t *testing.T) {
	// The waveform layer models one accumulation waveguide: weights
	// enter as magnitudes (sign routing happens upstream).
	sim := New(2, 5e9, 0.03, []float64{-0.5, 2.0})
	if sim.Chains[0].Weight != 0.5 || sim.Chains[1].Weight != 1.0 {
		t.Error("weights should clamp to [0,1] magnitudes")
	}
}

func TestTrackingSlowSymbols(t *testing.T) {
	// At a symbol rate far below the ring bandwidth, every sampled
	// symbol tracks its static value closely.
	weights := make([]float64, 9)
	for i := range weights {
		weights[i] = 0.5
	}
	sim := New(9, 1e9, 0.03, weights) // 1 GHz: very comfortable
	streams := make([][]float64, 9)
	for i := range streams {
		streams[i] = []float64{0, 1, 0.5, 1, 0, 0.25, 0.75, 1}
	}
	out := sim.Run(streams)
	for sym := 2; sym < len(out); sym++ {
		want := sim.StaticDot(streams, sym)
		if math.Abs(out[sym]-want) > 0.15*4.5 {
			t.Errorf("symbol %d: %.3f vs static %.3f", sym, out[sym], want)
		}
	}
}

func TestISIPenaltyGrowsWithRate(t *testing.T) {
	prev := -1.0
	for _, rate := range []float64{2e9, 5e9, 10e9, 20e9, 40e9} {
		p := ISIPenalty(9, rate, 0.03)
		if p < prev {
			t.Fatalf("ISI penalty should grow with symbol rate at %g GHz", rate/1e9)
		}
		prev = p
	}
}

func TestISIPenaltyWorseForNarrowRings(t *testing.T) {
	// Figure 4b's conclusion at the system level: k^2 = 0.02 rings
	// cost more ISI than 0.03 at every rate.
	for _, rate := range []float64{5e9, 10e9, 20e9} {
		p02 := ISIPenalty(9, rate, 0.02)
		p03 := ISIPenalty(9, rate, 0.03)
		if p02 < p03 {
			t.Errorf("at %g GHz: k2=0.02 penalty %.4f should exceed k2=0.03 %.4f",
				rate/1e9, p02, p03)
		}
	}
}

func TestISIPenaltyAcceptableAtDesignRates(t *testing.T) {
	// The design operating points: 5 GHz (C/M) and 8 GHz (A) with
	// k^2 = 0.03 keep the worst-case ISI within about an 8-bit LSB of
	// full scale times a small factor.
	if p := ISIPenalty(9, 5e9, 0.03); p > 0.05 {
		t.Errorf("5 GHz ISI penalty %.4f too large for the design point", p)
	}
	if p := ISIPenalty(9, 8e9, 0.03); p > 0.10 {
		t.Errorf("8 GHz ISI penalty %.4f too large for Albireo-A", p)
	}
}

func TestRunValidation(t *testing.T) {
	sim := New(2, 5e9, 0.03, []float64{1, 1})
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	expectPanic("wrong stream count", func() { sim.Run(make([][]float64, 1)) })
	expectPanic("ragged streams", func() {
		sim.Run([][]float64{{1, 0}, {1}})
	})
	expectPanic("weight mismatch", func() { New(3, 5e9, 0.03, []float64{1}) })
	if out := sim.Run([][]float64{{}, {}}); out != nil {
		t.Error("empty streams should return nil")
	}
}

func TestOnePoleBehaviour(t *testing.T) {
	// alpha=1 (tau<=0) jumps immediately.
	if alphaFor(0, 1e-12) != 1 {
		t.Error("zero tau should be instantaneous")
	}
	// One time constant reaches 1-1/e.
	alpha := alphaFor(1e-11, 1e-13)
	state := 0.0
	for i := 0; i < 100; i++ { // 100 steps of tau/100 = 1 tau
		state = onePole(state, 1, alpha)
	}
	if math.Abs(state-(1-math.Exp(-1))) > 0.01 {
		t.Errorf("one-tau response = %.4f, want %.4f", state, 1-math.Exp(-1))
	}
}
