// Package waveform is the sample-resolved time-domain simulator of an
// Albireo accumulation column: per-wavelength optical power waveforms
// through the signal-generation modulator, the weight MZM, and the
// switching MRR (each a first-order system with its physical time
// constant), photodetection summing the channels, and the TIA/ADC
// sampling at symbol centers.
//
// It is the time-domain counterpart of the static functional model in
// internal/core - the role of Lumerical INTERCONNECT's temporal
// analysis in the paper - and quantifies intersymbol interference
// (ISI): how the 5 GHz (and aggressive 8 GHz) symbol rates interact
// with the ring photon lifetime that the k^2 choice sets (Figure 4b).
package waveform

import (
	"fmt"
	"math"

	"albireo/internal/photonics"
	"albireo/internal/units"
)

// Chain is one wavelength's path to the accumulation waveguide.
type Chain struct {
	// Weight is the static MZM transfer in [0, 1] (the |w| applied for
	// the whole layer pass).
	Weight float64
	// ModulatorTau is the signal-generation modulator's first-order
	// time constant in seconds.
	ModulatorTau float64
	// RingTau is the switching ring's photon lifetime in seconds.
	RingTau float64
}

// Simulator drives Nm chains with per-symbol amplitudes and detects
// the summed power.
type Simulator struct {
	// SymbolRate is the modulation rate in hertz.
	SymbolRate float64
	// SamplesPerSymbol sets time resolution.
	SamplesPerSymbol int
	// Chains is the per-wavelength configuration.
	Chains []Chain
	// TIABandwidth is the receiver's electrical bandwidth in hertz;
	// the PD current is low-pass filtered with the matching
	// first-order response before sampling.
	TIABandwidth float64
}

// New builds a simulator for nm chains at the given symbol rate using
// the Table II ring at coupling k2 and a modulator matched to the
// symbol rate (tau = 1/(2*pi*rate) - a modulator specced with its 3 dB
// bandwidth at the symbol rate).
func New(nm int, symbolRate, k2 float64, weights []float64) *Simulator {
	if len(weights) != nm {
		panic(fmt.Sprintf("waveform: want %d weights, got %d", nm, len(weights))) //lint:ignore exit-hygiene weight-count shape invariant; caller bug
	}
	ring := photonics.NewMRRWithK2(1550*units.Nano, k2)
	chains := make([]Chain, nm)
	for i := range chains {
		w := weights[i]
		if w < 0 {
			w = -w
		}
		if w > 1 {
			w = 1
		}
		chains[i] = Chain{
			Weight:       w,
			ModulatorTau: 1 / (2 * math.Pi * symbolRate),
			RingTau:      ring.PhotonLifetime(),
		}
	}
	return &Simulator{
		SymbolRate:       symbolRate,
		SamplesPerSymbol: 32,
		Chains:           chains,
		TIABandwidth:     symbolRate, // receivers are specced at the line rate
	}
}

// onePole advances a first-order system one step toward target.
func onePole(state, target, alpha float64) float64 {
	return state + alpha*(target-state)
}

// alphaFor returns the per-step update coefficient for time constant
// tau at step dt.
func alphaFor(tau, dt float64) float64 {
	if tau <= 0 {
		return 1
	}
	return 1 - math.Exp(-dt/tau)
}

// Run drives the chains with symbols[chain][symbol] amplitude values
// in [0, 1] and returns the accumulated detector output sampled at
// each symbol center (in units of full-scale products, i.e. the ideal
// steady-state dot product for that symbol would be
// sum_i w_i * a_i[symbol]).
func (s *Simulator) Run(symbols [][]float64) []float64 {
	if len(symbols) != len(s.Chains) {
		panic(fmt.Sprintf("waveform: want %d symbol streams, got %d", len(s.Chains), len(symbols))) //lint:ignore exit-hygiene symbol-stream count invariant; caller bug
	}
	nsym := 0
	for i, stream := range symbols {
		if i == 0 {
			nsym = len(stream)
			continue
		}
		if len(stream) != nsym {
			panic("waveform: ragged symbol streams") //lint:ignore exit-hygiene ragged symbol stream invariant; caller bug
		}
	}
	if nsym == 0 {
		return nil
	}

	dt := 1 / s.SymbolRate / float64(s.SamplesPerSymbol)
	modAlpha := make([]float64, len(s.Chains))
	ringAlpha := make([]float64, len(s.Chains))
	for i, c := range s.Chains {
		modAlpha[i] = alphaFor(c.ModulatorTau, dt)
		ringAlpha[i] = alphaFor(c.RingTau, dt)
	}
	tiaAlpha := alphaFor(1/(2*math.Pi*s.TIABandwidth), dt)

	modState := make([]float64, len(s.Chains))
	ringState := make([]float64, len(s.Chains))
	tiaState := 0.0
	out := make([]float64, nsym)

	for sym := 0; sym < nsym; sym++ {
		for k := 0; k < s.SamplesPerSymbol; k++ {
			var sum float64
			for i, c := range s.Chains {
				// Modulator drives toward the symbol amplitude.
				modState[i] = onePole(modState[i], symbols[i][sym], modAlpha[i])
				// MZM scales statically; ring integrates the product.
				ringState[i] = onePole(ringState[i], modState[i]*c.Weight, ringAlpha[i])
				sum += ringState[i]
			}
			tiaState = onePole(tiaState, sum, tiaAlpha)
			// Sample at the symbol center.
			if k == s.SamplesPerSymbol/2 {
				out[sym] = tiaState
			}
		}
	}
	return out
}

// StaticDot returns the ideal steady-state dot product for one symbol
// column: sum_i w_i * a_i.
func (s *Simulator) StaticDot(symbols [][]float64, sym int) float64 {
	var sum float64
	for i, c := range s.Chains {
		sum += c.Weight * symbols[i][sym]
	}
	return sum
}

// ISIPenalty drives a worst-case alternating pattern (all chains
// toggling full-scale) and returns the worst relative deviation of the
// sampled output from the static dot product over the final half of
// the stream - the intersymbol-interference cost at this symbol rate.
func ISIPenalty(nm int, symbolRate, k2 float64) float64 {
	weights := make([]float64, nm)
	for i := range weights {
		weights[i] = 1
	}
	sim := New(nm, symbolRate, k2, weights)
	const nsym = 32
	streams := make([][]float64, nm)
	for i := range streams {
		stream := make([]float64, nsym)
		for s := range stream {
			stream[s] = float64((s + i) % 2) // staggered toggling
		}
		streams[i] = stream
	}
	got := sim.Run(streams)
	worst := 0.0
	for sym := nsym / 2; sym < nsym; sym++ {
		want := sim.StaticDot(streams, sym)
		dev := math.Abs(got[sym] - want)
		// Normalize by the full scale (nm products).
		if rel := dev / float64(nm); rel > worst {
			worst = rel
		}
	}
	return worst
}
