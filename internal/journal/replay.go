package journal

import (
	"errors"
	"fmt"
)

// Executor re-executes journaled work against a rebuilt pool. The
// implementation (cmd/albireo-replay) owns the backends; the replay
// engine owns record ordering and hash comparison.
type Executor interface {
	// Execute runs one admitted request on the given worker and
	// returns the canonical output hash (HashVolume / HashVector).
	Execute(worker int, req *Request) ([32]byte, error)
	// Probe re-runs a runtime BIST probe cycle on the given worker
	// (clear quarantine, scan, re-quarantine findings), reproducing
	// the chip-state side effects of a recorded drain/restore
	// transition.
	Probe(worker int) error
	// ExecuteShard runs one kernel-group window (kernels m with
	// m % of in [pos, pos+count)) of the admitted request on the given
	// worker, accumulating the owned output slice into the parent's
	// merge buffer. The parent's merged hash is collected later by
	// FinishShard when its KindDeliver record (Worker -1) is reached.
	ExecuteShard(worker int, admit uint64, req *Request, pos, count, of int) error
	// FinishShard finalizes a sharded request's merge buffer and
	// returns the canonical hash of the merged output.
	FinishShard(admit uint64) ([32]byte, error)
}

// Divergence pinpoints the first replayed request whose output hash
// differs from the journaled one - the end-to-end determinism
// invariant failing, or the rebuilt pool not matching the recorded
// one (wrong flags, different fault state).
type Divergence struct {
	// Seq is the Deliver record's sequence number.
	Seq uint64
	// Admit is the diverging request's admission sequence number.
	Admit uint64
	// Worker is the pool index that served it.
	Worker int64
	// Want is the journaled output hash; Got is the replayed one.
	Want, Got [32]byte
}

// Error implements error.
func (d *Divergence) Error() string {
	return fmt.Sprintf("journal: replay diverged at seq %d (admit %d, worker %d): recorded %x, replayed %x",
		d.Seq, d.Admit, d.Worker, d.Want[:8], d.Got[:8])
}

// ReplayResult summarizes a replay pass.
type ReplayResult struct {
	// Admits, Delivers, Sheds, Cancels, Fallbacks, Probes count the
	// records of each class encountered.
	Admits, Delivers, Sheds, Cancels, Fallbacks, Probes int
	// Restarts counts journal reopenings recorded in the chain.
	Restarts int
	// ShardSubs counts kernel-group sub-request records re-executed.
	ShardSubs int
	// Verified counts delivers whose output hash matched bit-for-bit.
	Verified int
}

// Replay re-executes a journal snapshot against ex. Deliver records
// are executed in journal order - which preserves each worker's
// recorded execution order, and with it the chip's program-cache,
// cycle, and drift state - and every output hash is compared
// bit-for-bit. The first mismatch aborts with *Divergence; malformed
// records abort with a decode error.
func Replay(snap *Snapshot, ex Executor) (ReplayResult, error) {
	var res ReplayResult
	admits := make(map[uint64]*Request)
	for _, rec := range snap.Records {
		switch rec.Kind {
		case KindHeader:
			// Decoded by Read already.
		case KindAdmit:
			req, err := DecodeRequest(rec.Payload)
			if err != nil {
				return res, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
			admits[rec.Seq] = req
			res.Admits++
		case KindDeliver:
			d, err := DecodeDeliver(rec.Payload)
			if err != nil {
				return res, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
			req, ok := admits[d.Admit]
			if !ok {
				return res, fmt.Errorf("seq %d: deliver references unknown admit %d", rec.Seq, d.Admit)
			}
			var got [32]byte
			if d.Worker < 0 {
				// Merged deliver of a sharded request: the per-worker
				// windows already ran at their KindShard records; this
				// collects the merge buffer's hash.
				got, err = ex.FinishShard(d.Admit)
				if err != nil {
					return res, fmt.Errorf("seq %d: finish shard admit %d: %w", rec.Seq, d.Admit, err)
				}
			} else {
				got, err = ex.Execute(int(d.Worker), req)
				if err != nil {
					return res, fmt.Errorf("seq %d: execute on worker %d: %w", rec.Seq, d.Worker, err)
				}
			}
			res.Delivers++
			if got != d.Hash {
				return res, &Divergence{Seq: rec.Seq, Admit: d.Admit, Worker: d.Worker, Want: d.Hash, Got: got}
			}
			res.Verified++
		case KindShed:
			res.Sheds++
		case KindCancel:
			res.Cancels++
		case KindFallback:
			res.Fallbacks++
		case KindDrain, KindRestore:
			t, err := DecodeTransition(rec.Payload)
			if err != nil {
				return res, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
			// Startup-scan transitions are reproduced by the executor's
			// pool construction; runtime re-probes must be re-run so the
			// chip sees the same probe vectors the recorded pool did.
			if t.Probe {
				if err := ex.Probe(int(t.Worker)); err != nil {
					return res, fmt.Errorf("seq %d: probe worker %d: %w", rec.Seq, t.Worker, err)
				}
				res.Probes++
			}
		case KindShard:
			s, err := DecodeShard(rec.Payload)
			if err != nil {
				return res, fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
			req, ok := admits[s.Admit]
			if !ok {
				return res, fmt.Errorf("seq %d: shard references unknown admit %d", rec.Seq, s.Admit)
			}
			// Shard records are journaled at execution time on the worker
			// goroutine, so executing here preserves each worker's
			// recorded execution order exactly as whole-request delivers
			// do.
			if err := ex.ExecuteShard(int(s.Worker), s.Admit, req, int(s.Pos), int(s.Count), int(s.Of)); err != nil {
				return res, fmt.Errorf("seq %d: shard on worker %d: %w", rec.Seq, s.Worker, err)
			}
			res.ShardSubs++
		case KindRestart:
			res.Restarts++
		default:
			return res, fmt.Errorf("seq %d: unknown record kind %d", rec.Seq, rec.Kind)
		}
	}
	return res, nil
}

// AsDivergence unwraps a replay error into its Divergence, if any.
func AsDivergence(err error) (*Divergence, bool) {
	var d *Divergence
	if errors.As(err, &d) {
		return d, true
	}
	return nil, false
}
