package journal

import (
	"sync"
	"sync/atomic"

	"albireo/internal/obs"
)

// Metric names emitted by the async journal writer.
const (
	// MetricAppended counts records durably appended to the chain.
	MetricAppended = "albireo_journal_appended_total"
	// MetricBackpressure counts records refused because the writer
	// queue was full (or the journal already degraded) - the explicit
	// journal-backpressure signal. Journaling never blocks inference:
	// past this point the journal degrades instead.
	MetricBackpressure = "albireo_journal_backpressure_total"
	// MetricErrors counts append failures (I/O errors).
	MetricErrors = "albireo_journal_errors_total"
	// MetricChainHead gauges the chain head sequence number.
	MetricChainHead = "albireo_journal_chain_head_seq"
	// MetricDegraded gauges degradation: 1 once any record has been
	// dropped or an append failed (the journal is no longer a faithful
	// trace), else 0.
	MetricDegraded = "albireo_journal_degraded"
)

// DefaultQueueDepth bounds the async writer's record queue.
const DefaultQueueDepth = 256

// asyncEntry is one queued append, or a drain barrier (ack != nil).
type asyncEntry struct {
	seq     uint64
	kind    Kind
	payload []byte
	ack     chan struct{}
}

// Async decouples journal appends from the serving path: producers
// (the fleet scheduler, the HTTP front end) enqueue pre-encoded
// records onto a bounded channel and a dedicated goroutine appends
// them in order, so fsync latency never sits on an inference thread.
//
// Sequence numbers are assigned at enqueue time under a mutex, which
// makes journal order exactly admission order - the property replay
// depends on - and lets the caller stamp X-Albireo-Seq responses
// synchronously. When the queue is full the record is dropped and the
// journal goes DEGRADED permanently: a journal with holes cannot be
// replayed, so honesty beats completeness - the backpressure counter
// and the degraded gauge say exactly when the trace stopped being
// faithful, and inference never blocks on the journal.
type Async struct {
	w  *Writer
	ch chan asyncEntry

	mu      sync.Mutex
	nextSeq uint64
	closed  bool

	degraded atomic.Bool
	enqueued atomic.Int64
	dropped  atomic.Int64
	done     chan struct{}

	appended     *obs.Counter
	backpressure *obs.Counter
	errsC        *obs.Counter
	headG        *obs.Gauge
	degradedG    *obs.Gauge
	trace        *obs.Trace
}

// NewAsync wraps a Writer in a bounded asynchronous appender.
// queueDepth <= 0 uses DefaultQueueDepth. Call Start to launch the
// writer goroutine and Close to drain and seal the journal.
func NewAsync(w *Writer, queueDepth int) *Async {
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	last, _ := w.Head()
	return &Async{
		w:       w,
		ch:      make(chan asyncEntry, queueDepth),
		nextSeq: last + 1,
		done:    make(chan struct{}),
	}
}

// Instrument attaches an observability registry and/or trace (either
// may be nil) and returns the appender for chaining.
func (a *Async) Instrument(reg *obs.Registry, trace *obs.Trace) *Async {
	a.appended = reg.Counter(MetricAppended)
	a.backpressure = reg.Counter(MetricBackpressure)
	a.errsC = reg.Counter(MetricErrors)
	a.headG = reg.Gauge(MetricChainHead)
	a.degradedG = reg.Gauge(MetricDegraded)
	a.trace = trace
	last, _ := a.w.Head()
	a.headG.Set(float64(last))
	return a
}

// Start launches the writer goroutine; Close joins it through the
// done channel closed here on exit.
func (a *Async) Start() {
	go func() {
		defer close(a.done)
		a.serve()
	}()
}

// serve drains the queue, appending records in seq order.
func (a *Async) serve() {
	for e := range a.ch {
		if e.ack != nil {
			close(e.ack)
			continue
		}
		seq, err := a.w.Append(e.kind, e.payload)
		if err != nil || seq != e.seq {
			// An append failure (or a seq skew, which cannot happen
			// while enqueue order is preserved) poisons the chain's
			// faithfulness: degrade and stop accepting records.
			a.errsC.Inc()
			a.markDegraded("journal append failed")
			continue
		}
		a.appended.Inc()
		a.headG.Set(float64(seq))
	}
}

// markDegraded latches degradation and emits one trace event.
func (a *Async) markDegraded(why string) {
	if a.degraded.CompareAndSwap(false, true) {
		a.degradedG.Set(1)
		if a.trace != nil {
			sp := a.trace.StartSpan("journal/degraded")
			sp.Event(obs.JournalDegraded, why)
			sp.End()
		}
	}
}

// Record enqueues one record and returns its assigned sequence
// number, or -1 when the record was not accepted (journal degraded,
// queue full, or closed). Never blocks.
func (a *Async) Record(kind Kind, payload []byte) int64 {
	if a == nil {
		return -1
	}
	if a.degraded.Load() {
		a.dropped.Add(1)
		a.backpressure.Inc()
		return -1
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return -1
	}
	select {
	case a.ch <- asyncEntry{seq: a.nextSeq, kind: kind, payload: payload}:
		seq := a.nextSeq
		a.nextSeq++
		a.enqueued.Add(1)
		a.mu.Unlock()
		return int64(seq)
	default:
		a.mu.Unlock()
		a.dropped.Add(1)
		a.backpressure.Inc()
		a.markDegraded("journal queue full: record dropped")
		return -1
	}
}

// Admit journals one admitted request (pre-encoded with
// EncodeRequest) and returns its sequence number - the request's
// correlation id - or -1.
func (a *Async) Admit(encodedRequest []byte) int64 {
	return a.Record(KindAdmit, encodedRequest)
}

// Degraded reports whether the journal has stopped being a faithful
// trace (a record was dropped or an append failed).
func (a *Async) Degraded() bool {
	if a == nil {
		return false
	}
	return a.degraded.Load()
}

// Drain blocks until every record accepted before the call has been
// appended, without sealing the journal: it enqueues a barrier and
// waits for the writer goroutine to reach it. Crash-recovery tests
// use it to pin journal contents before abandoning the writer.
func (a *Async) Drain() {
	ack := make(chan struct{})
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.ch <- asyncEntry{ack: ack}
	a.mu.Unlock()
	<-ack
}

// Close stops accepting records, drains the queue, and seals the
// journal writer.
func (a *Async) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return nil
	}
	a.closed = true
	close(a.ch)
	a.mu.Unlock()
	<-a.done
	return a.w.Close()
}

// Status is the externally visible journal state (the /journal
// endpoint's wire shape).
type Status struct {
	// Dir is the journal directory.
	Dir string `json:"dir"`
	// HeadSeq is the last durably appended sequence number.
	HeadSeq uint64 `json:"head_seq"`
	// HeadHash is the hex chain head hash.
	HeadHash string `json:"head_hash"`
	// Enqueued counts records accepted onto the queue.
	Enqueued int64 `json:"enqueued"`
	// Dropped counts records refused under backpressure.
	Dropped int64 `json:"dropped"`
	// Degraded reports whether the trace is still faithful.
	Degraded bool `json:"degraded"`
}

// hexDigits renders a hash nibble-by-nibble (avoiding fmt on this
// path is not load-bearing; it just keeps the encoding canonical).
const hexDigits = "0123456789abcdef"

// Status snapshots the journal state.
func (a *Async) Status() Status {
	seq, hash := a.w.Head()
	hh := make([]byte, 64)
	for i, b := range hash {
		hh[2*i] = hexDigits[b>>4]
		hh[2*i+1] = hexDigits[b&0x0f]
	}
	return Status{
		Dir:      a.w.Dir(),
		HeadSeq:  seq,
		HeadHash: string(hh),
		Enqueued: a.enqueued.Load(),
		Dropped:  a.dropped.Load(),
		Degraded: a.degraded.Load(),
	}
}
