package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"albireo/internal/tensor"
)

// testHeader is the pool description every test journal starts with.
func testHeader() Header {
	return Header{Pool: 2, Seed: 7, Size: 8, Budget: 0.5, KeepDegraded: true, Detune: "0,0,4,2,0.4"}
}

// sampleRequest builds a small deterministic conv request.
func sampleRequest() *Request {
	return &Request{
		Op:   OpConv,
		ReLU: true,
		Cfg:  tensor.ConvConfig{Stride: 1, Pad: 1},
		A:    tensor.RandomVolume(2, 3, 3, 11),
		W:    tensor.RandomKernels(2, 2, 3, 3, 12),
	}
}

// buildJournal writes a known record sequence and returns the dir and
// the writer's final head.
func buildJournal(t *testing.T, opt Options) (string, uint64, [32]byte) {
	t.Helper()
	dir := t.TempDir()
	w, err := Create(dir, testHeader(), opt)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	records := []struct {
		kind    Kind
		payload []byte
	}{
		{KindAdmit, EncodeRequest(sampleRequest())},
		{KindDeliver, EncodeDeliver(Deliver{Admit: 1, Worker: 0, Hash: HashVector([]float64{1, 2})})},
		{KindShed, EncodeShed(Shed{Op: OpFC, Queued: 16})},
		{KindDrain, EncodeTransition(Transition{Worker: 1, Findings: 2})},
		{KindRestore, EncodeTransition(Transition{Worker: 1, Probe: true})},
		{KindFallback, EncodeFallback(Fallback{Worker: 0, Op: OpConv})},
		{KindCancel, EncodeCancel(Cancel{Admit: 1})},
	}
	for i, r := range records {
		seq, err := w.Append(r.kind, r.payload)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("Append %d: seq = %d, want %d", i, seq, want)
		}
	}
	lastSeq, head := w.Head()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir, lastSeq, head
}

func TestCreateReadRoundTrip(t *testing.T) {
	dir, lastSeq, head := buildJournal(t, Options{NoSync: true})
	snap, err := Read(dir)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if snap.Header != testHeader() {
		t.Fatalf("header = %+v, want %+v", snap.Header, testHeader())
	}
	if snap.LastSeq != lastSeq || snap.Head != head {
		t.Fatalf("chain head = (%d, %x), want (%d, %x)", snap.LastSeq, snap.Head[:4], lastSeq, head[:4])
	}
	if snap.Count != 8 || len(snap.Records) != 8 {
		t.Fatalf("count = %d (%d records), want 8", snap.Count, len(snap.Records))
	}
	if snap.TornBytes != 0 {
		t.Fatalf("torn bytes = %d on a cleanly closed journal", snap.TornBytes)
	}
	wantKinds := []Kind{KindHeader, KindAdmit, KindDeliver, KindShed, KindDrain, KindRestore, KindFallback, KindCancel}
	for i, rec := range snap.Records {
		if rec.Seq != uint64(i) || rec.Kind != wantKinds[i] {
			t.Fatalf("record %d = (seq %d, %v), want (seq %d, %v)", i, rec.Seq, rec.Kind, i, wantKinds[i])
		}
	}
	// Spot-check payload decoding survives the disk round trip.
	sh, err := DecodeShed(snap.Records[3].Payload)
	if err != nil || sh.Op != OpFC || sh.Queued != 16 {
		t.Fatalf("shed payload = %+v, %v", sh, err)
	}
	tr, err := DecodeTransition(snap.Records[5].Payload)
	if err != nil || tr.Worker != 1 || !tr.Probe {
		t.Fatalf("restore payload = %+v, %v", tr, err)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range []*Request{
		sampleRequest(),
		{Op: OpFC, A: tensor.RandomVolume(4, 2, 2, 3), W: tensor.RandomKernels(5, 4, 2, 2, 4)},
		{Op: OpConv, Cfg: tensor.ConvConfig{Stride: 2, Pad: 0, Groups: 2}, A: tensor.RandomVolume(4, 5, 5, 5), W: tensor.RandomKernels(4, 2, 3, 3, 6)},
	} {
		enc := EncodeRequest(req)
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("DecodeRequest(%v): %v", req.Op, err)
		}
		if got.Op != req.Op || got.ReLU != req.ReLU || got.Cfg != req.Cfg {
			t.Fatalf("decoded scalar fields = %+v, want %+v", got, req)
		}
		if got.A.Z != req.A.Z || got.A.Y != req.A.Y || got.A.X != req.A.X || !bitsEqual(got.A.Data, req.A.Data) {
			t.Fatal("activation volume did not round-trip bit-exactly")
		}
		if got.W.M != req.W.M || !bitsEqual(got.W.Data, req.W.Data) {
			t.Fatal("kernels did not round-trip bit-exactly")
		}
		// Canonical: re-encoding a decode must reproduce the bytes.
		if !bytes.Equal(EncodeRequest(got), enc) {
			t.Fatal("re-encoding a decoded request changed bytes: encoding not canonical")
		}
	}
	// Trailing garbage must be rejected, not ignored.
	enc := append(EncodeRequest(sampleRequest()), 0)
	if _, err := DecodeRequest(enc); err == nil {
		t.Fatal("DecodeRequest accepted trailing bytes")
	}
	// Truncation anywhere must fail cleanly.
	enc = EncodeRequest(sampleRequest())
	for _, cut := range []int{0, 1, 9, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeRequest(enc[:cut]); err == nil {
			t.Fatalf("DecodeRequest accepted truncation at %d", cut)
		}
	}
}

func TestGEMMRequestRoundTrip(t *testing.T) {
	for _, req := range []*Request{
		{Op: OpGEMM, ReLU: true, MA: tensor.RandomMatrix(3, 5, 31), MB: tensor.RandomMatrix(5, 4, 32)},
		{Op: OpLSTM, MA: tensor.RandomMatrix(2, 6, 33), MB: tensor.RandomMatrix(6, 8, 34)},
		{Op: OpAttention, MA: tensor.RandomMatrix(4, 4, 35), MB: tensor.RandomMatrix(4, 4, 36)},
	} {
		enc := EncodeRequest(req)
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("DecodeRequest(%v): %v", req.Op, err)
		}
		if got.Op != req.Op || got.ReLU != req.ReLU {
			t.Fatalf("decoded scalar fields = %+v, want %+v", got, req)
		}
		if got.MA.R != req.MA.R || got.MA.C != req.MA.C || !bitsEqual(got.MA.Data, req.MA.Data) {
			t.Fatal("matrix A did not round-trip bit-exactly")
		}
		if got.MB.R != req.MB.R || got.MB.C != req.MB.C || !bitsEqual(got.MB.Data, req.MB.Data) {
			t.Fatal("matrix B did not round-trip bit-exactly")
		}
		if !bytes.Equal(EncodeRequest(got), enc) {
			t.Fatal("re-encoding a decoded GEMM request changed bytes: encoding not canonical")
		}
		// Volume ops must not leak into a GEMM frame and vice versa.
		if got.A != nil || got.W != nil {
			t.Fatal("GEMM decode populated volume operands")
		}
	}
	// An unknown op byte over a GEMM-shaped body is a hard decode
	// error, not a silent fallthrough to the conv layout.
	bad := EncodeRequest(&Request{Op: OpGEMM, MA: tensor.RandomMatrix(2, 2, 37), MB: tensor.RandomMatrix(2, 2, 38)})
	bad[0] = 200
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("DecodeRequest accepted an unknown op byte")
	}
	// Truncation anywhere in a GEMM frame fails cleanly.
	enc := EncodeRequest(&Request{Op: OpGEMM, MA: tensor.RandomMatrix(3, 3, 39), MB: tensor.RandomMatrix(3, 2, 40)})
	for _, cut := range []int{1, 2, 10, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeRequest(enc[:cut]); err == nil {
			t.Fatalf("DecodeRequest accepted GEMM truncation at %d", cut)
		}
	}
	if got := OpGEMM.String() + "/" + OpLSTM.String() + "/" + OpAttention.String(); got != "gemm/lstm/attention" {
		t.Fatalf("op names = %q", got)
	}
}

// bitsEqual compares float64 slices by raw bits (exact, NaN-safe).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testHeader(), Options{NoSync: true, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := w.Append(KindShed, EncodeShed(Shed{Op: OpConv, Queued: int64(i)})); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.alj"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments = %v (err %v), want rotation to several files", segs, err)
	}
	snap, err := Read(dir)
	if err != nil {
		t.Fatalf("Read across segments: %v", err)
	}
	if snap.Count != n+1 || snap.LastSeq != n {
		t.Fatalf("count = %d, last = %d, want %d records through seq %d", snap.Count, snap.LastSeq, n+1, n)
	}
}

func TestOpenAppendCleanReopen(t *testing.T) {
	dir, lastSeq, _ := buildJournal(t, Options{NoSync: true})
	w, hdr, rec, err := OpenAppend(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if hdr != testHeader() {
		t.Fatalf("reopened header = %+v", hdr)
	}
	if rec.LastSeq != lastSeq || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v, want last %d with nothing truncated", rec, lastSeq)
	}
	// Reopen appends a restart record continuing the chain.
	if seq, _ := w.Head(); seq != lastSeq+1 {
		t.Fatalf("head after reopen = %d, want restart at %d", seq, lastSeq+1)
	}
	if _, err := w.Append(KindShed, EncodeShed(Shed{Op: OpConv, Queued: 1})); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap, err := Read(dir)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	restart := snap.Records[lastSeq+1]
	if restart.Kind != KindRestart {
		t.Fatalf("record %d kind = %v, want restart", lastSeq+1, restart.Kind)
	}
	r, err := DecodeRestart(restart.Payload)
	if err != nil || r.Recovered != lastSeq || r.TruncatedBytes != 0 {
		t.Fatalf("restart payload = %+v, %v", r, err)
	}
}

// lastSegment returns the path of the journal's last segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.alj"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return segs[len(segs)-1]
}

// TestCrashRecoveryTornTail truncates the journal mid-record - the
// crash signature - and checks recovery drops exactly the torn tail.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir, lastSeq, _ := buildJournal(t, Options{NoSync: true})
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the final frame (drop its last 5 bytes).
	if err := os.WriteFile(seg, raw[:len(raw)-5], 0o666); err != nil {
		t.Fatal(err)
	}

	snap, err := Read(dir)
	if err != nil {
		t.Fatalf("Read with torn tail: %v", err)
	}
	if snap.LastSeq != lastSeq-1 {
		t.Fatalf("last valid seq = %d, want %d (only the torn record dropped)", snap.LastSeq, lastSeq-1)
	}
	if snap.TornBytes == 0 {
		t.Fatal("torn bytes not reported")
	}

	w, _, rec, err := OpenAppend(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("OpenAppend after crash: %v", err)
	}
	if rec.LastSeq != lastSeq-1 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want last %d with a truncated tail", rec, lastSeq-1)
	}
	if _, err := w.Append(KindShed, EncodeShed(Shed{Op: OpConv, Queued: 3})); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The recovered journal re-verifies end to end, restart included.
	snap, err = Read(dir)
	if err != nil {
		t.Fatalf("Read after recovery: %v", err)
	}
	if snap.TornBytes != 0 {
		t.Fatal("torn tail survived recovery")
	}
	if got := snap.Records[lastSeq].Kind; got != KindRestart {
		t.Fatalf("record %d kind = %v, want restart", lastSeq, got)
	}
	r, err := DecodeRestart(snap.Records[lastSeq].Payload)
	if err != nil || r.Recovered != lastSeq-1 || r.TruncatedBytes == 0 {
		t.Fatalf("restart payload = %+v, %v", r, err)
	}
}

// frameOffsets walks a segment file and returns each frame's offset
// and total length, in order.
func frameOffsets(t *testing.T, raw []byte) []int {
	t.Helper()
	var offs []int
	for off := segHeaderLen; off < len(raw); {
		offs = append(offs, off)
		bodyLen := int(binary.LittleEndian.Uint32(raw[off:]))
		off += frameOverhead + bodyLen
	}
	return offs
}

// TestCorruptionPinpointsSeq flips one byte in an interior record and
// checks verification fails with that record's sequence number - the
// tamper-evidence distinction from a torn tail.
func TestCorruptionPinpointsSeq(t *testing.T) {
	dir, _, _ := buildJournal(t, Options{NoSync: true})
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	offs := frameOffsets(t, raw)
	// Flip a payload byte of the third record (seq 2): CRC now fails
	// with more data following, which is corruption, not a crash.
	target := offs[2] + frameOverhead + 8 + 1 + 32 // into the payload
	raw[target] ^= 0x40
	if err := os.WriteFile(seg, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	_, err = Read(dir)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Read of tampered journal: %v, want *CorruptError", err)
	}
	if ce.Seq != 2 {
		t.Fatalf("corruption pinpointed seq %d, want 2", ce.Seq)
	}
	// OpenAppend must refuse too: recovery never silently drops
	// interior records.
	if _, _, _, err := OpenAppend(dir, Options{NoSync: true}); !errors.As(err, &ce) {
		t.Fatalf("OpenAppend of tampered journal: %v, want *CorruptError", err)
	}
}

// TestChainTamperDetected rewrites a record consistently (payload and
// CRC both patched) so only the hash chain can catch it.
func TestChainTamperDetected(t *testing.T) {
	dir, _, _ := buildJournal(t, Options{NoSync: true})
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	offs := frameOffsets(t, raw)
	off := offs[3] // seq 3: the shed record
	bodyLen := int(binary.LittleEndian.Uint32(raw[off:]))
	body := raw[off+frameOverhead : off+frameOverhead+bodyLen]
	body[8+1+32] ^= 0xff // flip a payload byte
	binary.LittleEndian.PutUint32(raw[off+4:], crc32.ChecksumIEEE(body))
	if err := os.WriteFile(seg, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	_, err = Read(dir)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Read of chain-tampered journal: %v, want *CorruptError", err)
	}
	if ce.Seq != 3 || !strings.Contains(ce.Reason, "chain") {
		t.Fatalf("chain tamper reported (seq %d, %q), want seq 3 with a chain reason", ce.Seq, ce.Reason)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir, _, _ := buildJournal(t, Options{NoSync: true})
	if _, err := Create(dir, testHeader(), Options{NoSync: true}); err == nil {
		t.Fatal("Create over an existing journal succeeded")
	}
	if !Exists(dir) {
		t.Fatal("Exists = false for a populated journal dir")
	}
	if Exists(t.TempDir()) {
		t.Fatal("Exists = true for an empty dir")
	}
}

func TestAsyncAssignsSeqsAndDrains(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testHeader(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsync(w, 8)
	a.Start()
	for i := 0; i < 5; i++ {
		if seq := a.Record(KindShed, EncodeShed(Shed{Op: OpConv, Queued: int64(i)})); seq != int64(i+1) {
			t.Fatalf("Record %d: seq = %d, want %d", i, seq, i+1)
		}
	}
	a.Drain()
	if seq, _ := w.Head(); seq != 5 {
		t.Fatalf("durable head after Drain = %d, want 5", seq)
	}
	if a.Degraded() {
		t.Fatal("journal degraded without backpressure")
	}
	st := a.Status()
	if st.HeadSeq != 5 || st.Enqueued != 5 || st.Dropped != 0 || st.Degraded {
		t.Fatalf("status = %+v", st)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if seq := a.Record(KindShed, nil); seq != -1 {
		t.Fatalf("Record after Close = %d, want -1", seq)
	}
	if _, err := Read(dir); err != nil {
		t.Fatalf("Read after async close: %v", err)
	}
}

// TestAsyncBackpressureDegrades fills the queue with no consumer: the
// overflowing record must be dropped (never block) and the journal
// latched degraded.
func TestAsyncBackpressureDegrades(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testHeader(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsync(w, 1) // writer goroutine deliberately not started
	if seq := a.Record(KindShed, EncodeShed(Shed{})); seq != 1 {
		t.Fatalf("first record seq = %d, want 1", seq)
	}
	if seq := a.Record(KindShed, EncodeShed(Shed{})); seq != -1 {
		t.Fatalf("overflow record seq = %d, want -1 (dropped)", seq)
	}
	if !a.Degraded() {
		t.Fatal("journal not degraded after a drop")
	}
	// Degradation latches: capacity freeing up does not resume.
	a.Start()
	a.Drain()
	if seq := a.Record(KindShed, EncodeShed(Shed{})); seq != -1 {
		t.Fatalf("post-degradation record seq = %d, want -1", seq)
	}
	st := a.Status()
	if st.Dropped != 2 || !st.Degraded {
		t.Fatalf("status = %+v, want 2 drops and degraded", st)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayExec is a scripted journal.Executor.
type replayExec struct {
	hashes map[int]map[string][32]byte // worker -> op -> hash
	probes []int
	shards []ShardRec
	merged map[uint64][32]byte // admit -> merged output hash
}

func (e *replayExec) Execute(worker int, req *Request) ([32]byte, error) {
	return e.hashes[worker][req.Op.String()], nil
}

func (e *replayExec) Probe(worker int) error {
	e.probes = append(e.probes, worker)
	return nil
}

func (e *replayExec) ExecuteShard(worker int, admit uint64, req *Request, pos, count, of int) error {
	e.shards = append(e.shards, ShardRec{Admit: admit, Worker: int64(worker), Pos: int64(pos), Count: int64(count), Of: int64(of)})
	return nil
}

func (e *replayExec) FinishShard(admit uint64) ([32]byte, error) {
	h, ok := e.merged[admit]
	if !ok {
		return [32]byte{}, fmt.Errorf("no merge for admit %d", admit)
	}
	return h, nil
}

func TestReplayVerifiesAndDiverges(t *testing.T) {
	okHash := HashVector([]float64{3, 1, 4})
	dir := t.TempDir()
	w, err := Create(dir, testHeader(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	fc := &Request{Op: OpFC, A: tensor.RandomVolume(2, 2, 2, 1), W: tensor.RandomKernels(3, 2, 2, 2, 2)}
	mustAppend := func(k Kind, p []byte) uint64 {
		t.Helper()
		seq, err := w.Append(k, p)
		if err != nil {
			t.Fatal(err)
		}
		return seq
	}
	admit := mustAppend(KindAdmit, EncodeRequest(fc))
	mustAppend(KindDeliver, EncodeDeliver(Deliver{Admit: admit, Worker: 1, Hash: okHash}))
	mustAppend(KindDrain, EncodeTransition(Transition{Worker: 0, Findings: 1, Probe: true}))
	mustAppend(KindRestore, EncodeTransition(Transition{Worker: 0, Probe: true}))
	admit2 := mustAppend(KindAdmit, EncodeRequest(fc))
	divergeAt := mustAppend(KindDeliver, EncodeDeliver(Deliver{Admit: admit2, Worker: 0, Hash: okHash}))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Matching executor: everything verifies, probes re-run.
	ex := &replayExec{hashes: map[int]map[string][32]byte{0: {"fc": okHash}, 1: {"fc": okHash}}}
	res, err := Replay(snap, ex)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Verified != 2 || res.Delivers != 2 || res.Admits != 2 || res.Probes != 2 {
		t.Fatalf("replay result = %+v", res)
	}
	if len(ex.probes) != 2 || ex.probes[0] != 0 {
		t.Fatalf("probes replayed = %v", ex.probes)
	}

	// Worker 0 now produces different bits: the first divergent seq is
	// its deliver record.
	ex = &replayExec{hashes: map[int]map[string][32]byte{0: {"fc": HashVector([]float64{0})}, 1: {"fc": okHash}}}
	res, err = Replay(snap, ex)
	d, ok := AsDivergence(err)
	if !ok {
		t.Fatalf("Replay of diverging pool: %v, want *Divergence", err)
	}
	if d.Seq != divergeAt || d.Worker != 0 || d.Admit != admit2 {
		t.Fatalf("divergence = %+v, want seq %d on worker 0", d, divergeAt)
	}
	if res.Verified != 1 {
		t.Fatalf("verified before divergence = %d, want 1", res.Verified)
	}
}

func TestShardRecordRoundTrip(t *testing.T) {
	in := ShardRec{Admit: 42, Worker: 3, Pos: 4, Count: 2, Of: 9}
	out, err := DecodeShard(EncodeShard(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
	if _, err := DecodeShard(EncodeShard(in)[:11]); err == nil {
		t.Fatal("truncated shard payload decoded")
	}
	if KindShard.String() != "shard" {
		t.Fatalf("KindShard = %q", KindShard)
	}
}

// TestReplayShardedRequest pins the sharded replay protocol: shard
// sub-requests execute at their KindShard records (journal order =
// per-worker dispatch order), and the parent's merged deliver (Worker
// -1) is verified through FinishShard.
func TestReplayShardedRequest(t *testing.T) {
	mergedHash := HashVolume(tensor.RandomVolume(2, 2, 2, 9))
	dir := t.TempDir()
	w, err := Create(dir, testHeader(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	conv := &Request{Op: OpConv, A: tensor.RandomVolume(2, 4, 4, 1), W: tensor.RandomKernels(4, 2, 3, 3, 2)}
	mustAppend := func(k Kind, p []byte) uint64 {
		t.Helper()
		seq, err := w.Append(k, p)
		if err != nil {
			t.Fatal(err)
		}
		return seq
	}
	admit := mustAppend(KindAdmit, EncodeRequest(conv))
	mustAppend(KindShard, EncodeShard(ShardRec{Admit: admit, Worker: 0, Pos: 0, Count: 5, Of: 9}))
	mustAppend(KindShard, EncodeShard(ShardRec{Admit: admit, Worker: 1, Pos: 5, Count: 4, Of: 9}))
	mustAppend(KindDeliver, EncodeDeliver(Deliver{Admit: admit, Worker: -1, Hash: mergedHash}))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}

	ex := &replayExec{merged: map[uint64][32]byte{admit: mergedHash}}
	res, err := Replay(snap, ex)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.ShardSubs != 2 || res.Delivers != 1 || res.Verified != 1 {
		t.Fatalf("replay result = %+v, want 2 shard subs and 1 verified deliver", res)
	}
	if len(ex.shards) != 2 || ex.shards[0].Worker != 0 || ex.shards[1].Pos != 5 {
		t.Fatalf("shards replayed = %+v", ex.shards)
	}

	// A merge that reproduces different bits is a divergence at the
	// parent's deliver record.
	ex = &replayExec{merged: map[uint64][32]byte{admit: HashVolume(tensor.RandomVolume(2, 2, 2, 10))}}
	if _, err := Replay(snap, ex); err == nil {
		t.Fatal("diverging merged hash verified")
	} else if d, ok := AsDivergence(err); !ok || d.Worker != -1 {
		t.Fatalf("want *Divergence on worker -1, got %v", err)
	}
}
