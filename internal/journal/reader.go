package journal

// Snapshot is a fully read, chain-verified journal.
type Snapshot struct {
	// Header is the pool-construction record.
	Header Header
	// Records holds every valid record in sequence order, including
	// the header record at index 0.
	Records []Record
	// LastSeq is the chain head's sequence number.
	LastSeq uint64
	// Head is the chain head hash - a digest of the entire journal.
	Head [32]byte
	// Count is the number of valid records (header included).
	Count int
	// TornBytes counts trailing bytes belonging to a torn final frame
	// (nonzero only for a journal that crashed mid-append and has not
	// been reopened; OpenAppend truncates them away).
	TornBytes int64
}

// Read loads and verifies a journal: every frame's CRC is checked,
// the hash chain is re-derived record by record, and the first
// inconsistency fails with a *CorruptError naming the sequence
// number. A torn final frame is tolerated (reported via TornBytes):
// it is the signature of a crash, not of tampering.
func Read(dir string) (*Snapshot, error) {
	var recs []Record
	sc, err := scan(dir, func(r Record) error {
		// Payload slices alias the scan buffer; copy so a Snapshot owns
		// its memory.
		r.Payload = append([]byte(nil), r.Payload...)
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Header:    sc.header,
		Records:   recs,
		LastSeq:   sc.lastSeq,
		Head:      sc.head,
		Count:     sc.records,
		TornBytes: sc.tornBytes,
	}, nil
}

// Verify is Read without retaining payloads: it re-derives the whole
// chain and reports the verified head. Corruption anywhere before the
// torn tail returns *CorruptError.
func Verify(dir string) (*Snapshot, error) {
	sc, err := scan(dir, nil)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Header:    sc.header,
		LastSeq:   sc.lastSeq,
		Head:      sc.head,
		Count:     sc.records,
		TornBytes: sc.tornBytes,
	}, nil
}
