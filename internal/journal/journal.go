package journal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Segment file framing constants.
const (
	// segMagic opens every segment file.
	segMagic = "ALBJRNL1"
	// segHeaderLen is the fixed segment header: magic, segment index,
	// first sequence number, and the chain hash preceding the segment.
	segHeaderLen = 8 + 8 + 8 + 32
	// frameOverhead is the per-record framing: body length and CRC.
	frameOverhead = 4 + 4
	// minBody is the smallest valid frame body: seq, kind, chain hash.
	minBody = 8 + 1 + 32
	// maxBody bounds a frame body so a corrupt length field cannot
	// drive an unbounded allocation.
	maxBody = 1 << 30
	// DefaultSegmentBytes is the rotation threshold.
	DefaultSegmentBytes = 8 << 20
)

// ErrClosed is returned for appends after Close.
var ErrClosed = errors.New("journal: writer closed")

// CorruptError reports the first record at which the journal fails
// validation: a CRC mismatch away from the tail, a broken sequence,
// or a chain hash that does not re-derive - the tamper-evidence
// signal. Seq pinpoints the damaged record.
type CorruptError struct {
	// Seq is the sequence number of the first invalid record.
	Seq uint64
	// Segment is the file holding it.
	Segment string
	// Offset is the frame's byte offset within the segment.
	Offset int64
	// Reason says what failed (crc, sequence, chain, framing).
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: corrupt record seq %d at %s:%d: %s", e.Seq, e.Segment, e.Offset, e.Reason)
}

// Options tunes a journal writer. The zero value is production
// defaults: fsync on every append, 8 MiB segments.
type Options struct {
	// SegmentBytes rotates to a new segment file once the active one
	// reaches this size (default DefaultSegmentBytes).
	SegmentBytes int64
	// NoSync skips the per-append fsync (tests only; production
	// journals exist to survive crashes).
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Recovery describes what reopening a journal found.
type Recovery struct {
	// LastSeq is the last valid sequence number.
	LastSeq uint64
	// TruncatedBytes is how much torn tail was dropped.
	TruncatedBytes int64
}

// Writer appends hash-chained records to fsync'd segment files. It is
// safe for concurrent use, but the serving stack funnels all appends
// through one Async goroutine so journal order is admission order.
type Writer struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	segIndex uint64
	segSize  int64
	nextSeq  uint64
	head     [32]byte
	closed   bool
}

// segName renders a segment file name.
func segName(index uint64) string {
	return fmt.Sprintf("seg-%08d.alj", index)
}

// Exists reports whether dir already holds a journal (its first
// segment file is present), without opening or verifying it.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, segName(0)))
	return err == nil
}

// Create initializes a new journal in dir (created if absent; must
// not already hold one) and writes the header record.
func Create(dir string, hdr Header, opt Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if segs, err := listSegments(dir); err != nil {
		return nil, err
	} else if len(segs) > 0 {
		return nil, fmt.Errorf("journal: %s already holds a journal (%d segment(s)); use OpenAppend", dir, len(segs))
	}
	w := &Writer{dir: dir, opt: opt.withDefaults()}
	if err := w.openSegmentLocked(0, 0, w.head); err != nil {
		return nil, err
	}
	if _, err := w.Append(KindHeader, EncodeHeader(hdr)); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// OpenAppend reopens an existing journal for appending: the segments
// are re-scanned, the chain is re-verified record by record, a torn
// tail (an incomplete or checksum-failing final frame - the signature
// of a crash mid-write) is truncated away, and a KindRestart record
// marking the recovery is appended. Corruption anywhere before the
// tail fails with a *CorruptError pinpointing the sequence number.
func OpenAppend(dir string, opt Options) (*Writer, Header, Recovery, error) {
	sc, err := scan(dir, nil)
	if err != nil {
		return nil, Header{}, Recovery{}, err
	}
	rec := Recovery{LastSeq: sc.lastSeq, TruncatedBytes: sc.tornBytes}
	if sc.tornBytes > 0 {
		if err := os.Truncate(filepath.Join(dir, segName(sc.lastSegIndex)), sc.lastGoodOffset); err != nil {
			return nil, Header{}, Recovery{}, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	w := &Writer{dir: dir, opt: opt.withDefaults()}
	f, err := os.OpenFile(filepath.Join(dir, segName(sc.lastSegIndex)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, Header{}, Recovery{}, fmt.Errorf("journal: %w", err)
	}
	w.f = f
	w.segIndex = sc.lastSegIndex
	w.segSize = sc.lastGoodOffset
	w.nextSeq = sc.lastSeq + 1
	w.head = sc.head
	if _, err := w.Append(KindRestart, EncodeRestart(Restart{Recovered: rec.LastSeq, TruncatedBytes: rec.TruncatedBytes})); err != nil {
		w.Close()
		return nil, Header{}, Recovery{}, err
	}
	return w, sc.header, rec, nil
}

// openSegmentLocked starts a fresh segment file carrying the chain
// state it continues from.
func (w *Writer) openSegmentLocked(index, firstSeq uint64, prev [32]byte) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(index)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	e := newEncoder(segHeaderLen)
	e.buf = append(e.buf, segMagic...)
	e.u64(index)
	e.u64(firstSeq)
	e.buf = append(e.buf, prev[:]...)
	if _, err := f.Write(e.buf); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	w.f = f
	w.segIndex = index
	w.segSize = segHeaderLen
	return nil
}

// Append writes one record, extends the hash chain, and (unless
// NoSync) fsyncs before returning, so an acknowledged sequence number
// is durable. Returns the record's sequence number.
func (w *Writer) Append(kind Kind, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	seq := w.nextSeq
	chain := chainHash(w.head, seq, kind, payload)
	e := newEncoder(frameOverhead + minBody + len(payload))
	e.u32(uint32(minBody + len(payload)))
	e.u32(0) // CRC placeholder, patched below
	e.u64(seq)
	e.u8(uint8(kind))
	e.buf = append(e.buf, chain[:]...)
	e.buf = append(e.buf, payload...)
	crc := crc32.ChecksumIEEE(e.buf[frameOverhead:])
	e.buf[4] = byte(crc)
	e.buf[5] = byte(crc >> 8)
	e.buf[6] = byte(crc >> 16)
	e.buf[7] = byte(crc >> 24)
	if _, err := w.f.Write(e.buf); err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	if !w.opt.NoSync {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("journal: %w", err)
		}
	}
	w.segSize += int64(len(e.buf))
	w.nextSeq = seq + 1
	w.head = chain
	if w.segSize >= w.opt.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// rotateLocked seals the active segment and opens the next one.
func (w *Writer) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return w.openSegmentLocked(w.segIndex+1, w.nextSeq, w.head)
}

// Head returns the last appended sequence number and its chain hash.
func (w *Writer) Head() (uint64, [32]byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.nextSeq == 0 {
		return 0, w.head
	}
	return w.nextSeq - 1, w.head
}

// Dir returns the journal directory.
func (w *Writer) Dir() string { return w.dir }

// Sync flushes the active segment to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close syncs and closes the active segment. Further appends fail
// with ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return fmt.Errorf("journal: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: %w", closeErr)
	}
	return nil
}

// listSegments returns the dir's segment indices in order, validating
// that they are contiguous from zero.
func listSegments(dir string) ([]uint64, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.alj"))
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	sort.Strings(matches)
	out := make([]uint64, 0, len(matches))
	for i, m := range matches {
		var idx uint64
		if _, err := fmt.Sscanf(filepath.Base(m), "seg-%08d.alj", &idx); err != nil {
			return nil, fmt.Errorf("journal: unrecognized segment name %s", filepath.Base(m))
		}
		if idx != uint64(i) {
			return nil, fmt.Errorf("journal: segment sequence broken: missing seg-%08d.alj", i)
		}
		out = append(out, idx)
	}
	return out, nil
}

// scanState is what a full scan of a journal directory establishes.
type scanState struct {
	header         Header
	lastSeq        uint64
	head           [32]byte
	lastSegIndex   uint64
	lastGoodOffset int64 // offset after the last valid frame in the last segment
	tornBytes      int64 // trailing bytes past it (torn tail)
	records        int
}

// scan walks every segment in order, re-deriving and checking the
// hash chain. Valid records are handed to visit (which may be nil).
// A torn tail - the final frame of the final segment incomplete or
// failing its CRC - is tolerated and reported via tornBytes; any
// other inconsistency returns *CorruptError with the offending
// sequence number.
func scan(dir string, visit func(Record) error) (*scanState, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("journal: no segments in %s", dir)
	}
	st := &scanState{}
	var prev [32]byte
	nextSeq := uint64(0)
	sawHeader := false
	for i, idx := range segs {
		name := segName(idx)
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		last := i == len(segs)-1
		if len(raw) < segHeaderLen {
			return nil, &CorruptError{Seq: nextSeq, Segment: name, Offset: 0, Reason: "segment header truncated"}
		}
		if string(raw[:8]) != segMagic {
			return nil, &CorruptError{Seq: nextSeq, Segment: name, Offset: 0, Reason: "bad segment magic"}
		}
		d := newDecoder(raw[8:segHeaderLen])
		hdrIndex, hdrFirst := d.u64(), d.u64()
		var hdrPrev [32]byte
		copy(hdrPrev[:], d.take(32))
		if hdrIndex != idx {
			return nil, &CorruptError{Seq: nextSeq, Segment: name, Offset: 0, Reason: "segment index mismatch"}
		}
		if hdrFirst != nextSeq {
			return nil, &CorruptError{Seq: nextSeq, Segment: name, Offset: 0, Reason: fmt.Sprintf("segment first seq %d, chain expects %d", hdrFirst, nextSeq)}
		}
		if hdrPrev != prev {
			return nil, &CorruptError{Seq: nextSeq, Segment: name, Offset: 0, Reason: "segment chain hash does not continue the journal"}
		}
		off := int64(segHeaderLen)
		st.lastSegIndex = idx
		st.lastGoodOffset = off
		for off < int64(len(raw)) {
			rest := raw[off:]
			// Frame header or body extending past EOF: only a torn tail
			// of the last segment; anywhere else the journal is damaged.
			if len(rest) < frameOverhead {
				if last {
					st.tornBytes = int64(len(rest))
					break
				}
				return nil, &CorruptError{Seq: nextSeq, Segment: name, Offset: off, Reason: "frame header truncated"}
			}
			fd := newDecoder(rest[:frameOverhead])
			bodyLen, wantCRC := int64(fd.u32()), fd.u32()
			frameEnd := off + frameOverhead + bodyLen
			if bodyLen < minBody || bodyLen > maxBody || frameEnd > int64(len(raw)) {
				if last {
					st.tornBytes = int64(len(raw)) - off
					break
				}
				return nil, &CorruptError{Seq: nextSeq, Segment: name, Offset: off, Reason: "frame length invalid"}
			}
			body := raw[off+frameOverhead : frameEnd]
			if crc32.ChecksumIEEE(body) != wantCRC {
				// A CRC failure on the very last frame is a torn write
				// (the crash interleaved with the append); the same
				// failure followed by more data is corruption and is
				// never silently dropped.
				if last && frameEnd == int64(len(raw)) {
					st.tornBytes = int64(len(raw)) - off
					break
				}
				return nil, &CorruptError{Seq: nextSeq, Segment: name, Offset: off, Reason: "crc mismatch"}
			}
			bd := newDecoder(body)
			seq := bd.u64()
			kind := Kind(bd.u8())
			var chain [32]byte
			copy(chain[:], bd.take(32))
			payload := body[minBody:]
			if seq != nextSeq {
				return nil, &CorruptError{Seq: nextSeq, Segment: name, Offset: off, Reason: fmt.Sprintf("sequence %d, chain expects %d", seq, nextSeq)}
			}
			if chainHash(prev, seq, kind, payload) != chain {
				return nil, &CorruptError{Seq: seq, Segment: name, Offset: off, Reason: "chain hash does not re-derive (record tampered or mis-written)"}
			}
			if seq == 0 {
				if kind != KindHeader {
					return nil, &CorruptError{Seq: 0, Segment: name, Offset: off, Reason: "first record is not a header"}
				}
				h, err := DecodeHeader(payload)
				if err != nil {
					return nil, &CorruptError{Seq: 0, Segment: name, Offset: off, Reason: err.Error()}
				}
				st.header = h
				sawHeader = true
			}
			if visit != nil {
				if err := visit(Record{Seq: seq, Kind: kind, Chain: chain, Payload: payload}); err != nil {
					return nil, err
				}
			}
			prev = chain
			nextSeq = seq + 1
			st.lastSeq = seq
			st.head = chain
			st.records++
			off = frameEnd
			st.lastGoodOffset = off
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("journal: %s has no header record", dir)
	}
	return st, nil
}
