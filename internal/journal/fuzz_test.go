package journal

import (
	"bytes"
	"testing"

	"albireo/internal/tensor"
)

// FuzzRecordRoundTrip throws arbitrary bytes at every payload decoder.
// Two properties hold for each: the decoder never panics (it is fed
// raw disk contents during crash recovery), and any input it accepts
// re-encodes to exactly the bytes it came from - the canonical-
// encoding invariant the hash chain depends on (two encodings of one
// record would be two different chains).
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(EncodeRequest(&Request{
		Op:   OpConv,
		ReLU: true,
		Cfg:  tensor.ConvConfig{Stride: 1, Pad: 1},
		A:    tensor.RandomVolume(2, 3, 3, 11),
		W:    tensor.RandomKernels(2, 2, 3, 3, 12),
	}))
	f.Add(EncodeRequest(&Request{
		Op: OpFC,
		A:  tensor.RandomVolume(3, 2, 2, 5),
		W:  tensor.RandomKernels(4, 3, 2, 2, 6),
	}))
	f.Add(EncodeRequest(&Request{
		Op:   OpGEMM,
		ReLU: true,
		MA:   tensor.RandomMatrix(3, 4, 21),
		MB:   tensor.RandomMatrix(4, 2, 22),
	}))
	f.Add(EncodeRequest(&Request{
		Op: OpLSTM,
		MA: tensor.RandomMatrix(2, 3, 23),
		MB: tensor.RandomMatrix(3, 8, 24),
	}))
	f.Add(EncodeRequest(&Request{
		Op: OpAttention,
		MA: tensor.RandomMatrix(4, 4, 25),
		MB: tensor.RandomMatrix(4, 4, 26),
	}))
	f.Add(EncodeHeader(Header{Pool: 2, Seed: 7, Size: 8, Budget: 0.5, KeepDegraded: true, Detune: "0,0,4,2,0.4"}))
	f.Add(EncodeShed(Shed{Op: OpFC, Queued: 16}))
	f.Add(EncodeDeliver(Deliver{Admit: 3, Worker: 1, Hash: HashVector([]float64{1, 2, 3})}))
	f.Add(EncodeCancel(Cancel{Admit: 9}))
	f.Add(EncodeTransition(Transition{Worker: 1, Findings: 2, Probe: true}))
	f.Add(EncodeFallback(Fallback{Worker: 0, Op: OpConv}))
	f.Add(EncodeRestart(Restart{Recovered: 41, TruncatedBytes: 17}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeRequest(data); err == nil {
			if !bytes.Equal(EncodeRequest(r), data) {
				t.Fatal("DecodeRequest accepted a non-canonical encoding")
			}
		}
		if h, err := DecodeHeader(data); err == nil {
			if !bytes.Equal(EncodeHeader(h), data) {
				t.Fatal("DecodeHeader accepted a non-canonical encoding")
			}
		}
		if s, err := DecodeShed(data); err == nil {
			if !bytes.Equal(EncodeShed(s), data) {
				t.Fatal("DecodeShed accepted a non-canonical encoding")
			}
		}
		if v, err := DecodeDeliver(data); err == nil {
			if !bytes.Equal(EncodeDeliver(v), data) {
				t.Fatal("DecodeDeliver accepted a non-canonical encoding")
			}
		}
		if c, err := DecodeCancel(data); err == nil {
			if !bytes.Equal(EncodeCancel(c), data) {
				t.Fatal("DecodeCancel accepted a non-canonical encoding")
			}
		}
		if tr, err := DecodeTransition(data); err == nil {
			if !bytes.Equal(EncodeTransition(tr), data) {
				t.Fatal("DecodeTransition accepted a non-canonical encoding")
			}
		}
		if fb, err := DecodeFallback(data); err == nil {
			if !bytes.Equal(EncodeFallback(fb), data) {
				t.Fatal("DecodeFallback accepted a non-canonical encoding")
			}
		}
		if r, err := DecodeRestart(data); err == nil {
			if !bytes.Equal(EncodeRestart(r), data) {
				t.Fatal("DecodeRestart accepted a non-canonical encoding")
			}
		}
	})
}
