package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"albireo/internal/tensor"
)

// Kind types a journal record.
type Kind uint8

const (
	// KindHeader is the journal's first record: pool flags (Header).
	KindHeader Kind = 1
	// KindAdmit records one admitted request with its full canonical
	// payload (Request). The record's sequence number is the request's
	// correlation id (the X-Albireo-Seq header).
	KindAdmit Kind = 2
	// KindShed records an admission refusal (Shed).
	KindShed Kind = 3
	// KindDeliver records a completed execution: which worker served
	// which admitted request, and the output hash (Deliver).
	KindDeliver Kind = 4
	// KindCancel records a request whose context ended before a worker
	// executed it (Cancel).
	KindCancel Kind = 5
	// KindDrain records a worker leaving the routing set (Transition).
	KindDrain Kind = 6
	// KindRestore records a drained worker returning to service
	// (Transition).
	KindRestore Kind = 7
	// KindFallback records a guarded-backend fallback to the digital
	// reference (Fallback).
	KindFallback Kind = 8
	// KindRestart records a journal reopened for append after a crash
	// or restart (Restart).
	KindRestart Kind = 9
	// KindShard records one kernel-group sub-request of a sharded
	// admit executed on a worker (ShardRec). It is emitted on the
	// worker goroutine at execution time - like KindDeliver - so the
	// journal order of one worker's records (shards and delivers
	// alike) is that worker's execution order, the property replay
	// relies on to reproduce per-chip noise and drift state. The
	// parent's KindDeliver carries Worker -1 and the merged output
	// hash.
	KindShard Kind = 10
)

// String names the record kind.
func (k Kind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindAdmit:
		return "admit"
	case KindShed:
		return "shed"
	case KindDeliver:
		return "deliver"
	case KindCancel:
		return "cancel"
	case KindDrain:
		return "drain"
	case KindRestore:
		return "restore"
	case KindFallback:
		return "fallback"
	case KindRestart:
		return "restart"
	case KindShard:
		return "shard"
	default:
		return "unknown"
	}
}

// Record is one decoded journal entry.
type Record struct {
	// Seq is the record's position in the chain (0 is the header).
	Seq uint64
	// Kind types the payload.
	Kind Kind
	// Chain is the stored chain hash H(Seq); Verify re-derives it.
	Chain [32]byte
	// Payload is the kind-specific canonical encoding.
	Payload []byte
}

// chainHash derives H(seq) = SHA256(prev || seq || kind || payload),
// the Merkle-chain rule every record must satisfy.
func chainHash(prev [32]byte, seq uint64, kind Kind, payload []byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	var fixed [9]byte
	binary.LittleEndian.PutUint64(fixed[:8], seq)
	fixed[8] = byte(kind)
	h.Write(fixed[:])
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Shed is the payload of a KindShed record.
type Shed struct {
	// Op is the refused request's op kind.
	Op Op
	// Queued is the admission-queue occupancy at refusal.
	Queued int64
}

// EncodeShed renders the canonical shed encoding.
func EncodeShed(s Shed) []byte {
	e := newEncoder(9)
	e.u8(uint8(s.Op))
	e.i64(s.Queued)
	return e.buf
}

// DecodeShed parses a shed payload.
func DecodeShed(b []byte) (Shed, error) {
	d := newDecoder(b)
	s := Shed{Op: Op(d.u8()), Queued: d.i64()}
	if err := d.finish(); err != nil {
		return Shed{}, fmt.Errorf("journal: shed: %w", err)
	}
	return s, nil
}

// Deliver is the payload of a KindDeliver record.
type Deliver struct {
	// Admit is the sequence number of the request's KindAdmit record.
	Admit uint64
	// Worker is the pool index that executed the request.
	Worker int64
	// Hash is the SHA-256 of the canonical output encoding - the value
	// replay must reproduce bit-for-bit.
	Hash [32]byte
}

// EncodeDeliver renders the canonical deliver encoding.
func EncodeDeliver(v Deliver) []byte {
	e := newEncoder(48)
	e.u64(v.Admit)
	e.i64(v.Worker)
	e.buf = append(e.buf, v.Hash[:]...)
	return e.buf
}

// DecodeDeliver parses a deliver payload.
func DecodeDeliver(b []byte) (Deliver, error) {
	d := newDecoder(b)
	v := Deliver{Admit: d.u64(), Worker: d.i64()}
	copy(v.Hash[:], d.take(32))
	if err := d.finish(); err != nil {
		return Deliver{}, fmt.Errorf("journal: deliver: %w", err)
	}
	return v, nil
}

// Cancel is the payload of a KindCancel record.
type Cancel struct {
	// Admit is the sequence number of the request's KindAdmit record.
	Admit uint64
}

// EncodeCancel renders the canonical cancel encoding.
func EncodeCancel(c Cancel) []byte {
	e := newEncoder(8)
	e.u64(c.Admit)
	return e.buf
}

// DecodeCancel parses a cancel payload.
func DecodeCancel(b []byte) (Cancel, error) {
	d := newDecoder(b)
	c := Cancel{Admit: d.u64()}
	if err := d.finish(); err != nil {
		return Cancel{}, fmt.Errorf("journal: cancel: %w", err)
	}
	return c, nil
}

// Transition is the payload of KindDrain and KindRestore records.
type Transition struct {
	// Worker is the pool index changing service state.
	Worker int64
	// Findings is the BIST finding count behind the decision (0 for
	// restores).
	Findings int64
	// Probe marks a transition decided by a runtime re-probe scan -
	// which replay must re-execute to reproduce the chip's drift and
	// quarantine state - as opposed to the startup scan, which replay
	// performs unconditionally.
	Probe bool
}

// EncodeTransition renders the canonical transition encoding.
func EncodeTransition(t Transition) []byte {
	e := newEncoder(17)
	e.i64(t.Worker)
	e.i64(t.Findings)
	e.bool(t.Probe)
	return e.buf
}

// DecodeTransition parses a drain/restore payload.
func DecodeTransition(b []byte) (Transition, error) {
	d := newDecoder(b)
	t := Transition{Worker: d.i64(), Findings: d.i64(), Probe: d.bool()}
	if err := d.finish(); err != nil {
		return Transition{}, fmt.Errorf("journal: transition: %w", err)
	}
	return t, nil
}

// Fallback is the payload of a KindFallback record.
type Fallback struct {
	// Worker is the pool index whose guard fell back.
	Worker int64
	// Op names the layer-op kind that exceeded its budget.
	Op Op
}

// EncodeFallback renders the canonical fallback encoding.
func EncodeFallback(f Fallback) []byte {
	e := newEncoder(9)
	e.i64(f.Worker)
	e.u8(uint8(f.Op))
	return e.buf
}

// DecodeFallback parses a fallback payload.
func DecodeFallback(b []byte) (Fallback, error) {
	d := newDecoder(b)
	f := Fallback{Worker: d.i64(), Op: Op(d.u8())}
	if err := d.finish(); err != nil {
		return Fallback{}, fmt.Errorf("journal: fallback: %w", err)
	}
	return f, nil
}

// ShardRec is the payload of a KindShard record: one kernel-group
// window of an admitted request, bound to the worker that executes it.
type ShardRec struct {
	// Admit is the sequence number of the parent's KindAdmit record.
	Admit uint64
	// Worker is the pool index the sub-request was dispatched to.
	Worker int64
	// Pos, Count, Of are the core.ShardSpec window: the sub-request
	// owns kernels m with m % Of in [Pos, Pos+Count).
	Pos, Count, Of int64
}

// EncodeShard renders the canonical shard encoding.
func EncodeShard(s ShardRec) []byte {
	e := newEncoder(40)
	e.u64(s.Admit)
	e.i64(s.Worker)
	e.i64(s.Pos)
	e.i64(s.Count)
	e.i64(s.Of)
	return e.buf
}

// DecodeShard parses a shard payload.
func DecodeShard(b []byte) (ShardRec, error) {
	d := newDecoder(b)
	s := ShardRec{Admit: d.u64(), Worker: d.i64(), Pos: d.i64(), Count: d.i64(), Of: d.i64()}
	if err := d.finish(); err != nil {
		return ShardRec{}, fmt.Errorf("journal: shard: %w", err)
	}
	return s, nil
}

// Restart is the payload of a KindRestart record.
type Restart struct {
	// Recovered is the last sequence number found valid on reopen.
	Recovered uint64
	// TruncatedBytes is how much torn tail recovery dropped (0 for a
	// clean reopen).
	TruncatedBytes int64
}

// EncodeRestart renders the canonical restart encoding.
func EncodeRestart(r Restart) []byte {
	e := newEncoder(16)
	e.u64(r.Recovered)
	e.i64(r.TruncatedBytes)
	return e.buf
}

// DecodeRestart parses a restart payload.
func DecodeRestart(b []byte) (Restart, error) {
	d := newDecoder(b)
	r := Restart{Recovered: d.u64(), TruncatedBytes: d.i64()}
	if err := d.finish(); err != nil {
		return Restart{}, fmt.Errorf("journal: restart: %w", err)
	}
	return r, nil
}

// HashVolume digests a volume's canonical encoding (shape then
// IEEE-754 bits, little-endian): the bit-exact output identity of a
// convolution result.
func HashVolume(v *tensor.Volume) [32]byte {
	h := sha256.New()
	var scratch [8]byte
	for _, d := range []int64{int64(v.Z), int64(v.Y), int64(v.X)} {
		binary.LittleEndian.PutUint64(scratch[:], uint64(d))
		h.Write(scratch[:])
	}
	for _, f := range v.Data {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(f))
		h.Write(scratch[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// HashMatrix digests a matrix's canonical encoding (shape then
// IEEE-754 bits, little-endian): the bit-exact output identity of a
// GEMM-family result.
func HashMatrix(m *tensor.Matrix) [32]byte {
	h := sha256.New()
	var scratch [8]byte
	for _, d := range []int64{int64(m.R), int64(m.C)} {
		binary.LittleEndian.PutUint64(scratch[:], uint64(d))
		h.Write(scratch[:])
	}
	for _, f := range m.Data {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(f))
		h.Write(scratch[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// HashVector digests a logits vector's canonical encoding: the
// bit-exact output identity of a fully-connected result.
func HashVector(v []float64) [32]byte {
	h := sha256.New()
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(v)))
	h.Write(scratch[:])
	for _, f := range v {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(f))
		h.Write(scratch[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}
