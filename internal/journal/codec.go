// Package journal is the tamper-evident request journal: an
// append-only, hash-chained record of every admission decision the
// serving stack takes - admitted requests (with their full canonical
// payload), shed decisions, worker drain/return-to-service
// transitions, guarded-fallback events, and per-request output hashes.
// Because the analog pipeline is deterministic (Albireo's
// weight-stationary Algorithm 2 makes replaying a recorded request
// trace cheap: the same per-worker op sequence reproduces the same
// program-cache and drift state), a journal is sufficient to
// re-execute production traffic bit-for-bit after the fact -
// cmd/albireo-replay does exactly that - which turns the repo's
// determinism invariant from a test-only property into a standing,
// auditable production check.
//
// Layout. A journal is a directory of fsync'd segment files, each a
// sequence of CRC-framed records. Record n carries the SHA-256 chain
// hash H(n) = SHA256(H(n-1) || seq || kind || payload) with H(-1) =
// 32 zero bytes, so any post-hoc rewrite of an earlier record is
// detected by re-deriving the chain (the Merkle-chain idiom of
// audit logs). The CRC catches accidental corruption cheaply and lets
// recovery distinguish a torn tail (final frame incomplete or
// failing its checksum) from mid-file damage, which is never
// silently dropped.
//
// Determinism contract. Records carry no wall time - sequence numbers
// are the only clock - so identical request traces produce
// byte-identical journals, and the chain head hash doubles as a
// digest of the entire serving history.
package journal

import (
	"errors"
	"fmt"
	"math"

	"albireo/internal/tensor"
)

// Op identifies the layer-op kind of a journaled request.
type Op uint8

const (
	// OpConv is a (possibly grouped or depthwise) convolution.
	OpConv Op = 1
	// OpFC is a fully-connected classifier layer.
	OpFC Op = 2
	// OpGEMM is a dense matrix product (an MLP head layer, or any
	// workload-agnostic GEMM submission).
	OpGEMM Op = 3
	// OpLSTM is a GEMM issued by an LSTM cell's gate computation. The
	// arithmetic is identical to OpGEMM; the tag preserves workload
	// attribution in the journal and in fleet telemetry.
	OpLSTM Op = 4
	// OpAttention is a GEMM issued by an attention block (QK^T or AV).
	OpAttention Op = 5
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpConv:
		return "conv"
	case OpFC:
		return "fc"
	case OpGEMM:
		return "gemm"
	case OpLSTM:
		return "lstm"
	case OpAttention:
		return "attention"
	default:
		return "unknown"
	}
}

// GEMMFamily reports whether the op is a matrix-product op (OpGEMM or
// a workload-tagged variant) rather than a volume op.
func (o Op) GEMMFamily() bool {
	return o == OpGEMM || o == OpLSTM || o == OpAttention
}

// Request is the canonical serialized form of one admitted layer op:
// tensor geometry, payload, op kind, and convolution config. It is the
// single request representation shared by the fleet scheduler, the
// journal, and the replay tool (and the representation multi-node
// sharding will ship across the wire).
type Request struct {
	// Op is the layer-op kind.
	Op Op
	// ReLU applies the activation after the op.
	ReLU bool
	// Cfg is the convolution geometry (zero value for OpFC; unused by
	// the GEMM family).
	Cfg tensor.ConvConfig
	// A is the input activation volume (volume ops only).
	A *tensor.Volume
	// W is the kernel bank (classifier kernels for OpFC; volume ops
	// only).
	W *tensor.Kernels
	// MA and MB are the matrix operands of a GEMM-family op (nil for
	// volume ops).
	MA, MB *tensor.Matrix
}

// maxTensorElems bounds a decoded tensor's element count (per tensor)
// so a corrupt length field cannot drive a huge allocation.
const maxTensorElems = 64 << 20

// EncodeRequest renders the canonical deterministic binary encoding:
// fixed-width little-endian fields, float64s as IEEE-754 bits. Two
// requests encode to the same bytes iff they are bit-identical. The
// leading op byte selects the layout: volume ops (conv, fc) keep the
// original conv/fc frame byte-for-byte; GEMM-family ops use a matrix
// frame (op, relu, A shape+data, B shape+data).
func EncodeRequest(r *Request) []byte {
	if r.Op.GEMMFamily() {
		e := newEncoder(2 + 4*8 + 8*(len(r.MA.Data)+len(r.MB.Data)))
		e.u8(uint8(r.Op))
		e.bool(r.ReLU)
		e.i64(int64(r.MA.R))
		e.i64(int64(r.MA.C))
		for _, v := range r.MA.Data {
			e.f64(v)
		}
		e.i64(int64(r.MB.R))
		e.i64(int64(r.MB.C))
		for _, v := range r.MB.Data {
			e.f64(v)
		}
		return e.buf
	}
	e := newEncoder(2 + 4*8 + 3*8 + 4*8 + 8*(len(r.A.Data)+len(r.W.Data)) + 16)
	e.u8(uint8(r.Op))
	e.bool(r.ReLU)
	e.i64(int64(r.Cfg.Stride))
	e.i64(int64(r.Cfg.Pad))
	e.i64(int64(r.Cfg.Groups))
	e.bool(r.Cfg.Depthwise)
	e.i64(int64(r.A.Z))
	e.i64(int64(r.A.Y))
	e.i64(int64(r.A.X))
	for _, v := range r.A.Data {
		e.f64(v)
	}
	e.i64(int64(r.W.M))
	e.i64(int64(r.W.Z))
	e.i64(int64(r.W.Y))
	e.i64(int64(r.W.X))
	for _, v := range r.W.Data {
		e.f64(v)
	}
	return e.buf
}

// DecodeRequest parses a canonical request encoding, validating shape
// fields against the payload length.
func DecodeRequest(b []byte) (*Request, error) {
	d := newDecoder(b)
	r := &Request{}
	r.Op = Op(d.u8())
	r.ReLU = d.bool()
	if r.Op.GEMMFamily() {
		ar, ac := d.i64(), d.i64()
		n, err := tensorLen(ar, ac, 1, 1)
		if err != nil {
			return nil, fmt.Errorf("journal: request matrix A shape: %w", err)
		}
		r.MA = &tensor.Matrix{R: int(ar), C: int(ac), Data: d.f64s(n)}
		br, bc := d.i64(), d.i64()
		if n, err = tensorLen(br, bc, 1, 1); err != nil {
			return nil, fmt.Errorf("journal: request matrix B shape: %w", err)
		}
		r.MB = &tensor.Matrix{R: int(br), C: int(bc), Data: d.f64s(n)}
		if err := d.finish(); err != nil {
			return nil, fmt.Errorf("journal: request: %w", err)
		}
		return r, nil
	}
	r.Cfg.Stride = int(d.i64())
	r.Cfg.Pad = int(d.i64())
	r.Cfg.Groups = int(d.i64())
	r.Cfg.Depthwise = d.bool()
	az, ay, ax := d.i64(), d.i64(), d.i64()
	n, err := tensorLen(az, ay, ax, 1)
	if err != nil {
		return nil, fmt.Errorf("journal: request activation shape: %w", err)
	}
	r.A = &tensor.Volume{Z: int(az), Y: int(ay), X: int(ax), Data: d.f64s(n)}
	wm, wz, wy, wx := d.i64(), d.i64(), d.i64(), d.i64()
	n, err = tensorLen(wz, wy, wx, wm)
	if err != nil {
		return nil, fmt.Errorf("journal: request kernel shape: %w", err)
	}
	r.W = &tensor.Kernels{M: int(wm), Z: int(wz), Y: int(wy), X: int(wx), Data: d.f64s(n)}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("journal: request: %w", err)
	}
	if r.Op != OpConv && r.Op != OpFC {
		return nil, fmt.Errorf("journal: request has unknown op %d", r.Op)
	}
	return r, nil
}

// tensorLen validates a decoded shape and returns its element count.
func tensorLen(z, y, x, m int64) (int, error) {
	if z < 0 || y < 0 || x < 0 || m < 0 {
		return 0, fmt.Errorf("negative dimension %dx%dx%dx%d", m, z, y, x)
	}
	n := m * z
	if z != 0 && n/z != m {
		return 0, errors.New("dimension overflow")
	}
	for _, d := range []int64{y, x} {
		prev := n
		n *= d
		if d != 0 && n/d != prev {
			return 0, errors.New("dimension overflow")
		}
	}
	if n > maxTensorElems {
		return 0, fmt.Errorf("tensor of %d elements exceeds decode bound", n)
	}
	return int(n), nil
}

// Header is the journal's first record: the pool-construction flags a
// replay needs to rebuild a bit-identical fleet. It is written once at
// Create and immutable thereafter.
type Header struct {
	// Pool is the worker count; worker i's chip uses Seed+i.
	Pool int64 `json:"pool"`
	// Seed is the base weight/input seed.
	Seed int64 `json:"seed"`
	// Size is the served model's input spatial size (forensic only;
	// replay re-executes raw layer ops and never rebuilds the model).
	Size int64 `json:"size"`
	// Budget is the accuracy-guard relative divergence budget.
	Budget float64 `json:"budget"`
	// KeepDegraded mirrors the fleet routing policy flag.
	KeepDegraded bool `json:"keep_degraded"`
	// Detune is the worker-0 fault-injection spec ("" for none).
	Detune string `json:"detune"`
}

// EncodeHeader renders the canonical header encoding.
func EncodeHeader(h Header) []byte {
	e := newEncoder(64 + len(h.Detune))
	e.i64(h.Pool)
	e.i64(h.Seed)
	e.i64(h.Size)
	e.f64(h.Budget)
	e.bool(h.KeepDegraded)
	e.str(h.Detune)
	return e.buf
}

// DecodeHeader parses a canonical header encoding.
func DecodeHeader(b []byte) (Header, error) {
	d := newDecoder(b)
	h := Header{
		Pool:         d.i64(),
		Seed:         d.i64(),
		Size:         d.i64(),
		Budget:       d.f64(),
		KeepDegraded: d.bool(),
		Detune:       d.str(),
	}
	if err := d.finish(); err != nil {
		return Header{}, fmt.Errorf("journal: header: %w", err)
	}
	return h, nil
}

// encoder builds canonical little-endian binary encodings.
type encoder struct{ buf []byte }

func newEncoder(sizeHint int) *encoder {
	return &encoder{buf: make([]byte, 0, sizeHint)}
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) u32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (e *encoder) u64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// decoder parses canonical encodings with a sticky error: out-of-range
// reads return zero values and surface once through finish.
type decoder struct {
	buf []byte
	off int
	err error
}

func newDecoder(b []byte) *decoder { return &decoder{buf: b} }

// take returns the next n bytes, or nil after marking truncation.
func (d *decoder) take(n int) []byte {
	if d.err != nil || n < 0 || len(d.buf)-d.off < n {
		if d.err == nil {
			d.err = errors.New("truncated encoding")
		}
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// bool accepts only the canonical 0/1 bytes: any other value would
// decode to a record whose re-encoding (and therefore chain hash)
// differs from what is on disk.
func (d *decoder) bool() bool {
	b := d.u8()
	if b > 1 && d.err == nil {
		d.err = fmt.Errorf("non-canonical bool byte %#x", b)
	}
	return b != 0
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := d.u32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// f64s decodes n float64s.
func (d *decoder) f64s(n int) []float64 {
	b := d.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		v := uint64(b[8*i]) | uint64(b[8*i+1])<<8 | uint64(b[8*i+2])<<16 | uint64(b[8*i+3])<<24 |
			uint64(b[8*i+4])<<32 | uint64(b[8*i+5])<<40 | uint64(b[8*i+6])<<48 | uint64(b[8*i+7])<<56
		out[i] = math.Float64frombits(v)
	}
	return out
}

// finish reports the sticky decode error, also failing if bytes
// remain (canonical encodings have no slack).
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}
