package device

import (
	"math"
	"testing"

	"albireo/internal/units"
)

func TestEstimateString(t *testing.T) {
	if Conservative.String() != "C" || Moderate.String() != "M" || Aggressive.String() != "A" {
		t.Error("estimate suffixes do not match paper naming")
	}
	if Estimate(99).String() != "?" {
		t.Error("unknown estimate should stringify to ?")
	}
}

func TestPowersTableI(t *testing.T) {
	c := Powers(Conservative)
	if c.MRR != 3.1e-3 || c.MZM != 11.3e-3 || c.Laser != 37.5e-3 {
		t.Errorf("conservative optical powers mismatch Table I: %+v", c)
	}
	if c.TIA != 3e-3 || c.ADC != 29e-3 || c.DAC != 26e-3 {
		t.Errorf("conservative electronic powers mismatch Table I: %+v", c)
	}
	if c.SampleRate != 5e9 {
		t.Errorf("conservative sample rate should be 5 GS/s, got %g", c.SampleRate)
	}

	m := Powers(Moderate)
	if m.MRR != 388e-6 || m.MZM != 1.41e-3 || m.Laser != 1.38e-3 {
		t.Errorf("moderate powers mismatch Table I: %+v", m)
	}
	if m.SampleRate != 5e9 {
		t.Errorf("moderate sample rate should be 5 GS/s, got %g", m.SampleRate)
	}

	a := Powers(Aggressive)
	if a.MRR != 155e-6 || a.MZM != 565e-6 || a.TIA != 300e-6 {
		t.Errorf("aggressive powers mismatch Table I: %+v", a)
	}
	if a.SampleRate != 8e9 {
		t.Errorf("aggressive sample rate should be 8 GS/s, got %g", a.SampleRate)
	}

	if (Powers(Estimate(42)) != PowerParams{}) {
		t.Error("unknown estimate should return zero params")
	}
}

func TestPowersMonotoneAcrossEstimates(t *testing.T) {
	// Each device gets cheaper (or no more expensive) from C to M to A.
	c, m, a := Powers(Conservative), Powers(Moderate), Powers(Aggressive)
	type row struct {
		name    string
		c, m, a float64
	}
	rows := []row{
		{"MRR", c.MRR, m.MRR, a.MRR},
		{"MZM", c.MZM, m.MZM, a.MZM},
		{"Laser", c.Laser, m.Laser, a.Laser},
		{"TIA", c.TIA, m.TIA, a.TIA},
		{"ADC", c.ADC, m.ADC, a.ADC},
		{"DAC", c.DAC, m.DAC, a.DAC},
	}
	for _, r := range rows {
		if !(r.c >= r.m && r.m >= r.a) {
			t.Errorf("%s power should be non-increasing C>=M>=A: %g %g %g", r.name, r.c, r.m, r.a)
		}
	}
}

func TestOpticsTableII(t *testing.T) {
	o := Optics()
	if o.NEff != 2.33 || o.NGroup != 4.68 {
		t.Error("waveguide indices mismatch Table II")
	}
	if math.Abs(o.RingRadius-5e-6) > 1e-18 {
		t.Error("ring radius should be 5 um")
	}
	if o.RingK2 != 0.03 {
		t.Error("ring k^2 should be 0.03")
	}
	if math.Abs(o.RingFSR-16.1e-9) > 1e-18 {
		t.Error("ring FSR should be 16.1 nm")
	}
	if o.AWGChannels != 64 {
		t.Error("AWG should have 64 channels")
	}
	if o.PDResponsivity != 1.1 {
		t.Error("PD responsivity should be 1.1 A/W")
	}
	if o.LaserRINdBcHz != -140 {
		t.Error("laser RIN should be -140 dBc/Hz")
	}
	if math.Abs(o.CenterWavelength-1550e-9) > 1e-18 {
		t.Error("center wavelength should be 1550 nm")
	}
}

func TestOpticsDerivedFSRConsistency(t *testing.T) {
	// Table II self-consistency: FSR = lambda^2 / (ng * L) for the
	// 5 um ring should land near the quoted 16.1 nm.
	o := Optics()
	circumference := 2 * math.Pi * o.RingRadius
	fsr := o.CenterWavelength * o.CenterWavelength / (o.NGroup * circumference)
	if math.Abs(fsr-o.RingFSR) > 0.5*units.Nano {
		t.Errorf("derived FSR %.3g nm too far from Table II 16.1 nm", fsr/units.Nano)
	}
}

func TestOpticsAreas(t *testing.T) {
	o := Optics()
	// AWG dominates at 10 mm^2 (72% of chip area per Fig. 9).
	if math.Abs(o.AWGArea-10e-6) > 1e-12 {
		t.Errorf("AWG area should be 10 mm^2, got %g m^2", o.AWGArea)
	}
	// Star coupler is 0.2625 mm^2.
	if math.Abs(o.StarArea-0.2625e-6) > 1e-12 {
		t.Errorf("star coupler area should be 0.2625 mm^2, got %g m^2", o.StarArea)
	}
	// MZM is 0.015 mm^2.
	if math.Abs(o.MZMArea-0.015e-6) > 1e-15 {
		t.Errorf("MZM area should be 0.015 mm^2, got %g m^2", o.MZMArea)
	}
}

func TestMemoryParams(t *testing.T) {
	m := Memory()
	if m.GlobalBufferBytes != 262144 {
		t.Error("global buffer should be 256 kB")
	}
	if m.KernelCacheBytes != 16384 {
		t.Error("kernel cache should be 16 kB")
	}
	if m.CachePower != 0.03 {
		t.Error("cache power budget should be 0.03 W (Table III)")
	}
	wantGlobal := 0.59e-3 * 0.34e-3
	if math.Abs(m.GlobalBufferArea-wantGlobal) > 1e-15 {
		t.Error("global buffer footprint mismatch")
	}
}
