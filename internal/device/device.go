// Package device holds the photonic and electronic device parameters
// used by the Albireo architecture, taken directly from the paper's
// Table I (device power estimates for the conservative, moderate, and
// aggressive configurations) and Table II (optical device parameters).
//
// These are deliberately plain data: the physics lives in
// internal/photonics, the accounting in internal/perf. Keeping the
// constants in one package makes every reproduced table traceable to a
// single source of truth.
package device

import "albireo/internal/units"

// Estimate selects one of the paper's three technology projections.
type Estimate int

const (
	// Conservative uses photonic devices demonstrated to date
	// (Albireo-C, Table I column 1).
	Conservative Estimate = iota
	// Moderate uses device targets that match current electronic
	// accelerator energy (Albireo-M).
	Moderate
	// Aggressive uses future projections that make Albireo a
	// high-performance successor (Albireo-A).
	Aggressive
)

// String returns the paper's suffix for the estimate (C, M, A).
func (e Estimate) String() string {
	switch e {
	case Conservative:
		return "C"
	case Moderate:
		return "M"
	case Aggressive:
		return "A"
	default:
		return "?"
	}
}

// Estimates lists all three projections in paper order.
var Estimates = []Estimate{Conservative, Moderate, Aggressive}

// PowerParams is one column of Table I: per-device power draw in watts,
// plus the converter sample rate the column assumes.
type PowerParams struct {
	// MRR is the microring resonator power (tuning + modulation).
	MRR float64
	// MZM is the Mach-Zehnder modulator drive power.
	MZM float64
	// Laser is the per-wavelength laser source power.
	Laser float64
	// TIA is the transimpedance amplifier power.
	TIA float64
	// ADC is the analog-to-digital converter power at SampleRate.
	ADC float64
	// DAC is the digital-to-analog converter power at SampleRate.
	DAC float64
	// SampleRate is the converter rate in samples per second; it also
	// sets the photonic modulation rate (5 GHz for C and M, 8 GHz for
	// A per Section IV-A).
	SampleRate float64
}

// Powers returns the Table I column for the given estimate.
func Powers(e Estimate) PowerParams {
	switch e {
	case Conservative:
		return PowerParams{
			MRR:        3.1 * units.Milli,
			MZM:        11.3 * units.Milli,
			Laser:      37.5 * units.Milli,
			TIA:        3.0 * units.Milli,
			ADC:        29 * units.Milli,
			DAC:        26 * units.Milli,
			SampleRate: 5 * units.Giga,
		}
	case Moderate:
		return PowerParams{
			MRR:        388 * units.Micro,
			MZM:        1.41 * units.Milli,
			Laser:      1.38 * units.Milli,
			TIA:        1.5 * units.Milli,
			ADC:        14.5 * units.Milli,
			DAC:        13 * units.Milli,
			SampleRate: 5 * units.Giga,
		}
	case Aggressive:
		return PowerParams{
			MRR:        155 * units.Micro,
			MZM:        565 * units.Micro,
			Laser:      1.38 * units.Milli,
			TIA:        300 * units.Micro,
			ADC:        2.9 * units.Milli,
			DAC:        2.6 * units.Milli,
			SampleRate: 8 * units.Giga,
		}
	default:
		return PowerParams{}
	}
}

// OpticalParams is Table II: the optical device parameters shared by
// all three Albireo estimates. Lengths are meters, areas m^2, losses dB.
type OpticalParams struct {
	// Waveguide geometry and optics.
	WaveguideWidth  float64 // 500 nm
	WaveguideHeight float64 // 220 nm
	NEff            float64 // effective index at 1550 nm
	NGroup          float64 // group index at 1550 nm
	StraightLossDB  float64 // dB/cm converted to dB/m
	BentLossDB      float64 // dB/m

	// Y-branch splitter.
	YBranchLossDB float64
	YBranchArea   float64

	// Microring resonator.
	RingRadius float64 // 5 um
	RingLossDB float64 // insertion loss
	RingK2     float64 // power cross-coupling coefficient
	RingFSR    float64 // free spectral range, meters of wavelength
	RingArea   float64

	// Mach-Zehnder modulator.
	MZMLossDB float64
	MZMArea   float64

	// Star coupler.
	StarLossDB float64
	StarArea   float64

	// Arrayed waveguide grating.
	AWGChannels    int
	AWGLossDB      float64
	AWGCrosstalkDB float64 // -34 dB
	AWGFSR         float64 // 70 nm
	AWGArea        float64

	// Laser.
	LaserRINdBcHz float64 // -140 dBc/Hz
	LaserArea     float64

	// PIN photodiode.
	PDResponsivity float64 // A/W
	PDDarkCurrent  float64 // A @ 1V
	PDArea         float64

	// CenterWavelength anchors the WDM grid (1550 nm C-band).
	CenterWavelength float64
}

// Optics returns the Table II parameter set.
func Optics() OpticalParams {
	return OpticalParams{
		WaveguideWidth:  500 * units.Nano,
		WaveguideHeight: 220 * units.Nano,
		NEff:            2.33,
		NGroup:          4.68,
		StraightLossDB:  1.5 * 100, // 1.5 dB/cm -> dB/m
		BentLossDB:      3.8 * 100, // 3.8 dB/cm -> dB/m

		YBranchLossDB: 0.3,
		YBranchArea:   1.2 * units.Micro * 2.2 * units.Micro,

		RingRadius: 5 * units.Micro,
		RingLossDB: 0.39,
		RingK2:     0.03,
		RingFSR:    16.1 * units.Nano,
		RingArea:   20 * units.Micro * 20 * units.Micro,

		MZMLossDB: 1.2,
		MZMArea:   300 * units.Micro * 50 * units.Micro,

		StarLossDB: 1.3,
		StarArea:   750 * units.Micro * 350 * units.Micro,

		AWGChannels:    64,
		AWGLossDB:      2.0,
		AWGCrosstalkDB: -34,
		AWGFSR:         70 * units.Nano,
		AWGArea:        5 * units.Milli * 2 * units.Milli,

		LaserRINdBcHz: -140,
		LaserArea:     400 * units.Micro * 300 * units.Micro,

		PDResponsivity: 1.1,
		PDDarkCurrent:  25 * units.Pico,
		PDArea:         40 * units.Micro * 40 * units.Micro,

		CenterWavelength: 1550 * units.Nano,
	}
}

// MemoryParams describes the 7 nm SRAM subsystems of Section IV-A.
type MemoryParams struct {
	GlobalBufferBytes int
	GlobalBufferArea  float64 // 0.59 x 0.34 mm^2
	KernelCacheBytes  int
	KernelCacheArea   float64 // 0.092 x 0.085 mm^2
	// CachePower is the total cache power budget from Table III
	// (0.03 W for every estimate).
	CachePower float64
}

// Memory returns the paper's memory subsystem parameters.
func Memory() MemoryParams {
	return MemoryParams{
		GlobalBufferBytes: 256 << 10,
		GlobalBufferArea:  0.59 * units.Milli * 0.34 * units.Milli,
		KernelCacheBytes:  16 << 10,
		KernelCacheArea:   0.092 * units.Milli * 0.085 * units.Milli,
		CachePower:        0.03,
	}
}
