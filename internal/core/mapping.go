package core

import (
	"fmt"
	"time"

	"albireo/internal/nn"
	"albireo/internal/units"
)

// LayerMapping is the cycle-level schedule of one layer on the chip,
// following the convolution partitioning of Algorithm 2: Ng kernels in
// parallel (one per PLCG), Nd output columns per cycle, Nu channels
// aggregated per cycle, and extra passes for kernels larger than Nm.
type LayerMapping struct {
	Layer nn.Layer
	// KernelPasses is ceil(Wm/Ng): how many rounds of kernel
	// assignment the layer needs.
	KernelPasses int64
	// ColumnTiles is OutY * ceil(OutX/Nd): receptive-field tiles per
	// kernel.
	ColumnTiles int64
	// ChannelGroups is ceil(Wz/Nu): depth-first aggregation cycles.
	ChannelGroups int64
	// TapChunks is ceil(KY*KX/Nm): passes for oversized kernels.
	TapChunks int64
	// Cycles is the product: total modulation cycles for the layer.
	Cycles int64
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// MapLayer schedules one layer and returns its cycle count. Pooling
// layers map to zero cycles (they ride the digital aggregation path).
func (c Config) MapLayer(l nn.Layer) LayerMapping {
	m := LayerMapping{Layer: l, KernelPasses: 1, ColumnTiles: 1, ChannelGroups: 1, TapChunks: 1}
	ng, nd, nu, nm := int64(c.Ng), int64(c.Nd), int64(c.Nu), int64(c.Nm)
	switch l.Kind {
	case nn.Conv:
		groups := int64(1)
		if l.Groups > 1 {
			groups = int64(l.Groups)
		}
		m.KernelPasses = ceilDiv(int64(l.OutZ), ng)
		m.ColumnTiles = int64(l.OutY()) * ceilDiv(int64(l.OutX()), nd)
		m.ChannelGroups = ceilDiv(int64(l.InZ)/groups, nu)
		m.TapChunks = ceilDiv(int64(l.KY)*int64(l.KX), nm)
	case nn.Depthwise:
		// Every PLCU filters an independent channel: Ng*Nu channels in
		// flight, no cross-channel aggregation (Section III-C).
		m.KernelPasses = ceilDiv(int64(l.InZ), ng*nu)
		m.ColumnTiles = int64(l.OutY()) * ceilDiv(int64(l.OutX()), nd)
		m.TapChunks = ceilDiv(int64(l.KY)*int64(l.KX), nm)
	case nn.Pointwise:
		// Each MZM applies one channel of the 1x1 kernel; PD columns
		// hold Nd receptive fields; Nu*Nm channels aggregate per cycle
		// (Section III-C).
		m.KernelPasses = ceilDiv(int64(l.OutZ), ng)
		m.ColumnTiles = ceilDiv(int64(l.OutY())*int64(l.OutX()), nd)
		m.ChannelGroups = ceilDiv(int64(l.InZ), nu*nm)
	case nn.FC:
		n := int64(l.InZ) * int64(l.InY) * int64(l.InX)
		m.KernelPasses = ceilDiv(int64(l.OutZ), ng)
		per := nu * nm
		if c.FCWide {
			per *= nd
		}
		m.ChannelGroups = ceilDiv(n, per)
	case nn.GEMM:
		// The block mapping with matrix rows as pixels: N output
		// columns round-robin the PLCGs, Nd rows per cycle, Nu*Nm
		// reduction elements aggregate per cycle. TapChunks = 2 is the
		// signed-activation decomposition: the fabric runs the block
		// once for A+ and once for A- (see core/gemm.go).
		m.KernelPasses = ceilDiv(int64(l.OutZ), ng)
		m.ColumnTiles = ceilDiv(int64(l.InX), nd)
		m.ChannelGroups = ceilDiv(int64(l.InZ), nu*nm)
		m.TapChunks = 2
	case nn.LSTMCell:
		// Per timestep: the four gate columns against [x;h], one
		// sequence element per pass (batch-1 recurrence serializes on
		// the hidden state), doubled for the sign split.
		m.KernelPasses = ceilDiv(4*int64(l.OutZ), ng)
		m.ColumnTiles = int64(l.InX)
		m.ChannelGroups = ceilDiv(int64(l.InZ), nu*nm) + ceilDiv(int64(l.OutZ), nu*nm)
		m.TapChunks = 2
	case nn.AttentionBlock:
		// Two chained products - scores = QK^T (T x d x T) and
		// out = scores V (T x T x d) - each sign-split. The factor
		// fields describe the QK^T stage; Cycles sums both stages.
		t, d := int64(l.InX), int64(l.InZ)
		m.KernelPasses = ceilDiv(t, ng)
		m.ColumnTiles = ceilDiv(t, nd)
		m.ChannelGroups = ceilDiv(d, nu*nm)
		m.TapChunks = 2
		qk := ceilDiv(t, ng) * ceilDiv(t, nd) * ceilDiv(d, nu*nm)
		av := ceilDiv(d, ng) * ceilDiv(t, nd) * ceilDiv(t, nu*nm)
		m.Cycles = 2 * (qk + av)
		return m
	default:
		return m // pooling: zero compute cycles
	}
	m.Cycles = m.KernelPasses * m.ColumnTiles * m.ChannelGroups * m.TapChunks
	return m
}

// ModelMapping is the full schedule of a network.
type ModelMapping struct {
	Model  nn.Model
	Config Config
	Layers []LayerMapping
	// TotalCycles across all compute layers.
	TotalCycles int64
}

// MapModel schedules every compute layer of the model.
func (c Config) MapModel(m nn.Model) ModelMapping {
	mm := ModelMapping{Model: m, Config: c}
	for _, l := range m.Layers {
		lm := c.MapLayer(l)
		if l.HasMACs() {
			mm.Layers = append(mm.Layers, lm)
			mm.TotalCycles += lm.Cycles
		}
	}
	return mm
}

// Latency returns the inference latency in seconds at the design's
// modulation rate.
func (mm ModelMapping) Latency() float64 {
	return float64(mm.TotalCycles) / mm.Config.ModulationRate()
}

// LatencyDuration returns the latency as a time.Duration for display.
func (mm ModelMapping) LatencyDuration() time.Duration {
	return time.Duration(mm.Latency() * float64(time.Second))
}

// Throughput returns the effective MAC rate in MACs per second.
func (mm ModelMapping) Throughput() float64 {
	lat := mm.Latency()
	if lat <= 0 {
		return 0
	}
	return float64(mm.Model.TotalMACs()) / lat
}

// Utilization returns the fraction of peak fabric MACs actually used:
// model MACs divided by (peak MACs/cycle * cycles). Peak is
// Ng*Nu*Nm*Nd products per cycle.
func (mm ModelMapping) Utilization() float64 {
	c := mm.Config
	peak := float64(c.Ng*c.Nu*c.Nm*c.Nd) * float64(mm.TotalCycles)
	if peak <= 0 {
		return 0
	}
	return float64(mm.Model.TotalMACs()) / peak
}

// String implements fmt.Stringer.
func (mm ModelMapping) String() string {
	return fmt.Sprintf("%s on %s: %d cycles, %.3f ms, %.1f%% utilization",
		mm.Model.Name, mm.Config, mm.TotalCycles, mm.Latency()*units.Kilo, mm.Utilization()*100)
}
