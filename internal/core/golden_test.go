package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"testing"

	"albireo/internal/tensor"
)

// The golden matrix pins the analog pipeline's exact output bits
// across every mapping kind, impairment, fault class, and quarantine
// state. The hashes below were captured from the implementation as of
// PR 4 (before the zero-allocation hot-path rewrite); the optimized
// scratch-arena + weight-program-cache paths must reproduce them bit
// for bit. Regenerate with:
//
//	ALBIREO_GOLDEN_UPDATE=1 go test ./internal/core -run TestGoldenOutputs -v
//
// and paste the printed table - but only when an intentional modeling
// change (new noise term, different quantizer) makes the old bits
// wrong on purpose.

// goldenHash folds a float64 slice into an order-sensitive FNV-1a
// hash of the raw IEEE-754 bits: any single-ULP divergence changes it.
func goldenHash(data []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range data {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * uint(i)))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// goldenCase is one pinned scenario: a chip configuration, a layer,
// and the expected output-bits hash.
type goldenCase struct {
	name string
	want uint64
	run  func() []float64
}

func goldenMatrix() []goldenCase {
	dense := func(cfg Config, az, ay, ax, m, ky, kx, stride, pad int, relu, concurrent bool, seed int64, prep func(*Chip)) func() []float64 {
		return func() []float64 {
			chip := NewChip(cfg)
			if prep != nil {
				prep(chip)
			}
			a := tensor.RandomVolume(az, ay, ax, seed)
			w := tensor.RandomKernels(m, az, ky, kx, seed+1)
			ccfg := tensor.ConvConfig{Stride: stride, Pad: pad}
			if concurrent {
				return chip.ConvConcurrent(a, w, ccfg, relu).Data
			}
			return chip.Conv(a, w, ccfg, relu).Data
		}
	}
	cfg := DefaultConfig()
	quiet := DefaultConfig()
	quiet.DisableNoise = true
	voltage := DefaultConfig()
	voltage.VoltageDomainWeights = true

	return []goldenCase{
		{name: "conv/s1p1relu", want: 0x5af577f95cd683af, run: dense(cfg, 6, 10, 10, 4, 3, 3, 1, 1, true, false, 3, nil)},
		{name: "conv/s2p0", want: 0xd74f0fe6d44b80ed, run: dense(cfg, 5, 9, 9, 3, 3, 3, 2, 0, false, false, 11, nil)},
		{name: "conv/concurrent", want: 0x5af577f95cd683af, run: dense(cfg, 6, 10, 10, 4, 3, 3, 1, 1, true, true, 3, nil)},
		{name: "conv/5x5chunked", want: 0x284ace40e5917b5d, run: dense(cfg, 3, 12, 12, 2, 5, 5, 1, 2, true, false, 7, nil)},
		{name: "conv/noiseless", want: 0xea33dffd9758d61b, run: dense(quiet, 6, 10, 10, 4, 3, 3, 1, 1, true, false, 3, nil)},
		{name: "conv/voltage-domain", want: 0x37064b3756ff7884, run: dense(voltage, 6, 10, 10, 4, 3, 3, 1, 1, true, false, 3, nil)},
		{name: "conv/faulty", want: 0xe76ecc0aef12a3de, run: dense(cfg, 6, 10, 10, 4, 3, 3, 1, 1, true, false, 3, func(c *Chip) {
			mustFault(c, 0, 0, Fault{Kind: StuckMZM, Tap: 2, Value: 0.7})
			mustFault(c, 1, 1, Fault{Kind: DeadRing, Tap: 4, Column: 1})
			mustFault(c, 2, 2, Fault{Kind: DetunedRing, Tap: 6, Column: 3, Value: 0.9, Drift: 1e-4})
		})},
		{name: "conv/quarantined", want: 0x203722e2d7a9b685, run: dense(cfg, 6, 10, 10, 4, 3, 3, 1, 1, true, false, 3, func(c *Chip) {
			mustQuarantine(c, 1, 0)
			mustQuarantine(c, 3, 1)
			mustQuarantine(c, 3, 2)
		})},
		{name: "conv/quarantined-concurrent", want: 0x203722e2d7a9b685, run: dense(cfg, 6, 10, 10, 4, 3, 3, 1, 1, true, true, 3, func(c *Chip) {
			mustQuarantine(c, 1, 0)
			mustQuarantine(c, 3, 1)
			mustQuarantine(c, 3, 2)
		})},
		{name: "conv/repeat-reuses-program", want: 0xa59e2a81dbdd64f5, run: func() []float64 {
			// Two layers back to back through one chip: the second
			// call sees a warm weight-program cache and a dirty
			// scratch arena, and must still produce exactly the bits
			// a cold chip's second call produces.
			chip := NewChip(cfg)
			a := tensor.RandomVolume(6, 10, 10, 3)
			w := tensor.RandomKernels(4, 6, 3, 3, 4)
			chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
			return chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true).Data
		}},
		{name: "conv/fault-after-cache", want: 0xdabdabe9a72b8e3c, run: func() []float64 {
			// A fault injected between two identical layers must
			// invalidate the cached weight program: the second call's
			// bits reflect the stuck modulator.
			chip := NewChip(cfg)
			a := tensor.RandomVolume(6, 10, 10, 3)
			w := tensor.RandomKernels(4, 6, 3, 3, 4)
			chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
			mustFault(chip, 0, 0, Fault{Kind: StuckMZM, Tap: 1, Value: 0.4})
			return chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true).Data
		}},
		{name: "conv/quarantine-after-cache", want: 0xf0549ec9afb1c2c9, run: func() []float64 {
			// Quarantine between identical layers reshapes the slot
			// schedule; a stale program would drive the wrong units.
			chip := NewChip(cfg)
			a := tensor.RandomVolume(6, 10, 10, 3)
			w := tensor.RandomKernels(4, 6, 3, 3, 4)
			chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
			mustQuarantine(chip, 0, 1)
			return chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true).Data
		}},
		{name: "depthwise", want: 0x6dae79418bb96e29, run: func() []float64 {
			chip := NewChip(cfg)
			a := tensor.RandomVolume(5, 8, 8, 21)
			w := tensor.RandomKernels(5, 1, 3, 3, 22)
			return chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1, Depthwise: true}, true).Data
		}},
		{name: "grouped", want: 0x1ae1608c62cf06ee, run: func() []float64 {
			chip := NewChip(cfg)
			a := tensor.RandomVolume(6, 8, 8, 31)
			w := tensor.RandomKernels(4, 3, 3, 3, 32)
			return chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1, Groups: 2}, false).Data
		}},
		{name: "pointwise", want: 0x66b864cc9e40250f, run: func() []float64 {
			chip := NewChip(cfg)
			a := tensor.RandomVolume(6, 7, 7, 41)
			w := tensor.RandomKernels(7, 6, 1, 1, 42)
			return chip.Pointwise(a, w, true).Data
		}},
		{name: "fc", want: 0x584997aefa3f4537, run: func() []float64 {
			chip := NewChip(cfg)
			a := tensor.RandomVolume(4, 5, 5, 51)
			w := tensor.RandomKernels(6, 4, 5, 5, 52)
			return chip.FullyConnected(a, w, true)
		}},
		{name: "gemm/signed", want: 0x87ed2cb3c8a55fd9, run: func() []float64 {
			chip := NewChip(cfg)
			a := tensor.RandomMatrix(10, 14, 61)
			b := tensor.RandomMatrix(14, 8, 62)
			return chip.GEMM(a, b, false).Data
		}},
		{name: "gemm/nonneg-relu", want: 0xf26389ec88f4a778, run: func() []float64 {
			chip := NewChip(cfg)
			a := tensor.RandomNonNegMatrix(9, 12, 63)
			b := tensor.RandomMatrix(12, 7, 64)
			return chip.GEMM(a, b, true).Data
		}},
		{name: "gemm/faulty", want: 0xa189f5a7cb6d1c91, run: func() []float64 {
			chip := NewChip(cfg)
			mustFault(chip, 0, 0, Fault{Kind: StuckMZM, Tap: 2, Value: 0.7})
			mustFault(chip, 2, 1, Fault{Kind: DeadRing, Tap: 3, Column: 1})
			a := tensor.RandomMatrix(10, 14, 61)
			b := tensor.RandomMatrix(14, 8, 62)
			return chip.GEMM(a, b, false).Data
		}},
		{name: "gemm/quarantined", want: 0x7c316eddd9ce074c, run: func() []float64 {
			chip := NewChip(cfg)
			mustQuarantine(chip, 1, 0)
			mustQuarantine(chip, 3, 1)
			a := tensor.RandomMatrix(10, 14, 61)
			b := tensor.RandomMatrix(14, 8, 62)
			return chip.GEMM(a, b, false).Data
		}},
		{name: "gemm/repeat-reuses-program", want: 0xb3f9395a5db9f762, run: func() []float64 {
			// Two products back to back through one chip: the second
			// call sees a warm kernel-bank view and weight program and
			// must produce exactly the bits a cold chip's second call
			// would.
			chip := NewChip(cfg)
			a := tensor.RandomMatrix(10, 14, 61)
			b := tensor.RandomMatrix(14, 8, 62)
			chip.GEMM(a, b, false)
			return chip.GEMM(a, b, false).Data
		}},
	}
}

func mustFault(c *Chip, g, u int, f Fault) {
	if err := c.InjectFault(g, u, f); err != nil {
		panic(err) //lint:ignore exit-hygiene golden fixture setup; inputs are constants
	}
}

func mustQuarantine(c *Chip, g, u int) {
	if err := c.Quarantine(g, u); err != nil {
		panic(err) //lint:ignore exit-hygiene golden fixture setup; inputs are constants
	}
}

// TestGoldenOutputs pins the analog pipeline's bits against the
// pre-optimization implementation.
func TestGoldenOutputs(t *testing.T) {
	t.Parallel()
	update := os.Getenv("ALBIREO_GOLDEN_UPDATE") != ""
	for _, gc := range goldenMatrix() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			if !update {
				t.Parallel()
			}
			got := goldenHash(gc.run())
			if update {
				fmt.Printf("golden %-28s 0x%016x\n", gc.name, got)
				return
			}
			if got != gc.want {
				t.Fatalf("output bits diverged from the pre-optimization pipeline: got 0x%016x, want 0x%016x", got, gc.want)
			}
		})
	}
}
