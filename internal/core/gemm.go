package core

import (
	"fmt"
	"math"

	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// GEMM on the photonic fabric.
//
// The PLCU dot-product path is a general multiply-accumulate engine
// that the conv layers drive with receptive-field windows; GEMM drives
// it with matrix rows instead. An M x K by K x N product maps onto the
// Section III-C block (pointwise) layout:
//
//   - the weight matrix B becomes a bank of N 1x1 kernels of depth K
//     (B transposed), compiled through the weight-program cache so the
//     DAC grids, StuckMZM transfers, and quarantine schedule are baked
//     in exactly as for a pointwise layer;
//   - the activation matrix A becomes a K-channel volume of M "pixels"
//     (A transposed): each PD column carries one output row, each tap
//     one reduction-dimension element, and blocks of Nm elements
//     round-robin over a PLCG's healthy PLCUs;
//   - kernels (output columns) round-robin over the Ng PLCGs through
//     the quarantine-aware assignGroup, so remap and the fault model
//     apply unchanged.
//
// Activations are optical power and cannot be negative, but GEMM
// inputs (hidden states, attention scores) are signed. The chip
// decomposes A = A+ - A- elementwise and runs the block loop twice,
// subtracting the second pass in the digital aggregation unit. A
// non-negative A has an all-zero A-, whose normalization scale is 0;
// that pass early-returns before any PLCG cycle (zero noise draws), so
// a non-negative GEMM is bit-identical to the same product formulated
// as a Pointwise layer - the Conv-equivalence the golden matrix pins.

// maxCachedViews bounds the chip's kernel-bank view cache for GEMM
// weight matrices. Like the program cache it is cleared wholesale once
// full rather than tracking liveness.
const maxCachedViews = 64

// gemmView is the chip-owned kernel-bank view of one GEMM weight
// matrix: a stable *tensor.Kernels identity so the weight-program
// cache keys stay valid across calls with the same B.
type gemmView struct {
	k *tensor.Kernels
}

// bviewFor returns the chip's kernel-bank view of B (transposed:
// kernel n's channel z carries B[z][n]), reusing the cached view's
// backing tensor so programFor sees a stable pointer. A mutated B is
// detected by exact bit compare and re-transposed in place, which in
// turn invalidates the compiled program via its own bit-compare.
func (c *Chip) bviewFor(b *tensor.Matrix) *tensor.Kernels {
	if v, ok := c.bviews[b]; ok && v.k.M == b.C && v.k.Z == b.R {
		if !viewFresh(v.k, b) {
			transposeInto(v.k, b)
		}
		return v.k
	}
	k := tensor.NewKernels(b.C, b.R, 1, 1)
	transposeInto(k, b)
	if c.bviews == nil {
		c.bviews = make(map[*tensor.Matrix]*gemmView)
	}
	if len(c.bviews) >= maxCachedViews {
		clear(c.bviews)
	}
	c.bviews[b] = &gemmView{k: k}
	return k
}

// viewFresh reports whether the cached kernel view still matches B bit
// for bit (NaN-safe, like the program cache's sameBits).
func viewFresh(k *tensor.Kernels, b *tensor.Matrix) bool {
	for z := 0; z < b.R; z++ {
		row := b.Data[z*b.C : (z+1)*b.C]
		for n, w := range row {
			if math.Float64bits(k.Data[n*b.R+z]) != math.Float64bits(w) {
				return false
			}
		}
	}
	return true
}

// transposeInto writes B^T into the kernel bank's backing array.
func transposeInto(k *tensor.Kernels, b *tensor.Matrix) {
	for z := 0; z < b.R; z++ {
		row := b.Data[z*b.C : (z+1)*b.C]
		for n, w := range row {
			k.Data[n*b.R+z] = w
		}
	}
}

// growVolume resizes a chip-owned scratch volume in place, growing the
// backing array only when the new shape exceeds its capacity.
func growVolume(v *tensor.Volume, z, y, x int) {
	n := z * y * x
	if cap(v.Data) < n {
		v.Data = make([]float64, n)
	}
	v.Data = v.Data[:n]
	v.Z, v.Y, v.X = z, y, x
}

// stageSigned splits A elementwise into its positive part and negated
// negative part - both optical-power encodable - staged transposed
// into the chip's scratch volumes (channel = reduction index, pixel =
// matrix row).
func (c *Chip) stageSigned(a *tensor.Matrix) {
	k, m := a.C, a.R
	growVolume(&c.posVol, k, 1, m)
	growVolume(&c.negVol, k, 1, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*k : (i+1)*k]
		for z, v := range row {
			p, n := v, 0.0
			if v < 0 {
				p, n = 0, -v
			}
			c.posVol.Data[z*m+i] = p
			c.negVol.Data[z*m+i] = n
		}
	}
}

// GEMM executes the matrix product a (M x K) times b (K x N) through
// the analog pipeline and returns the M x N result in the caller's
// value domain. Weights may be signed (the balanced-photodiode
// differential handles sign); signed activations run as two
// positive-only passes combined digitally. If relu is true, max(0, x)
// is applied during aggregation write-back.
func (c *Chip) GEMM(a, b *tensor.Matrix, relu bool) *tensor.Matrix {
	if a.C != b.R {
		panic(fmt.Sprintf("core: gemm inner dims %d != %d", a.C, b.R)) //lint:ignore exit-hygiene matmul shape invariant; caller bug
	}
	mRows, n := a.R, b.C
	w := c.bviewFor(b)
	pr := c.programFor(progBlock, w)

	if cap(c.gemmAcc) < n*mRows {
		c.gemmAcc = make([]float64, n*mRows)
	}
	dst := c.gemmAcc[:n*mRows]
	for i := range dst {
		dst[i] = 0
	}

	c.stageSigned(a)
	sp := c.ins.beginLayer("gemm", n, a.C, 1, 1)
	defer sp.End()
	out := tensor.NewMatrix(mRows, n)
	if pr.wScale != 0 {
		qa, aScale := c.prequantizeInput(&c.posVol)
		if s := aScale * pr.wScale; s != 0 {
			c.gemmPass(qa, pr, sp, dst, mRows, s, false, ShardSpec{})
		}
		qa, aScale = c.prequantizeInput(&c.negVol)
		if s := aScale * pr.wScale; s != 0 {
			c.gemmPass(qa, pr, sp, dst, mRows, s, true, ShardSpec{})
		}
	}
	// Digital write-back: dst holds the product transposed (one PLCG
	// kernel per output column); untranspose into row-major and clamp.
	for j := 0; j < n; j++ {
		col := dst[j*mRows : (j+1)*mRows]
		for i, v := range col {
			if relu && v < 0 {
				v = 0
			}
			out.Data[i*n+j] = v
		}
	}
	return out
}

// gemmPass streams one sign component of the activation matrix through
// the block mapping - the Pointwise layer loop with matrix rows as
// pixels. The first (positive) pass assigns dst so a skipped negative
// pass leaves pointwise-identical bits; the negative pass subtracts in
// the digital aggregation unit. A non-whole shard restricts the pass
// to its owned output columns (GEMMShard).
//
//hot: steady-state GEMM loop; per-tile work must not allocate.
func (c *Chip) gemmPass(qa *tensor.Volume, pr *weightProgram, sp *obs.Span, dst []float64, npix int, outScale float64, subtract bool, shard ShardSpec) {
	nm, nd := c.cfg.Nm, c.cfg.Nd
	for m := 0; m < pr.m; m++ {
		if !shard.Owns(m) {
			continue
		}
		gi := c.assignGroup(m)
		g := c.groups[gi]
		nug := g.Capacity()
		sc := &g.conv
		c.ins.tile(sp, m, gi)
		for p0 := 0; p0 < npix; p0 += nd {
			acc := sc.acc
			for d := range acc {
				acc[d] = 0
			}
			for b0 := 0; b0 < pr.slotsPer; b0 += nug {
				nu := min(nug, pr.slotsPer-b0)
				for u := 0; u < nu; u++ {
					b := b0 + u
					sc.weights[u] = pr.slot(m, b)
					rows := sc.avals[u]
					for t := 0; t < nm; t++ {
						row := rows[t]
						z := b*nm + t
						if z >= qa.Z {
							for d := range row {
								row[d] = 0
							}
							continue
						}
						base := z * npix
						for d := 0; d < nd; d++ {
							if p0+d < npix {
								row[d] = qa.Data[base+p0+d]
							} else {
								row[d] = 0
							}
						}
					}
				}
				part := g.stepPrequantized(sc.part, sc.weights[:nu], sc.avals[:nu])
				if c.ins != nil {
					c.ins.step(gi, nu)
				}
				for d := range acc {
					acc[d] += part[d]
				}
			}
			if subtract {
				for d := 0; d < nd && p0+d < npix; d++ {
					dst[m*npix+p0+d] -= acc[d] * outScale
				}
			} else {
				for d := 0; d < nd && p0+d < npix; d++ {
					dst[m*npix+p0+d] = acc[d] * outScale
				}
			}
		}
	}
}
