package core

import (
	"fmt"
	"math"
	"math/rand"

	"albireo/internal/circuit"
	"albireo/internal/noise"
	"albireo/internal/photonics"
	"albireo/internal/quant"
)

// PLCU is the functional model of one photonic locally-connected unit
// (paper Figure 5): Nm weight MZMs fed by star-coupler multicast, a
// 2*Nm*Nd grid of switching MRRs, and Nd balanced photodiode columns.
// In one cycle it computes Nd concurrent dot products between one
// kernel channel and Nd overlapping receptive fields.
//
// The simulation carries values through the physical chain:
//
//  1. weights and activations are quantized by the 8-bit DACs,
//  2. each MZM scales all of its wavelengths by |w| (Eq. 2),
//  3. each switching MRR drops its wavelength onto the positive or
//     negative accumulation waveguide according to sign(w), coupling in
//     leakage from the other wavelengths sharing its bus per the
//     crosstalk matrix of the 21-channel grid,
//  4. the balanced PD subtracts the two accumulated powers (Eq. 4) and
//     RIN/shot/thermal noise perturbs the output current.
type PLCU struct {
	cfg Config
	// unitCurrent is the photocurrent of one full-scale product
	// (weight 1 x activation 1) after the complete optical path.
	unitCurrent float64
	// xtalk[i][j] is the fractional leakage of grid channel j into a
	// ring tuned to channel i.
	xtalk [][]float64
	// busChannels[t] lists, for the MZM bus of tap t, the (column d,
	// grid channel) pairs riding that bus.
	busChannels [][]int
	np          noise.Params
	wq, aq      quant.Quantizer
	rng         *rand.Rand
	// faults holds injected hardware defects (see faults.go).
	faults []Fault
	// faultEpoch advances on every InjectFault/ClearFaults so the
	// chip's weight-program cache can detect that previously compiled
	// fault-effective weights are stale.
	faultEpoch int64
	// cycles counts Currents calls - the unit's elapsed modulation
	// cycles, which progressive (drifting) faults key off.
	cycles int64
	// qwBuf and qaBuf are the unit's scratch arena: the quantized
	// weight vector and activation matrix CurrentsInto reuses across
	// cycles instead of allocating per call. qaBuf rows share one
	// backing array.
	qwBuf []float64
	qaBuf [][]float64
}

// NewPLCU builds a functional PLCU for the given configuration. The
// configuration must validate.
func NewPLCU(cfg Config) *PLCU {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid config: %v", err)) //lint:ignore exit-hygiene constructor refuses a config Validate already rejected; caller bug
	}
	delivered := cfg.SignalPath().Deliver(cfg.LaserPower)
	pd := photonics.NewPhotodiode()

	nw := cfg.WavelengthsPerPLCU()
	xa := circuit.NewCrosstalkAnalysis(cfg.K2, nw)
	var xt [][]float64
	if !cfg.DisableCrosstalk {
		xt = xa.CrosstalkMatrix()
	}

	bus := make([][]int, cfg.Nm)
	for t := 0; t < cfg.Nm; t++ {
		cols := make([]int, cfg.Nd)
		for d := 0; d < cfg.Nd; d++ {
			cols[d] = cfg.gridChannel(t, d)
		}
		bus[t] = cols
	}

	np := noise.DefaultParams()
	np.Bandwidth = cfg.ModulationRate()

	qaData := make([]float64, cfg.Nm*cfg.Nd)
	qaBuf := make([][]float64, cfg.Nm)
	for t := 0; t < cfg.Nm; t++ {
		qaBuf[t] = qaData[t*cfg.Nd : (t+1)*cfg.Nd : (t+1)*cfg.Nd]
	}

	return &PLCU{
		cfg:         cfg,
		unitCurrent: pd.Responsivity * delivered,
		xtalk:       xt,
		busChannels: bus,
		np:          np,
		wq:          quant.NewWeight(cfg.DACBits, 1),
		aq:          quant.NewActivation(cfg.DACBits, 1),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		qwBuf:       make([]float64, cfg.Nm),
		qaBuf:       qaBuf,
	}
}

// UnitCurrent returns the photocurrent of a full-scale product, the
// calibration constant relating current to value domain.
func (p *PLCU) UnitCurrent() float64 { return p.unitCurrent }

// Cycles returns the unit's elapsed modulation cycles (Currents
// calls). Progressive faults worsen as this advances.
func (p *PLCU) Cycles() int64 { return p.cycles }

// QuantizeWeight exposes the unit's DAC weight quantization: the
// closed-form healthy response to a probe weight is its quantized
// value, which the internal/health BIST engine compares observations
// against.
func (p *PLCU) QuantizeWeight(w float64) float64 { return p.quantizeWeight(w) }

// quantizeWeight snaps a weight in [-1, 1] onto the DAC grid. The
// default grid is uniform in value (a pre-distorted controller); with
// Config.VoltageDomainWeights the grid is uniform in MZM drive voltage
// and the Eq. 2 raised-cosine transfer warps it.
func (p *PLCU) quantizeWeight(w float64) float64 {
	if !p.cfg.VoltageDomainWeights {
		return p.wq.Quantize(w)
	}
	mag := math.Abs(w)
	if mag > 1 {
		mag = 1
	}
	// Voltage fraction for this magnitude: v/Vpi = dphi/pi.
	m := photonics.MZM{}
	frac := m.PhaseForWeight(mag) / math.Pi
	steps := float64(int(1)<<uint(p.cfg.DACBits-1) - 1)
	frac = math.Round(frac*steps) / steps
	qmag := m.Transfer(frac * math.Pi)
	if w < 0 {
		return -qmag
	}
	return qmag
}

// Currents computes the Nd differential output currents for one cycle.
//
// weights has length Nm: the kernel channel in row-major order,
// normalized to [-1, 1]. avals is indexed [tap][column]: avals[t][d]
// is the activation (in [0, 1]) that output column d multiplies with
// weight t. For the native 3x3 stride-1 mapping, avals[t][d] =
// field[t/Wx][t%Wx + d], the overlapping receptive fields of Figure 5.
func (p *PLCU) Currents(weights []float64, avals [][]float64) []float64 {
	return p.CurrentsInto(make([]float64, p.cfg.Nd), weights, avals)
}

// CurrentsInto is the in-place variant of Currents: it writes the Nd
// differential currents into dst (which must have length Nd) and
// returns it, allocating nothing. The quantized weight vector and
// activation matrix live in the unit's scratch arena, so CurrentsInto
// is not safe for concurrent use on one PLCU - which mirrors the
// hardware: a unit executes one modulation cycle at a time.
//
//hot: steady-state per-cycle entry point; must not allocate.
func (p *PLCU) CurrentsInto(dst, weights []float64, avals [][]float64) []float64 {
	cfg := p.cfg
	p.cycles++
	if len(weights) != cfg.Nm {
		panic(fmt.Sprintf("core: want %d weights, got %d", cfg.Nm, len(weights))) //lint:ignore exit-hygiene weight-count shape invariant; caller bug
	}
	if len(avals) != cfg.Nm {
		panic(fmt.Sprintf("core: want %d activation rows, got %d", cfg.Nm, len(avals))) //lint:ignore exit-hygiene activation-row shape invariant; caller bug
	}

	// DAC quantization at the electrical/optical boundary, then any
	// stuck-modulator faults.
	for t, w := range weights {
		p.qwBuf[t] = p.effectiveWeight(t, p.quantizeWeight(w))
	}
	for t := range avals {
		if len(avals[t]) != cfg.Nd {
			panic(fmt.Sprintf("core: tap %d wants %d activations, got %d", t, cfg.Nd, len(avals[t]))) //lint:ignore exit-hygiene per-tap activation shape invariant; caller bug
		}
		row := p.qaBuf[t]
		for d, a := range avals[t] {
			row[d] = p.aq.Quantize(a)
		}
	}
	return p.accumulate(dst, p.qwBuf, p.qaBuf)
}

// currentsPrequantized runs one cycle on weights and activations that
// are already on the DAC grids: qw holds fault-effective quantized
// weights (a compiled weight-program slot) and qa rows hold quantized
// activations. It advances the same cycle counter and draws the same
// noise samples as Currents, so outputs are bit-identical to the
// quantize-on-entry path.
//
//hot: weight-stationary inner loop; must not allocate.
func (p *PLCU) currentsPrequantized(dst []float64, qw []float64, qa [][]float64) []float64 {
	p.cycles++
	return p.accumulate(dst, qw, qa)
}

// accumulate is the shared analog datapath: MZM scaling, MRR routing
// with crosstalk and ring faults, balanced detection, and noise. qw
// and qa must already be quantized and fault-adjusted.
//
//hot: innermost per-column loop; must not allocate.
func (p *PLCU) accumulate(dst []float64, qw []float64, qa [][]float64) []float64 {
	cfg := p.cfg
	for d := 0; d < cfg.Nd; d++ {
		var pos, neg float64
		for t := 0; t < cfg.Nm; t++ {
			w := qw[t]
			if w == 0 {
				continue
			}
			mag := math.Abs(w)
			// Intended signal: the ring for (t, d) drops its own
			// wavelength carrying |w| * a.
			sig := mag * qa[t][d]
			// Crosstalk: the same ring couples a fraction of the other
			// columns' wavelengths riding tap t's bus.
			if p.xtalk != nil {
				own := p.busChannels[t][d]
				for dp := 0; dp < cfg.Nd; dp++ {
					if dp == d {
						continue
					}
					sig += p.xtalk[own][p.busChannels[t][dp]] * mag * qa[t][dp]
				}
			}
			// Switching-ring faults attenuate whatever this ring
			// couples (signal and leakage alike).
			if p.faults != nil {
				sig *= p.ringGain(t, d)
			}
			if w > 0 {
				pos += sig
			} else {
				neg += sig
			}
		}
		i := (pos - neg) * p.unitCurrent
		if !cfg.DisableNoise {
			i += p.np.Sample(p.rng, p.unitCurrent, cfg.Nm)
		}
		dst[d] = i
	}
	return dst
}

// Dot computes the Nd dot products in the value domain (no ADC): the
// differential currents divided by the unit current. Used by tests and
// by the PLCG, which applies the shared ADC after the analog
// cross-unit reduction.
func (p *PLCU) Dot(weights []float64, avals [][]float64) []float64 {
	cur := p.Currents(weights, avals)
	for i := range cur {
		cur[i] /= p.unitCurrent
	}
	return cur
}

// DotInto is the in-place variant of Dot: dst must have length Nd.
// Like CurrentsInto it allocates nothing and is not safe for
// concurrent use on one PLCU.
func (p *PLCU) DotInto(dst, weights []float64, avals [][]float64) []float64 {
	p.CurrentsInto(dst, weights, avals)
	for i := range dst {
		dst[i] /= p.unitCurrent
	}
	return dst
}

// ReceptiveFieldAVals lays out a KernelH x (Nd+KernelW-1) input field
// into the [tap][column] activation matrix of the native stride-1
// mapping: avals[t][d] = field[t/Wx][t%Wx + d].
func (p *PLCU) ReceptiveFieldAVals(field [][]float64) [][]float64 {
	cfg := p.cfg
	width := cfg.Nd + cfg.KernelW - 1
	if len(field) != cfg.KernelH {
		panic(fmt.Sprintf("core: field wants %d rows, got %d", cfg.KernelH, len(field))) //lint:ignore exit-hygiene field row-count invariant; caller bug
	}
	out := make([][]float64, cfg.Nm)
	for t := 0; t < cfg.Nm; t++ {
		r, c := t/cfg.KernelW, t%cfg.KernelW
		if len(field[r]) != width {
			panic(fmt.Sprintf("core: field row %d wants %d cols, got %d", r, width, len(field[r]))) //lint:ignore exit-hygiene field column-count invariant; caller bug
		}
		row := make([]float64, cfg.Nd)
		for d := 0; d < cfg.Nd; d++ {
			row[d] = field[r][c+d]
		}
		out[t] = row
	}
	return out
}
