package core

import (
	"testing"

	"albireo/internal/tensor"
)

// The zero-allocation contract: after the first layer warms the
// weight-program cache and the scratch arenas, the analog hot path
// performs no heap allocation per cycle. These tests pin that with
// testing.AllocsPerRun so an accidental make() or escaping closure in
// the hot path fails CI rather than silently costing 2-3x throughput
// (the pre-optimization pipeline allocated ~37k times per small conv
// layer).

func hotInputs(cfg Config) ([]float64, [][]float64) {
	weights := make([]float64, cfg.Nm)
	avals := make([][]float64, cfg.Nm)
	for t := 0; t < cfg.Nm; t++ {
		weights[t] = float64(t%5)/5 - 0.4
		row := make([]float64, cfg.Nd)
		for d := range row {
			row[d] = float64((t+d)%7) / 7
		}
		avals[t] = row
	}
	return weights, avals
}

func TestCurrentsIntoAllocFree(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPLCU(cfg)
	weights, avals := hotInputs(cfg)
	dst := make([]float64, cfg.Nd)
	p.CurrentsInto(dst, weights, avals) // warm any lazy runtime state
	if avg := testing.AllocsPerRun(200, func() {
		p.CurrentsInto(dst, weights, avals)
	}); avg != 0 {
		t.Fatalf("CurrentsInto allocates %.1f times per cycle, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		p.DotInto(dst, weights, avals)
	}); avg != 0 {
		t.Fatalf("DotInto allocates %.1f times per cycle, want 0", avg)
	}
}

func TestCurrentsWrapperSingleAlloc(t *testing.T) {
	// The allocating wrapper exists so callers (tests, BIST probes)
	// that hold results across calls keep working; it must cost
	// exactly the documented output slice and nothing else.
	cfg := DefaultConfig()
	p := NewPLCU(cfg)
	weights, avals := hotInputs(cfg)
	p.Currents(weights, avals)
	if avg := testing.AllocsPerRun(200, func() {
		p.Currents(weights, avals)
	}); avg != 1 {
		t.Fatalf("Currents allocates %.1f times per cycle, want exactly 1 (the output slice)", avg)
	}
}

func TestStepIntoAllocFree(t *testing.T) {
	cfg := DefaultConfig()
	g := NewPLCG(cfg)
	weights := make([][]float64, cfg.Nu)
	avals := make([][][]float64, cfg.Nu)
	for u := 0; u < cfg.Nu; u++ {
		weights[u], avals[u] = hotInputs(cfg)
	}
	dst := make([]float64, cfg.Nd)
	g.StepInto(dst, weights, avals)
	if avg := testing.AllocsPerRun(200, func() {
		g.StepInto(dst, weights, avals)
	}); avg != 0 {
		t.Fatalf("StepInto allocates %.1f times per cycle, want 0", avg)
	}
}

func TestConvSteadyStateAllocs(t *testing.T) {
	// A warm chip re-running the same layer must allocate only the
	// caller-owned output volume (its struct and data array): the
	// weight program is cached, the activation scratch is sized, and
	// every per-tile buffer comes from the arenas.
	chip := NewChip(DefaultConfig())
	a := tensor.RandomVolume(6, 16, 16, 1)
	w := tensor.RandomKernels(4, 6, 3, 3, 2)
	ccfg := tensor.ConvConfig{Stride: 1, Pad: 1}
	chip.Conv(a, w, ccfg, true) // compile the program, grow the scratch
	if avg := testing.AllocsPerRun(5, func() {
		chip.Conv(a, w, ccfg, true)
	}); avg > 2 {
		t.Fatalf("steady-state Conv allocates %.1f times per layer, want <=2 (the output volume)", avg)
	}
}

func TestConvSteadyStateAllocsAcrossMappings(t *testing.T) {
	// Depthwise, pointwise, and FC share the arenas and the program
	// cache; their steady state must match Conv's.
	chip := NewChip(DefaultConfig())
	dwA := tensor.RandomVolume(5, 8, 8, 21)
	dwW := tensor.RandomKernels(5, 1, 3, 3, 22)
	dwCfg := tensor.ConvConfig{Stride: 1, Pad: 1, Depthwise: true}
	pwA := tensor.RandomVolume(6, 7, 7, 41)
	pwW := tensor.RandomKernels(7, 6, 1, 1, 42)
	fcA := tensor.RandomVolume(4, 5, 5, 51)
	fcW := tensor.RandomKernels(6, 4, 5, 5, 52)
	chip.Conv(dwA, dwW, dwCfg, true)
	chip.Pointwise(pwA, pwW, true)
	chip.FullyConnected(fcA, fcW, true)

	if avg := testing.AllocsPerRun(5, func() {
		chip.Conv(dwA, dwW, dwCfg, true)
	}); avg > 2 {
		t.Errorf("steady-state depthwise allocates %.1f times per layer, want <=2", avg)
	}
	if avg := testing.AllocsPerRun(5, func() {
		chip.Pointwise(pwA, pwW, true)
	}); avg > 2 {
		t.Errorf("steady-state pointwise allocates %.1f times per layer, want <=2", avg)
	}
	if avg := testing.AllocsPerRun(5, func() {
		chip.FullyConnected(fcA, fcW, true)
	}); avg > 1 {
		t.Errorf("steady-state FC allocates %.1f times per layer, want <=1 (the output slice)", avg)
	}
}
