package core

import (
	"fmt"

	"albireo/internal/photonics"
)

// PLCG is the functional model of one photonic locally-connected group
// (paper Figure 6b): Nu PLCUs processing Nu consecutive input channels
// in parallel, an analog reduction that sums corresponding photodiode
// currents across the PLCUs, and an aggregation unit (TIA -> ADC ->
// digital adder) that accumulates partials depth-first over
// ceil(Wz/Nu) cycles before applying the activation (Section III-B).
type PLCG struct {
	cfg   Config
	units []*PLCU
	adc   photonics.ADC
	// fullScaleCurrent is the ADC input full scale: all Nu*Nm products
	// at full amplitude on one polarity.
	fullScaleCurrent float64
}

// NewPLCG builds a functional PLCG. Each PLCU gets a distinct noise
// stream derived from cfg.Seed.
func NewPLCG(cfg Config) *PLCG {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid config: %v", err)) //lint:ignore exit-hygiene constructor refuses a config Validate already rejected; caller bug
	}
	units := make([]*PLCU, cfg.Nu)
	for u := range units {
		ucfg := cfg
		ucfg.Seed = cfg.Seed*1000003 + int64(u)
		units[u] = NewPLCU(ucfg)
	}
	return &PLCG{
		cfg:              cfg,
		units:            units,
		adc:              photonics.ADC{Bits: cfg.ADCBits, SampleRate: cfg.ModulationRate()},
		fullScaleCurrent: float64(cfg.Nu*cfg.Nm) * units[0].UnitCurrent(),
	}
}

// Units exposes the PLCUs (read-only use).
func (g *PLCG) Units() []*PLCU { return g.units }

// Step performs one cycle: each PLCU u processes weights[u] against
// avals[u] (shapes as in PLCU.Currents), the Nd per-column currents
// are summed across units in the analog domain, digitized by the
// shared ADC, and returned in the value domain (units of full-scale
// products). Fewer than Nu entries are allowed for tail channel
// groups; missing units idle.
func (g *PLCG) Step(weights [][]float64, avals [][][]float64) []float64 {
	if len(weights) > g.cfg.Nu || len(weights) != len(avals) {
		panic(fmt.Sprintf("core: step wants <=%d matched channel slots, got %d/%d", //lint:ignore exit-hygiene slot-count shape invariant; caller bug
			g.cfg.Nu, len(weights), len(avals)))
	}
	sum := make([]float64, g.cfg.Nd)
	for u := range weights {
		cur := g.units[u].Currents(weights[u], avals[u])
		for d, c := range cur {
			sum[d] += c
		}
	}
	unit := g.units[0].UnitCurrent()
	// The TIA gain is programmed per layer so the ADC full scale
	// matches the active PLCU population: a depthwise layer driving a
	// single PLCU digitizes against a 3x smaller range than a dense
	// layer driving all Nu units.
	fs := float64(len(weights)*g.cfg.Nm) * unit
	if fs <= 0 {
		fs = g.fullScaleCurrent
	}
	out := make([]float64, g.cfg.Nd)
	for d, c := range sum {
		out[d] = g.adc.Quantize(c, fs) / unit
	}
	return out
}

// ValueLSB returns the aggregation-unit quantization step in the value
// domain: the smallest dot-product increment the ADC resolves. Useful
// for error budgeting in tests.
func (g *PLCG) ValueLSB() float64 {
	return g.adc.LSB(g.fullScaleCurrent) / g.units[0].UnitCurrent()
}
