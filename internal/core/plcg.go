package core

import (
	"fmt"

	"albireo/internal/photonics"
)

// PLCG is the functional model of one photonic locally-connected group
// (paper Figure 6b): Nu PLCUs processing Nu consecutive input channels
// in parallel, an analog reduction that sums corresponding photodiode
// currents across the PLCUs, and an aggregation unit (TIA -> ADC ->
// digital adder) that accumulates partials depth-first over
// ceil(Wz/Nu) cycles before applying the activation (Section III-B).
//
// A PLCG degrades gracefully: quarantined PLCUs are removed from the
// slot mapping, so Step schedules work onto the remaining healthy
// units only (fewer slots per cycle, more cycles per layer).
type PLCG struct {
	cfg   Config
	units []*PLCU
	adc   photonics.ADC
	// fullScaleCurrent is the ADC input full scale: all Nu*Nm products
	// at full amplitude on one polarity.
	fullScaleCurrent float64
	// avail lists the healthy (non-quarantined) unit indices in
	// ascending order; Step slot i drives units[avail[i]].
	avail []int
	// sumBuf and curBuf are the group's reduction scratch: the analog
	// cross-unit sum and the per-unit currents StepInto reuses across
	// cycles instead of allocating per call.
	sumBuf, curBuf []float64
	// conv is the group-owned scratch arena the chip's layer loops
	// (Conv, ConvConcurrent, depthwise, Pointwise, FullyConnected)
	// stage slot weights and activations in. Group-owned so
	// ConvConcurrent's one-goroutine-per-PLCG partitioning keeps it
	// race-free.
	conv convScratch
}

// NewPLCG builds a functional PLCG. Each PLCU gets a distinct noise
// stream derived from cfg.Seed.
func NewPLCG(cfg Config) *PLCG {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid config: %v", err)) //lint:ignore exit-hygiene constructor refuses a config Validate already rejected; caller bug
	}
	units := make([]*PLCU, cfg.Nu)
	avail := make([]int, cfg.Nu)
	for u := range units {
		ucfg := cfg
		ucfg.Seed = cfg.Seed*1000003 + int64(u)
		units[u] = NewPLCU(ucfg)
		avail[u] = u
	}
	return &PLCG{
		cfg:              cfg,
		units:            units,
		adc:              photonics.ADC{Bits: cfg.ADCBits, SampleRate: cfg.ModulationRate()},
		fullScaleCurrent: float64(cfg.Nu*cfg.Nm) * units[0].UnitCurrent(),
		avail:            avail,
		sumBuf:           make([]float64, cfg.Nd),
		curBuf:           make([]float64, cfg.Nd),
		conv:             newConvScratch(cfg),
	}
}

// Units exposes the PLCUs (read-only use).
func (g *PLCG) Units() []*PLCU { return g.units }

// Capacity returns the number of healthy (schedulable) PLCUs. It is
// Nu until units are quarantined.
func (g *PLCG) Capacity() int { return len(g.avail) }

// quarantine removes unit u from the slot mapping. Reports whether
// the unit was schedulable before the call.
func (g *PLCG) quarantine(u int) bool {
	for i, a := range g.avail {
		if a == u {
			g.avail = append(g.avail[:i:i], g.avail[i+1:]...)
			return true
		}
	}
	return false
}

// restoreAll puts every unit back into the slot mapping.
func (g *PLCG) restoreAll() {
	g.avail = g.avail[:0]
	for u := range g.units {
		g.avail = append(g.avail, u)
	}
}

// Step performs one cycle: healthy PLCU slot i processes weights[i]
// against avals[i] (shapes as in PLCU.Currents), the Nd per-column
// currents are summed across units in the analog domain, digitized by
// the shared ADC, and returned in the value domain (units of
// full-scale products). Fewer than Capacity entries are allowed for
// tail channel groups; missing units idle. Quarantined units are
// never driven.
func (g *PLCG) Step(weights [][]float64, avals [][][]float64) []float64 {
	return g.StepInto(make([]float64, g.cfg.Nd), weights, avals)
}

// StepInto is the in-place variant of Step: it writes the Nd
// aggregated values into dst (which must have length Nd) and returns
// it. The reduction scratch is group-owned, so StepInto is not safe
// for concurrent use on one PLCG.
//
//hot: steady-state per-cycle group entry point; must not allocate.
func (g *PLCG) StepInto(dst []float64, weights [][]float64, avals [][][]float64) []float64 {
	if len(weights) > len(g.avail) || len(weights) != len(avals) {
		panic(fmt.Sprintf("core: step wants <=%d matched channel slots, got %d/%d", //lint:ignore exit-hygiene slot-count shape invariant; caller bug
			len(g.avail), len(weights), len(avals)))
	}
	sum := g.sumBuf
	for d := range sum {
		sum[d] = 0
	}
	for i := range weights {
		cur := g.units[g.avail[i]].CurrentsInto(g.curBuf, weights[i], avals[i])
		for d, c := range cur {
			sum[d] += c
		}
	}
	return g.aggregate(dst, sum, len(weights))
}

// stepPrequantized is StepInto for compiled weight-program slots and
// pre-quantized activation rows: the quantization work is already
// done, so healthy slots go straight to the analog datapath. Cycle
// counts, noise draws, and ADC behaviour match Step bit for bit.
//
//hot: weight-stationary group inner loop; must not allocate.
func (g *PLCG) stepPrequantized(dst []float64, qw [][]float64, qa [][][]float64) []float64 {
	if len(qw) > len(g.avail) || len(qw) != len(qa) {
		panic(fmt.Sprintf("core: step wants <=%d matched channel slots, got %d/%d", //lint:ignore exit-hygiene slot-count shape invariant; caller bug
			len(g.avail), len(qw), len(qa)))
	}
	sum := g.sumBuf
	for d := range sum {
		sum[d] = 0
	}
	for i := range qw {
		cur := g.units[g.avail[i]].currentsPrequantized(g.curBuf, qw[i], qa[i])
		for d, c := range cur {
			sum[d] += c
		}
	}
	return g.aggregate(dst, sum, len(qw))
}

// aggregate applies the TIA + shared-ADC stage to the analog sum of
// nslots active units and writes the value-domain result into dst.
//
//hot: shared aggregation tail; must not allocate.
func (g *PLCG) aggregate(dst, sum []float64, nslots int) []float64 {
	unit := g.units[0].UnitCurrent()
	// The TIA gain is programmed per layer so the ADC full scale
	// matches the active PLCU population: a depthwise layer driving a
	// single PLCU digitizes against a 3x smaller range than a dense
	// layer driving all Nu units.
	fs := float64(nslots*g.cfg.Nm) * unit
	if fs <= 0 {
		fs = g.fullScaleCurrent
	}
	for d, c := range sum {
		dst[d] = g.adc.Quantize(c, fs) / unit
	}
	return dst
}

// ValueLSB returns the aggregation-unit quantization step in the value
// domain: the smallest dot-product increment the ADC resolves. Useful
// for error budgeting in tests.
func (g *PLCG) ValueLSB() float64 {
	return g.adc.LSB(g.fullScaleCurrent) / g.units[0].UnitCurrent()
}
