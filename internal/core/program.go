package core

import (
	"math"

	"albireo/internal/tensor"
)

// The hardware programs a kernel's weight MZMs once and then streams
// the whole output plane through them (Algorithm 2's weight-stationary
// depth-first dataflow); only the activations change cycle to cycle.
// A weightProgram is the software mirror of that: the DAC-quantized,
// fault-effective weight code for every slot the layer will ever
// drive, compiled once per (kernel tensor, mapping kind) and reused
// across all output positions - and across layers, since CNNs run the
// same weights on every inference.
//
// A compiled program bakes in three kinds of state and is invalidated
// when any of them changes:
//
//   - the kernel values themselves (detected by an exact bit compare
//     against a private snapshot, since callers may mutate tensors),
//   - the quarantine schedule, which decides which PLCU quantizes each
//     slot (chip.schedEpoch advances on Quarantine/ClearQuarantine),
//   - injected faults, whose StuckMZM transfers are folded into the
//     codes (the per-PLCU faultEpoch sum advances on InjectFault and
//     ClearFaults, including direct PLCU-level injection).
//
// Ring faults (DeadRing/DetunedRing) act on the activation side of the
// datapath and drift with the cycle counter, so they are deliberately
// not compiled in; PLCU.accumulate applies them per cycle.

// programKind selects the slot layout a weight program is compiled
// for.
type programKind uint8

const (
	// progConv lays out slots [m][z][chunk]: dense convolution, one
	// slot per kernel channel per tap chunk.
	progConv programKind = iota
	// progDepthwise lays out slots [m][chunk]: one depth-1 kernel per
	// input channel, always driving the group's first healthy unit.
	progDepthwise
	// progBlock lays out slots [m][block]: the pointwise/FC mapping,
	// where each tap carries one flattened input element and blocks of
	// Nm elements round-robin over the group's healthy units.
	progBlock
)

// progKey identifies a cached program: the kernel tensor identity, the
// mapping kind, and the (normalized) kernel-group shard it was
// compiled for. Whole-layer shards normalize to the zero ShardSpec so
// sharded and unsharded execution of a full slice share one entry.
type progKey struct {
	w     *tensor.Kernels
	kind  programKind
	shard ShardSpec
}

// maxCachedPrograms bounds the chip's program cache. Grouped
// convolutions compile ephemeral per-group kernel slices, so the cache
// is cleared wholesale once it fills rather than tracking liveness.
const maxCachedPrograms = 64

// weightProgram is one compiled layer's weight codes.
type weightProgram struct {
	// wScale is the kernel normalization scale (MaxAbs). Zero means
	// the layer is all zeros; no codes are compiled and callers
	// early-return on a zero output scale.
	wScale float64
	// m, z, y, x snapshot the kernel geometry the program was compiled
	// from.
	m, z, y, x int
	// src is a private copy of the kernel data for staleness
	// detection.
	src []float64
	// chunks is the tap chunking of the kernel footprint (conv and
	// depthwise layouts).
	chunks []tapChunk
	// nm is the slot width (Config.Nm).
	nm int
	// zDim is the per-kernel channel extent of the conv layout (w.Z;
	// 1 for depthwise).
	zDim int
	// slotsPer is the number of slots per kernel.
	slotsPer int
	// codes holds slotsPer*nm fault-effective quantized weights per
	// kernel, contiguous per slot.
	codes []float64
	// schedEpoch and faultEpoch record the chip state the program was
	// compiled under.
	schedEpoch int64
	faultEpoch int64
}

// slot returns the compiled weight vector of slot s of kernel m, with
// capacity clamped so callers cannot append into a neighbor.
func (pr *weightProgram) slot(m, s int) []float64 {
	base := (m*pr.slotsPer + s) * pr.nm
	return pr.codes[base : base+pr.nm : base+pr.nm]
}

// sameBits reports exact bit equality of two float slices. Comparing
// representations (not values) keeps the check NaN-safe: a changed
// NaN payload forces a rebuild, the conservative direction.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// faultEpochSum folds every PLCU's fault epoch into one cache
// validity token. A sum is enough: epochs only ever advance.
func (c *Chip) faultEpochSum() int64 {
	var s int64
	for _, g := range c.groups {
		for _, u := range g.units {
			s += u.faultEpoch
		}
	}
	return s
}

// programFor returns the compiled weight program for (w, kind),
// reusing the cached compilation when the kernel bits, quarantine
// schedule, and fault state are all unchanged.
func (c *Chip) programFor(kind programKind, w *tensor.Kernels) *weightProgram {
	return c.programShard(kind, w, ShardSpec{})
}

// programShard is programFor for a kernel-group shard: the compiled
// program covers only the shard's owned kernels (unowned slots stay
// zero, so slot indexing is unchanged), which makes per-shard compile
// time and cache footprint proportional to the owned slice.
func (c *Chip) programShard(kind programKind, w *tensor.Kernels, shard ShardSpec) *weightProgram {
	shard = normalizeShard(shard)
	key := progKey{w: w, kind: kind, shard: shard}
	fe := c.faultEpochSum()
	if pr, ok := c.progs[key]; ok &&
		pr.schedEpoch == c.schedEpoch && pr.faultEpoch == fe &&
		pr.m == w.M && pr.z == w.Z && pr.y == w.Y && pr.x == w.X &&
		sameBits(pr.src, w.Data) {
		return pr
	}
	pr := c.compileProgram(kind, w, shard)
	pr.schedEpoch, pr.faultEpoch = c.schedEpoch, fe
	if c.progs == nil {
		c.progs = make(map[progKey]*weightProgram)
	}
	if len(c.progs) >= maxCachedPrograms {
		clear(c.progs)
	}
	c.progs[key] = pr
	return pr
}

// compileProgram quantizes every slot's weight vector through the
// exact unit that will drive it under the current quarantine schedule,
// folding in that unit's DAC grid (value-uniform or voltage-domain)
// and StuckMZM transfers. The per-slot unit assignment mirrors the
// layer loops: conv slot (m, z) lands on group activeGroup(m), unit
// avail[z % capacity]; depthwise drives avail[0]; block layouts
// round-robin blocks over avail. A non-whole shard compiles only its
// owned kernels; the codes array stays full-size (unowned slots zero)
// so slot(m, s) indexing is layout-independent.
func (c *Chip) compileProgram(kind programKind, w *tensor.Kernels, shard ShardSpec) *weightProgram {
	pr := &weightProgram{
		wScale: w.MaxAbs(),
		m:      w.M, z: w.Z, y: w.Y, x: w.X,
		src: append([]float64(nil), w.Data...),
		nm:  c.cfg.Nm,
	}
	if pr.wScale == 0 {
		return pr
	}
	switch kind {
	case progConv:
		pr.chunks = c.tapChunks(w.Y, w.X)
		pr.zDim = w.Z
		pr.slotsPer = w.Z * len(pr.chunks)
		pr.codes = make([]float64, w.M*pr.slotsPer*pr.nm)
		for m := 0; m < w.M; m++ {
			if !shard.Owns(m) {
				continue
			}
			g := c.groups[c.activeGroup(m)]
			nug := g.Capacity()
			for z := 0; z < w.Z; z++ {
				unit := g.units[g.avail[z%nug]]
				for ci := range pr.chunks {
					pr.compileSlot(pr.slot(m, z*len(pr.chunks)+ci), unit, w, m, z, &pr.chunks[ci])
				}
			}
		}
	case progDepthwise:
		pr.chunks = c.tapChunks(w.Y, w.X)
		pr.zDim = 1
		pr.slotsPer = len(pr.chunks)
		pr.codes = make([]float64, w.M*pr.slotsPer*pr.nm)
		for m := 0; m < w.M; m++ {
			if !shard.Owns(m) {
				continue
			}
			g := c.groups[c.activeGroup(m)]
			unit := g.units[g.avail[0]]
			for ci := range pr.chunks {
				pr.compileSlot(pr.slot(m, ci), unit, w, m, 0, &pr.chunks[ci])
			}
		}
	case progBlock:
		n := w.Z * w.Y * w.X
		pr.slotsPer = (n + pr.nm - 1) / pr.nm
		pr.codes = make([]float64, w.M*pr.slotsPer*pr.nm)
		for m := 0; m < w.M; m++ {
			if !shard.Owns(m) {
				continue
			}
			g := c.groups[c.activeGroup(m)]
			nug := g.Capacity()
			for b := 0; b < pr.slotsPer; b++ {
				unit := g.units[g.avail[b%nug]]
				slot := pr.slot(m, b)
				for t := 0; t < pr.nm; t++ {
					var nw float64
					if e := b*pr.nm + t; e < n {
						nw = w.Data[m*n+e] / pr.wScale
					}
					slot[t] = unit.effectiveWeight(t, unit.quantizeWeight(nw))
				}
			}
		}
	}
	return pr
}

// compileSlot fills one conv/depthwise slot: the chunk's taps carry
// the normalized kernel values, taps past the chunk carry weight
// zero - which still quantizes through the unit's DAC grid and fault
// set, exactly as the quantize-on-entry path does.
func (pr *weightProgram) compileSlot(slot []float64, unit *PLCU, w *tensor.Kernels, m, z int, ch *tapChunk) {
	for t := range slot {
		var nw float64
		if t < len(ch.ky) {
			nw = w.At(m, z, ch.ky[t], ch.kx[t]) / pr.wScale
		}
		slot[t] = unit.effectiveWeight(t, unit.quantizeWeight(nw))
	}
}
