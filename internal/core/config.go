// Package core implements the Albireo architecture (paper Section
// III): the photonic locally-connected unit (PLCU), the photonic
// locally-connected group (PLCG), and the full chip, in two
// complementary forms:
//
//   - a functional analog simulator that actually computes convolutions
//     through the optical signal chain (DAC quantization -> MZM
//     multiplication -> MRR switching with crosstalk -> balanced
//     photodetection with noise -> ADC), validated against the exact
//     references in internal/tensor; and
//   - a cycle-level mapping model (Algorithm 2) that yields the latency
//     numbers behind the paper's evaluation.
package core

import (
	"fmt"

	"albireo/internal/circuit"
	"albireo/internal/device"
	"albireo/internal/units"
)

// Config holds the architecture parameters of an Albireo design. The
// zero value is not useful; start from DefaultConfig.
type Config struct {
	// Nm is the number of input waveguides (and weight MZMs) per PLCU.
	// The paper uses 9 to hold one 3x3 kernel channel.
	Nm int
	// Nd is the number of balanced-PD output columns per PLCU: the
	// receptive fields computed concurrently. The paper uses 5.
	Nd int
	// Nu is the number of PLCUs per PLCG: input channels processed in
	// parallel. The paper uses 3 (3 x 21 wavelengths within the 64
	// channel distribution budget).
	Nu int
	// Ng is the number of PLCGs on the chip: kernels processed in
	// parallel. The paper's default design uses 9; the power-scaled
	// Albireo-27 uses 27.
	Ng int
	// KernelH, KernelW are the native kernel footprint (Wy, Wx = 3, 3);
	// Nm = KernelH*KernelW holds one channel of such a kernel.
	KernelH, KernelW int
	// Estimate selects the Table I device generation.
	Estimate device.Estimate
	// K2 is the accumulator ring power cross-coupling coefficient
	// (Table II: 0.03).
	K2 float64
	// LaserPower is the per-wavelength laser output in watts.
	LaserPower float64
	// ADCBits and DACBits are the converter resolutions (8 in the
	// paper).
	ADCBits, DACBits int
	// FCWide selects the wide fully-connected mapping, which feeds all
	// Nd PD columns during FC layers. The paper's prose describes a
	// single active column, but its reported AlexNet latency is only
	// consistent with the wide mapping (see DESIGN.md); wide is the
	// default.
	FCWide bool
	// DisableNoise and DisableCrosstalk switch off the respective
	// impairments in the functional simulator, for ablation.
	DisableNoise, DisableCrosstalk bool
	// VoltageDomainWeights quantizes MZM weights on a linear *voltage*
	// grid instead of a linear value grid: the raw behaviour of a
	// linear DAC driving the Eq. 2 raised-cosine transfer without
	// controller pre-distortion. Weight steps become coarse around
	// mid-scale, costing accuracy - the ablation that justifies
	// pre-distorted weight codes (see photonics.MZMDrive).
	VoltageDomainWeights bool
	// Seed seeds the noise sampler.
	Seed int64
}

// DefaultConfig returns the paper's 9-PLCG Albireo design with
// conservative devices.
func DefaultConfig() Config {
	return Config{
		Nm:         9,
		Nd:         5,
		Nu:         3,
		Ng:         9,
		KernelH:    3,
		KernelW:    3,
		Estimate:   device.Conservative,
		K2:         0.03,
		LaserPower: 2 * units.Milli,
		ADCBits:    8,
		DACBits:    8,
		FCWide:     true,
		Seed:       1,
	}
}

// Albireo27 returns the 27-PLCG power-scaled design the paper compares
// at the 60 W budget.
func Albireo27() Config {
	c := DefaultConfig()
	c.Ng = 27
	return c
}

// Validate reports structural problems with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nm <= 0 || c.Nd <= 0 || c.Nu <= 0 || c.Ng <= 0:
		return fmt.Errorf("core: dimensions must be positive: Nm=%d Nd=%d Nu=%d Ng=%d", c.Nm, c.Nd, c.Nu, c.Ng)
	case c.KernelH <= 0 || c.KernelW <= 0:
		return fmt.Errorf("core: kernel footprint must be positive: %dx%d", c.KernelH, c.KernelW)
	case c.KernelH*c.KernelW != c.Nm:
		return fmt.Errorf("core: Nm=%d must equal KernelH*KernelW=%d", c.Nm, c.KernelH*c.KernelW)
	case c.K2 <= 0 || c.K2 >= 1:
		return fmt.Errorf("core: k^2=%g out of (0,1)", c.K2)
	case c.LaserPower <= 0:
		return fmt.Errorf("core: laser power must be positive")
	case c.ADCBits < 2 || c.DACBits < 2:
		return fmt.Errorf("core: converter resolution too low")
	}
	return nil
}

// WavelengthsPerPLCU returns Wy*(Nd + Wx - 1), the WDM channel count
// each PLCU consumes (Section III-A; 21 for the default design).
func (c Config) WavelengthsPerPLCU() int {
	return c.KernelH * (c.Nd + c.KernelW - 1)
}

// TotalWavelengths returns the distribution wavelength count,
// Nu * WavelengthsPerPLCU (63 of the 64-channel budget).
func (c Config) TotalWavelengths() int {
	return c.Nu * c.WavelengthsPerPLCU()
}

// ModulationRate returns the photonic symbol rate, set by the
// converter sample rate of the selected estimate (Section IV-A).
func (c Config) ModulationRate() float64 {
	return device.Powers(c.Estimate).SampleRate
}

// SignalPath returns the optical loss budget from signal generation to
// a PLCU photodiode for this design.
func (c Config) SignalPath() *circuit.PathLoss {
	return circuit.AlbireoSignalPath(c.Ng, c.KernelW)
}

// gridChannel maps a PLCU tap (kernel position t in row-major order)
// and output column d to its canonical WDM grid channel index,
// following the Figure 5 layout: channel = row*(Nd+Wx-1) + col + d.
func (c Config) gridChannel(t, d int) int {
	row := t / c.KernelW
	col := t % c.KernelW
	return row*(c.Nd+c.KernelW-1) + col + d
}

// String implements fmt.Stringer.
func (c Config) String() string {
	return fmt.Sprintf("albireo-%s{Ng=%d Nu=%d Nm=%d Nd=%d k2=%.3f}",
		c.Estimate, c.Ng, c.Nu, c.Nm, c.Nd, c.K2)
}
