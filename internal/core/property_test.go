package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"albireo/internal/nn"
	"albireo/internal/tensor"
)

// Property-based tests (testing/quick) on the core invariants of the
// analog fabric and the mapping model.

// randomSlot draws a random weight vector and activation matrix.
func randomSlot(rng *rand.Rand) ([]float64, [][]float64) {
	w := make([]float64, 9)
	for i := range w {
		w[i] = rng.Float64()*2 - 1
	}
	a := make([][]float64, 9)
	for i := range a {
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.Float64()
		}
		a[i] = row
	}
	return w, a
}

func TestPropertyDotBounded(t *testing.T) {
	t.Parallel()
	// Every dot product is bounded by +-Nm regardless of inputs, even
	// with crosstalk and noise: the optical power budget caps it.
	p := NewPLCU(DefaultConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, a := randomSlot(rng)
		for _, v := range p.Dot(w, a) {
			if math.Abs(v) > 9.5 { // Nm plus crosstalk/noise margin
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyWeightSignSymmetry(t *testing.T) {
	t.Parallel()
	// Negating every weight negates the output exactly (ideal
	// devices): the balanced-PD subtraction of Eq. 4 is antisymmetric.
	p := NewPLCU(idealConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, a := randomSlot(rng)
		pos := p.Dot(w, a)
		neg := make([]float64, len(w))
		for i := range w {
			neg[i] = -w[i]
		}
		flipped := p.Dot(neg, a)
		for d := range pos {
			if math.Abs(pos[d]+flipped[d]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyActivationMonotone(t *testing.T) {
	t.Parallel()
	// With a single positive weight, raising the activation never
	// lowers the output (ideal devices; DAC quantization is monotone).
	p := NewPLCU(idealConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, 9)
		w[0] = rng.Float64()
		base := make([][]float64, 9)
		for i := range base {
			base[i] = make([]float64, 5)
		}
		prev := math.Inf(-1)
		for _, a0 := range []float64{0, 0.25, 0.5, 0.75, 1} {
			base[0][0] = a0
			v := p.Dot(w, base)[0]
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyConvScaleEquivariance(t *testing.T) {
	t.Parallel()
	// Scaling the input volume scales the (ideal) analog output by the
	// same factor, up to quantization: the chip normalizes internally,
	// so the encoding is scale-free.
	chip := NewChip(idealConfig())
	f := func(seed int64, rawScale float64) bool {
		scale := 0.25 + math.Abs(math.Mod(rawScale, 4))
		a := tensor.RandomVolume(3, 6, 6, seed)
		w := tensor.RandomKernels(2, 3, 3, 3, seed+1)
		cfg := tensor.ConvConfig{Pad: 1}
		base := chip.Conv(a, w, cfg, false)
		scaled := a.Clone()
		for i := range scaled.Data {
			scaled.Data[i] *= scale
		}
		out := chip.Conv(scaled, w, cfg, false)
		for i := range base.Data {
			if math.Abs(out.Data[i]-scale*base.Data[i]) > 0.05*scale*9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMappingMonotone(t *testing.T) {
	t.Parallel()
	// Cycle counts never decrease when a layer grows in any dimension.
	cfg := DefaultConfig()
	base := nn.Layer{Kind: nn.Conv, InZ: 16, InY: 14, InX: 14, OutZ: 32, KY: 3, KX: 3, Stride: 1, Pad: 1}
	baseCycles := cfg.MapLayer(base).Cycles
	grow := []func(nn.Layer) nn.Layer{
		func(l nn.Layer) nn.Layer { l.InZ *= 2; return l },
		func(l nn.Layer) nn.Layer { l.OutZ *= 2; return l },
		func(l nn.Layer) nn.Layer { l.InY *= 2; l.InX *= 2; return l },
		func(l nn.Layer) nn.Layer { l.KY, l.KX = 5, 5; return l },
	}
	for i, g := range grow {
		if got := cfg.MapLayer(g(base)).Cycles; got < baseCycles {
			t.Errorf("growth %d should not reduce cycles: %d < %d", i, got, baseCycles)
		}
	}
	// And shrinking the chip never speeds it up.
	small := cfg
	small.Ng = 3
	if small.MapLayer(base).Cycles < baseCycles {
		t.Error("fewer PLCGs cannot be faster")
	}
}

func TestPropertyMappingCoversMACs(t *testing.T) {
	t.Parallel()
	// The fabric's scheduled capacity always covers the layer's MACs:
	// cycles * peak-MACs/cycle >= layer MACs (utilization <= 1).
	cfg := DefaultConfig()
	peak := int64(cfg.Ng * cfg.Nu * cfg.Nm * cfg.Nd)
	f := func(rawZ, rawM, rawS uint8) bool {
		l := nn.Layer{
			Kind: nn.Conv,
			InZ:  1 + int(rawZ%64), InY: 14, InX: 14,
			OutZ: 1 + int(rawM%64),
			KY:   3, KX: 3, Stride: 1 + int(rawS%2), Pad: 1,
		}
		m := cfg.MapLayer(l)
		return m.Cycles*peak >= l.MACs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyNoiseZeroMean(t *testing.T) {
	t.Parallel()
	// Repeated noisy evaluations of the same dot product average to
	// the ideal value: the impairments are unbiased.
	cfg := DefaultConfig()
	cfg.DisableCrosstalk = true
	p := NewPLCU(cfg)
	ideal := NewPLCU(idealConfig())
	rng := rand.New(rand.NewSource(99))
	w, a := randomSlot(rng)
	want := ideal.Dot(w, a)[0]
	var sum float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		sum += p.Dot(w, a)[0]
	}
	mean := sum / trials
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("noisy mean %.4f should match ideal %.4f", mean, want)
	}
}
