package core

import (
	"testing"

	"albireo/internal/obs"
	"albireo/internal/tensor"
)

func instrumentedChip(t *testing.T) (*Chip, *obs.Registry, *obs.Trace) {
	t.Helper()
	chip := NewChip(DefaultConfig())
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	chip.Instrument(reg, tr)
	return chip, reg, tr
}

// TestConvVsConcurrentTelemetryIdentical is the determinism invariant
// from the observability contract: the sequential and concurrent
// convolution paths must produce bit-identical registry snapshots and
// identical per-kind trace event counts on the same inputs.
func TestConvVsConcurrentTelemetryIdentical(t *testing.T) {
	t.Parallel()
	a := tensor.RandomVolume(7, 12, 12, 3)
	w := tensor.RandomKernels(11, 7, 3, 3, 4)
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}

	seq, seqReg, seqTr := instrumentedChip(t)
	outSeq := seq.Conv(a, w, cc, true)

	con, conReg, conTr := instrumentedChip(t)
	outCon := con.ConvConcurrent(a, w, cc, true)

	for i := range outSeq.Data {
		if outSeq.Data[i] != outCon.Data[i] {
			t.Fatalf("outputs diverge at %d: %g vs %g", i, outSeq.Data[i], outCon.Data[i])
		}
	}
	if !seqReg.Snapshot().Equal(conReg.Snapshot()) {
		t.Fatalf("registry snapshots differ:\nseq: %+v\ncon: %+v",
			seqReg.Snapshot().Counters, conReg.Snapshot().Counters)
	}
	seqKinds, conKinds := seqTr.CountByKind(), conTr.CountByKind()
	if len(seqKinds) != len(conKinds) {
		t.Fatalf("trace kinds differ: %v vs %v", seqKinds, conKinds)
	}
	for k, n := range seqKinds {
		if conKinds[k] != n {
			t.Fatalf("trace kind %q: seq %d vs concurrent %d", k, n, conKinds[k])
		}
	}
	if seqTr.Len() != conTr.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", seqTr.Len(), conTr.Len())
	}
}

// TestInstrumentationDoesNotPerturbOutputs proves attaching a registry
// and trace never changes numerics: the instrumented chip's Conv must
// be bit-identical to a bare chip's.
func TestInstrumentationDoesNotPerturbOutputs(t *testing.T) {
	t.Parallel()
	a := tensor.RandomVolume(5, 10, 10, 9)
	w := tensor.RandomKernels(6, 5, 3, 3, 10)
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}

	bare := NewChip(DefaultConfig())
	outBare := bare.Conv(a, w, cc, false)

	ins, _, _ := instrumentedChip(t)
	outIns := ins.Conv(a, w, cc, false)

	for i := range outBare.Data {
		if outBare.Data[i] != outIns.Data[i] {
			t.Fatalf("instrumentation perturbed output at %d: %g vs %g",
				i, outBare.Data[i], outIns.Data[i])
		}
	}
}

// TestObservedConvActivityMatchesClosedForm checks the recorded
// counters against the analytic Activity expectation for shapes that
// exercise uneven tiling in every loop dimension.
func TestObservedConvActivityMatchesClosedForm(t *testing.T) {
	t.Parallel()
	cases := []struct {
		z, ay, ax, m, ky, kx, stride, pad int
	}{
		{3, 8, 8, 4, 3, 3, 1, 1},
		{7, 12, 11, 11, 3, 3, 1, 1}, // z not divisible by Nu, bx not by Nd
		{4, 16, 16, 2, 5, 5, 2, 2},  // taps > Nm: multiple chunks
		{1, 6, 6, 1, 1, 1, 1, 0},    // degenerate 1x1
	}
	for _, tc := range cases {
		chip, reg, _ := instrumentedChip(t)
		a := tensor.RandomVolume(tc.z, tc.ay, tc.ax, 1)
		w := tensor.RandomKernels(tc.m, tc.z, tc.ky, tc.kx, 2)
		chip.Conv(a, w, tensor.ConvConfig{Stride: tc.stride, Pad: tc.pad}, true)

		want := chip.Config().ExpectedConvActivity(tc.z, tc.ay, tc.ax, tc.m, tc.ky, tc.kx, tc.stride, tc.pad)
		got := ObservedActivity(reg.Snapshot())
		if got != want {
			t.Errorf("case %+v: observed %+v, want %+v", tc, got, want)
		}
	}
}

// TestPointwiseFCDepthwiseCounters checks the non-dense layer kinds
// record plausible nonzero activity and the right op-kind counters.
func TestPointwiseFCDepthwiseCounters(t *testing.T) {
	t.Parallel()
	chip, reg, tr := instrumentedChip(t)

	a := tensor.RandomVolume(8, 6, 6, 5)
	pw := tensor.RandomKernels(4, 8, 1, 1, 6)
	chip.Pointwise(a, pw, true)

	dw := tensor.RandomKernels(8, 1, 3, 3, 7)
	chip.Conv(a, dw, tensor.ConvConfig{Stride: 1, Pad: 1, Depthwise: true}, true)

	fc := tensor.RandomKernels(3, 8, 6, 6, 8)
	chip.FullyConnected(a, fc, false)

	s := reg.Snapshot()
	for _, kind := range []string{"pointwise", "depthwise", "fc"} {
		id := MetricLayerOps + `{kind="` + kind + `"}`
		if s.Counters[id] != 1 {
			t.Errorf("layer op counter %s = %d, want 1", id, s.Counters[id])
		}
	}
	act := ObservedActivity(s)
	if act.Steps == 0 || act.MZMPrograms == 0 || act.MRRSwitches == 0 ||
		act.PDReads == 0 || act.ADCConversions == 0 {
		t.Fatalf("expected nonzero activity in every device class: %+v", act)
	}
	// Device-count ratios are structural: MRR switches are exactly Nd
	// per MZM program, and ADC conversions exactly Nd per step.
	nd := int64(chip.Config().Nd)
	if act.MRRSwitches != act.MZMPrograms*nd {
		t.Errorf("MRR/MZM ratio broken: %d vs %d*%d", act.MRRSwitches, act.MZMPrograms, nd)
	}
	if act.ADCConversions != act.Steps*nd {
		t.Errorf("ADC/steps ratio broken: %d vs %d*%d", act.ADCConversions, act.Steps, nd)
	}
	// One span per layer op, one tile event per scheduled kernel.
	kinds := tr.CountByKind()
	if kinds["span-start"] != 3 || kinds["span-start"] != kinds["span-end"] {
		t.Errorf("span accounting wrong: %v", kinds)
	}
	wantTiles := int64(pw.M + dw.M + fc.M)
	if kinds["tile-scheduled"] != wantTiles {
		t.Errorf("tile events = %d, want %d", kinds["tile-scheduled"], wantTiles)
	}
}

// TestInstrumentDetach verifies Instrument(nil, nil) restores the bare
// chip and that a trace-only attachment records events without a
// registry.
func TestInstrumentDetach(t *testing.T) {
	t.Parallel()
	chip := NewChip(DefaultConfig())
	tr := obs.NewTrace()
	chip.Instrument(nil, tr)

	a := tensor.RandomVolume(3, 6, 6, 11)
	w := tensor.RandomKernels(2, 3, 3, 3, 12)
	chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
	if tr.Len() == 0 {
		t.Fatal("trace-only attachment recorded nothing")
	}

	chip.Instrument(nil, nil)
	before := tr.Len()
	chip.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
	if tr.Len() != before {
		t.Fatal("detached chip still recorded trace events")
	}
}

// BenchmarkConvInstrumentationOverhead measures Chip.Conv bare (no
// registry or trace ever attached - the default, whose only cost is
// one nil check per PLCG step; the acceptance bar for this PR is <5%
// vs the pre-instrumentation baseline) against the fully attached
// configuration. CI archives the bench output so the gap is tracked
// over time.
func BenchmarkConvInstrumentationOverhead(b *testing.B) {
	a := tensor.RandomVolume(6, 16, 16, 1)
	w := tensor.RandomKernels(4, 6, 3, 3, 2)
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}

	b.Run("bare", func(b *testing.B) {
		chip := NewChip(DefaultConfig())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = chip.Conv(a, w, cc, true)
		}
	})
	b.Run("attached", func(b *testing.B) {
		chip := NewChip(DefaultConfig())
		chip.Instrument(obs.NewRegistry(), obs.NewTrace())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = chip.Conv(a, w, cc, true)
		}
	})
}

// TestChipInjectFault covers the instrumented fault entry point.
func TestChipInjectFault(t *testing.T) {
	t.Parallel()
	chip, reg, tr := instrumentedChip(t)
	f := Fault{Kind: StuckMZM, Tap: 0, Column: 0, Value: 0.5}
	if err := chip.InjectFault(0, 1, f); err != nil {
		t.Fatal(err)
	}
	if err := chip.InjectFault(-1, 0, f); err == nil {
		t.Fatal("out-of-range group must error")
	}
	if err := chip.InjectFault(0, 99, f); err == nil {
		t.Fatal("out-of-range unit must error")
	}
	if got := reg.Snapshot().Counters[MetricFaultsInjected]; got != 1 {
		t.Fatalf("fault counter = %d, want 1", got)
	}
	if tr.CountByKind()["fault-injected"] != 1 {
		t.Fatalf("fault trace event missing: %v", tr.CountByKind())
	}
	// The fault must actually land on the PLCU.
	chipB := NewChip(DefaultConfig())
	if err := chipB.InjectFault(0, 1, f); err != nil {
		t.Fatal(err)
	}
	a := tensor.RandomVolume(3, 6, 6, 21)
	w := tensor.RandomKernels(1, 3, 3, 3, 22)
	clean := NewChip(DefaultConfig()).Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, false)
	faulty := chipB.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, false)
	same := true
	for i := range clean.Data {
		if clean.Data[i] != faulty.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("injected StuckMZM had no numeric effect")
	}
}
