package core

import (
	"math"
	"testing"

	"albireo/internal/tensor"
)

// rmsError returns the RMS difference between two volumes normalized
// by the RMS magnitude of want.
func rmsError(got, want *tensor.Volume) float64 {
	var num, den float64
	for i := range want.Data {
		d := got.Data[i] - want.Data[i]
		num += d * d
		den += want.Data[i] * want.Data[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func TestChipConvMatchesReferenceIdeal(t *testing.T) {
	t.Parallel()
	// With impairments disabled, the analog conv should track the
	// exact reference within quantization error.
	chip := NewChip(idealConfig())
	a := tensor.RandomVolume(6, 8, 8, 101)
	w := tensor.RandomKernels(4, 6, 3, 3, 102)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}
	got := chip.Conv(a, w, cfg, false)
	want := tensor.Conv(a, w, cfg)
	if got.Z != want.Z || got.Y != want.Y || got.X != want.X {
		t.Fatalf("shape mismatch: got %v, want %v", got, want)
	}
	if e := rmsError(got, want); e > 0.10 {
		t.Errorf("ideal conv relative RMS error %.4f, want < 0.10", e)
	}
}

func TestChipConvRealisticImpairments(t *testing.T) {
	t.Parallel()
	// With crosstalk and noise enabled, the computation is approximate
	// but still strongly correlated with the reference - the 7-bit
	// worst-case regime of Section II-C.
	chip := NewChip(DefaultConfig())
	a := tensor.RandomVolume(6, 8, 8, 103)
	w := tensor.RandomKernels(4, 6, 3, 3, 104)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1}
	got := chip.Conv(a, w, cfg, false)
	want := tensor.Conv(a, w, cfg)
	if e := rmsError(got, want); e > 0.15 {
		t.Errorf("realistic conv relative RMS error %.4f, want < 0.15", e)
	}
	// Impairments must actually cost accuracy versus ideal.
	ideal := NewChip(idealConfig()).Conv(a, w, cfg, false)
	if rmsError(got, want) < rmsError(ideal, want) {
		t.Log("note: realistic run happened to beat ideal (noise realization)")
	}
}

func TestChipConvStrideAndRelu(t *testing.T) {
	t.Parallel()
	chip := NewChip(idealConfig())
	a := tensor.RandomVolume(3, 9, 9, 105)
	w := tensor.RandomKernels(2, 3, 3, 3, 106)
	cfg := tensor.ConvConfig{Stride: 2, Pad: 1}
	got := chip.Conv(a, w, cfg, true)
	want := tensor.ReLU(tensor.Conv(a, w, cfg))
	if got.Y != 5 || got.X != 5 {
		t.Fatalf("strided shape %dx%d, want 5x5", got.Y, got.X)
	}
	for _, v := range got.Data {
		if v < 0 {
			t.Fatal("ReLU output must be non-negative")
		}
	}
	if e := rmsError(got, want); e > 0.08 {
		t.Errorf("strided+relu RMS error %.4f", e)
	}
}

func TestChipConvLargeKernelChunks(t *testing.T) {
	t.Parallel()
	// A 5x5 kernel does not fit the 9 MZMs and needs ceil(25/9) = 3
	// tap chunks (Section III-A).
	chip := NewChip(idealConfig())
	if n := len(chip.tapChunks(5, 5)); n != 3 {
		t.Fatalf("5x5 kernel should need 3 chunks, got %d", n)
	}
	if n := len(chip.tapChunks(3, 3)); n != 1 {
		t.Fatalf("3x3 kernel should need 1 chunk, got %d", n)
	}
	if n := len(chip.tapChunks(11, 11)); n != 14 {
		t.Fatalf("11x11 kernel should need 14 chunks, got %d", n)
	}
	a := tensor.RandomVolume(2, 9, 9, 107)
	w := tensor.RandomKernels(2, 2, 5, 5, 108)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 2}
	got := chip.Conv(a, w, cfg, false)
	want := tensor.Conv(a, w, cfg)
	if e := rmsError(got, want); e > 0.12 {
		t.Errorf("5x5 conv RMS error %.4f", e)
	}
}

func TestChipGroupedConv(t *testing.T) {
	t.Parallel()
	chip := NewChip(idealConfig())
	a := tensor.RandomVolume(4, 6, 6, 109)
	w := tensor.RandomKernels(4, 2, 3, 3, 110)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1, Groups: 2}
	got := chip.Conv(a, w, cfg, false)
	want := tensor.Conv(a, w, cfg)
	if e := rmsError(got, want); e > 0.08 {
		t.Errorf("grouped conv RMS error %.4f", e)
	}
}

func TestChipDepthwiseConv(t *testing.T) {
	t.Parallel()
	chip := NewChip(idealConfig())
	a := tensor.RandomVolume(4, 6, 6, 111)
	w := tensor.RandomKernels(4, 1, 3, 3, 112)
	cfg := tensor.ConvConfig{Stride: 1, Pad: 1, Depthwise: true}
	got := chip.Conv(a, w, cfg, false)
	want := tensor.Conv(a, w, cfg)
	if got.Z != 4 {
		t.Fatal("depthwise preserves channel count")
	}
	if e := rmsError(got, want); e > 0.08 {
		t.Errorf("depthwise RMS error %.4f", e)
	}
}

func TestChipPointwise(t *testing.T) {
	t.Parallel()
	chip := NewChip(idealConfig())
	a := tensor.RandomVolume(20, 4, 4, 113)
	w := tensor.RandomKernels(6, 20, 1, 1, 114)
	got := chip.Pointwise(a, w, false)
	want := tensor.Conv(a, w, tensor.ConvConfig{})
	if got.Z != 6 || got.Y != 4 || got.X != 4 {
		t.Fatal("pointwise output shape")
	}
	if e := rmsError(got, want); e > 0.12 {
		t.Errorf("pointwise RMS error %.4f", e)
	}
}

func TestChipFullyConnected(t *testing.T) {
	t.Parallel()
	chip := NewChip(idealConfig())
	a := tensor.RandomVolume(4, 3, 3, 115)
	w := tensor.RandomKernels(8, 4, 3, 3, 116)
	got := chip.FullyConnected(a, w, false)
	want := tensor.FullyConnected(a, w)
	if len(got) != 8 {
		t.Fatal("FC output length")
	}
	var num, den float64
	for i := range want {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if e := math.Sqrt(num / den); e > 0.08 {
		t.Errorf("FC RMS error %.4f", e)
	}
	// ReLU variant clamps.
	rl := chip.FullyConnected(a, w, true)
	for i, v := range rl {
		if v < 0 {
			t.Fatal("FC ReLU must clamp negatives")
		}
		if want[i] > 0.1 && math.Abs(v-got[i]) > 0.2 {
			t.Error("positive outputs should match between relu/no-relu runs up to noise")
		}
	}
}

func TestChipZeroInputs(t *testing.T) {
	t.Parallel()
	chip := NewChip(idealConfig())
	a := tensor.NewVolume(3, 5, 5)
	w := tensor.RandomKernels(2, 3, 3, 3, 117)
	out := chip.Conv(a, w, tensor.ConvConfig{Pad: 1}, false)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("all-zero input must give all-zero output")
		}
	}
	zeroW := tensor.NewKernels(2, 3, 3, 3)
	out2 := chip.Conv(tensor.RandomVolume(3, 5, 5, 118), zeroW, tensor.ConvConfig{Pad: 1}, false)
	for _, v := range out2.Data {
		if v != 0 {
			t.Fatal("all-zero kernels must give all-zero output")
		}
	}
}

func TestChipRejectsNegativeActivations(t *testing.T) {
	t.Parallel()
	chip := NewChip(idealConfig())
	a := tensor.NewVolume(1, 2, 2)
	a.Set(0, 0, 0, -1)
	w := tensor.RandomKernels(1, 1, 1, 1, 119)
	defer func() {
		if recover() == nil {
			t.Error("negative activations should panic (optical power encoding)")
		}
	}()
	chip.Conv(a, w, tensor.ConvConfig{}, false)
}

func TestChipAccessors(t *testing.T) {
	t.Parallel()
	chip := NewChip(idealConfig())
	if chip.Config().Ng != 9 || len(chip.Groups()) != 9 {
		t.Error("chip should expose its 9 PLCGs")
	}
	g := chip.Groups()[0]
	if len(g.Units()) != 3 {
		t.Error("each PLCG should hold 3 PLCUs")
	}
	if g.ValueLSB() <= 0 {
		t.Error("value LSB should be positive")
	}
}

func TestPLCGStepTailChannels(t *testing.T) {
	t.Parallel()
	// Tail channel groups may pass fewer than Nu slots.
	g := NewPLCG(idealConfig())
	w := make([]float64, 9)
	w[0] = 1
	av := make([][]float64, 9)
	for i := range av {
		av[i] = make([]float64, 5)
	}
	av[0][0] = 1
	out := g.Step([][]float64{w}, [][][]float64{av})
	if math.Abs(out[0]-1) > 0.15 {
		t.Errorf("single-slot step = %g, want ~1", out[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("too many slots should panic")
		}
	}()
	g.Step(make([][]float64, 4), make([][][]float64, 4))
}
