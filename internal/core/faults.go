package core

import "fmt"

// Fault models a hardware defect in a PLCU, for reliability studies of
// the analog fabric. Analog photonic accelerators cannot detect most
// of these faults architecturally - the computation silently degrades -
// so the functional simulator exposes them for failure-injection
// testing and for sizing redundancy. internal/health builds the other
// half of the story: a built-in self-test that localizes these defect
// classes from probe responses so the chip can quarantine around them.
type FaultKind int

const (
	// StuckMZM pins a weight modulator at a fixed transfer value
	// (e.g. a failed phase-shifter junction): every wavelength on that
	// tap is multiplied by Value instead of |w|.
	StuckMZM FaultKind = iota
	// DeadRing disables a switching MRR: the (Tap, Column) signal
	// never reaches its accumulation waveguide.
	DeadRing
	// DetunedRing leaves a switching MRR partially off-resonance
	// (e.g. a failed thermal tuner): only Value (0..1) of the signal
	// couples, and the ring's crosstalk behaviour is unchanged.
	DetunedRing
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case StuckMZM:
		return "stuck-mzm"
	case DeadRing:
		return "dead-ring"
	case DetunedRing:
		return "detuned-ring"
	default:
		return "unknown"
	}
}

// Fault is one injected defect.
type Fault struct {
	Kind FaultKind
	// Tap is the MZM / kernel position (0..Nm-1).
	Tap int
	// Column is the PD column for ring faults (ignored for StuckMZM).
	Column int
	// Value is the stuck transfer (StuckMZM) or residual coupling
	// (DetunedRing). Both are transmission fractions in [0, 1].
	Value float64
	// Drift, for DetunedRing only, models progressive thermal detuning:
	// the residual coupling decays by Drift per modulation cycle
	// (clamped at 0), so a ring that starts healthy worsens as the
	// chip runs - the soft failure a broken tuning-control loop causes.
	Drift float64
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	if f.Drift > 0 {
		return fmt.Sprintf("%s{tap=%d col=%d v=%.2f drift=%.2e/cyc}", f.Kind, f.Tap, f.Column, f.Value, f.Drift)
	}
	return fmt.Sprintf("%s{tap=%d col=%d v=%.2f}", f.Kind, f.Tap, f.Column, f.Value)
}

// InjectFault adds a defect to the PLCU. Faults apply to every
// subsequent Currents call until ClearFaults. The fault must be
// physically representable: taps and columns inside the device grid,
// transfer values inside [0, 1], and drift (DetunedRing only)
// non-negative.
func (p *PLCU) InjectFault(f Fault) {
	if f.Tap < 0 || f.Tap >= p.cfg.Nm {
		panic(fmt.Sprintf("core: fault tap %d out of range", f.Tap)) //lint:ignore exit-hygiene fault tap outside hardware range; caller bug
	}
	if f.Kind != StuckMZM && (f.Column < 0 || f.Column >= p.cfg.Nd) {
		panic(fmt.Sprintf("core: fault column %d out of range", f.Column)) //lint:ignore exit-hygiene fault column outside hardware range; caller bug
	}
	switch f.Kind {
	case StuckMZM:
		if f.Value < 0 || f.Value > 1 {
			panic(fmt.Sprintf("core: stuck transfer %g outside [0,1]; an MZM transmits a fraction of its input", f.Value)) //lint:ignore exit-hygiene unphysical fault parameter; caller bug
		}
	case DetunedRing:
		if f.Value < 0 || f.Value > 1 {
			panic(fmt.Sprintf("core: residual coupling %g outside [0,1]; a detuned ring couples a fraction of its input", f.Value)) //lint:ignore exit-hygiene unphysical fault parameter; caller bug
		}
	}
	if f.Drift < 0 {
		panic(fmt.Sprintf("core: drift %g must be non-negative; thermal detuning only loses coupling", f.Drift)) //lint:ignore exit-hygiene unphysical fault parameter; caller bug
	}
	if f.Drift > 0 && f.Kind != DetunedRing {
		panic("core: drift models progressive detuning; only DetunedRing faults drift") //lint:ignore exit-hygiene unphysical fault parameter; caller bug
	}
	p.faults = append(p.faults, f)
	p.faultEpoch++
}

// ClearFaults removes all injected defects.
func (p *PLCU) ClearFaults() {
	p.faults = nil
	p.faultEpoch++
}

// Faults returns the injected defects.
func (p *PLCU) Faults() []Fault { return p.faults }

// effectiveWeight applies StuckMZM faults to the quantized weight of a
// tap: the sign routing is set by the programmed weight (the rings are
// still switched by the controller), but the magnitude is pinned.
func (p *PLCU) effectiveWeight(tap int, w float64) float64 {
	for _, f := range p.faults {
		if f.Kind == StuckMZM && f.Tap == tap {
			if w < 0 {
				return -f.Value
			}
			return f.Value
		}
	}
	return w
}

// ringGain returns the drop efficiency multiplier for the switching
// ring at (tap, column): 1 when healthy, 0 for DeadRing, the residual
// coupling for DetunedRing. A drifting detuned ring loses Drift of
// residual coupling per elapsed modulation cycle, so the same fault
// reads progressively worse as the chip runs.
func (p *PLCU) ringGain(tap, column int) float64 {
	g := 1.0
	for _, f := range p.faults {
		if f.Tap != tap || f.Column != column {
			continue
		}
		switch f.Kind {
		case DeadRing:
			g = 0
		case DetunedRing:
			residual := f.Value
			if f.Drift > 0 {
				residual -= f.Drift * float64(p.cycles)
			}
			g *= clampUnit(residual)
		}
	}
	return g
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
