package core

import "fmt"

// Fault models a hardware defect in a PLCU, for reliability studies of
// the analog fabric. Analog photonic accelerators cannot detect most
// of these faults architecturally - the computation silently degrades -
// so the functional simulator exposes them for failure-injection
// testing and for sizing redundancy.
type FaultKind int

const (
	// StuckMZM pins a weight modulator at a fixed transfer value
	// (e.g. a failed phase-shifter junction): every wavelength on that
	// tap is multiplied by Value instead of |w|.
	StuckMZM FaultKind = iota
	// DeadRing disables a switching MRR: the (Tap, Column) signal
	// never reaches its accumulation waveguide.
	DeadRing
	// DetunedRing leaves a switching MRR partially off-resonance
	// (e.g. a failed thermal tuner): only Value (0..1) of the signal
	// couples, and the ring's crosstalk behaviour is unchanged.
	DetunedRing
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case StuckMZM:
		return "stuck-mzm"
	case DeadRing:
		return "dead-ring"
	case DetunedRing:
		return "detuned-ring"
	default:
		return "unknown"
	}
}

// Fault is one injected defect.
type Fault struct {
	Kind FaultKind
	// Tap is the MZM / kernel position (0..Nm-1).
	Tap int
	// Column is the PD column for ring faults (ignored for StuckMZM).
	Column int
	// Value is the stuck transfer (StuckMZM) or residual coupling
	// (DetunedRing).
	Value float64
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	return fmt.Sprintf("%s{tap=%d col=%d v=%.2f}", f.Kind, f.Tap, f.Column, f.Value)
}

// InjectFault adds a defect to the PLCU. Faults apply to every
// subsequent Currents call until ClearFaults.
func (p *PLCU) InjectFault(f Fault) {
	if f.Tap < 0 || f.Tap >= p.cfg.Nm {
		panic(fmt.Sprintf("core: fault tap %d out of range", f.Tap)) //lint:ignore exit-hygiene fault tap outside hardware range; caller bug
	}
	if f.Kind != StuckMZM && (f.Column < 0 || f.Column >= p.cfg.Nd) {
		panic(fmt.Sprintf("core: fault column %d out of range", f.Column)) //lint:ignore exit-hygiene fault column outside hardware range; caller bug
	}
	p.faults = append(p.faults, f)
}

// ClearFaults removes all injected defects.
func (p *PLCU) ClearFaults() { p.faults = nil }

// Faults returns the injected defects.
func (p *PLCU) Faults() []Fault { return p.faults }

// effectiveWeight applies StuckMZM faults to the quantized weight of a
// tap: the sign routing is set by the programmed weight (the rings are
// still switched by the controller), but the magnitude is pinned.
func (p *PLCU) effectiveWeight(tap int, w float64) float64 {
	for _, f := range p.faults {
		if f.Kind == StuckMZM && f.Tap == tap {
			if w < 0 {
				return -f.Value
			}
			return f.Value
		}
	}
	return w
}

// ringGain returns the drop efficiency multiplier for the switching
// ring at (tap, column): 1 when healthy, 0 for DeadRing, the residual
// coupling for DetunedRing.
func (p *PLCU) ringGain(tap, column int) float64 {
	g := 1.0
	for _, f := range p.faults {
		if f.Tap != tap || f.Column != column {
			continue
		}
		switch f.Kind {
		case DeadRing:
			g = 0
		case DetunedRing:
			g *= clampUnit(f.Value)
		}
	}
	return g
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
