package core

import (
	"fmt"
	"sync"

	"albireo/internal/tensor"
)

// Chip is the functional model of the full Albireo accelerator
// (Figure 6a): Ng PLCGs fed by a broadcast of the same input signals,
// each applying a different kernel. Conv, Depthwise, Pointwise, and
// FullyConnected execute real layers through the analog pipeline,
// following the partitioning of Algorithm 2.
type Chip struct {
	cfg    Config
	groups []*PLCG
	ins    *chipObs
	// active lists the PLCG indices with healthy capacity, ascending:
	// the kernel round-robin targets. All groups until quarantined.
	active []int
}

// NewChip builds a functional chip.
func NewChip(cfg Config) *Chip {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid config: %v", err)) //lint:ignore exit-hygiene constructor refuses a config Validate already rejected; caller bug
	}
	groups := make([]*PLCG, cfg.Ng)
	active := make([]int, cfg.Ng)
	for gi := range groups {
		gcfg := cfg
		gcfg.Seed = cfg.Seed*7919 + int64(gi)
		groups[gi] = NewPLCG(gcfg)
		active[gi] = gi
	}
	return &Chip{cfg: cfg, groups: groups, active: active}
}

// Config returns the chip configuration.
func (c *Chip) Config() Config { return c.cfg }

// Groups exposes the PLCGs (read-only use).
func (c *Chip) Groups() []*PLCG { return c.groups }

// tapChunk is one pass worth of kernel taps: at most Nm positions.
type tapChunk struct {
	ky, kx []int
}

// tapChunks splits a KY x KX kernel footprint into row-major chunks of
// at most Nm taps, the "additional cycles" a kernel larger than the
// PLCU requires (Section III-A).
func (c *Chip) tapChunks(ky, kx int) []tapChunk {
	var chunks []tapChunk
	cur := tapChunk{}
	for y := 0; y < ky; y++ {
		for x := 0; x < kx; x++ {
			cur.ky = append(cur.ky, y)
			cur.kx = append(cur.kx, x)
			if len(cur.ky) == c.cfg.Nm {
				chunks = append(chunks, cur)
				cur = tapChunk{}
			}
		}
	}
	if len(cur.ky) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// normalizeInput returns the activation volume scaled into [0, 1] and
// the scale. Negative activations are invalid: Albireo encodes
// activations as optical power (Section II-B), so inputs must be
// non-negative (post-ReLU, or pre-shifted images).
func normalizeInput(a *tensor.Volume) (*tensor.Volume, float64) {
	for _, v := range a.Data {
		if v < 0 {
			panic("core: activations must be non-negative (optical power encoding)") //lint:ignore exit-hygiene non-negative activations are the optical power encoding invariant
		}
	}
	scale := a.MaxAbs()
	if scale == 0 {
		return a.Clone(), 0
	}
	n := a.Clone()
	for i := range n.Data {
		n.Data[i] /= scale
	}
	return n, scale
}

// normalizeKernels returns kernels scaled into [-1, 1] and the scale.
func normalizeKernels(w *tensor.Kernels) (*tensor.Kernels, float64) {
	scale := w.MaxAbs()
	if scale == 0 {
		return w, 0
	}
	n := tensor.NewKernels(w.M, w.Z, w.Y, w.X)
	for i := range w.Data {
		n.Data[i] = w.Data[i] / scale
	}
	return n, scale
}

// Conv executes a convolution layer through the analog pipeline
// (Algorithm 2) and returns the output volume in the caller's value
// domain. Kernels are distributed round-robin over the PLCGs; output
// columns are produced Nd at a time; channels are aggregated Nu at a
// time; kernels larger than Nm take multiple tap chunks per channel
// group. If relu is true the activation is applied during aggregation
// write-back, as the hardware does.
func (c *Chip) Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	if cfg.Depthwise {
		return c.depthwiseConv(a, w, cfg, relu)
	}
	if cfg.Groups != 0 && cfg.Groups != 1 {
		return c.groupedConv(a, w, cfg, relu)
	}
	if w.Z != a.Z {
		panic(fmt.Sprintf("core: kernel depth %d != input channels %d", w.Z, a.Z)) //lint:ignore exit-hygiene kernel/input shape invariant; caller bug
	}
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	na, aScale := normalizeInput(a)
	nw, wScale := normalizeKernels(w)
	outScale := aScale * wScale

	by := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	bx := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	out := tensor.NewVolume(w.M, by, bx)
	sp := c.ins.beginLayer("conv", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}
	chunks := c.tapChunks(w.Y, w.X)

	for m := 0; m < w.M; m++ {
		gi := c.assignGroup(m)
		g := c.groups[gi]
		nug := g.Capacity()
		c.ins.tile(sp, m, gi)
		for oy := 0; oy < by; oy++ {
			for ox0 := 0; ox0 < bx; ox0 += c.cfg.Nd {
				acc := make([]float64, c.cfg.Nd)
				for z0 := 0; z0 < w.Z; z0 += nug {
					for _, ch := range chunks {
						nu := min(nug, w.Z-z0)
						weights := make([][]float64, nu)
						avals := make([][][]float64, nu)
						for u := 0; u < nu; u++ {
							weights[u], avals[u] = c.buildSlot(na, nw, m, z0+u, z0+u, oy, ox0, stride, cfg.Pad, ch)
						}
						part := g.Step(weights, avals)
						if c.ins != nil {
							c.ins.step(gi, nu)
						}
						for d := range acc {
							acc[d] += part[d]
						}
					}
				}
				for d := 0; d < c.cfg.Nd && ox0+d < bx; d++ {
					v := acc[d] * outScale
					if relu && v < 0 {
						v = 0
					}
					out.Set(m, oy, ox0+d, v)
				}
			}
		}
	}
	return out
}

// buildSlot assembles the weight vector and activation matrix for one
// PLCU slot: kernel m at kernel depth wz, reading activation channel
// az, output row oy, output column base ox0, for the taps of chunk ch.
// Dense convolutions use wz == az; depthwise uses wz = 0 with az the
// filtered channel. Unused taps (chunk shorter than Nm) carry zero
// weight; out-of-range output columns carry zero activations.
func (c *Chip) buildSlot(a *tensor.Volume, w *tensor.Kernels, m, wz, az, oy, ox0, stride, pad int, ch tapChunk) ([]float64, [][]float64) {
	weights := make([]float64, c.cfg.Nm)
	avals := make([][]float64, c.cfg.Nm)
	ay0 := oy*stride - pad
	for t := 0; t < c.cfg.Nm; t++ {
		row := make([]float64, c.cfg.Nd)
		if t < len(ch.ky) {
			ky, kx := ch.ky[t], ch.kx[t]
			weights[t] = w.At(m, wz, ky, kx)
			for d := 0; d < c.cfg.Nd; d++ {
				ax := (ox0+d)*stride - pad + kx
				row[d] = a.AtPadded(az, ay0+ky, ax)
			}
		}
		avals[t] = row
	}
	return weights, avals
}

// groupedConv runs a grouped convolution as independent dense
// convolutions over channel slices.
func (c *Chip) groupedConv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	groups := cfg.Groups
	if a.Z%groups != 0 || w.M%groups != 0 {
		panic(fmt.Sprintf("core: groups %d do not divide channels %d/%d", groups, a.Z, w.M)) //lint:ignore exit-hygiene group divisibility invariant; caller bug
	}
	zPer, mPer := a.Z/groups, w.M/groups
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	by := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	bx := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	out := tensor.NewVolume(w.M, by, bx)
	for gi := 0; gi < groups; gi++ {
		sub := tensor.NewVolume(zPer, a.Y, a.X)
		for z := 0; z < zPer; z++ {
			for y := 0; y < a.Y; y++ {
				for x := 0; x < a.X; x++ {
					sub.Set(z, y, x, a.At(gi*zPer+z, y, x))
				}
			}
		}
		subW := tensor.NewKernels(mPer, w.Z, w.Y, w.X)
		copy(subW.Data, w.Data[gi*mPer*w.Z*w.Y*w.X:(gi+1)*mPer*w.Z*w.Y*w.X])
		subOut := c.Conv(sub, subW, tensor.ConvConfig{Stride: stride, Pad: cfg.Pad}, relu)
		for m := 0; m < mPer; m++ {
			for y := 0; y < by; y++ {
				for x := 0; x < bx; x++ {
					out.Set(gi*mPer+m, y, x, subOut.At(m, y, x))
				}
			}
		}
	}
	return out
}

// depthwiseConv applies one single-channel kernel per input channel
// without cross-channel aggregation (Section III-C: "aggregation is
// not performed across channels for depthwise kernels").
func (c *Chip) depthwiseConv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	if w.M != a.Z || w.Z != 1 {
		panic("core: depthwise wants one depth-1 kernel per input channel") //lint:ignore exit-hygiene depthwise kernel shape invariant; caller bug
	}
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	na, aScale := normalizeInput(a)
	nw, wScale := normalizeKernels(w)
	outScale := aScale * wScale
	by := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	bx := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	out := tensor.NewVolume(a.Z, by, bx)
	sp := c.ins.beginLayer("depthwise", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}
	chunks := c.tapChunks(w.Y, w.X)
	for z := 0; z < a.Z; z++ {
		gi := c.assignGroup(z)
		g := c.groups[gi]
		c.ins.tile(sp, z, gi)
		for oy := 0; oy < by; oy++ {
			for ox0 := 0; ox0 < bx; ox0 += c.cfg.Nd {
				acc := make([]float64, c.cfg.Nd)
				for _, ch := range chunks {
					weights, avals := c.buildSlot(na, nw, z, 0, z, oy, ox0, stride, cfg.Pad, ch)
					part := g.Step([][]float64{weights}, [][][]float64{avals})
					if c.ins != nil {
						c.ins.step(gi, 1)
					}
					for d := range acc {
						acc[d] += part[d]
					}
				}
				for d := 0; d < c.cfg.Nd && ox0+d < bx; d++ {
					v := acc[d] * outScale
					if relu && v < 0 {
						v = 0
					}
					out.Set(z, oy, ox0+d, v)
				}
			}
		}
	}
	return out
}

// Pointwise executes a 1x1 convolution with the Section III-C
// pointwise mapping: each PLCU tap carries one input channel, each PD
// column one output pixel, and channel aggregation happens across taps
// and PLCUs.
func (c *Chip) Pointwise(a *tensor.Volume, w *tensor.Kernels, relu bool) *tensor.Volume {
	if w.Y != 1 || w.X != 1 || w.Z != a.Z {
		panic("core: pointwise wants 1x1 kernels of full depth") //lint:ignore exit-hygiene pointwise kernel shape invariant; caller bug
	}
	na, aScale := normalizeInput(a)
	nw, wScale := normalizeKernels(w)
	outScale := aScale * wScale
	out := tensor.NewVolume(w.M, a.Y, a.X)
	sp := c.ins.beginLayer("pointwise", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}
	npix := a.Y * a.X
	for m := 0; m < w.M; m++ {
		gi := c.assignGroup(m)
		g := c.groups[gi]
		chPerCycle := g.Capacity() * c.cfg.Nm
		c.ins.tile(sp, m, gi)
		for p0 := 0; p0 < npix; p0 += c.cfg.Nd {
			acc := make([]float64, c.cfg.Nd)
			for z0 := 0; z0 < a.Z; z0 += chPerCycle {
				nu := (min(chPerCycle, a.Z-z0) + c.cfg.Nm - 1) / c.cfg.Nm
				weights := make([][]float64, nu)
				avals := make([][][]float64, nu)
				for u := 0; u < nu; u++ {
					wv := make([]float64, c.cfg.Nm)
					av := make([][]float64, c.cfg.Nm)
					for t := 0; t < c.cfg.Nm; t++ {
						row := make([]float64, c.cfg.Nd)
						z := z0 + u*c.cfg.Nm + t
						if z < a.Z {
							wv[t] = nw.At(m, z, 0, 0)
							for d := 0; d < c.cfg.Nd; d++ {
								if p := p0 + d; p < npix {
									row[d] = na.Data[z*npix+p]
								}
							}
						}
						av[t] = row
					}
					weights[u], avals[u] = wv, av
				}
				part := g.Step(weights, avals)
				if c.ins != nil {
					c.ins.step(gi, nu)
				}
				for d := range acc {
					acc[d] += part[d]
				}
			}
			for d := 0; d < c.cfg.Nd && p0+d < npix; d++ {
				v := acc[d] * outScale
				if relu && v < 0 {
					v = 0
				}
				out.Data[m*npix+p0+d] = v
			}
		}
	}
	return out
}

// FullyConnected executes an FC layer: each output neuron's kernel
// covers the whole input volume (Section III-C). Only one PD column
// does useful work per PLCU (no parameter sharing); the others carry
// zero activations.
func (c *Chip) FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64 {
	if w.Z != a.Z || w.Y != a.Y || w.X != a.X {
		panic("core: FC kernel shape must match the input volume") //lint:ignore exit-hygiene FC kernel shape invariant; caller bug
	}
	na, aScale := normalizeInput(a)
	nw, wScale := normalizeKernels(w)
	outScale := aScale * wScale
	out := make([]float64, w.M)
	sp := c.ins.beginLayer("fc", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}
	n := a.Z * a.Y * a.X
	for m := 0; m < w.M; m++ {
		gi := c.assignGroup(m)
		g := c.groups[gi]
		elemsPerCycle := g.Capacity() * c.cfg.Nm
		c.ins.tile(sp, m, gi)
		var acc float64
		for e0 := 0; e0 < n; e0 += elemsPerCycle {
			nu := (min(elemsPerCycle, n-e0) + c.cfg.Nm - 1) / c.cfg.Nm
			weights := make([][]float64, nu)
			avals := make([][][]float64, nu)
			for u := 0; u < nu; u++ {
				wv := make([]float64, c.cfg.Nm)
				av := make([][]float64, c.cfg.Nm)
				for t := 0; t < c.cfg.Nm; t++ {
					row := make([]float64, c.cfg.Nd)
					e := e0 + u*c.cfg.Nm + t
					if e < n {
						wv[t] = nw.Data[m*n+e]
						row[0] = na.Data[e]
					}
					av[t] = row
				}
				weights[u], avals[u] = wv, av
			}
			part := g.Step(weights, avals)
			if c.ins != nil {
				c.ins.step(gi, nu)
			}
			acc += part[0]
		}
		v := acc * outScale
		if relu && v < 0 {
			v = 0
		}
		out[m] = v
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ConvConcurrent is Conv with the PLCGs driven by parallel goroutines.
// PLCGs are independent hardware blocks with private noise streams, so
// partitioning kernels by their owning group preserves every group's
// sequential draw order: the result is bit-identical to Conv for the
// dense stride/pad path. Grouped and depthwise layers fall back to the
// sequential implementation.
func (c *Chip) ConvConcurrent(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	if cfg.Depthwise || (cfg.Groups != 0 && cfg.Groups != 1) {
		return c.Conv(a, w, cfg, relu)
	}
	if w.Z != a.Z {
		panic(fmt.Sprintf("core: kernel depth %d != input channels %d", w.Z, a.Z)) //lint:ignore exit-hygiene kernel/input shape invariant; caller bug
	}
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	na, aScale := normalizeInput(a)
	nw, wScale := normalizeKernels(w)
	outScale := aScale * wScale
	by := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	bx := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	out := tensor.NewVolume(w.M, by, bx)
	sp := c.ins.beginLayer("conv", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}
	chunks := c.tapChunks(w.Y, w.X)

	var wg sync.WaitGroup
	for pos := range c.active {
		pos := pos
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Kernel ownership is by active-group position, the same
			// assignment Conv's sequential assignGroup walk produces,
			// so each PLCU sees its kernels in the same order and the
			// noise draws stay bit-identical.
			for m := pos; m < w.M; m += len(c.active) {
				gi := c.assignGroup(m)
				g := c.groups[gi]
				nug := g.Capacity()
				c.ins.tile(sp, m, gi)
				for oy := 0; oy < by; oy++ {
					for ox0 := 0; ox0 < bx; ox0 += c.cfg.Nd {
						acc := make([]float64, c.cfg.Nd)
						for z0 := 0; z0 < w.Z; z0 += nug {
							for _, ch := range chunks {
								nu := min(nug, w.Z-z0)
								weights := make([][]float64, nu)
								avals := make([][][]float64, nu)
								for u := 0; u < nu; u++ {
									weights[u], avals[u] = c.buildSlot(na, nw, m, z0+u, z0+u, oy, ox0, stride, cfg.Pad, ch)
								}
								part := g.Step(weights, avals)
								if c.ins != nil {
									c.ins.step(gi, nu)
								}
								for d := range acc {
									acc[d] += part[d]
								}
							}
						}
						for d := 0; d < c.cfg.Nd && ox0+d < bx; d++ {
							v := acc[d] * outScale
							if relu && v < 0 {
								v = 0
							}
							out.Set(m, oy, ox0+d, v)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	return out
}
