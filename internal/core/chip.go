package core

import (
	"fmt"
	"sync"

	"albireo/internal/obs"
	"albireo/internal/quant"
	"albireo/internal/tensor"
)

// Chip is the functional model of the full Albireo accelerator
// (Figure 6a): Ng PLCGs fed by a broadcast of the same input signals,
// each applying a different kernel. Conv, Depthwise, Pointwise, and
// FullyConnected execute real layers through the analog pipeline,
// following the partitioning of Algorithm 2.
//
// The steady-state layer loops are weight-stationary and
// allocation-free: weight programs are compiled once per kernel
// tensor (see program.go), activations are normalized and
// DAC-quantized once per layer into a chip-owned scratch volume, and
// every per-tile buffer comes from the per-PLCG scratch arenas.
type Chip struct {
	cfg    Config
	groups []*PLCG
	ins    *chipObs
	// active lists the PLCG indices with healthy capacity, ascending:
	// the kernel round-robin targets. All groups until quarantined.
	active []int
	// aq mirrors the PLCUs' activation DAC so whole input volumes can
	// be pre-quantized once per layer instead of once per cycle.
	aq quant.Quantizer
	// qaVol is the chip-owned pre-quantized activation scratch; its
	// backing array grows to the largest layer seen and is then
	// reused.
	qaVol tensor.Volume
	// progs caches compiled weight programs keyed by kernel-tensor
	// identity and mapping kind.
	progs map[progKey]*weightProgram
	// schedEpoch advances on every quarantine transition, invalidating
	// compiled programs whose slot-to-unit assignment it changes.
	schedEpoch int64
	// posVol/negVol stage a GEMM activation matrix's positive and
	// negative parts (transposed into volume layout) for the signed
	// two-pass decomposition; gemmAcc is the pre-transpose output
	// scratch and bviews caches kernel-bank views of GEMM weight
	// matrices (see gemm.go). All grow once and are reused.
	posVol, negVol tensor.Volume
	gemmAcc        []float64
	bviews         map[*tensor.Matrix]*gemmView
}

// NewChip builds a functional chip.
func NewChip(cfg Config) *Chip {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid config: %v", err)) //lint:ignore exit-hygiene constructor refuses a config Validate already rejected; caller bug
	}
	groups := make([]*PLCG, cfg.Ng)
	active := make([]int, cfg.Ng)
	for gi := range groups {
		gcfg := cfg
		gcfg.Seed = cfg.Seed*7919 + int64(gi)
		groups[gi] = NewPLCG(gcfg)
		active[gi] = gi
	}
	return &Chip{
		cfg:    cfg,
		groups: groups,
		active: active,
		aq:     quant.NewActivation(cfg.DACBits, 1),
	}
}

// Config returns the chip configuration.
func (c *Chip) Config() Config { return c.cfg }

// Groups exposes the PLCGs (read-only use).
func (c *Chip) Groups() []*PLCG { return c.groups }

// tapChunk is one pass worth of kernel taps: at most Nm positions.
type tapChunk struct {
	ky, kx []int
}

// tapChunks splits a KY x KX kernel footprint into row-major chunks of
// at most Nm taps, the "additional cycles" a kernel larger than the
// PLCU requires (Section III-A).
func (c *Chip) tapChunks(ky, kx int) []tapChunk {
	var chunks []tapChunk
	cur := tapChunk{}
	for y := 0; y < ky; y++ {
		for x := 0; x < kx; x++ {
			cur.ky = append(cur.ky, y)
			cur.kx = append(cur.kx, x)
			if len(cur.ky) == c.cfg.Nm {
				chunks = append(chunks, cur)
				cur = tapChunk{}
			}
		}
	}
	if len(cur.ky) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// prequantizeInput validates, normalizes, and DAC-quantizes the whole
// activation volume into the chip's scratch volume, returning it and
// the normalization scale. Negative activations are invalid: Albireo
// encodes activations as optical power (Section II-B), so inputs must
// be non-negative (post-ReLU, or pre-shifted images). Doing the
// quantization once per layer instead of once per cycle is
// bit-identical - quantization is a pure pointwise function - and
// removes it from the hot path entirely. A zero scale means an
// all-zero input; the scratch contents are unused in that case
// because callers early-return on a zero output scale.
func (c *Chip) prequantizeInput(a *tensor.Volume) (*tensor.Volume, float64) {
	for _, v := range a.Data {
		if v < 0 {
			panic("core: activations must be non-negative (optical power encoding)") //lint:ignore exit-hygiene non-negative activations are the optical power encoding invariant
		}
	}
	scale := a.MaxAbs()
	n := len(a.Data)
	if cap(c.qaVol.Data) < n {
		c.qaVol.Data = make([]float64, n)
	}
	c.qaVol.Data = c.qaVol.Data[:n]
	c.qaVol.Z, c.qaVol.Y, c.qaVol.X = a.Z, a.Y, a.X
	if scale == 0 {
		return &c.qaVol, 0
	}
	for i, v := range a.Data {
		c.qaVol.Data[i] = c.aq.Quantize(v / scale)
	}
	return &c.qaVol, scale
}

// Conv executes a convolution layer through the analog pipeline
// (Algorithm 2) and returns the output volume in the caller's value
// domain. Kernels are distributed round-robin over the PLCGs; output
// columns are produced Nd at a time; channels are aggregated Nu at a
// time; kernels larger than Nm take multiple tap chunks per channel
// group. If relu is true the activation is applied during aggregation
// write-back, as the hardware does.
func (c *Chip) Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	if cfg.Depthwise {
		return c.depthwiseConv(a, w, cfg, relu)
	}
	if cfg.Groups != 0 && cfg.Groups != 1 {
		return c.groupedConv(a, w, cfg, relu)
	}
	if w.Z != a.Z {
		panic(fmt.Sprintf("core: kernel depth %d != input channels %d", w.Z, a.Z)) //lint:ignore exit-hygiene kernel/input shape invariant; caller bug
	}
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	qa, aScale := c.prequantizeInput(a)
	pr := c.programFor(progConv, w)
	outScale := aScale * pr.wScale

	by := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	bx := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	out := tensor.NewVolume(w.M, by, bx)
	sp := c.ins.beginLayer("conv", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}
	for m := 0; m < w.M; m++ {
		c.convKernel(qa, pr, sp, out, m, by, bx, stride, cfg.Pad, relu, outScale)
	}
	return out
}

// convKernel streams every output tile of kernel m through its owning
// PLCG: weights come from the compiled program, activations are
// gathered into the group's scratch arena, and partial sums
// accumulate across channel groups and tap chunks. Shared by Conv and
// ConvConcurrent; in the concurrent path each goroutine owns exactly
// one PLCG, so the group scratch needs no locking.
//
//hot: steady-state layer loop; per-tile work must not allocate.
func (c *Chip) convKernel(qa *tensor.Volume, pr *weightProgram, sp *obs.Span, out *tensor.Volume, m, by, bx, stride, pad int, relu bool, outScale float64) {
	gi := c.assignGroup(m)
	g := c.groups[gi]
	nug := g.Capacity()
	sc := &g.conv
	c.ins.tile(sp, m, gi)
	nchunks := len(pr.chunks)
	for oy := 0; oy < by; oy++ {
		for ox0 := 0; ox0 < bx; ox0 += c.cfg.Nd {
			acc := sc.acc
			for d := range acc {
				acc[d] = 0
			}
			for z0 := 0; z0 < pr.zDim; z0 += nug {
				nu := min(nug, pr.zDim-z0)
				for ci := 0; ci < nchunks; ci++ {
					for u := 0; u < nu; u++ {
						sc.weights[u] = pr.slot(m, (z0+u)*nchunks+ci)
						fillWindow(sc.avals[u], qa, z0+u, oy, ox0, stride, pad, &pr.chunks[ci], c.cfg.Nd)
					}
					part := g.stepPrequantized(sc.part, sc.weights[:nu], sc.avals[:nu])
					if c.ins != nil {
						c.ins.step(gi, nu)
					}
					for d := range acc {
						acc[d] += part[d]
					}
				}
			}
			for d := 0; d < c.cfg.Nd && ox0+d < bx; d++ {
				v := acc[d] * outScale
				if relu && v < 0 {
					v = 0
				}
				out.Set(m, oy, ox0+d, v)
			}
		}
	}
}

// groupedConv runs a grouped convolution as independent dense
// convolutions over channel slices.
func (c *Chip) groupedConv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	groups := cfg.Groups
	if a.Z%groups != 0 || w.M%groups != 0 {
		panic(fmt.Sprintf("core: groups %d do not divide channels %d/%d", groups, a.Z, w.M)) //lint:ignore exit-hygiene group divisibility invariant; caller bug
	}
	zPer, mPer := a.Z/groups, w.M/groups
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	by := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	bx := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	out := tensor.NewVolume(w.M, by, bx)
	for gi := 0; gi < groups; gi++ {
		sub := tensor.NewVolume(zPer, a.Y, a.X)
		for z := 0; z < zPer; z++ {
			for y := 0; y < a.Y; y++ {
				for x := 0; x < a.X; x++ {
					sub.Set(z, y, x, a.At(gi*zPer+z, y, x))
				}
			}
		}
		subW := tensor.NewKernels(mPer, w.Z, w.Y, w.X)
		copy(subW.Data, w.Data[gi*mPer*w.Z*w.Y*w.X:(gi+1)*mPer*w.Z*w.Y*w.X])
		subOut := c.Conv(sub, subW, tensor.ConvConfig{Stride: stride, Pad: cfg.Pad}, relu)
		for m := 0; m < mPer; m++ {
			for y := 0; y < by; y++ {
				for x := 0; x < bx; x++ {
					out.Set(gi*mPer+m, y, x, subOut.At(m, y, x))
				}
			}
		}
	}
	return out
}

// depthwiseConv applies one single-channel kernel per input channel
// without cross-channel aggregation (Section III-C: "aggregation is
// not performed across channels for depthwise kernels").
func (c *Chip) depthwiseConv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	if w.M != a.Z || w.Z != 1 {
		panic("core: depthwise wants one depth-1 kernel per input channel") //lint:ignore exit-hygiene depthwise kernel shape invariant; caller bug
	}
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	qa, aScale := c.prequantizeInput(a)
	pr := c.programFor(progDepthwise, w)
	outScale := aScale * pr.wScale
	by := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	bx := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	out := tensor.NewVolume(a.Z, by, bx)
	sp := c.ins.beginLayer("depthwise", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}
	nchunks := len(pr.chunks)
	for z := 0; z < a.Z; z++ {
		gi := c.assignGroup(z)
		g := c.groups[gi]
		sc := &g.conv
		c.ins.tile(sp, z, gi)
		for oy := 0; oy < by; oy++ {
			for ox0 := 0; ox0 < bx; ox0 += c.cfg.Nd {
				acc := sc.acc
				for d := range acc {
					acc[d] = 0
				}
				for ci := 0; ci < nchunks; ci++ {
					sc.weights[0] = pr.slot(z, ci)
					fillWindow(sc.avals[0], qa, z, oy, ox0, stride, cfg.Pad, &pr.chunks[ci], c.cfg.Nd)
					part := g.stepPrequantized(sc.part, sc.weights[:1], sc.avals[:1])
					if c.ins != nil {
						c.ins.step(gi, 1)
					}
					for d := range acc {
						acc[d] += part[d]
					}
				}
				for d := 0; d < c.cfg.Nd && ox0+d < bx; d++ {
					v := acc[d] * outScale
					if relu && v < 0 {
						v = 0
					}
					out.Set(z, oy, ox0+d, v)
				}
			}
		}
	}
	return out
}

// Pointwise executes a 1x1 convolution with the Section III-C
// pointwise mapping: each PLCU tap carries one input channel, each PD
// column one output pixel, and channel aggregation happens across taps
// and PLCUs.
func (c *Chip) Pointwise(a *tensor.Volume, w *tensor.Kernels, relu bool) *tensor.Volume {
	if w.Y != 1 || w.X != 1 || w.Z != a.Z {
		panic("core: pointwise wants 1x1 kernels of full depth") //lint:ignore exit-hygiene pointwise kernel shape invariant; caller bug
	}
	qa, aScale := c.prequantizeInput(a)
	pr := c.programFor(progBlock, w)
	outScale := aScale * pr.wScale
	out := tensor.NewVolume(w.M, a.Y, a.X)
	sp := c.ins.beginLayer("pointwise", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}
	npix := a.Y * a.X
	for m := 0; m < w.M; m++ {
		c.pointwiseKernel(qa, pr, sp, out, m, npix, relu, outScale)
	}
	return out
}

// FullyConnected executes an FC layer: each output neuron's kernel
// covers the whole input volume (Section III-C). Only one PD column
// does useful work per PLCU (no parameter sharing); the others carry
// zero activations.
func (c *Chip) FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64 {
	if w.Z != a.Z || w.Y != a.Y || w.X != a.X {
		panic("core: FC kernel shape must match the input volume") //lint:ignore exit-hygiene FC kernel shape invariant; caller bug
	}
	qa, aScale := c.prequantizeInput(a)
	pr := c.programFor(progBlock, w)
	outScale := aScale * pr.wScale
	out := make([]float64, w.M)
	sp := c.ins.beginLayer("fc", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}
	for m := 0; m < w.M; m++ {
		v := c.fcNeuron(qa, pr, sp, m) * outScale
		if relu && v < 0 {
			v = 0
		}
		out[m] = v
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ConvConcurrent is Conv with the PLCGs driven by parallel goroutines.
// PLCGs are independent hardware blocks with private noise streams and
// private scratch arenas, so partitioning kernels by their owning
// group preserves every group's sequential draw order: the result is
// bit-identical to Conv for the dense stride/pad path. Grouped and
// depthwise layers fall back to the sequential implementation.
func (c *Chip) ConvConcurrent(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	if cfg.Depthwise || (cfg.Groups != 0 && cfg.Groups != 1) {
		return c.Conv(a, w, cfg, relu)
	}
	if w.Z != a.Z {
		panic(fmt.Sprintf("core: kernel depth %d != input channels %d", w.Z, a.Z)) //lint:ignore exit-hygiene kernel/input shape invariant; caller bug
	}
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	qa, aScale := c.prequantizeInput(a)
	pr := c.programFor(progConv, w)
	outScale := aScale * pr.wScale
	by := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	bx := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	out := tensor.NewVolume(w.M, by, bx)
	sp := c.ins.beginLayer("conv", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return out
	}

	var wg sync.WaitGroup
	for pos := range c.active {
		pos := pos
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Kernel ownership is by active-group position, the same
			// assignment Conv's sequential assignGroup walk produces,
			// so each PLCU sees its kernels in the same order and the
			// noise draws stay bit-identical - and each goroutine
			// touches exactly one group's scratch arena.
			for m := pos; m < w.M; m += len(c.active) {
				c.convKernel(qa, pr, sp, out, m, by, bx, stride, cfg.Pad, relu, outScale)
			}
		}()
	}
	wg.Wait()
	return out
}
