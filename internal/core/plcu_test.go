package core

import (
	"math"
	"testing"

	"albireo/internal/device"
)

func idealConfig() Config {
	c := DefaultConfig()
	c.DisableNoise = true
	c.DisableCrosstalk = true
	return c
}

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config should validate: %v", err)
	}
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.Nm = 0; return c }(),
		func() Config { c := DefaultConfig(); c.Nm = 8; return c }(), // Nm != Wy*Wx
		func() Config { c := DefaultConfig(); c.K2 = 0; return c }(),
		func() Config { c := DefaultConfig(); c.K2 = 1.5; return c }(),
		func() Config { c := DefaultConfig(); c.LaserPower = 0; return c }(),
		func() Config { c := DefaultConfig(); c.ADCBits = 1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d should fail validation", i)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	// Section III-A: 21 wavelengths per PLCU, 63 per PLCG.
	if c.WavelengthsPerPLCU() != 21 {
		t.Errorf("wavelengths per PLCU = %d, want 21", c.WavelengthsPerPLCU())
	}
	if c.TotalWavelengths() != 63 {
		t.Errorf("total wavelengths = %d, want 63", c.TotalWavelengths())
	}
	// Modulation rates follow the converter estimates.
	if c.ModulationRate() != 5e9 {
		t.Error("conservative modulation rate should be 5 GHz")
	}
	a := c
	a.Estimate = device.Aggressive
	if a.ModulationRate() != 8e9 {
		t.Error("aggressive modulation rate should be 8 GHz")
	}
	if Albireo27().Ng != 27 {
		t.Error("Albireo27 should have 27 PLCGs")
	}
	if c.String() == "" {
		t.Error("config String")
	}
}

func TestGridChannelMapping(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	// Figure 5: tap (row 0, col 0) for column d uses channel d; tap
	// (row 1, col 2) for column d uses channel 7 + 2 + d.
	if got := c.gridChannel(0, 0); got != 0 {
		t.Errorf("gridChannel(0,0) = %d, want 0", got)
	}
	if got := c.gridChannel(5, 3); got != 7+2+3 {
		t.Errorf("gridChannel(5,3) = %d, want 12", got)
	}
	// Channels stay within the 21-wavelength grid.
	for tap := 0; tap < c.Nm; tap++ {
		for d := 0; d < c.Nd; d++ {
			ch := c.gridChannel(tap, d)
			if ch < 0 || ch >= c.WavelengthsPerPLCU() {
				t.Fatalf("gridChannel(%d,%d) = %d out of range", tap, d, ch)
			}
		}
	}
}

func TestPLCUIdealDotProducts(t *testing.T) {
	t.Parallel()
	// With noise and crosstalk disabled, the PLCU computes exact
	// 8-bit-quantized dot products over the overlapping receptive
	// fields.
	p := NewPLCU(idealConfig())
	weights := []float64{0.5, -0.25, 1, 0, 0.75, -1, 0.125, 0.5, -0.5}
	field := [][]float64{
		{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7},
		{0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1},
		{0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0},
	}
	avals := p.ReceptiveFieldAVals(field)
	got := p.Dot(weights, avals)
	for d := 0; d < 5; d++ {
		var want float64
		for tap := 0; tap < 9; tap++ {
			r, c := tap/3, tap%3
			want += weights[tap] * field[r][c+d]
		}
		// Only DAC quantization error remains: 9 products each within
		// ~1.5 LSB of (1/127 + 1/255).
		if math.Abs(got[d]-want) > 9*0.02 {
			t.Errorf("column %d: got %.4f, want %.4f", d, got[d], want)
		}
	}
}

func TestPLCUZeroWeightIsExactZero(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	weights := make([]float64, 9)
	field := [][]float64{
		{1, 1, 1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1, 1, 1},
	}
	got := p.Dot(weights, p.ReceptiveFieldAVals(field))
	for d, v := range got {
		if v != 0 {
			t.Errorf("column %d: zero weights should give exactly 0, got %g", d, v)
		}
	}
}

func TestPLCUCrosstalkPerturbsNeighbors(t *testing.T) {
	t.Parallel()
	// Crosstalk couples other columns' activations into a column's
	// output: a column whose own activations are zero still reads a
	// small positive value when its neighbors are lit.
	cfg := DefaultConfig()
	cfg.DisableNoise = true
	p := NewPLCU(cfg)
	weights := []float64{1, 0, 0, 0, 0, 0, 0, 0, 0}
	// Column 0 sees activation 0 on tap 0; columns 1..4 see 1.
	avals := make([][]float64, 9)
	for t2 := range avals {
		avals[t2] = make([]float64, 5)
	}
	for d := 1; d < 5; d++ {
		avals[0][d] = 1
	}
	got := p.Dot(weights, avals)
	if got[0] <= 0 {
		t.Errorf("crosstalk should leak neighbor power into column 0, got %g", got[0])
	}
	if got[0] > 0.1 {
		t.Errorf("crosstalk leakage %g implausibly large", got[0])
	}
	// With crosstalk disabled the leak disappears.
	ideal := NewPLCU(idealConfig())
	if v := ideal.Dot(weights, avals)[0]; v != 0 {
		t.Errorf("ideal column 0 should be exactly 0, got %g", v)
	}
}

func TestPLCUNoiseStatistics(t *testing.T) {
	t.Parallel()
	// With crosstalk off and noise on, repeated evaluations of a zero
	// dot product scatter around zero with the configured sigma.
	cfg := DefaultConfig()
	cfg.DisableCrosstalk = true
	p := NewPLCU(cfg)
	weights := make([]float64, 9)
	weights[0] = 1e-9 // keep the tap active but negligible
	avals := make([][]float64, 9)
	for t2 := range avals {
		avals[t2] = make([]float64, 5)
	}
	var sum, sum2 float64
	const trials = 4000
	for i := 0; i < trials; i++ {
		v := p.Currents(weights, avals)[0]
		sum += v
		sum2 += v * v
	}
	mean := sum / trials
	std := math.Sqrt(sum2/trials - mean*mean)
	want := p.np.TotalSigma(p.unitCurrent, 9)
	if math.Abs(std-want)/want > 0.1 {
		t.Errorf("noise std %g, want %g", std, want)
	}
}

func TestPLCUUnitCurrentReasonable(t *testing.T) {
	t.Parallel()
	p := NewPLCU(DefaultConfig())
	// 2 mW laser through a ~26 dB path at 1.1 A/W: a few microamps.
	i := p.UnitCurrent()
	if i < 0.5e-6 || i > 50e-6 {
		t.Errorf("unit current %g A outside plausible range", i)
	}
}

func TestPLCUPanics(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	good := make([][]float64, 9)
	for i := range good {
		good[i] = make([]float64, 5)
	}
	expectPanic("short weights", func() { p.Currents([]float64{1}, good) })
	expectPanic("short avals", func() { p.Currents(make([]float64, 9), good[:3]) })
	expectPanic("ragged avals", func() {
		bad := make([][]float64, 9)
		for i := range bad {
			bad[i] = make([]float64, 2)
		}
		p.Currents(make([]float64, 9), bad)
	})
	expectPanic("bad field rows", func() { p.ReceptiveFieldAVals([][]float64{{1}}) })
	expectPanic("bad field cols", func() {
		p.ReceptiveFieldAVals([][]float64{{1}, {1}, {1}})
	})
	expectPanic("invalid config", func() { NewPLCU(Config{}) })
}
