package core

import (
	"fmt"

	"albireo/internal/obs"
)

// UnitRef names one PLCU by its (group, unit) coordinate.
type UnitRef struct {
	Group int `json:"group"`
	Unit  int `json:"unit"`
}

// String implements fmt.Stringer.
func (u UnitRef) String() string { return fmt.Sprintf("plcg%d/plcu%d", u.Group, u.Unit) }

// Quarantine marks PLCU (group, unit) unusable: Conv, ConvConcurrent,
// Pointwise, FullyConnected, and the depthwise/grouped paths remap
// their kernel work onto the remaining healthy units deterministically
// (a group with fewer units takes more ceil(Wz/capacity) aggregation
// cycles; a fully-quarantined group is dropped from the kernel
// round-robin). The quarantined unit is never driven again, so its
// faults cannot reach any output: results are bit-identical to a
// healthy chip scheduled onto the same surviving units.
//
// Quarantining the last healthy unit on the chip is refused. Callers
// must not quarantine concurrently with a running layer.
func (c *Chip) Quarantine(group, unit int) error {
	if group < 0 || group >= c.cfg.Ng {
		return fmt.Errorf("core: quarantine group %d out of range [0,%d)", group, c.cfg.Ng)
	}
	if unit < 0 || unit >= c.cfg.Nu {
		return fmt.Errorf("core: quarantine unit %d out of range [0,%d)", unit, c.cfg.Nu)
	}
	if c.healthyUnits() == 1 {
		return fmt.Errorf("core: refusing to quarantine %v: it is the last healthy PLCU", UnitRef{group, unit})
	}
	if !c.groups[group].quarantine(unit) {
		return fmt.Errorf("core: %v is already quarantined", UnitRef{group, unit})
	}
	c.rebuildActiveGroups()
	c.schedEpoch++
	if c.ins != nil {
		c.ins.quarantines.Inc()
		if c.ins.trace != nil {
			sp := c.ins.trace.StartSpan("chip/quarantine")
			sp.Event(obs.UnitQuarantined, UnitRef{group, unit}.String(),
				obs.Int("plcg", int64(group)),
				obs.Int("plcu", int64(unit)),
				obs.Int("remaining_units", int64(c.healthyUnits())))
			sp.End()
		}
	}
	return nil
}

// ClearQuarantine restores every quarantined unit to service.
func (c *Chip) ClearQuarantine() {
	for _, g := range c.groups {
		g.restoreAll()
	}
	c.rebuildActiveGroups()
	c.schedEpoch++
}

// Quarantined lists the quarantined units in (group, unit) order.
func (c *Chip) Quarantined() []UnitRef {
	var out []UnitRef
	for gi, g := range c.groups {
		avail := make(map[int]bool, len(g.avail))
		for _, u := range g.avail {
			avail[u] = true
		}
		for u := range g.units {
			if !avail[u] {
				out = append(out, UnitRef{Group: gi, Unit: u})
			}
		}
	}
	return out
}

// Degraded reports whether any unit is quarantined.
func (c *Chip) Degraded() bool {
	return c.healthyUnits() != c.cfg.Ng*c.cfg.Nu
}

// healthyUnits counts schedulable PLCUs across the chip.
func (c *Chip) healthyUnits() int {
	n := 0
	for _, g := range c.groups {
		n += g.Capacity()
	}
	return n
}

// rebuildActiveGroups recomputes the kernel round-robin target list:
// the groups that still have schedulable capacity, ascending.
func (c *Chip) rebuildActiveGroups() {
	c.active = c.active[:0]
	for gi, g := range c.groups {
		if g.Capacity() > 0 {
			c.active = append(c.active, gi)
		}
	}
}

// assignGroup maps kernel (or depthwise channel) m onto a PLCG:
// round-robin over the groups with healthy capacity. On the healthy
// chip this is exactly m % Ng; under quarantine, work that would have
// landed on a dead group is remapped and counted.
func (c *Chip) assignGroup(m int) int {
	gi := c.activeGroup(m)
	if c.ins != nil && gi != m%c.cfg.Ng {
		c.ins.remaps.Inc()
	}
	return gi
}

// activeGroup is assignGroup without the remap accounting: the pure
// round-robin mapping. Program compilation uses it so cache rebuilds
// do not double-count remapped tiles.
func (c *Chip) activeGroup(m int) int {
	return c.active[m%len(c.active)]
}
