package core

import (
	"math"
	"testing"

	"albireo/internal/obs"
	"albireo/internal/tensor"
)

func TestShardSpecOwnership(t *testing.T) {
	t.Parallel()
	whole := ShardSpec{}
	if !whole.Whole() || !whole.Owns(7) || whole.Kernels(13) != 13 {
		t.Fatal("zero spec must own everything")
	}
	if err := whole.Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	s := ShardSpec{Pos: 3, Count: 2, Of: 9}
	if s.Whole() {
		t.Fatal("partial spec reported whole")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for m := 0; m < 40; m++ {
		want := m%9 == 3 || m%9 == 4
		if s.Owns(m) != want {
			t.Fatalf("Owns(%d) = %v, want %v", m, s.Owns(m), want)
		}
	}
	// 13 kernels mod 9: residues 0..3 appear twice, 4..8 once. Shard
	// owns residues {3, 4}: 2 + 1 kernels.
	if got := s.Kernels(13); got != 3 {
		t.Fatalf("Kernels(13) = %d, want 3", got)
	}
	if got := (ShardSpec{Pos: 0, Count: 9, Of: 9}).Kernels(13); got != 13 {
		t.Fatalf("full window Kernels(13) = %d, want 13", got)
	}
	empty := ShardSpec{Pos: 5, Count: 0, Of: 9}
	if empty.Owns(5) || empty.Kernels(100) != 0 {
		t.Fatal("empty window must own nothing")
	}
	for _, bad := range []ShardSpec{
		{Pos: -1, Count: 2, Of: 9},
		{Pos: 8, Count: 2, Of: 9},
		{Pos: 0, Count: -1, Of: 9},
		{Pos: 1, Count: 0, Of: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %v validated", bad)
		}
	}
}

func TestPartitionShards(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		of      int
		weights []int64
		want    []int // Count per worker
	}{
		{"even-pool-3", 9, []int64{27, 27, 27}, []int{3, 3, 3}},
		{"even-pool-4", 9, []int64{27, 27, 27, 27}, []int{3, 2, 2, 2}},
		{"degraded-gets-fewer", 9, []int64{27, 27, 18}, []int{4, 3, 2}},
		{"heavily-degraded-not-zero", 9, []int64{56, 1}, []int{8, 1}},
		{"drained-gets-zero", 9, []int64{27, 0, 27}, []int{5, 0, 4}},
		{"more-workers-than-positions", 2, []int64{9, 9, 9}, []int{1, 1, 0}},
		{"all-drained-round-robin", 4, []int64{0, 0}, []int{2, 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := PartitionShards(tc.of, tc.weights)
			if len(got) != len(tc.weights) {
				t.Fatalf("got %d specs, want %d", len(got), len(tc.weights))
			}
			pos := 0
			for i, s := range got {
				if s.Count != tc.want[i] {
					t.Fatalf("worker %d owns %d positions, want %d (specs %v)", i, s.Count, tc.want[i], got)
				}
				if s.Pos != pos || s.Of != tc.of {
					t.Fatalf("worker %d window %v not contiguous from %d/%d", i, s, pos, tc.of)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("worker %d spec invalid: %v", i, err)
				}
				pos += s.Count
			}
			if pos != tc.of {
				t.Fatalf("windows cover %d of %d positions", pos, tc.of)
			}
		})
	}
}

func TestPartitionShardsDeterministic(t *testing.T) {
	t.Parallel()
	w := []int64{10, 10, 10, 10, 7}
	a := PartitionShards(9, w)
	for i := 0; i < 50; i++ {
		b := PartitionShards(9, w)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("run %d: spec %d changed %v -> %v", i, j, a[j], b[j])
			}
		}
	}
}

// shardPreps is the golden matrix of chip states the sharded paths
// must stay bit-identical under. Bit-identity requires clone chips, so
// every prep is applied identically to the reference and all shards.
var shardPreps = map[string]func(*Chip){
	"healthy": nil,
	"faulty": func(c *Chip) {
		mustFault(c, 0, 0, Fault{Kind: StuckMZM, Tap: 1, Value: 0.6})
		mustFault(c, 3, 2, Fault{Kind: DetunedRing, Tap: 5, Column: 2, Value: 0.9, Drift: 1e-4})
		mustFault(c, 7, 1, Fault{Kind: DeadRing, Tap: 2, Column: 0})
	},
	"quarantined": func(c *Chip) {
		// Group 4 loses all three units: the active-group count (and
		// therefore the shard modulus) drops to 8.
		mustQuarantine(c, 4, 0)
		mustQuarantine(c, 4, 1)
		mustQuarantine(c, 4, 2)
		mustQuarantine(c, 1, 2)
	},
}

// cloneChips builds n+1 identically prepared chips: the unsharded
// reference plus n shard executors. Same Config (including Seed) and
// same fault/quarantine state is exactly the fleet's clone-pool setup.
func cloneChips(t *testing.T, n int, prep func(*Chip)) (*Chip, []*Chip) {
	t.Helper()
	ref := NewChip(DefaultConfig())
	if prep != nil {
		prep(ref)
	}
	shards := make([]*Chip, n)
	for i := range shards {
		shards[i] = NewChip(DefaultConfig())
		if prep != nil {
			prep(shards[i])
		}
	}
	return ref, shards
}

func evenShards(of, n int) []ShardSpec {
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return PartitionShards(of, w)
}

func sameVolumeBits(t *testing.T, got, want *tensor.Volume, what string) {
	t.Helper()
	if got.Z != want.Z || got.Y != want.Y || got.X != want.X {
		t.Fatalf("%s: shape %dx%dx%d != %dx%dx%d", what, got.Z, got.Y, got.X, want.Z, want.Y, want.X)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: bit divergence at %d: %g vs %g", what, i, got.Data[i], want.Data[i])
		}
	}
}

// TestConvShardUnionBitIdentical is the tentpole invariant: the union
// of per-chip shard outputs must match the single-chip result bit for
// bit across healthy, faulted, and quarantined clone pools, for every
// shardable mapping (3x3 conv, pointwise-routed 1x1 conv, FC, GEMM).
func TestConvShardUnionBitIdentical(t *testing.T) {
	t.Parallel()
	for name, prep := range shardPreps {
		prep := prep
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			t.Run("conv3x3", func(t *testing.T) {
				t.Parallel()
				a := tensor.RandomVolume(6, 10, 10, 901)
				w := tensor.RandomKernels(13, 6, 3, 3, 902) // 13 kernels: uneven residues
				cc := tensor.ConvConfig{Stride: 1, Pad: 1}
				ref, chips := cloneChips(t, 3, prep)
				want := ref.Conv(a, w, cc, true)
				of := chips[0].ActiveGroups()
				got := tensor.NewVolume(want.Z, want.Y, want.X)
				for i, s := range evenShards(of, len(chips)) {
					chips[i].ConvShard(a, w, cc, true, s, got)
				}
				sameVolumeBits(t, got, want, "conv3x3")
			})
			t.Run("pointwise1x1", func(t *testing.T) {
				t.Parallel()
				a := tensor.RandomVolume(7, 6, 6, 903)
				w := tensor.RandomKernels(11, 7, 1, 1, 904)
				cc := tensor.ConvConfig{Stride: 1, Pad: 0}
				ref, chips := cloneChips(t, 2, prep)
				// The unsharded serving path routes this shape to the
				// pointwise mapping; ConvShard must shard that mapping.
				want := ref.Pointwise(a, w, true)
				of := chips[0].ActiveGroups()
				got := tensor.NewVolume(want.Z, want.Y, want.X)
				for i, s := range evenShards(of, len(chips)) {
					chips[i].ConvShard(a, w, cc, true, s, got)
				}
				sameVolumeBits(t, got, want, "pointwise1x1")
			})
			t.Run("fc", func(t *testing.T) {
				t.Parallel()
				a := tensor.RandomVolume(5, 4, 4, 905)
				w := tensor.RandomKernels(10, 5, 4, 4, 906)
				ref, chips := cloneChips(t, 2, prep)
				want := ref.FullyConnected(a, w, false)
				of := chips[0].ActiveGroups()
				got := make([]float64, len(want))
				for i, s := range evenShards(of, len(chips)) {
					chips[i].FullyConnectedShard(a, w, false, s, got)
				}
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("fc: bit divergence at %d: %g vs %g", i, got[i], want[i])
					}
				}
			})
			t.Run("gemm", func(t *testing.T) {
				t.Parallel()
				a := tensor.RandomMatrix(11, 13, 907)
				b := tensor.RandomMatrix(13, 10, 908)
				ref, chips := cloneChips(t, 4, prep)
				want := ref.GEMM(a, b, false)
				of := chips[0].ActiveGroups()
				got := tensor.NewMatrix(want.R, want.C)
				for i, s := range evenShards(of, len(chips)) {
					chips[i].GEMMShard(a, b, false, s, got)
				}
				for i := range want.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Fatalf("gemm: bit divergence at %d: %g vs %g", i, got.Data[i], want.Data[i])
					}
				}
			})
		})
	}
}

// TestShardWholeMatchesUnsharded pins the identity element: a whole
// shard on one chip is the unsharded result, and shares its program
// cache entry (so the sharded dispatch path costs nothing at pool 1).
func TestShardWholeMatchesUnsharded(t *testing.T) {
	t.Parallel()
	a := tensor.RandomVolume(4, 8, 8, 911)
	w := tensor.RandomKernels(9, 4, 3, 3, 912)
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}
	ref, chips := cloneChips(t, 1, nil)
	want := ref.Conv(a, w, cc, false)
	got := tensor.NewVolume(want.Z, want.Y, want.X)
	c := chips[0]
	c.ConvShard(a, w, cc, false, ShardSpec{Pos: 0, Count: c.ActiveGroups(), Of: c.ActiveGroups()}, got)
	sameVolumeBits(t, got, want, "whole shard")
	if len(c.progs) != 1 {
		t.Fatalf("whole shard compiled %d programs, want 1 (normalized cache key)", len(c.progs))
	}
}

// TestShardEmptyWindowIdle pins that an empty shard does no analog
// work: no PLCG steps, no output writes.
func TestShardEmptyWindowIdle(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	c := NewChip(DefaultConfig())
	c.Instrument(reg, nil)
	a := tensor.RandomVolume(4, 6, 6, 913)
	w := tensor.RandomKernels(9, 4, 3, 3, 914)
	out := tensor.NewVolume(9, 6, 6)
	c.ConvShard(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, false, ShardSpec{Pos: 3, Count: 0, Of: 9}, out)
	if steps := ObservedActivity(reg.Snapshot()).Steps; steps != 0 {
		t.Fatalf("empty shard ran %d PLCG steps", steps)
	}
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("empty shard wrote output at %d: %g", i, v)
		}
	}
}

// TestShardStepsProportional pins the perf mechanism the fleet's
// latency win rests on: a chip executing a k-of-Of shard performs
// exactly the owned kernels' share of PLCG steps.
func TestShardStepsProportional(t *testing.T) {
	t.Parallel()
	a := tensor.RandomVolume(6, 10, 10, 915)
	w := tensor.RandomKernels(18, 6, 3, 3, 916) // 18 kernels = 2 per residue mod 9
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}

	fullReg := obs.NewRegistry()
	full := NewChip(DefaultConfig())
	full.Instrument(fullReg, nil)
	full.Conv(a, w, cc, false)
	fullSteps := ObservedActivity(fullReg.Snapshot()).Steps

	shardReg := obs.NewRegistry()
	c := NewChip(DefaultConfig())
	c.Instrument(shardReg, nil)
	out := tensor.NewVolume(18, 10, 10)
	c.ConvShard(a, w, cc, false, ShardSpec{Pos: 0, Count: 3, Of: 9}, out)
	shardSteps := ObservedActivity(shardReg.Snapshot()).Steps

	if want := fullSteps / 3; shardSteps != want {
		t.Fatalf("3-of-9 shard ran %d steps, want exactly %d (full %d)", shardSteps, want, fullSteps)
	}
}
