package core

import (
	"fmt"

	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// Metric names the chip emits. Every counter carries a plcg="<index>"
// label so activity is attributable to the hardware block that did
// the work; obs.Snapshot.SumCounters aggregates across groups.
const (
	// MetricMZMPrograms counts weight-MZM reprogramming events: one
	// per weight MZM per PLCG step per active PLCU (the DACs retarget
	// every cycle in the depth-first dataflow, Section III-B).
	MetricMZMPrograms = "albireo_mzm_program_events_total"
	// MetricMRRSwitches counts switching-MRR routing events: each tap
	// drives one ring of its (positive, negative) pair per PD column.
	MetricMRRSwitches = "albireo_mrr_switch_events_total"
	// MetricPDReads counts balanced-photodiode differential reads:
	// one per PD column per active PLCU per step (Eq. 4).
	MetricPDReads = "albireo_pd_read_events_total"
	// MetricADCConversions counts aggregation-unit ADC conversions:
	// Nd per PLCG step (the shared ADC digitizes after the analog
	// cross-PLCU reduction).
	MetricADCConversions = "albireo_adc_conversion_events_total"
	// MetricPLCGSteps counts PLCG cycles (calls into PLCG.Step).
	MetricPLCGSteps = "albireo_plcg_steps_total"
	// MetricLayerOps counts layer executions by mapping kind
	// (label kind="conv|depthwise|pointwise|fc|gemm").
	MetricLayerOps = "albireo_layer_ops_total"
	// MetricFaultsInjected counts injected hardware defects.
	MetricFaultsInjected = "albireo_faults_injected_total"
	// MetricQuarantinedUnits counts Chip.Quarantine calls that took a
	// PLCU out of service.
	MetricQuarantinedUnits = "albireo_quarantined_units_total"
	// MetricRemappedKernels counts kernel (or depthwise-channel) tiles
	// scheduled onto a different PLCG than the healthy round-robin
	// would have used - the work the quarantine scheduler moved.
	MetricRemappedKernels = "albireo_remapped_kernels_total"
)

// chipObs holds the chip's resolved instruments. The per-PLCG counter
// slices are resolved once at attach time so the hot path is a slice
// index plus an atomic add; when only a trace (or only a registry) is
// attached the other side's instruments are nil and inert.
type chipObs struct {
	nm, nd int64

	steps []*obs.Counter
	mzm   []*obs.Counter
	mrr   []*obs.Counter
	pd    []*obs.Counter
	adc   []*obs.Counter

	layerOps    map[string]*obs.Counter
	faults      *obs.Counter
	quarantines *obs.Counter
	remaps      *obs.Counter

	trace *obs.Trace
}

// Instrument attaches an observability registry and/or trace to the
// chip. Either may be nil; passing both nil detaches instrumentation
// entirely, restoring the bare hot path (a single pointer check per
// PLCG step). Counters are cycle/event-denominated and never consult
// a wall clock, so Conv and ConvConcurrent on the same inputs produce
// bit-identical registry snapshots.
func (c *Chip) Instrument(reg *obs.Registry, trace *obs.Trace) {
	if reg == nil && trace == nil {
		c.ins = nil
		return
	}
	ins := &chipObs{
		nm:          int64(c.cfg.Nm),
		nd:          int64(c.cfg.Nd),
		faults:      reg.Counter(MetricFaultsInjected),
		quarantines: reg.Counter(MetricQuarantinedUnits),
		remaps:      reg.Counter(MetricRemappedKernels),
		trace:       trace,
	}
	perGroup := func(name string) []*obs.Counter {
		cs := make([]*obs.Counter, c.cfg.Ng)
		for gi := range cs {
			cs[gi] = reg.Counter(name, obs.L("plcg", fmt.Sprintf("%d", gi)))
		}
		return cs
	}
	ins.steps = perGroup(MetricPLCGSteps)
	ins.mzm = perGroup(MetricMZMPrograms)
	ins.mrr = perGroup(MetricMRRSwitches)
	ins.pd = perGroup(MetricPDReads)
	ins.adc = perGroup(MetricADCConversions)
	ins.layerOps = map[string]*obs.Counter{}
	for _, kind := range []string{"conv", "depthwise", "pointwise", "fc", "gemm"} {
		ins.layerOps[kind] = reg.Counter(MetricLayerOps, obs.L("kind", kind))
	}
	c.ins = ins
}

// step records the device activity of one PLCG.Step call on group gi
// with nu active PLCUs: nu*Nm weight MZMs reprogram, each active tap
// routes one ring of its pair per PD column (nu*Nm*Nd switch events),
// nu*Nd balanced pairs are read, and the group's shared ADC performs
// Nd conversions.
func (o *chipObs) step(gi, nu int) {
	n := int64(nu)
	o.steps[gi].Add(1)
	o.mzm[gi].Add(n * o.nm)
	o.mrr[gi].Add(n * o.nm * o.nd)
	o.pd[gi].Add(n * o.nd)
	o.adc[gi].Add(o.nd)
}

// beginLayer opens a layer span and bumps the per-kind op counter.
// Safe on a nil receiver so call sites stay one branch.
func (o *chipObs) beginLayer(kind string, m, z, ky, kx int) *obs.Span {
	if o == nil {
		return nil
	}
	o.layerOps[kind].Add(1)
	return o.trace.StartSpan("chip/"+kind,
		obs.String("kind", kind),
		obs.Int("kernels", int64(m)),
		obs.String("kernel_shape", fmt.Sprintf("%dx%dx%d", z, ky, kx)))
}

// tile records one kernel being scheduled onto a PLCG. Span events
// are mutex-serialized, so ConvConcurrent may emit them from its
// per-group goroutines; the arrival order differs run to run but the
// event names and counts are identical to Conv's.
func (o *chipObs) tile(sp *obs.Span, m, gi int) {
	if o == nil || o.trace == nil {
		return
	}
	//lint:ignore hotpath-alloc-proof trace-gated: runs only with a trace attached, once per tile (not per cycle); attr packing is the Span API
	sp.Event(obs.TileScheduled, "tile", obs.Int("kernel", int64(m)), obs.Int("plcg", int64(gi)))
}

// InjectFault injects a defect into PLCU unit of PLCG group and
// records it in the chip's trace and fault counter when attached.
// Group and unit must be in range (it shares the PLCU's own
// invariant panics for tap/column).
func (c *Chip) InjectFault(group, unit int, f Fault) error {
	if group < 0 || group >= c.cfg.Ng {
		return fmt.Errorf("core: fault group %d out of range [0,%d)", group, c.cfg.Ng)
	}
	if unit < 0 || unit >= c.cfg.Nu {
		return fmt.Errorf("core: fault unit %d out of range [0,%d)", unit, c.cfg.Nu)
	}
	c.groups[group].units[unit].InjectFault(f)
	if c.ins != nil {
		c.ins.faults.Add(1)
		if c.ins.trace != nil {
			sp := c.ins.trace.StartSpan("chip/fault")
			sp.Event(obs.FaultInjected, f.Kind.String(),
				obs.Int("plcg", int64(group)),
				obs.Int("plcu", int64(unit)),
				obs.Int("tap", int64(f.Tap)),
				obs.Int("column", int64(f.Column)))
			sp.End()
		}
	}
	return nil
}

// Activity is the closed-form expectation of per-device-class event
// counts for one layer - the analytic mirror of the counters the
// functional simulator records. Reports compare observed counters
// against these expectations to validate the energy model's activity
// factors against what the modeled chip actually did.
type Activity struct {
	Steps          int64
	MZMPrograms    int64
	MRRSwitches    int64
	PDReads        int64
	ADCConversions int64
}

// ExpectedConvActivity computes the Activity of a dense convolution
// of m ky-by-kx kernels over a z-by-ay-by-ax input at the given
// stride and pad, mirroring the Algorithm 2 loop nest exactly: for
// every kernel, output row, and column tile, each channel group
// contributes one step per tap chunk with min(Nu, remaining) active
// PLCUs.
func (c Config) ExpectedConvActivity(z, ay, ax, m, ky, kx, stride, pad int) Activity {
	if stride <= 0 {
		stride = 1
	}
	by := int64(tensor.ConvOutputDim(ay, ky, pad, stride))
	bx := int64(tensor.ConvOutputDim(ax, kx, pad, stride))
	tiles := ceilDiv(bx, int64(c.Nd))
	chunks := ceilDiv(int64(ky)*int64(kx), int64(c.Nm))
	zSteps := ceilDiv(int64(z), int64(c.Nu))

	perKernel := by * tiles * chunks // steps per channel group sweep position
	steps := int64(m) * perKernel * zSteps
	// Summing min(Nu, z-z0) over the channel-group loop yields exactly
	// z active PLCU-steps per (kernel, tile, chunk).
	activeUnits := int64(m) * perKernel * int64(z)

	return Activity{
		Steps:          steps,
		MZMPrograms:    activeUnits * int64(c.Nm),
		MRRSwitches:    activeUnits * int64(c.Nm) * int64(c.Nd),
		PDReads:        activeUnits * int64(c.Nd),
		ADCConversions: steps * int64(c.Nd),
	}
}

// ObservedActivity extracts the chip-wide Activity totals from a
// registry snapshot (summing the per-PLCG counters).
func ObservedActivity(s obs.Snapshot) Activity {
	return Activity{
		Steps:          s.SumCounters(MetricPLCGSteps),
		MZMPrograms:    s.SumCounters(MetricMZMPrograms),
		MRRSwitches:    s.SumCounters(MetricMRRSwitches),
		PDReads:        s.SumCounters(MetricPDReads),
		ADCConversions: s.SumCounters(MetricADCConversions),
	}
}
