package core

import (
	"fmt"
	"sort"

	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// Kernel-group sharding: one layer's output channels split across
// several chips in a pool.
//
// The shard boundary is the kernel round-robin itself. A chip with G
// active PLCGs assigns kernel m to group position m % G, so the set of
// kernels a single group position executes is a residue class mod G.
// A ShardSpec names a contiguous window of those positions: the shard
// owns every kernel m with m % Of in [Pos, Pos+Count). Executing only
// an owned residue class on a clone chip (same Config, including Seed,
// and the same quarantine/fault state) drives each PLCG through
// exactly the kernel sequence - and therefore exactly the noise-draw
// sequence - the reference chip's group at the same position sees, so
// the union of shard outputs is bit-identical to the unsharded result.
// A contiguous block split (kernels [0,k) on chip A, [k,M) on chip B)
// would NOT be: chip B's groups would see different kernels than the
// reference chip's, with different noise histories.
//
// The residue-class split is numerically correct for any pool; the
// bit-identity guarantee specifically requires clone chips (the fleet's
// sharded dispatch and the golden tests run pools built with a shared
// seed for exactly this reason).
type ShardSpec struct {
	// Pos is the first owned group position (residue class mod Of).
	Pos int `json:"pos"`
	// Count is the number of owned positions. Zero owns nothing.
	Count int `json:"count"`
	// Of is the shard modulus: the active-group count of the executing
	// chips. Of <= 0 means the whole layer (no sharding).
	Of int `json:"of"`
}

// Whole reports whether the spec covers every kernel (the unsharded
// identity element).
func (s ShardSpec) Whole() bool {
	return s.Of <= 0 || (s.Pos == 0 && s.Count >= s.Of)
}

// Owns reports whether kernel (output channel) m belongs to the shard.
func (s ShardSpec) Owns(m int) bool {
	if s.Whole() {
		return true
	}
	r := m % s.Of
	return r >= s.Pos && r < s.Pos+s.Count
}

// Kernels counts the owned kernels of an mTotal-kernel layer.
func (s ShardSpec) Kernels(mTotal int) int {
	if mTotal <= 0 {
		return 0
	}
	if s.Whole() {
		return mTotal
	}
	n := 0
	full, extra := mTotal/s.Of, mTotal%s.Of
	for r := s.Pos; r < s.Pos+s.Count; r++ {
		n += full
		if r < extra {
			n++
		}
	}
	return n
}

// Validate rejects malformed specs. The zero ShardSpec (whole layer)
// is valid, as is a Count of zero (owns nothing).
func (s ShardSpec) Validate() error {
	if s.Of <= 0 {
		if s.Pos != 0 || s.Count != 0 {
			return fmt.Errorf("core: shard %v has window bounds without a modulus", s)
		}
		return nil
	}
	if s.Pos < 0 || s.Count < 0 || s.Pos+s.Count > s.Of {
		return fmt.Errorf("core: shard %v window out of range", s)
	}
	return nil
}

// String implements fmt.Stringer ("pos+count/of").
func (s ShardSpec) String() string {
	return fmt.Sprintf("%d+%d/%d", s.Pos, s.Count, s.Of)
}

// normalizeShard collapses every whole-layer spec onto the zero value
// so sharded and unsharded callers share program-cache entries.
func normalizeShard(s ShardSpec) ShardSpec {
	if s.Whole() {
		return ShardSpec{}
	}
	return s
}

// PartitionShards apportions the `of` group positions across workers
// proportionally to their weights (healthy-PLCU counts), using the
// largest-remainder method with a minimum of one position per
// positive-weight worker while positions remain. The result is
// deterministic (remainder ties break toward the lower index) and
// covers [0, of) exactly once with contiguous windows in worker order.
// A zero- or negative-weight worker gets an empty window; if every
// weight is non-positive the positions round-robin evenly instead.
func PartitionShards(of int, weights []int64) []ShardSpec {
	out := make([]ShardSpec, len(weights))
	if of <= 0 || len(weights) == 0 {
		return out
	}
	counts := apportion(of, weights)
	pos := 0
	for i, n := range counts {
		out[i] = ShardSpec{Pos: pos, Count: n, Of: of}
		pos += n
	}
	return out
}

// apportion is PartitionShards' integer allocation: largest-remainder
// proportional shares with a min-1 floor for positive-weight workers.
func apportion(of int, weights []int64) []int {
	n := len(weights)
	counts := make([]int, n)
	var total int64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		for p := 0; p < of; p++ {
			counts[p%n]++
		}
		return counts
	}
	assigned := 0
	rems := make([]int64, n)
	order := make([]int, n)
	for i, w := range weights {
		order[i] = i
		if w <= 0 {
			continue
		}
		q := int64(of) * w
		counts[i] = int(q / total)
		rems[i] = q % total
		assigned += counts[i]
	}
	// Hand leftover positions to the largest remainders; SliceStable
	// keeps equal remainders in index order.
	sort.SliceStable(order, func(a, b int) bool { return rems[order[a]] > rems[order[b]] })
	for k := 0; assigned < of; k = (k + 1) % n {
		if i := order[k]; weights[i] > 0 {
			counts[i]++
			assigned++
		}
	}
	// Min-1 floor: a degraded worker gets fewer positions, not zero.
	// Steal from the best-provisioned donor (ties toward lower index)
	// until every positive-weight worker holds a position or no donor
	// can spare one.
	for {
		zi := -1
		for i := range counts {
			if counts[i] == 0 && weights[i] > 0 {
				zi = i
				break
			}
		}
		if zi < 0 {
			return counts
		}
		di := -1
		for i := range counts {
			if counts[i] >= 2 && (di < 0 || counts[i] > counts[di]) {
				di = i
			}
		}
		if di < 0 {
			return counts
		}
		counts[di]--
		counts[zi]++
	}
}

// ActiveGroups returns the number of PLCGs with schedulable capacity -
// the kernel round-robin width, and therefore the shard modulus Of a
// bit-identical residue-class split of this chip must use.
func (c *Chip) ActiveGroups() int { return len(c.active) }

// shardedPointwise mirrors inference.Analog's conv routing predicate:
// dense 1x1 stride-1 unpadded convolutions take the pointwise mapping.
func shardedPointwise(w *tensor.Kernels, cfg tensor.ConvConfig, stride int) bool {
	return w.Y == 1 && w.X == 1 && stride == 1 && cfg.Pad == 0
}

// ConvShard executes the shard's kernel slice of a dense convolution,
// writing only the owned output planes of the caller-allocated,
// pre-zeroed out volume. Shards of one layer write disjoint planes, so
// clone chips may fill the same volume concurrently (the fleet's merge
// is a barrier, not a copy). Weight programs are compiled per shard
// through the weight-program cache - an owned slice compiles only its
// own kernels' slots. Routing matches the unsharded serving path: 1x1
// stride-1 unpadded layers take the pointwise mapping. Depthwise and
// grouped convolutions do not shard (their channel semantics are not
// a kernel round-robin) and panic.
func (c *Chip) ConvShard(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool, shard ShardSpec, out *tensor.Volume) {
	if cfg.Depthwise || (cfg.Groups != 0 && cfg.Groups != 1) {
		panic("core: ConvShard shards dense convolutions only") //lint:ignore exit-hygiene shard eligibility invariant; fleet checks before fan-out
	}
	if err := shard.Validate(); err != nil {
		panic(err.Error()) //lint:ignore exit-hygiene malformed shard spec; caller bug
	}
	if w.Z != a.Z {
		panic(fmt.Sprintf("core: kernel depth %d != input channels %d", w.Z, a.Z)) //lint:ignore exit-hygiene kernel/input shape invariant; caller bug
	}
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	by := tensor.ConvOutputDim(a.Y, w.Y, cfg.Pad, stride)
	bx := tensor.ConvOutputDim(a.X, w.X, cfg.Pad, stride)
	if out.Z != w.M || out.Y != by || out.X != bx {
		panic(fmt.Sprintf("core: shard output %dx%dx%d != layer output %dx%dx%d", out.Z, out.Y, out.X, w.M, by, bx)) //lint:ignore exit-hygiene merge buffer shape invariant; caller bug
	}
	if shardedPointwise(w, cfg, stride) {
		c.pointwiseShard(a, w, relu, shard, out)
		return
	}
	qa, aScale := c.prequantizeInput(a)
	pr := c.programShard(progConv, w, shard)
	outScale := aScale * pr.wScale
	sp := c.ins.beginLayer("conv", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return
	}
	for m := 0; m < w.M; m++ {
		if !shard.Owns(m) {
			continue
		}
		c.convKernel(qa, pr, sp, out, m, by, bx, stride, cfg.Pad, relu, outScale)
	}
}

// pointwiseShard is the owned-slice pointwise mapping behind
// ConvShard's routing.
func (c *Chip) pointwiseShard(a *tensor.Volume, w *tensor.Kernels, relu bool, shard ShardSpec, out *tensor.Volume) {
	qa, aScale := c.prequantizeInput(a)
	pr := c.programShard(progBlock, w, shard)
	outScale := aScale * pr.wScale
	sp := c.ins.beginLayer("pointwise", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return
	}
	npix := a.Y * a.X
	for m := 0; m < w.M; m++ {
		if !shard.Owns(m) {
			continue
		}
		c.pointwiseKernel(qa, pr, sp, out, m, npix, relu, outScale)
	}
}

// FullyConnectedShard executes the shard's neuron slice of an FC
// layer, writing only the owned elements of the caller-allocated,
// pre-zeroed out slice.
func (c *Chip) FullyConnectedShard(a *tensor.Volume, w *tensor.Kernels, relu bool, shard ShardSpec, out []float64) {
	if w.Z != a.Z || w.Y != a.Y || w.X != a.X {
		panic("core: FC kernel shape must match the input volume") //lint:ignore exit-hygiene FC kernel shape invariant; caller bug
	}
	if err := shard.Validate(); err != nil {
		panic(err.Error()) //lint:ignore exit-hygiene malformed shard spec; caller bug
	}
	if len(out) != w.M {
		panic(fmt.Sprintf("core: shard output length %d != %d neurons", len(out), w.M)) //lint:ignore exit-hygiene merge buffer shape invariant; caller bug
	}
	qa, aScale := c.prequantizeInput(a)
	pr := c.programShard(progBlock, w, shard)
	outScale := aScale * pr.wScale
	sp := c.ins.beginLayer("fc", w.M, w.Z, w.Y, w.X)
	defer sp.End()
	if outScale == 0 {
		return
	}
	for m := 0; m < w.M; m++ {
		if !shard.Owns(m) {
			continue
		}
		v := c.fcNeuron(qa, pr, sp, m) * outScale
		if relu && v < 0 {
			v = 0
		}
		out[m] = v
	}
}

// GEMMShard executes the shard's output-column slice of a matrix
// product (columns round-robin over PLCGs exactly as conv kernels do),
// writing only the owned columns of the caller-allocated, pre-zeroed
// out matrix.
func (c *Chip) GEMMShard(a, b *tensor.Matrix, relu bool, shard ShardSpec, out *tensor.Matrix) {
	if a.C != b.R {
		panic(fmt.Sprintf("core: gemm inner dims %d != %d", a.C, b.R)) //lint:ignore exit-hygiene matmul shape invariant; caller bug
	}
	if err := shard.Validate(); err != nil {
		panic(err.Error()) //lint:ignore exit-hygiene malformed shard spec; caller bug
	}
	mRows, n := a.R, b.C
	if out.R != mRows || out.C != n {
		panic(fmt.Sprintf("core: shard output %dx%d != product %dx%d", out.R, out.C, mRows, n)) //lint:ignore exit-hygiene merge buffer shape invariant; caller bug
	}
	w := c.bviewFor(b)
	pr := c.programShard(progBlock, w, shard)

	if cap(c.gemmAcc) < n*mRows {
		c.gemmAcc = make([]float64, n*mRows)
	}
	dst := c.gemmAcc[:n*mRows]
	for i := range dst {
		dst[i] = 0
	}

	c.stageSigned(a)
	sp := c.ins.beginLayer("gemm", n, a.C, 1, 1)
	defer sp.End()
	if pr.wScale != 0 {
		qa, aScale := c.prequantizeInput(&c.posVol)
		if s := aScale * pr.wScale; s != 0 {
			c.gemmPass(qa, pr, sp, dst, mRows, s, false, shard)
		}
		qa, aScale = c.prequantizeInput(&c.negVol)
		if s := aScale * pr.wScale; s != 0 {
			c.gemmPass(qa, pr, sp, dst, mRows, s, true, shard)
		}
	}
	for j := 0; j < n; j++ {
		if !shard.Owns(j) {
			continue
		}
		col := dst[j*mRows : (j+1)*mRows]
		for i, v := range col {
			if relu && v < 0 {
				v = 0
			}
			out.Data[i*n+j] = v
		}
	}
}

// pointwiseKernel streams every output pixel of kernel m through its
// owning PLCG under the Section III-C pointwise mapping. Shared by
// Pointwise and the shard path, like convKernel for the conv layout.
//
//hot: steady-state layer loop; per-tile work must not allocate.
func (c *Chip) pointwiseKernel(qa *tensor.Volume, pr *weightProgram, sp *obs.Span, out *tensor.Volume, m, npix int, relu bool, outScale float64) {
	gi := c.assignGroup(m)
	g := c.groups[gi]
	nug := g.Capacity()
	sc := &g.conv
	c.ins.tile(sp, m, gi)
	nm, nd := c.cfg.Nm, c.cfg.Nd
	for p0 := 0; p0 < npix; p0 += nd {
		acc := sc.acc
		for d := range acc {
			acc[d] = 0
		}
		for b0 := 0; b0 < pr.slotsPer; b0 += nug {
			nu := min(nug, pr.slotsPer-b0)
			for u := 0; u < nu; u++ {
				b := b0 + u
				sc.weights[u] = pr.slot(m, b)
				rows := sc.avals[u]
				for t := 0; t < nm; t++ {
					row := rows[t]
					z := b*nm + t
					if z >= qa.Z {
						for d := range row {
							row[d] = 0
						}
						continue
					}
					base := z * npix
					for d := 0; d < nd; d++ {
						if p0+d < npix {
							row[d] = qa.Data[base+p0+d]
						} else {
							row[d] = 0
						}
					}
				}
			}
			part := g.stepPrequantized(sc.part, sc.weights[:nu], sc.avals[:nu])
			if c.ins != nil {
				c.ins.step(gi, nu)
			}
			for d := range acc {
				acc[d] += part[d]
			}
		}
		for d := 0; d < nd && p0+d < npix; d++ {
			v := acc[d] * outScale
			if relu && v < 0 {
				v = 0
			}
			out.Data[m*npix+p0+d] = v
		}
	}
}

// fcNeuron accumulates output neuron m of an FC layer through its
// owning PLCG and returns the raw (unscaled) sum. Shared by
// FullyConnected and the shard path.
//
//hot: steady-state layer loop; per-tile work must not allocate.
func (c *Chip) fcNeuron(qa *tensor.Volume, pr *weightProgram, sp *obs.Span, m int) float64 {
	n := qa.Z * qa.Y * qa.X
	nm := c.cfg.Nm
	gi := c.assignGroup(m)
	g := c.groups[gi]
	nug := g.Capacity()
	sc := &g.conv
	c.ins.tile(sp, m, gi)
	var acc float64
	for b0 := 0; b0 < pr.slotsPer; b0 += nug {
		nu := min(nug, pr.slotsPer-b0)
		for u := 0; u < nu; u++ {
			b := b0 + u
			sc.weights[u] = pr.slot(m, b)
			rows := sc.avals[u]
			for t := 0; t < nm; t++ {
				row := rows[t]
				for d := range row {
					row[d] = 0
				}
				if e := b*nm + t; e < n {
					row[0] = qa.Data[e]
				}
			}
		}
		part := g.stepPrequantized(sc.part, sc.weights[:nu], sc.avals[:nu])
		if c.ins != nil {
			c.ins.step(gi, nu)
		}
		acc += part[0]
	}
	return acc
}
