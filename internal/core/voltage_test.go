package core

import (
	"math"
	"testing"

	"albireo/internal/tensor"
)

func voltageConfig() Config {
	c := idealConfig()
	c.VoltageDomainWeights = true
	return c
}

func TestVoltageDomainEndpointsExact(t *testing.T) {
	t.Parallel()
	// 0, +-1 are exactly representable on both grids.
	p := NewPLCU(voltageConfig())
	for _, w := range []float64{0, 1, -1} {
		if got := p.quantizeWeight(w); got != w {
			t.Errorf("quantizeWeight(%g) = %g", w, got)
		}
	}
}

func TestVoltageDomainGridIsWarped(t *testing.T) {
	t.Parallel()
	// The voltage grid is coarse near mid-scale (where dw/dv peaks)
	// and fine near the rails: the step around w = 0.5 is larger than
	// the step near w = 0.97.
	p := NewPLCU(voltageConfig())
	stepAt := func(w float64) float64 {
		q := p.quantizeWeight(w)
		// Find the adjacent representable value by nudging.
		for d := 1e-4; d < 0.2; d += 1e-4 {
			if q2 := p.quantizeWeight(w + d); q2 != q {
				return math.Abs(q2 - q)
			}
		}
		return 0
	}
	mid := stepAt(0.5)
	rail := stepAt(0.97)
	if mid <= rail {
		t.Errorf("voltage-domain step at mid-scale (%g) should exceed the rail step (%g)", mid, rail)
	}
	// The value-domain grid is uniform: steps match.
	ideal := NewPLCU(idealConfig())
	vstep := func(w float64) float64 {
		q := ideal.quantizeWeight(w)
		for d := 1e-4; d < 0.2; d += 1e-4 {
			if q2 := ideal.quantizeWeight(w + d); q2 != q {
				return math.Abs(q2 - q)
			}
		}
		return 0
	}
	if math.Abs(vstep(0.5)-vstep(0.9)) > 1e-9 {
		t.Error("value-domain grid should be uniform")
	}
}

func TestVoltageDomainSignSymmetry(t *testing.T) {
	t.Parallel()
	p := NewPLCU(voltageConfig())
	for w := -1.0; w <= 1.0; w += 0.05 {
		if math.Abs(p.quantizeWeight(w)+p.quantizeWeight(-w)) > 1e-12 {
			t.Fatalf("voltage-domain quantizer must be odd at %g", w)
		}
	}
}

func TestVoltageDomainCostsAccuracy(t *testing.T) {
	t.Parallel()
	// The ablation's conclusion: without pre-distortion, conv error
	// grows versus the value-domain grid (same everything else).
	a := tensor.RandomVolume(6, 10, 10, 501)
	w := tensor.RandomKernels(4, 6, 3, 3, 502)
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}
	want := tensor.Conv(a, w, cc)

	value := NewChip(idealConfig()).Conv(a, w, cc, false)
	voltage := NewChip(voltageConfig()).Conv(a, w, cc, false)
	ev := rmsError(value, want)
	eu := rmsError(voltage, want)
	if eu <= ev {
		t.Errorf("voltage-domain error (%.4f) should exceed value-domain (%.4f)", eu, ev)
	}
	// But it is not catastrophic at 8 bits: within ~2x.
	if eu > 3*ev+0.05 {
		t.Errorf("voltage-domain error %.4f implausibly large vs %.4f", eu, ev)
	}
}
