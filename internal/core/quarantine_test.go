package core

import (
	"testing"

	"albireo/internal/obs"
	"albireo/internal/tensor"
)

func TestQuarantineValidation(t *testing.T) {
	t.Parallel()
	c := NewChip(DefaultConfig())
	if err := c.Quarantine(-1, 0); err == nil {
		t.Error("negative group should be rejected")
	}
	if err := c.Quarantine(0, 99); err == nil {
		t.Error("out-of-range unit should be rejected")
	}
	if err := c.Quarantine(0, 0); err != nil {
		t.Fatalf("first quarantine: %v", err)
	}
	if err := c.Quarantine(0, 0); err == nil {
		t.Error("double quarantine should be rejected")
	}
	if !c.Degraded() {
		t.Error("chip with a quarantined unit should report degraded")
	}
	got := c.Quarantined()
	if len(got) != 1 || got[0] != (UnitRef{Group: 0, Unit: 0}) {
		t.Errorf("Quarantined() = %v", got)
	}
	c.ClearQuarantine()
	if c.Degraded() || len(c.Quarantined()) != 0 {
		t.Error("ClearQuarantine should restore full capacity")
	}
	if err := c.Quarantine(0, 0); err != nil {
		t.Errorf("re-quarantine after clear: %v", err)
	}
}

func TestQuarantineRefusesLastUnit(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	c := NewChip(cfg)
	// Take down everything but (Ng-1, Nu-1).
	for g := 0; g < cfg.Ng; g++ {
		for u := 0; u < cfg.Nu; u++ {
			if g == cfg.Ng-1 && u == cfg.Nu-1 {
				continue
			}
			if err := c.Quarantine(g, u); err != nil {
				t.Fatalf("quarantine (%d,%d): %v", g, u, err)
			}
		}
	}
	if err := c.Quarantine(cfg.Ng-1, cfg.Nu-1); err == nil {
		t.Fatal("quarantining the last healthy PLCU must be refused")
	}
	// The crippled chip still computes: one group, one unit.
	a := tensor.RandomVolume(4, 6, 6, 41)
	w := tensor.RandomKernels(3, 4, 3, 3, 42)
	out := c.Conv(a, w, tensor.ConvConfig{Pad: 1}, false)
	if out.Z != 3 || out.Y != 6 || out.X != 6 {
		t.Fatalf("degraded conv shape %dx%dx%d", out.Z, out.Y, out.X)
	}
}

// TestQuarantineBitIdentical is the core remap contract: a chip with a
// faulty PLCU that has been quarantined produces output bit-identical
// to a fresh healthy chip scheduled onto the same surviving units. The
// quarantined unit is never driven, so its defect - and its noise
// stream - cannot touch the result.
func TestQuarantineBitIdentical(t *testing.T) {
	t.Parallel()
	a := tensor.RandomVolume(7, 10, 10, 101)
	w := tensor.RandomKernels(11, 7, 3, 3, 102)
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}

	faulty := NewChip(DefaultConfig())
	faulty.Groups()[2].Units()[1].InjectFault(Fault{Kind: DeadRing, Tap: 4, Column: 2})
	if err := faulty.Quarantine(2, 1); err != nil {
		t.Fatal(err)
	}

	clean := NewChip(DefaultConfig())
	if err := clean.Quarantine(2, 1); err != nil {
		t.Fatal(err)
	}

	got := faulty.Conv(a, w, cc, true)
	want := clean.Conv(a, w, cc, true)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("quarantined fault leaked into output at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestQuarantineBitIdenticalAcrossMappings(t *testing.T) {
	t.Parallel()
	build := func(withFault bool) *Chip {
		c := NewChip(DefaultConfig())
		if withFault {
			c.Groups()[0].Units()[0].InjectFault(Fault{Kind: StuckMZM, Tap: 0, Value: 1})
		}
		if err := c.Quarantine(0, 0); err != nil {
			t.Fatal(err)
		}
		return c
	}
	check := func(name string, run func(c *Chip) []float64) {
		got := run(build(true))
		want := run(build(false))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: quarantined fault leaked at %d", name, i)
			}
		}
	}
	a := tensor.RandomVolume(6, 8, 8, 201)
	check("pointwise", func(c *Chip) []float64 {
		return c.Pointwise(a, tensor.RandomKernels(5, 6, 1, 1, 202), false).Data
	})
	check("depthwise", func(c *Chip) []float64 {
		return c.Conv(a, tensor.RandomKernels(6, 1, 3, 3, 203), tensor.ConvConfig{Pad: 1, Depthwise: true}, false).Data
	})
	check("grouped", func(c *Chip) []float64 {
		return c.Conv(a, tensor.RandomKernels(4, 3, 3, 3, 204), tensor.ConvConfig{Pad: 1, Groups: 2}, false).Data
	})
	check("fc", func(c *Chip) []float64 {
		return c.FullyConnected(a, tensor.RandomKernels(7, 6, 8, 8, 205), false)
	})
}

func TestConvConcurrentUnderQuarantine(t *testing.T) {
	t.Parallel()
	// The concurrent schedule partitions kernels by active-group
	// position, so it must agree bit for bit with sequential Conv even
	// when quarantine has shrunk (and renumbered) the group list.
	a := tensor.RandomVolume(6, 9, 9, 301)
	w := tensor.RandomKernels(13, 6, 3, 3, 302)
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}
	quarantine := func(c *Chip) {
		// Empty group 1 entirely plus one unit elsewhere: exercises both
		// group-drop and capacity-shrink remapping.
		for u := 0; u < c.Config().Nu; u++ {
			if err := c.Quarantine(1, u); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Quarantine(4, 2); err != nil {
			t.Fatal(err)
		}
	}
	seqChip := NewChip(DefaultConfig())
	quarantine(seqChip)
	parChip := NewChip(DefaultConfig())
	quarantine(parChip)
	seq := seqChip.Conv(a, w, cc, true)
	par := parChip.ConvConcurrent(a, w, cc, true)
	for i := range seq.Data {
		if seq.Data[i] != par.Data[i] {
			t.Fatalf("concurrent divergence under quarantine at %d", i)
		}
	}
}

func TestQuarantineObservability(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	c := NewChip(DefaultConfig())
	c.Instrument(reg, trace)
	// Empty group 0: every kernel that would have round-robined onto it
	// is remapped and counted.
	for u := 0; u < c.Config().Nu; u++ {
		if err := c.Quarantine(0, u); err != nil {
			t.Fatal(err)
		}
	}
	a := tensor.RandomVolume(3, 6, 6, 401)
	w := tensor.RandomKernels(9, 3, 3, 3, 402) // kernel 0 would land on group 0
	c.Conv(a, w, tensor.ConvConfig{Pad: 1}, false)

	snap := reg.Snapshot()
	if got := snap.SumCounters(MetricQuarantinedUnits); got != int64(c.Config().Nu) {
		t.Errorf("quarantine counter = %d", got)
	}
	if snap.SumCounters(MetricRemappedKernels) == 0 {
		t.Error("remap counter should record rescheduled kernels")
	}
	if trace.CountByKind()["unit-quarantined"] != int64(c.Config().Nu) {
		t.Error("each quarantine should emit a unit-quarantined event")
	}
}
