package core

import (
	"math"
	"testing"

	"albireo/internal/device"
	"albireo/internal/nn"
)

func TestMapLayerConv(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	// VGG conv3_1: 256 kernels, 56x56 output, 128 input channels, 3x3.
	l := nn.Layer{Kind: nn.Conv, InZ: 128, InY: 56, InX: 56, OutZ: 256, KY: 3, KX: 3, Stride: 1, Pad: 1}
	m := c.MapLayer(l)
	if m.KernelPasses != 29 { // ceil(256/9)
		t.Errorf("kernel passes = %d, want 29", m.KernelPasses)
	}
	if m.ColumnTiles != 56*12 { // 56 rows x ceil(56/5)
		t.Errorf("column tiles = %d, want %d", m.ColumnTiles, 56*12)
	}
	if m.ChannelGroups != 43 { // ceil(128/3)
		t.Errorf("channel groups = %d, want 43", m.ChannelGroups)
	}
	if m.TapChunks != 1 {
		t.Errorf("tap chunks = %d, want 1", m.TapChunks)
	}
	want := int64(29) * int64(56*12) * 43
	if m.Cycles != want {
		t.Errorf("cycles = %d, want %d", m.Cycles, want)
	}
}

func TestMapLayerBigKernel(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	// AlexNet conv1: 11x11 kernel -> 14 tap chunks.
	l := nn.Layer{Kind: nn.Conv, InZ: 3, InY: 224, InX: 224, OutZ: 96, KY: 11, KX: 11, Stride: 4, Pad: 2}
	m := c.MapLayer(l)
	if m.TapChunks != 14 {
		t.Errorf("11x11 tap chunks = %d, want 14", m.TapChunks)
	}
}

func TestMapLayerGrouped(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	l := nn.Layer{Kind: nn.Conv, InZ: 96, InY: 27, InX: 27, OutZ: 256, KY: 5, KX: 5, Stride: 1, Pad: 2, Groups: 2}
	m := c.MapLayer(l)
	// Channels per group: 48 -> 16 channel groups, not 32.
	if m.ChannelGroups != 16 {
		t.Errorf("grouped channel groups = %d, want 16", m.ChannelGroups)
	}
	if m.TapChunks != 3 { // ceil(25/9)
		t.Errorf("5x5 tap chunks = %d, want 3", m.TapChunks)
	}
}

func TestMapLayerDepthwise(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	l := nn.Layer{Kind: nn.Depthwise, InZ: 512, InY: 14, InX: 14, OutZ: 512, KY: 3, KX: 3, Stride: 1, Pad: 1}
	m := c.MapLayer(l)
	// 512 channels over Ng*Nu = 27 parallel units.
	if m.KernelPasses != 19 { // ceil(512/27)
		t.Errorf("depthwise passes = %d, want 19", m.KernelPasses)
	}
	if m.ChannelGroups != 1 {
		t.Error("depthwise has no cross-channel aggregation")
	}
}

func TestMapLayerPointwise(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	l := nn.Layer{Kind: nn.Pointwise, InZ: 512, InY: 14, InX: 14, OutZ: 512, KY: 1, KX: 1}
	m := c.MapLayer(l)
	if m.KernelPasses != 57 { // ceil(512/9)
		t.Errorf("pointwise kernel passes = %d, want 57", m.KernelPasses)
	}
	if m.ColumnTiles != 40 { // ceil(196/5)
		t.Errorf("pointwise tiles = %d, want 40", m.ColumnTiles)
	}
	if m.ChannelGroups != 19 { // ceil(512/27)
		t.Errorf("pointwise channel groups = %d, want 19", m.ChannelGroups)
	}
}

func TestMapLayerFC(t *testing.T) {
	t.Parallel()
	wide := DefaultConfig()
	narrow := DefaultConfig()
	narrow.FCWide = false
	l := nn.Layer{Kind: nn.FC, InZ: 256, InY: 6, InX: 6, OutZ: 4096, KY: 1, KX: 1}
	mw := wide.MapLayer(l)
	mn := narrow.MapLayer(l)
	// 9216 elements: wide consumes 135/cycle, narrow 27/cycle.
	if mw.ChannelGroups != 69 { // ceil(9216/135)
		t.Errorf("wide FC groups = %d, want 69", mw.ChannelGroups)
	}
	if mn.ChannelGroups != 342 { // ceil(9216/27)
		t.Errorf("narrow FC groups = %d, want 342", mn.ChannelGroups)
	}
	if mw.Cycles >= mn.Cycles {
		t.Error("wide FC mapping must be faster")
	}
}

func TestMapLayerPooling(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	l := nn.Layer{Kind: nn.MaxPoolKind, InZ: 64, InY: 112, InX: 112, OutZ: 64, KY: 3, KX: 3, Stride: 2}
	if got := c.MapLayer(l).Cycles; got != 0 {
		t.Errorf("pooling cycles = %d, want 0", got)
	}
}

func TestVGG16LatencyMatchesPaper(t *testing.T) {
	t.Parallel()
	// Paper Table IV: VGG16 on Albireo-C takes 2.55 ms. Our mapping
	// should land within ~15% (the paper's exact tiling is not fully
	// specified; see DESIGN.md).
	mm := DefaultConfig().MapModel(nn.VGG16())
	lat := mm.Latency() * 1e3 // ms
	if lat < 2.2 || lat > 3.0 {
		t.Errorf("VGG16 Albireo-C latency = %.3f ms, want ~2.55 ms", lat)
	}
}

func TestAlexNetLatencyMatchesPaper(t *testing.T) {
	t.Parallel()
	// Paper Table IV: AlexNet on Albireo-C takes 0.13 ms (with the
	// wide FC mapping and grouped convolutions; see DESIGN.md).
	mm := DefaultConfig().MapModel(nn.AlexNet())
	lat := mm.Latency() * 1e3
	if lat < 0.10 || lat > 0.18 {
		t.Errorf("AlexNet Albireo-C latency = %.3f ms, want ~0.13 ms", lat)
	}
}

func TestAggressiveLatencyScalesWithRate(t *testing.T) {
	t.Parallel()
	// Albireo-A runs at 8 GHz: latency should be exactly 5/8 of the
	// conservative latency (same mapping).
	c := DefaultConfig()
	a := DefaultConfig()
	a.Estimate = device.Aggressive
	lc := c.MapModel(nn.VGG16()).Latency()
	la := a.MapModel(nn.VGG16()).Latency()
	if math.Abs(la/lc-5.0/8.0) > 1e-9 {
		t.Errorf("aggressive/conservative latency ratio = %g, want 0.625", la/lc)
	}
}

func TestAlbireo27Scaling(t *testing.T) {
	t.Parallel()
	// Tripling the PLCGs should cut conv-dominated latency roughly 3x
	// (within ceiling effects).
	l9 := DefaultConfig().MapModel(nn.VGG16()).Latency()
	l27 := Albireo27().MapModel(nn.VGG16()).Latency()
	ratio := l9 / l27
	if ratio < 2.2 || ratio > 3.2 {
		t.Errorf("Albireo-27 speedup on VGG16 = %.2f, want ~3", ratio)
	}
}

func TestModelMappingAccounting(t *testing.T) {
	t.Parallel()
	mm := DefaultConfig().MapModel(nn.MobileNet())
	var sum int64
	for _, lm := range mm.Layers {
		sum += lm.Cycles
		if lm.Cycles <= 0 {
			t.Errorf("%s: compute layer with no cycles", lm.Layer.Name)
		}
	}
	if sum != mm.TotalCycles {
		t.Error("per-layer cycles must sum to the total")
	}
	if mm.Throughput() <= 0 {
		t.Error("throughput should be positive")
	}
	u := mm.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %g out of (0,1]", u)
	}
	if mm.String() == "" || mm.LatencyDuration() <= 0 {
		t.Error("mapping display helpers")
	}
}

func TestAllBenchmarksMap(t *testing.T) {
	t.Parallel()
	for _, m := range nn.Benchmarks() {
		mm := DefaultConfig().MapModel(m)
		if mm.TotalCycles <= 0 {
			t.Errorf("%s: no cycles mapped", m.Name)
		}
		// Latency sanity: between 10 us and 10 ms for these networks.
		lat := mm.Latency()
		if lat < 10e-6 || lat > 10e-3 {
			t.Errorf("%s latency %.3g s out of plausible range", m.Name, lat)
		}
	}
}

// mapperRepresentatives mirrors nn's representative-layer table on the
// core side: one well-formed layer per Kind, so the exhaustiveness
// loop below fails CI when a Kind is added without a MapLayer case
// (the default arm schedules zero cycles, which trips the HasMACs
// check) or without a row here.
func mapperRepresentatives() map[nn.Kind]nn.Layer {
	return map[nn.Kind]nn.Layer{
		nn.Conv:           {Kind: nn.Conv, InZ: 8, InY: 12, InX: 12, OutZ: 16, KY: 3, KX: 3, Stride: 1, Pad: 1},
		nn.Depthwise:      {Kind: nn.Depthwise, InZ: 8, InY: 12, InX: 12, OutZ: 8, KY: 3, KX: 3, Stride: 1, Pad: 1},
		nn.Pointwise:      {Kind: nn.Pointwise, InZ: 8, InY: 12, InX: 12, OutZ: 16, KY: 1, KX: 1},
		nn.FC:             {Kind: nn.FC, InZ: 64, InY: 1, InX: 1, OutZ: 10, KY: 1, KX: 1},
		nn.MaxPoolKind:    {Kind: nn.MaxPoolKind, InZ: 8, InY: 12, InX: 12, OutZ: 8, KY: 2, KX: 2, Stride: 2},
		nn.AvgPoolKind:    {Kind: nn.AvgPoolKind, InZ: 8, InY: 12, InX: 12, OutZ: 8, KY: 2, KX: 2, Stride: 2},
		nn.GEMM:           {Kind: nn.GEMM, InZ: 32, InY: 1, InX: 16, OutZ: 24, KY: 1, KX: 1},
		nn.LSTMCell:       {Kind: nn.LSTMCell, InZ: 32, InY: 1, InX: 8, OutZ: 48, KY: 1, KX: 1},
		nn.AttentionBlock: {Kind: nn.AttentionBlock, InZ: 32, InY: 1, InX: 16, OutZ: 32, KY: 1, KX: 1},
	}
}

// TestMapLayerCoversEveryKind is the mapper exhaustiveness gate.
func TestMapLayerCoversEveryKind(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	reps := mapperRepresentatives()
	for k := nn.Kind(0); k < nn.NumKinds; k++ {
		l, ok := reps[k]
		if !ok {
			t.Fatalf("kind %v has no representative layer: extend mapperRepresentatives and MapLayer", k)
		}
		m := c.MapLayer(l)
		if l.HasMACs() && m.Cycles <= 0 {
			t.Fatalf("kind %v carries MACs but MapLayer schedules %d cycles: missing switch case", k, m.Cycles)
		}
		if !l.HasMACs() && m.Cycles != 0 {
			t.Fatalf("kind %v is a digital-path layer but MapLayer schedules %d cycles", k, m.Cycles)
		}
	}
}

// TestMapLayerGEMM pins the GEMM-family schedules on the default
// config (Ng=9, Nu=3, Nm=9, Nd=5).
func TestMapLayerGEMM(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	g := c.MapLayer(nn.Layer{Kind: nn.GEMM, InZ: 64, InY: 1, InX: 32, OutZ: 40, KY: 1, KX: 1})
	if g.KernelPasses != 5 { // ceil(40/9)
		t.Errorf("gemm kernel passes = %d, want 5", g.KernelPasses)
	}
	if g.ColumnTiles != 7 { // ceil(32/5)
		t.Errorf("gemm column tiles = %d, want 7", g.ColumnTiles)
	}
	if g.ChannelGroups != 3 { // ceil(64/27)
		t.Errorf("gemm channel groups = %d, want 3", g.ChannelGroups)
	}
	if g.TapChunks != 2 { // signed decomposition: A+ and A- passes
		t.Errorf("gemm tap chunks = %d, want 2", g.TapChunks)
	}
	if want := int64(5 * 7 * 3 * 2); g.Cycles != want {
		t.Errorf("gemm cycles = %d, want %d", g.Cycles, want)
	}

	l := c.MapLayer(nn.Layer{Kind: nn.LSTMCell, InZ: 27, InY: 1, InX: 4, OutZ: 27, KY: 1, KX: 1})
	// ceil(4*27/9)=12 passes, 4 timesteps, (1+1) channel groups, x2 sign.
	if want := int64(12 * 4 * 2 * 2); l.Cycles != want {
		t.Errorf("lstm cycles = %d, want %d", l.Cycles, want)
	}

	a := c.MapLayer(nn.Layer{Kind: nn.AttentionBlock, InZ: 27, InY: 1, InX: 18, OutZ: 27, KY: 1, KX: 1})
	// QK^T: ceil(18/9)*ceil(18/5)*ceil(27/27) = 2*4*1 = 8
	// AV:   ceil(27/9)*ceil(18/5)*ceil(18/27) = 3*4*1 = 12
	if want := int64(2 * (8 + 12)); a.Cycles != want {
		t.Errorf("attention cycles = %d, want %d", a.Cycles, want)
	}
}
