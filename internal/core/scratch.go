package core

import "albireo/internal/tensor"

// convScratch is a PLCG-owned scratch arena for the chip's layer
// loops: the Nd-wide accumulator and step output, the per-slot weight
// vector pointers, and the per-slot activation matrices, all allocated
// once at construction and reused for every tile of every layer. The
// activation rows share one backing array for locality.
//
// The arena belongs to exactly one PLCG because ConvConcurrent
// partitions kernels by owning group - one goroutine per PLCG - so
// group-owned scratch needs no locking.
type convScratch struct {
	// acc accumulates partial dot products across channel groups and
	// tap chunks for the current Nd-wide output tile.
	acc []float64
	// part receives one stepPrequantized result.
	part []float64
	// weights[u] points at the compiled weight-program slot (or staged
	// weight vector) driving healthy unit slot u this cycle.
	weights [][]float64
	// avals[u][t][d] stages the quantized activations for slot u.
	avals [][][]float64
}

func newConvScratch(cfg Config) convScratch {
	sc := convScratch{
		acc:     make([]float64, cfg.Nd),
		part:    make([]float64, cfg.Nd),
		weights: make([][]float64, cfg.Nu),
		avals:   make([][][]float64, cfg.Nu),
	}
	rowData := make([]float64, cfg.Nu*cfg.Nm*cfg.Nd)
	for u := 0; u < cfg.Nu; u++ {
		rows := make([][]float64, cfg.Nm)
		for t := 0; t < cfg.Nm; t++ {
			off := (u*cfg.Nm + t) * cfg.Nd
			rows[t] = rowData[off : off+cfg.Nd : off+cfg.Nd]
		}
		sc.avals[u] = rows
	}
	return sc
}

// fillWindow gathers the receptive field of one kernel channel into a
// slot's activation rows: row t column d reads the (pre-quantized)
// activation at tap t of chunk ch for output column ox0+d. Rows past
// the chunk's tap count are zeroed explicitly - their compiled weight
// codes can be non-zero under StuckMZM faults or the voltage-domain
// DAC grid, so stale scratch there would leak into the output.
//
//hot: per-tile activation gather; must not allocate.
func fillWindow(dst [][]float64, a *tensor.Volume, z, oy, ox0, stride, pad int, ch *tapChunk, nd int) {
	ay0 := oy*stride - pad
	for t, row := range dst {
		if t >= len(ch.ky) {
			for d := range row {
				row[d] = 0
			}
			continue
		}
		ay := ay0 + ch.ky[t]
		kx := ch.kx[t]
		for d := 0; d < nd; d++ {
			row[d] = a.AtPadded(z, ay, (ox0+d)*stride-pad+kx)
		}
	}
}
