package core

import (
	"testing"

	"albireo/internal/tensor"
)

func TestConvConcurrentBitIdentical(t *testing.T) {
	t.Parallel()
	// PLCGs have private noise streams partitioned by group, so the
	// concurrent path must be bit-identical to the sequential one even
	// with noise enabled.
	a := tensor.RandomVolume(6, 10, 10, 301)
	w := tensor.RandomKernels(13, 6, 3, 3, 302) // 13 kernels: uneven groups
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}

	seq := NewChip(DefaultConfig()).Conv(a, w, cc, true)
	par := NewChip(DefaultConfig()).ConvConcurrent(a, w, cc, true)
	if seq.Z != par.Z || seq.Y != par.Y || seq.X != par.X {
		t.Fatal("shape mismatch")
	}
	for i := range seq.Data {
		if seq.Data[i] != par.Data[i] {
			t.Fatalf("divergence at %d: %g vs %g", i, seq.Data[i], par.Data[i])
		}
	}
}

func TestConvConcurrentStride(t *testing.T) {
	t.Parallel()
	a := tensor.RandomVolume(4, 9, 9, 303)
	w := tensor.RandomKernels(5, 4, 3, 3, 304)
	cc := tensor.ConvConfig{Stride: 2, Pad: 1}
	seq := NewChip(idealConfig()).Conv(a, w, cc, false)
	par := NewChip(idealConfig()).ConvConcurrent(a, w, cc, false)
	for i := range seq.Data {
		if seq.Data[i] != par.Data[i] {
			t.Fatal("strided concurrent mismatch")
		}
	}
}

func TestConvConcurrentFallbacks(t *testing.T) {
	t.Parallel()
	// Depthwise and grouped layers route to the sequential path and
	// must still be correct.
	chip := NewChip(idealConfig())
	a := tensor.RandomVolume(4, 6, 6, 305)
	dw := tensor.RandomKernels(4, 1, 3, 3, 306)
	out := chip.ConvConcurrent(a, dw, tensor.ConvConfig{Pad: 1, Depthwise: true}, false)
	want := tensor.Conv(a, dw, tensor.ConvConfig{Pad: 1, Depthwise: true})
	if e := rmsError(out, want); e > 0.1 {
		t.Errorf("depthwise fallback RMS error %.3f", e)
	}
	gw := tensor.RandomKernels(4, 2, 3, 3, 307)
	out2 := chip.ConvConcurrent(a, gw, tensor.ConvConfig{Pad: 1, Groups: 2}, false)
	want2 := tensor.Conv(a, gw, tensor.ConvConfig{Pad: 1, Groups: 2})
	if e := rmsError(out2, want2); e > 0.1 {
		t.Errorf("grouped fallback RMS error %.3f", e)
	}
}
