package core

import (
	"math"
	"testing"

	"albireo/internal/tensor"
)

// faultField returns a uniform all-ones input field and a simple
// weight vector for fault experiments.
func faultFixture(p *PLCU) ([]float64, [][]float64) {
	field := make([][]float64, 3)
	for i := range field {
		field[i] = []float64{1, 1, 1, 1, 1, 1, 1}
	}
	weights := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	return weights, p.ReceptiveFieldAVals(field)
}

func TestStuckMZMPinsTap(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	weights, avals := faultFixture(p)
	healthy := p.Dot(weights, avals)

	// Stick tap 0 at full transmission: every column gains the
	// difference between 1.0 and 0.5 on that tap.
	p.InjectFault(Fault{Kind: StuckMZM, Tap: 0, Value: 1.0})
	faulty := p.Dot(weights, avals)
	for d := range healthy {
		want := healthy[d] + 0.5
		if math.Abs(faulty[d]-want) > 0.05 {
			t.Errorf("column %d: stuck MZM should add 0.5: healthy %.3f faulty %.3f", d, healthy[d], faulty[d])
		}
	}

	// A stuck-at-zero modulator silences the tap.
	p.ClearFaults()
	p.InjectFault(Fault{Kind: StuckMZM, Tap: 0, Value: 0})
	dark := p.Dot(weights, avals)
	for d := range healthy {
		want := healthy[d] - 0.5
		if math.Abs(dark[d]-want) > 0.05 {
			t.Errorf("column %d: stuck-at-zero should remove the tap", d)
		}
	}
}

func TestStuckMZMPreservesSignRouting(t *testing.T) {
	t.Parallel()
	// The rings still route by the programmed sign, so a negative
	// weight with a stuck magnitude stays on the negative waveguide.
	p := NewPLCU(idealConfig())
	weights := []float64{-0.25, 0, 0, 0, 0, 0, 0, 0, 0}
	avals := make([][]float64, 9)
	for i := range avals {
		avals[i] = []float64{1, 1, 1, 1, 1}
	}
	p.InjectFault(Fault{Kind: StuckMZM, Tap: 0, Value: 1.0})
	out := p.Dot(weights, avals)
	if out[0] > -0.9 {
		t.Errorf("stuck negative tap should contribute -1.0, got %.3f", out[0])
	}
}

func TestDeadRingKillsOneColumn(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	weights, avals := faultFixture(p)
	healthy := p.Dot(weights, avals)

	p.InjectFault(Fault{Kind: DeadRing, Tap: 4, Column: 2})
	faulty := p.Dot(weights, avals)
	// Column 2 loses tap 4's contribution (0.5); others unchanged.
	for d := range healthy {
		if d == 2 {
			if math.Abs(faulty[d]-(healthy[d]-0.5)) > 0.05 {
				t.Errorf("dead ring should drop 0.5 from column 2, got %.3f vs %.3f", faulty[d], healthy[d])
			}
			continue
		}
		if math.Abs(faulty[d]-healthy[d]) > 1e-9 {
			t.Errorf("column %d should be unaffected by a column-2 ring fault", d)
		}
	}
}

func TestDetunedRingPartialLoss(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	weights, avals := faultFixture(p)
	healthy := p.Dot(weights, avals)

	p.InjectFault(Fault{Kind: DetunedRing, Tap: 0, Column: 0, Value: 0.5})
	faulty := p.Dot(weights, avals)
	// Column 0 loses half of tap 0's 0.5 contribution.
	if math.Abs(faulty[0]-(healthy[0]-0.25)) > 0.05 {
		t.Errorf("detuned ring should drop 0.25, got %.3f vs %.3f", faulty[0], healthy[0])
	}
	// A detune value outside [0,1] clamps.
	p.ClearFaults()
	p.InjectFault(Fault{Kind: DetunedRing, Tap: 0, Column: 0, Value: 2})
	if got := p.Dot(weights, avals)[0]; math.Abs(got-healthy[0]) > 0.05 {
		t.Error("over-unity detune should clamp to healthy behaviour")
	}
}

func TestFaultAccounting(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	p.InjectFault(Fault{Kind: DeadRing, Tap: 1, Column: 1})
	p.InjectFault(Fault{Kind: StuckMZM, Tap: 2, Value: 0.7})
	if len(p.Faults()) != 2 {
		t.Error("fault list should accumulate")
	}
	p.ClearFaults()
	if len(p.Faults()) != 0 {
		t.Error("ClearFaults should empty the list")
	}
	if (Fault{Kind: DeadRing}).String() == "" || FaultKind(99).String() != "unknown" {
		t.Error("fault display")
	}
}

func TestFaultValidation(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	expectPanic("bad tap", func() { p.InjectFault(Fault{Kind: StuckMZM, Tap: 99}) })
	expectPanic("bad column", func() { p.InjectFault(Fault{Kind: DeadRing, Tap: 0, Column: 9}) })
}

func TestFaultImpactOnConvolution(t *testing.T) {
	t.Parallel()
	// Chip-level failure injection: kill one ring in one PLCU of one
	// PLCG and verify that only that group's kernels degrade.
	cfg := idealConfig()
	chip := NewChip(cfg)
	chip.Groups()[0].Units()[0].InjectFault(Fault{Kind: DeadRing, Tap: 4, Column: 0})

	// Kernel 0 maps to group 0 (round robin); kernel 1 to group 1.
	a := tensor.NewVolume(3, 8, 8)
	for i := range a.Data {
		a.Data[i] = 1
	}
	w := tensor.NewKernels(2, 3, 3, 3)
	for i := range w.Data {
		w.Data[i] = 0.5
	}
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}
	out := chip.Conv(a, w, cc, false)
	ref := NewChip(cfg).Conv(a, w, cc, false)

	var worst0, worst1 float64
	for y := 0; y < out.Y; y++ {
		for x := 0; x < out.X; x++ {
			if d := math.Abs(out.At(0, y, x) - ref.At(0, y, x)); d > worst0 {
				worst0 = d
			}
			if d := math.Abs(out.At(1, y, x) - ref.At(1, y, x)); d > worst1 {
				worst1 = d
			}
		}
	}
	if worst0 < 0.1 {
		t.Errorf("kernel 0 should be visibly degraded by the fault, worst delta %.4f", worst0)
	}
	if worst1 > 1e-9 {
		t.Errorf("kernel 1 should be untouched (different PLCG), worst delta %.4f", worst1)
	}
}
