package core

import (
	"math"
	"testing"

	"albireo/internal/tensor"
)

// faultFixture returns a uniform all-ones input field and a simple
// weight vector for fault experiments.
func faultFixture(p *PLCU) ([]float64, [][]float64) {
	field := make([][]float64, 3)
	for i := range field {
		field[i] = []float64{1, 1, 1, 1, 1, 1, 1}
	}
	weights := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	return weights, p.ReceptiveFieldAVals(field)
}

func TestStuckMZMPinsTap(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	weights, avals := faultFixture(p)
	healthy := p.Dot(weights, avals)

	// Stick tap 0 at full transmission: every column gains the
	// difference between 1.0 and 0.5 on that tap.
	p.InjectFault(Fault{Kind: StuckMZM, Tap: 0, Value: 1.0})
	faulty := p.Dot(weights, avals)
	for d := range healthy {
		want := healthy[d] + 0.5
		if math.Abs(faulty[d]-want) > 0.05 {
			t.Errorf("column %d: stuck MZM should add 0.5: healthy %.3f faulty %.3f", d, healthy[d], faulty[d])
		}
	}

	// A stuck-at-zero modulator silences the tap.
	p.ClearFaults()
	p.InjectFault(Fault{Kind: StuckMZM, Tap: 0, Value: 0})
	dark := p.Dot(weights, avals)
	for d := range healthy {
		want := healthy[d] - 0.5
		if math.Abs(dark[d]-want) > 0.05 {
			t.Errorf("column %d: stuck-at-zero should remove the tap", d)
		}
	}
}

func TestStuckMZMPreservesSignRouting(t *testing.T) {
	t.Parallel()
	// The rings still route by the programmed sign, so a negative
	// weight with a stuck magnitude stays on the negative waveguide.
	p := NewPLCU(idealConfig())
	weights := []float64{-0.25, 0, 0, 0, 0, 0, 0, 0, 0}
	avals := make([][]float64, 9)
	for i := range avals {
		avals[i] = []float64{1, 1, 1, 1, 1}
	}
	p.InjectFault(Fault{Kind: StuckMZM, Tap: 0, Value: 1.0})
	out := p.Dot(weights, avals)
	if out[0] > -0.9 {
		t.Errorf("stuck negative tap should contribute -1.0, got %.3f", out[0])
	}
}

func TestDeadRingKillsOneColumn(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	weights, avals := faultFixture(p)
	healthy := p.Dot(weights, avals)

	p.InjectFault(Fault{Kind: DeadRing, Tap: 4, Column: 2})
	faulty := p.Dot(weights, avals)
	// Column 2 loses tap 4's contribution (0.5); others unchanged.
	for d := range healthy {
		if d == 2 {
			if math.Abs(faulty[d]-(healthy[d]-0.5)) > 0.05 {
				t.Errorf("dead ring should drop 0.5 from column 2, got %.3f vs %.3f", faulty[d], healthy[d])
			}
			continue
		}
		if math.Abs(faulty[d]-healthy[d]) > 1e-9 {
			t.Errorf("column %d should be unaffected by a column-2 ring fault", d)
		}
	}
}

func TestDetunedRingPartialLoss(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	weights, avals := faultFixture(p)
	healthy := p.Dot(weights, avals)

	p.InjectFault(Fault{Kind: DetunedRing, Tap: 0, Column: 0, Value: 0.5})
	faulty := p.Dot(weights, avals)
	// Column 0 loses half of tap 0's 0.5 contribution.
	if math.Abs(faulty[0]-(healthy[0]-0.25)) > 0.05 {
		t.Errorf("detuned ring should drop 0.25, got %.3f vs %.3f", faulty[0], healthy[0])
	}
}

func TestDriftingDetunedRingWorsensOverCycles(t *testing.T) {
	t.Parallel()
	// A drifting detuned ring starts at full coupling and loses Drift
	// of residual per modulation cycle: early cycles look healthy, late
	// cycles look dead - the progressive failure BIST sweeps chase.
	p := NewPLCU(idealConfig())
	weights, avals := faultFixture(p)
	healthy := NewPLCU(idealConfig()).Dot(weights, avals)

	p.InjectFault(Fault{Kind: DetunedRing, Tap: 4, Column: 2, Value: 1.0, Drift: 0.01})
	first := p.Dot(weights, avals) // cycle advances to 1 during this call
	if math.Abs(first[2]-healthy[2]) > 0.06 {
		t.Errorf("fresh drifting ring should still look healthy: %.3f vs %.3f", first[2], healthy[2])
	}
	for p.Cycles() < 100 { // run the residual down to zero
		p.Dot(weights, avals)
	}
	late := p.Dot(weights, avals)
	if math.Abs(late[2]-(healthy[2]-0.5)) > 0.05 {
		t.Errorf("fully drifted ring should read dead: got %.3f, healthy %.3f", late[2], healthy[2])
	}
	// Other columns never degrade.
	if math.Abs(late[0]-healthy[0]) > 1e-9 {
		t.Error("drift must stay confined to its (tap, column)")
	}
}

func TestFaultAccounting(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	p.InjectFault(Fault{Kind: DeadRing, Tap: 1, Column: 1})
	p.InjectFault(Fault{Kind: StuckMZM, Tap: 2, Value: 0.7})
	if len(p.Faults()) != 2 {
		t.Error("fault list should accumulate")
	}
	p.ClearFaults()
	if len(p.Faults()) != 0 {
		t.Error("ClearFaults should empty the list")
	}
	if (Fault{Kind: DeadRing}).String() == "" || FaultKind(99).String() != "unknown" {
		t.Error("fault display")
	}
	if (Fault{Kind: DetunedRing, Value: 1, Drift: 0.5}).String() == (Fault{Kind: DetunedRing, Value: 1}).String() {
		t.Error("drifting faults should display their rate")
	}
}

func TestFaultValidation(t *testing.T) {
	t.Parallel()
	p := NewPLCU(idealConfig())
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	expectPanic("bad tap", func() { p.InjectFault(Fault{Kind: StuckMZM, Tap: 99}) })
	expectPanic("bad column", func() { p.InjectFault(Fault{Kind: DeadRing, Tap: 0, Column: 9}) })
	// Value ranges: an MZM transmits a fraction of its input and a
	// detuned ring couples a fraction, so transfers outside [0,1] are
	// unphysical and rejected rather than silently accepted.
	expectPanic("negative stuck transfer", func() { p.InjectFault(Fault{Kind: StuckMZM, Tap: 0, Value: -0.5}) })
	expectPanic("over-unity stuck transfer", func() { p.InjectFault(Fault{Kind: StuckMZM, Tap: 0, Value: 1.5}) })
	expectPanic("negative residual", func() { p.InjectFault(Fault{Kind: DetunedRing, Tap: 0, Column: 0, Value: -0.1}) })
	expectPanic("over-unity residual", func() { p.InjectFault(Fault{Kind: DetunedRing, Tap: 0, Column: 0, Value: 2}) })
	expectPanic("negative drift", func() { p.InjectFault(Fault{Kind: DetunedRing, Tap: 0, Column: 0, Value: 1, Drift: -0.1}) })
	expectPanic("drift on non-detuned", func() { p.InjectFault(Fault{Kind: DeadRing, Tap: 0, Column: 0, Drift: 0.1}) })
	if len(p.Faults()) != 0 {
		t.Error("rejected faults must not be recorded")
	}
}

func TestFaultImpactOnConvolution(t *testing.T) {
	t.Parallel()
	// Chip-level failure injection: kill one ring in one PLCU of one
	// PLCG and verify that only that group's kernels degrade.
	cfg := idealConfig()
	chip := NewChip(cfg)
	chip.Groups()[0].Units()[0].InjectFault(Fault{Kind: DeadRing, Tap: 4, Column: 0})

	// Kernel 0 maps to group 0 (round robin); kernel 1 to group 1.
	a := tensor.NewVolume(3, 8, 8)
	for i := range a.Data {
		a.Data[i] = 1
	}
	w := tensor.NewKernels(2, 3, 3, 3)
	for i := range w.Data {
		w.Data[i] = 0.5
	}
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}
	out := chip.Conv(a, w, cc, false)
	ref := NewChip(cfg).Conv(a, w, cc, false)

	var worst0, worst1 float64
	for y := 0; y < out.Y; y++ {
		for x := 0; x < out.X; x++ {
			if d := math.Abs(out.At(0, y, x) - ref.At(0, y, x)); d > worst0 {
				worst0 = d
			}
			if d := math.Abs(out.At(1, y, x) - ref.At(1, y, x)); d > worst1 {
				worst1 = d
			}
		}
	}
	if worst0 < 0.1 {
		t.Errorf("kernel 0 should be visibly degraded by the fault, worst delta %.4f", worst0)
	}
	if worst1 > 1e-9 {
		t.Errorf("kernel 1 should be untouched (different PLCG), worst delta %.4f", worst1)
	}
}

// worstDelta returns the max absolute per-element difference between
// two equal-shaped volumes, per channel m.
func worstDelta(a, b *tensor.Volume, m int) float64 {
	var worst float64
	for y := 0; y < a.Y; y++ {
		for x := 0; x < a.X; x++ {
			if d := math.Abs(a.At(m, y, x) - b.At(m, y, x)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestFaultPropagatesThroughPointwise(t *testing.T) {
	t.Parallel()
	// The pointwise mapping spreads input channels across taps, so a
	// dead ring in unit 0 of group 0 corrupts kernel 0's output pixels
	// in the faulted column positions while kernel 1 (group 1) is
	// untouched.
	cfg := idealConfig()
	a := tensor.NewVolume(3, 4, 4)
	for i := range a.Data {
		a.Data[i] = 1
	}
	w := tensor.NewKernels(2, 3, 1, 1)
	for i := range w.Data {
		w.Data[i] = 0.5
	}
	chip := NewChip(cfg)
	chip.Groups()[0].Units()[0].InjectFault(Fault{Kind: DeadRing, Tap: 0, Column: 0})
	out := chip.Pointwise(a, w, false)
	ref := NewChip(cfg).Pointwise(a, w, false)
	if worstDelta(out, ref, 0) < 0.05 {
		t.Error("pointwise kernel 0 should be degraded by its group's fault")
	}
	if worstDelta(out, ref, 1) > 1e-9 {
		t.Error("pointwise kernel 1 should be untouched (different PLCG)")
	}
}

func TestFaultPropagatesThroughDepthwise(t *testing.T) {
	t.Parallel()
	// Depthwise maps channel z onto group z%Ng using one PLCU slot
	// (the first healthy unit), so a unit-0 fault in group 0 corrupts
	// only channel 0.
	cfg := idealConfig()
	a := tensor.NewVolume(3, 6, 6)
	for i := range a.Data {
		a.Data[i] = 1
	}
	w := tensor.NewKernels(3, 1, 3, 3)
	for i := range w.Data {
		w.Data[i] = 0.5
	}
	cc := tensor.ConvConfig{Pad: 1, Depthwise: true}
	chip := NewChip(cfg)
	chip.Groups()[0].Units()[0].InjectFault(Fault{Kind: DeadRing, Tap: 4, Column: 0})
	out := chip.Conv(a, w, cc, false)
	ref := NewChip(cfg).Conv(a, w, cc, false)
	if worstDelta(out, ref, 0) < 0.1 {
		t.Error("depthwise channel 0 should be degraded by its group's fault")
	}
	for z := 1; z < 3; z++ {
		if worstDelta(out, ref, z) > 1e-9 {
			t.Errorf("depthwise channel %d should be untouched", z)
		}
	}
}

func TestFaultPropagatesThroughGroupedConv(t *testing.T) {
	t.Parallel()
	// Grouped convolution runs each channel group as an independent
	// dense conv; every sub-conv restarts its kernel round-robin at
	// PLCG 0, so a group-0 fault touches the first kernel of *each*
	// channel group (m=0 and m=2 here) and no others.
	cfg := idealConfig()
	a := tensor.NewVolume(4, 6, 6)
	for i := range a.Data {
		a.Data[i] = 1
	}
	w := tensor.NewKernels(4, 2, 3, 3)
	for i := range w.Data {
		w.Data[i] = 0.5
	}
	cc := tensor.ConvConfig{Pad: 1, Groups: 2}
	chip := NewChip(cfg)
	chip.Groups()[0].Units()[0].InjectFault(Fault{Kind: DeadRing, Tap: 4, Column: 0})
	out := chip.Conv(a, w, cc, false)
	ref := NewChip(cfg).Conv(a, w, cc, false)
	for _, m := range []int{0, 2} {
		if worstDelta(out, ref, m) < 0.1 {
			t.Errorf("grouped-conv kernel %d (first of its channel group) should be degraded", m)
		}
	}
	for _, m := range []int{1, 3} {
		if worstDelta(out, ref, m) > 1e-9 {
			t.Errorf("grouped-conv kernel %d should be untouched", m)
		}
	}
}

func TestConvConcurrentWithFaultsBitIdentical(t *testing.T) {
	t.Parallel()
	// Faults are deterministic transfer modifiers, so the concurrent
	// schedule must reproduce the sequential faulty output bit for bit
	// (noise enabled: the per-group noise streams see the same call
	// order either way).
	inject := func(c *Chip) {
		c.Groups()[0].Units()[0].InjectFault(Fault{Kind: DeadRing, Tap: 4, Column: 1})
		c.Groups()[1].Units()[1].InjectFault(Fault{Kind: StuckMZM, Tap: 2, Value: 0.8})
		c.Groups()[2].Units()[2].InjectFault(Fault{Kind: DetunedRing, Tap: 0, Column: 0, Value: 0.9, Drift: 1e-4})
	}
	a := tensor.RandomVolume(6, 10, 10, 311)
	w := tensor.RandomKernels(13, 6, 3, 3, 312)
	cc := tensor.ConvConfig{Stride: 1, Pad: 1}

	seqChip := NewChip(DefaultConfig())
	inject(seqChip)
	seq := seqChip.Conv(a, w, cc, true)

	parChip := NewChip(DefaultConfig())
	inject(parChip)
	par := parChip.ConvConcurrent(a, w, cc, true)

	for i := range seq.Data {
		if seq.Data[i] != par.Data[i] {
			t.Fatalf("faulty concurrent divergence at %d: %g vs %g", i, seq.Data[i], par.Data[i])
		}
	}
}
