package core

import (
	"math"
	"testing"

	"albireo/internal/tensor"
)

// stageAsPointwise reformulates the product a*b as the Pointwise layer
// it is Conv-equivalent to: A transposed into a K-channel volume of M
// pixels, B transposed into a bank of N 1x1 kernels of depth K.
func stageAsPointwise(a, b *tensor.Matrix) (*tensor.Volume, *tensor.Kernels) {
	av := tensor.NewVolume(a.C, 1, a.R)
	for i := 0; i < a.R; i++ {
		for z := 0; z < a.C; z++ {
			av.Data[z*a.R+i] = a.At(i, z)
		}
	}
	bk := tensor.NewKernels(b.C, b.R, 1, 1)
	for z := 0; z < b.R; z++ {
		for n := 0; n < b.C; n++ {
			bk.Data[n*b.R+z] = b.At(z, n)
		}
	}
	return av, bk
}

func gemmRelRMS(got, want *tensor.Matrix) float64 {
	var num, den float64
	for i := range got.Data {
		d := got.Data[i] - want.Data[i]
		num += d * d
		den += want.Data[i] * want.Data[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestGEMMMatchesPointwiseBits pins the Conv-equivalence: a GEMM with
// non-negative activations must be bit-identical to the same product
// formulated as a Pointwise layer, on healthy, faulted, and
// quarantined chips. The negative pass's all-zero input has scale 0
// and consumes no PLCG cycles, so the noise streams line up exactly.
func TestGEMMMatchesPointwiseBits(t *testing.T) {
	t.Parallel()
	preps := map[string]func(*Chip){
		"healthy": nil,
		"faulty": func(c *Chip) {
			mustFault(c, 0, 0, Fault{Kind: StuckMZM, Tap: 1, Value: 0.6})
			mustFault(c, 1, 2, Fault{Kind: DetunedRing, Tap: 5, Column: 2, Value: 0.9, Drift: 1e-4})
		},
		"quarantined": func(c *Chip) {
			mustQuarantine(c, 0, 1)
			mustQuarantine(c, 2, 0)
			mustQuarantine(c, 2, 1)
		},
	}
	for name, prep := range preps {
		prep := prep
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a := tensor.RandomNonNegMatrix(11, 13, 71)
			b := tensor.RandomMatrix(13, 6, 72)
			for _, relu := range []bool{false, true} {
				g := NewChip(DefaultConfig())
				p := NewChip(DefaultConfig())
				if prep != nil {
					prep(g)
					prep(p)
				}
				got := g.GEMM(a, b, relu)
				av, bk := stageAsPointwise(a, b)
				want := p.Pointwise(av, bk, relu)
				for i := 0; i < a.R; i++ {
					for j := 0; j < b.C; j++ {
						gv := got.At(i, j)
						wv := want.Data[j*a.R+i]
						if math.Float64bits(gv) != math.Float64bits(wv) {
							t.Fatalf("relu=%v: GEMM(%d,%d) = %x, pointwise = %x",
								relu, i, j, math.Float64bits(gv), math.Float64bits(wv))
						}
					}
				}
			}
		})
	}
}

// TestGEMMMatchesExactReference checks accuracy parity of the signed
// two-pass path against the float64 reference under default noise and
// quarantine. Signed uniform matrices are the worst case for relative
// error: the products cancel (small signal) while the two passes'
// 8-bit DAC quantization errors add, so the noiseless floor sits near
// 5% relative RMS; the thresholds pin that floor rather than hiding
// it behind benign inputs.
func TestGEMMMatchesExactReference(t *testing.T) {
	t.Parallel()
	a := tensor.RandomMatrix(12, 16, 81)
	b := tensor.RandomMatrix(16, 9, 82)
	want := tensor.MatMul(a, b)

	chips := map[string]func() *Chip{
		"healthy": func() *Chip { return NewChip(DefaultConfig()) },
		"noiseless": func() *Chip {
			cfg := DefaultConfig()
			cfg.DisableNoise = true
			return NewChip(cfg)
		},
		"quarantined": func() *Chip {
			c := NewChip(DefaultConfig())
			mustQuarantine(c, 4, 0)
			return c
		},
	}
	budgets := map[string]float64{"healthy": 0.2, "noiseless": 0.08, "quarantined": 0.2}
	for name, mk := range chips {
		mk, budget := mk, budgets[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			got := mk().GEMM(a, b, false)
			if r := gemmRelRMS(got, want); r > budget {
				t.Fatalf("relative RMS vs exact reference = %v, want < %v", r, budget)
			}
		})
	}
}

// TestGEMMDeterministic: two fresh chips produce identical bits.
func TestGEMMDeterministic(t *testing.T) {
	t.Parallel()
	a := tensor.RandomMatrix(7, 10, 91)
	b := tensor.RandomMatrix(10, 5, 92)
	x := NewChip(DefaultConfig()).GEMM(a, b, false)
	y := NewChip(DefaultConfig()).GEMM(a, b, false)
	for i := range x.Data {
		if math.Float64bits(x.Data[i]) != math.Float64bits(y.Data[i]) {
			t.Fatalf("GEMM not deterministic at element %d", i)
		}
	}
}

// TestGEMMTracksMutatedWeights: mutating B in place must invalidate
// the cached kernel-bank view and weight program.
func TestGEMMTracksMutatedWeights(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.DisableNoise = true
	chip := NewChip(cfg)
	a := tensor.RandomNonNegMatrix(6, 8, 101)
	b := tensor.RandomMatrix(8, 4, 102)
	chip.GEMM(a, b, false)
	for i := range b.Data {
		b.Data[i] = -b.Data[i]
	}
	got := chip.GEMM(a, b, false)
	if r := gemmRelRMS(got, tensor.MatMul(a, b)); r > 0.05 {
		t.Fatalf("stale kernel view: relative RMS = %v after mutating B", r)
	}
}

// TestGEMMReluClamp: every output is non-negative under relu and
// matches the unclamped product elsewhere.
func TestGEMMReluClamp(t *testing.T) {
	t.Parallel()
	a := tensor.RandomMatrix(8, 10, 111)
	b := tensor.RandomMatrix(10, 6, 112)
	chip := NewChip(DefaultConfig())
	got := chip.GEMM(a, b, true)
	for i, v := range got.Data {
		if v < 0 {
			t.Fatalf("relu output %d is negative: %v", i, v)
		}
	}
}

// TestGEMMAllZero: an all-zero operand early-returns a zero matrix
// without driving the fabric.
func TestGEMMAllZero(t *testing.T) {
	t.Parallel()
	chip := NewChip(DefaultConfig())
	a := tensor.RandomMatrix(4, 5, 121)
	z := tensor.NewMatrix(5, 3)
	out := chip.GEMM(a, z, false)
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("zero-weight GEMM element %d = %v", i, v)
		}
	}
	za := tensor.NewMatrix(4, 5)
	out = chip.GEMM(za, tensor.RandomMatrix(5, 3, 122), false)
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("zero-activation GEMM element %d = %v", i, v)
		}
	}
}

// TestGEMMSteadyStateAllocs gates the zero-alloc hot path: after the
// first call compiles the program and grows the scratch, each GEMM
// allocates only its output matrix (header + backing array).
func TestGEMMSteadyStateAllocs(t *testing.T) {
	chip := NewChip(DefaultConfig())
	a := tensor.RandomMatrix(10, 14, 131)
	b := tensor.RandomMatrix(14, 8, 132)
	chip.GEMM(a, b, false) // warm: program compile + scratch growth
	allocs := testing.AllocsPerRun(5, func() {
		chip.GEMM(a, b, false)
	})
	if allocs > 2 {
		t.Fatalf("steady-state GEMM allocates %v times per call, want <= 2", allocs)
	}
}
