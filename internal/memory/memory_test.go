package memory

import (
	"math"
	"testing"
)

func TestGlobalBufferMatchesPaper(t *testing.T) {
	gb := GlobalBuffer()
	if gb.CapacityBytes != 256<<10 {
		t.Error("global buffer should be 256 kB")
	}
	want := 0.59e-3 * 0.34e-3
	if math.Abs(gb.Area-want) > 1e-15 {
		t.Error("global buffer footprint mismatch with Section IV-A")
	}
}

func TestKernelCacheMatchesPaper(t *testing.T) {
	kc := KernelCache()
	if kc.CapacityBytes != 16<<10 {
		t.Error("kernel cache should be 16 kB")
	}
	want := 0.092e-3 * 0.085e-3
	if math.Abs(kc.Area-want) > 1e-15 {
		t.Error("kernel cache footprint mismatch with Section IV-A")
	}
}

func TestAccessEnergyScaling(t *testing.T) {
	// Larger arrays cost more per access (sqrt capacity scaling).
	small := New(16<<10, 4, 0, 0)
	big := New(256<<10, 4, 0, 0)
	if big.AccessEnergy() <= small.AccessEnergy() {
		t.Error("bigger arrays should cost more per access")
	}
	ratio := big.AccessEnergy() / small.AccessEnergy()
	if math.Abs(ratio-4) > 0.01 { // sqrt(16x capacity)
		t.Errorf("energy ratio = %g, want 4 (sqrt scaling)", ratio)
	}
	// Anchor: 16 kB at 4 B/word is 40 fJ/access.
	if math.Abs(small.AccessEnergy()-40e-15) > 1e-18 {
		t.Errorf("anchor access energy = %g, want 40 fJ", small.AccessEnergy())
	}
}

func TestReadWriteEnergy(t *testing.T) {
	s := New(16<<10, 4, 0, 0)
	// 10 bytes needs 3 words.
	if math.Abs(s.ReadEnergy(10)-3*s.AccessEnergy()) > 1e-20 {
		t.Error("read energy word rounding")
	}
	if math.Abs(s.WriteEnergy(4)-1.2*s.AccessEnergy()) > 1e-20 {
		t.Error("write energy should be 1.2x read")
	}
	if s.ReadEnergy(0) != 0 {
		t.Error("zero-byte read is free")
	}
}

func TestBandwidth(t *testing.T) {
	s := New(16<<10, 8, 0, 0)
	if s.Bandwidth(1e9) != 8e9 {
		t.Error("bandwidth should be word * clock")
	}
}

func TestLayerTrafficEnergy(t *testing.T) {
	tr := LayerTraffic{InputReads: 1 << 20, WeightReads: 1 << 16, OutputWrites: 1 << 20}
	e := tr.Energy()
	if e <= 0 {
		t.Fatal("traffic energy must be positive")
	}
	// Doubling the traffic roughly doubles the energy.
	tr2 := LayerTraffic{InputReads: 2 << 20, WeightReads: 2 << 16, OutputWrites: 2 << 20}
	ratio := tr2.Energy() / e
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("traffic energy ratio = %g, want 2", ratio)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid geometry should panic")
		}
	}()
	New(0, 4, 0, 0)
}

func TestString(t *testing.T) {
	if GlobalBuffer().String() == "" {
		t.Error("String")
	}
}
