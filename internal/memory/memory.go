// Package memory models Albireo's digital SRAM subsystems: the 256 kB
// global buffer and the 16 kB per-PLCG kernel caches (paper Section
// IV-A). It substitutes for the PCACTI/CACTI-7 tool the paper used,
// pinning the reported 7 nm footprints and the Table III cache power
// budget, and exposing an analytic per-access energy model with the
// standard capacity scaling shape for ablation studies.
package memory

import (
	"albireo/internal/units"
	"fmt"
	"math"
)

// SRAM describes one SRAM array.
type SRAM struct {
	// CapacityBytes is the array size.
	CapacityBytes int
	// WordBytes is the access width.
	WordBytes int
	// Area is the footprint in m^2.
	Area float64
	// LeakagePower is the static power draw in watts.
	LeakagePower float64
	// baseAccessEnergy is the per-word dynamic access energy in
	// joules, calibrated at 7 nm.
	baseAccessEnergy float64
}

// Calibration constants for the 7 nm arrays. The access energies use
// the standard CACTI observation that dynamic energy grows roughly
// with the square root of capacity; the anchor is ~10 fJ/byte at 16 kB
// in 7 nm.
const (
	anchorCapacity = 16 << 10
	anchorEnergy   = 10 * units.Femto // J per byte at the anchor capacity
)

// New returns an SRAM with analytically scaled access energy.
func New(capacityBytes, wordBytes int, area, leakage float64) SRAM {
	if capacityBytes <= 0 || wordBytes <= 0 {
		panic(fmt.Sprintf("memory: invalid SRAM geometry %d/%d", capacityBytes, wordBytes)) //lint:ignore exit-hygiene SRAM geometry invariant; caller bug
	}
	perByte := anchorEnergy * math.Sqrt(float64(capacityBytes)/float64(anchorCapacity))
	return SRAM{
		CapacityBytes:    capacityBytes,
		WordBytes:        wordBytes,
		Area:             area,
		LeakagePower:     leakage,
		baseAccessEnergy: perByte * float64(wordBytes),
	}
}

// GlobalBuffer returns the paper's 256 kB global buffer
// (0.59 x 0.34 mm^2, 7 nm).
func GlobalBuffer() SRAM {
	return New(256<<10, 8, 0.59*units.Milli*0.34*units.Milli, 0.02)
}

// KernelCache returns one 16 kB PLCG kernel cache
// (0.092 x 0.085 mm^2).
func KernelCache() SRAM {
	return New(16<<10, 4, 0.092*units.Milli*0.085*units.Milli, 0.0011)
}

// AccessEnergy returns the dynamic energy of one word access in
// joules.
func (s SRAM) AccessEnergy() float64 { return s.baseAccessEnergy }

// ReadEnergy returns the energy to read n bytes.
func (s SRAM) ReadEnergy(n int) float64 {
	words := (n + s.WordBytes - 1) / s.WordBytes
	return float64(words) * s.baseAccessEnergy
}

// WriteEnergy returns the energy to write n bytes. Writes cost ~1.2x
// reads in small arrays (bitline swing on both rails).
func (s SRAM) WriteEnergy(n int) float64 {
	return 1.2 * s.ReadEnergy(n)
}

// Bandwidth returns the sustained bandwidth in bytes/second at the
// given clock.
func (s SRAM) Bandwidth(clockHz float64) float64 {
	return float64(s.WordBytes) * clockHz
}

// String implements fmt.Stringer.
func (s SRAM) String() string {
	return fmt.Sprintf("sram{%d kB, %d B/word, %.3f mm^2}",
		s.CapacityBytes>>10, s.WordBytes, s.Area*units.Mega)
}

// LayerTraffic estimates the SRAM energy of one convolution layer's
// data movement: each input element is read once per kernel pass (the
// broadcast amortizes it across PLCGs), kernel weights are read once
// per cache fill, and each output activation is written once - the
// "no partial sum writes" property of the PLCG's stationary
// accumulation (Section III-B).
type LayerTraffic struct {
	// InputReads, WeightReads, OutputWrites are byte counts.
	InputReads, WeightReads, OutputWrites int64
}

// Energy returns the total SRAM energy for the traffic, with inputs
// and outputs hitting the global buffer and weights the kernel caches.
func (t LayerTraffic) Energy() float64 {
	gb := GlobalBuffer()
	kc := KernelCache()
	return gb.ReadEnergy(int(t.InputReads)) +
		kc.ReadEnergy(int(t.WeightReads)) +
		gb.WriteEnergy(int(t.OutputWrites))
}
