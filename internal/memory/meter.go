package memory

import (
	"albireo/internal/obs"
)

// Metric names emitted by metered SRAM arrays and caches. The array
// label distinguishes the global buffer from the per-PLCG kernel
// caches.
const (
	// MetricSRAMReadBytes and MetricSRAMWriteBytes count bytes moved
	// (label array="global-buffer"|"kernel-cache"|...).
	MetricSRAMReadBytes  = "albireo_sram_read_bytes_total"
	MetricSRAMWriteBytes = "albireo_sram_write_bytes_total"
	// MetricSRAMAccesses counts word-granular array activations.
	MetricSRAMAccesses = "albireo_sram_accesses_total"
	// MetricSRAMEnergy accumulates dynamic access energy in joules
	// (gauge: it carries a physical level, not an event count).
	MetricSRAMEnergy = "albireo_sram_energy_joules"
	// MetricCacheHits and MetricCacheMisses count line-granular cache
	// outcomes (label cache="...").
	MetricCacheHits   = "albireo_cache_hits_total"
	MetricCacheMisses = "albireo_cache_misses_total"
)

// Meter wraps an SRAM array with observability counters. A Meter is
// always usable: constructed against a nil registry its instruments
// are inert and it degrades to plain energy arithmetic, so callers
// never branch on whether telemetry is attached. All counts are
// event-denominated (bytes, word accesses) - never wall time.
type Meter struct {
	sram     SRAM
	reads    *obs.Counter
	writes   *obs.Counter
	accesses *obs.Counter
	energy   *obs.Gauge
}

// Meter returns a metered view of the array registering its counters
// under the given array label.
func (s SRAM) Meter(reg *obs.Registry, array string) *Meter {
	lbl := obs.L("array", array)
	return &Meter{
		sram:     s,
		reads:    reg.Counter(MetricSRAMReadBytes, lbl),
		writes:   reg.Counter(MetricSRAMWriteBytes, lbl),
		accesses: reg.Counter(MetricSRAMAccesses, lbl),
		energy:   reg.Gauge(MetricSRAMEnergy, lbl),
	}
}

// SRAM returns the underlying array.
func (m *Meter) SRAM() SRAM { return m.sram }

func (m *Meter) words(n int) int64 {
	return int64((n + m.sram.WordBytes - 1) / m.sram.WordBytes)
}

// Read accounts an n-byte read and returns its dynamic energy.
func (m *Meter) Read(n int) float64 {
	if n <= 0 {
		return 0
	}
	m.reads.Add(int64(n))
	m.accesses.Add(m.words(n))
	e := m.sram.ReadEnergy(n)
	m.energy.Add(e)
	return e
}

// Write accounts an n-byte write and returns its dynamic energy.
func (m *Meter) Write(n int) float64 {
	if n <= 0 {
		return 0
	}
	m.writes.Add(int64(n))
	m.accesses.Add(m.words(n))
	e := m.sram.WriteEnergy(n)
	m.energy.Add(e)
	return e
}

// Cache is a direct-mapped tag simulator over an SRAM array. It
// models hit/miss behaviour only (the data path is the functional
// chip); the dataflow simulator replays representative address
// streams through it to measure kernel-cache locality instead of
// assuming it.
type Cache struct {
	sram      SRAM
	lineBytes int
	tags      []int64

	nhits, nmisses int64
	hits, misses   *obs.Counter
}

// NewCache builds a direct-mapped cache over s with the given line
// size, registering hit/miss counters under the cache label. A nil
// registry yields inert counters; local totals still accumulate.
func NewCache(s SRAM, lineBytes int, reg *obs.Registry, name string) *Cache {
	if lineBytes <= 0 || s.CapacityBytes < lineBytes {
		panic("memory: cache line must be positive and fit the array") //lint:ignore exit-hygiene cache geometry invariant; caller bug
	}
	lines := s.CapacityBytes / lineBytes
	tags := make([]int64, lines)
	for i := range tags {
		tags[i] = -1
	}
	lbl := obs.L("cache", name)
	return &Cache{
		sram:      s,
		lineBytes: lineBytes,
		tags:      tags,
		hits:      reg.Counter(MetricCacheHits, lbl),
		misses:    reg.Counter(MetricCacheMisses, lbl),
	}
}

// Access touches the byte address and reports whether it hit.
func (c *Cache) Access(addr int64) bool {
	line := addr / int64(c.lineBytes)
	set := line % int64(len(c.tags))
	if set < 0 {
		set += int64(len(c.tags))
	}
	if c.tags[set] == line {
		c.nhits++
		c.hits.Add(1)
		return true
	}
	c.tags[set] = line
	c.nmisses++
	c.misses.Add(1)
	return false
}

// AccessRange touches every line covering [addr, addr+n) and returns
// the number of hits.
func (c *Cache) AccessRange(addr int64, n int) (hits int64) {
	if n <= 0 {
		return 0
	}
	first := addr / int64(c.lineBytes)
	last := (addr + int64(n) - 1) / int64(c.lineBytes)
	for line := first; line <= last; line++ {
		if c.Access(line * int64(c.lineBytes)) {
			hits++
		}
	}
	return hits
}

// Account adds pre-computed hit/miss totals - used to extrapolate
// from a simulated representative stream to the full schedule without
// replaying every repetition.
func (c *Cache) Account(hits, misses int64) {
	if hits > 0 {
		c.nhits += hits
		c.hits.Add(hits)
	}
	if misses > 0 {
		c.nmisses += misses
		c.misses.Add(misses)
	}
}

// Hits returns the accumulated hit count.
func (c *Cache) Hits() int64 { return c.nhits }

// Misses returns the accumulated miss count.
func (c *Cache) Misses() int64 { return c.nmisses }

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }
