package memory

import (
	"testing"

	"albireo/internal/obs"
)

func TestMeterCountsAndEnergy(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	gb := GlobalBuffer()
	m := gb.Meter(reg, "global-buffer")

	er := m.Read(100)
	ew := m.Write(40)
	if er != gb.ReadEnergy(100) || ew != gb.WriteEnergy(40) {
		t.Fatal("metered energy must equal the unmetered model")
	}
	s := reg.Snapshot()
	if s.Counters[MetricSRAMReadBytes+`{array="global-buffer"}`] != 100 {
		t.Fatalf("read bytes wrong: %v", s.Counters)
	}
	if s.Counters[MetricSRAMWriteBytes+`{array="global-buffer"}`] != 40 {
		t.Fatalf("write bytes wrong: %v", s.Counters)
	}
	// 100 B over 8 B words = 13 reads; 40 B = 5 writes.
	if s.Counters[MetricSRAMAccesses+`{array="global-buffer"}`] != 18 {
		t.Fatalf("access count wrong: %v", s.Counters)
	}
	wantE := gb.ReadEnergy(100) + gb.WriteEnergy(40)
	if got := s.Gauges[MetricSRAMEnergy+`{array="global-buffer"}`]; got != wantE {
		t.Fatalf("energy gauge = %g, want %g", got, wantE)
	}
}

func TestMeterNilRegistryInert(t *testing.T) {
	t.Parallel()
	m := KernelCache().Meter(nil, "kernel-cache")
	if e := m.Read(64); e != KernelCache().ReadEnergy(64) {
		t.Fatal("unregistered meter must still price energy")
	}
	if m.Read(0) != 0 || m.Write(-5) != 0 {
		t.Fatal("non-positive sizes must be free no-ops")
	}
}

func TestCacheDirectMapped(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	c := NewCache(New(256, 4, 0, 0), 16, reg, "toy") // 16 lines of 16 B

	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(8) {
		t.Fatal("same line must hit")
	}
	// 256 bytes ahead maps to the same set: conflict eviction.
	if c.Access(256) {
		t.Fatal("conflicting line must miss")
	}
	if c.Access(0) {
		t.Fatal("evicted line must miss on return")
	}
	if c.Hits() != 1 || c.Misses() != 3 {
		t.Fatalf("hits/misses = %d/%d, want 1/3", c.Hits(), c.Misses())
	}
	s := reg.Snapshot()
	if s.Counters[MetricCacheHits+`{cache="toy"}`] != 1 ||
		s.Counters[MetricCacheMisses+`{cache="toy"}`] != 3 {
		t.Fatalf("registry disagrees with cache: %v", s.Counters)
	}
}

func TestCacheAccessRangeAndAccount(t *testing.T) {
	t.Parallel()
	c := NewCache(New(256, 4, 0, 0), 16, nil, "toy")
	if hits := c.AccessRange(0, 33); hits != 0 {
		t.Fatalf("cold 3-line range should miss everywhere, hit %d", hits)
	}
	if c.Misses() != 3 {
		t.Fatalf("range over 33 B at 16 B lines must touch 3 lines, got %d", c.Misses())
	}
	if hits := c.AccessRange(0, 33); hits != 3 {
		t.Fatalf("warm range should hit 3 lines, hit %d", hits)
	}
	c.Account(10, 20)
	if c.Hits() != 13 || c.Misses() != 23 {
		t.Fatalf("account totals wrong: %d/%d", c.Hits(), c.Misses())
	}
	if c.AccessRange(0, 0) != 0 {
		t.Fatal("empty range must be a no-op")
	}
	if c.LineBytes() != 16 {
		t.Fatalf("line bytes = %d", c.LineBytes())
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("line larger than array must panic")
		}
	}()
	NewCache(New(16, 4, 0, 0), 64, nil, "bad")
}
