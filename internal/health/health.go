// Package health implements a built-in self-test (BIST) for the
// Albireo analog fabric. Analog photonic compute fails silently: a
// stuck modulator or a detuned switching ring just skews every dot
// product it touches, and nothing in the datapath raises an error. The
// BIST engine closes that gap by driving deterministic probe vectors
// through each PLCU, comparing the observed photocurrents against the
// closed-form healthy response, and localizing any deviation to an
// exact (group, unit, tap, column) coordinate with a fault
// classification. Findings feed the chip's quarantine scheduler
// (core.Chip.Quarantine), which remaps work around the bad unit - the
// detect -> localize -> quarantine -> degrade-gracefully loop.
//
// Probe design. A probe lights exactly one tap at a known level and
// exactly one PD column at activation 1; every other input is dark.
// With a single lit column there is no crosstalk contribution (the
// leakage terms multiply dark columns), so the healthy response of the
// probed column is exactly the DAC-quantized probe weight:
//
//	Dot(probe)[col] = ringGain(tap, col) * QuantizeWeight(level)
//
// Each (tap, column) is probed at two levels. Normalizing by the
// quantized level separates the fault classes:
//
//   - a healthy ring reads ~1 at both levels;
//   - a DeadRing reads ~0 at both levels;
//   - a DetunedRing reads its residual coupling, equal at both levels;
//   - a StuckMZM reads the same *absolute* response at both levels, so
//     its normalized low-level response is ~2x its high-level one - the
//     level-independence signature that distinguishes a stuck modulator
//     from a ring fault.
//
// Probes are averaged over Options.Repeats cycles to ride out the
// shot/RIN/thermal noise of the receiver model; thresholds below are
// calibrated against the default noise configuration. Probing drives
// the real unit, so it advances the unit's modulation-cycle count and
// noise stream exactly as real work would - a drifting fault observed
// mid-decay is reported at its current severity.
package health

import (
	"encoding/json"
	"errors"
	"fmt"

	"albireo/internal/core"
	"albireo/internal/obs"
)

// Metric names emitted by the BIST engine.
const (
	// MetricProbes counts probe cycles driven through PLCUs.
	MetricProbes = "albireo_bist_probes_total"
	// MetricScans counts completed chip scans.
	MetricScans = "albireo_bist_scans_total"
	// MetricFaultsDetected counts localized faults by classification
	// (label kind="stuck-mzm"|"dead-ring"|"detuned-ring").
	MetricFaultsDetected = "albireo_bist_faults_detected_total"
)

// Options tunes the probe schedule and classification thresholds.
type Options struct {
	// LevelHigh and LevelLow are the two probe weight amplitudes. They
	// must be distinct so stuck modulators are separable from ring
	// faults; the defaults probe at full scale and half scale.
	LevelHigh, LevelLow float64
	// Repeats averages each (tap, column, level) probe over this many
	// modulation cycles to suppress receiver noise.
	Repeats int
	// DeadThreshold is the normalized response at or below which a ring
	// is classified dead.
	DeadThreshold float64
	// HealthyTolerance is the allowed |response - 1| of a normalized
	// high-level probe before a ring is classified detuned.
	HealthyTolerance float64
	// StuckRatioTolerance is the allowed deviation of the low/high
	// normalized response ratio from the stuck-modulator signature
	// (QuantizeWeight(high)/QuantizeWeight(low)) before the
	// level-independence test rejects the stuck classification.
	StuckRatioTolerance float64
}

// DefaultOptions returns thresholds calibrated for the default noise
// configuration: 16-cycle averaging puts the probe noise floor well
// under the 0.12/0.2 decision margins.
func DefaultOptions() Options {
	return Options{
		LevelHigh:           1.0,
		LevelLow:            0.5,
		Repeats:             16,
		DeadThreshold:       0.12,
		HealthyTolerance:    0.2,
		StuckRatioTolerance: 0.25,
	}
}

// Finding is one localized fault: the exact device coordinate, the
// classified defect kind, and the estimated transfer parameter.
type Finding struct {
	Unit core.UnitRef `json:"unit"`
	// Kind is the classified defect.
	Kind core.FaultKind `json:"-"`
	// KindName is Kind's display name (serialized form).
	KindName string `json:"kind"`
	// Tap is the MZM position (0..Nm-1).
	Tap int `json:"tap"`
	// Column is the PD column for ring faults; -1 for stuck modulators
	// (a stuck MZM skews every column on its tap).
	Column int `json:"column"`
	// Value estimates the defect parameter: the stuck transfer for
	// StuckMZM, the residual coupling for DetunedRing, 0 for DeadRing.
	Value float64 `json:"value"`
}

// String implements fmt.Stringer.
func (f Finding) String() string {
	if f.Column < 0 {
		return fmt.Sprintf("%s@%s tap=%d v=%.2f", f.Kind, f.Unit, f.Tap, f.Value)
	}
	return fmt.Sprintf("%s@%s tap=%d col=%d v=%.2f", f.Kind, f.Unit, f.Tap, f.Column, f.Value)
}

// Report is the outcome of one full chip scan.
type Report struct {
	// UnitsChecked counts PLCUs probed (quarantined units are skipped -
	// they are already out of service).
	UnitsChecked int `json:"units_checked"`
	// Probes counts modulation cycles spent probing.
	Probes int64 `json:"probes"`
	// Findings lists localized faults in (group, unit, tap, column)
	// order.
	Findings []Finding `json:"findings"`
}

// Healthy reports whether the scan found a fully functional fabric.
func (r Report) Healthy() bool { return len(r.Findings) == 0 }

// FaultyUnits returns the distinct units with findings, in scan order.
func (r Report) FaultyUnits() []core.UnitRef {
	var out []core.UnitRef
	seen := map[core.UnitRef]bool{}
	for _, f := range r.Findings {
		if !seen[f.Unit] {
			seen[f.Unit] = true
			out = append(out, f.Unit)
		}
	}
	return out
}

// JSON renders the report as an indented JSON document.
func (r Report) JSON() ([]byte, error) {
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	return json.MarshalIndent(r, "", "  ")
}

// Engine drives BIST scans over one chip.
type Engine struct {
	chip *core.Chip
	opt  Options

	reg      *obs.Registry
	trace    *obs.Trace
	probes   *obs.Counter
	scans    *obs.Counter
	detected map[core.FaultKind]*obs.Counter
}

// New builds a BIST engine for the chip. Zero-valued options fall back
// to DefaultOptions field by field.
func New(chip *core.Chip, opt Options) *Engine {
	def := DefaultOptions()
	if opt.LevelHigh <= 0 {
		opt.LevelHigh = def.LevelHigh
	}
	if opt.LevelLow <= 0 {
		opt.LevelLow = def.LevelLow
	}
	if opt.Repeats <= 0 {
		opt.Repeats = def.Repeats
	}
	if opt.DeadThreshold <= 0 {
		opt.DeadThreshold = def.DeadThreshold
	}
	if opt.HealthyTolerance <= 0 {
		opt.HealthyTolerance = def.HealthyTolerance
	}
	if opt.StuckRatioTolerance <= 0 {
		opt.StuckRatioTolerance = def.StuckRatioTolerance
	}
	return &Engine{chip: chip, opt: opt}
}

// Instrument attaches an observability registry and/or trace. Either
// may be nil.
func (e *Engine) Instrument(reg *obs.Registry, trace *obs.Trace) {
	e.reg = reg
	e.trace = trace
	e.probes = reg.Counter(MetricProbes)
	e.scans = reg.Counter(MetricScans)
	e.detected = map[core.FaultKind]*obs.Counter{}
	for _, k := range []core.FaultKind{core.StuckMZM, core.DeadRing, core.DetunedRing} {
		e.detected[k] = reg.Counter(MetricFaultsDetected, obs.L("kind", k.String()))
	}
}

// Scan probes every in-service PLCU and returns the localized
// findings. Quarantined units are skipped.
func (e *Engine) Scan() Report {
	cfg := e.chip.Config()
	quarantined := map[core.UnitRef]bool{}
	for _, u := range e.chip.Quarantined() {
		quarantined[u] = true
	}
	sp := e.trace.StartSpan("bist/scan")
	var rep Report
	for gi, g := range e.chip.Groups() {
		for ui, unit := range g.Units() {
			ref := core.UnitRef{Group: gi, Unit: ui}
			if quarantined[ref] {
				continue
			}
			rep.UnitsChecked++
			findings, probes := e.scanUnit(cfg, ref, unit)
			rep.Probes += probes
			for _, f := range findings {
				rep.Findings = append(rep.Findings, f)
				if e.detected != nil {
					e.detected[f.Kind].Inc()
				}
				sp.Event(obs.FaultDetected, f.Kind.String(),
					obs.Int("plcg", int64(f.Unit.Group)),
					obs.Int("plcu", int64(f.Unit.Unit)),
					obs.Int("tap", int64(f.Tap)),
					obs.Int("column", int64(f.Column)),
					obs.String("value", fmt.Sprintf("%.3f", f.Value)))
			}
		}
	}
	e.scans.Inc()
	sp.End(obs.Int("units_checked", int64(rep.UnitsChecked)),
		obs.Int("findings", int64(len(rep.Findings))))
	return rep
}

// scanUnit probes one PLCU tap by tap and classifies deviations.
func (e *Engine) scanUnit(cfg core.Config, ref core.UnitRef, unit *core.PLCU) ([]Finding, int64) {
	weights := make([]float64, cfg.Nm)
	avals := make([][]float64, cfg.Nm)
	for t := range avals {
		avals[t] = make([]float64, cfg.Nd)
	}
	var probes int64

	// probe measures the normalized response of one (tap, column) at
	// one level, averaged over Repeats cycles.
	probe := func(tap, col int, level float64) float64 {
		weights[tap] = level
		avals[tap][col] = 1
		var sum float64
		for r := 0; r < e.opt.Repeats; r++ {
			sum += unit.Dot(weights, avals)[col]
			probes++
		}
		weights[tap] = 0
		avals[tap][col] = 0
		return sum / float64(e.opt.Repeats) / unit.QuantizeWeight(level)
	}

	var findings []Finding
	// stuckRatio is the low/high normalized response ratio a stuck
	// modulator produces: the absolute response is level-independent,
	// so dividing by the smaller quantized level inflates it.
	stuckRatio := unit.QuantizeWeight(e.opt.LevelHigh) / unit.QuantizeWeight(e.opt.LevelLow)
	for tap := 0; tap < cfg.Nm; tap++ {
		hi := make([]float64, cfg.Nd)
		lo := make([]float64, cfg.Nd)
		var hiSum, loSum float64
		lit := 0
		for col := 0; col < cfg.Nd; col++ {
			hi[col] = probe(tap, col, e.opt.LevelHigh)
			lo[col] = probe(tap, col, e.opt.LevelLow)
			if hi[col] > e.opt.DeadThreshold {
				lit++
				hiSum += hi[col]
				loSum += lo[col]
			}
		}
		if lit == 0 {
			// Nothing reaches any column: the shared modulator is stuck
			// dark (indistinguishable from - and equivalent to - every
			// ring on the tap being dead; one modulator beats Nd rings on
			// the single-defect prior).
			findings = append(findings, Finding{
				Unit: ref, Kind: core.StuckMZM, KindName: core.StuckMZM.String(),
				Tap: tap, Column: -1, Value: 0,
			})
			continue
		}
		ratio := loSum / hiSum
		if ratio > stuckRatio-e.opt.StuckRatioTolerance && ratio < stuckRatio+e.opt.StuckRatioTolerance {
			// Level-independent response across the lit columns: the tap's
			// modulator is stuck. Its transfer is the mean absolute
			// high-level response.
			findings = append(findings, Finding{
				Unit: ref, Kind: core.StuckMZM, KindName: core.StuckMZM.String(),
				Tap: tap, Column: -1,
				Value: clampUnit(hiSum / float64(lit) * unit.QuantizeWeight(e.opt.LevelHigh)),
			})
			continue
		}
		for col := 0; col < cfg.Nd; col++ {
			switch {
			case hi[col] <= e.opt.DeadThreshold:
				findings = append(findings, Finding{
					Unit: ref, Kind: core.DeadRing, KindName: core.DeadRing.String(),
					Tap: tap, Column: col, Value: 0,
				})
			case hi[col] < 1-e.opt.HealthyTolerance || hi[col] > 1+e.opt.HealthyTolerance:
				findings = append(findings, Finding{
					Unit: ref, Kind: core.DetunedRing, KindName: core.DetunedRing.String(),
					Tap: tap, Column: col, Value: clampUnit(hi[col]),
				})
			}
		}
	}
	if e.probes != nil {
		e.probes.Add(probes)
	}
	return findings, probes
}

// QuarantineFindings takes every unit named in the report's findings
// out of service via the chip's quarantine scheduler. It returns the
// units actually quarantined; units the scheduler refuses (already
// quarantined, or the last healthy unit on the chip) are reported in
// the joined error while the rest proceed - graceful degradation keeps
// as much of the chip serviceable as it safely can.
func (e *Engine) QuarantineFindings(rep Report) ([]core.UnitRef, error) {
	var done []core.UnitRef
	var errs []error
	for _, u := range rep.FaultyUnits() {
		if err := e.chip.Quarantine(u.Group, u.Unit); err != nil {
			errs = append(errs, err)
			continue
		}
		done = append(done, u)
	}
	return done, errors.Join(errs...)
}

// clampUnit clamps x into [0, 1] for reporting estimated transfers.
func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
