package health

import (
	"encoding/json"
	"math"
	"testing"

	"albireo/internal/core"
	"albireo/internal/inference"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

func TestHealthyScanIsClean(t *testing.T) {
	t.Parallel()
	// The default thresholds must ride out the default noise model: a
	// pristine chip scans clean, with every unit checked.
	chip := core.NewChip(core.DefaultConfig())
	rep := New(chip, Options{}).Scan()
	if !rep.Healthy() {
		t.Fatalf("healthy chip produced findings: %v", rep.Findings)
	}
	cfg := chip.Config()
	if rep.UnitsChecked != cfg.Ng*cfg.Nu {
		t.Errorf("checked %d units, want %d", rep.UnitsChecked, cfg.Ng*cfg.Nu)
	}
	if rep.Probes == 0 {
		t.Error("scan should count probe cycles")
	}
}

func TestLocalizeDeadRing(t *testing.T) {
	t.Parallel()
	chip := core.NewChip(core.DefaultConfig())
	chip.Groups()[1].Units()[2].InjectFault(core.Fault{Kind: core.DeadRing, Tap: 3, Column: 4})
	rep := New(chip, Options{}).Scan()
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly one finding, got %v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Unit != (core.UnitRef{Group: 1, Unit: 2}) || f.Kind != core.DeadRing || f.Tap != 3 || f.Column != 4 {
		t.Errorf("localization wrong: %v", f)
	}
}

func TestLocalizeDetunedRing(t *testing.T) {
	t.Parallel()
	chip := core.NewChip(core.DefaultConfig())
	chip.Groups()[4].Units()[0].InjectFault(core.Fault{Kind: core.DetunedRing, Tap: 7, Column: 1, Value: 0.5})
	rep := New(chip, Options{}).Scan()
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly one finding, got %v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Unit != (core.UnitRef{Group: 4, Unit: 0}) || f.Kind != core.DetunedRing || f.Tap != 7 || f.Column != 1 {
		t.Errorf("localization wrong: %v", f)
	}
	if math.Abs(f.Value-0.5) > 0.1 {
		t.Errorf("residual estimate %.3f, want ~0.5", f.Value)
	}
}

func TestLocalizeStuckMZM(t *testing.T) {
	t.Parallel()
	chip := core.NewChip(core.DefaultConfig())
	chip.Groups()[2].Units()[1].InjectFault(core.Fault{Kind: core.StuckMZM, Tap: 5, Value: 0.7})
	rep := New(chip, Options{}).Scan()
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly one finding, got %v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Unit != (core.UnitRef{Group: 2, Unit: 1}) || f.Kind != core.StuckMZM || f.Tap != 5 {
		t.Errorf("localization wrong: %v", f)
	}
	if f.Column != -1 {
		t.Errorf("stuck MZM column should be -1 (whole tap), got %d", f.Column)
	}
	if math.Abs(f.Value-0.7) > 0.1 {
		t.Errorf("stuck transfer estimate %.3f, want ~0.7", f.Value)
	}
}

func TestLocalizeStuckDarkMZM(t *testing.T) {
	t.Parallel()
	// A modulator stuck at zero darkens its whole tap: classified stuck
	// with transfer 0, not five independent dead rings.
	chip := core.NewChip(core.DefaultConfig())
	chip.Groups()[0].Units()[0].InjectFault(core.Fault{Kind: core.StuckMZM, Tap: 0, Value: 0})
	rep := New(chip, Options{}).Scan()
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly one finding, got %v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Kind != core.StuckMZM || f.Tap != 0 || f.Column != -1 || f.Value > 0.01 {
		t.Errorf("stuck-dark classification wrong: %v", f)
	}
}

func TestScanSkipsQuarantinedUnits(t *testing.T) {
	t.Parallel()
	chip := core.NewChip(core.DefaultConfig())
	chip.Groups()[0].Units()[0].InjectFault(core.Fault{Kind: core.DeadRing, Tap: 0, Column: 0})
	if err := chip.Quarantine(0, 0); err != nil {
		t.Fatal(err)
	}
	rep := New(chip, Options{}).Scan()
	if !rep.Healthy() {
		t.Errorf("quarantined unit should not be probed, got %v", rep.Findings)
	}
	cfg := chip.Config()
	if rep.UnitsChecked != cfg.Ng*cfg.Nu-1 {
		t.Errorf("checked %d units, want %d", rep.UnitsChecked, cfg.Ng*cfg.Nu-1)
	}
}

func TestQuarantineFindings(t *testing.T) {
	t.Parallel()
	chip := core.NewChip(core.DefaultConfig())
	chip.Groups()[3].Units()[2].InjectFault(core.Fault{Kind: core.DeadRing, Tap: 1, Column: 1})
	chip.Groups()[3].Units()[2].InjectFault(core.Fault{Kind: core.DeadRing, Tap: 2, Column: 2})
	chip.Groups()[5].Units()[0].InjectFault(core.Fault{Kind: core.StuckMZM, Tap: 8, Value: 1})
	eng := New(chip, Options{})
	rep := eng.Scan()
	done, err := eng.QuarantineFindings(rep)
	if err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	want := []core.UnitRef{{Group: 3, Unit: 2}, {Group: 5, Unit: 0}}
	if len(done) != len(want) || done[0] != want[0] || done[1] != want[1] {
		t.Errorf("quarantined %v, want %v", done, want)
	}
	if !chip.Degraded() {
		t.Error("chip should be degraded after quarantine")
	}
	// Re-quarantining the same findings is refused but not fatal.
	again, err := eng.QuarantineFindings(rep)
	if err == nil || len(again) != 0 {
		t.Error("double quarantine should surface scheduler refusals")
	}
}

func TestScanObservability(t *testing.T) {
	t.Parallel()
	chip := core.NewChip(core.DefaultConfig())
	chip.Groups()[1].Units()[1].InjectFault(core.Fault{Kind: core.DeadRing, Tap: 2, Column: 3})
	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	eng := New(chip, Options{})
	eng.Instrument(reg, trace)
	rep := eng.Scan()
	if len(rep.Findings) != 1 {
		t.Fatalf("findings: %v", rep.Findings)
	}
	snap := reg.Snapshot()
	if snap.SumCounters(MetricScans) != 1 {
		t.Error("scan counter")
	}
	if snap.SumCounters(MetricProbes) != rep.Probes {
		t.Error("probe counter should match the report's probe count")
	}
	if snap.SumCounters(MetricFaultsDetected) != 1 {
		t.Error("detection counter")
	}
	if trace.CountByKind()["fault-detected"] != 1 {
		t.Error("each finding should emit a fault-detected event")
	}
	// Report serializes for the CI health artifact.
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Findings) != 1 || back.Findings[0].KindName != "dead-ring" {
		t.Errorf("report round-trip: %s", raw)
	}
}

func TestUninstrumentedEngineWorks(t *testing.T) {
	t.Parallel()
	chip := core.NewChip(core.DefaultConfig())
	rep := New(chip, Options{}).Scan() // no Instrument call: all no-ops
	if !rep.Healthy() {
		t.Errorf("findings: %v", rep.Findings)
	}
}

// TestDriftDetectQuarantineRestore is the end-to-end graceful
// degradation story: switching rings on one PLCU drift off resonance
// as the chip runs, silently corrupting inference; a BIST scan
// localizes every drifted ring to its exact coordinate; quarantining
// the unit remaps its work onto the healthy fabric and restores
// end-to-end fidelity. Fully seeded and deterministic.
func TestDriftDetectQuarantineRestore(t *testing.T) {
	cfg := core.DefaultConfig()
	chip := core.NewChip(cfg)
	net := inference.TinyCNN(3, 16, 42)
	inputs := make([]*tensor.Volume, 8)
	for i := range inputs {
		inputs[i] = tensor.RandomVolume(3, 16, 16, 5000+int64(i))
	}

	// Rings on unit (0, 0) drift off resonance: columns 0..3 of every
	// tap decay from full coupling to dark over ~1000 modulation
	// cycles. Column 4 stays healthy so the tap's modulator is provably
	// fine (the level-independence test needs a live column).
	unit := chip.Groups()[0].Units()[0]
	type coord struct{ tap, col int }
	injected := map[coord]bool{}
	for tap := 0; tap < cfg.Nm; tap++ {
		for col := 0; col < cfg.Nd-1; col++ {
			unit.InjectFault(core.Fault{Kind: core.DetunedRing, Tap: tap, Column: col, Value: 1.0, Drift: 1e-3})
			injected[coord{tap, col}] = true
		}
	}

	// Run real work until the drift has fully matured.
	a := tensor.RandomVolume(3, 16, 16, 7)
	w := tensor.RandomKernels(9, 3, 3, 3, 8)
	for unit.Cycles() < 1500 {
		chip.Conv(a, w, tensor.ConvConfig{Pad: 1}, false)
	}

	analog := inference.Analog{Chip: chip}
	_, corrBad := inference.Agreement(net, inference.Exact{}, analog, inputs)

	eng := New(chip, Options{})
	rep := eng.Scan()
	found := map[coord]bool{}
	for _, f := range rep.Findings {
		if f.Unit != (core.UnitRef{Group: 0, Unit: 0}) {
			t.Fatalf("finding outside the drifting unit: %v", f)
		}
		if f.Column < 0 {
			t.Fatalf("drifted rings misclassified as a stuck modulator: %v", f)
		}
		if !injected[coord{f.Tap, f.Column}] {
			t.Fatalf("finding at a healthy coordinate: %v", f)
		}
		found[coord{f.Tap, f.Column}] = true
	}
	if len(found) != len(injected) {
		t.Fatalf("localized %d of %d drifted rings", len(found), len(injected))
	}

	done, err := eng.QuarantineFindings(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[0] != (core.UnitRef{Group: 0, Unit: 0}) {
		t.Fatalf("quarantined %v", done)
	}

	top1Ok, corrOk := inference.Agreement(net, inference.Exact{}, analog, inputs)
	if corrOk <= corrBad {
		t.Errorf("quarantine should restore fidelity: corr %.3f -> %.3f", corrBad, corrOk)
	}
	if corrOk < 0.9 {
		t.Errorf("restored logit correlation = %.3f, want >= 0.9", corrOk)
	}
	if top1Ok < 0.6 {
		t.Errorf("restored top-1 agreement = %.2f, want >= 0.6", top1Ok)
	}
}
