package circuit

import (
	"fmt"

	"albireo/internal/photonics"
	"albireo/internal/units"
)

// ChannelPlan allocates the distribution wavelengths of a PLCG across
// its PLCUs. Section III-B: "Each PLCU in the PLCG operates on a set
// of inputs that fall into a separate FSR" - the accumulation rings of
// PLCU u are resonant only inside window u, so signals destined for
// other PLCUs pass through untouched. The whole plan must fit inside
// the AWG's 70 nm free spectral range (Table II).
type ChannelPlan struct {
	// PerPLCU is the channel count inside each ring-FSR window (21).
	PerPLCU int
	// PLCUs is the window count (Nu = 3).
	PLCUs int
	// RingFSR is the window width (one ring free spectral range).
	RingFSR float64
	// AWGFSR is the distribution band the plan must fit (70 nm).
	AWGFSR float64
	// Center is the band center wavelength.
	Center float64
}

// NewChannelPlan builds the default plan for a configuration-shaped
// (perPLCU, nPLCU) allocation using the Table II ring and AWG.
func NewChannelPlan(perPLCU, plcus int) ChannelPlan {
	ring := photonics.NewMRR(1550 * units.Nano)
	awg := photonics.NewAWG()
	return ChannelPlan{
		PerPLCU: perPLCU,
		PLCUs:   plcus,
		RingFSR: ring.FSR(),
		AWGFSR:  awg.FSR,
		Center:  ring.ResonantWavelength,
	}
}

// TotalChannels returns PerPLCU * PLCUs (63 by default).
func (c ChannelPlan) TotalChannels() int { return c.PerPLCU * c.PLCUs }

// Span returns the wavelength extent of the full plan: PLCUs
// contiguous ring-FSR windows.
func (c ChannelPlan) Span() float64 { return float64(c.PLCUs) * c.RingFSR }

// Fits reports whether the plan fits inside the AWG FSR.
func (c ChannelPlan) Fits() bool { return c.Span() <= c.AWGFSR }

// Window returns the wavelength grid of PLCU u's channels.
func (c ChannelPlan) Window(u int) Grid {
	if u < 0 || u >= c.PLCUs {
		panic(fmt.Sprintf("circuit: window %d out of range", u)) //lint:ignore exit-hygiene window index is a validated invariant; caller bug
	}
	// Windows tile symmetrically around the band center.
	offset := (float64(u) - float64(c.PLCUs-1)/2) * c.RingFSR
	return Grid{Center: c.Center + offset, FSR: c.RingFSR, N: c.PerPLCU}
}

// AllWavelengths returns every channel of the plan in ascending order.
func (c ChannelPlan) AllWavelengths() []float64 {
	out := make([]float64, 0, c.TotalChannels())
	for u := 0; u < c.PLCUs; u++ {
		out = append(out, c.Window(u).Wavelengths()...)
	}
	return out
}

// InterUnitIsolation returns the worst leakage (linear fraction) of
// any other window's channel into a ring tuned within window u.
//
// Ring responses are FSR-periodic and the windows tile at exactly one
// ring FSR, so a foreign channel aliases *directly onto* the
// corresponding local resonance - rings alone provide no inter-window
// isolation. The architecture's actual mechanism is spatial: the AWG
// demultiplexes every wavelength onto its own waveguide toward its own
// PLCU, so foreign channels reach unit u only through AWG crosstalk
// (Table II: -34 dB). The worst leakage is therefore the AWG crosstalk
// times the (aliased, near-unity) ring response.
func (c ChannelPlan) InterUnitIsolation(u int) float64 {
	local := c.Window(u)
	ring := photonics.NewMRR(local.Center)
	awgXT := units.DBToLinear(photonics.NewAWG().CrosstalkDB)
	worst := 0.0
	for v := 0; v < c.PLCUs; v++ {
		if v == u {
			continue
		}
		for _, lambda := range c.Window(v).Wavelengths() {
			for i := 0; i < local.N; i++ {
				r := ring
				r.ResonantWavelength = local.Wavelength(i)
				if t := awgXT * r.DropTransfer(lambda); t > worst {
					worst = t
				}
			}
		}
	}
	return worst
}

// String implements fmt.Stringer.
func (c ChannelPlan) String() string {
	return fmt.Sprintf("plan{%dx%d ch, span %.1f nm of %.0f nm AWG FSR}",
		c.PLCUs, c.PerPLCU, c.Span()/units.Nano, c.AWGFSR/units.Nano)
}
