package circuit

import (
	"math"

	"albireo/internal/noise"
	"albireo/internal/photonics"
	"albireo/internal/units"
)

// CrosstalkAnalysis quantifies how much power an accumulation MRR
// tuned to one grid channel leaks in from the other channels - the
// dominant precision limit of the architecture (Section II-C.2).
type CrosstalkAnalysis struct {
	// Ring is the accumulator ring design under analysis.
	Ring photonics.MRR
	// Grid is the WDM channel plan sharing the ring's FSR.
	Grid Grid
}

// NewCrosstalkAnalysis builds the analysis for a ring with the given
// k^2 and an n-channel grid inside its FSR.
func NewCrosstalkAnalysis(k2 float64, n int) CrosstalkAnalysis {
	ring := photonics.NewMRRWithK2(1550*units.Nano, k2)
	return CrosstalkAnalysis{Ring: ring, Grid: NewGrid(ring, n)}
}

// WorstChannelCrosstalk returns the largest total crosstalk fraction
// over all channel positions: for a ring tuned to channel i, the sum of
// its drop transfer at every other channel's wavelength, normalized by
// its on-resonance drop transfer. Interior channels see neighbors on
// both sides and are the worst case.
func (c CrosstalkAnalysis) WorstChannelCrosstalk() float64 {
	worst := 0.0
	for i := 0; i < c.Grid.N; i++ {
		if x := c.ChannelCrosstalk(i); x > worst {
			worst = x
		}
	}
	return worst
}

// ChannelCrosstalk returns the total crosstalk fraction for a ring
// tuned to channel i: sum over j != i of Tdrop(lambda_j) / Tdrop(lambda_i).
func (c CrosstalkAnalysis) ChannelCrosstalk(i int) float64 {
	ring := c.Ring
	ring.ResonantWavelength = c.Grid.Wavelength(i)
	peak := ring.DropTransfer(ring.ResonantWavelength)
	if peak <= 0 {
		return math.Inf(1)
	}
	var sum float64
	for j := 0; j < c.Grid.N; j++ {
		if j == i {
			continue
		}
		sum += ring.DropTransfer(c.Grid.Wavelength(j))
	}
	return sum / peak
}

// SeparableLevels returns the number of distinguishable output
// amplitudes the crosstalk permits. Interfering channels carry
// uniformly distributed operands, so their average leakage sits at
// mid-scale and perturbs the output by up to +-X/2 of a full-scale
// signal; levels must be spaced wider than that:
//
//	L = 2 / X_worst
//
// This calibration reproduces the paper's Figure 4c anchors: k^2 = 0.03
// supports ~6 bits (positive-only) at 20 wavelengths and k^2 = 0.02
// supports 8 bits at small channel counts.
func (c CrosstalkAnalysis) SeparableLevels() float64 {
	x := c.WorstChannelCrosstalk()
	if x <= 0 {
		return math.Inf(1)
	}
	lv := 2 / x
	if lv < 1 {
		return 1
	}
	return lv
}

// PrecisionBits returns log2 of the crosstalk-limited level count for
// single-ended (positive-only) accumulation.
func (c CrosstalkAnalysis) PrecisionBits() float64 {
	return units.Log2(c.SeparableLevels())
}

// DifferentialPrecisionBits returns the precision with the balanced
// positive/negative waveguide pair of Eq. 4. The paper (Section II-C.2)
// credits differential accumulation with about one extra bit: the
// value range doubles without adding wavelengths to the FSR, at the
// cost of some additional crosstalk from the second ring set, modeled
// here as a doubling of the interferer population's residual leakage.
func (c CrosstalkAnalysis) DifferentialPrecisionBits() float64 {
	return c.PrecisionBits() + 1
}

// SystemPrecision combines the crosstalk limit with the noise limit of
// internal/noise at the given per-channel photocurrent: the system
// supports only as many levels as the tighter of the two constraints.
func (c CrosstalkAnalysis) SystemPrecision(np noise.Params, iPer float64, differential bool) float64 {
	xBits := c.PrecisionBits()
	if differential {
		xBits = c.DifferentialPrecisionBits()
	}
	nBits := np.PrecisionBits(iPer, c.Grid.N)
	return math.Min(xBits, nBits)
}

// CrosstalkMatrix returns the full N x N leakage matrix: entry [i][j]
// is the fraction of channel j's power that a ring tuned to channel i
// couples to its drop port (diagonal entries are the normalized peak,
// 1.0). The functional simulator uses this to corrupt accumulated dot
// products realistically.
func (c CrosstalkAnalysis) CrosstalkMatrix() [][]float64 {
	m := make([][]float64, c.Grid.N)
	for i := range m {
		ring := c.Ring
		ring.ResonantWavelength = c.Grid.Wavelength(i)
		peak := ring.DropTransfer(ring.ResonantWavelength)
		row := make([]float64, c.Grid.N)
		for j := range row {
			if i == j {
				row[j] = 1
				continue
			}
			if peak > 0 {
				row[j] = ring.DropTransfer(c.Grid.Wavelength(j)) / peak
			}
		}
		m[i] = row
	}
	return m
}
