package circuit

import (
	"math"

	"albireo/internal/photonics"
	"albireo/internal/units"
)

// TemporalResponse simulates the drop-port power envelope of an MRR
// driven by a modulated input, the analysis behind Figure 4b. The ring
// cavity integrates energy with the photon lifetime, so narrow (low
// k^2) rings blur fast symbols: "a signal will undergo considerable
// loss if the MRR modulation frequency is too high".
//
// The drop-port power envelope is modeled as a first-order low-pass
// with the cavity time constant tau = 1/(pi * df_FWHM) - the standard
// coupled-mode-theory result for the energy buildup of a ring driven
// at resonance.
type TemporalResponse struct {
	// Ring is the device under test.
	Ring photonics.MRR
	// SymbolRate is the OOK modulation rate in hertz (5 GHz in the
	// paper's conservative/moderate designs).
	SymbolRate float64
	// SamplesPerSymbol controls simulation resolution.
	SamplesPerSymbol int
}

// NewTemporalResponse builds the Figure 4b experiment for a ring of
// the given k^2 at the given symbol rate.
func NewTemporalResponse(k2, symbolRate float64) TemporalResponse {
	return TemporalResponse{
		Ring:             photonics.NewMRRWithK2(1550*units.Nano, k2),
		SymbolRate:       symbolRate,
		SamplesPerSymbol: 64,
	}
}

// StepResponse returns the drop-port power envelope over the given
// duration after the input switches from 0 to full scale at t = 0,
// sampled at dt intervals. The steady-state value is the ring's
// on-resonance drop transfer.
func (tr TemporalResponse) StepResponse(duration, dt float64) []float64 {
	tau := tr.Ring.PhotonLifetime()
	peak := tr.Ring.DropTransfer(tr.Ring.ResonantWavelength)
	n := int(duration/dt) + 1
	out := make([]float64, n)
	for i := range out {
		t := float64(i) * dt
		out[i] = peak * (1 - math.Exp(-t/tau))
	}
	return out
}

// Drive runs an OOK symbol sequence (each entry 0 or 1, or any
// amplitude in [0,1]) through the ring and returns the drop-port power
// envelope with SamplesPerSymbol samples per symbol. The first-order
// filter state carries across symbol boundaries, producing the
// intersymbol interference visible in Figure 4b.
func (tr TemporalResponse) Drive(symbols []float64) []float64 {
	if tr.SymbolRate <= 0 || tr.SamplesPerSymbol <= 0 {
		return nil
	}
	tau := tr.Ring.PhotonLifetime()
	peak := tr.Ring.DropTransfer(tr.Ring.ResonantWavelength)
	dt := 1 / tr.SymbolRate / float64(tr.SamplesPerSymbol)
	alpha := 1 - math.Exp(-dt/tau)
	out := make([]float64, 0, len(symbols)*tr.SamplesPerSymbol)
	state := 0.0
	for _, s := range symbols {
		target := peak * s
		for k := 0; k < tr.SamplesPerSymbol; k++ {
			state += alpha * (target - state)
			out = append(out, state)
		}
	}
	return out
}

// EyeOpening drives an alternating 1-0-1-0... pattern (the worst-case
// ISI stress) and returns the normalized eye opening: the difference
// between the minimum sampled "1" level and the maximum sampled "0"
// level at symbol centers, divided by the ideal swing. 1.0 is a
// perfect eye; values near 0 mean the ring cannot keep up with the
// symbol rate (the k^2 = 0.02 failure in Figure 4b).
func (tr TemporalResponse) EyeOpening() float64 {
	const nsym = 32
	symbols := make([]float64, nsym)
	for i := range symbols {
		symbols[i] = float64(i % 2)
	}
	trace := tr.Drive(symbols)
	peak := tr.Ring.DropTransfer(tr.Ring.ResonantWavelength)
	if peak <= 0 {
		return 0
	}
	minOne, maxZero := math.Inf(1), math.Inf(-1)
	// Skip the first few symbols to reach steady-state ISI; sample at
	// symbol centers.
	for i := 4; i < nsym; i++ {
		v := trace[i*tr.SamplesPerSymbol+tr.SamplesPerSymbol/2]
		if i%2 == 1 { // a "1" symbol
			if v < minOne {
				minOne = v
			}
		} else {
			if v > maxZero {
				maxZero = v
			}
		}
	}
	eye := (minOne - maxZero) / peak
	if eye < 0 {
		return 0
	}
	return eye
}

// SettledFraction returns the fraction of the steady-state drop power
// reached within a single symbol period - the "temporal consequences
// for decreasing k^2" of Section II-C.2.
func (tr TemporalResponse) SettledFraction() float64 {
	tau := tr.Ring.PhotonLifetime()
	return 1 - math.Exp(-1/(tr.SymbolRate*tau))
}
