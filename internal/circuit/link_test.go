package circuit

import (
	"math"
	"testing"

	"albireo/internal/units"
)

func TestLinkDelivery(t *testing.T) {
	t.Parallel()
	l := NewLink(9, 63, 2e-3)
	powers := l.DeliveredPowers()
	if len(powers) != 63 {
		t.Fatalf("expected 63 channels, got %d", len(powers))
	}
	for i, p := range powers {
		if p <= 0 {
			t.Fatalf("channel %d delivers no power", i)
		}
	}
}

func TestLinkBudgetAgainstScalarPath(t *testing.T) {
	t.Parallel()
	// The channel-resolved link should land within ~2 dB of the scalar
	// AlbireoSignalPath budget (the scalar model adds a waveguide
	// routing allowance the link omits; AWG leakage adds power back).
	l := NewLink(9, 63, 2e-3)
	b := l.Analyze()
	scalar := AlbireoSignalPath(9, 3).TotalDB()
	if math.Abs(b.EndToEndLossDB-scalar) > 4 {
		t.Errorf("link loss %.1f dB too far from scalar budget %.1f dB", b.EndToEndLossDB, scalar)
	}
}

func TestLinkChannelSpreadSmall(t *testing.T) {
	t.Parallel()
	// All channels see nearly identical paths; the only spread comes
	// from AWG edge channels missing one leakage neighbor. It must be
	// well under 1 dB.
	b := NewLink(9, 63, 2e-3).Analyze()
	if b.SpreadDB < 0 || b.SpreadDB > 1 {
		t.Errorf("channel spread %.3f dB outside [0, 1]", b.SpreadDB)
	}
	if b.BestPower < b.WorstPower {
		t.Error("best must be >= worst")
	}
}

func TestLinkScalesWithBroadcast(t *testing.T) {
	t.Parallel()
	// Tripling the PLCG fan-out costs broadcast splits: a 27-group
	// link delivers less per channel.
	b9 := NewLink(9, 63, 2e-3).Analyze()
	b27 := NewLink(27, 63, 2e-3).Analyze()
	if b27.WorstPower >= b9.WorstPower {
		t.Error("wider broadcast must deliver less per channel")
	}
	// 9 -> 27 groups needs one more Y-branch level (16 -> 32 way):
	// ~3.3 dB extra.
	extra := b9.EndToEndLossDB - b27.EndToEndLossDB
	if math.Abs(extra+3.3) > 0.5 {
		t.Errorf("27-group link should cost ~3.3 dB more, got %.2f", -extra)
	}
}

func TestLinkTotalLaserPower(t *testing.T) {
	t.Parallel()
	b := NewLink(9, 63, 2e-3).Analyze()
	if math.Abs(b.TotalLaserPower-126e-3) > 1e-9 {
		t.Errorf("63 lasers at 2 mW should launch 126 mW, got %g", b.TotalLaserPower)
	}
}

func TestLinkWorstCurrentUsableForNoise(t *testing.T) {
	t.Parallel()
	// The worst-channel photocurrent should sit in the uA range where
	// the Figure 3 analysis operates.
	b := NewLink(9, 63, 2e-3).Analyze()
	if b.WorstCurrent < 0.1e-6 || b.WorstCurrent > 100e-6 {
		t.Errorf("worst current %.3g A outside the expected range", b.WorstCurrent)
	}
	if b.String() == "" {
		t.Error("String")
	}
}

func TestLinkDegenerate(t *testing.T) {
	t.Parallel()
	l := NewLink(9, 0, 2e-3)
	if got := l.DeliveredPowers(); got != nil {
		t.Error("zero-channel link should return nil")
	}
	if (Budget{}) != l.Analyze() {
		t.Error("zero-channel budget should be zero")
	}
	_ = units.Nano
}
