// Package circuit composes the device models of internal/photonics
// into the WDM subsystems of the Albireo architecture: channel grids
// within a ring FSR, the crosstalk analysis of an MRR accumulator
// column (paper Figure 4c), the time-domain response of a modulated
// ring (Figure 4b), and optical path loss budgets.
//
// Together with internal/noise this package replaces the "crosstalk,
// noise, scattering, and temporal analysis from Lumerical
// INTERCONNECT" the paper relies on (Section IV-A).
package circuit

import (
	"fmt"

	"albireo/internal/photonics"
	"albireo/internal/units"
)

// Grid is a set of equally spaced WDM channels packed into one ring
// free spectral range. All of a PLCU's wavelengths must fit inside the
// FSR of its accumulation rings (Section II-C.2).
type Grid struct {
	// Center is the band center wavelength in meters.
	Center float64
	// FSR is the free spectral range being filled, in meters.
	FSR float64
	// N is the number of channels.
	N int
}

// NewGrid builds a channel grid of n channels inside the FSR of the
// given reference ring, centered on the ring's resonance.
func NewGrid(ring photonics.MRR, n int) Grid {
	return Grid{Center: ring.ResonantWavelength, FSR: ring.FSR(), N: n}
}

// Spacing returns the channel pitch FSR/N in meters. A grid with no
// channels has zero spacing.
func (g Grid) Spacing() float64 {
	if g.N <= 0 {
		return 0
	}
	return g.FSR / float64(g.N)
}

// Wavelength returns the wavelength of channel i (0-based). Channels
// are laid out symmetrically around the center.
func (g Grid) Wavelength(i int) float64 {
	return g.Center + (float64(i)-float64(g.N-1)/2)*g.Spacing()
}

// Wavelengths returns all channel wavelengths in ascending order.
func (g Grid) Wavelengths() []float64 {
	out := make([]float64, g.N)
	for i := range out {
		out[i] = g.Wavelength(i)
	}
	return out
}

// String implements fmt.Stringer.
func (g Grid) String() string {
	return fmt.Sprintf("grid{%d ch, %.2f nm pitch}", g.N, g.Spacing()/units.Nano)
}
