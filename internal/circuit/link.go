package circuit

import (
	"fmt"
	"math"

	"albireo/internal/photonics"
	"albireo/internal/units"
)

// Link simulates the complete WDM distribution of the Albireo chip
// for all channels at once: laser bank -> signal-generation modulators
// -> Y-branch broadcast to Ng PLCGs -> AWG demux (with adjacent-channel
// leakage) -> star-coupler multicast -> weight MZM -> switching-ring
// drop. It reports the per-channel power delivered to a PLCU
// photodiode, the spread across channels, and the resulting worst-case
// photocurrent for the noise analysis - a channel-resolved refinement
// of the scalar AlbireoSignalPath budget.
type Link struct {
	// Ng is the PLCG broadcast fan-out; Wx the star-coupler output
	// count.
	Ng, Wx int
	// LaserPower is the per-wavelength launch power in watts.
	LaserPower float64
	// Grid is the channel plan.
	Grid Grid
	// AWG is the demultiplexer.
	AWG photonics.AWG
}

// NewLink builds the default 9-PLCG, 63-channel link at 2 mW per
// laser.
func NewLink(ng int, channels int, laserPower float64) Link {
	ring := photonics.NewMRR(1550 * units.Nano)
	return Link{
		Ng:         ng,
		Wx:         3,
		LaserPower: laserPower,
		Grid:       NewGrid(ring, channels),
		AWG:        photonics.NewAWG(),
	}
}

// DeliveredPowers returns the optical power each channel delivers to a
// PLCU photodiode, including AWG adjacent-channel leakage (which adds
// a small amount of foreign power to each channel).
func (l Link) DeliveredPowers() []float64 {
	n := l.Grid.N
	if n == 0 {
		return nil
	}
	y := photonics.NewYBranch()
	star := photonics.NewStarCoupler(l.Grid.N/l.Wx+l.Wx-1, l.Wx)
	mzm := photonics.NewMZM()
	ring := photonics.NewMRR(l.Grid.Center)

	// Stage 1: modulation (signal-generation ring insertion loss) at
	// full scale.
	launch := make([]float64, n)
	modIL := units.LossDBToTransmission(0.39)
	for i := range launch {
		launch[i] = l.LaserPower * modIL
	}
	// Stage 2: broadcast tree to Ng PLCGs.
	for i := range launch {
		launch[i] = y.BroadcastTree(launch[i], l.Ng)
	}
	// Stage 3: AWG demux with neighbor leakage.
	launch = l.AWG.Demux(launch)
	// Stage 4: star-coupler multicast, weight MZM at w=1, switching
	// ring drop at its own resonance.
	dropIL := ring.DropTransfer(ring.ResonantWavelength)
	for i := range launch {
		launch[i] = star.PerOutputPower(launch[i])
		launch[i] = mzm.Multiply(launch[i], 1)
		launch[i] *= dropIL
	}
	return launch
}

// Budget summarizes the link.
type Budget struct {
	// WorstPower and BestPower bound the per-channel delivery.
	WorstPower, BestPower float64
	// SpreadDB is the best/worst imbalance.
	SpreadDB float64
	// WorstCurrent is the photocurrent of the worst channel at the
	// Table II responsivity.
	WorstCurrent float64
	// TotalLaserPower is the wall-plug optical launch power.
	TotalLaserPower float64
	// EndToEndLossDB is the worst-channel loss.
	EndToEndLossDB float64
}

// Analyze computes the link budget.
func (l Link) Analyze() Budget {
	powers := l.DeliveredPowers()
	if len(powers) == 0 {
		return Budget{}
	}
	worst, best := math.Inf(1), math.Inf(-1)
	for _, p := range powers {
		if p < worst {
			worst = p
		}
		if p > best {
			best = p
		}
	}
	pd := photonics.NewPhotodiode()
	return Budget{
		WorstPower:      worst,
		BestPower:       best,
		SpreadDB:        units.LinearToDB(best / worst),
		WorstCurrent:    pd.Responsivity * worst,
		TotalLaserPower: l.LaserPower * float64(l.Grid.N),
		EndToEndLossDB:  units.LinearToDB(l.LaserPower / worst),
	}
}

// String implements fmt.Stringer.
func (b Budget) String() string {
	return fmt.Sprintf("link{worst %.2f uW, spread %.2f dB, loss %.1f dB}",
		b.WorstPower*units.Mega, b.SpreadDB, b.EndToEndLossDB)
}
