package circuit

import (
	"math"
	"testing"

	"albireo/internal/noise"
	"albireo/internal/photonics"
	"albireo/internal/units"
)

func TestGridLayout(t *testing.T) {
	t.Parallel()
	ring := photonics.NewMRR(1550 * units.Nano)
	g := NewGrid(ring, 21)
	if g.N != 21 {
		t.Fatal("grid channel count")
	}
	// Pitch is FSR/N.
	if math.Abs(g.Spacing()-ring.FSR()/21) > 1e-18 {
		t.Error("spacing should be FSR/N")
	}
	// Symmetric around the center: middle channel of an odd grid sits
	// exactly at the center wavelength.
	if math.Abs(g.Wavelength(10)-g.Center) > 1e-18 {
		t.Error("odd grid should center its middle channel")
	}
	ws := g.Wavelengths()
	if len(ws) != 21 {
		t.Fatal("wavelength list length")
	}
	for i := 1; i < len(ws); i++ {
		if math.Abs((ws[i]-ws[i-1])-g.Spacing()) > 1e-18 {
			t.Error("grid must be equally spaced")
		}
	}
	// All channels fit inside one FSR.
	if ws[len(ws)-1]-ws[0] >= g.FSR {
		t.Error("grid span must stay within the FSR")
	}
}

func TestGridDegenerate(t *testing.T) {
	t.Parallel()
	g := Grid{Center: 1550e-9, FSR: 16e-9, N: 0}
	if g.Spacing() != 0 || len(g.Wavelengths()) != 0 {
		t.Error("empty grid should be harmless")
	}
}

func TestCrosstalkDecreasesWithK2(t *testing.T) {
	t.Parallel()
	// Figure 4a/4c: lower k^2 narrows the resonance and reduces
	// crosstalk at fixed channel count.
	x03 := NewCrosstalkAnalysis(0.03, 20).WorstChannelCrosstalk()
	x02 := NewCrosstalkAnalysis(0.02, 20).WorstChannelCrosstalk()
	x05 := NewCrosstalkAnalysis(0.05, 20).WorstChannelCrosstalk()
	if !(x02 < x03 && x03 < x05) {
		t.Errorf("crosstalk ordering wrong: k2=0.02 %g, 0.03 %g, 0.05 %g", x02, x03, x05)
	}
}

func TestCrosstalkGrowsWithChannels(t *testing.T) {
	t.Parallel()
	prev := 0.0
	for _, n := range []int{5, 10, 20, 40} {
		x := NewCrosstalkAnalysis(0.03, n).WorstChannelCrosstalk()
		if x <= prev {
			t.Errorf("crosstalk should grow with channel density at n=%d", n)
		}
		prev = x
	}
}

func TestFig4cAnchors(t *testing.T) {
	t.Parallel()
	// Paper Section II-C.2 anchors:
	// "For around 20 wavelengths, k2=0.03 can support 6 bits ...
	// positive accumulation [only]".
	b := NewCrosstalkAnalysis(0.03, 20).PrecisionBits()
	if b < 5.5 || b > 7.0 {
		t.Errorf("k2=0.03 @ 20 channels: %.2f bits, want ~6", b)
	}
	// "7 bits is the worst case precision for k2=0.03 with 20
	// wavelengths" with differential accumulation.
	d := NewCrosstalkAnalysis(0.03, 20).DifferentialPrecisionBits()
	if d < 6.5 || d > 8.0 {
		t.Errorf("differential k2=0.03 @ 20: %.2f bits, want ~7", d)
	}
	// "both k2=0.02 and k2=0.03 can support 8 bits of precision for a
	// small number of wavelengths".
	if b8 := NewCrosstalkAnalysis(0.03, 8).PrecisionBits(); b8 < 8 {
		t.Errorf("k2=0.03 @ 8 channels: %.2f bits, want >= 8", b8)
	}
	if b8 := NewCrosstalkAnalysis(0.02, 8).PrecisionBits(); b8 < 8 {
		t.Errorf("k2=0.02 @ 8 channels: %.2f bits, want >= 8", b8)
	}
}

func TestCrosstalkMatrixProperties(t *testing.T) {
	t.Parallel()
	c := NewCrosstalkAnalysis(0.03, 9)
	m := c.CrosstalkMatrix()
	if len(m) != 9 {
		t.Fatal("matrix dimension")
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Error("diagonal should be unity (normalized peak)")
		}
		for j := range m[i] {
			if i == j {
				continue
			}
			if m[i][j] <= 0 || m[i][j] >= 0.5 {
				t.Errorf("off-diagonal leakage [%d][%d] = %g out of range", i, j, m[i][j])
			}
		}
	}
	// Row crosstalk sums must match ChannelCrosstalk.
	var sum float64
	for j := range m[4] {
		if j != 4 {
			sum += m[4][j]
		}
	}
	if math.Abs(sum-c.ChannelCrosstalk(4)) > 1e-12 {
		t.Error("matrix row inconsistent with ChannelCrosstalk")
	}
}

func TestSystemPrecisionTakesMinimum(t *testing.T) {
	t.Parallel()
	c := NewCrosstalkAnalysis(0.03, 20)
	np := noise.DefaultParams()
	// Plenty of optical power: crosstalk limited.
	rich := c.SystemPrecision(np, 1e-3, false)
	if math.Abs(rich-c.PrecisionBits()) > 1e-9 {
		t.Error("high power should be crosstalk limited")
	}
	// Starved: noise limited, below the crosstalk bound.
	poor := c.SystemPrecision(np, 1e-9, false)
	if poor >= c.PrecisionBits() {
		t.Error("low power should be noise limited")
	}
	// Differential buys a bit when crosstalk limited.
	diff := c.SystemPrecision(np, 1e-3, true)
	if math.Abs(diff-rich-1) > 1e-9 {
		t.Error("differential should add one bit in the crosstalk limit")
	}
}

func TestTemporalRiseTimeOrdering(t *testing.T) {
	t.Parallel()
	// Figure 4b: lower k^2 means a slower ring.
	fast := NewTemporalResponse(0.05, 5e9)
	mid := NewTemporalResponse(0.03, 5e9)
	slow := NewTemporalResponse(0.02, 5e9)
	if !(slow.Ring.PhotonLifetime() > mid.Ring.PhotonLifetime() &&
		mid.Ring.PhotonLifetime() > fast.Ring.PhotonLifetime()) {
		t.Error("photon lifetime should grow as k^2 shrinks")
	}
	if !(slow.SettledFraction() < mid.SettledFraction()) {
		t.Error("k2=0.02 should settle less within a symbol than k2=0.03")
	}
}

func TestTemporalStepResponse(t *testing.T) {
	t.Parallel()
	tr := NewTemporalResponse(0.03, 5e9)
	dt := 1e-12
	step := tr.StepResponse(500e-12, dt)
	if step[0] != 0 {
		t.Error("step response must start at zero")
	}
	peak := tr.Ring.DropTransfer(tr.Ring.ResonantWavelength)
	last := step[len(step)-1]
	if math.Abs(last-peak) > 0.01*peak {
		t.Errorf("step response should settle to the drop peak: %g vs %g", last, peak)
	}
	// Monotone rise.
	for i := 1; i < len(step); i++ {
		if step[i] < step[i-1] {
			t.Fatal("step response must be monotone")
		}
	}
	// At t = tau the response is 1 - 1/e of the peak.
	tau := tr.Ring.PhotonLifetime()
	idx := int(tau / dt)
	want := peak * (1 - math.Exp(-1))
	if math.Abs(step[idx]-want) > 0.05*peak {
		t.Errorf("response at tau = %g, want %g", step[idx], want)
	}
}

func TestEyeOpeningDegradesWithRate(t *testing.T) {
	t.Parallel()
	// Both rings are comfortable at 5 GHz; pushing the symbol rate
	// closes the k2=0.02 eye first - the Figure 4b trade-off.
	for _, rate := range []float64{5e9, 20e9, 40e9} {
		e02 := NewTemporalResponse(0.02, rate).EyeOpening()
		e03 := NewTemporalResponse(0.03, rate).EyeOpening()
		if e02 > e03+1e-9 {
			t.Errorf("k2=0.02 eye (%.3f) should not beat k2=0.03 (%.3f) at %g GHz", e02, e03, rate/1e9)
		}
	}
	slow := NewTemporalResponse(0.02, 60e9).EyeOpening()
	fast := NewTemporalResponse(0.02, 5e9).EyeOpening()
	if slow >= fast {
		t.Error("eye must close as the symbol rate rises")
	}
}

func TestDriveEnvelope(t *testing.T) {
	t.Parallel()
	tr := NewTemporalResponse(0.03, 5e9)
	trace := tr.Drive([]float64{1, 1, 0, 0})
	if len(trace) != 4*tr.SamplesPerSymbol {
		t.Fatal("trace length")
	}
	peak := tr.Ring.DropTransfer(tr.Ring.ResonantWavelength)
	// End of the double-1 period is near peak; end of the double-0 is
	// near zero.
	if v := trace[2*tr.SamplesPerSymbol-1]; math.Abs(v-peak) > 0.05*peak {
		t.Errorf("after two 1-symbols envelope = %g, want ~%g", v, peak)
	}
	if v := trace[len(trace)-1]; v > 0.05*peak {
		t.Errorf("after two 0-symbols envelope = %g, want ~0", v)
	}
	// Degenerate configurations return nil.
	bad := tr
	bad.SymbolRate = 0
	if bad.Drive([]float64{1}) != nil {
		t.Error("zero symbol rate should return nil")
	}
}

func TestPathLossComposition(t *testing.T) {
	t.Parallel()
	p := NewPathLoss().AddDB(3).AddDB(2)
	if math.Abs(p.TotalDB()-5) > 1e-12 {
		t.Error("dB stages should add")
	}
	p.AddSplit(4)
	wantDB := 5 + 10*math.Log10(4)
	if math.Abs(p.TotalDB()-wantDB) > 1e-9 {
		t.Error("splits should add their dB equivalent")
	}
	if math.Abs(p.Deliver(1)-units.DBToLinear(-wantDB)) > 1e-12 {
		t.Error("delivered power inconsistent with total dB")
	}
	// Split of 1 or less is a no-op.
	q := NewPathLoss().AddSplit(1).AddSplit(0)
	if q.Transmission() != 1 {
		t.Error("degenerate splits should not attenuate")
	}
}

func TestAlbireoSignalPathBudget(t *testing.T) {
	t.Parallel()
	p := AlbireoSignalPath(9, 3)
	db := p.TotalDB()
	// The end-to-end budget should land in the high-teens to low-20s
	// dB: 0.39 + 4*0.3 + 12.04(split 16) + 2 + 1.3 + 4.77(split 3)
	// + 1.2 + 0.39 + 3 = ~26 dB.
	if db < 20 || db > 30 {
		t.Errorf("signal path budget %.1f dB outside the expected window", db)
	}
	// A single-PLCG chip avoids broadcast splitting and must be
	// substantially cheaper.
	single := AlbireoSignalPath(1, 3)
	if single.TotalDB() >= db-10 {
		t.Error("single-group path should save the broadcast split")
	}
}
