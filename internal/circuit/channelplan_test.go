package circuit

import (
	"math"
	"testing"

	"albireo/internal/units"
)

func TestDefaultPlanFitsAWG(t *testing.T) {
	t.Parallel()
	// 3 PLCUs x one 16.3 nm ring FSR each = ~49 nm, inside the 70 nm
	// AWG FSR - the allocation Section III-B relies on.
	p := NewChannelPlan(21, 3)
	if !p.Fits() {
		t.Errorf("default plan (span %.1f nm) must fit the 70 nm AWG FSR", p.Span()/units.Nano)
	}
	if p.TotalChannels() != 63 {
		t.Errorf("total channels = %d, want 63", p.TotalChannels())
	}
	// 5 windows would not fit.
	if NewChannelPlan(21, 5).Fits() {
		t.Error("5 ring-FSR windows exceed the AWG FSR")
	}
}

func TestWindowsAreDisjoint(t *testing.T) {
	t.Parallel()
	p := NewChannelPlan(21, 3)
	ws := p.AllWavelengths()
	if len(ws) != 63 {
		t.Fatal("wavelength count")
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatalf("wavelengths must ascend across windows at %d", i)
		}
	}
	// Adjacent windows are exactly one ring FSR apart at their
	// centers.
	d := p.Window(1).Center - p.Window(0).Center
	if math.Abs(d-p.RingFSR) > 1e-15 {
		t.Error("windows should tile at the ring FSR")
	}
}

func TestWindowBounds(t *testing.T) {
	t.Parallel()
	p := NewChannelPlan(21, 3)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range window should panic")
		}
	}()
	p.Window(3)
}

func TestInterUnitIsolation(t *testing.T) {
	t.Parallel()
	// Foreign windows alias exactly onto local resonances (the
	// windows tile at one ring FSR), so the isolation comes from the
	// AWG's spatial routing: worst leakage = AWG crosstalk (-34 dB)
	// times a near-unity aliased ring response, i.e. a few times 1e-4.
	p := NewChannelPlan(21, 3)
	iso := p.InterUnitIsolation(1)
	if iso < 1e-5 || iso > 1e-3 {
		t.Errorf("inter-unit leakage %.3g outside the AWG-crosstalk window", iso)
	}
}

func TestPlanString(t *testing.T) {
	t.Parallel()
	if NewChannelPlan(21, 3).String() == "" {
		t.Error("String")
	}
}
