package circuit

import (
	"albireo/internal/units"
)

// PathLoss composes the insertion losses along an optical route into a
// single transmission factor. It is used to budget the power a
// wavelength delivers from its laser to a PLCU photodiode, which sets
// the photocurrent entering the noise analysis.
type PathLoss struct {
	stagesDB []float64
	splits   float64 // accumulated power division factor (>= 1)
}

// NewPathLoss returns an empty (lossless) path.
func NewPathLoss() *PathLoss {
	return &PathLoss{splits: 1}
}

// AddDB appends an insertion-loss stage in dB.
func (p *PathLoss) AddDB(db float64) *PathLoss {
	p.stagesDB = append(p.stagesDB, db)
	return p
}

// AddSplit appends an ideal 1:n power split (in addition to any excess
// loss added separately).
func (p *PathLoss) AddSplit(n int) *PathLoss {
	if n > 1 {
		p.splits *= float64(n)
	}
	return p
}

// TotalDB returns the total path loss in dB including splits.
func (p *PathLoss) TotalDB() float64 {
	var sum float64
	for _, s := range p.stagesDB {
		sum += s
	}
	return sum + units.LinearToDB(p.splits)
}

// Transmission returns the end-to-end power transmission fraction.
func (p *PathLoss) Transmission() float64 {
	t := 1.0 / p.splits
	for _, s := range p.stagesDB {
		t *= units.LossDBToTransmission(s)
	}
	return t
}

// Deliver returns the power arriving at the end of the path for the
// given launch power.
func (p *PathLoss) Deliver(launch float64) float64 {
	return launch * p.Transmission()
}

// AlbireoSignalPath returns the loss budget of one input wavelength
// from its signal-generation modulator to a PLCU accumulation
// photodiode, following the Section III dataflow: modulation MRR ->
// broadcast tree to Ng PLCGs (Y-branches) -> AWG demux -> star coupler
// multicast (1:Wx) -> weight MZM -> switching MRR drop -> on-chip
// waveguide runs.
func AlbireoSignalPath(ng, wx int) *PathLoss {
	p := NewPathLoss()
	p.AddDB(0.39) // signal-generation MRR insertion (Table II ring loss)
	// Broadcast tree: ceil(log2(ng)) Y-branch levels, each 3 dB split
	// plus 0.3 dB excess.
	levels := 0
	for c := 1; c < ng; c *= 2 {
		levels++
	}
	for i := 0; i < levels; i++ {
		p.AddDB(0.3)
		p.AddSplit(2)
	}
	p.AddDB(2.0)     // AWG insertion
	p.AddDB(1.3)     // star coupler excess
	p.AddSplit(wx)   // star coupler physical broadcast to Wx outputs
	p.AddDB(1.2)     // weight MZM insertion
	p.AddDB(0.39)    // switching MRR drop insertion
	p.AddDB(1.5 * 2) // ~2 cm of straight waveguide routing at 1.5 dB/cm
	return p
}
