package perf

import (
	"math"
	"testing"

	"albireo/internal/core"
	"albireo/internal/device"
	"albireo/internal/nn"
)

func TestEvaluateVGG16TableIV(t *testing.T) {
	// Table IV, VGG16 / Albireo-C: 2.55 ms, 58.1 mJ, 148.2 mJ*ms,
	// 48.8 GOPS/mm^2, 2.14 GOPS/W/mm^2.
	r := Evaluate(core.DefaultConfig(), nn.VGG16())
	if r.Latency < 2.2e-3 || r.Latency > 3.0e-3 {
		t.Errorf("latency = %.3f ms, want ~2.55", r.Latency*1e3)
	}
	if r.Energy < 50e-3 || r.Energy > 70e-3 {
		t.Errorf("energy = %.1f mJ, want ~58", r.Energy*1e3)
	}
	wantEDP := r.Energy * r.Latency
	if math.Abs(r.EDP-wantEDP) > 1e-12 {
		t.Error("EDP must be energy * latency")
	}
	if g := r.GOPSPerMM2(); g < 40 || g < 0 || g > 60 {
		t.Errorf("GOPS/mm^2 = %.1f, want ~48.8", g)
	}
	if g := r.GOPSPerWattPerMM2(); g < 1.7 || g > 2.6 {
		t.Errorf("GOPS/W/mm^2 = %.2f, want ~2.14", g)
	}
	// Active-area metric is ~431 GOPS/mm^2.
	if g := r.GOPSPerMM2Active(); g < 330 || g > 530 {
		t.Errorf("active GOPS/mm^2 = %.0f, want ~431", g)
	}
}

func TestEvaluateAlexNetTableIV(t *testing.T) {
	// Table IV, AlexNet / Albireo-C: 0.13 ms, 2.90 mJ, 0.37 mJ*ms,
	// 44.7 GOPS/mm^2.
	r := Evaluate(core.DefaultConfig(), nn.AlexNet())
	if r.Latency < 0.10e-3 || r.Latency > 0.18e-3 {
		t.Errorf("latency = %.3f ms, want ~0.13", r.Latency*1e3)
	}
	if r.Energy < 2.2e-3 || r.Energy > 4.2e-3 {
		t.Errorf("energy = %.2f mJ, want ~2.9", r.Energy*1e3)
	}
	if g := r.GOPSPerMM2(); g < 35 || g > 55 {
		t.Errorf("GOPS/mm^2 = %.1f, want ~44.7", g)
	}
}

func TestEstimateOrdering(t *testing.T) {
	// Across C -> M -> A, energy and EDP must fall monotonically for
	// every benchmark; latency falls at A (8 GHz).
	for _, m := range nn.Benchmarks() {
		cc, cm, ca := core.DefaultConfig(), core.DefaultConfig(), core.DefaultConfig()
		cm.Estimate = device.Moderate
		ca.Estimate = device.Aggressive
		rc, rm, ra := Evaluate(cc, m), Evaluate(cm, m), Evaluate(ca, m)
		if !(rc.Energy > rm.Energy && rm.Energy > ra.Energy) {
			t.Errorf("%s: energy should fall C>M>A: %g %g %g", m.Name, rc.Energy, rm.Energy, ra.Energy)
		}
		if !(rc.EDP > rm.EDP && rm.EDP > ra.EDP) {
			t.Errorf("%s: EDP should fall C>M>A", m.Name)
		}
		if rc.Latency != rm.Latency {
			t.Errorf("%s: C and M share the 5 GHz rate", m.Name)
		}
		if ra.Latency >= rc.Latency {
			t.Errorf("%s: A at 8 GHz must be faster", m.Name)
		}
	}
}

func TestMAEstimatesMatchTableIV(t *testing.T) {
	// Table IV: VGG16 Albireo-M energy 15.7 mJ, Albireo-A 2.56 mJ and
	// 1.60 ms.
	cm, ca := core.DefaultConfig(), core.DefaultConfig()
	cm.Estimate = device.Moderate
	ca.Estimate = device.Aggressive
	rm := Evaluate(cm, nn.VGG16())
	ra := Evaluate(ca, nn.VGG16())
	if rm.Energy < 13e-3 || rm.Energy > 19e-3 {
		t.Errorf("Albireo-M VGG16 energy = %.1f mJ, want ~15.7", rm.Energy*1e3)
	}
	if ra.Latency < 1.4e-3 || ra.Latency > 1.9e-3 {
		t.Errorf("Albireo-A VGG16 latency = %.2f ms, want ~1.60", ra.Latency*1e3)
	}
	if ra.Energy < 2.0e-3 || ra.Energy > 3.2e-3 {
		t.Errorf("Albireo-A VGG16 energy = %.2f mJ, want ~2.56", ra.Energy*1e3)
	}
}

func TestEvaluateAll(t *testing.T) {
	rs := EvaluateAll(core.DefaultConfig())
	if len(rs) != 4 {
		t.Fatal("should evaluate all four benchmarks")
	}
	names := map[string]bool{}
	for _, r := range rs {
		names[r.Model] = true
		if r.Latency <= 0 || r.Energy <= 0 || r.Power <= 0 {
			t.Errorf("%s: non-positive metrics", r.Model)
		}
		if r.String() == "" {
			t.Error("result String")
		}
	}
	for _, want := range []string{"AlexNet", "VGG16", "ResNet18", "MobileNet"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestEvaluateLayers(t *testing.T) {
	lrs := EvaluateLayers(core.DefaultConfig(), nn.VGG16())
	if len(lrs) != 16 {
		t.Fatalf("VGG16 per-layer analysis should have 16 rows, got %d", len(lrs))
	}
	var totalLat float64
	for _, lr := range lrs {
		if lr.Cycles <= 0 || lr.Latency <= 0 || lr.Energy <= 0 {
			t.Errorf("%s: non-positive layer metrics", lr.Layer.Name)
		}
		totalLat += lr.Latency
	}
	full := Evaluate(core.DefaultConfig(), nn.VGG16())
	if math.Abs(totalLat-full.Latency)/full.Latency > 1e-9 {
		t.Error("per-layer latencies must sum to the model latency")
	}
}

func TestResultDegenerateMetrics(t *testing.T) {
	var r Result
	if r.GOPS() != 0 || r.GOPSPerMM2() != 0 || r.GOPSPerWattPerMM2() != 0 ||
		r.GOPSPerMM2Active() != 0 || r.GOPSPerWattPerMM2Active() != 0 {
		t.Error("zero result should yield zero rates, not NaN")
	}
}
