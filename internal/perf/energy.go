package perf

import (
	"albireo/internal/core"
	"albireo/internal/device"
	"albireo/internal/nn"
	"albireo/internal/sim"
)

// EnergyBreakdown refines the paper's flat energy accounting
// (chip power x latency) with two corrections a deployed chip would
// apply:
//
//   - power gating: a layer whose final kernel pass fills only part of
//     the Ng PLCGs (or whose depthwise schedule idles units) does not
//     draw the idle groups' MRR/MZM/TIA/ADC power; and
//   - data movement: SRAM traffic energy from the dataflow simulator is
//     added explicitly (the paper buries it in the 0.03 W cache row).
//
// The flat model remains the reproduction target for Table IV; this
// model bounds how much it overestimates.
type EnergyBreakdown struct {
	Model string
	// Flat is the paper-style energy: total chip power x latency.
	Flat float64
	// Gated is the energy with idle PLCGs power-gated per layer.
	Gated float64
	// SRAM is the explicit data-movement energy (depth-first
	// dataflow).
	SRAM float64
	// Latency is the inference latency (unchanged by gating).
	Latency float64
}

// Total returns the refined energy: gated compute plus data movement.
func (e EnergyBreakdown) Total() float64 { return e.Gated + e.SRAM }

// Savings returns the fraction of flat energy the refinement removes
// (negative if traffic outweighs gating).
func (e EnergyBreakdown) Savings() float64 {
	if e.Flat <= 0 {
		return 0
	}
	return 1 - e.Total()/e.Flat
}

// perGroupPower returns the power of one PLCG's private devices (its
// share of the gateable chip power) and the shared floor that stays on
// regardless of activity (lasers, signal-generation modulators and
// their DACs, global cache).
func perGroupPower(cfg core.Config, e device.Estimate) (group, floor float64) {
	p := device.Powers(e)
	c := NewCensus(cfg)
	perPLCU := float64(2*cfg.Nm*cfg.Nd)*p.MRR + float64(cfg.Nm)*(p.MZM+p.DAC)
	group = float64(cfg.Nu)*perPLCU + float64(cfg.Nd)*(p.TIA+p.ADC)
	floor = float64(c.Lasers)*p.Laser +
		float64(c.SignalGenMods)*(p.MZM+p.DAC) +
		device.Memory().CachePower
	return group, floor
}

// EvaluateEnergy computes the refined breakdown for one network.
func EvaluateEnergy(cfg core.Config, model nn.Model) EnergyBreakdown {
	census := NewCensus(cfg)
	flatPower := census.Power(cfg.Estimate).Total()
	rate := cfg.ModulationRate()
	group, floor := perGroupPower(cfg, cfg.Estimate)

	var flat, gated, latency float64
	for _, l := range model.Layers {
		if !l.HasMACs() {
			continue
		}
		m := cfg.MapLayer(l)
		t := float64(m.Cycles) / rate
		latency += t
		flat += flatPower * t

		// Average active PLCGs over the layer's kernel passes: full
		// passes use all Ng, the last uses OutZ mod Ng (conv/FC) or
		// the channel remainder (depthwise).
		var active float64
		switch l.Kind {
		case nn.Depthwise:
			lanes := cfg.Ng * cfg.Nu
			full := l.InZ / lanes
			rem := l.InZ % lanes
			passes := full
			if rem > 0 {
				passes++
			}
			activeLanes := float64(full*lanes) + float64(rem)
			if passes > 0 {
				// Convert lane occupancy back to group granularity.
				active = activeLanes / float64(passes) / float64(cfg.Nu)
			}
		default:
			full := l.OutZ / cfg.Ng
			rem := l.OutZ % cfg.Ng
			passes := full
			if rem > 0 {
				passes++
			}
			if passes > 0 {
				active = float64(full*cfg.Ng+rem) / float64(passes)
			}
		}
		if active <= 0 || active > float64(cfg.Ng) {
			active = float64(cfg.Ng)
		}
		gated += (floor + group*active) * t
	}

	p := sim.DefaultParams()
	p.Config = cfg
	traffic := sim.SimulateModel(p, model)

	return EnergyBreakdown{
		Model:   model.Name,
		Flat:    flat,
		Gated:   gated,
		SRAM:    traffic.SRAMEnergy,
		Latency: latency,
	}
}
