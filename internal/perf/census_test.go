package perf

import (
	"math"
	"testing"

	"albireo/internal/core"
	"albireo/internal/device"
)

func TestCensusMatchesPaperCounts(t *testing.T) {
	c := NewCensus(core.DefaultConfig())
	// Section V: "Albireo uses only 306 DACs" and "45 TIAs".
	if c.DACs != 306 {
		t.Errorf("DACs = %d, want 306", c.DACs)
	}
	if c.TIAs != 45 {
		t.Errorf("TIAs = %d, want 45", c.TIAs)
	}
	if c.ADCs != 45 {
		t.Errorf("ADCs = %d, want 45", c.ADCs)
	}
	// 2 * 9 * 5 switching rings per PLCU x 27 PLCUs.
	if c.SwitchingMRRs != 2430 {
		t.Errorf("switching MRRs = %d, want 2430", c.SwitchingMRRs)
	}
	if c.WeightMZMs != 243 {
		t.Errorf("weight MZMs = %d, want 243", c.WeightMZMs)
	}
	if c.Lasers != 63 || c.SignalGenMods != 63 {
		t.Errorf("lasers/siggen = %d/%d, want 63/63", c.Lasers, c.SignalGenMods)
	}
	// 3 star couplers per PLCU x 27; 9 AWGs.
	if c.StarCouplers != 81 {
		t.Errorf("star couplers = %d, want 81", c.StarCouplers)
	}
	if c.AWGs != 9 || c.KernelCaches != 9 {
		t.Error("per-PLCG device counts")
	}
	if c.Photodiodes != 270 {
		t.Errorf("photodiodes = %d, want 270", c.Photodiodes)
	}
}

func TestPowerBreakdownTableIII(t *testing.T) {
	// Table III, Albireo-C column: MRR 7.52, MZI 3.45, Laser 2.36,
	// TIA 0.14, DAC 7.93, ADC 1.31, Cache 0.03, Total 22.7 W.
	c := NewCensus(core.DefaultConfig())
	p := c.Power(device.Conservative)
	check := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("Albireo-C %s power = %.3f W, want %.2f W", name, got, want)
		}
	}
	check("MRR", p.MRR, 7.52, 0.05)
	check("MZI", p.MZM, 3.45, 0.05)
	check("Laser", p.Laser, 2.36, 0.05)
	check("TIA", p.TIA, 0.14, 0.01)
	check("DAC", p.DAC, 7.93, 0.05)
	check("ADC", p.ADC, 1.31, 0.01)
	check("Cache", p.Cache, 0.03, 0.001)
	check("Total", p.Total(), 22.7, 0.15)
}

func TestPowerBreakdownModerate(t *testing.T) {
	// Table III, Albireo-M: MRR 0.94, MZI 0.43, Laser 0.09, TIA 0.07,
	// DAC 3.98, ADC 0.65, Total 6.19 W.
	p := NewCensus(core.DefaultConfig()).Power(device.Moderate)
	if math.Abs(p.MRR-0.94) > 0.01 || math.Abs(p.MZM-0.43) > 0.01 {
		t.Errorf("moderate optical power mismatch: MRR %.3f MZI %.3f", p.MRR, p.MZM)
	}
	if math.Abs(p.DAC-3.98) > 0.01 || math.Abs(p.ADC-0.65) > 0.01 {
		t.Errorf("moderate converter power mismatch: DAC %.3f ADC %.3f", p.DAC, p.ADC)
	}
	if math.Abs(p.Total()-6.19) > 0.1 {
		t.Errorf("Albireo-M total = %.3f W, want 6.19 W", p.Total())
	}
}

func TestPowerBreakdownAggressive(t *testing.T) {
	// Table III, Albireo-A: total 1.64 W. Our census lands at ~1.58 W;
	// the paper's laser row (0.12 W) is ~0.03 W above 63 x 1.38 mW,
	// an internal inconsistency documented in EXPERIMENTS.md.
	p := NewCensus(core.DefaultConfig()).Power(device.Aggressive)
	if math.Abs(p.MRR-0.38) > 0.01 || math.Abs(p.DAC-0.80) > 0.01 {
		t.Errorf("aggressive row mismatch: MRR %.3f DAC %.3f", p.MRR, p.DAC)
	}
	if p.Total() < 1.5 || p.Total() > 1.7 {
		t.Errorf("Albireo-A total = %.3f W, want ~1.6 W", p.Total())
	}
}

func TestAlbireo27PowerNear60W(t *testing.T) {
	// Section IV-A: the 27-PLCG design consumes 58.8 W, inside the
	// 60 W comparison budget.
	p := NewCensus(core.Albireo27()).Power(device.Conservative)
	if p.Total() < 57 || p.Total() > 61 {
		t.Errorf("Albireo-27 total = %.2f W, want ~58.8 W", p.Total())
	}
}

func TestAreaBreakdownFigure9(t *testing.T) {
	c := NewCensus(core.DefaultConfig())
	a := c.Area()
	total := a.Total()
	// Section IV-B: ~124.6 mm^2 total.
	if total < 120e-6 || total > 130e-6 {
		t.Errorf("chip area = %.1f mm^2, want ~124.6", total*1e6)
	}
	// AWGs are ~72% of area, star couplers ~17%, MZMs ~3.7%.
	if f := a.AWG / total; f < 0.68 || f > 0.76 {
		t.Errorf("AWG fraction = %.2f, want ~0.72", f)
	}
	if f := a.StarCoupler / total; f < 0.14 || f > 0.20 {
		t.Errorf("star coupler fraction = %.2f, want ~0.17", f)
	}
	if f := a.MZM / total; f < 0.030 || f > 0.045 {
		t.Errorf("MZM fraction = %.3f, want ~0.037", f)
	}
	// A single AWG is 8% of total area (Section IV-B).
	if f := a.AWG / 9 / total; f < 0.07 || f > 0.09 {
		t.Errorf("single AWG fraction = %.3f, want ~0.08", f)
	}
}

func TestActiveArea(t *testing.T) {
	c := NewCensus(core.DefaultConfig())
	active := c.ActiveArea()
	// ~11% of the chip (~13-14 mm^2): everything but AWGs and star
	// couplers.
	if active < 11e-6 || active > 17e-6 {
		t.Errorf("active area = %.1f mm^2, want ~13.7", active*1e6)
	}
	if active >= c.Area().Total() {
		t.Error("active area must be smaller than total")
	}
}

func TestCensusScalesWithNg(t *testing.T) {
	c9 := NewCensus(core.DefaultConfig())
	c27 := NewCensus(core.Albireo27())
	if c27.SwitchingMRRs != 3*c9.SwitchingMRRs {
		t.Error("switching MRRs should scale with Ng")
	}
	if c27.Lasers != c9.Lasers {
		t.Error("laser count is set by the wavelength budget, not Ng")
	}
	if c27.DACs != 3*c9.WeightMZMs+c9.SignalGenMods {
		t.Errorf("27-PLCG DACs = %d, want %d", c27.DACs, 3*c9.WeightMZMs+c9.SignalGenMods)
	}
}
