package perf

import (
	"math"
	"testing"

	"albireo/internal/core"
	"albireo/internal/nn"
)

func TestFlatEnergyMatchesEvaluate(t *testing.T) {
	// The flat component must reproduce the Table IV accounting.
	for _, m := range nn.Benchmarks() {
		eb := EvaluateEnergy(core.DefaultConfig(), m)
		r := Evaluate(core.DefaultConfig(), m)
		if math.Abs(eb.Flat-r.Energy)/r.Energy > 1e-9 {
			t.Errorf("%s: flat energy %g != Evaluate energy %g", m.Name, eb.Flat, r.Energy)
		}
		if math.Abs(eb.Latency-r.Latency)/r.Latency > 1e-9 {
			t.Errorf("%s: latency mismatch", m.Name)
		}
	}
}

func TestGatedNeverExceedsFlat(t *testing.T) {
	for _, m := range nn.Benchmarks() {
		eb := EvaluateEnergy(core.DefaultConfig(), m)
		if eb.Gated > eb.Flat*1.0001 {
			t.Errorf("%s: gated energy %g exceeds flat %g", m.Name, eb.Gated, eb.Flat)
		}
		if eb.Gated <= 0 || eb.SRAM <= 0 {
			t.Errorf("%s: breakdown components must be positive", m.Name)
		}
	}
}

func TestGatingSavesOnPartialPasses(t *testing.T) {
	// A network whose layers never fill the 9 PLCGs must gate
	// substantially: 4 kernels on 9 groups idles more than half the
	// fabric.
	tiny := nn.Model{Name: "tiny", Layers: []nn.Layer{
		{Name: "c1", Kind: nn.Conv, InZ: 3, InY: 16, InX: 16, OutZ: 4, KY: 3, KX: 3, Stride: 1, Pad: 1},
	}}
	eb := EvaluateEnergy(core.DefaultConfig(), tiny)
	if eb.Gated >= eb.Flat*0.8 {
		t.Errorf("4-kernel layer should gate >20%% of flat energy: gated %g flat %g", eb.Gated, eb.Flat)
	}
	// Large nets keep the fabric mostly full: gating saves little.
	vgg := EvaluateEnergy(core.DefaultConfig(), nn.VGG16())
	if vgg.Gated < vgg.Flat*0.7 {
		t.Errorf("VGG16 should keep the fabric busy: gated %g flat %g", vgg.Gated, vgg.Flat)
	}
}

func TestSRAMEnergySmallVsCompute(t *testing.T) {
	// With the depth-first dataflow, data movement is a small fraction
	// of compute energy - the point of the PLCG's stationary
	// aggregation (Section III-B).
	eb := EvaluateEnergy(core.DefaultConfig(), nn.VGG16())
	if eb.SRAM > 0.1*eb.Flat {
		t.Errorf("SRAM energy %g should be <10%% of compute %g under depth-first", eb.SRAM, eb.Flat)
	}
}

func TestBreakdownHelpers(t *testing.T) {
	eb := EnergyBreakdown{Flat: 10, Gated: 8, SRAM: 1}
	if eb.Total() != 9 {
		t.Error("Total should be gated + SRAM")
	}
	if math.Abs(eb.Savings()-0.1) > 1e-12 {
		t.Error("Savings should be 1 - total/flat")
	}
	var zero EnergyBreakdown
	if zero.Savings() != 0 {
		t.Error("degenerate savings should be 0")
	}
}

func TestPerGroupPowerComposition(t *testing.T) {
	cfg := core.DefaultConfig()
	group, floor := perGroupPower(cfg, cfg.Estimate)
	// Ng groups plus the floor should reconstruct the census total
	// within rounding (the same devices, partitioned).
	total := NewCensus(cfg).Power(cfg.Estimate).Total()
	sum := float64(cfg.Ng)*group + floor
	if math.Abs(sum-total)/total > 0.01 {
		t.Errorf("partitioned power %g != census total %g", sum, total)
	}
}
