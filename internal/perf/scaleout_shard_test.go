// Cross-validation of the analytic shard-speedup model against the
// measured fleet. Both sides of the comparison are deterministic -
// ShardLatencyTicks is arithmetic over the placement, and the fleet's
// virtual clock books service from the same ServiceModel - so the
// isolated-inference checks demand exact agreement (tolerance: 0
// ticks). The open-loop sweep check allows queueing on top: offered
// load inflates the mean but can never deflate the minimum, so the
// sweep's fastest request must still price exactly at the analytic
// latency, and the mean is bounded by a documented queueing allowance.
package perf_test

import (
	"context"
	"testing"

	"albireo/internal/core"
	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/load"
	"albireo/internal/obs"
	"albireo/internal/perf"
	"albireo/internal/tensor"
)

// The service model every check shares, matching the serve-gate shard
// sweep: program once, 18 steady-state ticks for a whole inference.
const (
	shardProgTicks = 2
	shardReqTicks  = 18
)

// cloneChips builds n clone pool members (same Config, same Seed) -
// the pool shape the bit-identity guarantee and the sharded dispatch
// assume.
func cloneChips(n int, seed int64, prep func(int, *core.Chip)) []fleet.Unit {
	units := make([]fleet.Unit, n)
	for i := range units {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		a := inference.NewAnalog(cfg)
		units[i] = fleet.Unit{Backend: a, Chip: a.Chip}
		if prep != nil {
			prep(i, a.Chip)
		}
	}
	return units
}

// measureSharded prices one isolated sharded inference on the pool in
// virtual time and returns its end-to-end ticks.
func measureSharded(t *testing.T, units []fleet.Unit) int64 {
	t.Helper()
	s, err := fleet.New(fleet.Options{
		MaxBatch: 8, QueueDepth: 16, Shard: true, KeepDegraded: true,
		VirtualTime:  true,
		ServiceModel: fleet.ServiceModel{ProgramTicks: shardProgTicks, RequestTicks: shardReqTicks},
	}, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Instrument(obs.NewRegistry(), nil)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	in := tensor.RandomVolume(6, 10, 10, 971)
	w := tensor.RandomKernels(18, 6, 3, 3, 972)
	fut := s.ConvAsync(ctx, in, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
	if _, err := fut.Volume(); err != nil {
		t.Fatalf("conv: %v", err)
	}
	for s.InFlight() > 0 {
		s.Tick()
	}
	st, ok := fut.Stages()
	if !ok {
		t.Fatal("stages not final after drain")
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return st.EndToEnd()
}

// TestShardSpeedupMatchesMeasuredFleet is the analytic-vs-measured
// cross-validation on healthy clone pools: for every pool size the
// model must price the isolated sharded inference to the tick, and
// the speedup ratios must therefore agree exactly.
func TestShardSpeedupMatchesMeasuredFleet(t *testing.T) {
	t.Parallel()
	ng := core.DefaultConfig().Ng
	weight := int64(ng * core.DefaultConfig().Nu) // healthy PLCUs per clone
	base := measureSharded(t, cloneChips(1, 66, nil))
	for _, pool := range []int{1, 2, 3, 4} {
		weights := make([]int64, pool)
		for i := range weights {
			weights[i] = weight
		}
		want := perf.ShardLatencyTicks(shardProgTicks, shardReqTicks, ng, weights)
		got := measureSharded(t, cloneChips(pool, 66, nil))
		if got != want {
			t.Errorf("pool-%d measured e2e = %d ticks, analytic = %d (tolerance 0: both sides are deterministic)",
				pool, got, want)
		}
		analytic := perf.ShardSpeedup(shardProgTicks, shardReqTicks, ng, weights)
		if measured := float64(base) / float64(got); measured != analytic {
			t.Errorf("pool-%d measured speedup %.4f != analytic %.4f", pool, measured, analytic)
		}
	}
}

// TestShardSpeedupMatchesDegradedPool validates the placement term:
// with worker 1 quarantined down to weight 9 the windows over weights
// {27, 9, 27} are {4, 1, 4}, and the analytic price of the widest
// window must match the measured merge barrier exactly.
func TestShardSpeedupMatchesDegradedPool(t *testing.T) {
	t.Parallel()
	ng := core.DefaultConfig().Ng
	units := cloneChips(3, 67, func(i int, c *core.Chip) {
		if i != 1 {
			return
		}
		for g := 0; g < ng; g++ {
			for u := 0; u < 2; u++ {
				if err := c.Quarantine(g, u); err != nil {
					t.Fatalf("Quarantine(%d,%d): %v", g, u, err)
				}
			}
		}
	})
	full := int64(ng * core.DefaultConfig().Nu)
	weights := []int64{full, full / 3, full}
	want := perf.ShardLatencyTicks(shardProgTicks, shardReqTicks, ng, weights)
	// Widest window is 4 of 9 classes: 2 + ceil(18*4/9) = 10 ticks.
	if want != 10 {
		t.Fatalf("analytic degraded latency = %d ticks, want 10", want)
	}
	if got := measureSharded(t, units); got != want {
		t.Errorf("degraded pool measured e2e = %d ticks, analytic = %d (tolerance 0)", got, want)
	}
}

// TestShardSpeedupCrossValidatesSweep ties the model to the open-loop
// harness behind the serve gate. Queueing only ever adds latency, so
// the sweep's minimum end-to-end must equal the analytic price
// exactly, and the mean may exceed it by at most the documented
// allowance: at rate 0.02 the pool-1 utilization is 0.02*20 = 0.4,
// where an M/D/1-shaped queue stays well under 3x the service time.
func TestShardSpeedupCrossValidatesSweep(t *testing.T) {
	t.Parallel()
	ng := core.DefaultConfig().Ng
	for _, pool := range []int{1, 4} {
		res, err := load.RunPoint(load.Config{
			Rate: 0.02, Ticks: 4000, Seed: 7, Shard: true, KernelM: 4 * ng,
		}, fleet.Options{
			MaxBatch: 8, QueueDepth: 64,
			ServiceModel: fleet.ServiceModel{ProgramTicks: shardProgTicks, RequestTicks: shardReqTicks},
		}, load.NullUnits(pool)...)
		if err != nil {
			t.Fatalf("pool-%d RunPoint: %v", pool, err)
		}
		if res.Completed == 0 {
			t.Fatalf("pool-%d sweep completed nothing", pool)
		}
		weights := make([]int64, pool) // null workers route at weight 1
		for i := range weights {
			weights[i] = 1
		}
		want := perf.ShardLatencyTicks(shardProgTicks, shardReqTicks, ng, weights)
		minE2E, sum := int64(1<<62), int64(0)
		for _, st := range res.Stages {
			e := st.EndToEnd()
			sum += e
			if e < minE2E {
				minE2E = e
			}
		}
		if minE2E != want {
			t.Errorf("pool-%d sweep min e2e = %d ticks, analytic = %d (uncontended request must price exactly)",
				pool, minE2E, want)
		}
		mean := float64(sum) / float64(res.Completed)
		if mean < float64(want) || mean > 3*float64(want) {
			t.Errorf("pool-%d sweep mean e2e = %.1f ticks outside [%d, %d] (analytic + queueing allowance)",
				pool, mean, want, 3*want)
		}
	}
}

// TestShardLatencyTicksEdges pins the model's fallbacks: no modulus,
// no weights, or fewer than two non-empty windows all price as the
// whole-request path, and the floor never drops below one tick.
func TestShardLatencyTicksEdges(t *testing.T) {
	t.Parallel()
	if got := perf.ShardLatencyTicks(2, 18, 0, []int64{1, 1}); got != 20 {
		t.Errorf("no modulus = %d, want whole-path 20", got)
	}
	if got := perf.ShardLatencyTicks(2, 18, 9, nil); got != 20 {
		t.Errorf("no weights = %d, want whole-path 20", got)
	}
	if got := perf.ShardLatencyTicks(2, 18, 9, []int64{27}); got != 20 {
		t.Errorf("single window = %d, want whole-path 20 (fleet skips fan-out)", got)
	}
	// Two residue classes over three workers leaves one empty window
	// and two placed: still a real fan-out.
	if got := perf.ShardLatencyTicks(2, 18, 2, []int64{1, 1, 1}); got != 11 {
		t.Errorf("of=2 across 3 = %d, want 2+ceil(18/2) = 11", got)
	}
	if got := perf.ShardLatencyTicks(0, 0, 0, nil); got != 1 {
		t.Errorf("degenerate model = %d, want floor 1", got)
	}
	if got := perf.ShardSpeedup(2, 18, 9, []int64{27, 27, 27, 27}); got != 2.5 {
		t.Errorf("pool-4 analytic speedup = %g, want 20/8 = 2.5", got)
	}
}
